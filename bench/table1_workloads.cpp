// Table 1: description of workloads — trace-side columns plus the
// static-backfill simulation columns (avg response, avg slowdown, makespan).
//
// Paper values are for scale 1.0; scaled-down runs reproduce the *relative*
// shape (which workloads are congested, where slowdown explodes), not the
// absolute seconds.
#include "bench_common.h"
#include "workload/workload_stats.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  using namespace sdsched::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);

  print_banner("Table 1", "Description of workloads",
               "W1 Cirne 5000j/1024n resp=122152 sld=3339.5 mk=899888 | "
               "W2 Cirne_ideal resp=126486 sld=3501 mk=896024 | "
               "W3 RICC 10000j/1024n resp=43537 sld=1341 mk=407043 | "
               "W4 CEA-Curie 198509j/5040n resp=29858.5 sld=3666.5 mk=21615111 | "
               "W5 Cirne_real_run 2000j/49n resp=56482 sld=4783.1 mk=159313");

  struct PaperRow {
    const char* log;
    double resp, sld;
    long long mk;
  };
  const PaperRow paper[5] = {
      {"Cirne", 122152, 3339.5, 899888},
      {"Cirne_ideal", 126486, 3501, 896024},
      {"RICC-sept", 43537, 1341, 407043},
      {"CEA-Curie", 29858.5, 3666.5, 21615111},
      {"Cirne_real_run", 56482, 4783.1, 159313},
  };

  // All five baseline simulations as one parallel sweep; workload
  // characterization happens on the shared storage afterwards.
  std::vector<SweepCell> cells;
  std::vector<PaperWorkload> workloads;
  for (int which = 1; which <= 5; ++which) {
    workloads.push_back(load_workload(which, ctx));
    const PaperWorkload& pw = workloads.back();
    SimulationConfig cfg = baseline_config(pw.machine);
    cfg.use_app_model = (which == 5);
    cells.push_back({pw.label + "/baseline", pw.workload, cfg});
  }
  const SweepExecution exec = run_cells(cells, ctx);

  AsciiTable table({"ID", "log/model", "#jobs", "system (n/c)", "max job (n/c)",
                    "avg resp (s)", "avg sld", "makespan (s)", "paper resp/sld/mk"});
  for (int which = 1; which <= 5; ++which) {
    const PaperWorkload& pw = workloads[which - 1];
    const WorkloadStats stats = characterize(pw.workload);
    const SimulationReport& report = exec.results[which - 1].report;
    const PaperRow& p = paper[which - 1];
    table.add_row({std::to_string(which), p.log, std::to_string(stats.n_jobs),
                   std::to_string(stats.system_nodes) + "/" + std::to_string(stats.system_cores),
                   std::to_string(stats.max_job_nodes) + "/" + std::to_string(stats.max_job_cpus),
                   AsciiTable::num(report.summary.avg_response, 0),
                   AsciiTable::num(report.summary.avg_slowdown, 1),
                   std::to_string(report.summary.makespan),
                   AsciiTable::num(p.resp, 0) + "/" + AsciiTable::num(p.sld, 1) + "/" +
                       std::to_string(p.mk)});
  }
  table.print();
  std::printf("\nNote: paper columns are full-scale; run with --full to compare "
              "absolute magnitudes.\n");
  write_bench_json(ctx.json_path, "Table 1", ctx, exec);
  return 0;
}
