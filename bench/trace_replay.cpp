// trace_replay: run the registered real-system traces (workload/
// trace_catalog.h — CEA Curie and RICC) through every scheduler and the
// MAXSD cut-off sweep, reporting the burst-coalescing counters that real
// same-second submit bursts exercise far harder than synthetic arrivals.
//
// By default each trace loads from its bundled downsampled fixture
// (data/traces/<name>_sample.swf) at the FULL machine size — 5040 nodes for
// Curie — so the run is cheap in jobs but real in scale. In addition to the
// standard bench flags (bench_common.h):
//
//   --traces=curie,ricc     restrict the trace list
//   --schedulers=fcfs,sd    restrict the variant cells (the static-backfill
//                           baseline always runs — it is the normalization
//                           denominator); "sd" enables the MAXSD sweep.
//                           CI uses this for a short SD-only Curie slice so
//                           the SD hot path is serial-parity-checked on
//                           every push.
//   --synthesize            ignore fixtures; synthesize_like() at --scale
//                           (default synthesis scale 0.02)
//   --max-jobs=N            cap jobs per trace after scaling
//   --write-fixtures=DIR    regenerate the bundled fixtures into DIR and exit
//   --fixture-jobs=N        fixture size for --write-fixtures (default 2500,
//                           the size of the committed data/traces fixtures)
//   --soak                  archive-scale replay (the nightly soak): ingest
//                           each trace's FULL log from
//                           $SDSCHED_TRACE_DIR/<archive_file> when present
//                           (the real Parallel Workloads Archive file, not
//                           redistributed here), else synthesize_soak() at
//                           --soak-jobs jobs on the full machine. Defaults
//                           to backfill + fcfs so a 448K-job night stays
//                           bounded; pass --schedulers=sd to soak SD too
//                           (one DynAVGSD cell per trace, not the 5-variant
//                           sweep — the nightly SD tier). Stamps the
//                           `ingest` phase into the JSON phase breakdown.
//   --sd-guest-budget=K     GuestScanPolicy budget for every SD cell: at
//                           most K queued guests considered per SD pass
//                           (0 = unbounded, the byte-identical default).
//                           The nightly SD tier sets this — saturated soak
//                           queues make unbounded passes superlinear.
//   --soak-jobs=N           synthesized soak size when the real log is
//                           absent (default 200000)
//   --max-rss-mb=N          fail (exit 1) when peak RSS exceeds N MiB — the
//                           nightly memory-flatness gate (0 = report only)
#include "bench_common.h"

#include <fstream>

#include "workload/swf.h"
#include "workload/trace_catalog.h"
#include "workload/workload_stats.h"

namespace {

using namespace sdsched;
using namespace sdsched::bench;

std::vector<std::string> parse_trace_list(const std::string& csv) {
  std::vector<std::string> names = split_csv(csv);
  if (names.empty()) {
    for (const auto& info : trace_catalog()) names.push_back(info.name);
  }
  return names;
}

struct TraceEntry {
  LoadedTrace loaded;
  MachineConfig machine;
};

/// Soak ingestion: the real full log when $SDSCHED_TRACE_DIR holds it (the
/// streaming reader keeps the parse flat in memory; only the job vector is
/// resident), else an archive-scale synthesized stand-in at the full
/// machine size.
LoadedTrace load_soak_trace(const TraceInfo& info, std::size_t soak_jobs,
                            std::uint64_t seed) {
  LoadedTrace loaded;
  loaded.info = info;
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* dir = std::getenv("SDSCHED_TRACE_DIR"); dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/" + info.archive_file;
    if (std::ifstream probe(path); probe.good()) {
      Workload workload = read_swf_file(path);
      workload.info().name = info.name;
      workload.prepare_for(info.nodes, info.cores_per_node);
      loaded.workload = std::move(workload);
      loaded.from_fixture = true;
      loaded.source = path;
    }
  }
  if (loaded.workload.empty()) {
    loaded.workload = synthesize_soak(info, soak_jobs, seed);
    loaded.source = "synthesize_soak";
  }
  loaded.validation = validate_trace(loaded.workload, loaded.info);
  return loaded;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = BenchContext::from_args(argc, argv);
  const CliArgs args(argc, argv);

  if (const std::string dir = args.get_or("write-fixtures", ""); !dir.empty()) {
    const auto n_jobs = static_cast<std::size_t>(args.get_int("fixture-jobs", 2500));
    for (const auto& info : trace_catalog()) {
      write_trace_fixture(info, dir + "/" + info.name + "_sample.swf", n_jobs);
    }
    return 0;
  }

  print_banner("Trace replay", "real-trace grid: schedulers x SD policies",
               "W3/W4 replay real logs (RICC-2010, CEA-Curie-2011); same-second "
               "submit bursts coalesce into one pass on the non-SD schedulers");

  const bool soak = args.get_bool("soak");
  const auto soak_jobs = static_cast<std::size_t>(args.get_int("soak-jobs", 200000));
  const long long max_rss_mb = args.get_int("max-rss-mb", 0);
  const int sd_guest_budget = static_cast<int>(args.get_int("sd-guest-budget", 0));

  bool run_fcfs = true;
  bool run_sd = !soak;  // the nightly soak bounds its runtime: SD is opt-in
  if (const std::string list = args.get_or("schedulers", ""); !list.empty()) {
    run_fcfs = run_sd = false;
    for (const std::string& token : split_csv(list)) {
      if (token == "fcfs") {
        run_fcfs = true;
      } else if (token == "sd") {
        run_sd = true;
      } else if (token != "backfill") {  // baseline always runs; others are typos
        std::fprintf(stderr,
                     "ERROR: unknown --schedulers token '%s' (expected backfill, fcfs, "
                     "sd)\n",
                     token.c_str());
        return 1;
      }
    }
  }

  const bool synthesize = args.get_bool("synthesize");
  const double scale = args.get_bool("full")
                           ? 1.0
                           : args.get_double("scale", synthesize ? 0.02 : 1.0);
  // One scale governs every trace here; mirror it into the JSON context so
  // the document records what actually ran.
  ctx.scale_small = ctx.scale_curie = ctx.scale_w5 = scale;

  GridBuilder grid;
  std::vector<TraceEntry> traces;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (const auto& name : parse_trace_list(args.get_or("traces", ""))) {
    TraceEntry entry;
    if (soak) {
      const TraceInfo* soak_info = find_trace(name);
      if (soak_info == nullptr) {
        std::fprintf(stderr, "ERROR: unknown trace '%s'\n", name.c_str());
        return 1;
      }
      entry.loaded = load_soak_trace(*soak_info, soak_jobs, ctx.seed);
    } else {
      TraceLoadOptions options;
      options.scale = scale;
      options.seed = ctx.seed;
      options.allow_fixture = !synthesize;
      options.max_jobs = static_cast<std::size_t>(args.get_int("max-jobs", 0));
      entry.loaded = load_trace(name, options);
    }
    const TraceInfo& info = entry.loaded.info;
    entry.machine = trace_machine(entry.loaded);

    const WorkloadStats& stats = entry.loaded.validation.stats;
    std::printf("  %s (%s): %zu jobs on %d nodes x %d cores; %zu jobs in same-second "
                "bursts (max %zu)\n",
                info.label.c_str(), entry.loaded.source.c_str(),
                entry.loaded.workload.size(), entry.machine.nodes,
                entry.machine.node.sockets * entry.machine.node.cores_per_socket,
                stats.same_time_submits, stats.max_submit_burst);

    // The grid: static backfill (the normalization baseline), plain FCFS,
    // and SD-Policy under every cut-off variant, all on shared job storage.
    grid.baseline(info.label + "/backfill", entry.loaded.workload,
                  baseline_config(entry.machine));
    if (run_fcfs) {
      SimulationConfig fcfs_cfg = baseline_config(entry.machine);
      fcfs_cfg.policy = PolicyKind::Fcfs;
      grid.variant(info.label, "fcfs", 0, entry.loaded.workload, fcfs_cfg);
    }
    if (run_sd) {
      if (soak) {
        // The nightly SD tier: one DynAVGSD cell per trace (the paper's
        // headline variant), not the 5-variant sweep — a 200K-job night
        // stays inside the wall budget, and the guest budget + scan
        // ledger keep the saturated-queue passes depth-flat.
        SimulationConfig sd_cfg = sd_config(entry.machine, CutoffConfig::dynamic_avg());
        sd_cfg.sd.scan.guest_budget = sd_guest_budget;
        grid.variant(info.label, "DynAVGSD", 0, entry.loaded.workload, sd_cfg);
      } else {
        for (const auto& variant : maxsd_sweep()) {
          SimulationConfig sd_cfg = sd_config(entry.machine, variant.cutoff);
          sd_cfg.sd.scan.guest_budget = sd_guest_budget;
          grid.variant(info.label, variant.label, 0, entry.loaded.workload, sd_cfg);
        }
      }
    }
    traces.push_back(std::move(entry));
  }
  // The trace loads are this bench's `ingest` phase (reader/synthesis);
  // write_bench_json carves it out of `generate` in the JSON breakdown.
  ctx.ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - ingest_start)
          .count();

  const SweepExecution exec = grid.run(ctx);

  std::printf("\nAverage slowdown normalized to static backfill (<1 = variant wins):\n\n");
  std::vector<std::string> header{"trace"};
  if (run_fcfs) header.push_back("fcfs");
  if (run_sd) {
    if (soak) {
      header.emplace_back("DynAVGSD");
    } else {
      for (const auto& variant : maxsd_sweep()) header.push_back(variant.label);
    }
  }
  AsciiTable table(header);
  for (const auto& entry : traces) {
    std::vector<std::string> row{entry.loaded.info.label};
    for (const auto& r : grid.rows) {
      if (r.workload == entry.loaded.info.label) {
        row.push_back(AsciiTable::num(r.normalized.avg_slowdown, 3));
      }
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nKernel burst metrics per cell (bursts coalesce on non-SD schedulers):\n\n");
  AsciiTable bursts({"cell", "events", "passes", "submits_coalesced", "ticks_cancelled"});
  std::uint64_t total_coalesced = 0;
  for (const auto& result : exec.results) {
    const SimulationReport& report = result.report;
    bursts.add_row({result.name, std::to_string(report.events_fired),
                    std::to_string(report.scheduling_passes),
                    std::to_string(report.submits_coalesced),
                    std::to_string(report.ticks_cancelled)});
    total_coalesced += report.submits_coalesced;
  }
  bursts.print();
  std::printf("\n%llu submits coalesced across the grid\n",
              static_cast<unsigned long long>(total_coalesced));
  // Every grid contains coalescing-eligible cells (backfill, fcfs), so if
  // the loaded traces carry same-second bursts and *nothing* coalesced, the
  // kernel's burst handling regressed — fail the run (CI relies on this).
  std::size_t bursty_inputs = 0;
  for (const auto& entry : traces) {
    if (entry.loaded.validation.stats.same_time_submits > 0) ++bursty_inputs;
  }
  if (bursty_inputs > 0 && total_coalesced == 0) {
    std::fprintf(stderr,
                 "ERROR: %zu trace(s) carry same-second submit bursts but no submits "
                 "were coalesced\n",
                 bursty_inputs);
    return 1;
  }

  write_bench_json(ctx.json_path, "trace_replay", ctx, exec, grid.rows,
                   [&traces, soak, soak_jobs, max_rss_mb, sd_guest_budget](JsonWriter& json) {
                     json.key("traces");
                     json.begin_array();
                     for (const auto& entry : traces) {
                       const WorkloadStats& stats = entry.loaded.validation.stats;
                       json.begin_object();
                       json.field("name", entry.loaded.info.name);
                       json.field("label", entry.loaded.info.label);
                       json.field("source", entry.loaded.source);
                       json.field("from_fixture", entry.loaded.from_fixture);
                       json.field("jobs", stats.n_jobs);
                       json.field("nodes", stats.system_nodes);
                       json.field("max_job_nodes", stats.max_job_nodes);
                       json.field("offered_load", stats.offered_load);
                       json.field("same_time_submits", stats.same_time_submits);
                       json.field("max_submit_burst", stats.max_submit_burst);
                       json.field("distinct_submit_times", stats.distinct_submit_times);
                       json.end_object();
                     }
                     json.end_array();
                     if (soak) {
                       json.key("soak");
                       json.begin_object();
                       json.field("soak_jobs", soak_jobs);
                       json.field("max_rss_mb", max_rss_mb);
                       json.field("sd_guest_budget", sd_guest_budget);
                       json.end_object();
                     }
                   });

  // Nightly memory-flatness gate: the streaming reader plus one resident
  // job vector per trace should keep even a 448K-job replay well under the
  // budget; a breach means an O(jobs) structure crept back in somewhere.
  if (max_rss_mb > 0) {
    const double rss_mb = static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
    std::printf("\npeak RSS %.1f MiB (budget %lld MiB)\n", rss_mb, max_rss_mb);
    if (rss_mb > static_cast<double>(max_rss_mb)) {
      std::fprintf(stderr, "ERROR: peak RSS %.1f MiB exceeds --max-rss-mb=%lld\n", rss_mb,
                   max_rss_mb);
      return 1;
    }
  }
  return 0;
}
