// Shared driver for Figures 4-6: the W4 category heatmaps. Runs static
// backfill and SD-Policy MAXSD 10 on the Curie-like workload — two cells of
// one sweep, sharing the workload storage — buckets jobs by (requested
// nodes x runtime) and prints the static/SD ratio per cell (>1 = SD-Policy
// improved that category).
#pragma once

#include <functional>

#include "bench_common.h"
#include "metrics/heatmap.h"

namespace sdsched::bench {

inline int run_heatmap_figure(int argc, char** argv, const char* fig_id, const char* metric_name,
                              const char* paper_note,
                              const std::function<double(const JobRecord&)>& metric) {
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner(fig_id, metric_name, paper_note);

  const PaperWorkload pw = load_workload(4, ctx);
  const std::vector<SweepCell> cells = {
      {"W4/baseline", pw.workload, baseline_config(pw.machine)},
      {"W4/MAXSD 10", pw.workload, sd_config(pw.machine, CutoffConfig::max_sd(10.0))},
  };
  const SweepExecution exec = run_cells(cells, ctx);
  const SimulationReport& base = exec.results[0].report;
  const SimulationReport& sd = exec.results[1].report;

  CategoryHeatmap base_map;
  CategoryHeatmap sd_map;
  base_map.fill(base.records, metric);
  sd_map.fill(sd.records, metric);

  std::printf("\nratio static-backfill / SD-Policy MAXSD 10 per category "
              "(>1: SD wins; '-': no jobs):\n\n");
  std::fputs(sd_map.render_grid(base_map.ratio(sd_map)).c_str(), stdout);

  std::printf("\njobs per category:\n\n");
  std::fputs(base_map.render_counts().c_str(), stdout);

  const std::vector<SweepRow> rows = {
      {"W4/MAXSD 10", "W4/baseline", "W4", "MAXSD 10", 0,
       normalize(sd.summary, base.summary)},
  };
  write_bench_json(ctx.json_path, fig_id, ctx, exec, rows);
  return 0;
}

}  // namespace sdsched::bench
