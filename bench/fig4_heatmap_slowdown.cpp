// Figure 4: heatmap of the slowdown ratio between static backfill and
// SD-Policy MAXSD 10 on the Curie-like workload, per job category.
#include "fig_heatmap_common.h"

int main(int argc, char** argv) {
  return sdsched::bench::run_heatmap_figure(
      argc, argv, "Figure 4", "Slowdown ratio static/SD per category",
      "small-short jobs improve most (up to 5.69x for jobs <=4h, <=512 "
      "nodes); a single large-long category regresses ~15%",
      [](const sdsched::JobRecord& r) { return r.slowdown(); });
}
