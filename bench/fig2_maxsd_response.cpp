// Figure 2: average response time for workloads 1-4 vs MAX_SLOWDOWN,
// normalized to the static backfill simulation.
#include "fig_maxsd_common.h"

int main(int argc, char** argv) {
  return sdsched::bench::run_maxsd_figure(
      argc, argv, "Figure 2", "Average response time",
      "response time reduced for all workloads; best case -50% (W4, MAXSD 10)",
      [](const sdsched::NormalizedMetrics& n) { return n.avg_response; });
}
