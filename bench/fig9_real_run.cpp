// Figure 9: the real-run reproduction — workload 5 (Cirne model converted
// to Table-2 applications) on the 49-node MN4 subset, with the node-sharing
// performance model standing in for the real machine (DESIGN.md §3.2).
// Reports the improvement of SD-Policy over static backfill for makespan,
// response time, slowdown and energy.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  using namespace sdsched::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner("Figure 9", "Real-run improvements (W5, application model)",
               "makespan -7%, avg response ~-16%, avg slowdown ~-16%, "
               "energy -6%; 449 of 539 malleable-scheduled jobs ran better "
               "than resource-proportional");

  const PaperWorkload pw = load_workload(5, ctx);
  SimulationConfig base_cfg = baseline_config(pw.machine);
  base_cfg.use_app_model = true;
  SimulationConfig sd_cfg = sd_config(pw.machine, CutoffConfig::dynamic_avg());
  sd_cfg.use_app_model = true;

  const std::vector<SweepCell> cells = {
      {"W5/baseline", pw.workload, base_cfg},
      {"W5/DynAVGSD", pw.workload, sd_cfg},
  };
  const SweepExecution exec = run_cells(cells, ctx);
  const SimulationReport& base = exec.results[0].report;
  const SimulationReport& sd = exec.results[1].report;
  const NormalizedMetrics norm = normalize(sd.summary, base.summary);

  AsciiTable table({"metric", "improvement (measured)", "improvement (paper)"});
  table.add_row({"makespan", AsciiTable::pct(norm.makespan - 1.0), "-7%"});
  table.add_row({"avg response time", AsciiTable::pct(norm.avg_response - 1.0), "~-16%"});
  table.add_row({"avg slowdown", AsciiTable::pct(norm.avg_slowdown - 1.0), "~-16%"});
  table.add_row({"energy", AsciiTable::pct(norm.energy - 1.0), "-6%"});
  table.print();

  // The paper's supporting count: guests whose runtime beat the
  // resource-proportional expectation (rate > cpus-fraction).
  std::size_t guests = 0;
  std::size_t better = 0;
  for (const auto& record : sd.records) {
    if (!record.was_guest) continue;
    ++guests;
    // Proportional expectation at SharingFactor 0.5: 2x the base runtime.
    if (record.runtime() < 2 * record.base_runtime) ++better;
  }
  std::printf("\nguests beating the proportional-runtime expectation: %zu of %zu "
              "(paper: 449 of 539)\n",
              better, guests);

  const std::vector<SweepRow> rows = {
      {"W5/DynAVGSD", "W5/baseline", "W5", "DynAVGSD", 0, norm},
  };
  write_bench_json(ctx.json_path, "Figure 9", ctx, exec, rows);
  return 0;
}
