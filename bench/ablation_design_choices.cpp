// Ablation bench for the design choices DESIGN.md calls out (paper §3.2-3.3):
//   * SharingFactor (0.25 / 0.5 / 0.75) — §3.3 found 0.5 (socket isolation)
//     best on MN4;
//   * max mates m (1 / 2 / 3) — §3.2.4 found no improvement beyond 2;
//   * include_free_nodes — §3.2.4 lists it as a supported option;
//   * reservation depth (EASY=1 vs conservative=100) for the baseline.
// All on W1 and W3, slowdown normalized to static backfill.
#include "bench_common.h"

namespace {

using namespace sdsched;
using namespace sdsched::bench;

SimulationConfig variant(const MachineConfig& machine,
                         const std::function<void(SdConfig&)>& tweak) {
  SimulationConfig cfg = sd_config(machine, CutoffConfig::max_sd(10.0));
  tweak(cfg.sd);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner("Ablation", "SD-Policy design choices",
               "sf=0.5 best (socket isolation); m>2 does not help; free-node "
               "plans and deeper reservations are secondary effects");

  struct Variant {
    const char* label;
    std::function<void(SdConfig&)> tweak;
  };
  const std::vector<Variant> variants = {
      {"sf=0.25", [](SdConfig& sd) { sd.sharing_factor = 0.25; }},
      {"sf=0.5 (paper)", [](SdConfig&) {}},
      {"sf=0.75", [](SdConfig& sd) { sd.sharing_factor = 0.75; }},
      {"m=1", [](SdConfig& sd) { sd.max_mates = 1; }},
      {"m=3", [](SdConfig& sd) { sd.max_mates = 3; }},
      {"free-nodes", [](SdConfig& sd) { sd.include_free_nodes = true; }},
      {"nm=16", [](SdConfig& sd) { sd.max_candidates = 16; }},
      {"adaptive-sf", [](SdConfig& sd) { sd.adaptive_sharing = true; }},
  };

  AsciiTable table({"workload", "variant", "slowdown vs static", "response vs static",
                    "guests"});
  for (const int which : {1, 3}) {
    const PaperWorkload pw = load_workload(which, ctx);
    const SimulationReport base = run_single(pw, baseline_config(pw.machine));
    for (const auto& v : variants) {
      const SimulationReport report = run_single(pw, variant(pw.machine, v.tweak));
      const NormalizedMetrics norm = normalize(report.summary, base.summary);
      table.add_row({pw.label, v.label, AsciiTable::num(norm.avg_slowdown, 3),
                     AsciiTable::num(norm.avg_response, 3),
                     std::to_string(report.summary.guests)});
    }
    // Future work #2: plan on predicted durations instead of user requests.
    {
      SimulationConfig predicted = variant(pw.machine, [](SdConfig&) {});
      predicted.use_runtime_prediction = true;
      const SimulationReport report = run_single(pw, predicted);
      const NormalizedMetrics norm = normalize(report.summary, base.summary);
      table.add_row({pw.label, "runtime-prediction", AsciiTable::num(norm.avg_slowdown, 3),
                     AsciiTable::num(norm.avg_response, 3),
                     std::to_string(report.summary.guests)});
    }
    // §2.1's core claim: DROM's near-zero shrink/expand cost is what makes
    // high-frequency malleability pay off. Checkpoint/restart-style costs
    // (minutes per reconfiguration, §5) erode the SD gains.
    for (const SimTime overhead : {static_cast<SimTime>(60), static_cast<SimTime>(600)}) {
      SimulationConfig costly = variant(pw.machine, [](SdConfig&) {});
      costly.reconfig_overhead = overhead;
      const SimulationReport report = run_single(pw, costly);
      const NormalizedMetrics norm = normalize(report.summary, base.summary);
      table.add_row({pw.label, "reconfig cost " + std::to_string(overhead) + "s",
                     AsciiTable::num(norm.avg_slowdown, 3),
                     AsciiTable::num(norm.avg_response, 3),
                     std::to_string(report.summary.guests)});
    }
    // Baseline ablation: EASY (depth 1) vs conservative backfill.
    SimulationConfig easy = baseline_config(pw.machine);
    easy.sched.reservation_depth = 1;
    const SimulationReport easy_report = run_single(pw, easy);
    const NormalizedMetrics norm = normalize(easy_report.summary, base.summary);
    table.add_row({pw.label, "EASY baseline", AsciiTable::num(norm.avg_slowdown, 3),
                   AsciiTable::num(norm.avg_response, 3), "0"});
  }
  table.print();
  return 0;
}
