// Ablation bench for the design choices DESIGN.md calls out (paper §3.2-3.3):
//   * SharingFactor (0.25 / 0.5 / 0.75) — §3.3 found 0.5 (socket isolation)
//     best on MN4;
//   * max mates m (1 / 2 / 3) — §3.2.4 found no improvement beyond 2;
//   * include_free_nodes — §3.2.4 lists it as a supported option;
//   * reservation depth (EASY=1 vs conservative=100) for the baseline.
// All on W1 and W3, slowdown normalized to static backfill.
#include "bench_common.h"

namespace {

using namespace sdsched;
using namespace sdsched::bench;

SimulationConfig variant(const MachineConfig& machine,
                         const std::function<void(SdConfig&)>& tweak) {
  SimulationConfig cfg = sd_config(machine, CutoffConfig::max_sd(10.0));
  tweak(cfg.sd);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner("Ablation", "SD-Policy design choices",
               "sf=0.5 best (socket isolation); m>2 does not help; free-node "
               "plans and deeper reservations are secondary effects");

  struct Variant {
    const char* label;
    std::function<void(SdConfig&)> tweak;
  };
  const std::vector<Variant> variants = {
      {"sf=0.25", [](SdConfig& sd) { sd.sharing_factor = 0.25; }},
      {"sf=0.5 (paper)", [](SdConfig&) {}},
      {"sf=0.75", [](SdConfig& sd) { sd.sharing_factor = 0.75; }},
      {"m=1", [](SdConfig& sd) { sd.max_mates = 1; }},
      {"m=3", [](SdConfig& sd) { sd.max_mates = 3; }},
      {"free-nodes", [](SdConfig& sd) { sd.include_free_nodes = true; }},
      {"nm=16", [](SdConfig& sd) { sd.max_candidates = 16; }},
      {"adaptive-sf", [](SdConfig& sd) { sd.adaptive_sharing = true; }},
  };

  // The whole ablation grid as data — per workload one conservative
  // baseline plus every variant — executed as a single parallel sweep.
  GridBuilder grid;
  for (const int which : {1, 3}) {
    const PaperWorkload pw = load_workload(which, ctx);
    grid.baseline(pw.label + "/baseline", pw.workload, baseline_config(pw.machine));
    const auto add_cell = [&](const std::string& label, const SimulationConfig& cfg) {
      grid.variant(pw.label, label, 0, pw.workload, cfg);
    };
    for (const auto& v : variants) {
      add_cell(v.label, variant(pw.machine, v.tweak));
    }
    // Future work #2: plan on predicted durations instead of user requests.
    {
      SimulationConfig predicted = variant(pw.machine, [](SdConfig&) {});
      predicted.use_runtime_prediction = true;
      add_cell("runtime-prediction", predicted);
    }
    // §2.1's core claim: DROM's near-zero shrink/expand cost is what makes
    // high-frequency malleability pay off. Checkpoint/restart-style costs
    // (minutes per reconfiguration, §5) erode the SD gains.
    for (const SimTime overhead : {static_cast<SimTime>(60), static_cast<SimTime>(600)}) {
      SimulationConfig costly = variant(pw.machine, [](SdConfig&) {});
      costly.reconfig_overhead = overhead;
      add_cell("reconfig cost " + std::to_string(overhead) + "s", costly);
    }
    // Baseline ablation: EASY (depth 1) vs conservative backfill.
    SimulationConfig easy = baseline_config(pw.machine);
    easy.sched.reservation_depth = 1;
    add_cell("EASY baseline", easy);
  }
  const SweepExecution exec = grid.run(ctx);

  AsciiTable table({"workload", "variant", "slowdown vs static", "response vs static",
                    "guests"});
  for (std::size_t i = 0; i < grid.rows.size(); ++i) {
    const SweepRow& row = grid.rows[i];
    table.add_row({row.workload, row.variant,
                   AsciiTable::num(row.normalized.avg_slowdown, 3),
                   AsciiTable::num(row.normalized.avg_response, 3),
                   std::to_string(grid.row_report(exec, i).summary.guests)});
  }
  table.print();
  write_bench_json(ctx.json_path, "Ablation", ctx, exec, grid.rows);
  return 0;
}
