// Figure 6: heatmap of the wait-time ratio between static backfill and
// SD-Policy MAXSD 10 — the mechanism behind Figure 4's slowdown wins.
#include "fig_heatmap_common.h"

int main(int argc, char** argv) {
  return sdsched::bench::run_heatmap_figure(
      argc, argv, "Figure 6", "Wait-time ratio static/SD per category",
      "wait times improve across nearly all categories, including the jobs "
      "whose runtime was stretched (fairness is preserved)",
      [](const sdsched::JobRecord& r) { return static_cast<double>(r.wait()) + 1.0; });
}
