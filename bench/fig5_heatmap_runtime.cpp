// Figure 5: heatmap of the runtime ratio between static backfill and
// SD-Policy MAXSD 10 — guests pay stretched runtimes (ratio < 1) in
// exchange for the wait-time wins of Figure 6.
#include "fig_heatmap_common.h"

int main(int argc, char** argv) {
  return sdsched::bench::run_heatmap_figure(
      argc, argv, "Figure 5", "Runtime ratio static/SD per category",
      "runtimes increase slightly under SD (malleability stretches guests "
      "and mates), concentrated in the small/short categories",
      [](const sdsched::JobRecord& r) { return static_cast<double>(r.runtime()); });
}
