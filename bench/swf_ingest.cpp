// swf_ingest: ingest-throughput microbench and memory-flatness gate for the
// chunked streaming SWF reader (workload/swf_stream.h).
//
// Inputs are the two bundled 2500-row trace fixtures plus a deterministically
// synthesized archive-scale SWF (~400K rows by default — the RICC shape, the
// largest log the paper replays). For each input the bench measures:
//
//   * a pure streaming scan (SwfJobStream, nothing materialized): wall
//     clock, rows/s, MB/s, and the VmRSS delta across the scan. The delta
//     is the memory-flatness gate — it must stay within
//     --max-ingest-rss-mb whether the file has 2500 rows or 400K, because
//     the scan holds one chunk plus one carry line, never the file or the
//     job vector.
//   * materializing reads through both readers — read_swf (chunked) vs
//     read_swf_reference (the historical getline+istringstream path) —
//     best-of --repeats, with the resulting Workloads byte-compared
//     (write_swf output) so the throughput claim is about identical work.
//
// Flags (values also come from SDSCHED_* env vars, util/cli.h):
//   --rows=N                synthesized archive rows (default 400000)
//   --repeats=N             best-of timing repeats (default 3)
//   --chunk-bytes=N         chunked refill size (default 256 KiB)
//   --out-dir=DIR           where the synthesized SWF lands (default ".")
//   --max-ingest-rss-mb=M   streaming-scan RSS-delta budget per file, MiB
//                           (default 16; exit 1 on breach)
//   --min-ingest-speedup=F  required chunked/reference throughput ratio on
//                           the archive-scale file (default 1.0; exit 1
//                           below it; 0 disables)
//   --json=PATH             machine-readable sdsched-bench-v1 "swf_ingest"
//                           document (docs/bench-format.md), written
//                           through a sink-mode JsonWriter
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/swf.h"
#include "workload/swf_stream.h"
#include "workload/trace_catalog.h"

namespace {

using namespace sdsched;
using namespace sdsched::bench;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct IngestCase {
  std::string label;       ///< short name for tables/JSON
  std::string path;
  std::uint64_t bytes = 0;  ///< file size (from the scan's bytes_consumed)
  std::uint64_t rows = 0;   ///< data rows delivered by the scan
  // Streaming scan (runs FIRST, before anything materializes a job vector).
  double scan_seconds = 0.0;
  std::uint64_t scan_rss_delta = 0;  ///< VmRSS growth across the scan, bytes
  // Materializing reads, best-of repeats.
  double chunked_seconds = 0.0;
  double reference_seconds = 0.0;
  std::size_t jobs = 0;  ///< jobs kept after filters
};

std::ifstream open_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("swf_ingest: cannot open " + path);
  return in;
}

/// Pure streaming pass: pull every row, materialize nothing. The VmRSS
/// delta around this is what the flatness gate checks.
void run_scan(IngestCase& c, std::size_t chunk_bytes) {
  const std::uint64_t rss_before = current_rss_bytes();
  const auto start = std::chrono::steady_clock::now();
  std::ifstream in = open_or_die(c.path);
  SwfJobStream stream(in, SwfReadOptions{}, chunk_bytes);
  JobSpec spec;
  while (stream.next(spec)) {
  }
  c.scan_seconds = seconds_since(start);
  const std::uint64_t rss_after = current_rss_bytes();
  c.scan_rss_delta = rss_after > rss_before ? rss_after - rss_before : 0;
  c.bytes = stream.stats().bytes_consumed;
  c.rows = stream.stats().rows;
}

/// Best-of-repeats wall clock for one reader over one file.
template <typename ReadFn>
double best_of(int repeats, const std::string& path, ReadFn read) {
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) {
    std::ifstream in = open_or_die(path);
    const auto start = std::chrono::steady_clock::now();
    const Workload workload = read(in);
    const double elapsed = seconds_since(start);
    if (workload.empty()) throw std::runtime_error("swf_ingest: empty read of " + path);
    if (i == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

double mb_per_s(std::uint64_t bytes, double seconds) {
  return seconds > 0.0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto rows = static_cast<std::size_t>(args.get_int("rows", 400000));
  const int repeats = std::max(1, static_cast<int>(args.get_int("repeats", 3)));
  const auto chunk_bytes = static_cast<std::size_t>(
      args.get_int("chunk-bytes", static_cast<long long>(SwfChunkReader::kDefaultChunkBytes)));
  const std::string out_dir = args.get_or("out-dir", ".");
  const long long max_rss_mb = args.get_int("max-ingest-rss-mb", 16);
  const double min_speedup = args.get_double("min-ingest-speedup", 1.0);
  const std::string json_path = args.get_or("json", "");

  print_banner("SWF ingest", "chunked streaming reader vs getline reference",
               "archive-scale replay needs flat-memory ingestion: RICC-2010 is "
               "447794 rows, far past what per-row allocation should touch");

  const auto generate_start = std::chrono::steady_clock::now();
  std::vector<IngestCase> cases;
  for (const auto& info : trace_catalog()) {
    cases.push_back(IngestCase{info.name + "_fixture", default_fixture_path(info), 0, 0,
                               0.0, 0, 0.0, 0.0, 0});
  }
  // The archive-scale input: synthesized with the fixture writer (RICC
  // shape, full machine, status sprinkle included so sanitization runs),
  // deterministic in (trace, rows). The generator materializes a `rows`-job
  // workload and frees it again; big vector frees unmap, so the streaming
  // scans below still see a clean VmRSS baseline.
  {
    const TraceInfo* ricc = find_trace("ricc");
    if (ricc == nullptr) throw std::runtime_error("swf_ingest: ricc not in catalog");
    const std::string big_path =
        out_dir + "/swf_ingest_ricc_" + std::to_string(rows) + ".swf";
    write_trace_fixture(*ricc, big_path, rows);
    cases.push_back(IngestCase{"ricc_archive", big_path, 0, 0, 0.0, 0, 0.0, 0.0, 0});
  }
  const double generate_seconds = seconds_since(generate_start);

  // Phase 1 — streaming scans, before any materializing read pollutes the
  // heap: the RSS deltas must be flat from 2500 rows to the archive file.
  const auto ingest_start = std::chrono::steady_clock::now();
  for (auto& c : cases) run_scan(c, chunk_bytes);

  // Phase 2 — parity, then throughput. One read through each path per file,
  // byte-compared; identical output is what makes the timing comparable.
  for (auto& c : cases) {
    std::ifstream chunked_in = open_or_die(c.path);
    const Workload chunked = read_swf(chunked_in, SwfReadOptions{}, chunk_bytes);
    std::ifstream reference_in = open_or_die(c.path);
    const Workload reference = read_swf_reference(reference_in);
    std::ostringstream a;
    std::ostringstream b;
    write_swf(a, chunked);
    write_swf(b, reference);
    if (a.str() != b.str()) {
      std::fprintf(stderr, "ERROR: chunked and reference readers disagree on %s\n",
                   c.path.c_str());
      return 1;
    }
    c.jobs = chunked.size();
    c.chunked_seconds = best_of(repeats, c.path, [chunk_bytes](std::ifstream& in) {
      return read_swf(in, SwfReadOptions{}, chunk_bytes);
    });
    c.reference_seconds = best_of(
        repeats, c.path, [](std::ifstream& in) { return read_swf_reference(in); });
  }
  const double ingest_seconds = seconds_since(ingest_start);

  std::printf("\n%d-repeat best-of, chunk %zu bytes; readers byte-identical per file:\n\n",
              repeats, chunk_bytes);
  AsciiTable table({"file", "MB", "rows", "jobs", "ref MB/s", "chunked MB/s", "speedup",
                    "scan dRSS KiB"});
  bool rss_ok = true;
  bool speedup_ok = true;
  for (const auto& c : cases) {
    const double speedup =
        c.chunked_seconds > 0.0 ? c.reference_seconds / c.chunked_seconds : 0.0;
    table.add_row({c.label, AsciiTable::num(static_cast<double>(c.bytes) / 1e6, 2),
                   std::to_string(c.rows), std::to_string(c.jobs),
                   AsciiTable::num(mb_per_s(c.bytes, c.reference_seconds), 1),
                   AsciiTable::num(mb_per_s(c.bytes, c.chunked_seconds), 1),
                   AsciiTable::num(speedup, 2), std::to_string(c.scan_rss_delta / 1024)});
    if (max_rss_mb > 0 &&
        c.scan_rss_delta > static_cast<std::uint64_t>(max_rss_mb) * 1024 * 1024) {
      std::fprintf(stderr,
                   "ERROR: streaming scan of %s grew RSS by %llu KiB "
                   "(budget %lld MiB) — the scan is supposed to be memory-flat\n",
                   c.label.c_str(),
                   static_cast<unsigned long long>(c.scan_rss_delta / 1024), max_rss_mb);
      rss_ok = false;
    }
    // The speedup gate only judges the archive-scale file: sub-millisecond
    // fixture reads are noise-dominated.
    if (min_speedup > 0.0 && c.label == "ricc_archive" && speedup < min_speedup) {
      std::fprintf(stderr, "ERROR: chunked reader speedup %.2fx on %s below --min-ingest-speedup=%.2f\n",
                   speedup, c.label.c_str(), min_speedup);
      speedup_ok = false;
    }
  }
  table.print();

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for writing: " + json_path);
    JsonWriter json(out);
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.field("bench", "swf_ingest");
    json.field("detlint_version", detlint::kVersion);
    json.field("detlint_ruleset_hash", detlint::ruleset_hash());
    json.field("wall_seconds", generate_seconds + ingest_seconds);
    json.key("context");
    json.begin_object();
    json.field("rows", rows);
    json.field("repeats", repeats);
    json.field("chunk_bytes", chunk_bytes);
    json.field("max_ingest_rss_mb", max_rss_mb);
    json.field("min_ingest_speedup", min_speedup);
    json.end_object();
    json.key("phase_seconds");
    json.begin_object();
    json.field("ingest", ingest_seconds);
    json.field("generate", generate_seconds);
    json.field("simulate", 0.0);
    json.field("report", 0.0);
    json.end_object();
    json.field("peak_rss_bytes", peak_rss_bytes());
    json.key("ingest");
    json.begin_array();
    for (const auto& c : cases) {
      json.begin_object();
      json.field("file", c.label);
      json.field("path", c.path);
      json.field("bytes", c.bytes);
      json.field("rows", c.rows);
      json.field("jobs", c.jobs);
      json.field("scan_seconds", c.scan_seconds);
      json.field("scan_rows_per_s",
                 c.scan_seconds > 0.0 ? static_cast<double>(c.rows) / c.scan_seconds : 0.0);
      json.field("scan_mb_per_s", mb_per_s(c.bytes, c.scan_seconds));
      json.field("scan_rss_delta_bytes", c.scan_rss_delta);
      json.field("chunked_seconds", c.chunked_seconds);
      json.field("reference_seconds", c.reference_seconds);
      json.field("chunked_mb_per_s", mb_per_s(c.bytes, c.chunked_seconds));
      json.field("reference_mb_per_s", mb_per_s(c.bytes, c.reference_seconds));
      json.field("speedup",
                 c.chunked_seconds > 0.0 ? c.reference_seconds / c.chunked_seconds : 0.0);
      json.end_object();
    }
    json.end_array();
    json.key("gates");
    json.begin_object();
    json.field("rss_ok", rss_ok);
    json.field("speedup_ok", speedup_ok);
    json.end_object();
    json.end_object();
    json.finish();
    out.put('\n');
    if (!out) throw std::runtime_error("write failed: " + json_path);
    std::printf("  (json written to %s)\n", json_path.c_str());
  }

  return rss_ok && speedup_ok ? 0 : 1;
}
