// Shared bench plumbing: workload scales, paper reference values, and the
// normalized-metrics sweep used by several figures.
//
// Every bench accepts:
//   --scale=<f>      scale for W1-W3/W5 (default keeps runs < ~1 min)
//   --scale-curie=<f> scale for the 198K-job W4 (default 0.02)
//   --full           paper scale for everything (minutes of CPU time)
//   --seed=<n>       workload seed
// Values also come from SDSCHED_* environment variables (see util/cli.h).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "util/cli.h"
#include "util/table.h"

namespace sdsched::bench {

struct BenchContext {
  double scale_small = 0.1;   ///< W1, W2, W3
  double scale_curie = 0.02;  ///< W4 (198509 jobs at 1.0)
  double scale_w5 = 1.0;      ///< W5 is small enough to run at paper scale
  std::uint64_t seed = 0;     ///< 0 = per-workload default seeds

  static BenchContext from_args(int argc, const char* const* argv) {
    const CliArgs args(argc, argv);
    BenchContext ctx;
    if (args.get_bool("full")) {
      ctx.scale_small = 1.0;
      ctx.scale_curie = 1.0;
      ctx.scale_w5 = 1.0;
    } else {
      ctx.scale_small = args.get_double("scale", ctx.scale_small);
      ctx.scale_curie = args.get_double("scale-curie", ctx.scale_curie);
      ctx.scale_w5 = args.get_double("scale-w5", ctx.scale_w5);
    }
    ctx.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
    return ctx;
  }

  [[nodiscard]] double scale_for(int which) const {
    if (which == 4) return scale_curie;
    if (which == 5) return scale_w5;
    return scale_small;
  }
};

inline PaperWorkload load_workload(int which, const BenchContext& ctx) {
  PaperWorkload pw = paper_workload(which, ctx.scale_for(which), ctx.seed);
  std::printf("  %s: %zu jobs on %d nodes x %d cores (scale %.3g)\n", pw.label.c_str(),
              pw.workload.size(), pw.machine.nodes,
              pw.machine.node.sockets * pw.machine.node.cores_per_socket,
              ctx.scale_for(which));
  return pw;
}

/// One row of the Fig. 1-3 sweep: normalized metrics per cut-off variant.
struct SweepRow {
  std::string workload;
  std::string variant;
  NormalizedMetrics normalized;
};

/// Run the MAXSD sweep (Figs. 1-3) over the given workloads: for each, one
/// static-backfill baseline plus every cut-off variant, all normalized to
/// the baseline.
inline std::vector<SweepRow> run_maxsd_sweep(const std::vector<int>& workloads,
                                             const BenchContext& ctx,
                                             RuntimeModelKind exec = RuntimeModelKind::Ideal) {
  std::vector<SweepRow> rows;
  for (const int which : workloads) {
    const PaperWorkload pw = load_workload(which, ctx);
    const SimulationReport base = run_single(pw, baseline_config(pw.machine));
    for (const auto& variant : maxsd_sweep()) {
      SimulationConfig cfg = sd_config(pw.machine, variant.cutoff, exec);
      const SimulationReport report = run_single(pw, cfg);
      rows.push_back(SweepRow{pw.label, variant.label,
                              normalize(report.summary, base.summary)});
    }
  }
  return rows;
}

inline void print_banner(const char* id, const char* title, const char* paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", paper_note);
  std::printf("==============================================================\n");
}

}  // namespace sdsched::bench
