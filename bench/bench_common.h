// Shared bench plumbing: workload scales, the sweep-grid helpers every
// figure/table bench executes through, and machine-readable JSON output.
//
// Every bench accepts:
//   --scale=<f>       scale for W1-W3/W5 (default keeps runs < ~1 min)
//   --scale-curie=<f> scale for the 198K-job W4 (default 0.02)
//   --full            paper scale for everything (minutes of CPU time)
//   --seed=<n>        workload seed
//   --jobs=<n>        sweep concurrency: 0 = one worker per hardware thread
//                     (the default — the grid is parallel by default),
//                     1 = serial inline execution
//   --seeds=<n>       replicate the grid across n deterministically derived
//                     workload seeds (rep 0 = --seed; SweepRunner::cell_seed
//                     derives the rest). Tables show rep 0; JSON has all.
//   --json=<path>     write a machine-readable BENCH_*.json-style document
//   --check-serial    after the sweep, re-run serially and verify per-cell
//                     reports are byte-identical (prints both wall-clocks)
// Values also come from SDSCHED_* environment variables (see util/cli.h).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/sweep.h"
#include "detlint/ruleset.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rss.h"
#include "util/table.h"

namespace sdsched::bench {

struct BenchContext {
  double scale_small = 0.1;   ///< W1, W2, W3
  double scale_curie = 0.02;  ///< W4 (198509 jobs at 1.0)
  double scale_w5 = 1.0;      ///< W5 is small enough to run at paper scale
  std::uint64_t seed = 0;     ///< 0 = per-workload default seeds
  int jobs = 0;               ///< sweep workers (0 = hardware, 1 = serial)
  int seed_reps = 1;          ///< grid replications across derived seeds
  std::string json_path;      ///< "" = no JSON output
  bool check_serial = false;  ///< verify parallel == serial per cell
  /// Process phase anchor: everything between construction and the sweep is
  /// the `generate` phase of the JSON `phase_seconds` breakdown.
  std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();
  /// Time spent reading/synthesizing workload inputs, set by benches that
  /// ingest traces (trace_replay, swf_ingest). Carved out of `generate` as
  /// its own `ingest` entry in the JSON phase breakdown, so archive-scale
  /// soaks show parse time separately from simulation.
  double ingest_seconds = 0.0;

  static BenchContext from_args(int argc, const char* const* argv) {
    const CliArgs args(argc, argv);
    BenchContext ctx;
    if (args.get_bool("full")) {
      ctx.scale_small = 1.0;
      ctx.scale_curie = 1.0;
      ctx.scale_w5 = 1.0;
    } else {
      ctx.scale_small = args.get_double("scale", ctx.scale_small);
      ctx.scale_curie = args.get_double("scale-curie", ctx.scale_curie);
      ctx.scale_w5 = args.get_double("scale-w5", ctx.scale_w5);
    }
    ctx.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
    ctx.jobs = static_cast<int>(args.get_int("jobs", 0));
    ctx.seed_reps = static_cast<int>(args.get_int("seeds", 1));
    if (ctx.seed_reps < 1) ctx.seed_reps = 1;
    ctx.json_path = args.get_or("json", "");
    ctx.check_serial = args.get_bool("check-serial");
    return ctx;
  }

  [[nodiscard]] double scale_for(int which) const {
    if (which == 4) return scale_curie;
    if (which == 5) return scale_w5;
    return scale_small;
  }

  /// Workload seed for grid replication `rep` (rep 0 = the --seed value).
  [[nodiscard]] std::uint64_t seed_for_rep(int rep) const {
    return rep == 0 ? seed : SweepRunner::cell_seed(seed, static_cast<std::size_t>(rep));
  }
};

/// Split a comma-separated flag value into its non-empty tokens.
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < csv.size();) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Parse a "--workloads=1,3,4"-style list (values clamped to 1..5).
inline std::vector<int> parse_workload_list(const std::string& csv,
                                            std::vector<int> fallback) {
  std::vector<int> out;
  for (const std::string& token : split_csv(csv)) {
    const int which = std::atoi(token.c_str());
    if (which >= 1 && which <= 5) out.push_back(which);
  }
  return out.empty() ? fallback : out;
}

inline PaperWorkload load_workload(int which, const BenchContext& ctx,
                                   std::uint64_t seed_override = 0, bool announce = true) {
  const std::uint64_t seed = seed_override != 0 ? seed_override : ctx.seed;
  PaperWorkload pw = paper_workload(which, ctx.scale_for(which), seed);
  if (announce) {
    std::printf("  %s: %zu jobs on %d nodes x %d cores (scale %.3g)\n", pw.label.c_str(),
                pw.workload.size(), pw.machine.nodes,
                pw.machine.node.sockets * pw.machine.node.cores_per_socket,
                ctx.scale_for(which));
  }
  return pw;
}

/// One normalized comparison of a sweep cell against its baseline cell.
struct SweepRow {
  std::string cell;      ///< cell name, e.g. "W1/MAXSD 10"
  std::string baseline;  ///< baseline cell name, e.g. "W1/baseline"
  std::string workload;  ///< workload label ("W1")
  std::string variant;   ///< variant label ("MAXSD 10")
  int rep = 0;           ///< seed replication index
  NormalizedMetrics normalized;
};

struct SweepExecution {
  std::vector<SweepResult> results;
  double wall_seconds = 0.0;      ///< the sweep itself (`simulate` phase)
  double generate_seconds = 0.0;  ///< context construction -> sweep start
};

/// Execute `cells` with the context's --jobs setting; print a one-line
/// timing note. With --check-serial, re-run serially and abort (exit 1) if
/// any per-cell report differs byte-for-byte.
inline SweepExecution run_cells(const std::vector<SweepCell>& cells, const BenchContext& ctx) {
  SweepExecution exec;
  const SweepRunner runner(ctx.jobs);
  const auto start = std::chrono::steady_clock::now();
  exec.generate_seconds = std::chrono::duration<double>(start - ctx.started).count();
  exec.results = runner.run(cells);
  exec.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::printf("  sweep: %zu cells in %.2fs (%zu workers)\n", cells.size(), exec.wall_seconds,
              runner.effective_jobs(cells.size()));
  if (ctx.check_serial) {
    const auto serial_start = std::chrono::steady_clock::now();
    const auto serial = SweepRunner(1).run(cells);
    const double serial_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - serial_start).count();
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      // Summary/counters via the canonical JSON form, plus every per-job
      // record — the heatmap/timeline benches consume records directly.
      if (serial[i].report.json() != exec.results[i].report.json() ||
          serial[i].report.records != exec.results[i].report.records) {
        std::fprintf(stderr, "  MISMATCH: cell '%s' differs between parallel and serial run\n",
                     cells[i].name.c_str());
        ++mismatches;
      }
    }
    std::printf("  check-serial: serial re-run %.2fs vs %.2fs parallel; %zu cells %s\n",
                serial_wall, exec.wall_seconds, cells.size(),
                mismatches == 0 ? "byte-identical" : "MISMATCHED");
    if (mismatches != 0) std::exit(1);
  }
  return exec;
}

/// Declarative grid construction shared by the bench binaries: a sequence
/// of baseline() / variant() calls, then run() executes the whole grid and
/// fills every row's metrics normalized against its baseline cell.
class GridBuilder {
 public:
  /// Start a new baseline cell; subsequent variant() calls normalize
  /// against it.
  void baseline(const std::string& name, const Workload& workload,
                const SimulationConfig& cfg) {
    base_index_ = cells.size();
    cells.push_back(SweepCell{name, workload, cfg});
  }

  void variant(const std::string& workload_label, const std::string& variant_label, int rep,
               const Workload& workload, const SimulationConfig& cfg) {
    const std::string prefix =
        rep == 0 ? workload_label : workload_label + "#" + std::to_string(rep);
    row_cell_.push_back(cells.size());
    row_base_.push_back(base_index_);
    cells.push_back(SweepCell{prefix + "/" + variant_label, workload, cfg});
    rows.push_back(SweepRow{cells.back().name, cells[base_index_].name, workload_label,
                            variant_label, rep, NormalizedMetrics{}});
  }

  /// Execute via run_cells() and fill in rows[i].normalized.
  SweepExecution run(const BenchContext& ctx) {
    SweepExecution exec = run_cells(cells, ctx);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i].normalized = normalize(exec.results[row_cell_[i]].report.summary,
                                     exec.results[row_base_[i]].report.summary);
    }
    return exec;
  }

  /// The report behind rows[row] (for per-variant counters like guests).
  [[nodiscard]] const SimulationReport& row_report(const SweepExecution& exec,
                                                   std::size_t row) const {
    return exec.results[row_cell_[row]].report;
  }

  std::vector<SweepCell> cells;
  std::vector<SweepRow> rows;  ///< one per variant() call

 private:
  std::vector<std::size_t> row_cell_;  ///< rows[i] <- cells[row_cell_[i]]
  std::vector<std::size_t> row_base_;  ///< rows[i]'s baseline cell index
  std::size_t base_index_ = 0;
};

/// Run the MAXSD sweep (Figs. 1-3) over the given workloads: per
/// (seed rep, workload) one static-backfill baseline cell plus every
/// cut-off variant, all sharing that workload's job storage.
struct MaxsdSweepOutput {
  std::vector<SweepRow> rows;
  SweepExecution exec;
};

inline MaxsdSweepOutput run_maxsd_sweep(const std::vector<int>& workloads,
                                        const BenchContext& ctx,
                                        RuntimeModelKind exec = RuntimeModelKind::Ideal) {
  GridBuilder grid;
  for (int rep = 0; rep < ctx.seed_reps; ++rep) {
    for (const int which : workloads) {
      const PaperWorkload pw =
          load_workload(which, ctx, ctx.seed_for_rep(rep), /*announce=*/rep == 0);
      const std::string prefix =
          rep == 0 ? pw.label : pw.label + "#" + std::to_string(rep);
      grid.baseline(prefix + "/baseline", pw.workload, baseline_config(pw.machine));
      for (const auto& v : maxsd_sweep()) {
        grid.variant(pw.label, v.label, rep, pw.workload,
                     sd_config(pw.machine, v.cutoff, exec));
      }
    }
  }
  MaxsdSweepOutput out;
  out.exec = grid.run(ctx);
  out.rows = std::move(grid.rows);
  return out;
}

/// Write the machine-readable bench document ("sdsched-bench-v1"): context,
/// every cell's report and wall-clock, plus the normalized rows (if any).
/// `extra`, when given, is invoked inside the top-level object so a bench
/// can append bench-specific keys (e.g. trace_replay's "traces" array);
/// docs/bench-format.md documents the schema including the extensions.
inline void write_bench_json(const std::string& path, const char* bench_id,
                             const BenchContext& ctx, const SweepExecution& exec,
                             const std::vector<SweepRow>& rows = {},
                             const std::function<void(JsonWriter&)>& extra = {}) {
  if (path.empty()) return;
  // Sink mode: the document streams to disk every ~64 KiB, so an
  // archive-scale artifact never accumulates in memory on top of the run it
  // is accounting for.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", "sdsched-bench-v1");
  json.field("bench", bench_id);
  // Determinism-contract stamp: which linter + rule table vetted the tree
  // that produced these numbers (docs/determinism.md). A hash change between
  // two artifacts means the contract itself moved — compare with care.
  json.field("detlint_version", detlint::kVersion);
  json.field("detlint_ruleset_hash", detlint::ruleset_hash());
  json.key("context");
  json.begin_object();
  json.field("scale_small", ctx.scale_small);
  json.field("scale_curie", ctx.scale_curie);
  json.field("scale_w5", ctx.scale_w5);
  json.field("seed", ctx.seed);
  json.field("seed_reps", ctx.seed_reps);
  json.field("jobs", ctx.jobs);
  json.end_object();
  json.field("wall_seconds", exec.wall_seconds);
  // Phase breakdown + footprint (docs/bench-format.md): `report` is
  // everything after the sweep — table printing, normalization, and, under
  // --check-serial, the serial verification re-run.
  {
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ctx.started)
            .count();
    const double report_seconds =
        std::max(0.0, total - exec.generate_seconds - exec.wall_seconds);
    // `ingest` (trace parsing/synthesis) is a carve-out of `generate`, so
    // the four phases still sum to the process wall-clock.
    const double ingest_seconds =
        std::clamp(ctx.ingest_seconds, 0.0, exec.generate_seconds);
    json.key("phase_seconds");
    json.begin_object();
    json.field("ingest", ingest_seconds);
    json.field("generate", exec.generate_seconds - ingest_seconds);
    json.field("simulate", exec.wall_seconds);
    json.field("report", report_seconds);
    json.end_object();
    json.field("peak_rss_bytes", peak_rss_bytes());
  }
  json.key("cells");
  json.begin_array();
  for (const auto& result : exec.results) {
    json.begin_object();
    json.field("name", result.name);
    json.field("wall_seconds", result.wall_seconds);
    json.key("report");
    result.report.to_json(json);
    json.end_object();
  }
  json.end_array();
  json.key("normalized");
  json.begin_array();
  for (const auto& row : rows) {
    json.begin_object();
    json.field("cell", row.cell);
    json.field("baseline", row.baseline);
    json.field("workload", row.workload);
    json.field("variant", row.variant);
    json.field("rep", row.rep);
    json.key("metrics");
    to_json(json, row.normalized);
    json.end_object();
  }
  json.end_array();
  if (extra) extra(json);
  json.end_object();
  json.finish();
  out.put('\n');
  if (!out) throw std::runtime_error("write failed: " + path);
  std::printf("  (json written to %s)\n", path.c_str());
}

inline void print_banner(const char* id, const char* title, const char* paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", paper_note);
  std::printf("==============================================================\n");
}

}  // namespace sdsched::bench
