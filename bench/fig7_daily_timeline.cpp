// Figure 7: per-day average slowdown under static backfill vs SD-Policy
// MAXSD 10 on the Curie-like workload, with the number of jobs scheduled
// with malleability per day, plus the paper's totals (20476 guests = 10.3%,
// 17102 mates = 8.6% at full scale).
#include <algorithm>

#include "bench_common.h"
#include "metrics/timeseries.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  using namespace sdsched::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner("Figure 7", "Daily slowdown timeline + malleable starts",
               "slowdown peaks flattened all along the trace; totals 20476 "
               "guests (10.3%) and 17102 mates (8.6%) of 198509 jobs");

  const PaperWorkload pw = load_workload(4, ctx);
  const std::vector<SweepCell> cells = {
      {"W4/baseline", pw.workload, baseline_config(pw.machine)},
      {"W4/MAXSD 10", pw.workload, sd_config(pw.machine, CutoffConfig::max_sd(10.0))},
  };
  const SweepExecution exec = run_cells(cells, ctx);
  const SimulationReport& base = exec.results[0].report;
  const SimulationReport& sd = exec.results[1].report;

  const DailySeries sd_series = DailySeries::from_records(sd.records);
  const DailySeries base_series = DailySeries::from_records(base.records);
  std::fputs(sd_series.render(&base_series).c_str(), stdout);

  const CliArgs args(argc, argv);
  const std::string csv_path = args.get_or("csv", "");
  if (!csv_path.empty()) {
    CsvWriter csv(csv_path);
    csv.row("day", "sd_avg_slowdown", "base_avg_slowdown", "malleable_scheduled");
    for (std::size_t d = 0; d < sd_series.days(); ++d) {
      const auto& p = sd_series.points()[d];
      const double b =
          d < base_series.days() ? base_series.points()[d].avg_slowdown : 0.0;
      csv.row("", p.avg_slowdown, b, p.malleable_scheduled);
    }
    std::printf("(csv written to %s)\n", csv_path.c_str());
  }

  const double guest_pct =
      100.0 * static_cast<double>(sd.summary.guests) / static_cast<double>(sd.summary.jobs);
  const double mate_pct =
      100.0 * static_cast<double>(sd.summary.mates) / static_cast<double>(sd.summary.jobs);
  std::printf("\nmeasured: %llu guests (%.1f%%), %llu mates (%.1f%%) of %zu jobs\n",
              static_cast<unsigned long long>(sd.summary.guests), guest_pct,
              static_cast<unsigned long long>(sd.summary.mates), mate_pct,
              sd.summary.jobs);
  std::printf("paper:    20476 guests (10.3%%), 17102 mates (8.6%%) of 198509 jobs\n");

  // Peak flattening: compare the worst day of each policy.
  double base_peak = 0.0;
  double sd_peak = 0.0;
  for (const auto& p : base_series.points()) base_peak = std::max(base_peak, p.avg_slowdown);
  for (const auto& p : sd_series.points()) sd_peak = std::max(sd_peak, p.avg_slowdown);
  std::printf("daily slowdown peak: static %.0f vs SD %.0f (%.0f%% reduction)\n", base_peak,
              sd_peak, base_peak > 0 ? 100.0 * (1.0 - sd_peak / base_peak) : 0.0);

  const std::vector<SweepRow> rows = {
      {"W4/MAXSD 10", "W4/baseline", "W4", "MAXSD 10", 0,
       normalize(sd.summary, base.summary)},
  };
  write_bench_json(ctx.json_path, "Figure 7", ctx, exec, rows);
  return 0;
}
