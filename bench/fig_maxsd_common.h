// Shared driver for Figures 1-3: the MAX_SLOWDOWN sweep over workloads 1-4
// (SharingFactor 0.5, ideal runtime model), each metric normalized to the
// static-backfill baseline. One figure binary per metric, as in the paper.
// The whole grid — 4 workloads x (baseline + 5 cut-off variants), times any
// --seeds replications — runs as one parallel sweep.
#pragma once

#include <functional>

#include "bench_common.h"

namespace sdsched::bench {

inline int run_maxsd_figure(int argc, char** argv, const char* fig_id, const char* metric_name,
                            const char* paper_note,
                            const std::function<double(const NormalizedMetrics&)>& metric) {
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner(fig_id, metric_name, paper_note);

  // --workloads=1,3 restricts the grid (CI smoke, single-workload runs).
  const CliArgs args(argc, argv);
  const std::vector<int> workloads =
      parse_workload_list(args.get_or("workloads", ""), {1, 2, 3, 4});
  const MaxsdSweepOutput sweep = run_maxsd_sweep(workloads, ctx);

  std::vector<std::string> header{"workload"};
  for (const auto& variant : maxsd_sweep()) header.push_back(variant.label);
  AsciiTable table(header);

  for (const int which : workloads) {
    const std::string wl = "W" + std::to_string(which);
    std::vector<std::string> row{wl};
    for (const auto& variant : maxsd_sweep()) {
      for (const auto& r : sweep.rows) {
        if (r.rep == 0 && r.workload == wl && r.variant == variant.label) {
          row.push_back(AsciiTable::num(metric(r.normalized), 3));
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("\n%s, normalized to static backfill (<1 means SD-Policy wins):\n\n",
              metric_name);
  table.print();
  if (ctx.seed_reps > 1) {
    std::printf("\n(table shows seed rep 0 of %d; all reps are in the JSON output)\n",
                ctx.seed_reps);
  }
  write_bench_json(ctx.json_path, fig_id, ctx, sweep.exec, sweep.rows);
  return 0;
}

}  // namespace sdsched::bench
