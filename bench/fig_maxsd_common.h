// Shared driver for Figures 1-3: the MAX_SLOWDOWN sweep over workloads 1-4
// (SharingFactor 0.5, ideal runtime model), each metric normalized to the
// static-backfill baseline. One figure binary per metric, as in the paper.
#pragma once

#include <functional>

#include "bench_common.h"

namespace sdsched::bench {

inline int run_maxsd_figure(int argc, char** argv, const char* fig_id, const char* metric_name,
                            const char* paper_note,
                            const std::function<double(const NormalizedMetrics&)>& metric) {
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner(fig_id, metric_name, paper_note);

  const auto rows = run_maxsd_sweep({1, 2, 3, 4}, ctx);

  std::vector<std::string> header{"workload"};
  for (const auto& variant : maxsd_sweep()) header.push_back(variant.label);
  AsciiTable table(header);

  const char* labels[] = {"W1", "W2", "W3", "W4"};
  for (const char* wl : labels) {
    std::vector<std::string> row{wl};
    for (const auto& variant : maxsd_sweep()) {
      for (const auto& r : rows) {
        if (r.workload == wl && r.variant == variant.label) {
          row.push_back(AsciiTable::num(metric(r.normalized), 3));
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("\n%s, normalized to static backfill (<1 means SD-Policy wins):\n\n",
              metric_name);
  table.print();
  return 0;
}

}  // namespace sdsched::bench
