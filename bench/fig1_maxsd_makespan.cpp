// Figure 1: makespan for workloads 1-4 vs the MAX_SLOWDOWN parameter,
// normalized to the static backfill simulation.
#include "fig_maxsd_common.h"

int main(int argc, char** argv) {
  return sdsched::bench::run_maxsd_figure(
      argc, argv, "Figure 1", "Makespan",
      "makespan roughly constant across MAXSD values (within a few % of "
      "static backfill for all four workloads)",
      [](const sdsched::NormalizedMetrics& n) { return n.makespan; });
}
