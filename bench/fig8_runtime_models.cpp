// Figure 8: makespan, average response time and slowdown for workloads 1-4
// under SD-Policy DynAVGSD, executing with the ideal vs the worst-case
// runtime model, normalized to static backfill.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  using namespace sdsched::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner("Figure 8", "Ideal vs worst-case runtime model (SD DynAVGSD)",
               "worst-case raises response up to +11% (W1) and slowdown +16% "
               "(W1), +3.5% (W3), +1% (W4); makespan +9% (W3); W2 unaffected; "
               "all still beat static backfill");

  // The grid as data: per workload one baseline plus SD DynAVGSD under each
  // execution model, all twelve simulations in one parallel sweep.
  GridBuilder grid;
  for (const int which : {1, 2, 3, 4}) {
    const PaperWorkload pw = load_workload(which, ctx);
    grid.baseline(pw.label + "/baseline", pw.workload, baseline_config(pw.machine));
    for (const RuntimeModelKind model :
         {RuntimeModelKind::Ideal, RuntimeModelKind::WorstCase}) {
      grid.variant(pw.label, to_string(model), 0, pw.workload,
                   sd_config(pw.machine, CutoffConfig::dynamic_avg(), model));
    }
  }
  const SweepExecution exec = grid.run(ctx);

  AsciiTable table({"workload", "model", "makespan", "avg response", "avg slowdown"});
  for (const SweepRow& row : grid.rows) {
    table.add_row({row.workload, row.variant, AsciiTable::num(row.normalized.makespan, 3),
                   AsciiTable::num(row.normalized.avg_response, 3),
                   AsciiTable::num(row.normalized.avg_slowdown, 3)});
  }
  std::printf("\nnormalized to static backfill (<1: SD wins; worst-case rows "
              "should sit at or above the ideal rows):\n\n");
  table.print();
  write_bench_json(ctx.json_path, "Figure 8", ctx, exec, grid.rows);
  return 0;
}
