// Figure 8: makespan, average response time and slowdown for workloads 1-4
// under SD-Policy DynAVGSD, executing with the ideal vs the worst-case
// runtime model, normalized to static backfill.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  using namespace sdsched::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);
  print_banner("Figure 8", "Ideal vs worst-case runtime model (SD DynAVGSD)",
               "worst-case raises response up to +11% (W1) and slowdown +16% "
               "(W1), +3.5% (W3), +1% (W4); makespan +9% (W3); W2 unaffected; "
               "all still beat static backfill");

  AsciiTable table({"workload", "model", "makespan", "avg response", "avg slowdown"});
  for (const int which : {1, 2, 3, 4}) {
    const PaperWorkload pw = load_workload(which, ctx);
    const SimulationReport base = run_single(pw, baseline_config(pw.machine));
    for (const RuntimeModelKind model :
         {RuntimeModelKind::Ideal, RuntimeModelKind::WorstCase}) {
      const SimulationReport report =
          run_single(pw, sd_config(pw.machine, CutoffConfig::dynamic_avg(), model));
      const NormalizedMetrics norm = normalize(report.summary, base.summary);
      table.add_row({pw.label, to_string(model), AsciiTable::num(norm.makespan, 3),
                     AsciiTable::num(norm.avg_response, 3),
                     AsciiTable::num(norm.avg_slowdown, 3)});
    }
  }
  std::printf("\nnormalized to static backfill (<1: SD wins; worst-case rows "
              "should sit at or above the ideal rows):\n\n");
  table.print();
  return 0;
}
