// Figure 3: average slowdown for workloads 1-4 vs MAX_SLOWDOWN, normalized
// to the static backfill simulation.
#include "fig_maxsd_common.h"

int main(int argc, char** argv) {
  return sdsched::bench::run_maxsd_figure(
      argc, argv, "Figure 3", "Average slowdown",
      "slowdown reductions up to 49.5% (W1), 31% (W2), 25.7% (W3), 70.4% "
      "(W4); higher MAXSD generally helps, DynAVGSD best on W2",
      [](const sdsched::NormalizedMetrics& n) { return n.avg_slowdown; });
}
