// google-benchmark micro benchmarks for the scheduler machinery: event
// queue throughput, reservation-profile queries, backfill pass cost, mate
// selection, and whole-simulation throughput per policy.
#include <benchmark/benchmark.h>

#include "api/simulation.h"
#include "core/mate_selector.h"
#include "drom/node_manager.h"
#include "sched/reservation.h"
#include "sim/event_queue.h"
#include "workload/cirne.h"

namespace {

using namespace sdsched;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.schedule((i * 2654435761u) % 100000,
                     Event{EventKind::JobSubmit, static_cast<JobId>(i)});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_EventQueueCancellationChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(
          queue.schedule(i, Event{EventKind::JobFinish, static_cast<JobId>(i)}));
    }
    for (int i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancellationChurn)->Arg(10000);

void BM_ReservationEarliestStart(benchmark::State& state) {
  ReservationProfile profile(5040);
  for (int i = 0; i < 1000; ++i) {
    profile.reserve(i * 100, i * 100 + 5000, 1 + i % 32);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_start(128, 3600, 50000));
  }
}
BENCHMARK(BM_ReservationEarliestStart);

void BM_MateSelection(benchmark::State& state) {
  const int running = static_cast<int>(state.range(0));
  MachineConfig mc;
  mc.nodes = running * 2 + 2;
  mc.node = NodeConfig{2, 24};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  for (int i = 0; i < running; ++i) {
    JobSpec spec;
    spec.req_cpus = 96;
    spec.req_nodes = 2;
    spec.req_time = 100000;
    spec.base_runtime = 100000;
    spec.submit = 0;
    const JobId id = jobs.add(spec);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 100000;
    mgr.start_static(0, id, *machine.find_free_nodes(2));
  }
  JobSpec guest_spec;
  guest_spec.req_cpus = 96;
  guest_spec.req_nodes = 2;
  guest_spec.req_time = 600;
  guest_spec.base_runtime = 600;
  const JobId guest = jobs.add(guest_spec);

  SdConfig sd;
  MateSelector selector(machine, jobs, sd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(jobs.at(guest), 1000, 1e18));
  }
  state.SetItemsProcessed(state.iterations() * running);
}
BENCHMARK(BM_MateSelection)->Arg(16)->Arg(128);

void BM_WholeSimulation(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  CirneConfig wl;
  wl.n_jobs = 400;
  wl.system_nodes = 32;
  wl.cores_per_node = 48;
  wl.max_job_nodes = 8;
  wl.seed = 11;
  const Workload workload = generate_cirne(wl);
  SimulationConfig config;
  config.machine.nodes = 32;
  config.machine.node = NodeConfig{2, 24};
  config.policy = policy;
  for (auto _ : state) {
    Simulation sim(config, workload);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * wl.n_jobs);
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_WholeSimulation)
    ->Arg(static_cast<int>(PolicyKind::Fcfs))
    ->Arg(static_cast<int>(PolicyKind::Backfill))
    ->Arg(static_cast<int>(PolicyKind::SdPolicy))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
