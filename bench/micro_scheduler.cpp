// google-benchmark micro benchmarks for the scheduler machinery: event
// queue throughput, reservation-profile queries, backfill pass cost, mate
// selection, and whole-simulation throughput per policy.
//
// A second mode, `--pass-metrics` (with optional `--json=<path>` and
// `--passes=<n>`), bypasses google-benchmark and runs the incremental-state
// study: per-scheduling-pass p50/p95 latency and profile breakpoint counts
// across machine sizes, for the event-driven index (steady and churning
// clusters) against the historical full-scan rebuild.
//
// A third mode, `--sd-pass` (with optional `--json=<path>`, `--selects=<n>`,
// `--picks=<n>`, `--flips=<n>`, `--max-freepick-p95-ns=<n>`), runs the SD
// hot-path study: mate-selection p50/p95 latency plus candidates-scanned /
// combinations-evaluated counters across machine sizes, for the
// incrementally maintained MateRegistry against the historical
// whole-job-table scan (plans are asserted identical) — plus the free-pick
// study, a 256→1024→5040→50K node-count sweep reporting free-node pick
// p50/p95 and flip throughput for the bitmap FreeNodeIndex against the raw
// machine scan (picks are asserted byte-identical across the two
// tiers). `--max-freepick-p95-ns` is the
// CI regression guard: nonzero makes the run fail if the bitmap pick p95
// at the largest machine exceeds the budget. Both JSON documents land in
// the same `sdsched-bench-v1` family the figure benches emit; CI's
// bench-smoke job uploads them next to bench.json.
//
// A fourth mode, `--sd-saturation` (with optional `--json=<path>`,
// `--depths=<d1,d2,...>`, `--sd-sat-passes=<n>`, `--sd-guest-budget=<k>`,
// `--max-sd-saturation-ratio=<r>`), profiles the FULL SD scheduling pass
// (SdPolicyScheduler::schedule_pass, not one mate selection) on a full
// 5040-node Curie-shaped machine at saturated queue depths. Two tiers per
// depth: `budgeted` is the production saturated-queue config (default
// bf_max_jobs, guest budget K, failed-select ledger on) and `naive` is the
// conceptual unbounded scan (bf_max_jobs = depth, no budget, no ledger) —
// the cost the ledger and budget exist to avoid. `--max-sd-saturation-
// ratio` gates budgeted p95(largest depth) / p95(smallest depth) in CI:
// the budgeted pass must stay depth-flat (~1x; the gate allows 10x) while
// the naive tier scales ~linearly with depth.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "api/simulation.h"
#include "cluster/cluster_state_index.h"
#include "cluster/free_node_index.h"
#include "cluster/shard_layout.h"
#include "cluster/sharded_cluster_index.h"
#include "util/thread_pool.h"
#include "core/mate_registry.h"
#include "detlint/ruleset.h"
#include "core/mate_selector.h"
#include "core/sd_policy.h"
#include "drom/node_manager.h"
#include "sched/backfill.h"
#include "sched/reservation.h"
#include "sim/event_queue.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rss.h"
#include "util/stats.h"
#include "workload/cirne.h"

namespace {

using namespace sdsched;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.schedule((i * 2654435761u) % 100000,
                     Event{EventKind::JobSubmit, static_cast<JobId>(i)});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_EventQueueCancellationChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(
          queue.schedule(i, Event{EventKind::JobFinish, static_cast<JobId>(i)}));
    }
    for (int i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancellationChurn)->Arg(10000);

void BM_ReservationEarliestStart(benchmark::State& state) {
  ReservationProfile profile(5040);
  for (int i = 0; i < 1000; ++i) {
    profile.reserve(i * 100, i * 100 + 5000, 1 + i % 32);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_start(128, 3600, 50000));
  }
}
BENCHMARK(BM_ReservationEarliestStart);

void BM_MateSelection(benchmark::State& state) {
  const int running = static_cast<int>(state.range(0));
  MachineConfig mc;
  mc.nodes = running * 2 + 2;
  mc.node = NodeConfig{2, 24};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  for (int i = 0; i < running; ++i) {
    JobSpec spec;
    spec.req_cpus = 96;
    spec.req_nodes = 2;
    spec.req_time = 100000;
    spec.base_runtime = 100000;
    spec.submit = 0;
    const JobId id = jobs.add(spec);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 100000;
    mgr.start_static(0, id, *machine.find_free_nodes(2));
  }
  JobSpec guest_spec;
  guest_spec.req_cpus = 96;
  guest_spec.req_nodes = 2;
  guest_spec.req_time = 600;
  guest_spec.base_runtime = 600;
  const JobId guest = jobs.add(guest_spec);

  SdConfig sd;
  MateSelector selector(machine, jobs, sd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(jobs.at(guest), 1000, 1e18));
  }
  state.SetItemsProcessed(state.iterations() * running);
}
BENCHMARK(BM_MateSelection)->Arg(16)->Arg(128);

void BM_WholeSimulation(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  CirneConfig wl;
  wl.n_jobs = 400;
  wl.system_nodes = 32;
  wl.cores_per_node = 48;
  wl.max_job_nodes = 8;
  wl.seed = 11;
  const Workload workload = generate_cirne(wl);
  SimulationConfig config;
  config.machine.nodes = 32;
  config.machine.node = NodeConfig{2, 24};
  config.policy = policy;
  for (auto _ : state) {
    Simulation sim(config, workload);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * wl.n_jobs);
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_WholeSimulation)
    ->Arg(static_cast<int>(PolicyKind::Fcfs))
    ->Arg(static_cast<int>(PolicyKind::Backfill))
    ->Arg(static_cast<int>(PolicyKind::SdPolicy))
    ->Unit(benchmark::kMillisecond);

/// Emit the shared sdsched-bench-v1 footprint tail (docs/bench-format.md):
/// the per-phase wall-clock breakdown and the peak-RSS probe. Placed last
/// in the document so `report` covers table rendering plus the document
/// serialization up to this stamp.
void write_phase_tail(JsonWriter& json, double generate_seconds, double simulate_seconds,
                      double report_seconds) {
  json.key("phase_seconds");
  json.begin_object();
  json.field("generate", generate_seconds);
  json.field("simulate", simulate_seconds);
  json.field("report", report_seconds);
  json.end_object();
  json.field("peak_rss_bytes", peak_rss_bytes());
}

// ---------------------------------------------------------------------------
// --pass-metrics: the O(dirty) demonstration.
// ---------------------------------------------------------------------------

/// Starts never fire in this study (the machine is kept full); fail loudly
/// if a pass decides otherwise.
class NoStartExecutor final : public StartExecutor {
 public:
  void start_static(JobId, const std::vector<int>&) override { std::abort(); }
  void start_guest(JobId, const MatePlan&) override { std::abort(); }
};

struct PassStats {
  std::string label;
  int nodes = 0;
  int passes = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  std::size_t breakpoints = 0;
  std::uint64_t profile_reuses = 0;
  std::uint64_t profile_rebuilds = 0;
};

/// A full cluster with few distinct release times (8 groups) plus a queue
/// that cannot start: every pass re-derives reservations only. `churn`
/// replaces one node's occupant per pass (the dirty case); `use_index`
/// false runs the historical full-scan rebuild for comparison.
PassStats run_pass_study(const char* label, int node_count, int passes, bool use_index,
                         bool churn, double& generate_seconds) {
  const auto setup_start = std::chrono::steady_clock::now();
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 24};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);
  NoStartExecutor executor;
  BackfillScheduler scheduler(machine, jobs, executor, SchedConfig{});
  if (use_index) scheduler.set_cluster_index(&index);

  const auto add_running = [&](SimTime predicted_end) {
    JobSpec spec;
    spec.req_cpus = machine.cores_per_node();
    spec.req_nodes = 1;
    spec.req_time = 1000000;
    spec.base_runtime = 1000000;
    const JobId id = jobs.add(spec);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = predicted_end;
    return id;
  };
  // Fill every node; occupants release in 8 waves far in the future.
  std::vector<JobId> occupant(static_cast<std::size_t>(node_count));
  for (int n = 0; n < node_count; ++n) {
    const JobId id = add_running(1000000 + (n % 8) * 1000);
    mgr.start_static(0, id, {n});
    occupant[static_cast<std::size_t>(n)] = id;
  }
  // Waiting jobs that cannot start before the waves release.
  for (int q = 0; q < 16; ++q) {
    JobSpec spec;
    spec.submit = 0;
    spec.req_cpus = (node_count / 2) * machine.cores_per_node();
    spec.req_nodes = node_count / 2;
    spec.req_time = 3600;
    spec.base_runtime = 3600;
    const JobId id = jobs.add(spec);
    scheduler.on_submit(id);
  }

  generate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - setup_start).count();

  std::vector<double> latencies_ns;
  latencies_ns.reserve(static_cast<std::size_t>(passes));
  SimTime now = 1;
  int churn_cursor = 0;
  for (int p = 0; p < passes; ++p, ++now) {
    if (churn && p > 0) {
      // One node changes occupant between passes: the index hears two
      // notifications; everything else is untouched.
      const int node = churn_cursor++ % node_count;
      JobId& slot = occupant[static_cast<std::size_t>(node)];
      jobs.at(slot).state = JobState::Completed;
      mgr.finish_job(now, slot);
      slot = add_running(1000000 + (churn_cursor % 8) * 1000);
      mgr.start_static(now, slot, {node});
    }
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.schedule_pass(now);
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }

  PassStats stats;
  stats.label = label;
  stats.nodes = node_count;
  stats.passes = passes;
  stats.p50_ns = percentile_of(latencies_ns, 0.50);
  stats.p95_ns = percentile_of(latencies_ns, 0.95);
  stats.breakpoints = scheduler.profile_breakpoints();
  stats.profile_reuses = scheduler.profile_reuses();
  stats.profile_rebuilds = scheduler.profile_rebuilds();
  return stats;
}

int run_pass_metrics(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int passes = static_cast<int>(args.get_int("passes", 2000));
  const std::string json_path = args.get_or("json", "");

  std::printf("scheduling-pass latency (full machine, 8 release waves, 16 waiting jobs)\n");
  std::printf("%-18s %8s %10s %10s %12s %8s/%-8s\n", "case", "nodes", "p50(ns)",
              "p95(ns)", "breakpoints", "reuses", "rebuilds");

  const auto start = std::chrono::steady_clock::now();
  double generate_seconds = 0.0;
  std::vector<PassStats> all;
  for (const int nodes : {256, 1024, 4096}) {
    all.push_back(run_pass_study("indexed_steady", nodes, passes, true, false,
                                 generate_seconds));
    all.push_back(run_pass_study("indexed_churn", nodes, passes, true, true,
                                 generate_seconds));
    all.push_back(run_pass_study("fullscan_steady", nodes, passes, false, false,
                                 generate_seconds));
  }
  const auto study_end = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(study_end - start).count();

  for (const auto& s : all) {
    std::printf("%-18s %8d %10.0f %10.0f %12zu %8llu/%-8llu\n", s.label.c_str(), s.nodes,
                s.p50_ns, s.p95_ns, s.breakpoints,
                static_cast<unsigned long long>(s.profile_reuses),
                static_cast<unsigned long long>(s.profile_rebuilds));
  }
  std::printf("\nindexed_steady should stay flat as nodes grow (O(dirty) refresh);\n"
              "fullscan_steady is the historical rebuild and scales with nodes.\n");

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.field("bench", "micro_scheduler_pass");
    json.field("detlint_version", detlint::kVersion);
    json.field("detlint_ruleset_hash", detlint::ruleset_hash());
    json.key("context");
    json.begin_object();
    json.field("passes", passes);
    json.field("waiting_jobs", 16);
    json.field("release_waves", 8);
    json.end_object();
    json.field("wall_seconds", wall);
    json.key("pass_latency");
    json.begin_array();
    for (const auto& s : all) {
      json.begin_object();
      json.field("case", s.label);
      json.field("nodes", s.nodes);
      json.field("passes", s.passes);
      json.field("p50_ns", s.p50_ns);
      json.field("p95_ns", s.p95_ns);
      json.field("breakpoints", static_cast<std::uint64_t>(s.breakpoints));
      json.field("profile_reuses", s.profile_reuses);
      json.field("profile_rebuilds", s.profile_rebuilds);
      json.end_object();
    }
    json.end_array();
    write_phase_tail(json, generate_seconds, wall - generate_seconds,
                     std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   study_end)
                         .count());
    json.end_object();
    write_text_file(json_path, json.str());
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --sd-pass: the mate-selection hot-path study.
// ---------------------------------------------------------------------------

struct SdPassStats {
  std::string label;
  int nodes = 0;
  int selects = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double candidates_scanned_per_select = 0.0;
  std::uint64_t combinations_evaluated = 0;
  std::uint64_t plans_found = 0;
};

/// Everything that makes two plans "the same decision" — the divergence
/// gate compares whole plans, not just the performance-impact scalar (two
/// different mate sets can tie on PI).
struct PlanRecord {
  bool has_plan = false;
  double performance_impact = 0.0;
  SimTime guest_increase = 0;
  std::vector<JobId> mates;
  std::vector<SimTime> mate_increases;
  std::vector<std::array<int, 5>> nodes;

  bool operator==(const PlanRecord&) const = default;

  static PlanRecord of(const std::optional<MatePlan>& plan) {
    PlanRecord record;
    if (!plan) return record;
    record.has_plan = true;
    record.performance_impact = plan->performance_impact;
    record.guest_increase = plan->guest_increase;
    record.mates = plan->mates;
    record.mate_increases = plan->mate_increases;
    record.nodes.reserve(plan->nodes.size());
    for (const SharePlan& share : plan->nodes) {
      record.nodes.push_back({share.node, static_cast<int>(share.mate), share.guest_cpus,
                              share.mate_kept_cpus, share.guest_static_cpus});
    }
    return record;
  }
};

/// One machine-size cell of the study: a half-full machine of running
/// 2-node malleable mates (release waves far in the future) plus a
/// trace-scale population of inert (pending) jobs that the historical
/// whole-table scan must wade through. Guests of 1/2/4 nodes cycle through
/// select(); `use_registry` toggles the incrementally maintained
/// MateRegistry + free-run index against the historical full scan.
SdPassStats run_sd_pass_study(const char* label, int node_count, int selects,
                              bool use_registry, int inert_jobs,
                              std::vector<PlanRecord>* plans_out,
                              double& generate_seconds) {
  const auto setup_start = std::chrono::steady_clock::now();
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 8};  // Curie-shaped: 16 cores per node
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);

  const int cores = machine.cores_per_node();
  const auto add_job = [&](int req_nodes, SimTime req_time) {
    JobSpec spec;
    spec.req_cpus = req_nodes * cores;
    spec.req_nodes = req_nodes;
    spec.req_time = req_time;
    spec.base_runtime = req_time;
    return jobs.add(spec);
  };

  // Mates: 2-node running jobs on half the machine, 16 release waves.
  const int running = node_count / 4;
  for (int i = 0; i < running; ++i) {
    const JobId id = add_job(2, 1000000);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 1000000 + (i % 16) * 1000;
    mgr.start_static(0, id, {2 * i, 2 * i + 1});
  }
  // Inert population: pending jobs the full scan visits and rejects.
  for (int i = 0; i < inert_jobs; ++i) add_job(1 + i % 4, 3600);
  // Guests: pending, short, cycling sizes (all satisfiable by 2-node mates).
  std::vector<JobId> guests;
  for (const int size : {2, 4, 2, 2, 4, 2}) guests.push_back(add_job(size, 600));

  MateRegistry registry;
  registry.seed(jobs);
  SdConfig sd;
  MateSelector selector(machine, jobs, sd);
  if (use_registry) {
    selector.set_mate_registry(&registry);
    selector.set_cluster_index(&index);
  }

  generate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - setup_start).count();

  std::vector<double> latencies_ns;
  latencies_ns.reserve(static_cast<std::size_t>(selects));
  const MateSelector::SelectStats before = selector.stats();
  for (int s = 0; s < selects; ++s) {
    const Job& guest = jobs.at(guests[static_cast<std::size_t>(s) % guests.size()]);
    const auto t0 = std::chrono::steady_clock::now();
    const auto plan = selector.select(guest, 1000, 1e18);
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (plans_out != nullptr) plans_out->push_back(PlanRecord::of(plan));
  }
  const MateSelector::SelectStats after = selector.stats();

  SdPassStats stats;
  stats.label = label;
  stats.nodes = node_count;
  stats.selects = selects;
  stats.p50_ns = percentile_of(latencies_ns, 0.50);
  stats.p95_ns = percentile_of(latencies_ns, 0.95);
  stats.candidates_scanned_per_select =
      static_cast<double>(after.candidates_scanned - before.candidates_scanned) /
      static_cast<double>(selects);
  stats.combinations_evaluated =
      after.combinations_evaluated - before.combinations_evaluated;
  stats.plans_found = after.plans_found - before.plans_found;
  return stats;
}

// ---------------------------------------------------------------------------
// --sd-pass free-pick study: bitmap words vs run index vs machine scan.
// ---------------------------------------------------------------------------

struct FreePickStats {
  std::string label;
  int nodes = 0;
  int picks = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double flips_per_sec = 0.0;  ///< 0 = flip cost not measured for this tier
};

/// One machine-size cell, shaped like what SLURM select/linear leaves
/// behind: the machine fills with 8-node contiguous jobs lowest-first, a
/// deterministic pseudo-random half of them completes, and the low ids are
/// a dedicated fixed-size highmem region (fat-node partitions are
/// contiguous racks of roughly constant size in real clusters — Curie's
/// fat island — and a striped class would make class-restricted contiguous
/// requests unsatisfiable by construction).
/// The resulting free set has the fixed-density block fragmentation real
/// machines show at ~50% load, so the distance to the first adequate span
/// depends on the density, not the machine size — the property the 50K
/// flatness gate (`--max-freepick-p95-ns`) pins down.
///
/// The same cycling sequence of pick shapes — count x contiguous x
/// constrained — is then timed against two tiers: the bitmap FreeNodeIndex
/// (through the ClusterStateIndex seam schedulers use) and the raw machine
/// scan. Every pick is compared across the tiers; a divergence aborts the
/// bench. Flip throughput (erase+insert pairs) is measured for the index
/// tier; the machine's flips ride inside the allocation path and are not
/// separable, so its entry reports 0.
std::vector<FreePickStats> run_free_pick_study(int node_count, int picks, int flips,
                                               double& generate_seconds) {
  const auto setup_start = std::chrono::steady_clock::now();
  constexpr int kBlock = 8;  ///< allocation granularity (8-node jobs)
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 8};
  NodeAttributes highmem;
  highmem.memory_gb = 384;
  const int highmem_region = std::min(node_count / 4, 512);
  for (int id = 0; id < highmem_region; ++id) mc.attribute_overrides.emplace_back(id, highmem);
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);

  // The partition the index derives (first-seen order: node 0 is highmem,
  // so class 0 = highmem, class 1 = default).
  std::vector<int> node_class(static_cast<std::size_t>(node_count), 1);
  for (int id = 0; id < highmem_region; ++id) node_class[static_cast<std::size_t>(id)] = 0;

  // Fill every 8-node block lowest-first, then complete a deterministic
  // pseudo-random half — the churn a steady-state machine has seen.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const int cores = machine.cores_per_node();
  std::vector<JobId> block_jobs;
  for (int first = 0; first + kBlock <= node_count; first += kBlock) {
    JobSpec spec;
    spec.req_cpus = kBlock * cores;
    spec.req_nodes = kBlock;
    spec.req_time = 1000000;
    spec.base_runtime = 1000000;
    const JobId job = jobs.add(spec);
    jobs.at(job).state = JobState::Running;
    jobs.at(job).predicted_end = 1000000;
    std::vector<int> ids(kBlock);
    for (int i = 0; i < kBlock; ++i) ids[static_cast<std::size_t>(i)] = first + i;
    mgr.start_static(0, job, ids);
    block_jobs.push_back(job);
  }
  for (const JobId job : block_jobs) {
    if ((rnd() & 1) == 0) continue;
    jobs.at(job).state = JobState::Completed;
    mgr.finish_job(1, job);
  }

  // Mirror the final occupancy into the standalone flip-timing copy (it
  // starts with every node free).
  FreeNodeIndex bitmap_flipper(node_class, 2);
  for (int id = 0; id < node_count; ++id) {
    if (machine.node(id).empty()) continue;
    bitmap_flipper.erase(id);
  }

  // The pick shapes, cycled in order: unconstrained / contiguous /
  // highmem-only / highmem-contiguous at 1..64 nodes. Every shape is
  // satisfiable on this occupancy at realistic scales; where the machine is
  // too small for one (a 64-node highmem run on the 256-node cell), the
  // exhaustive failed scan is a latency case too, and nullopt must agree
  // across the tiers like any other answer.
  JobConstraints contig;
  contig.contiguous = true;
  JobConstraints high;
  high.min_memory_gb = 256;
  JobConstraints high_contig = high;
  high_contig.contiguous = true;
  struct Shape {
    const JobConstraints* constraints;  ///< nullptr = unconstrained
    int count;
  };
  std::vector<Shape> shapes;
  for (const int count : {1, 4, 16, 64}) {
    shapes.push_back(Shape{nullptr, count});
    shapes.push_back(Shape{&contig, count});
    shapes.push_back(Shape{&high, count});
    shapes.push_back(Shape{&high_contig, count});
  }
  generate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - setup_start).count();

  // Each tier runs the full pick sequence in its own batch: a steady-state
  // scheduler touches only its own structure between picks, so interleaving
  // the tiers would charge the bitmap for the cache the machine scan
  // evicts. Answers are compared across tiers afterwards.
  using Picked = std::optional<std::vector<int>>;
  std::vector<Picked> answers[2];
  std::vector<double> latencies[2];
  const auto run_tier = [&](int tier, const auto& pick_fn) {
    answers[tier].reserve(static_cast<std::size_t>(picks));
    latencies[tier].reserve(static_cast<std::size_t>(picks));
    for (int p = 0; p < picks; ++p) {
      const Shape& shape = shapes[static_cast<std::size_t>(p) % shapes.size()];
      const auto t0 = std::chrono::steady_clock::now();
      Picked got = pick_fn(shape);
      const auto t1 = std::chrono::steady_clock::now();
      latencies[tier].push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
      answers[tier].push_back(std::move(got));
    }
  };
  run_tier(0, [&](const Shape& shape) {
    return index.find_free_nodes(shape.count, shape.constraints);
  });
  run_tier(1, [&](const Shape& shape) {
    return machine.find_free_nodes(shape.count, shape.constraints);
  });
  if (answers[0] != answers[1]) {
    std::fprintf(stderr,
                 "ERROR: free-pick tiers diverged at %d nodes (bitmap vs machine scan)\n",
                 node_count);
    std::exit(1);
  }

  // Flip throughput: erase+insert pairs across every free id, repeated
  // until `flips` single flips have run — net state change zero, so the
  // timed structure stays parity-comparable afterwards.
  const auto time_flips = [&](auto& target) {
    std::vector<int> free_ids;
    for (int id = 0; id < node_count; ++id) {
      if (machine.node(id).empty()) free_ids.push_back(id);
    }
    int done = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (done < flips) {
      for (const int id : free_ids) {
        target.erase(id);
        target.insert(id);
        done += 2;
        if (done >= flips) break;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0;
  };
  const double bitmap_flips = time_flips(bitmap_flipper);

  std::vector<FreePickStats> stats(2);
  const char* labels[2] = {"bitmap", "machine_scan"};
  const double tier_flips[2] = {bitmap_flips, 0.0};
  for (int tier = 0; tier < 2; ++tier) {
    stats[static_cast<std::size_t>(tier)].label = labels[tier];
    stats[static_cast<std::size_t>(tier)].nodes = node_count;
    stats[static_cast<std::size_t>(tier)].picks = picks;
    stats[static_cast<std::size_t>(tier)].p50_ns = percentile_of(latencies[tier], 0.50);
    stats[static_cast<std::size_t>(tier)].p95_ns = percentile_of(latencies[tier], 0.95);
    stats[static_cast<std::size_t>(tier)].flips_per_sec = tier_flips[tier];
  }
  return stats;
}

// ---------------------------------------------------------------------------
// --sd-pass --shards=N: the sharded candidate-scan work-split study.
// ---------------------------------------------------------------------------

struct ShardSweepStats {
  int nodes = 0;
  int shards = 0;
  int selects = 0;
  double flat_wall_seconds = 0.0;
  double sharded_wall_seconds = 0.0;
  std::uint64_t flat_scanned = 0;
  std::uint64_t max_shard_scanned = 0;
  std::vector<std::uint64_t> shard_scanned;
};

/// The mate-selection stage (half-full machine of 2-node mates, cycling
/// guests), timed twice over the identical select sequence: the serial
/// flat scan against the per-shard fan-out on the shared worker pool.
/// Plans are asserted identical select by select, and the per-shard
/// scanned counters must sum to the flat count exactly — the ordered
/// shard merge re-examines nothing and drops nothing.
ShardSweepStats run_shard_sweep_study(int node_count, int selects, int shards,
                                      double& generate_seconds) {
  const auto setup_start = std::chrono::steady_clock::now();
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 8};  // Curie-shaped: 16 cores per node
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ShardedClusterIndex sharded(machine, jobs, ShardConfig{shards, true});

  const int cores = machine.cores_per_node();
  const auto add_job = [&](int req_nodes, SimTime req_time) {
    JobSpec spec;
    spec.req_cpus = req_nodes * cores;
    spec.req_nodes = req_nodes;
    spec.req_time = req_time;
    spec.base_runtime = req_time;
    return jobs.add(spec);
  };
  // Mates: 2-node running jobs on half the machine — stride-4 pairs so
  // they tile the whole id space and land in every shard. 16 release waves.
  const int running = node_count / 4;
  for (int i = 0; i < running; ++i) {
    const JobId id = add_job(2, 1000000);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 1000000 + (i % 16) * 1000;
    mgr.start_static(0, id, {4 * i, 4 * i + 1});
  }
  std::vector<JobId> guests;
  for (const int size : {2, 4, 2, 2, 4, 2}) guests.push_back(add_job(size, 600));

  MateRegistry registry;
  registry.seed(jobs);
  SdConfig sd;
  MateSelector flat_sel(machine, jobs, sd);
  flat_sel.set_mate_registry(&registry);
  flat_sel.set_cluster_index(&sharded.flat());
  MateSelector shard_sel(machine, jobs, sd);
  shard_sel.set_mate_registry(&registry);
  shard_sel.set_cluster_index(&sharded.flat());
  shard_sel.set_shard_context(&sharded, &shard_worker_pool());

  generate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - setup_start).count();

  const auto run_tier = [&](MateSelector& selector, std::vector<PlanRecord>& plans) {
    plans.reserve(static_cast<std::size_t>(selects));
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < selects; ++s) {
      const Job& guest = jobs.at(guests[static_cast<std::size_t>(s) % guests.size()]);
      plans.push_back(PlanRecord::of(selector.select(guest, 1000, 1e18)));
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  std::vector<PlanRecord> flat_plans;
  std::vector<PlanRecord> shard_plans;
  const double flat_wall = run_tier(flat_sel, flat_plans);
  const double sharded_wall = run_tier(shard_sel, shard_plans);
  if (flat_plans != shard_plans) {
    std::fprintf(stderr,
                 "ERROR: sharded selection diverged from the flat scan at %d nodes, "
                 "%d shards\n",
                 node_count, shards);
    std::exit(1);
  }

  ShardSweepStats stats;
  stats.nodes = node_count;
  stats.shards = shards;
  stats.selects = selects;
  stats.flat_wall_seconds = flat_wall;
  stats.sharded_wall_seconds = sharded_wall;
  stats.flat_scanned = flat_sel.stats().candidates_scanned;
  stats.shard_scanned = shard_sel.stats().shard_scanned;
  for (const std::uint64_t scanned : stats.shard_scanned) {
    stats.max_shard_scanned = std::max(stats.max_shard_scanned, scanned);
  }
  std::uint64_t sum = 0;
  for (const std::uint64_t scanned : stats.shard_scanned) sum += scanned;
  if (sum != stats.flat_scanned ||
      shard_sel.stats().candidates_scanned != stats.flat_scanned) {
    std::fprintf(stderr,
                 "ERROR: per-shard scan counters do not partition the flat scan at %d "
                 "nodes (%llu sharded vs %llu flat)\n",
                 node_count, static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(stats.flat_scanned));
    std::exit(1);
  }
  return stats;
}

int run_sd_pass(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int selects = static_cast<int>(args.get_int("selects", 400));
  const int inert_jobs = static_cast<int>(args.get_int("inert-jobs", 4000));
  const int picks = static_cast<int>(args.get_int("picks", 400));
  const int flips = static_cast<int>(args.get_int("flips", 200000));
  const double freepick_budget_ns =
      static_cast<double>(args.get_int("max-freepick-p95-ns", 0));
  const int shards = static_cast<int>(args.get_int("shards", 1));
  const double max_shard_wall_ratio = args.get_double("max-shard-wall-ratio", 0.0);
  const std::string json_path = args.get_or("json", "");

  std::printf("mate-selection latency (half-full machine of 2-node mates, %d inert jobs)\n",
              inert_jobs);
  std::printf("%-10s %8s %10s %10s %14s %10s %8s\n", "case", "nodes", "p50(ns)",
              "p95(ns)", "scanned/sel", "combos", "plans");

  const auto start = std::chrono::steady_clock::now();
  double generate_seconds = 0.0;
  std::vector<SdPassStats> all;
  for (const int nodes : {256, 1024, 5040}) {
    // Identical decisions are part of the contract: compare every select's
    // whole plan (mates, increases, node assignments) between the paths.
    std::vector<PlanRecord> full_plans;
    std::vector<PlanRecord> reg_plans;
    all.push_back(run_sd_pass_study("fullscan", nodes, selects, false, inert_jobs,
                                    &full_plans, generate_seconds));
    all.push_back(run_sd_pass_study("registry", nodes, selects, true, inert_jobs,
                                    &reg_plans, generate_seconds));
    if (full_plans != reg_plans) {
      std::fprintf(stderr,
                   "ERROR: registry-backed selection diverged from the full scan at %d "
                   "nodes\n",
                   nodes);
      return 1;
    }
  }

  // The free-pick sweep: one decade past the mate study, up to a 10x-Curie
  // machine. 50000 is deliberately not a multiple of 64, so the dead-bit
  // tail of the last bitmap word is exercised at scale on every CI run.
  std::vector<FreePickStats> free_pick;
  for (const int nodes : {256, 1024, 5040, 50000}) {
    const auto cell = run_free_pick_study(nodes, picks, flips, generate_seconds);
    free_pick.insert(free_pick.end(), cell.begin(), cell.end());
  }
  // --shards=N: the work-split study. The flat scan and the per-shard
  // fan-out answer the same selects; parity and the counter partition are
  // checked inside the study (hard exit on divergence).
  std::vector<ShardSweepStats> shard_sweep;
  if (shards > 1) {
    for (const int nodes : {5040, 50000}) {
      shard_sweep.push_back(run_shard_sweep_study(nodes, selects, shards,
                                                  generate_seconds));
    }
  }
  const auto study_end = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(study_end - start).count();

  for (const auto& s : all) {
    std::printf("%-10s %8d %10.0f %10.0f %14.1f %10llu %8llu\n", s.label.c_str(), s.nodes,
                s.p50_ns, s.p95_ns, s.candidates_scanned_per_select,
                static_cast<unsigned long long>(s.combinations_evaluated),
                static_cast<unsigned long long>(s.plans_found));
  }
  std::printf("\nregistry scans only the eligible mates (running malleable non-guests);\n"
              "fullscan is the historical whole-job-table walk. Plans are identical.\n");

  std::printf("\nfree-node pick latency + flip throughput (half-occupied machine)\n");
  std::printf("%-14s %8s %10s %10s %14s\n", "case", "nodes", "p50(ns)", "p95(ns)",
              "flips/sec");
  for (const auto& s : free_pick) {
    std::printf("%-14s %8d %10.0f %10.0f %14.0f\n", s.label.c_str(), s.nodes, s.p50_ns,
                s.p95_ns, s.flips_per_sec);
  }
  std::printf("\nbitmap is the O(1)-flip word index schedulers use; machine_scan is the\n"
              "raw ordered-set walk (its flips ride inside the allocation path — not\n"
              "measured). Picks are byte-identical across the two tiers.\n");

  // Per-shard split report and gates: sum equality was checked inside the
  // study; at >= 3 shards no shard may carry more than ~1/3 of the flat
  // scan (the acceptance split), and the optional wall-ratio gate guards
  // the multi-core speedup.
  if (shards > 1) {
    std::printf("\nsharded candidate scan (%d shards, parallel fan-out on the shared pool)\n",
                shards);
    std::printf("%8s %12s %12s %12s %14s %10s\n", "nodes", "flat_scan", "max_shard",
                "flat_s", "sharded_s", "ratio");
    for (const auto& s : shard_sweep) {
      const double ratio = s.flat_wall_seconds > 0.0
                               ? s.sharded_wall_seconds / s.flat_wall_seconds
                               : 0.0;
      std::printf("%8d %12llu %12llu %12.4f %14.4f %10.2f\n", s.nodes,
                  static_cast<unsigned long long>(s.flat_scanned),
                  static_cast<unsigned long long>(s.max_shard_scanned),
                  s.flat_wall_seconds, s.sharded_wall_seconds, ratio);
      if (shards >= 3 && s.max_shard_scanned * 3 > s.flat_scanned + s.flat_scanned / 10) {
        std::fprintf(stderr,
                     "ERROR: at %d nodes one shard scanned %llu of %llu flat candidates "
                     "— the split never spread the work\n",
                     s.nodes, static_cast<unsigned long long>(s.max_shard_scanned),
                     static_cast<unsigned long long>(s.flat_scanned));
        return 1;
      }
    }
    std::printf("plans are byte-identical across the tiers; per-shard counters sum to\n"
                "the flat scan exactly.\n");
    // Wall-clock gate: only meaningful when the host can actually run the
    // shards concurrently (the 1-core CI sandbox skips it).
    if (max_shard_wall_ratio > 0.0) {
      if (ThreadPool::default_concurrency() < static_cast<std::size_t>(shards)) {
        std::printf("(wall-ratio gate skipped: %zu hardware threads < %d shards)\n",
                    ThreadPool::default_concurrency(), shards);
      } else {
        const ShardSweepStats& largest = shard_sweep.back();
        const double ratio = largest.sharded_wall_seconds / largest.flat_wall_seconds;
        if (ratio > max_shard_wall_ratio) {
          std::fprintf(stderr,
                       "ERROR: sharded scan wall at %d nodes is %.2fx the flat scan, "
                       "over the %.2fx budget\n",
                       largest.nodes, ratio, max_shard_wall_ratio);
          return 1;
        }
        std::printf("shard wall gate: %.2fx <= %.2fx budget at %d nodes\n", ratio,
                    max_shard_wall_ratio, largest.nodes);
      }
    }
  }

  // CI regression guard: the bitmap pick p95 at the largest machine must
  // stay inside the budget (generous — the point is catching a complexity
  // regression, not timer noise).
  if (freepick_budget_ns > 0.0) {
    const FreePickStats* largest_bitmap = nullptr;
    for (const auto& s : free_pick) {
      if (s.label == "bitmap" &&
          (largest_bitmap == nullptr || s.nodes > largest_bitmap->nodes)) {
        largest_bitmap = &s;
      }
    }
    if (largest_bitmap != nullptr && largest_bitmap->p95_ns > freepick_budget_ns) {
      std::fprintf(stderr,
                   "ERROR: bitmap free-pick p95 at %d nodes is %.0f ns, over the %.0f ns "
                   "budget\n",
                   largest_bitmap->nodes, largest_bitmap->p95_ns, freepick_budget_ns);
      return 1;
    }
    if (largest_bitmap != nullptr) {
      std::printf("\nfree-pick budget: bitmap p95 at %d nodes = %.0f ns <= %.0f ns budget\n",
                  largest_bitmap->nodes, largest_bitmap->p95_ns, freepick_budget_ns);
    }
  }

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.field("bench", "micro_scheduler_sd_pass");
    json.field("detlint_version", detlint::kVersion);
    json.field("detlint_ruleset_hash", detlint::ruleset_hash());
    json.key("context");
    json.begin_object();
    json.field("selects", selects);
    json.field("inert_jobs", inert_jobs);
    json.field("picks", picks);
    json.field("flips", flips);
    json.field("max_freepick_p95_ns", freepick_budget_ns);
    json.field("shards", shards);
    json.field("max_shard_wall_ratio", max_shard_wall_ratio);
    json.end_object();
    json.field("wall_seconds", wall);
    json.key("sd_pass");
    json.begin_array();
    for (const auto& s : all) {
      json.begin_object();
      json.field("case", s.label);
      json.field("nodes", s.nodes);
      json.field("selects", s.selects);
      json.field("p50_ns", s.p50_ns);
      json.field("p95_ns", s.p95_ns);
      json.field("candidates_scanned_per_select", s.candidates_scanned_per_select);
      json.field("combinations_evaluated", s.combinations_evaluated);
      json.field("plans_found", s.plans_found);
      json.end_object();
    }
    json.end_array();
    json.key("free_pick");
    json.begin_array();
    for (const auto& s : free_pick) {
      json.begin_object();
      json.field("case", s.label);
      json.field("nodes", s.nodes);
      json.field("picks", s.picks);
      json.field("p50_ns", s.p50_ns);
      json.field("p95_ns", s.p95_ns);
      json.field("flips_per_sec", s.flips_per_sec);
      json.end_object();
    }
    json.end_array();
    if (!shard_sweep.empty()) {
      json.key("shard_sweep");
      json.begin_array();
      for (const auto& s : shard_sweep) {
        json.begin_object();
        json.field("nodes", s.nodes);
        json.field("shards", s.shards);
        json.field("selects", s.selects);
        json.field("flat_wall_seconds", s.flat_wall_seconds);
        json.field("sharded_wall_seconds", s.sharded_wall_seconds);
        json.field("flat_scanned", s.flat_scanned);
        json.field("max_shard_scanned", s.max_shard_scanned);
        json.key("shard_scanned");
        json.begin_array();
        for (const std::uint64_t scanned : s.shard_scanned) json.value(scanned);
        json.end_array();
        json.end_object();
      }
      json.end_array();
    }
    write_phase_tail(json, generate_seconds, wall - generate_seconds,
                     std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   study_end)
                         .count());
    json.end_object();
    write_text_file(json_path, json.str());
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --sd-saturation: the full SD pass under archive-scale queue depths.
// ---------------------------------------------------------------------------

struct SdSaturationStats {
  std::string label;
  int depth = 0;
  int passes = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  std::uint64_t estimate_rejections = 0;
  std::uint64_t selection_failures = 0;
  std::uint64_t rescans_avoided = 0;
  std::uint64_t budget_deferrals = 0;
};

/// One (tier, depth) cell: a FULL 5040-node machine of 2-node running
/// mates (16 release waves far in the future) and `depth` pending 3-node
/// malleable guests. Nothing can start statically, and Eq. 3's equality
/// (sum of 2-node mates == 3 nodes, at most 2 mates) has no solution, so
/// every considered guest runs a mate search that fails — the saturated
/// steady state the soak's wait queue lives in. `bounded` toggles the
/// production config (default bf_max_jobs, guest budget, ledger) against
/// the conceptual unbounded scan (bf_max_jobs = depth, no budget, no
/// ledger). NoStartExecutor aborts the bench if a pass ever disagrees
/// about nothing being startable.
SdSaturationStats run_sd_saturation_cell(const char* label, int node_count, int depth,
                                         int passes, bool bounded, int guest_budget,
                                         double& generate_seconds, int shards = 1) {
  const auto setup_start = std::chrono::steady_clock::now();
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 8};  // Curie-shaped: 16 cores per node
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  // One observer slot on the Machine: flat index OR the sharded
  // coordinator, never both.
  std::optional<ClusterStateIndex> index;
  std::optional<ShardedClusterIndex> sharded;
  if (shards > 1) {
    sharded.emplace(machine, jobs, ShardConfig{shards, true});
  } else {
    index.emplace(machine, jobs);
  }

  const int cores = machine.cores_per_node();
  const auto add_job = [&](int req_nodes, SimTime req_time) {
    JobSpec spec;
    spec.req_cpus = req_nodes * cores;
    spec.req_nodes = req_nodes;
    spec.req_time = req_time;
    spec.base_runtime = req_time;
    return jobs.add(spec);
  };

  // Fill the whole machine with 2-node mates, 16 release waves.
  for (int i = 0; i < node_count / 2; ++i) {
    const JobId id = add_job(2, 1000000);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 1000000 + (i % 16) * 1000;
    mgr.start_static(0, id, {2 * i, 2 * i + 1});
  }

  SchedConfig sched;
  if (!bounded) sched.bf_max_jobs = depth;  // the unbounded whole-queue walk
  SdConfig sd;  // DynAVGSD cut-off, the production default
  sd.scan.ledger = bounded;
  sd.scan.guest_budget = bounded ? guest_budget : 0;
  NoStartExecutor executor;
  SdPolicyScheduler scheduler(machine, jobs, executor, sched, sd);
  if (sharded) {
    scheduler.set_sharded_index(&*sharded);
  } else {
    scheduler.set_cluster_index(&*index);
  }

  // The saturated queue: `depth` pending 3-node guests.
  for (int q = 0; q < depth; ++q) scheduler.on_submit(add_job(3, 600));

  generate_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - setup_start).count();

  std::vector<double> latencies_ns;
  latencies_ns.reserve(static_cast<std::size_t>(passes));
  for (int p = 0; p < passes; ++p) {
    const SimTime now = 1 + p;
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.schedule_pass(now);
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
  }

  SdSaturationStats stats;
  stats.label = label;
  stats.depth = depth;
  stats.passes = passes;
  stats.p50_ns = percentile_of(latencies_ns, 0.50);
  stats.p95_ns = percentile_of(latencies_ns, 0.95);
  stats.estimate_rejections = scheduler.estimate_rejections();
  stats.selection_failures = scheduler.selection_failures();
  stats.rescans_avoided = scheduler.rescans_avoided();
  stats.budget_deferrals = scheduler.budget_deferrals();
  return stats;
}

int run_sd_saturation(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("sat-nodes", 5040));
  const int passes = static_cast<int>(args.get_int("sd-sat-passes", 4));
  const int guest_budget = static_cast<int>(args.get_int("sd-guest-budget", 64));
  const double max_ratio = args.get_double("max-sd-saturation-ratio", 0.0);
  const int shards = static_cast<int>(args.get_int("shards", 1));
  const std::string json_path = args.get_or("json", "");

  // Comma-separated queue depths, ascending.
  std::vector<int> depths;
  {
    const std::string spec = args.get_or("depths", "1000,10000,100000");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(pos, comma == std::string::npos ? spec.npos
                                                                          : comma - pos);
      if (!tok.empty()) depths.push_back(std::atoi(tok.c_str()));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (depths.empty()) depths = {1000, 10000, 100000};
  }

  std::printf("full SD pass latency under saturation (%d nodes full of 2-node mates,\n"
              "queue of 3-node guests with no feasible mate combination)\n",
              nodes);
  std::printf("%-17s %9s %12s %12s %10s %10s %10s %10s\n", "case", "depth", "p50(ns)",
              "p95(ns)", "est_rej", "sel_fail", "skipped", "deferred");

  const auto start = std::chrono::steady_clock::now();
  double generate_seconds = 0.0;
  std::vector<SdSaturationStats> all;
  for (const int depth : depths) {
    all.push_back(run_sd_saturation_cell("budgeted", nodes, depth, passes, true,
                                         guest_budget, generate_seconds));
    if (shards > 1) {
      all.push_back(run_sd_saturation_cell("budgeted_sharded", nodes, depth, passes,
                                           true, guest_budget, generate_seconds,
                                           shards));
    }
    all.push_back(run_sd_saturation_cell("naive", nodes, depth, passes, false, 0,
                                         generate_seconds));
  }
  const auto study_end = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(study_end - start).count();

  for (const auto& s : all) {
    std::printf("%-17s %9d %12.0f %12.0f %10llu %10llu %10llu %10llu\n", s.label.c_str(),
                s.depth, s.p50_ns, s.p95_ns,
                static_cast<unsigned long long>(s.estimate_rejections),
                static_cast<unsigned long long>(s.selection_failures),
                static_cast<unsigned long long>(s.rescans_avoided),
                static_cast<unsigned long long>(s.budget_deferrals));
  }
  std::printf("\nbudgeted = production saturated-queue config (guest budget %d + failed-\n"
              "select ledger): pass cost is depth-flat. naive = unbounded whole-queue\n"
              "scan (bf_max_jobs = depth, no ledger): cost scales with depth.\n",
              guest_budget);

  // Sanity: the ledger must actually be skipping on the budgeted tier (the
  // steady state re-considers the same failed guests every pass).
  for (const auto& s : all) {
    if (s.label == "budgeted" && s.rescans_avoided == 0) {
      std::fprintf(stderr,
                   "ERROR: budgeted cell at depth %d avoided zero re-scans — the "
                   "failed-select ledger is not engaging\n",
                   s.depth);
      return 1;
    }
  }

  // Sharded parity gate: the sharded budgeted tier must reach byte-identical
  // decisions — every decision counter equal to the flat budgeted cell at
  // the same depth (the ordered shard merge re-examines nothing).
  if (shards > 1) {
    const auto budgeted_at = [&all](const char* label, int depth) -> const SdSaturationStats* {
      for (const auto& s : all) {
        if (s.label == label && s.depth == depth) return &s;
      }
      return nullptr;
    };
    for (const int depth : depths) {
      const SdSaturationStats* flat = budgeted_at("budgeted", depth);
      const SdSaturationStats* shd = budgeted_at("budgeted_sharded", depth);
      if (flat == nullptr || shd == nullptr) continue;
      if (flat->estimate_rejections != shd->estimate_rejections ||
          flat->selection_failures != shd->selection_failures ||
          flat->rescans_avoided != shd->rescans_avoided ||
          flat->budget_deferrals != shd->budget_deferrals) {
        std::fprintf(stderr,
                     "ERROR: sharded budgeted cell at depth %d diverged from the flat "
                     "budgeted decisions (%d shards)\n",
                     depth, shards);
        return 1;
      }
    }
  }

  // CI regression guard: the budgeted pass p95 at the deepest queue must
  // stay within the ratio budget of the shallowest (a complexity gate, not
  // a timing assertion — the naive tier's same ratio is ~depth-linear).
  const auto budgeted_p95_at = [&all](int depth) {
    for (const auto& s : all) {
      if (s.label == "budgeted" && s.depth == depth) return s.p95_ns;
    }
    return 0.0;
  };
  const double shallow = budgeted_p95_at(depths.front());
  const double deep = budgeted_p95_at(depths.back());
  const double ratio = shallow > 0.0 ? deep / shallow : 0.0;
  std::printf("\nbudgeted p95 ratio %d -> %d: %.2fx\n", depths.front(), depths.back(),
              ratio);
  if (max_ratio > 0.0 && ratio > max_ratio) {
    std::fprintf(stderr,
                 "ERROR: budgeted SD pass p95 grew %.2fx from depth %d to %d, over the "
                 "%.1fx budget\n",
                 ratio, depths.front(), depths.back(), max_ratio);
    return 1;
  }

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.field("bench", "micro_scheduler_sd_saturation");
    json.field("detlint_version", detlint::kVersion);
    json.field("detlint_ruleset_hash", detlint::ruleset_hash());
    json.key("context");
    json.begin_object();
    json.field("nodes", nodes);
    json.field("passes", passes);
    json.field("sd_guest_budget", guest_budget);
    json.field("max_sd_saturation_ratio", max_ratio);
    json.field("shards", shards);
    json.end_object();
    json.field("wall_seconds", wall);
    json.key("sd_saturation");
    json.begin_array();
    for (const auto& s : all) {
      json.begin_object();
      json.field("case", s.label);
      json.field("depth", s.depth);
      json.field("passes", s.passes);
      json.field("p50_ns", s.p50_ns);
      json.field("p95_ns", s.p95_ns);
      json.field("sd_estimate_rejections", s.estimate_rejections);
      json.field("sd_selection_failures", s.selection_failures);
      json.field("sd_rescans_avoided", s.rescans_avoided);
      json.field("sd_budget_deferrals", s.budget_deferrals);
      json.end_object();
    }
    json.end_array();
    json.field("budgeted_p95_ratio", ratio);
    write_phase_tail(json, generate_seconds, wall - generate_seconds,
                     std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   study_end)
                         .count());
    json.end_object();
    write_text_file(json_path, json.str());
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("pass-metrics")) {
    return run_pass_metrics(argc, argv);
  }
  if (args.get_bool("sd-pass")) {
    return run_sd_pass(argc, argv);
  }
  if (args.get_bool("sd-saturation")) {
    return run_sd_saturation(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
