// google-benchmark micro benchmarks for the scheduler machinery: event
// queue throughput, reservation-profile queries, backfill pass cost, mate
// selection, and whole-simulation throughput per policy.
//
// A second mode, `--pass-metrics` (with optional `--json=<path>` and
// `--passes=<n>`), bypasses google-benchmark and runs the incremental-state
// study: per-scheduling-pass p50/p95 latency and profile breakpoint counts
// across machine sizes, for the event-driven index (steady and churning
// clusters) against the historical full-scan rebuild.
//
// A third mode, `--sd-pass` (with optional `--json=<path>` and
// `--selects=<n>`), runs the SD hot-path study: mate-selection p50/p95
// latency plus candidates-scanned / combinations-evaluated counters across
// machine sizes, for the incrementally maintained MateRegistry against the
// historical whole-job-table scan (plans are asserted identical). Both
// JSON documents land in the same `sdsched-bench-v1` family the figure
// benches emit; CI's bench-smoke job uploads them next to bench.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/simulation.h"
#include "cluster/cluster_state_index.h"
#include "core/mate_registry.h"
#include "detlint/ruleset.h"
#include "core/mate_selector.h"
#include "drom/node_manager.h"
#include "sched/backfill.h"
#include "sched/reservation.h"
#include "sim/event_queue.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/stats.h"
#include "workload/cirne.h"

namespace {

using namespace sdsched;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.schedule((i * 2654435761u) % 100000,
                     Event{EventKind::JobSubmit, static_cast<JobId>(i)});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_EventQueueCancellationChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(
          queue.schedule(i, Event{EventKind::JobFinish, static_cast<JobId>(i)}));
    }
    for (int i = 0; i < n; i += 2) queue.cancel(handles[i]);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancellationChurn)->Arg(10000);

void BM_ReservationEarliestStart(benchmark::State& state) {
  ReservationProfile profile(5040);
  for (int i = 0; i < 1000; ++i) {
    profile.reserve(i * 100, i * 100 + 5000, 1 + i % 32);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_start(128, 3600, 50000));
  }
}
BENCHMARK(BM_ReservationEarliestStart);

void BM_MateSelection(benchmark::State& state) {
  const int running = static_cast<int>(state.range(0));
  MachineConfig mc;
  mc.nodes = running * 2 + 2;
  mc.node = NodeConfig{2, 24};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  for (int i = 0; i < running; ++i) {
    JobSpec spec;
    spec.req_cpus = 96;
    spec.req_nodes = 2;
    spec.req_time = 100000;
    spec.base_runtime = 100000;
    spec.submit = 0;
    const JobId id = jobs.add(spec);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 100000;
    mgr.start_static(0, id, *machine.find_free_nodes(2));
  }
  JobSpec guest_spec;
  guest_spec.req_cpus = 96;
  guest_spec.req_nodes = 2;
  guest_spec.req_time = 600;
  guest_spec.base_runtime = 600;
  const JobId guest = jobs.add(guest_spec);

  SdConfig sd;
  MateSelector selector(machine, jobs, sd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(jobs.at(guest), 1000, 1e18));
  }
  state.SetItemsProcessed(state.iterations() * running);
}
BENCHMARK(BM_MateSelection)->Arg(16)->Arg(128);

void BM_WholeSimulation(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  CirneConfig wl;
  wl.n_jobs = 400;
  wl.system_nodes = 32;
  wl.cores_per_node = 48;
  wl.max_job_nodes = 8;
  wl.seed = 11;
  const Workload workload = generate_cirne(wl);
  SimulationConfig config;
  config.machine.nodes = 32;
  config.machine.node = NodeConfig{2, 24};
  config.policy = policy;
  for (auto _ : state) {
    Simulation sim(config, workload);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * wl.n_jobs);
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_WholeSimulation)
    ->Arg(static_cast<int>(PolicyKind::Fcfs))
    ->Arg(static_cast<int>(PolicyKind::Backfill))
    ->Arg(static_cast<int>(PolicyKind::SdPolicy))
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --pass-metrics: the O(dirty) demonstration.
// ---------------------------------------------------------------------------

/// Starts never fire in this study (the machine is kept full); fail loudly
/// if a pass decides otherwise.
class NoStartExecutor final : public StartExecutor {
 public:
  void start_static(JobId, const std::vector<int>&) override { std::abort(); }
  void start_guest(JobId, const MatePlan&) override { std::abort(); }
};

struct PassStats {
  std::string label;
  int nodes = 0;
  int passes = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  std::size_t breakpoints = 0;
  std::uint64_t profile_reuses = 0;
  std::uint64_t profile_rebuilds = 0;
};

/// A full cluster with few distinct release times (8 groups) plus a queue
/// that cannot start: every pass re-derives reservations only. `churn`
/// replaces one node's occupant per pass (the dirty case); `use_index`
/// false runs the historical full-scan rebuild for comparison.
PassStats run_pass_study(const char* label, int node_count, int passes, bool use_index,
                         bool churn) {
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 24};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);
  NoStartExecutor executor;
  BackfillScheduler scheduler(machine, jobs, executor, SchedConfig{});
  if (use_index) scheduler.set_cluster_index(&index);

  const auto add_running = [&](SimTime predicted_end) {
    JobSpec spec;
    spec.req_cpus = machine.cores_per_node();
    spec.req_nodes = 1;
    spec.req_time = 1000000;
    spec.base_runtime = 1000000;
    const JobId id = jobs.add(spec);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = predicted_end;
    return id;
  };
  // Fill every node; occupants release in 8 waves far in the future.
  std::vector<JobId> occupant(static_cast<std::size_t>(node_count));
  for (int n = 0; n < node_count; ++n) {
    const JobId id = add_running(1000000 + (n % 8) * 1000);
    mgr.start_static(0, id, {n});
    occupant[static_cast<std::size_t>(n)] = id;
  }
  // Waiting jobs that cannot start before the waves release.
  for (int q = 0; q < 16; ++q) {
    JobSpec spec;
    spec.submit = 0;
    spec.req_cpus = (node_count / 2) * machine.cores_per_node();
    spec.req_nodes = node_count / 2;
    spec.req_time = 3600;
    spec.base_runtime = 3600;
    const JobId id = jobs.add(spec);
    scheduler.on_submit(id);
  }

  std::vector<double> latencies_ns;
  latencies_ns.reserve(static_cast<std::size_t>(passes));
  SimTime now = 1;
  int churn_cursor = 0;
  for (int p = 0; p < passes; ++p, ++now) {
    if (churn && p > 0) {
      // One node changes occupant between passes: the index hears two
      // notifications; everything else is untouched.
      const int node = churn_cursor++ % node_count;
      JobId& slot = occupant[static_cast<std::size_t>(node)];
      jobs.at(slot).state = JobState::Completed;
      mgr.finish_job(now, slot);
      slot = add_running(1000000 + (churn_cursor % 8) * 1000);
      mgr.start_static(now, slot, {node});
    }
    const auto t0 = std::chrono::steady_clock::now();
    scheduler.schedule_pass(now);
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }

  PassStats stats;
  stats.label = label;
  stats.nodes = node_count;
  stats.passes = passes;
  stats.p50_ns = percentile_of(latencies_ns, 0.50);
  stats.p95_ns = percentile_of(latencies_ns, 0.95);
  stats.breakpoints = scheduler.profile_breakpoints();
  stats.profile_reuses = scheduler.profile_reuses();
  stats.profile_rebuilds = scheduler.profile_rebuilds();
  return stats;
}

int run_pass_metrics(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int passes = static_cast<int>(args.get_int("passes", 2000));
  const std::string json_path = args.get_or("json", "");

  std::printf("scheduling-pass latency (full machine, 8 release waves, 16 waiting jobs)\n");
  std::printf("%-18s %8s %10s %10s %12s %8s/%-8s\n", "case", "nodes", "p50(ns)",
              "p95(ns)", "breakpoints", "reuses", "rebuilds");

  const auto start = std::chrono::steady_clock::now();
  std::vector<PassStats> all;
  for (const int nodes : {256, 1024, 4096}) {
    all.push_back(run_pass_study("indexed_steady", nodes, passes, true, false));
    all.push_back(run_pass_study("indexed_churn", nodes, passes, true, true));
    all.push_back(run_pass_study("fullscan_steady", nodes, passes, false, false));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const auto& s : all) {
    std::printf("%-18s %8d %10.0f %10.0f %12zu %8llu/%-8llu\n", s.label.c_str(), s.nodes,
                s.p50_ns, s.p95_ns, s.breakpoints,
                static_cast<unsigned long long>(s.profile_reuses),
                static_cast<unsigned long long>(s.profile_rebuilds));
  }
  std::printf("\nindexed_steady should stay flat as nodes grow (O(dirty) refresh);\n"
              "fullscan_steady is the historical rebuild and scales with nodes.\n");

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.field("bench", "micro_scheduler_pass");
    json.field("detlint_version", detlint::kVersion);
    json.field("detlint_ruleset_hash", detlint::ruleset_hash());
    json.key("context");
    json.begin_object();
    json.field("passes", passes);
    json.field("waiting_jobs", 16);
    json.field("release_waves", 8);
    json.end_object();
    json.field("wall_seconds", wall);
    json.key("pass_latency");
    json.begin_array();
    for (const auto& s : all) {
      json.begin_object();
      json.field("case", s.label);
      json.field("nodes", s.nodes);
      json.field("passes", s.passes);
      json.field("p50_ns", s.p50_ns);
      json.field("p95_ns", s.p95_ns);
      json.field("breakpoints", static_cast<std::uint64_t>(s.breakpoints));
      json.field("profile_reuses", s.profile_reuses);
      json.field("profile_rebuilds", s.profile_rebuilds);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    write_text_file(json_path, json.str());
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --sd-pass: the mate-selection hot-path study.
// ---------------------------------------------------------------------------

struct SdPassStats {
  std::string label;
  int nodes = 0;
  int selects = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double candidates_scanned_per_select = 0.0;
  std::uint64_t combinations_evaluated = 0;
  std::uint64_t plans_found = 0;
};

/// Everything that makes two plans "the same decision" — the divergence
/// gate compares whole plans, not just the performance-impact scalar (two
/// different mate sets can tie on PI).
struct PlanRecord {
  bool has_plan = false;
  double performance_impact = 0.0;
  SimTime guest_increase = 0;
  std::vector<JobId> mates;
  std::vector<SimTime> mate_increases;
  std::vector<std::array<int, 5>> nodes;

  bool operator==(const PlanRecord&) const = default;

  static PlanRecord of(const std::optional<MatePlan>& plan) {
    PlanRecord record;
    if (!plan) return record;
    record.has_plan = true;
    record.performance_impact = plan->performance_impact;
    record.guest_increase = plan->guest_increase;
    record.mates = plan->mates;
    record.mate_increases = plan->mate_increases;
    record.nodes.reserve(plan->nodes.size());
    for (const SharePlan& share : plan->nodes) {
      record.nodes.push_back({share.node, static_cast<int>(share.mate), share.guest_cpus,
                              share.mate_kept_cpus, share.guest_static_cpus});
    }
    return record;
  }
};

/// One machine-size cell of the study: a half-full machine of running
/// 2-node malleable mates (release waves far in the future) plus a
/// trace-scale population of inert (pending) jobs that the historical
/// whole-table scan must wade through. Guests of 1/2/4 nodes cycle through
/// select(); `use_registry` toggles the incrementally maintained
/// MateRegistry + free-run index against the historical full scan.
SdPassStats run_sd_pass_study(const char* label, int node_count, int selects,
                              bool use_registry, int inert_jobs,
                              std::vector<PlanRecord>* plans_out) {
  MachineConfig mc;
  mc.nodes = node_count;
  mc.node = NodeConfig{2, 8};  // Curie-shaped: 16 cores per node
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);

  const int cores = machine.cores_per_node();
  const auto add_job = [&](int req_nodes, SimTime req_time) {
    JobSpec spec;
    spec.req_cpus = req_nodes * cores;
    spec.req_nodes = req_nodes;
    spec.req_time = req_time;
    spec.base_runtime = req_time;
    return jobs.add(spec);
  };

  // Mates: 2-node running jobs on half the machine, 16 release waves.
  const int running = node_count / 4;
  for (int i = 0; i < running; ++i) {
    const JobId id = add_job(2, 1000000);
    jobs.at(id).state = JobState::Running;
    jobs.at(id).predicted_end = 1000000 + (i % 16) * 1000;
    mgr.start_static(0, id, {2 * i, 2 * i + 1});
  }
  // Inert population: pending jobs the full scan visits and rejects.
  for (int i = 0; i < inert_jobs; ++i) add_job(1 + i % 4, 3600);
  // Guests: pending, short, cycling sizes (all satisfiable by 2-node mates).
  std::vector<JobId> guests;
  for (const int size : {2, 4, 2, 2, 4, 2}) guests.push_back(add_job(size, 600));

  MateRegistry registry;
  registry.seed(jobs);
  SdConfig sd;
  MateSelector selector(machine, jobs, sd);
  if (use_registry) {
    selector.set_mate_registry(&registry);
    selector.set_cluster_index(&index);
  }

  std::vector<double> latencies_ns;
  latencies_ns.reserve(static_cast<std::size_t>(selects));
  const MateSelector::SelectStats before = selector.stats();
  for (int s = 0; s < selects; ++s) {
    const Job& guest = jobs.at(guests[static_cast<std::size_t>(s) % guests.size()]);
    const auto t0 = std::chrono::steady_clock::now();
    const auto plan = selector.select(guest, 1000, 1e18);
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (plans_out != nullptr) plans_out->push_back(PlanRecord::of(plan));
  }
  const MateSelector::SelectStats after = selector.stats();

  SdPassStats stats;
  stats.label = label;
  stats.nodes = node_count;
  stats.selects = selects;
  stats.p50_ns = percentile_of(latencies_ns, 0.50);
  stats.p95_ns = percentile_of(latencies_ns, 0.95);
  stats.candidates_scanned_per_select =
      static_cast<double>(after.candidates_scanned - before.candidates_scanned) /
      static_cast<double>(selects);
  stats.combinations_evaluated =
      after.combinations_evaluated - before.combinations_evaluated;
  stats.plans_found = after.plans_found - before.plans_found;
  return stats;
}

int run_sd_pass(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int selects = static_cast<int>(args.get_int("selects", 400));
  const int inert_jobs = static_cast<int>(args.get_int("inert-jobs", 4000));
  const std::string json_path = args.get_or("json", "");

  std::printf("mate-selection latency (half-full machine of 2-node mates, %d inert jobs)\n",
              inert_jobs);
  std::printf("%-10s %8s %10s %10s %14s %10s %8s\n", "case", "nodes", "p50(ns)",
              "p95(ns)", "scanned/sel", "combos", "plans");

  const auto start = std::chrono::steady_clock::now();
  std::vector<SdPassStats> all;
  for (const int nodes : {256, 1024, 5040}) {
    // Identical decisions are part of the contract: compare every select's
    // whole plan (mates, increases, node assignments) between the paths.
    std::vector<PlanRecord> full_plans;
    std::vector<PlanRecord> reg_plans;
    all.push_back(
        run_sd_pass_study("fullscan", nodes, selects, false, inert_jobs, &full_plans));
    all.push_back(
        run_sd_pass_study("registry", nodes, selects, true, inert_jobs, &reg_plans));
    if (full_plans != reg_plans) {
      std::fprintf(stderr,
                   "ERROR: registry-backed selection diverged from the full scan at %d "
                   "nodes\n",
                   nodes);
      return 1;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const auto& s : all) {
    std::printf("%-10s %8d %10.0f %10.0f %14.1f %10llu %8llu\n", s.label.c_str(), s.nodes,
                s.p50_ns, s.p95_ns, s.candidates_scanned_per_select,
                static_cast<unsigned long long>(s.combinations_evaluated),
                static_cast<unsigned long long>(s.plans_found));
  }
  std::printf("\nregistry scans only the eligible mates (running malleable non-guests);\n"
              "fullscan is the historical whole-job-table walk. Plans are identical.\n");

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.field("bench", "micro_scheduler_sd_pass");
    json.field("detlint_version", detlint::kVersion);
    json.field("detlint_ruleset_hash", detlint::ruleset_hash());
    json.key("context");
    json.begin_object();
    json.field("selects", selects);
    json.field("inert_jobs", inert_jobs);
    json.end_object();
    json.field("wall_seconds", wall);
    json.key("sd_pass");
    json.begin_array();
    for (const auto& s : all) {
      json.begin_object();
      json.field("case", s.label);
      json.field("nodes", s.nodes);
      json.field("selects", s.selects);
      json.field("p50_ns", s.p50_ns);
      json.field("p95_ns", s.p95_ns);
      json.field("candidates_scanned_per_select", s.candidates_scanned_per_select);
      json.field("combinations_evaluated", s.combinations_evaluated);
      json.field("plans_found", s.plans_found);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    write_text_file(json_path, json.str());
    std::printf("(json written to %s)\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("pass-metrics")) {
    return run_pass_metrics(argc, argv);
  }
  if (args.get_bool("sd-pass")) {
    return run_sd_pass(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
