// Table 2: workload characterization for the real-run evaluation — the
// application mix assigned to W5 and each application's behavioural profile.
#include "bench_common.h"
#include "workload/app_profiles.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  using namespace sdsched::bench;
  const BenchContext ctx = BenchContext::from_args(argc, argv);

  print_banner("Table 2", "Workload characterization for real runs",
               "PILS 30.5% | STREAM 30.8% | CoreNeuron 35.5% | NEST 2.6% | Alya 0.6%");

  const PaperWorkload pw = load_workload(5, ctx);
  std::vector<std::size_t> counts(table2_profiles().size(), 0);
  for (const auto& spec : pw.workload.jobs()) {
    if (spec.app_profile >= 0) ++counts[spec.app_profile];
  }

  AsciiTable table({"application", "paper share", "assigned share", "CPU util",
                    "memory util", "scalability alpha", "bw/core"});
  for (std::size_t i = 0; i < table2_profiles().size(); ++i) {
    const auto& p = table2_profiles()[i];
    const double assigned =
        static_cast<double>(counts[i]) / static_cast<double>(pw.workload.size());
    table.add_row({p.name, AsciiTable::pct(p.workload_share - 0.0),
                   AsciiTable::pct(assigned - 0.0), AsciiTable::num(p.cpu_utilization, 2),
                   AsciiTable::num(p.mem_utilization, 2),
                   AsciiTable::num(p.scalability_alpha, 2),
                   AsciiTable::num(p.mem_bw_per_core, 3)});
  }
  table.print();
  return 0;
}
