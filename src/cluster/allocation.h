// Allocation value type: a job's per-node cpu shares, with the aggregate
// quantities the runtime models need (Eq. 5 uses total cpus, Eq. 6 the
// minimum per-node share).
#pragma once

#include <vector>

#include "job/job.h"

namespace sdsched {

struct Allocation {
  std::vector<NodeShare> shares;

  [[nodiscard]] int total_cpus() const noexcept;
  [[nodiscard]] int min_cpus_per_node() const noexcept;
  [[nodiscard]] std::size_t num_nodes() const noexcept { return shares.size(); }
  [[nodiscard]] bool empty() const noexcept { return shares.empty(); }

  [[nodiscard]] std::vector<int> node_ids() const;
};

}  // namespace sdsched
