#include "cluster/allocation.h"

#include <algorithm>

namespace sdsched {

int Allocation::total_cpus() const noexcept {
  int total = 0;
  for (const auto& share : shares) total += share.cpus;
  return total;
}

int Allocation::min_cpus_per_node() const noexcept {
  int lowest = 0;
  for (const auto& share : shares) {
    lowest = (lowest == 0) ? share.cpus : std::min(lowest, share.cpus);
  }
  return lowest;
}

std::vector<int> Allocation::node_ids() const {
  std::vector<int> ids;
  ids.reserve(shares.size());
  for (const auto& share : shares) ids.push_back(share.node);
  return ids;
}

}  // namespace sdsched
