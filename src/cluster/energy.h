// Integrated power model (substitution for MareNostrum4's system-software
// energy readings; see DESIGN.md §3.3).
//
//   P(t) = powered_nodes(t) * idle_watts + busy_cores(t) * core_watts
//
// Shorter makespans and denser packing both reduce the integral, which is
// exactly the mechanism §4.4 credits for the 6% real-run saving.
#pragma once

#include "util/time_utils.h"

namespace sdsched {

struct EnergyConfig {
  double idle_watts_per_node = 100.0;  ///< baseline draw of a powered node
  double watts_per_busy_core = 4.5;    ///< incremental draw per allocated core
  bool power_down_idle_nodes = false;  ///< if true, empty nodes draw nothing
};

class EnergyAccountant {
 public:
  EnergyAccountant() = default;
  EnergyAccountant(EnergyConfig config, int total_nodes) noexcept
      : config_(config), total_nodes_(total_nodes) {}

  /// Advance the integral to `now` with the *current* load, then record the
  /// new load. Call before every load change and once at simulation end.
  void observe(SimTime now, int busy_cores, int occupied_nodes) noexcept;

  /// Retroactive correction for a load change backdated into an interval the
  /// integral has already covered (e.g. a population reconstructed with
  /// historical start times): `core_seconds` extra busy-core-seconds and
  /// `occupied_node_seconds` extra occupied-node-seconds, either signed.
  /// Idle draw is only affected when idle nodes are powered down — otherwise
  /// every node was already billed as powered for the whole interval.
  void credit(double core_seconds, double occupied_node_seconds) noexcept;

  [[nodiscard]] double joules() const noexcept { return joules_; }
  [[nodiscard]] double kwh() const noexcept { return joules_ / 3.6e6; }
  [[nodiscard]] const EnergyConfig& config() const noexcept { return config_; }

 private:
  EnergyConfig config_;
  int total_nodes_ = 0;
  SimTime last_time_ = 0;
  int busy_cores_ = 0;
  int occupied_nodes_ = 0;
  double joules_ = 0.0;
};

}  // namespace sdsched
