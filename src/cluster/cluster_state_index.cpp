#include "cluster/cluster_state_index.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sdsched {

ClusterStateIndex::ClusterStateIndex(Machine& machine, const JobRegistry& jobs,
                                     bool attach_observer)
    : machine_(machine), jobs_(jobs), attached_(attach_observer) {
  const int nodes = machine_.node_count();
  node_free_at_.assign(static_cast<std::size_t>(nodes), kEmptyNode);
  node_class_.resize(static_cast<std::size_t>(nodes));

  // Group nodes by attribute signature: attributes are static, so the
  // partition is built once and only the free counts move afterwards.
  for (int id = 0; id < nodes; ++id) {
    const NodeAttributes& attrs = machine_.node(id).attributes();
    int cls = -1;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      if (classes_[c].attributes == attrs) {
        cls = static_cast<int>(c);
        break;
      }
    }
    if (cls < 0) {
      cls = static_cast<int>(classes_.size());
      classes_.push_back(AttrClass{attrs, 0, 0, {}});
    }
    node_class_[static_cast<std::size_t>(id)] = cls;
    ++classes_[static_cast<std::size_t>(cls)].total;
    ++classes_[static_cast<std::size_t>(cls)].free;
  }
  all_classes_.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) all_classes_[c] = static_cast<int>(c);
  free_runs_ = FreeNodeIndex(node_class_, static_cast<int>(classes_.size()));

  // Index whatever is already running (warm-start scenarios attach to a
  // populated machine).
  for (int id = 0; id < nodes; ++id) refresh_node(id);
  if (attached_) machine_.set_observer(this);
}

ClusterStateIndex::~ClusterStateIndex() {
  if (attached_) machine_.set_observer(nullptr);
}

SimTime ClusterStateIndex::scan_free_at(int node_id) const {
  const Node& node = machine_.node(node_id);
  if (node.empty()) return kEmptyNode;
  SimTime free_at = INT64_MIN + 1;
  for (const auto& occ : node.occupants()) {
    free_at = std::max(free_at, jobs_.at(occ.job).predicted_end);
  }
  return free_at;
}

void ClusterStateIndex::refresh_node(int node_id) {
  const SimTime free_at = scan_free_at(node_id);
  SimTime& slot = node_free_at_[static_cast<std::size_t>(node_id)];
  if (free_at == slot) return;

  AttrClass& cls = classes_[static_cast<std::size_t>(
      node_class_[static_cast<std::size_t>(node_id)])];
  if (slot != kEmptyNode) {
    const auto it = busy_counts_.find(slot);
    assert(it != busy_counts_.end() && "indexed free_at missing from busy_counts");
    if (it != busy_counts_.end() && --it->second == 0) busy_counts_.erase(it);
    const auto cit = cls.busy.find(slot);
    assert(cit != cls.busy.end() && "indexed free_at missing from class busy map");
    if (cit != cls.busy.end() && --cit->second == 0) cls.busy.erase(cit);
    --occupied_nodes_;
    ++cls.free;
  }
  if (free_at != kEmptyNode) {
    ++busy_counts_[free_at];
    ++cls.busy[free_at];
    ++occupied_nodes_;
    --cls.free;
  }
  // The free-node bitmap cares only about emptiness flips, not about a
  // busy node's release time moving — each flip is O(1) word maintenance.
  const bool was_free = slot == kEmptyNode;
  const bool now_free = free_at == kEmptyNode;
  if (was_free != now_free) {
    if (now_free) {
      free_runs_.insert(node_id);
    } else {
      free_runs_.erase(node_id);
    }
  }
  slot = free_at;
  ++version_;
}

void ClusterStateIndex::on_node_occupancy_changed(int node_id) {
  ++mutation_serial_;
  refresh_node(node_id);
}

void ClusterStateIndex::on_predicted_end_changed(JobId job) {
  ++mutation_serial_;
  for (const NodeShare& share : jobs_.at(job).shares) {
    refresh_node(share.node);
  }
}

void ClusterStateIndex::busy_groups(SimTime now,
                                    std::vector<std::pair<SimTime, int>>& out) const {
  out.clear();
  // Overdue occupants (free_at <= now): assume imminent completion at now+1,
  // exactly as the full-scan profile build always did.
  auto it = busy_counts_.begin();
  int overdue = 0;
  for (; it != busy_counts_.end() && it->first <= now + 1; ++it) overdue += it->second;
  if (overdue > 0) out.emplace_back(now + 1, overdue);
  for (; it != busy_counts_.end(); ++it) out.emplace_back(it->first, it->second);
}

int ClusterStateIndex::eligible_node_count(const JobConstraints& constraints) const {
  if (constraints.unconstrained()) return machine_.node_count();
  int eligible = 0;
  for (const AttrClass& cls : classes_) {
    if (node_satisfies(cls.attributes, constraints)) eligible += cls.total;
  }
  return eligible;
}

int ClusterStateIndex::eligible_free_count(const JobConstraints& constraints) const {
  if (constraints.unconstrained()) return machine_.free_node_count();
  int free = 0;
  for (const AttrClass& cls : classes_) {
    if (node_satisfies(cls.attributes, constraints)) free += cls.free;
  }
  return free;
}

std::optional<std::vector<int>> ClusterStateIndex::find_free_nodes(
    int count, const JobConstraints* constraints) const {
  assert(count >= 1);
  // Mirror Machine::find_free_nodes' early-outs exactly: global free count
  // first, then the eligible-free count for constrained requests.
  if (count > free_runs_.free_count()) return std::nullopt;
  if (constraints == nullptr || constraints->unconstrained()) {
    return free_runs_.pick(count, all_classes_, /*contiguous=*/false);
  }
  std::vector<int> eligible;
  eligible.reserve(classes_.size());
  int eligible_free = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (node_satisfies(classes_[c].attributes, *constraints)) {
      eligible.push_back(static_cast<int>(c));
      eligible_free += classes_[c].free;
    }
  }
  if (eligible_free < count) return std::nullopt;
  return free_runs_.pick(count, eligible, constraints->contiguous);
}

std::uint64_t ClusterStateIndex::eligible_class_mask(
    const JobConstraints& constraints) const {
  assert(classes_.size() <= 64 && "class mask only supports <= 64 attribute classes");
  std::uint64_t mask = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (node_satisfies(classes_[c].attributes, constraints)) mask |= 1ull << c;
  }
  return mask;
}

int ClusterStateIndex::node_count_for_mask(std::uint64_t mask) const {
  int total = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if ((mask >> c) & 1u) total += classes_[c].total;
  }
  return total;
}

void ClusterStateIndex::busy_groups_for_mask(
    std::uint64_t mask, SimTime now, std::vector<std::pair<SimTime, int>>& out) const {
  out.clear();
  // Merge the selected classes' (free_at -> count) maps, then clamp exactly
  // as busy_groups() does. Constrained jobs are rare, so a transient merge
  // map is fine here.
  std::map<SimTime, int> merged;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (((mask >> c) & 1u) == 0) continue;
    for (const auto& [free_at, nodes] : classes_[c].busy) merged[free_at] += nodes;
  }
  auto it = merged.begin();
  int overdue = 0;
  for (; it != merged.end() && it->first <= now + 1; ++it) overdue += it->second;
  if (overdue > 0) out.emplace_back(now + 1, overdue);
  for (; it != merged.end(); ++it) out.emplace_back(it->first, it->second);
}

bool ClusterStateIndex::check_consistent(std::string* diagnosis) const {
  const auto fail = [diagnosis](const std::string& what) {
    if (diagnosis != nullptr) *diagnosis = what;
    return false;
  };

  std::map<SimTime, int> expect_counts;
  int expect_occupied = 0;
  std::vector<int> expect_class_free(classes_.size(), 0);
  std::vector<std::map<SimTime, int>> expect_class_busy(classes_.size());
  std::vector<bool> is_free(static_cast<std::size_t>(machine_.node_count()), false);
  for (int id = 0; id < machine_.node_count(); ++id) {
    const SimTime expect = scan_free_at(id);
    if (node_free_at_[static_cast<std::size_t>(id)] != expect) {
      std::ostringstream oss;
      oss << "node " << id << ": indexed free_at "
          << node_free_at_[static_cast<std::size_t>(id)] << " != scanned " << expect;
      return fail(oss.str());
    }
    const int cls = node_class_[static_cast<std::size_t>(id)];
    if (expect == kEmptyNode) {
      ++expect_class_free[static_cast<std::size_t>(cls)];
      is_free[static_cast<std::size_t>(id)] = true;
    } else {
      ++expect_counts[expect];
      ++expect_class_busy[static_cast<std::size_t>(cls)][expect];
      ++expect_occupied;
    }
  }
  if (busy_counts_ != expect_counts) return fail("busy_counts diverged from node scan");
  if (occupied_nodes_ != expect_occupied) return fail("occupied_nodes diverged");
  if (occupied_nodes_ != machine_.occupied_nodes()) {
    return fail("occupied_nodes diverged from machine");
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].free != expect_class_free[c]) {
      std::ostringstream oss;
      oss << "attribute class " << c << ": indexed free " << classes_[c].free
          << " != scanned " << expect_class_free[c];
      return fail(oss.str());
    }
    if (classes_[c].busy != expect_class_busy[c]) {
      std::ostringstream oss;
      oss << "attribute class " << c << ": busy map diverged from node scan";
      return fail(oss.str());
    }
  }
  // Free-node bitmap: bit-level + summary-invariant check, plus the derived
  // run view against the node scan.
  std::string runs_diag;
  if (!free_runs_.check_consistent(is_free, &runs_diag)) return fail(runs_diag);
  if (free_runs_.free_count() != machine_.free_node_count()) {
    return fail("free-node bitmap free count diverged from machine");
  }
  // The class partition must reproduce the machine's own constraint answers.
  for (const AttrClass& cls : classes_) {
    JobConstraints probe;
    probe.required_arch = cls.attributes.arch;
    probe.min_memory_gb = cls.attributes.memory_gb;
    probe.required_network = cls.attributes.network;
    if (eligible_node_count(probe) != machine_.eligible_node_count(probe)) {
      return fail("eligible_node_count diverged from machine for class probe");
    }
  }
  return true;
}

std::optional<std::vector<int>> pick_free_nodes(const Machine& machine,
                                                const ClusterStateIndex* index, int count,
                                                const JobConstraints* constraints) {
  if (index == nullptr) return machine.find_free_nodes(count, constraints);
#ifdef SDSCHED_INDEX_CROSSCHECK
  const auto indexed = index->find_free_nodes(count, constraints);
  const auto scanned = machine.find_free_nodes(count, constraints);
  assert(indexed == scanned && "bitmap index pick diverged from the machine scan");
  return indexed;
#else
  return index->find_free_nodes(count, constraints);
#endif
}

}  // namespace sdsched
