#include "cluster/energy.h"

namespace sdsched {

void EnergyAccountant::observe(SimTime now, int busy_cores, int occupied_nodes) noexcept {
  if (now > last_time_) {
    const double dt = static_cast<double>(now - last_time_);
    const int powered = config_.power_down_idle_nodes ? occupied_nodes_ : total_nodes_;
    const double watts = static_cast<double>(powered) * config_.idle_watts_per_node +
                         static_cast<double>(busy_cores_) * config_.watts_per_busy_core;
    joules_ += watts * dt;
    last_time_ = now;
  }
  busy_cores_ = busy_cores;
  occupied_nodes_ = occupied_nodes;
}

void EnergyAccountant::credit(double core_seconds, double occupied_node_seconds) noexcept {
  joules_ += core_seconds * config_.watts_per_busy_core;
  if (config_.power_down_idle_nodes) {
    joules_ += occupied_node_seconds * config_.idle_watts_per_node;
  }
}

}  // namespace sdsched
