// The cluster: a homogeneous set of nodes (SLURM select/linear semantics:
// whole-node allocation, lowest-id-first for determinism) plus load
// accounting feeding the energy model.
//
// Node-id layout contract: node ids are dense, 0 .. node_count()-1, and
// never change after construction. The bitmap FreeNodeIndex relies on this
// mapping — node id n occupies word n/64, bit n%64 of each attribute
// class's word vector. Machines whose node count is not a multiple of 64
// simply leave the tail bits of the last word permanently zero (ids >= the
// node count never exist, so no masking is needed anywhere); see
// cluster/free_node_index.h for the full layout.
#pragma once

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "cluster/energy.h"
#include "cluster/node.h"
#include "job/job.h"
#include "util/time_utils.h"

namespace sdsched {

struct MachineConfig {
  int nodes = 16;
  NodeConfig node;
  NodeAttributes attributes;  ///< default attributes for every node
  /// Per-node attribute overrides (node id -> attributes), for modelling
  /// heterogeneous partitions (high-mem nodes, different interconnects...).
  std::vector<std::pair<int, NodeAttributes>> attribute_overrides;
  EnergyConfig energy;
};

/// Does a node with `attributes` satisfy `constraints`? (§3.2.4 filtering.)
[[nodiscard]] bool node_satisfies(const NodeAttributes& attributes,
                                  const JobConstraints& constraints) noexcept;

/// Occupancy-change notifications (one per mutated node, fired after the
/// mutation is applied). The ClusterStateIndex subscribes to keep scheduler
/// state incremental instead of rescanning the machine every pass.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  virtual void on_node_occupancy_changed(int node_id) = 0;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  [[nodiscard]] int node_count() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int cores_per_node() const noexcept { return nodes_.front().total_cores(); }
  [[nodiscard]] int total_cores() const noexcept { return node_count() * cores_per_node(); }
  [[nodiscard]] int free_node_count() const noexcept {
    return static_cast<int>(free_nodes_.size());
  }
  [[nodiscard]] int busy_cores() const noexcept { return busy_cores_; }
  [[nodiscard]] int occupied_nodes() const noexcept {
    return node_count() - free_node_count();
  }
  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(busy_cores_) / static_cast<double>(total_cores());
  }

  [[nodiscard]] const Node& node(int id) const { return nodes_.at(id); }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }

  /// Pick `count` free nodes (lowest ids). Empty optional if insufficient.
  /// With `constraints`, only nodes satisfying them are eligible, and
  /// `constraints->contiguous` requires consecutive node ids.
  [[nodiscard]] std::optional<std::vector<int>> find_free_nodes(
      int count, const JobConstraints* constraints = nullptr) const;

  /// Nodes (free or busy) satisfying `constraints` — the capacity the
  /// reservation profile should assume for a constrained job.
  [[nodiscard]] int eligible_node_count(const JobConstraints& constraints) const;

  /// Exclusive whole-node allocation: `job` occupies each listed node,
  /// holding cpus[i] cores there (its balanced static split; remaining cores
  /// idle, as SLURM task/affinity binds only requested cpus). Returns false
  /// (no change) if any node is non-empty. Static placement only ever
  /// targets empty nodes; co-scheduling goes through add_share explicitly.
  bool allocate_exclusive(SimTime now, JobId job, const std::vector<int>& node_ids,
                          const std::vector<int>& cpus);

  /// Place `job` on `node_id` holding `cpus` cores alongside existing
  /// occupants (co-scheduling). The node must have the headroom.
  bool add_share(SimTime now, JobId job, int node_id, int cpus, bool is_owner);

  /// Change `job`'s holding on `node_id`.
  bool resize_share(SimTime now, JobId job, int node_id, int cpus);

  /// Remove `job` from `node_id`; returns cpus freed (0 if absent).
  int remove_share(SimTime now, JobId job, int node_id);

  /// Remove `job` from every node it holds.
  void release_all(SimTime now, JobId job, const std::vector<int>& node_ids);

  /// Flush the energy integral up to `now` (call at simulation end).
  void finalize_energy(SimTime now);

  [[nodiscard]] const EnergyAccountant& energy() const noexcept { return energy_; }

  /// Total core-seconds allocated so far (for utilization reporting).
  [[nodiscard]] double core_seconds() const noexcept { return core_seconds_; }

  /// Install (or clear, with nullptr) the occupancy observer. At most one;
  /// the caller owns its lifetime and must detach before destruction.
  void set_observer(MachineObserver* observer) noexcept { observer_ = observer; }

 private:
  /// Advance accounting to `now`: integrate [last_touch_, now] with the load
  /// that was current and move the frontier. Callers may legitimately pass a
  /// `now` *behind* the frontier — reference-model tests and warm-start
  /// scenarios reconstruct a running population with historical, non-monotonic
  /// start times — in which case nothing is integrated and the backdated span
  /// `last_touch_ - now` is returned (0 on the normal forward path).
  [[nodiscard]] SimTime touch(SimTime now);

  /// Finish a mutation: record the post-change load with the energy model and,
  /// for a backdated mutation (`span` > 0), credit the `cpu_delta` cores /
  /// `node_delta` occupied nodes that were active over the already-integrated
  /// span, so totals match a chronological replay of the same calls.
  ///
  /// Core-second credits are additive and therefore order-independent, but
  /// node occupancy is a union: the `node_delta` passed by the share
  /// operations is derived from emptiness at call time, so backdated shared
  /// ops touching the *same node* must be applied in chronological order or
  /// the occupied-node-seconds credit (idle power under
  /// `power_down_idle_nodes`) under-counts. Backdated exclusive allocations
  /// have no such constraint — an out-of-order conflict fails loudly.
  void commit(SimTime span, int cpu_delta, int node_delta);

  void sync_free_state(int node_id);

  void notify(int node_id) {
    if (observer_ != nullptr) observer_->on_node_occupancy_changed(node_id);
  }

  MachineObserver* observer_ = nullptr;
  MachineConfig config_;
  std::vector<Node> nodes_;
  std::set<int> free_nodes_;  ///< ordered -> deterministic lowest-first picks
  int busy_cores_ = 0;
  EnergyAccountant energy_;
  double core_seconds_ = 0.0;
  SimTime last_touch_ = 0;
};

}  // namespace sdsched
