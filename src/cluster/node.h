// A compute node: sockets x cores, occupied by one owner job and optionally
// co-scheduled guests (SD-Policy node sharing).
//
// Nodes are mechanism-only: they track who holds how many cores and enforce
// capacity; *policy* (how cores are split, who expands when someone leaves)
// lives in drom/NodeManager.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/event.h"

namespace sdsched {

struct NodeConfig {
  int sockets = 2;
  int cores_per_socket = 24;  ///< MN4: 2 x 24 = 48 cores
};

/// Static node properties used for constraint filtering (paper §3.2.4:
/// "node filtering by name, architecture, memory and network constraints").
struct NodeAttributes {
  std::string arch = "x86_64";
  int memory_gb = 96;          ///< MN4 standard nodes
  std::string network = "opa"; ///< interconnect class (e.g. Omni-Path)

  /// Attribute-class identity (the ClusterStateIndex partitions nodes by it).
  friend bool operator==(const NodeAttributes&, const NodeAttributes&) = default;
};

/// One job's holding on this node.
struct NodeOccupant {
  JobId job = kInvalidJob;
  int cpus = 0;
  bool owner = false;  ///< original (statically scheduled) holder of the node
};

class Node {
 public:
  Node(int id, NodeConfig config, NodeAttributes attributes = {}) noexcept
      : id_(id), config_(config), attributes_(std::move(attributes)) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const NodeAttributes& attributes() const noexcept { return attributes_; }
  [[nodiscard]] int total_cores() const noexcept {
    return config_.sockets * config_.cores_per_socket;
  }
  [[nodiscard]] int sockets() const noexcept { return config_.sockets; }
  [[nodiscard]] int cores_per_socket() const noexcept { return config_.cores_per_socket; }

  [[nodiscard]] int used_cores() const noexcept;
  [[nodiscard]] int free_cores() const noexcept { return total_cores() - used_cores(); }
  [[nodiscard]] bool empty() const noexcept { return occupants_.empty(); }
  [[nodiscard]] bool shared() const noexcept { return occupants_.size() > 1; }
  [[nodiscard]] std::size_t occupant_count() const noexcept { return occupants_.size(); }
  [[nodiscard]] const std::vector<NodeOccupant>& occupants() const noexcept {
    return occupants_;
  }

  [[nodiscard]] bool holds(JobId job) const noexcept;
  [[nodiscard]] std::optional<NodeOccupant> occupant(JobId job) const noexcept;
  /// The owner occupant, if any.
  [[nodiscard]] std::optional<NodeOccupant> owner() const noexcept;

  /// Add a job holding `cpus` cores. Fails (returns false) on overcommit or
  /// if the job is already present.
  bool add(JobId job, int cpus, bool is_owner);

  /// Remove a job entirely. Returns the cpus it held, or 0 if absent.
  int remove(JobId job);

  /// Resize a job's holding. Fails on overcommit / absent job / cpus < 1.
  bool resize(JobId job, int cpus);

 private:
  int id_;
  NodeConfig config_;
  NodeAttributes attributes_;
  std::vector<NodeOccupant> occupants_;
};

}  // namespace sdsched
