// Node-id-contiguous shard partition of a machine (ROADMAP "Sharded
// hierarchical scheduling").
//
// A shard is a contiguous range of node ids, word-aligned to the 64-bit
// words of the FreeNodeIndex bitmap (free_node_index.h documents the
// layout as shard-friendly for exactly this): shard s owns bitmap words
// [ceil(s·W/S), ceil((s+1)·W/S)) of the W = ceil(nodes/64) words, and
// therefore nodes [64·word_begin(s), min(nodes, 64·word_end(s))). Word
// alignment means a shard-local free-node scan reads whole words with no
// partial-word masking, and the balanced ceil split keeps shard sizes
// within one word of each other. Shard counts beyond W produce empty
// trailing shards (harmless: every per-shard loop skips them in O(1)).
//
// Because shards ascend with node id, walking shards 0..S-1 and taking
// lowest-first picks inside each concatenates to exactly the global
// lowest-first order — the invariant the deterministic ordered shard
// merge rests on (docs/determinism.md "Ordered shard merge").
#pragma once

#include <cstddef>
#include <vector>

namespace sdsched {

/// How a Simulation shards its scheduler state (SimulationConfig::shards).
struct ShardConfig {
  /// Node-contiguous shards. 1 (the default) keeps the historical flat
  /// behaviour; any count produces byte-identical decisions.
  int count = 1;
  /// Fan per-shard work (candidate scans) onto the process-wide shared
  /// worker pool (util/thread_pool.h shard_worker_pool()). Decisions are
  /// identical to the serial sharded walk; only wall-clock changes.
  bool parallel = false;
};

class ShardLayout {
 public:
  ShardLayout() = default;

  ShardLayout(int node_count, int shard_count)
      : node_count_(node_count < 0 ? 0 : node_count) {
    if (shard_count < 1) shard_count = 1;
    const std::size_t words =
        (static_cast<std::size_t>(node_count_) + 63) / 64;
    const auto shards = static_cast<std::size_t>(shard_count);
    word_begin_.resize(shards + 1);
    for (std::size_t s = 0; s <= shards; ++s) {
      word_begin_[s] = (s * words + shards - 1) / shards;
    }
    word_begin_[shards] = words;  // exact by construction; pin anyway
    word_to_shard_.resize(words);
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t w = word_begin_[s]; w < word_begin_[s + 1]; ++w) {
        word_to_shard_[w] = static_cast<int>(s);
      }
    }
  }

  [[nodiscard]] int shard_count() const noexcept {
    return word_begin_.empty() ? 1 : static_cast<int>(word_begin_.size() - 1);
  }
  [[nodiscard]] int node_count() const noexcept { return node_count_; }

  /// First bitmap word owned by shard `s`; word_end(s) == word_begin(s+1).
  [[nodiscard]] std::size_t word_begin(int s) const {
    return word_begin_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::size_t word_end(int s) const {
    return word_begin_[static_cast<std::size_t>(s) + 1];
  }

  /// First node id owned by shard `s` (== node_end(s-1): shards tile the
  /// id space in ascending order with no gaps).
  [[nodiscard]] int node_begin(int s) const {
    return static_cast<int>(word_begin(s) * 64);
  }
  [[nodiscard]] int node_end(int s) const {
    const auto end = static_cast<int>(word_end(s) * 64);
    return end < node_count_ ? end : node_count_;
  }

  /// The shard owning node `id` — O(1) via the word → shard table.
  [[nodiscard]] int shard_of(int id) const {
    return word_to_shard_[static_cast<std::size_t>(id) >> 6];
  }

 private:
  int node_count_ = 0;
  std::vector<std::size_t> word_begin_;  ///< size shard_count()+1
  std::vector<int> word_to_shard_;       ///< size ceil(node_count/64)
};

}  // namespace sdsched
