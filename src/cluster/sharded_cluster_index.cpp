#include "cluster/sharded_cluster_index.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sdsched {

ShardedClusterIndex::ShardedClusterIndex(Machine& machine, const JobRegistry& jobs,
                                         ShardConfig config)
    : machine_(machine),
      jobs_(jobs),
      flat_(machine, jobs, /*attach_observer=*/false),
      layout_(machine.node_count(), config.count),
      parallel_(config.parallel) {
  const auto classes = static_cast<std::size_t>(flat_.class_count());
  shards_.resize(static_cast<std::size_t>(layout_.shard_count()));
  for (Shard& shard : shards_) {
    shard.class_free.assign(classes, 0);
    shard.class_busy.resize(classes);
  }
  // Seed the shard aggregates from the flat index's freshly built view
  // (warm-start scenarios attach to a populated machine).
  for (int id = 0; id < machine_.node_count(); ++id) {
    Shard& shard = shards_[static_cast<std::size_t>(layout_.shard_of(id))];
    const auto cls = static_cast<std::size_t>(
        flat_.node_class_[static_cast<std::size_t>(id)]);
    const SimTime at = flat_.node_free_at_[static_cast<std::size_t>(id)];
    if (at == ClusterStateIndex::kEmptyNode) {
      ++shard.free_total;
      ++shard.class_free[cls];
    } else {
      ++shard.occupied;
      ++shard.busy[at];
      ++shard.class_busy[cls][at];
    }
  }
  machine_.set_observer(this);
}

ShardedClusterIndex::~ShardedClusterIndex() { machine_.set_observer(nullptr); }

void ShardedClusterIndex::route_refresh(int node_id) {
  const auto uid = static_cast<std::size_t>(node_id);
  const SimTime before = flat_.node_free_at_[uid];
  flat_.refresh_node(node_id);
  const SimTime after = flat_.node_free_at_[uid];
  if (before == after) return;

  Shard& shard = shards_[static_cast<std::size_t>(layout_.shard_of(node_id))];
  const auto cls = static_cast<std::size_t>(flat_.node_class_[uid]);
  if (before == ClusterStateIndex::kEmptyNode) {
    --shard.free_total;
    --shard.class_free[cls];
  } else {
    const auto it = shard.busy.find(before);
    assert(it != shard.busy.end() && "shard free_at missing from release map");
    if (it != shard.busy.end() && --it->second == 0) shard.busy.erase(it);
    auto& class_map = shard.class_busy[cls];
    const auto cit = class_map.find(before);
    assert(cit != class_map.end() && "shard free_at missing from class release map");
    if (cit != class_map.end() && --cit->second == 0) class_map.erase(cit);
    --shard.occupied;
  }
  if (after == ClusterStateIndex::kEmptyNode) {
    ++shard.free_total;
    ++shard.class_free[cls];
  } else {
    ++shard.busy[after];
    ++shard.class_busy[cls][after];
    ++shard.occupied;
  }
}

void ShardedClusterIndex::on_node_occupancy_changed(int node_id) {
  ++flat_.mutation_serial_;
  route_refresh(node_id);
}

void ShardedClusterIndex::on_predicted_end_changed(JobId job) {
  ++flat_.mutation_serial_;
  for (const NodeShare& share : jobs_.at(job).shares) {
    route_refresh(share.node);
  }
}

int ShardedClusterIndex::shard_eligible_free_count(int s, std::uint64_t mask) const {
  const Shard& shard = shards_[static_cast<std::size_t>(s)];
  int free = 0;
  for (std::size_t c = 0; c < shard.class_free.size(); ++c) {
    if ((mask >> c) & 1u) free += shard.class_free[c];
  }
  return free;
}

std::optional<std::vector<int>> ShardedClusterIndex::find_free_nodes(
    int count, const JobConstraints* constraints) const {
  assert(count >= 1);
  const auto sharded_pick = [&]() -> std::optional<std::vector<int>> {
    // Mirror the flat early-outs exactly: global free count first, then
    // the eligible-free count for constrained requests.
    if (count > flat_.free_runs_.free_count()) return std::nullopt;
    const std::vector<int>* eligible = &flat_.all_classes_;
    std::vector<int> constrained_classes;
    if (constraints != nullptr && !constraints->unconstrained()) {
      constrained_classes.reserve(flat_.classes_.size());
      int eligible_free = 0;
      for (std::size_t c = 0; c < flat_.classes_.size(); ++c) {
        if (node_satisfies(flat_.classes_[c].attributes, *constraints)) {
          constrained_classes.push_back(static_cast<int>(c));
          eligible_free += flat_.classes_[c].free;
        }
      }
      if (eligible_free < count) return std::nullopt;
      if (constraints->contiguous) {
        // An adequate run can cross shard boundaries and per-shard counts
        // cannot prune the search: the flat run-carry walk is the merge.
        return flat_.free_runs_.pick(count, constrained_classes, /*contiguous=*/true);
      }
      eligible = &constrained_classes;
    }
    // Ordered shard merge: shards tile the id space in ascending order, so
    // lowest-first picks inside successive shards concatenate to exactly
    // the flat lowest-first answer. The aggregate check skips a shard with
    // nothing eligible in O(classes) without touching its bitmap words.
    std::vector<int> picked;
    picked.reserve(static_cast<std::size_t>(count));
    const bool filtered = eligible != &flat_.all_classes_;
    for (int s = 0; s < shard_count(); ++s) {
      const Shard& shard = shards_[static_cast<std::size_t>(s)];
      if (shard.free_total == 0) continue;
      if (filtered) {
        int shard_eligible = 0;
        for (const int cls : *eligible) {
          shard_eligible += shard.class_free[static_cast<std::size_t>(cls)];
        }
        if (shard_eligible == 0) continue;
      }
      const int remaining = count - static_cast<int>(picked.size());
      flat_.free_runs_.pick_in_words(layout_.word_begin(s), layout_.word_end(s),
                                     remaining, *eligible, picked);
      if (static_cast<int>(picked.size()) == count) return picked;
    }
    // The early-outs above guaranteed enough eligible free nodes exist.
    assert(false && "shard merge found fewer free nodes than the aggregates promised");
    return std::nullopt;
  };
#ifdef SDSCHED_INDEX_CROSSCHECK
  const auto merged = sharded_pick();
  const auto flat = flat_.find_free_nodes(count, constraints);
  assert(merged == flat && "ordered shard merge diverged from the flat pick");
  return merged;
#else
  return sharded_pick();
#endif
}

void ShardedClusterIndex::busy_groups_sharded(
    SimTime now, std::vector<std::pair<SimTime, int>>& out) const {
  // Ordered merge of the shards' release maps: summing per release time in
  // fixed shard order reassembles the flat busy_counts_ multiset exactly
  // (each occupied node lives in exactly one shard). Same overdue clamping
  // as the flat walk.
  std::map<SimTime, int> merged;
  for (const Shard& shard : shards_) {
    for (const auto& [free_at, nodes] : shard.busy) merged[free_at] += nodes;
  }
  out.clear();
  auto it = merged.begin();
  int overdue = 0;
  for (; it != merged.end() && it->first <= now + 1; ++it) overdue += it->second;
  if (overdue > 0) out.emplace_back(now + 1, overdue);
  for (; it != merged.end(); ++it) out.emplace_back(it->first, it->second);
#ifdef SDSCHED_INDEX_CROSSCHECK
  std::vector<std::pair<SimTime, int>> flat_groups;
  flat_.busy_groups(now, flat_groups);
  assert(out == flat_groups && "sharded release-group merge diverged from flat");
#endif
}

void ShardedClusterIndex::busy_groups_for_mask_sharded(
    std::uint64_t mask, SimTime now, std::vector<std::pair<SimTime, int>>& out) const {
  std::map<SimTime, int> merged;
  for (const Shard& shard : shards_) {
    for (std::size_t c = 0; c < shard.class_busy.size(); ++c) {
      if (((mask >> c) & 1u) == 0) continue;
      for (const auto& [free_at, nodes] : shard.class_busy[c]) {
        merged[free_at] += nodes;
      }
    }
  }
  out.clear();
  auto it = merged.begin();
  int overdue = 0;
  for (; it != merged.end() && it->first <= now + 1; ++it) overdue += it->second;
  if (overdue > 0) out.emplace_back(now + 1, overdue);
  for (; it != merged.end(); ++it) out.emplace_back(it->first, it->second);
#ifdef SDSCHED_INDEX_CROSSCHECK
  std::vector<std::pair<SimTime, int>> flat_groups;
  flat_.busy_groups_for_mask(mask, now, flat_groups);
  assert(out == flat_groups && "sharded class release-group merge diverged from flat");
#endif
}

bool ShardedClusterIndex::check_consistent(std::string* diagnosis) const {
  const auto fail = [diagnosis](const std::string& what) {
    if (diagnosis != nullptr) *diagnosis = what;
    return false;
  };
  if (!flat_.check_consistent(diagnosis)) return false;

  // Re-derive every shard aggregate from the (just verified) flat view.
  std::vector<Shard> expect(shards_.size());
  for (Shard& shard : expect) {
    shard.class_free.assign(static_cast<std::size_t>(flat_.class_count()), 0);
    shard.class_busy.resize(static_cast<std::size_t>(flat_.class_count()));
  }
  for (int id = 0; id < machine_.node_count(); ++id) {
    Shard& shard = expect[static_cast<std::size_t>(layout_.shard_of(id))];
    const auto cls = static_cast<std::size_t>(
        flat_.node_class_[static_cast<std::size_t>(id)]);
    const SimTime at = flat_.node_free_at_[static_cast<std::size_t>(id)];
    if (at == ClusterStateIndex::kEmptyNode) {
      ++shard.free_total;
      ++shard.class_free[cls];
    } else {
      ++shard.occupied;
      ++shard.busy[at];
      ++shard.class_busy[cls][at];
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& have = shards_[s];
    const Shard& want = expect[s];
    if (have.free_total != want.free_total || have.occupied != want.occupied ||
        have.class_free != want.class_free || have.busy != want.busy ||
        have.class_busy != want.class_busy) {
      std::ostringstream oss;
      oss << "shard " << s << " aggregates diverged from the flat scan";
      return fail(oss.str());
    }
  }
  return true;
}

}  // namespace sdsched
