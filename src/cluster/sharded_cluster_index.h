// Sharded scheduler state: node-id-contiguous shards fronted by a
// coordinator, decisions committed through a deterministic ordered shard
// merge (ROADMAP "Sharded hierarchical scheduling for 50K+ node machines").
//
// The coordinator owns the flat ClusterStateIndex — constructed without
// claiming the machine's observer slot — and registers *itself* as the
// Machine observer. Every notification is routed through the flat index
// (which stays the byte-exact parity surface schedulers already consume)
// while the per-node free_at transition it causes is mirrored into the
// owning shard's aggregates:
//
//  * per-shard free-node totals and per-attribute-class free counts (the
//    aggregate a pass reads to skip a shard in O(1));
//  * per-shard (free_at -> node count) release maps, overall and per
//    class — each shard's slice of the reservation-profile base, merged
//    in shard order into the same groups the flat walk produces;
//  * per-shard earliest release (the coordinator-level "when does this
//    shard free up" probe the hierarchical-scheduling papers negotiate
//    with).
//
// The shard boundaries are word-aligned to the FreeNodeIndex bitmap
// (cluster/shard_layout.h), so a shard-local free-node pick reads whole
// words of the flat bitmap with no masking and no duplicated state.
//
// Determinism: shards ascend with node id and every merge walks shards in
// fixed 0..S-1 order with the flat walk's own tie-breaks, so every answer
// is byte-identical to the flat index at every shard count (the proof
// lives in docs/determinism.md "Ordered shard merge"). Under
// SDSCHED_INDEX_CROSSCHECK every sharded answer is additionally compared
// against the flat computation at runtime, and check_consistent()
// re-derives all shard aggregates from a flat scan.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_state_index.h"
#include "cluster/machine.h"
#include "cluster/shard_layout.h"
#include "job/job_registry.h"

namespace sdsched {

class ShardedClusterIndex final : public MachineObserver {
 public:
  /// Indexes `machine`'s current state into `config.count` shards and
  /// takes the machine's observer slot (the owned flat index does not).
  ShardedClusterIndex(Machine& machine, const JobRegistry& jobs,
                      ShardConfig config = {});
  ~ShardedClusterIndex() override;

  ShardedClusterIndex(const ShardedClusterIndex&) = delete;
  ShardedClusterIndex& operator=(const ShardedClusterIndex&) = delete;

  // MachineObserver: route through the flat index, then mirror the
  // free_at transition into the owning shard.
  void on_node_occupancy_changed(int node_id) override;

  /// `job`'s predicted end moved (mate stretching): refresh and re-shard
  /// every node the job holds.
  void on_predicted_end_changed(JobId job);

  /// The flat parity surface (versions, class masks, busy_groups, …).
  /// Schedulers keep consuming this exact API; the sharded layer adds
  /// aggregates and merge-based answers on top.
  [[nodiscard]] const ClusterStateIndex& flat() const noexcept { return flat_; }

  [[nodiscard]] const ShardLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Fan per-shard work onto the shared worker pool (ShardConfig::parallel).
  [[nodiscard]] bool parallel() const noexcept { return parallel_; }

  // --- per-shard aggregates (the coordinator's negotiation surface) ---

  /// No occupied node in the shard: shard_earliest_release's "never".
  static constexpr SimTime kNoRelease = std::numeric_limits<SimTime>::max();

  [[nodiscard]] int shard_free_count(int s) const {
    return shards_[static_cast<std::size_t>(s)].free_total;
  }
  [[nodiscard]] int shard_occupied_count(int s) const {
    return shards_[static_cast<std::size_t>(s)].occupied;
  }
  /// Free nodes in shard `s` whose attribute class is set in `mask`
  /// (ClusterStateIndex::eligible_class_mask) — O(classes in mask).
  [[nodiscard]] int shard_eligible_free_count(int s, std::uint64_t mask) const;
  /// Earliest free_at among shard `s`'s occupied nodes, kNoRelease when
  /// the shard is entirely free.
  [[nodiscard]] SimTime shard_earliest_release(int s) const {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    return shard.busy.empty() ? kNoRelease : shard.busy.begin()->first;
  }

  // --- ordered shard merges (byte-identical to the flat answers) ---

  /// Flat-identical free-node pick assembled shard by shard: walk shards
  /// in ascending order, skip shards whose eligible-free aggregate is
  /// zero, take lowest-first ids inside each from the shard's bitmap
  /// words. Contiguous requests delegate to the flat walk (an adequate
  /// run may cross shard boundaries, and per-shard counts cannot prune
  /// it). Crosschecked against the flat pick under
  /// SDSCHED_INDEX_CROSSCHECK.
  [[nodiscard]] std::optional<std::vector<int>> find_free_nodes(
      int count, const JobConstraints* constraints = nullptr) const;

  /// ClusterStateIndex::busy_groups assembled by merging the shards'
  /// release maps in shard order (same overdue clamping). The base
  /// snapshot of a sharded pass profile.
  void busy_groups_sharded(SimTime now,
                           std::vector<std::pair<SimTime, int>>& out) const;

  /// busy_groups_for_mask over the shards' per-class release maps — the
  /// base of a sharded per-class profile layer.
  void busy_groups_for_mask_sharded(std::uint64_t mask, SimTime now,
                                    std::vector<std::pair<SimTime, int>>& out) const;

  /// Flat consistency first, then every shard aggregate re-derived from a
  /// flat scan, then the merged release groups against the flat ones.
  [[nodiscard]] bool check_consistent(std::string* diagnosis = nullptr) const;

 private:
  struct Shard {
    int free_total = 0;               ///< free nodes in the shard
    int occupied = 0;                 ///< occupied nodes in the shard
    std::vector<int> class_free;      ///< free nodes per attribute class
    std::map<SimTime, int> busy;      ///< free_at -> occupied count
    std::vector<std::map<SimTime, int>> class_busy;  ///< per attribute class
  };

  /// Refresh one node through the flat index and mirror the free_at
  /// transition into its shard's aggregates.
  void route_refresh(int node_id);

  Machine& machine_;
  const JobRegistry& jobs_;
  ClusterStateIndex flat_;
  ShardLayout layout_;
  std::vector<Shard> shards_;
  bool parallel_ = false;
};

}  // namespace sdsched
