#include "cluster/free_node_index.h"

#include <bit>
#include <cassert>
#include <sstream>

namespace sdsched {

namespace {

/// Build the run maps a brute-force scan would produce: walk ids in
/// ascending order and chain consecutive free ids of the same class.
std::vector<std::map<int, int>> scan_runs(const std::vector<int>& node_class,
                                          std::size_t classes,
                                          const std::vector<bool>& is_free) {
  std::vector<std::map<int, int>> runs(classes);
  // Per class: the run currently being extended (start id), or -1.
  std::vector<int> open_start(classes, -1);
  std::vector<int> open_end(classes, -1);  ///< one past the last id in the run
  for (std::size_t id = 0; id < node_class.size(); ++id) {
    if (!is_free[id]) continue;
    const auto cls = static_cast<std::size_t>(node_class[id]);
    if (open_start[cls] >= 0 && open_end[cls] == static_cast<int>(id)) {
      ++runs[cls][open_start[cls]];
      ++open_end[cls];
    } else {
      open_start[cls] = static_cast<int>(id);
      open_end[cls] = static_cast<int>(id) + 1;
      runs[cls][open_start[cls]] = 1;
    }
  }
  return runs;
}

}  // namespace

// ---------------------------------------------------------------------------
// FreeNodeIndex — the bitmap-word primary.
// ---------------------------------------------------------------------------

FreeNodeIndex::FreeNodeIndex(std::vector<int> node_class, int classes)
    : node_class_(std::move(node_class)) {
  word_count_ = (node_class_.size() + 63) / 64;
  const std::size_t summary_count = (word_count_ + 63) / 64;
  classes_.resize(static_cast<std::size_t>(classes));
  for (ClassBits& cb : classes_) {
    cb.words.assign(word_count_, 0);
    cb.summary.assign(summary_count, 0);
  }
  // Every node starts free: set its bit in its class's slice. Tail bits of
  // the last word (ids >= node count) stay permanently zero.
  for (std::size_t id = 0; id < node_class_.size(); ++id) {
    ClassBits& cb = classes_[static_cast<std::size_t>(node_class_[id])];
    cb.words[id >> 6] |= std::uint64_t{1} << (id & 63);
    ++cb.free;
  }
  for (ClassBits& cb : classes_) {
    for (std::size_t w = 0; w < word_count_; ++w) {
      if (cb.words[w] != 0) cb.summary[w >> 6] |= std::uint64_t{1} << (w & 63);
    }
  }
  free_ = static_cast<int>(node_class_.size());
}

void FreeNodeIndex::insert(int id) {
  const auto uid = static_cast<std::size_t>(id);
  ClassBits& cb = classes_[static_cast<std::size_t>(node_class_[uid])];
  const std::size_t w = uid >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (uid & 63);
  assert((cb.words[w] & bit) == 0 && "node inserted into the free index twice");
  cb.words[w] |= bit;
  cb.summary[w >> 6] |= std::uint64_t{1} << (w & 63);
  ++cb.free;
  ++free_;
}

void FreeNodeIndex::erase(int id) {
  const auto uid = static_cast<std::size_t>(id);
  ClassBits& cb = classes_[static_cast<std::size_t>(node_class_[uid])];
  const std::size_t w = uid >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (uid & 63);
  assert((cb.words[w] & bit) != 0 && "node erased from the free index while not free");
  cb.words[w] &= ~bit;
  if (cb.words[w] == 0) cb.summary[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
  --cb.free;
  --free_;
}

std::optional<std::vector<int>> FreeNodeIndex::pick(int count,
                                                    const std::vector<int>& classes,
                                                    bool contiguous) const {
  assert(count >= 1);
  // The merged view over the eligible classes: per word, OR of the classes'
  // words (a node belongs to exactly one class, so the OR is a disjoint
  // union). The common homogeneous case (one class) reads the slice
  // directly; the k-class OR costs k loads per visited word, and the merged
  // summary skips 64 empty words per summary bit either way.
  const ClassBits* single = nullptr;
  if (classes.size() == 1) {
    single = &classes_[static_cast<std::size_t>(classes.front())];
  }
  const auto word_at = [&](std::size_t w) -> std::uint64_t {
    if (single != nullptr) return single->words[w];
    std::uint64_t bits = 0;
    for (const int cls : classes) bits |= classes_[static_cast<std::size_t>(cls)].words[w];
    return bits;
  };
  const auto summary_at = [&](std::size_t s) -> std::uint64_t {
    if (single != nullptr) return single->summary[s];
    std::uint64_t bits = 0;
    for (const int cls : classes) bits |= classes_[static_cast<std::size_t>(cls)].summary[s];
    return bits;
  };
  /// First word index >= `from` whose merged word is non-empty, or
  /// word_count_ when none — one summary bit test per 64 skipped words.
  const auto next_word = [&](std::size_t from) -> std::size_t {
    if (from >= word_count_) return word_count_;
    std::size_t s = from >> 6;
    std::uint64_t sw = summary_at(s) >> (from & 63) << (from & 63);  // clear bits < from
    const std::size_t summary_count = (word_count_ + 63) / 64;
    while (sw == 0) {
      if (++s >= summary_count) return word_count_;
      sw = summary_at(s);
    }
    return (s << 6) + static_cast<std::size_t>(std::countr_zero(sw));
  };

  if (!contiguous) {
    std::vector<int> picked;
    picked.reserve(static_cast<std::size_t>(count));
    for (std::size_t w = next_word(0); w < word_count_; w = next_word(w + 1)) {
      std::uint64_t bits = word_at(w);
      while (bits != 0) {
        picked.push_back(static_cast<int>((w << 6) +
                                          static_cast<std::size_t>(std::countr_zero(bits))));
        if (static_cast<int>(picked.size()) == count) return picked;
        bits &= bits - 1;  // clear the lowest set bit
      }
    }
    return std::nullopt;  // not enough eligible free nodes
  }

  // Contiguous: walk merged words in order, carrying the length of the run
  // that ends at the previous word's top bit. Inside a word, runs are
  // peeled lowest-first with ctz on the word and on its complement, so the
  // first time the carried length reaches `count` names the earliest
  // adequate span. An empty word breaks any run, and the summary level
  // fast-forwards the walk to the next populated word.
  int span_start = -1;
  int span_length = 0;
  std::size_t w = next_word(0);
  while (w < word_count_) {
    const std::uint64_t bits = word_at(w);
    int pos = 0;
    while (pos < 64) {
      const std::uint64_t rest = bits >> pos;
      if (rest == 0) break;
      const int gap = std::countr_zero(rest);
      pos += gap;
      const std::uint64_t run_bits = bits >> pos;  // pos < 64, bit pos set
      const int len = run_bits == ~std::uint64_t{0} ? 64 - pos
                                                    : std::countr_zero(~run_bits);
      if (pos == 0 && span_length > 0) {
        span_length += len;  // run continues across the word boundary
      } else {
        span_start = static_cast<int>(w << 6) + pos;
        span_length = len;
      }
      if (span_length >= count) {
        std::vector<int> picked(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          picked[static_cast<std::size_t>(i)] = span_start + i;
        }
        return picked;
      }
      pos += len;
    }
    // Carry only a run that reaches the word's top bit into the next word;
    // and only a directly adjacent word can extend it.
    const bool carries = (bits >> 63) != 0;
    if (!carries) span_length = 0;
    const std::size_t next = next_word(w + 1);
    if (carries && next != w + 1) span_length = 0;
    w = next;
  }
  return std::nullopt;
}

int FreeNodeIndex::pick_in_words(std::size_t word_begin, std::size_t word_end,
                                 int count, const std::vector<int>& classes,
                                 std::vector<int>& out) const {
  if (count <= 0 || word_begin >= word_end) return 0;
  if (word_end > word_count_) word_end = word_count_;
  const auto word_at = [&](std::size_t w) -> std::uint64_t {
    std::uint64_t bits = 0;
    for (const int cls : classes) bits |= classes_[static_cast<std::size_t>(cls)].words[w];
    return bits;
  };
  // Same summary-assisted skip as pick(), bounded to the word range: one
  // summary bit test per 64 empty words inside the shard.
  const auto next_word = [&](std::size_t from) -> std::size_t {
    if (from >= word_end) return word_end;
    std::size_t s = from >> 6;
    std::uint64_t sw = 0;
    for (const int cls : classes) sw |= classes_[static_cast<std::size_t>(cls)].summary[s];
    sw = sw >> (from & 63) << (from & 63);  // clear bits < from
    const std::size_t summary_count = (word_count_ + 63) / 64;
    while (sw == 0) {
      if (++s >= summary_count || (s << 6) >= word_end) return word_end;
      for (const int cls : classes) {
        sw |= classes_[static_cast<std::size_t>(cls)].summary[s];
      }
    }
    const std::size_t w = (s << 6) + static_cast<std::size_t>(std::countr_zero(sw));
    return w < word_end ? w : word_end;
  };
  int picked = 0;
  for (std::size_t w = next_word(word_begin); w < word_end; w = next_word(w + 1)) {
    std::uint64_t bits = word_at(w);
    while (bits != 0) {
      out.push_back(static_cast<int>((w << 6) +
                                     static_cast<std::size_t>(std::countr_zero(bits))));
      if (++picked == count) return picked;
      bits &= bits - 1;  // clear the lowest set bit
    }
  }
  return picked;
}

std::map<int, int> FreeNodeIndex::runs_of_class(int cls) const {
  std::map<int, int> runs;
  const ClassBits& cb = classes_[static_cast<std::size_t>(cls)];
  int open_start = -1;
  int open_len = 0;
  for (std::size_t w = 0; w < word_count_; ++w) {
    const std::uint64_t bits = cb.words[w];
    int pos = 0;
    while (pos < 64) {
      const std::uint64_t rest = bits >> pos;
      if (rest == 0) break;
      pos += std::countr_zero(rest);
      const std::uint64_t run_bits = bits >> pos;
      const int len = run_bits == ~std::uint64_t{0} ? 64 - pos
                                                    : std::countr_zero(~run_bits);
      if (pos == 0 && open_len > 0 && open_start + open_len == static_cast<int>(w << 6)) {
        open_len += len;
      } else {
        if (open_len > 0) runs.emplace(open_start, open_len);
        open_start = static_cast<int>(w << 6) + pos;
        open_len = len;
      }
      pos += len;
    }
    if (pos < 64 || (bits >> 63) == 0) {
      if (open_len > 0) runs.emplace(open_start, open_len);
      open_len = 0;
    }
  }
  if (open_len > 0) runs.emplace(open_start, open_len);
  return runs;
}

bool FreeNodeIndex::check_consistent(const std::vector<bool>& is_free,
                                     std::string* diagnosis) const {
  assert(is_free.size() == node_class_.size());
  const auto fail = [diagnosis](const std::string& what) {
    if (diagnosis != nullptr) *diagnosis = what;
    return false;
  };

  // Tier 1: every bit against the brute-force predicate, plus the summary
  // invariant and the cached popcounts.
  int expect_free = 0;
  std::vector<int> expect_class_free(classes_.size(), 0);
  for (std::size_t id = 0; id < node_class_.size(); ++id) {
    if (is_free[id]) {
      ++expect_free;
      ++expect_class_free[static_cast<std::size_t>(node_class_[id])];
    }
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      const bool bit =
          ((classes_[c].words[id >> 6] >> (id & 63)) & 1u) != 0;
      const bool expect =
          is_free[id] && static_cast<std::size_t>(node_class_[id]) == c;
      if (bit != expect) {
        std::ostringstream oss;
        oss << "bitmap index node " << id << " class " << c << ": bit " << bit
            << " != scanned " << expect;
        return fail(oss.str());
      }
    }
  }
  if (free_ != expect_free) {
    std::ostringstream oss;
    oss << "bitmap index free count " << free_ << " != scanned " << expect_free;
    return fail(oss.str());
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const ClassBits& cb = classes_[c];
    if (cb.free != expect_class_free[c]) {
      std::ostringstream oss;
      oss << "bitmap index class " << c << " free count " << cb.free
          << " != scanned " << expect_class_free[c];
      return fail(oss.str());
    }
    for (std::size_t w = 0; w < word_count_; ++w) {
      const bool summary_bit = ((cb.summary[w >> 6] >> (w & 63)) & 1u) != 0;
      if (summary_bit != (cb.words[w] != 0)) {
        std::ostringstream oss;
        oss << "bitmap index class " << c << " summary bit for word " << w
            << " violates the summary invariant";
        return fail(oss.str());
      }
    }
  }

  // Tier 2: the derived run view against the scan (the contract the run
  // index used to own).
  const auto expect_runs = scan_runs(node_class_, classes_.size(), is_free);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (runs_of_class(static_cast<int>(c)) != expect_runs[c]) {
      std::ostringstream oss;
      oss << "bitmap index class " << c << " derived runs diverged from node scan";
      return fail(oss.str());
    }
  }

  return true;
}

}  // namespace sdsched
