#include "cluster/free_node_index.h"

#include <cassert>
#include <sstream>

namespace sdsched {

namespace {

/// Build the run maps a brute-force scan would produce: walk ids in
/// ascending order and chain consecutive free ids of the same class.
std::vector<std::map<int, int>> scan_runs(const std::vector<int>& node_class,
                                          std::size_t classes,
                                          const std::vector<bool>& is_free) {
  std::vector<std::map<int, int>> runs(classes);
  // Per class: the run currently being extended (start id), or -1.
  std::vector<int> open_start(classes, -1);
  std::vector<int> open_end(classes, -1);  ///< one past the last id in the run
  for (std::size_t id = 0; id < node_class.size(); ++id) {
    if (!is_free[id]) continue;
    const auto cls = static_cast<std::size_t>(node_class[id]);
    if (open_start[cls] >= 0 && open_end[cls] == static_cast<int>(id)) {
      ++runs[cls][open_start[cls]];
      ++open_end[cls];
    } else {
      open_start[cls] = static_cast<int>(id);
      open_end[cls] = static_cast<int>(id) + 1;
      runs[cls][open_start[cls]] = 1;
    }
  }
  return runs;
}

}  // namespace

FreeNodeIndex::FreeNodeIndex(std::vector<int> node_class, int classes)
    : node_class_(std::move(node_class)) {
  const std::vector<bool> all_free(node_class_.size(), true);
  runs_ = scan_runs(node_class_, static_cast<std::size_t>(classes), all_free);
  free_ = static_cast<int>(node_class_.size());
}

void FreeNodeIndex::insert(int id) {
  RunMap& runs = runs_[static_cast<std::size_t>(node_class_[static_cast<std::size_t>(id)])];
  int start = id;
  int length = 1;
  // Absorb the run starting right after id, if any.
  if (const auto right = runs.find(id + 1); right != runs.end()) {
    length += right->second;
    runs.erase(right);
  }
  // Extend the run ending right before id, if any.
  const auto after = runs.lower_bound(id);
  if (after != runs.begin()) {
    const auto left = std::prev(after);
    assert(left->first + left->second <= id && "node inserted into the free index twice");
    if (left->first + left->second == id) {
      left->second += length;
      ++free_;
      return;
    }
  }
  runs.emplace(start, length);
  ++free_;
}

void FreeNodeIndex::erase(int id) {
  RunMap& runs = runs_[static_cast<std::size_t>(node_class_[static_cast<std::size_t>(id)])];
  auto it = runs.upper_bound(id);
  assert(it != runs.begin() && "node erased from the free index while not free");
  --it;
  const int start = it->first;
  const int length = it->second;
  assert(id >= start && id < start + length &&
         "node erased from the free index while not free");
  runs.erase(it);
  if (id > start) runs.emplace(start, id - start);
  if (id < start + length - 1) runs.emplace(id + 1, start + length - 1 - id);
  --free_;
}

std::optional<std::vector<int>> FreeNodeIndex::pick(int count,
                                                    const std::vector<int>& classes,
                                                    bool contiguous) const {
  assert(count >= 1);
  // One cursor per eligible class; each step consumes the run with the
  // lowest start id. Runs are disjoint across classes (a node belongs to
  // exactly one), so the walk yields globally ascending disjoint runs.
  // Homogeneous machines (the common case) keep a single inline cursor —
  // no heap allocation on the scheduling hot path.
  struct Cursor {
    RunMap::const_iterator it;
    RunMap::const_iterator end;
  };
  Cursor single;
  std::vector<Cursor> merged;
  std::size_t cursor_count = 0;
  if (classes.size() == 1) {
    const RunMap& runs = runs_[static_cast<std::size_t>(classes.front())];
    if (!runs.empty()) {
      single = Cursor{runs.begin(), runs.end()};
      cursor_count = 1;
    }
  } else {
    merged.reserve(classes.size());
    for (const int cls : classes) {
      const RunMap& runs = runs_[static_cast<std::size_t>(cls)];
      if (!runs.empty()) merged.push_back(Cursor{runs.begin(), runs.end()});
    }
    cursor_count = merged.size();
  }
  Cursor* const cursors = classes.size() == 1 ? &single : merged.data();
  const auto next_run = [cursors, cursor_count]() -> const std::pair<const int, int>* {
    const std::pair<const int, int>* best = nullptr;
    Cursor* best_cursor = nullptr;
    for (std::size_t c = 0; c < cursor_count; ++c) {
      Cursor& cursor = cursors[c];
      if (cursor.it == cursor.end) continue;
      if (best == nullptr || cursor.it->first < best->first) {
        best = &*cursor.it;
        best_cursor = &cursor;
      }
    }
    if (best_cursor != nullptr) ++best_cursor->it;
    return best;
  };

  if (!contiguous) {
    std::vector<int> picked;
    picked.reserve(static_cast<std::size_t>(count));
    while (static_cast<int>(picked.size()) < count) {
      const auto* run = next_run();
      if (run == nullptr) return std::nullopt;  // not enough eligible free nodes
      const int take = std::min(run->second, count - static_cast<int>(picked.size()));
      for (int i = 0; i < take; ++i) picked.push_back(run->first + i);
    }
    return picked;
  }

  // Contiguous: join adjacent eligible runs into maximal spans; the first
  // span reaching `count` is the earliest (runs arrive in ascending order).
  int span_start = -1;
  int span_length = 0;
  for (const auto* run = next_run(); run != nullptr; run = next_run()) {
    if (span_length > 0 && run->first == span_start + span_length) {
      span_length += run->second;
    } else {
      span_start = run->first;
      span_length = run->second;
    }
    if (span_length >= count) {
      std::vector<int> picked(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) picked[static_cast<std::size_t>(i)] = span_start + i;
      return picked;
    }
  }
  return std::nullopt;
}

bool FreeNodeIndex::check_consistent(const std::vector<bool>& is_free,
                                     std::string* diagnosis) const {
  assert(is_free.size() == node_class_.size());
  const auto expect = scan_runs(node_class_, runs_.size(), is_free);
  int expect_free = 0;
  for (const bool f : is_free) expect_free += f ? 1 : 0;
  if (free_ != expect_free) {
    if (diagnosis != nullptr) {
      std::ostringstream oss;
      oss << "free-run index free count " << free_ << " != scanned " << expect_free;
      *diagnosis = oss.str();
    }
    return false;
  }
  for (std::size_t cls = 0; cls < runs_.size(); ++cls) {
    if (runs_[cls] != expect[cls]) {
      if (diagnosis != nullptr) {
        std::ostringstream oss;
        oss << "free-run index class " << cls << " runs diverged from node scan";
        *diagnosis = oss.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace sdsched
