// Class-partitioned free-run index: the free side of the ClusterStateIndex.
//
// Machine::find_free_nodes walks the ordered free set (and, for constrained
// requests, filters every free node) on every call — and SD-Policy calls it
// from inside the mate-combination DFS, so the cost is machine-size-
// proportional per *evaluated combination*. This index keeps, per attribute
// class, the maximal runs of consecutive free node ids as a sorted
// (start -> length) map, maintained incrementally on every free/busy
// transition (O(log runs) per mutation). Picks then touch only the runs
// they consume:
//
//  * lowest-id picks walk runs in ascending order across the eligible
//    classes (k-way merge, k = eligible classes) — O(picked + runs touched);
//  * contiguous picks walk the same merged sequence joining adjacent runs
//    and stop at the first span of the requested length — no full scan.
//
// The index answers with exactly the node ids Machine::find_free_nodes
// would return (lowest-first, earliest-run-first); the ClusterStateIndex
// cross-check (SDSCHED_INDEX_CROSSCHECK) asserts that equivalence on every
// scheduling pass.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdsched {

class FreeNodeIndex {
 public:
  FreeNodeIndex() = default;

  /// `node_class[i]` is node i's attribute class (< `classes`). Every node
  /// starts free; the owner erases the occupied ones while indexing.
  FreeNodeIndex(std::vector<int> node_class, int classes);

  /// Node `id` became free (must currently be occupied).
  void insert(int id);

  /// Node `id` became occupied (must currently be free).
  void erase(int id);

  [[nodiscard]] int free_count() const noexcept { return free_; }

  /// The `count` lowest free ids among nodes whose class is listed in
  /// `classes` (ascending class indices); with `contiguous`, the first
  /// `count` ids of the earliest maximal run of consecutive ids instead.
  /// nullopt when not enough eligible free nodes (or no adequate run).
  /// `count` must be >= 1.
  [[nodiscard]] std::optional<std::vector<int>> pick(int count,
                                                     const std::vector<int>& classes,
                                                     bool contiguous) const;

  /// The run map of one class (tests and the consistency cross-check).
  [[nodiscard]] const std::map<int, int>& runs_of_class(int cls) const {
    return runs_[static_cast<std::size_t>(cls)];
  }

  /// Rebuild the expected run maps from `is_free` (a brute-force free
  /// predicate over node ids) and compare. On mismatch returns false and,
  /// if given, fills `diagnosis`.
  [[nodiscard]] bool check_consistent(const std::vector<bool>& is_free,
                                      std::string* diagnosis = nullptr) const;

 private:
  using RunMap = std::map<int, int>;  ///< run start id -> run length

  std::vector<RunMap> runs_;  ///< one map per attribute class
  std::vector<int> node_class_;
  int free_ = 0;
};

}  // namespace sdsched
