// Class-partitioned bitmap free-node index: the free side of the
// ClusterStateIndex.
//
// Machine::find_free_nodes walks the ordered free set (and, for constrained
// requests, filters every free node) on every call — and SD-Policy calls it
// from inside the mate-combination DFS, so the cost is machine-size-
// proportional per *evaluated combination*. The PR 5 run-based index made
// picks O(runs touched), but every free/busy flip still paid O(log runs)
// tree maintenance on pointer-chasing map nodes. This index is the word-
// level endgame: per attribute class, a flat vector of 64-bit words (bit i
// set <=> node i is free AND belongs to the class) plus one summary level
// (summary bit w set <=> words[w] != 0) and a cached free-node popcount.
//
//  * a free/busy flip sets or clears one bit and maintains the summary
//    bit and the counts — O(1), no allocation, no tree rebalance;
//  * lowest-id picks OR the eligible classes' words on the fly (summary
//    words first, so empty regions cost one bit test per 64 words) and
//    peel set bits with ctz — ascending ids by construction;
//  * contiguous picks walk the same merged words carrying the length of
//    the run that ends at each word's top bit, so a span crossing word
//    boundaries is found without ever materializing runs.
//
// Node-id layout: node id n lives in word n/64, bit n%64, in every class's
// word vector (a node's bit is permanently zero in the classes it does not
// belong to). Machines whose node count is not a multiple of 64 leave the
// tail bits of the last word permanently zero ("dead bits"): ids >= the
// node count are never inserted, so popcounts and scans need no masking.
// This flat layout is deliberately shard-friendly: a future scheduler shard
// owning nodes [a, b) reads words [a/64, ceil(b/64)) without coordination.
//
// The index answers with exactly the node ids Machine::find_free_nodes
// would return (lowest-first, earliest adequate span for contiguous
// requests). check_consistent runs a two-tier parity check against a
// brute-force node scan — every bit plus the summary invariant, then the
// derived run view (the contract the PR 5 run index used to own; that
// structure itself served out its deprecation window as a
// SDSCHED_INDEX_CROSSCHECK shadow and is gone) — and the ClusterStateIndex
// harness additionally compares every indexed pick against the machine
// scan under SDSCHED_INDEX_CROSSCHECK.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdsched {

class FreeNodeIndex {
 public:
  FreeNodeIndex() = default;

  /// `node_class[i]` is node i's attribute class (< `classes`). Every node
  /// starts free; the owner erases the occupied ones while indexing.
  FreeNodeIndex(std::vector<int> node_class, int classes);

  /// Node `id` became free (must currently be occupied). O(1).
  void insert(int id);

  /// Node `id` became occupied (must currently be free). O(1).
  void erase(int id);

  [[nodiscard]] int free_count() const noexcept { return free_; }

  /// Free nodes of one class (cached popcount).
  [[nodiscard]] int free_count_of_class(int cls) const {
    return classes_[static_cast<std::size_t>(cls)].free;
  }

  /// The `count` lowest free ids among nodes whose class is listed in
  /// `classes` (ascending class indices); with `contiguous`, the first
  /// `count` ids of the earliest maximal run of consecutive ids instead.
  /// nullopt when not enough eligible free nodes (or no adequate run).
  /// `count` must be >= 1.
  [[nodiscard]] std::optional<std::vector<int>> pick(int count,
                                                     const std::vector<int>& classes,
                                                     bool contiguous) const;

  /// Shard-local slice of the non-contiguous pick: append to `out` up to
  /// `count` lowest free ids whose class is listed in `classes` and whose
  /// word index falls in [word_begin, word_end) — whole words only, the
  /// ShardLayout guarantees shard boundaries are word-aligned. Returns the
  /// number appended. Walking word ranges in ascending order reproduces
  /// pick()'s global lowest-first order exactly (the ordered shard merge).
  int pick_in_words(std::size_t word_begin, std::size_t word_end, int count,
                    const std::vector<int>& classes, std::vector<int>& out) const;

  /// One class's free runs, derived from the bitmap on demand — test and
  /// diagnostic surface only (the hot paths never materialize runs).
  [[nodiscard]] std::map<int, int> runs_of_class(int cls) const;

  /// One class's bitmap words / summary words (tests: the summary-level
  /// invariant `summary bit w == (words[w] != 0)` is asserted after every
  /// mutation by the property suite).
  [[nodiscard]] const std::vector<std::uint64_t>& words_of_class(int cls) const {
    return classes_[static_cast<std::size_t>(cls)].words;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& summary_of_class(int cls) const {
    return classes_[static_cast<std::size_t>(cls)].summary;
  }

  /// Verify against `is_free` (a brute-force free predicate over node ids):
  /// every bit, the summary level, the cached counts, and the derived run
  /// view against the scan. On mismatch returns false and, if given, fills
  /// `diagnosis`.
  [[nodiscard]] bool check_consistent(const std::vector<bool>& is_free,
                                      std::string* diagnosis = nullptr) const;

 private:
  /// One attribute class's slice of the bitmap.
  struct ClassBits {
    std::vector<std::uint64_t> words;    ///< bit i of word i/64: node free & in class
    std::vector<std::uint64_t> summary;  ///< bit w of word w/64: words[w] != 0
    int free = 0;                        ///< cached popcount over `words`
  };

  std::vector<ClassBits> classes_;
  std::vector<int> node_class_;
  std::size_t word_count_ = 0;  ///< ceil(node count / 64), shared by all classes
  int free_ = 0;
};

}  // namespace sdsched
