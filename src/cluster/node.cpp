#include "cluster/node.h"

#include <algorithm>

namespace sdsched {

int Node::used_cores() const noexcept {
  int used = 0;
  for (const auto& occ : occupants_) used += occ.cpus;
  return used;
}

bool Node::holds(JobId job) const noexcept {
  return std::any_of(occupants_.begin(), occupants_.end(),
                     [job](const NodeOccupant& o) { return o.job == job; });
}

std::optional<NodeOccupant> Node::occupant(JobId job) const noexcept {
  for (const auto& occ : occupants_) {
    if (occ.job == job) return occ;
  }
  return std::nullopt;
}

std::optional<NodeOccupant> Node::owner() const noexcept {
  for (const auto& occ : occupants_) {
    if (occ.owner) return occ;
  }
  return std::nullopt;
}

bool Node::add(JobId job, int cpus, bool is_owner) {
  if (cpus < 1 || cpus > free_cores() || holds(job)) return false;
  occupants_.push_back(NodeOccupant{job, cpus, is_owner});
  return true;
}

int Node::remove(JobId job) {
  const auto it = std::find_if(occupants_.begin(), occupants_.end(),
                               [job](const NodeOccupant& o) { return o.job == job; });
  if (it == occupants_.end()) return 0;
  const int cpus = it->cpus;
  occupants_.erase(it);
  return cpus;
}

bool Node::resize(JobId job, int cpus) {
  if (cpus < 1) return false;
  const auto it = std::find_if(occupants_.begin(), occupants_.end(),
                               [job](const NodeOccupant& o) { return o.job == job; });
  if (it == occupants_.end()) return false;
  const int others = used_cores() - it->cpus;
  if (others + cpus > total_cores()) return false;
  it->cpus = cpus;
  return true;
}

}  // namespace sdsched
