// Event-driven cluster state index.
//
// Scheduling passes used to rebuild their view of the cluster from scratch:
// scan every node, every occupant, every attribute. This index inverts
// that: the kernel notifies it on every occupancy change (static starts,
// guest placements, finishes, reconfigurations — via the Machine observer
// hook) and on every predicted-end move (mate stretching — via the
// Simulation kernel), and the index maintains incrementally:
//
//  * per-node `free_at` — the latest predicted end among the node's
//    occupants (the time backfill's reservation profile expects the node
//    back), plus a sorted (free_at -> node count) map over occupied nodes
//    from which a ReservationProfile base snapshot is assembled in
//    O(distinct release times);
//  * per-attribute-class eligible/free node counts, making constraint
//    filtering (§3.2.4) O(classes) instead of O(nodes);
//  * a version counter, so schedulers can reuse their profile base across
//    passes when nothing changed.
//
// check_consistent() cross-checks everything against the brute-force node
// scan the index replaced; compile with SDSCHED_INDEX_CROSSCHECK (the asan
// preset does) to run it on every scheduling pass.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/machine.h"
#include "job/job_registry.h"

namespace sdsched {

class ClusterStateIndex final : public MachineObserver {
 public:
  /// Attaches to `machine` as its observer and indexes its current state.
  /// `jobs` provides occupants' predicted ends.
  ClusterStateIndex(Machine& machine, const JobRegistry& jobs);
  ~ClusterStateIndex() override;

  ClusterStateIndex(const ClusterStateIndex&) = delete;
  ClusterStateIndex& operator=(const ClusterStateIndex&) = delete;

  // MachineObserver: an occupancy mutation touched `node_id`.
  void on_node_occupancy_changed(int node_id) override;

  /// `job`'s predicted end moved (mate stretching, Listing 1 update_stats):
  /// refresh every node the job holds.
  void on_predicted_end_changed(JobId job);

  /// Bumped whenever any indexed quantity actually changed.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Occupied-node release groups for a pass at `now`: ascending (free_at,
  /// nodes) with overdue occupants (free_at <= now) clamped to now + 1
  /// ("assume imminent completion"), ready for ReservationProfile::set_base.
  void busy_groups(SimTime now, std::vector<std::pair<SimTime, int>>& out) const;

  /// Nodes (free or busy) satisfying `constraints` — O(attribute classes).
  [[nodiscard]] int eligible_node_count(const JobConstraints& constraints) const;

  /// Free nodes satisfying `constraints` — O(attribute classes).
  [[nodiscard]] int eligible_free_count(const JobConstraints& constraints) const;

  [[nodiscard]] int occupied_node_count() const noexcept { return occupied_nodes_; }

  /// Cross-check every indexed quantity against a full scan of the machine
  /// and registry. On mismatch returns false and, if given, fills
  /// `diagnosis` with the first divergence found.
  [[nodiscard]] bool check_consistent(std::string* diagnosis = nullptr) const;

 private:
  /// Recompute one node's free_at and class/free bookkeeping; bumps the
  /// version only when something actually changed.
  void refresh_node(int node_id);

  [[nodiscard]] SimTime scan_free_at(int node_id) const;

  static constexpr SimTime kEmptyNode = INT64_MIN;

  struct AttrClass {
    NodeAttributes attributes;
    int total = 0;
    int free = 0;
  };

  Machine& machine_;
  const JobRegistry& jobs_;

  std::vector<SimTime> node_free_at_;        ///< kEmptyNode for free nodes
  std::map<SimTime, int> busy_counts_;       ///< free_at -> occupied node count
  int occupied_nodes_ = 0;

  std::vector<AttrClass> classes_;
  std::vector<int> node_class_;              ///< node id -> index into classes_

  std::uint64_t version_ = 0;
};

}  // namespace sdsched
