// Event-driven cluster state index.
//
// Scheduling passes used to rebuild their view of the cluster from scratch:
// scan every node, every occupant, every attribute. This index inverts
// that: the kernel notifies it on every occupancy change (static starts,
// guest placements, finishes, reconfigurations — via the Machine observer
// hook) and on every predicted-end move (mate stretching — via the
// Simulation kernel), and the index maintains incrementally:
//
//  * per-node `free_at` — the latest predicted end among the node's
//    occupants (the time backfill's reservation profile expects the node
//    back), plus a sorted (free_at -> node count) map over occupied nodes
//    from which a ReservationProfile base snapshot is assembled in
//    O(distinct release times);
//  * per-attribute-class eligible/free node counts, making constraint
//    filtering (§3.2.4) O(classes) instead of O(nodes);
//  * per-attribute-class (free_at -> node count) maps, from which the
//    per-class reservation-profile layers (constraint-class-aware earliest
//    starts for constrained jobs) are assembled via busy_groups_for_mask();
//  * a class-partitioned bitmap FreeNodeIndex over free node ids (64 nodes
//    per word plus a summary level), so free/busy flips are O(1) bit
//    maintenance and find_free_nodes — called from the scheduling pass on
//    every start and from SD-Policy's mate-combination DFS — resolves with
//    popcount/ctz word scans instead of walking the ordered free set;
//  * a version counter, so schedulers can reuse their profile base across
//    passes when nothing changed.
//
// check_consistent() cross-checks everything against the brute-force node
// scan the index replaced; compile with SDSCHED_INDEX_CROSSCHECK (the asan
// preset does) to run it on every scheduling pass — the free-node check
// covers every bitmap bit, the summary invariant, and the derived run view
// against the node scan (see free_node_index.h), and pick_free_nodes()
// additionally compares every indexed free-node pick against the machine
// scan.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/free_node_index.h"
#include "cluster/machine.h"
#include "job/job_registry.h"

namespace sdsched {

class ClusterStateIndex final : public MachineObserver {
 public:
  /// Attaches to `machine` as its observer and indexes its current state.
  /// `jobs` provides occupants' predicted ends. With `attach_observer`
  /// false the index never touches the machine's observer slot: an owner
  /// (ShardedClusterIndex) registers itself instead and routes every
  /// notification through, reading the per-node before/after state to keep
  /// its shard aggregates in lockstep.
  ClusterStateIndex(Machine& machine, const JobRegistry& jobs,
                    bool attach_observer = true);
  ~ClusterStateIndex() override;

  ClusterStateIndex(const ClusterStateIndex&) = delete;
  ClusterStateIndex& operator=(const ClusterStateIndex&) = delete;

  // MachineObserver: an occupancy mutation touched `node_id`.
  void on_node_occupancy_changed(int node_id) override;

  /// `job`'s predicted end moved (mate stretching, Listing 1 update_stats):
  /// refresh every node the job holds.
  void on_predicted_end_changed(JobId job);

  /// Bumped whenever any indexed quantity actually changed. A no-op
  /// notification (e.g. a share resize that leaves the node's free_at and
  /// emptiness alone) does NOT bump it — profile-base reuse depends on
  /// that. State below the index's resolution (per-share core counts, free
  /// cores on a still-busy node) may change without a version bump: cache
  /// on mutation_serial() instead when that state matters.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Bumped on EVERY occupancy/predicted-end notification, including ones
  /// that change nothing the index tracks. An unchanged mutation_serial
  /// guarantees the machine has not been touched at all — the key the
  /// MateSelector's node-budget cache (which reads per-share core counts
  /// the index itself does not model) is valid under.
  [[nodiscard]] std::uint64_t mutation_serial() const noexcept { return mutation_serial_; }

  /// Occupied-node release groups for a pass at `now`: ascending (free_at,
  /// nodes) with overdue occupants (free_at <= now) clamped to now + 1
  /// ("assume imminent completion"), ready for ReservationProfile::set_base.
  void busy_groups(SimTime now, std::vector<std::pair<SimTime, int>>& out) const;

  /// Nodes (free or busy) satisfying `constraints` — O(attribute classes).
  [[nodiscard]] int eligible_node_count(const JobConstraints& constraints) const;

  /// Free nodes satisfying `constraints` — O(attribute classes).
  [[nodiscard]] int eligible_free_count(const JobConstraints& constraints) const;

  [[nodiscard]] int occupied_node_count() const noexcept { return occupied_nodes_; }

  /// Drop-in indexed replacement for Machine::find_free_nodes: same node
  /// ids (lowest-first; earliest adequate run for contiguous requests),
  /// but resolved from the bitmap words — O(words/64 + words touched)
  /// worst case instead of O(free nodes). `count` must be >= 1.
  [[nodiscard]] std::optional<std::vector<int>> find_free_nodes(
      int count, const JobConstraints* constraints = nullptr) const;

  // --- attribute-class layer (constraint-class-aware profiles) ---

  [[nodiscard]] int class_count() const noexcept {
    return static_cast<int>(classes_.size());
  }

  /// Bit i set <=> attribute class i satisfies `constraints`. Only valid
  /// while class_count() <= 64 (callers fall back to the class-blind
  /// profile beyond that).
  [[nodiscard]] std::uint64_t eligible_class_mask(const JobConstraints& constraints) const;

  /// Total nodes (free or busy) across the classes in `mask`.
  [[nodiscard]] int node_count_for_mask(std::uint64_t mask) const;

  /// busy_groups() restricted to the classes in `mask` (same overdue
  /// clamping) — the base snapshot of a per-class profile layer.
  void busy_groups_for_mask(std::uint64_t mask, SimTime now,
                            std::vector<std::pair<SimTime, int>>& out) const;

  /// The class-partitioned free-node bitmap (tests).
  [[nodiscard]] const FreeNodeIndex& free_runs() const noexcept { return free_runs_; }

  /// Cross-check every indexed quantity against a full scan of the machine
  /// and registry. On mismatch returns false and, if given, fills
  /// `diagnosis` with the first divergence found.
  [[nodiscard]] bool check_consistent(std::string* diagnosis = nullptr) const;

 private:
  /// The sharded coordinator routes machine notifications through this
  /// index and mirrors per-node free_at transitions into its per-shard
  /// aggregates — it needs the pre/post node_free_at_ view and refresh_node.
  friend class ShardedClusterIndex;

  /// Recompute one node's free_at and class/free bookkeeping; bumps the
  /// version only when something actually changed.
  void refresh_node(int node_id);

  [[nodiscard]] SimTime scan_free_at(int node_id) const;

  static constexpr SimTime kEmptyNode = INT64_MIN;

  struct AttrClass {
    NodeAttributes attributes;
    int total = 0;
    int free = 0;
    std::map<SimTime, int> busy;  ///< free_at -> occupied node count, this class
  };

  Machine& machine_;
  const JobRegistry& jobs_;

  std::vector<SimTime> node_free_at_;        ///< kEmptyNode for free nodes
  std::map<SimTime, int> busy_counts_;       ///< free_at -> occupied node count
  int occupied_nodes_ = 0;

  std::vector<AttrClass> classes_;
  std::vector<int> node_class_;              ///< node id -> index into classes_
  std::vector<int> all_classes_;             ///< 0..classes-1 (pick fast path)
  FreeNodeIndex free_runs_;

  std::uint64_t version_ = 0;
  std::uint64_t mutation_serial_ = 0;
  bool attached_ = false;  ///< this index holds the machine's observer slot
};

/// Free-node picking through the index when one is attached, through the
/// machine scan otherwise — the single dispatch point schedulers and the
/// MateSelector share. Under SDSCHED_INDEX_CROSSCHECK every indexed pick is
/// compared against the machine scan.
[[nodiscard]] std::optional<std::vector<int>> pick_free_nodes(
    const Machine& machine, const ClusterStateIndex* index, int count,
    const JobConstraints* constraints);

}  // namespace sdsched
