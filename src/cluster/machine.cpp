#include "cluster/machine.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace sdsched {

bool node_satisfies(const NodeAttributes& attributes,
                    const JobConstraints& constraints) noexcept {
  if (!constraints.required_arch.empty() && attributes.arch != constraints.required_arch) {
    return false;
  }
  if (attributes.memory_gb < constraints.min_memory_gb) return false;
  if (!constraints.required_network.empty() &&
      attributes.network != constraints.required_network) {
    return false;
  }
  return true;
}

// An index that subscribes after construction seeds itself from a full scan,
// so the unnotified free_nodes_ seeding below cannot strand a subscriber.
// detlint: mutator-ok(construction precedes any observer attachment)
Machine::Machine(MachineConfig config)
    : config_(std::move(config)), energy_(config_.energy, config_.nodes) {
  assert(config_.nodes > 0);
  // One lookup map instead of re-scanning the override list per node
  // (O(nodes + overrides), not O(nodes x overrides) — at 5040 nodes a long
  // override list made construction quadratic). insert_or_assign keeps the
  // historical last-entry-wins semantics for duplicate node ids.
  // Determinism audit (detlint D1): this unordered_map is lookup-only —
  // `find` below, never iterated — so its order can't leak into node
  // attribute assignment; the loop itself runs in ascending node id.
  std::unordered_map<int, const NodeAttributes*> overrides;
  overrides.reserve(config_.attribute_overrides.size());
  for (const auto& [id, override_attrs] : config_.attribute_overrides) {
    overrides.insert_or_assign(id, &override_attrs);
  }
  nodes_.reserve(config_.nodes);
  for (int i = 0; i < config_.nodes; ++i) {
    const auto it = overrides.find(i);
    nodes_.emplace_back(i, config_.node,
                        it != overrides.end() ? *it->second : config_.attributes);
    free_nodes_.insert(i);
  }
}

std::optional<std::vector<int>> Machine::find_free_nodes(
    int count, const JobConstraints* constraints) const {
  if (count > free_node_count()) return std::nullopt;
  if (constraints == nullptr || constraints->unconstrained()) {
    std::vector<int> picked;
    picked.reserve(count);
    for (const int id : free_nodes_) {
      picked.push_back(id);
      if (static_cast<int>(picked.size()) == count) break;
    }
    return picked;
  }

  std::vector<int> eligible;
  for (const int id : free_nodes_) {
    if (node_satisfies(nodes_[id].attributes(), *constraints)) eligible.push_back(id);
  }
  if (static_cast<int>(eligible.size()) < count) return std::nullopt;
  if (!constraints->contiguous) {
    eligible.resize(count);
    return eligible;
  }
  // Contiguous: the earliest run of `count` consecutive ids.
  int run_start = 0;
  for (std::size_t i = 1; i <= eligible.size(); ++i) {
    if (i == eligible.size() || eligible[i] != eligible[i - 1] + 1) {
      if (static_cast<int>(i) - run_start >= count) {
        return std::vector<int>(eligible.begin() + run_start,
                                eligible.begin() + run_start + count);
      }
      run_start = static_cast<int>(i);
    }
  }
  return std::nullopt;
}

int Machine::eligible_node_count(const JobConstraints& constraints) const {
  if (constraints.unconstrained()) return node_count();
  int eligible = 0;
  for (const auto& node : nodes_) {
    if (node_satisfies(node.attributes(), constraints)) ++eligible;
  }
  return eligible;
}

SimTime Machine::touch(SimTime now) {
  if (now < last_touch_) return last_touch_ - now;
  core_seconds_ += static_cast<double>(busy_cores_) * static_cast<double>(now - last_touch_);
  energy_.observe(now, busy_cores_, occupied_nodes());
  last_touch_ = now;
  return 0;
}

void Machine::commit(SimTime span, int cpu_delta, int node_delta) {
  if (span > 0) {
    core_seconds_ += static_cast<double>(cpu_delta) * static_cast<double>(span);
    energy_.credit(static_cast<double>(cpu_delta) * static_cast<double>(span),
                   static_cast<double>(node_delta) * static_cast<double>(span));
  }
  energy_.observe(last_touch_, busy_cores_, occupied_nodes());
}

// detlint: mutator-ok(notify-path helper; every caller notifies after syncing)
void Machine::sync_free_state(int node_id) {
  if (nodes_[node_id].empty()) {
    free_nodes_.insert(node_id);
  } else {
    free_nodes_.erase(node_id);
  }
}

bool Machine::allocate_exclusive(SimTime now, JobId job, const std::vector<int>& node_ids,
                                 const std::vector<int>& cpus) {
  assert(node_ids.size() == cpus.size());
  for (const int id : node_ids) {
    if (!nodes_.at(id).empty()) return false;
  }
  const SimTime backdated = touch(now);
  int added_cores = 0;
  for (std::size_t i = 0; i < node_ids.size(); ++i) {
    const int id = node_ids[i];
    const int held = std::clamp(cpus[i], 1, nodes_[id].total_cores());
    const bool ok = nodes_[id].add(job, held, /*is_owner=*/true);
    assert(ok);
    (void)ok;
    busy_cores_ += held;
    added_cores += held;
    sync_free_state(id);
    notify(id);
  }
  commit(backdated, added_cores, static_cast<int>(node_ids.size()));
  return true;
}

bool Machine::add_share(SimTime now, JobId job, int node_id, int cpus, bool is_owner) {
  const SimTime backdated = touch(now);
  const bool was_empty = nodes_.at(node_id).empty();
  if (!nodes_[node_id].add(job, cpus, is_owner)) return false;
  busy_cores_ += cpus;
  sync_free_state(node_id);
  notify(node_id);
  commit(backdated, cpus, was_empty ? 1 : 0);
  return true;
}

bool Machine::resize_share(SimTime now, JobId job, int node_id, int cpus) {
  auto& node = nodes_.at(node_id);
  const auto occ = node.occupant(job);
  if (!occ) return false;
  const SimTime backdated = touch(now);
  if (!node.resize(job, cpus)) return false;
  busy_cores_ += cpus - occ->cpus;
  notify(node_id);
  commit(backdated, cpus - occ->cpus, 0);
  return true;
}

int Machine::remove_share(SimTime now, JobId job, int node_id) {
  const SimTime backdated = touch(now);
  const int freed = nodes_.at(node_id).remove(job);
  busy_cores_ -= freed;
  const bool emptied = freed > 0 && nodes_[node_id].empty();
  sync_free_state(node_id);
  if (freed > 0) notify(node_id);
  commit(backdated, -freed, emptied ? -1 : 0);
  return freed;
}

void Machine::release_all(SimTime now, JobId job, const std::vector<int>& node_ids) {
  const SimTime backdated = touch(now);
  int freed_cores = 0;
  int emptied = 0;
  for (const int id : node_ids) {
    const int freed = nodes_.at(id).remove(job);
    if (freed > 0 && nodes_[id].empty()) ++emptied;
    busy_cores_ -= freed;
    freed_cores += freed;
    sync_free_state(id);
    if (freed > 0) notify(id);
  }
  commit(backdated, -freed_cores, -emptied);
}

void Machine::finalize_energy(SimTime now) { (void)touch(now); }

}  // namespace sdsched
