#include "workload/workload_stats.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/stats.h"
#include "util/time_utils.h"

namespace sdsched {

WorkloadStats characterize(const Workload& workload) {
  WorkloadStats stats;
  stats.name = workload.info().name;
  stats.n_jobs = workload.size();
  stats.system_nodes = workload.info().system_nodes;
  stats.system_cores = workload.info().system_nodes * workload.info().cores_per_node;
  if (workload.empty()) return stats;

  OnlineStats runtime_stats;
  OnlineStats req_stats;
  OnlineStats node_stats;
  OnlineStats accuracy;
  std::vector<double> runtimes;
  runtimes.reserve(workload.size());
  SimTime first = workload.jobs().front().submit;
  SimTime last = first;
  std::size_t malleable = 0;
  // Ordered map: the burst aggregates below are order-independent sums, but
  // iterating a hash map here was the one unordered iteration in src/ — an
  // std::map keeps the loop deterministic by construction (detlint D1).
  std::map<SimTime, std::size_t> submit_groups;
  for (const auto& spec : workload.jobs()) {
    runtime_stats.add(static_cast<double>(spec.base_runtime));
    runtimes.push_back(static_cast<double>(spec.base_runtime));
    req_stats.add(static_cast<double>(spec.req_time));
    node_stats.add(static_cast<double>(spec.req_nodes));
    accuracy.add(static_cast<double>(spec.base_runtime) /
                 static_cast<double>(std::max<SimTime>(spec.req_time, 1)));
    first = std::min(first, spec.submit);
    last = std::max(last, spec.submit);
    stats.max_job_nodes = std::max(stats.max_job_nodes, spec.req_nodes);
    stats.max_job_cpus = std::max(stats.max_job_cpus, spec.req_cpus);
    if (spec.malleability == MalleabilityClass::Malleable) ++malleable;
    ++submit_groups[spec.submit];
  }
  stats.distinct_submit_times = submit_groups.size();
  for (const auto& [time, count] : submit_groups) {
    if (count > 1) stats.same_time_submits += count;
    stats.max_submit_burst = std::max(stats.max_submit_burst, count);
  }
  stats.submit_span = last - first;
  stats.mean_runtime = runtime_stats.mean();
  stats.median_runtime = median_of(std::move(runtimes));
  stats.mean_req_time = req_stats.mean();
  stats.mean_nodes = node_stats.mean();
  stats.offered_load = workload.offered_load(stats.system_cores);
  stats.request_accuracy = accuracy.mean();
  stats.pct_malleable =
      static_cast<double>(malleable) / static_cast<double>(workload.size());
  return stats;
}

std::string to_string(const WorkloadStats& stats) {
  std::ostringstream oss;
  oss << "workload " << stats.name << ": " << stats.n_jobs << " jobs on "
      << stats.system_nodes << " nodes (" << stats.system_cores << " cores)\n"
      << "  max job: " << stats.max_job_nodes << " nodes / " << stats.max_job_cpus
      << " cpus\n"
      << "  submit span: " << format_duration(stats.submit_span) << "\n"
      << "  runtime mean/median: " << format_duration(static_cast<SimTime>(stats.mean_runtime))
      << " / " << format_duration(static_cast<SimTime>(stats.median_runtime)) << "\n"
      << "  offered load: " << stats.offered_load
      << ", request accuracy: " << stats.request_accuracy
      << ", malleable: " << stats.pct_malleable * 100.0 << "%\n"
      << "  submit bursts: " << stats.same_time_submits << " jobs in same-second groups"
      << " (max burst " << stats.max_submit_burst << ", " << stats.distinct_submit_times
      << " distinct times)\n";
  return oss.str();
}

}  // namespace sdsched
