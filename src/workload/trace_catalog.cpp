#include "workload/trace_catalog.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/logging.h"
#include "util/rng.h"
#include "workload/swf.h"
#include "workload/synthetic_logs.h"

namespace sdsched {

namespace {

constexpr std::uint64_t kBurstSalt = 0x7472616365ULL;  // "trace"

/// Collapse runs of consecutive arrivals into same-second submit groups.
/// `burst_fraction` is the probability that an arrival opens a burst; the
/// group length is geometric-ish (p = 0.45 to continue), capped at
/// info.max_burst. Drawn groups never chain into one oversized group: a
/// leader that already shares its second with its predecessor is skipped,
/// and arrivals that naturally share the leader's second are absorbed into
/// the group (the next job's submit is strictly later, so the group ends
/// there). Leaves (submit, id) order sorted, so normalize() only renumbers.
void burstify(Workload& workload, const TraceInfo& info, std::uint64_t seed) {
  if (info.burst_fraction <= 0.0 || info.max_burst < 2 || workload.size() < 2) return;
  Rng rng(seed ^ kBurstSalt);
  auto& jobs = workload.mutable_jobs();
  std::size_t i = 0;
  while (i + 1 < jobs.size()) {
    if (i > 0 && jobs[i].submit == jobs[i - 1].submit) {
      ++i;
      continue;
    }
    if (!rng.chance(info.burst_fraction)) {
      ++i;
      continue;
    }
    std::size_t length = 2;
    while (length < static_cast<std::size_t>(info.max_burst) && rng.chance(0.45)) ++length;
    std::size_t end = std::min(jobs.size(), i + length);
    while (end < jobs.size() && jobs[end].submit == jobs[i].submit) ++end;
    for (std::size_t j = i + 1; j < end; ++j) jobs[j].submit = jobs[i].submit;
    i = end;
  }
  workload.normalize();
}

/// Dispatch to the synthetic_logs generator behind `info`. With
/// `jobs_override` > 0 the job count is pinned (fixtures: few jobs, full
/// machine); otherwise `scale` shrinks nodes and jobs together. A positive
/// `load_override` replaces the log-wide average offered load.
Workload synthesize_base(const TraceInfo& info, double scale, std::uint64_t seed,
                         int jobs_override, double load_override = 0.0) {
  if (info.name == "ricc") {
    RiccConfig config;
    config.scale = scale;
    config.seed = seed;
    config.pct_malleable = info.pct_malleable;
    if (jobs_override > 0) config.base_jobs = jobs_override;
    if (load_override > 0.0) config.target_load = load_override;
    return generate_ricc_like(config);
  }
  if (info.name == "curie") {
    CurieConfig config;
    config.scale = scale;
    config.seed = seed;
    config.pct_malleable = info.pct_malleable;
    if (jobs_override > 0) config.base_jobs = jobs_override;
    if (load_override > 0.0) config.target_load = load_override;
    return generate_curie_like(config);
  }
  throw std::invalid_argument("trace_catalog: no generator registered for '" + info.name +
                              "'");
}

void assign_malleability(Workload& workload, const TraceInfo& info, std::uint64_t seed) {
  if (info.pct_malleable >= 1.0) return;  // reader default is Malleable
  Rng rng(seed + 100);
  auto& jobs = workload.mutable_jobs();
  for (auto& spec : jobs) {
    spec.malleability = rng.chance(info.pct_malleable) ? MalleabilityClass::Malleable
                                                       : MalleabilityClass::Rigid;
  }
}

}  // namespace

const std::vector<TraceInfo>& trace_catalog() {
  // Magic-static init is thread-safe and the catalog is immutable afterwards.
  // Shapes follow the cleaned Parallel Workloads Archive logs the paper
  // replays (Table 1); provenance and licensing in docs/workloads.md.
  static const std::vector<TraceInfo> catalog = {
      TraceInfo{
          /*name=*/"curie",
          /*label=*/"Curie",
          /*system=*/"CEA Curie thin-node partition (Bull B510)",
          /*archive_file=*/"CEA-Curie-2011-2.1-cln.swf",
          /*full_log_jobs=*/198509,
          /*nodes=*/5040,
          /*cores_per_node=*/16,
          /*sockets=*/2,
          /*burst_fraction=*/0.22,
          /*max_burst=*/24,
          /*avg_offered_load=*/0.82,
          /*pct_malleable=*/1.0,
          /*default_seed=*/4,
      },
      TraceInfo{
          /*name=*/"ricc",
          /*label=*/"RICC",
          /*system=*/"RIKEN Integrated Cluster of Clusters (massively parallel part)",
          /*archive_file=*/"RICC-2010-2.swf",
          /*full_log_jobs=*/447794,
          /*nodes=*/1024,
          /*cores_per_node=*/8,
          /*sockets=*/2,
          /*burst_fraction=*/0.15,
          /*max_burst=*/12,
          /*avg_offered_load=*/1.35,
          /*pct_malleable=*/1.0,
          /*default_seed=*/3,
      },
  };
  return catalog;
}

const TraceInfo* find_trace(const std::string& name) {
  for (const auto& info : trace_catalog()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Workload synthesize_like(const TraceInfo& info, double scale, std::uint64_t seed) {
  if (seed == 0) seed = info.default_seed;
  Workload workload = synthesize_base(info, scale, seed, /*jobs_override=*/0);
  burstify(workload, info, seed);
  workload.info().name = info.name;
  workload.prepare_for(workload.info().system_nodes, workload.info().cores_per_node);
  return workload;
}

Workload synthesize_soak(const TraceInfo& info, std::size_t n_jobs, std::uint64_t seed,
                         double offered_load) {
  if (seed == 0) seed = info.default_seed;
  const double load = offered_load > 0.0 ? offered_load : info.avg_offered_load;
  Workload workload = synthesize_base(info, /*scale=*/1.0, seed, static_cast<int>(n_jobs),
                                      /*load_override=*/load);
  burstify(workload, info, seed);
  workload.info().name = info.name;
  workload.prepare_for(info.nodes, info.cores_per_node);
  return workload;
}

std::string default_fixture_path(const TraceInfo& info, const std::string& dir) {
  std::string resolved = dir;
  if (resolved.empty()) {
    // Read once while resolving fixture paths; no setenv anywhere in the tree.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("SDSCHED_TRACE_DIR"); env != nullptr && *env != '\0') {
      resolved = env;
    } else {
#ifdef SDSCHED_TRACE_DIR
      resolved = SDSCHED_TRACE_DIR;
#else
      resolved = "data/traces";
#endif
    }
  }
  return resolved + "/" + info.name + "_sample.swf";
}

LoadedTrace load_trace(const std::string& name, const TraceLoadOptions& options) {
  const TraceInfo* info = find_trace(name);
  if (info == nullptr) {
    throw std::invalid_argument("load_trace: unknown trace '" + name +
                                "' (see trace_catalog())");
  }
  LoadedTrace loaded;
  loaded.info = *info;
  const std::uint64_t seed = options.seed != 0 ? options.seed : info->default_seed;
  // Guard the size arithmetic below (and the generators) against degenerate
  // user-supplied scales; trace_workload applies the same clamp.
  const double scale = std::clamp(options.scale, 0.001, 1.0);

  if (options.allow_fixture) {
    const std::string path = default_fixture_path(*info, options.fixture_dir);
    if (std::ifstream probe(path); probe.good()) {
      SwfReadOptions read_options;
      // A bounded load stops the chunked scan at max_jobs rows: an archive-
      // scale log pointed at via SDSCHED_TRACE_DIR is never read (let alone
      // materialized) past the cap. SWF logs are submit-ordered, so the
      // first max_jobs rows are the earliest — the same jobs the
      // read-everything-then-truncate path kept. With --scale < 1 the keep
      // count depends on the full row count, so only that path still reads
      // the whole file.
      if (scale >= 1.0) read_options.max_jobs = options.max_jobs;
      Workload workload = read_swf_file(path, read_options);
      // The fixture is a fixed-size sample: --scale on a fixture keeps the
      // earliest fraction of the trace rather than re-synthesizing.
      std::size_t keep = workload.size();
      if (scale < 1.0) {
        keep = std::max<std::size_t>(
            50, static_cast<std::size_t>(static_cast<double>(keep) * scale));
      }
      if (options.max_jobs != 0) keep = std::min(keep, options.max_jobs);
      if (keep < workload.size()) {
        workload.mutable_jobs().resize(keep);
        workload.normalize();
      }
      assign_malleability(workload, *info, seed);
      workload.info().name = info->name;
      workload.prepare_for(info->nodes, info->cores_per_node);
      loaded.workload = std::move(workload);
      loaded.from_fixture = true;
      loaded.source = path;
    }
  }
  if (!loaded.from_fixture) {
    if (!options.allow_synthesis) {
      throw std::runtime_error("load_trace: no fixture for '" + name + "' under " +
                               default_fixture_path(*info, options.fixture_dir) +
                               " and synthesis is disabled");
    }
    Workload workload = synthesize_like(*info, scale, seed);
    if (options.max_jobs != 0 && workload.size() > options.max_jobs) {
      workload.mutable_jobs().resize(options.max_jobs);
      workload.normalize();
      workload.prepare_for(workload.info().system_nodes, workload.info().cores_per_node);
    }
    loaded.workload = std::move(workload);
    loaded.source = "synthesize_like";
  }

  loaded.validation = validate_trace(loaded.workload, loaded.info);
  for (const auto& issue : loaded.validation.issues) {
    log_warn("trace", name, ": ", issue);
  }
  log_info("trace", "loaded ", name, " from ", loaded.source, ": ", loaded.workload.size(),
           " jobs on ", loaded.workload.info().system_nodes, " nodes");
  return loaded;
}

TraceValidation validate_trace(const Workload& workload, const TraceInfo& info) {
  TraceValidation validation;
  validation.stats = characterize(workload);
  const WorkloadStats& stats = validation.stats;
  const auto issue = [&validation](std::string text) {
    validation.ok = false;
    validation.issues.push_back(std::move(text));
  };

  if (workload.empty()) {
    issue("empty workload");
    return validation;
  }
  if (stats.system_nodes <= 0 || stats.system_nodes > info.nodes) {
    issue("system_nodes " + std::to_string(stats.system_nodes) + " outside (0, " +
          std::to_string(info.nodes) + "]");
  }
  if (stats.max_job_nodes > stats.system_nodes) {
    issue("max job spans " + std::to_string(stats.max_job_nodes) + " nodes on a " +
          std::to_string(stats.system_nodes) + "-node machine");
  }
  if (stats.mean_runtime <= 0.0) issue("nonpositive mean runtime");
  if (stats.request_accuracy <= 0.0 || stats.request_accuracy > 1.0) {
    issue("request accuracy " + std::to_string(stats.request_accuracy) +
          " outside (0, 1] — estimate sanitization failed");
  }
  if (stats.offered_load <= 0.0 || stats.offered_load > 5.0) {
    issue("implausible offered load " + std::to_string(stats.offered_load));
  }
  if (info.burst_fraction > 0.0 && stats.same_time_submits == 0) {
    issue("trace documents same-second submit bursts but none are present");
  }
  return validation;
}

void write_trace_fixture(const TraceInfo& info, const std::string& path,
                         std::size_t n_jobs) {
  // Downsamples keep a *busy window* of the log, not its multi-month
  // average: with a few hundred jobs at the full machine size, the log-wide
  // average load (0.82 for Curie) would never build a queue and every
  // scheduler would degenerate to immediate starts. Floor the sampling
  // window's offered load so fixtures exercise queueing and malleability.
  constexpr double kMinFixtureLoad = 1.10;
  Workload workload =
      synthesize_base(info, /*scale=*/1.0, info.default_seed, static_cast<int>(n_jobs),
                      std::max(kMinFixtureLoad, info.avg_offered_load));
  burstify(workload, info, info.default_seed);

  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write fixture: " + path);
  out << "; " << info.label << " downsampled fixture: deterministic synthesized stand-in\n"
      << "; for the " << info.archive_file << " log (" << info.full_log_jobs
      << " jobs) at the full machine size. The real log is NOT redistributed\n"
      << "; here — provenance, licensing and the sampling recipe are in\n"
      << "; docs/workloads.md. Regenerate with: trace_replay --write-fixtures=<dir>\n"
      << "; MaxNodes: " << info.nodes << "\n"
      << "; MaxProcs: " << static_cast<long long>(info.nodes) * info.cores_per_node << "\n";
  long long row = 0;
  for (const auto& spec : workload.jobs()) {
    ++row;
    // A deterministic sprinkle of non-completed statuses: every 17th row is
    // failed (kept by the default reader options; every 51st additionally
    // has the archives' "-1 runtime" quirk, exercising the sanitizer) and
    // every 23rd non-failed row is cancelled (dropped by default).
    int status = 1;
    long long runtime = static_cast<long long>(spec.base_runtime);
    if (row % 17 == 0) {
      status = 0;
      if (row % 51 == 0) runtime = -1;
    } else if (row % 23 == 0) {
      status = 5;
    }
    out << row << ' ' << spec.submit << ' ' << -1 << ' ' << runtime << ' ' << spec.req_cpus
        << ' ' << -1 << ' ' << -1 << ' ' << spec.req_cpus << ' ' << spec.req_time << ' '
        << -1 << ' ' << status << ' ' << spec.user_id << ' ' << -1 << ' ' << -1 << ' '
        << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << '\n';
  }
  log_info("trace", "wrote fixture ", path, " (", workload.size(), " jobs)");
}

}  // namespace sdsched
