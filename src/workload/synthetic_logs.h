// Synthetic stand-ins for the two public SWF traces the paper replays
// (DESIGN.md §3.1): RICC-2010 (workload 3) and the cleaned CEA-Curie-2011
// primary partition (workload 4).
//
// The generators match the characteristics the paper leans on — system
// shape, job count, max job size, the dominance of small/short jobs, runtime
// tails out to days, and heavily overestimated user requests — so queueing
// pressure and the SD-Policy's opportunities are preserved. Feed the real
// logs through read_swf_file() to replay the originals.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace sdsched {

struct RiccConfig {
  /// Paper scale: 10000 jobs, 1024 nodes x 8 cores, max job 72 nodes.
  double scale = 1.0;  ///< scales nodes and job count together
  std::uint64_t seed = 3;
  double pct_malleable = 1.0;
  int base_jobs = 10000;
  int base_nodes = 1024;
  int cores_per_node = 8;
  int max_job_nodes = 72;
  double target_load = 1.35;
};

struct CurieConfig {
  /// Paper scale: 198509 jobs, 5040 nodes x 16 cores, max job 4988 nodes,
  /// ~8-month span.
  double scale = 1.0;
  std::uint64_t seed = 4;
  double pct_malleable = 1.0;
  int base_jobs = 198509;
  int base_nodes = 5040;
  int cores_per_node = 16;
  int max_job_nodes = 4988;
  double target_load = 0.82;  ///< Curie ran below saturation on average
};

[[nodiscard]] Workload generate_ricc_like(const RiccConfig& config);
[[nodiscard]] Workload generate_curie_like(const CurieConfig& config);

}  // namespace sdsched
