#include "workload/workload.h"

#include <algorithm>

namespace sdsched {

const std::vector<JobSpec>& Workload::jobs() const noexcept {
  static const std::vector<JobSpec> kEmpty;
  return jobs_ ? *jobs_ : kEmpty;
}

std::vector<JobSpec>& Workload::detach() {
  prepared_ = false;
  if (!jobs_ || jobs_.use_count() > 1) {
    jobs_ = jobs_ ? std::make_shared<std::vector<JobSpec>>(*jobs_)
                  : std::make_shared<std::vector<JobSpec>>();
  }
  // Exclusively owned here, and every pointee is created via
  // make_shared<std::vector<...>> (non-const object), so shedding the const
  // view is defined behaviour.
  return const_cast<std::vector<JobSpec>&>(*jobs_);
}

void Workload::normalize() {
  auto& jobs = detach();
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.submit != b.submit ? a.submit < b.submit : a.id < b.id;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
}

std::size_t Workload::prepare_for(int system_nodes, int cores_per_node) {
  if (prepared_for(system_nodes, cores_per_node)) return 0;
  info_.system_nodes = system_nodes;
  info_.cores_per_node = cores_per_node;
  const int max_cpus = system_nodes * cores_per_node;
  std::vector<JobSpec> kept;
  kept.reserve(size());
  std::size_t dropped = 0;
  for (JobSpec spec : jobs()) {
    if (spec.base_runtime <= 0 || spec.req_cpus <= 0) {
      ++dropped;
      continue;
    }
    spec.req_cpus = std::min(spec.req_cpus, max_cpus);
    spec.req_nodes = nodes_for(spec.req_cpus, cores_per_node);
    if (spec.req_time <= 0) spec.req_time = spec.base_runtime;
    spec.req_time = std::max(spec.req_time, spec.base_runtime);
    spec.ranks_per_node = std::max(1, std::min(spec.ranks_per_node, cores_per_node));
    kept.push_back(spec);
  }
  detach() = std::move(kept);
  normalize();
  prepared_ = true;
  return dropped;
}

double Workload::total_work_core_seconds() const noexcept {
  double total = 0.0;
  for (const auto& spec : jobs()) {
    total += static_cast<double>(spec.base_runtime) * static_cast<double>(spec.req_cpus);
  }
  return total;
}

double Workload::offered_load(int total_cores) const noexcept {
  const auto& jobs = this->jobs();
  if (jobs.empty() || total_cores <= 0) return 0.0;
  const auto [min_it, max_it] =
      std::minmax_element(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
        return a.submit < b.submit;
      });
  const auto span = static_cast<double>(max_it->submit - min_it->submit);
  if (span <= 0.0) return 0.0;
  return total_work_core_seconds() / (static_cast<double>(total_cores) * span);
}

}  // namespace sdsched
