// Chunked streaming SWF ingestion: the flat-memory reading path.
//
// The historical reader (`read_swf_reference` in swf.h) pulled one
// std::getline'd std::string per row and tokenized it through an
// istringstream — two allocations plus a locale-aware numeric parse per
// row, and the whole `Workload` materialized before anything downstream
// ran. At archive scale (the 447794-job RICC log) both costs dominate:
// parse time and an O(jobs) resident even when the caller only wanted
// windowed statistics or the first `max_jobs` rows.
//
// This file is the replacement core, layered bottom-up:
//
//  * `SwfChunkReader` — a fixed-size buffer (`chunk_bytes`, default 256
//    KiB) refilled from the istream; `next_line()` hands out views into
//    the buffer with zero copies for any line that fits inside one chunk,
//    and carries the partial trailing line across the refill boundary in a
//    small reused carry buffer (the only per-line copy, and only for the
//    one row a chunk boundary happens to split). Memory is O(chunk), not
//    O(file).
//  * `SwfJobStream` — the pull iterator: applies the full `SwfReadOptions`
//    contract (header recognition, status filtering, sanitization with
//    one warning per stream, `max_jobs`) and yields one `JobSpec` at a
//    time. Reaching `max_jobs` stops the scan where it stands: at most
//    the already-buffered chunk has been consumed from the stream, never
//    the remainder of the file.
//
// `read_swf` (swf.h) is a thin loop over `SwfJobStream` and produces
// byte-identical Workloads to the reference reader (pinned by
// tests/workload/test_swf_stream.cpp across chunk sizes including 1 byte);
// `trace_replay --soak` and `bench/swf_ingest` consume the iterator
// directly so archive-scale scans stay flat in memory. The memory contract
// and the chunk/carry design are documented in docs/workloads.md
// ("Streaming ingestion").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "workload/swf.h"
#include "workload/workload.h"

namespace sdsched {

/// Running counters of one streaming scan. `bytes_consumed` counts bytes
/// taken from the istream (chunk granularity — an early stop leaves the
/// rest of the file unread); the submit/burst fields summarize the rows
/// *delivered* (SWF logs are submit-ordered, so same-second groups are
/// adjacent and the burst scan needs O(1) state, not the row vector).
struct SwfStreamStats {
  std::uint64_t bytes_consumed = 0;
  std::uint64_t lines = 0;           ///< all lines seen (comments included)
  std::uint64_t rows = 0;            ///< data rows delivered to the caller
  std::uint64_t rows_filtered = 0;   ///< rows dropped by status filters
  std::uint64_t sanitized = 0;       ///< rows with at least one clamped field
  std::uint64_t sanitize_warnings = 0;  ///< warn-once: 0 or 1 after a drain
  long long first_submit = 0;        ///< of delivered rows (0 when rows == 0)
  long long last_submit = 0;
  std::uint64_t same_second_submits = 0;  ///< rows sharing the previous row's second
  std::uint64_t max_submit_burst = 1;     ///< largest adjacent same-second group
};

/// Chunked line scanner. Not SWF-specific beyond living here: reads
/// `chunk_bytes` at a time, yields `\n`-terminated (or final unterminated)
/// lines as views, carries split lines across refills. A trailing `\r`
/// (CRLF input) is left in the view — the field scanner treats it as
/// whitespace exactly like operator>> did.
class SwfChunkReader {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  explicit SwfChunkReader(std::istream& in, std::size_t chunk_bytes = kDefaultChunkBytes);

  /// The next line, without its terminator; false at end of stream. The
  /// view is valid until the next call (it points into the chunk buffer
  /// or, for a split line, into the carry buffer).
  bool next_line(std::string_view& line);

  [[nodiscard]] std::uint64_t bytes_consumed() const noexcept { return bytes_consumed_; }

 private:
  /// Refill the chunk buffer from the stream; false at EOF.
  bool refill();

  std::istream& in_;
  std::vector<char> buffer_;
  std::size_t pos_ = 0;  ///< next unconsumed byte in buffer_
  std::size_t len_ = 0;  ///< valid bytes in buffer_
  std::string carry_;    ///< partial line carried across refills (reused)
  std::uint64_t bytes_consumed_ = 0;
  bool eof_ = false;
};

/// Pull iterator over an SWF stream: one sanitized, filtered `JobSpec` per
/// `next()`. Header lines are folded into `info()` as they are seen (SWF
/// headers precede data rows, so info() is complete by the first row).
/// The sanitize warning (same warn-once contract as the whole-file reader)
/// fires when the stream is exhausted or stopped; `stats()` carries the
/// counts either way.
class SwfJobStream {
 public:
  SwfJobStream(std::istream& in, const SwfReadOptions& options,
               std::size_t chunk_bytes = SwfChunkReader::kDefaultChunkBytes);
  ~SwfJobStream();

  SwfJobStream(const SwfJobStream&) = delete;
  SwfJobStream& operator=(const SwfJobStream&) = delete;

  /// Parse rows until one survives the filters; false when the stream is
  /// exhausted or `max_jobs` rows have been delivered (the remainder of
  /// the file is then left unread). Throws std::runtime_error on a
  /// malformed row, like the whole-file reader.
  bool next(JobSpec& spec);

  /// MaxNodes/MaxProcs headers seen so far (complete after the first row).
  [[nodiscard]] const WorkloadInfo& info() const noexcept { return info_; }

  [[nodiscard]] const SwfStreamStats& stats() const noexcept { return stats_; }

  /// Sanitize warnings actually written to the log by this process: 0 or 1.
  /// The per-stream warn-once contract (stats().sanitize_warnings) is
  /// unchanged, but the *emission* is deduped process-wide — a soak run
  /// opens one stream per read and would otherwise repeat the identical
  /// message per trace per tier.
  [[nodiscard]] static std::uint64_t sanitize_warnings_emitted() noexcept;

  /// Test hook: re-arm the process-wide emission guard.
  static void reset_sanitize_warning_guard() noexcept;

 private:
  /// Emit the warn-once sanitize message if clamps happened and it has not
  /// fired yet.
  void flush_warning();

  SwfChunkReader reader_;
  SwfReadOptions options_;
  WorkloadInfo info_;
  SwfStreamStats stats_;
  std::uint64_t current_burst_ = 0;  ///< length of the open same-second group
  bool done_ = false;
};

}  // namespace sdsched
