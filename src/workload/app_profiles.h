// Application behaviour profiles for the real-run reproduction (Table 2).
//
// Each profile captures how an application responds to core-count changes
// and to memory-bandwidth contention when sharing a node:
//  * scalability_alpha — progress ~ (cpus/req)^alpha; alpha=1 is perfectly
//    CPU-scalable (PILS), small alpha means cores barely matter (STREAM).
//  * mem_bw_per_core   — fraction of a socket's bandwidth one core of this
//    app consumes at full tilt; drives the contention model in
//    model/node_perf.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace sdsched {

struct ApplicationProfile {
  std::string name;
  double workload_share = 0.0;   ///< fraction of jobs running this app (Table 2)
  double cpu_utilization = 1.0;  ///< 0..1, paper's "CPU utilization" column
  double mem_utilization = 0.5;  ///< 0..1, paper's "Memory utilization" column
  double scalability_alpha = 1.0;
  double mem_bw_per_core = 0.02;  ///< socket-bandwidth fraction per active core
};

/// The Table 2 application mix: PILS, STREAM, CoreNeuron, NEST, Alya.
[[nodiscard]] const std::vector<ApplicationProfile>& table2_profiles();

/// Index of a profile by name (-1 if absent).
[[nodiscard]] int profile_index(std::string_view name);

/// Assign app_profile to every job, weighted by workload_share
/// (deterministic in seed). Mirrors the paper's conversion of the Cirne log
/// into real application submissions.
void assign_applications(Workload& workload, std::uint64_t seed);

}  // namespace sdsched
