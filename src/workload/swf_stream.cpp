#include "workload/swf_stream.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <istream>
#include <stdexcept>

#include "util/logging.h"

namespace sdsched {

namespace {

/// Process-wide sanitize-warning emissions (0 or 1): the message text is
/// identical for every stream, so the first clamping stream speaks for the
/// run. Atomic because sweep workers may drain streams concurrently.
std::atomic<std::uint64_t> g_sanitize_warnings_emitted{0};

constexpr int kStatusFailed = 0;
constexpr int kStatusCancelled = 5;

/// The whitespace set operator>> skipped in the classic locale; a trailing
/// '\r' from CRLF input falls in here, so views keep it harmlessly.
constexpr bool is_field_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' || c == '\n';
}

/// In-buffer scan of up to 18 whitespace-separated integer fields —
/// the zero-allocation equivalent of the reference reader's per-row
/// `istringstream >> long long` loop, with identical stop semantics: a
/// field that does not start with an optionally-signed digit ends the scan
/// (so "12x" parses 12 and stops at the 'x' exactly like extraction did).
/// Unparsed trailing fields stay 0.
int scan_fields(std::string_view line, std::array<long long, 18>& fields) {
  const char* p = line.data();
  const char* const end = p + line.size();
  int parsed = 0;
  for (; parsed < 18; ++parsed) {
    while (p < end && is_field_space(*p)) ++p;
    if (p == end) break;
    bool negative = false;
    const char* const field_start = p;
    if (*p == '+' || *p == '-') {
      negative = (*p == '-');
      ++p;
    }
    if (p == end || *p < '0' || *p > '9') {
      p = field_start;  // extraction failure: nothing consumed
      break;
    }
    // Unsigned accumulation: an absurdly long digit run wraps instead of
    // tripping signed-overflow UB (SWF fields are epoch seconds and core
    // counts — far inside 64 bits for any real log).
    unsigned long long value = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<unsigned long long>(*p - '0');
      ++p;
    }
    fields[static_cast<std::size_t>(parsed)] =
        negative ? -static_cast<long long>(value) : static_cast<long long>(value);
  }
  return parsed;
}

/// Parse one numeric header like "; MaxNodes: 1024" — the string_view
/// equivalent of the reference reader's find + stoll (whitespace and sign
/// allowed after the colon; anything after the digits is ignored).
bool parse_header(std::string_view line, std::string_view key, long long& out) {
  const auto pos = line.find(key);
  if (pos == std::string_view::npos) return false;
  const auto colon = line.find(':', pos);
  if (colon == std::string_view::npos) return false;
  const char* p = line.data() + colon + 1;
  const char* const end = line.data() + line.size();
  while (p < end && is_field_space(*p)) ++p;
  bool negative = false;
  if (p < end && (*p == '+' || *p == '-')) {
    negative = (*p == '-');
    ++p;
  }
  if (p == end || *p < '0' || *p > '9') return false;
  unsigned long long value = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    value = value * 10 + static_cast<unsigned long long>(*p - '0');
    ++p;
  }
  out = negative ? -static_cast<long long>(value) : static_cast<long long>(value);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SwfChunkReader
// ---------------------------------------------------------------------------

SwfChunkReader::SwfChunkReader(std::istream& in, std::size_t chunk_bytes)
    : in_(in), buffer_(std::max<std::size_t>(1, chunk_bytes)) {}

bool SwfChunkReader::refill() {
  if (eof_) return false;
  in_.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  len_ = static_cast<std::size_t>(in_.gcount());
  pos_ = 0;
  bytes_consumed_ += len_;
  if (len_ == 0) {
    eof_ = true;
    return false;
  }
  return true;
}

bool SwfChunkReader::next_line(std::string_view& line) {
  // The carry buffer only outlives a call as the returned view; its
  // contents are dead once the caller asks for the next line.
  carry_.clear();
  for (;;) {
    if (pos_ >= len_ && !refill()) {
      if (carry_.empty()) return false;
      line = carry_;  // final line without a terminator
      return true;
    }
    const char* const base = buffer_.data() + pos_;
    const std::size_t avail = len_ - pos_;
    if (const void* nl = std::memchr(base, '\n', avail); nl != nullptr) {
      const auto line_len = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
      if (carry_.empty()) {
        line = std::string_view(base, line_len);  // zero-copy: view into the chunk
      } else {
        carry_.append(base, line_len);
        line = carry_;
      }
      pos_ += line_len + 1;
      return true;
    }
    // The line continues past this chunk: carry the fragment and refill.
    carry_.append(base, avail);
    pos_ = len_;
  }
}

// ---------------------------------------------------------------------------
// SwfJobStream
// ---------------------------------------------------------------------------

SwfJobStream::SwfJobStream(std::istream& in, const SwfReadOptions& options,
                           std::size_t chunk_bytes)
    : reader_(in, chunk_bytes), options_(options) {
  info_.name = "swf";
}

SwfJobStream::~SwfJobStream() {
  // A caller that stops early (max_jobs, an abandoned scan) still gets the
  // warn-once sanitize message for the rows it did consume.
  flush_warning();
}

std::uint64_t SwfJobStream::sanitize_warnings_emitted() noexcept {
  return g_sanitize_warnings_emitted.load(std::memory_order_relaxed);
}

void SwfJobStream::reset_sanitize_warning_guard() noexcept {
  g_sanitize_warnings_emitted.store(0, std::memory_order_relaxed);
}

void SwfJobStream::flush_warning() {
  if (stats_.sanitized == 0 || stats_.sanitize_warnings != 0) return;
  ++stats_.sanitize_warnings;
  std::uint64_t expected = 0;
  if (!g_sanitize_warnings_emitted.compare_exchange_strong(expected, 1,
                                                           std::memory_order_relaxed)) {
    return;  // another stream in this process already warned (soak dedupe)
  }
  log_warn("swf", "clamped ", stats_.sanitized,
           " job records with nonpositive run time/submit or request below run "
           "time (see docs/workloads.md); pass SwfReadOptions::sanitize=false to "
           "keep raw values");
}

bool SwfJobStream::next(JobSpec& spec) {
  // Mirror the reader's consumption counter on every call, so stats() is
  // accurate whether the caller drains the stream or abandons it mid-scan.
  stats_.bytes_consumed = reader_.bytes_consumed();
  if (done_) return false;
  if (options_.max_jobs != 0 && stats_.rows >= options_.max_jobs) {
    // Early stop: nothing past the current chunk has been read, so the
    // remainder of an archive log is never touched.
    done_ = true;
    flush_warning();
    return false;
  }
  std::string_view line;
  while (reader_.next_line(line)) {
    ++stats_.lines;
    if (line.empty()) continue;
    if (line.front() == ';') {
      long long header_value = 0;
      if (parse_header(line, "MaxNodes", header_value)) {
        info_.system_nodes = static_cast<int>(header_value);
      } else if (parse_header(line, "MaxProcs", header_value) && info_.system_nodes > 0) {
        info_.cores_per_node = static_cast<int>(header_value / info_.system_nodes);
      }
      continue;
    }
    std::array<long long, 18> fields{};
    const int parsed = scan_fields(line, fields);
    if (parsed < 11) {
      throw std::runtime_error("SWF line " + std::to_string(stats_.lines) +
                               ": expected >=11 fields, got " + std::to_string(parsed));
    }

    const long long status = fields[10];
    if (options_.skip_failed && status == kStatusFailed) {
      ++stats_.rows_filtered;
      continue;
    }
    if (options_.skip_cancelled && status == kStatusCancelled) {
      ++stats_.rows_filtered;
      continue;
    }

    spec = JobSpec{};
    spec.submit = static_cast<SimTime>(fields[1]);
    spec.base_runtime = static_cast<SimTime>(fields[3]);
    const long long procs_alloc = fields[4];
    const long long procs_req = fields[7];
    spec.req_cpus = static_cast<int>(procs_req > 0 ? procs_req : procs_alloc);
    spec.req_time = static_cast<SimTime>(fields[8] > 0 ? fields[8] : fields[3]);
    spec.user_id = static_cast<int>(fields[11]);
    spec.malleability = options_.default_malleability;
    if (options_.sanitize) {
      // Same clamp set as the reference reader: the archives' non-completed
      // rows use -1/0 placeholders that would make degenerate JobSpecs.
      bool clamped = false;
      if (spec.base_runtime <= 0) {
        spec.base_runtime = 1;
        clamped = true;
      }
      if (spec.submit < 0) {
        spec.submit = 0;
        clamped = true;
      }
      if (spec.req_time < spec.base_runtime) {
        spec.req_time = spec.base_runtime;
        clamped = true;
      }
      if (clamped) ++stats_.sanitized;
    }

    // O(1)-state burst summary: archives are submit-ordered, so same-second
    // groups are adjacent rows.
    const auto submit = static_cast<long long>(spec.submit);
    if (stats_.rows == 0) {
      stats_.first_submit = submit;
      current_burst_ = 1;
    } else if (submit == stats_.last_submit) {
      ++stats_.same_second_submits;
      ++current_burst_;
    } else {
      current_burst_ = 1;
    }
    stats_.max_submit_burst = std::max(stats_.max_submit_burst, current_burst_);
    stats_.last_submit = submit;
    ++stats_.rows;
    stats_.bytes_consumed = reader_.bytes_consumed();
    return true;
  }
  done_ = true;
  stats_.bytes_consumed = reader_.bytes_consumed();
  flush_warning();
  return false;
}

}  // namespace sdsched
