// Cirne-Berman statistical workload model (WWC 2001), the generator behind
// the paper's workloads 1, 2 and 5.
//
// The model draws, per job: a power-of-two-biased size, a lognormal runtime
// mildly correlated with size, an overestimated user request (unless the
// "ideal" variant is selected — workload 2), and arrivals from a
// nonhomogeneous Poisson process modulated by the ANL daily cycle. The
// submit-time span is derived from a target offered load, which is how the
// paper "scaled the model to the considered system size".
#pragma once

#include <array>
#include <cstdint>

#include "util/rng.h"
#include "workload/workload.h"

namespace sdsched {

/// Hour-of-day arrival intensity (mean-normalized weights).
struct ArrivalPattern {
  std::array<double, 24> hourly_weights;

  /// ANL-style diurnal cycle: low overnight, ramp from 8h, peak 10h-17h.
  [[nodiscard]] static ArrivalPattern anl() noexcept;
  [[nodiscard]] static ArrivalPattern uniform() noexcept;
};

struct CirneConfig {
  int n_jobs = 5000;
  int system_nodes = 1024;
  int cores_per_node = 48;
  int max_job_nodes = 128;
  double target_load = 1.10;      ///< offered load; >1 builds deep queues
  std::uint64_t seed = 1;
  bool ideal_estimates = false;   ///< workload 2: req_time == base_runtime
  double pct_malleable = 1.0;     ///< fraction of jobs that are malleable
  ArrivalPattern arrivals = ArrivalPattern::anl();

  // Size distribution: log2(nodes) ~ N(mean, sigma) truncated to
  // [0, log2(max_job_nodes)]; with probability p_power2 rounded to a power
  // of two, and p_serial forces single-node jobs.
  double p_serial = 0.20;
  double p_power2 = 0.75;
  double log2_nodes_mean = 2.6;
  double log2_nodes_sigma = 1.8;

  // Runtime: lognormal (of seconds); mild positive correlation with size.
  double log_runtime_mu = 6.8;     ///< median ~ 15 min
  double log_runtime_sigma = 2.0;
  double size_runtime_coupling = 0.15;  ///< added to mu per log2(nodes)
  SimTime max_runtime = 2 * kDay;

  // User estimates: req = runtime * (1 + lognormal overshoot), rounded up to
  // scheduler-friendly buckets, capped.
  double overshoot_mu = 0.9;
  double overshoot_sigma = 1.0;
  SimTime max_req_time = 3 * kDay;
};

/// Generate a workload from the model. Deterministic in (config, seed).
[[nodiscard]] Workload generate_cirne(const CirneConfig& config);

/// Shared machinery: place `n_jobs` arrivals over ~`span` seconds following
/// `pattern` (nonhomogeneous Poisson, hour-granular thinning).
[[nodiscard]] std::vector<SimTime> generate_arrivals(int n_jobs, SimTime span,
                                                     const ArrivalPattern& pattern, Rng& rng);

}  // namespace sdsched
