// Catalog of named real-system traces (CEA Curie, RICC) and the machinery
// to get them into shared immutable Workload storage.
//
// Each registered trace resolves through two sources, in order:
//
//   1. a bundled downsampled SWF *fixture* (data/traces/<name>_sample.swf —
//      a deterministic, burst-preserving sample at the full machine size,
//      regenerable with `trace_replay --write-fixtures=DIR`), loaded via
//      read_swf with runtime-estimate sanitization; or, when no fixture is
//      available,
//   2. synthesize_like(), a statistical generator that reproduces the
//      trace's documented arrival-burst, size and runtime distributions at
//      an arbitrary scale.
//
// Either way load_trace() returns a workload that is normalized, prepared
// for the trace's machine (so Simulations and SweepCells share one copy of
// the job storage), and validated against the trace's documented shape.
// Provenance, licensing and the fixture format are documented in
// docs/workloads.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.h"
#include "workload/workload_stats.h"

namespace sdsched {

/// One registered trace: identity, provenance and the documented shape that
/// synthesize_like() reproduces and validate_trace() checks.
struct TraceInfo {
  std::string name;          ///< catalog key, e.g. "curie"
  std::string label;         ///< short display label, e.g. "Curie"
  std::string system;        ///< machine description
  std::string archive_file;  ///< Parallel Workloads Archive file of the full log
  std::size_t full_log_jobs = 0;  ///< job count of the cleaned full log
  int nodes = 0;
  int cores_per_node = 0;
  int sockets = 2;
  /// Documented same-second submit-burst structure (scripted submissions and
  /// job arrays): the probability that an arrival opens a same-timestamp
  /// group, and the largest group synthesize_like() *draws* (arrivals that
  /// naturally share the leader's second are absorbed on top).
  double burst_fraction = 0.0;
  int max_burst = 1;
  double avg_offered_load = 1.0;  ///< log-wide average offered load
  double pct_malleable = 1.0;     ///< malleability-class assignment on load
  std::uint64_t default_seed = 0;
};

/// All registered traces (immutable; safe to read from sweep workers).
[[nodiscard]] const std::vector<TraceInfo>& trace_catalog();

/// Lookup by catalog key; nullptr when unknown.
[[nodiscard]] const TraceInfo* find_trace(const std::string& name);

/// Statistical stand-in for the full log: the synthetic_logs size/runtime/
/// estimate mixtures at `scale` (nodes and job count shrink together, like
/// paper_workload), plus the trace's same-second submit-burst layer.
/// Deterministic in (info, scale, seed); seed 0 = the trace's default.
[[nodiscard]] Workload synthesize_like(const TraceInfo& info, double scale = 1.0,
                                       std::uint64_t seed = 0);

/// Archive-scale synthesis for the full-log soak (`trace_replay --soak`):
/// exactly `n_jobs` jobs at the FULL machine size and the trace's documented
/// log-wide load — unlike synthesize_like(), whose scale shrinks nodes and
/// jobs together, and unlike the fixture generator, which floors the load at
/// a busy window. A positive `offered_load` overrides the documented load
/// (the saturated golden slice over-subscribes Curie this way).
/// Deterministic in (info, n_jobs, seed, offered_load); seed 0 = default.
[[nodiscard]] Workload synthesize_soak(const TraceInfo& info, std::size_t n_jobs,
                                       std::uint64_t seed = 0, double offered_load = 0.0);

struct TraceLoadOptions {
  double scale = 1.0;        ///< synthesis scale; fixtures truncate when < 1
  /// 0 = trace default. Drives synthesis and, when the trace's
  /// pct_malleable < 1, the malleability assignment of fixture loads too
  /// (a no-op for the bundled traces, which are 100% malleable).
  std::uint64_t seed = 0;
  bool allow_fixture = true;
  bool allow_synthesis = true;  ///< fall back to synthesize_like()
  std::string fixture_dir;      ///< "" = $SDSCHED_TRACE_DIR, else the bundled dir
  std::size_t max_jobs = 0;     ///< hard cap after scaling (0 = none)
};

/// Result of sanity-checking a workload against a trace's documented shape
/// (non-empty, job sizes within the machine, plausible load and request
/// accuracy, bursts present when the trace documents them). `stats` is the
/// full characterization, so callers don't have to re-run characterize().
struct TraceValidation {
  bool ok = true;
  std::vector<std::string> issues;
  WorkloadStats stats;
};

struct LoadedTrace {
  TraceInfo info;
  Workload workload;  ///< normalized + prepared for info's machine (shared storage)
  bool from_fixture = false;
  std::string source;  ///< fixture path, or "synthesize_like"
  TraceValidation validation;
};

/// Resolve and load a registered trace. Throws std::invalid_argument for an
/// unknown name and std::runtime_error when every allowed source fails.
/// Validation issues are logged as warnings, never fatal; inspect
/// `LoadedTrace::validation` to make them so.
[[nodiscard]] LoadedTrace load_trace(const std::string& name,
                                     const TraceLoadOptions& options = {});

[[nodiscard]] TraceValidation validate_trace(const Workload& workload,
                                             const TraceInfo& info);

/// Where load_trace() looks for `info`'s fixture: `dir` if non-empty, else
/// the SDSCHED_TRACE_DIR environment variable, else the bundled data/traces
/// directory baked in at build time.
[[nodiscard]] std::string default_fixture_path(const TraceInfo& info,
                                               const std::string& dir = "");

/// Regenerate `info`'s downsampled fixture: `n_jobs` synthesized jobs at the
/// FULL machine size, written as 18-column SWF with provenance headers and a
/// deterministic sprinkle of failed/cancelled statuses so loading exercises
/// the reader's sanitization path. Deterministic in (info, n_jobs).
void write_trace_fixture(const TraceInfo& info, const std::string& path,
                         std::size_t n_jobs);

}  // namespace sdsched
