// Standard Workload Format (Feitelson) reader/writer.
//
// The 18-column field layout, which columns we consume, and the
// status/estimate sanitization rules are documented in docs/workloads.md
// ("SWF field mapping"). The writer emits all 18 columns so produced traces
// round-trip through other SWF tools.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace sdsched {

struct SwfReadOptions {
  bool skip_failed = false;      ///< drop status==0 (failed) jobs
  bool skip_cancelled = true;    ///< drop status==5 (cancelled) jobs
  /// Failed jobs are *kept* by default, but the archives record many of
  /// them with zero/negative run times (and occasionally no request), which
  /// would produce degenerate JobSpecs that prepare_for() silently drops.
  /// Sanitizing clamps run time to >= 1s, submit to >= 0 and the request to
  /// >= the run time, and warns once per read with the clamp count.
  bool sanitize = true;
  std::size_t max_jobs = 0;      ///< 0 = unlimited
  MalleabilityClass default_malleability = MalleabilityClass::Malleable;
};

/// Parse SWF text. Recognizes `; MaxNodes:` and `; MaxProcs:` headers.
/// Throws std::runtime_error on malformed numeric fields.
///
/// Implemented on the chunked streaming reader (workload/swf_stream.h):
/// fixed-size buffer refills and in-buffer field scanning, no per-row
/// string allocations, memory flat in the file size until the job vector
/// itself. Output is byte-identical to `read_swf_reference` (pinned by
/// tests/workload/test_swf_stream.cpp). `chunk_bytes` overrides the refill
/// size (0 = default 256 KiB; the parity property test sweeps it down to 1
/// byte). Callers that don't need the whole job vector — windowed stats,
/// bounded `max_jobs` prefixes — should pull from `SwfJobStream` directly.
[[nodiscard]] Workload read_swf(std::istream& in, const SwfReadOptions& options = {},
                                std::size_t chunk_bytes = 0);
[[nodiscard]] Workload read_swf_file(const std::string& path,
                                     const SwfReadOptions& options = {});

/// The historical line-at-a-time reader (std::getline + istringstream field
/// extraction, whole vector materialized up front). Retained verbatim as
/// the parity oracle for the streaming reader's property tests and as the
/// comparison tier of `bench/swf_ingest` — not a production path.
[[nodiscard]] Workload read_swf_reference(std::istream& in,
                                          const SwfReadOptions& options = {});

/// Write a workload as SWF (with MaxNodes/MaxProcs headers when known).
void write_swf(std::ostream& out, const Workload& workload);
void write_swf_file(const std::string& path, const Workload& workload);

}  // namespace sdsched
