// Standard Workload Format (Feitelson) reader/writer.
//
// Field layout (18 whitespace-separated columns, ';' comments):
//   1 job number      2 submit time     3 wait time      4 run time
//   5 procs allocated 6 avg cpu time    7 used memory    8 procs requested
//   9 time requested 10 memory req     11 status        12 user id
//  13 group id       14 executable     15 queue         16 partition
//  17 preceding job  18 think time
// We consume submit, run time, requested (falling back to allocated) procs,
// requested time, status and user id; the writer emits all 18 columns so
// produced traces round-trip through other SWF tools.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace sdsched {

struct SwfReadOptions {
  bool skip_failed = false;      ///< drop status==0 (failed) jobs
  bool skip_cancelled = true;    ///< drop status==5 (cancelled) jobs
  std::size_t max_jobs = 0;      ///< 0 = unlimited
  MalleabilityClass default_malleability = MalleabilityClass::Malleable;
};

/// Parse SWF text. Recognizes `; MaxNodes:` and `; MaxProcs:` headers.
/// Throws std::runtime_error on malformed numeric fields.
[[nodiscard]] Workload read_swf(std::istream& in, const SwfReadOptions& options = {});
[[nodiscard]] Workload read_swf_file(const std::string& path,
                                     const SwfReadOptions& options = {});

/// Write a workload as SWF (with MaxNodes/MaxProcs headers when known).
void write_swf(std::ostream& out, const Workload& workload);
void write_swf_file(const std::string& path, const Workload& workload);

}  // namespace sdsched
