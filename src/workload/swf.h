// Standard Workload Format (Feitelson) reader/writer.
//
// The 18-column field layout, which columns we consume, and the
// status/estimate sanitization rules are documented in docs/workloads.md
// ("SWF field mapping"). The writer emits all 18 columns so produced traces
// round-trip through other SWF tools.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace sdsched {

struct SwfReadOptions {
  bool skip_failed = false;      ///< drop status==0 (failed) jobs
  bool skip_cancelled = true;    ///< drop status==5 (cancelled) jobs
  /// Failed jobs are *kept* by default, but the archives record many of
  /// them with zero/negative run times (and occasionally no request), which
  /// would produce degenerate JobSpecs that prepare_for() silently drops.
  /// Sanitizing clamps run time to >= 1s, submit to >= 0 and the request to
  /// >= the run time, and warns once per read with the clamp count.
  bool sanitize = true;
  std::size_t max_jobs = 0;      ///< 0 = unlimited
  MalleabilityClass default_malleability = MalleabilityClass::Malleable;
};

/// Parse SWF text. Recognizes `; MaxNodes:` and `; MaxProcs:` headers.
/// Throws std::runtime_error on malformed numeric fields.
[[nodiscard]] Workload read_swf(std::istream& in, const SwfReadOptions& options = {});
[[nodiscard]] Workload read_swf_file(const std::string& path,
                                     const SwfReadOptions& options = {});

/// Write a workload as SWF (with MaxNodes/MaxProcs headers when known).
void write_swf(std::ostream& out, const Workload& workload);
void write_swf_file(const std::string& path, const Workload& workload);

}  // namespace sdsched
