#include "workload/cirne.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sdsched {

ArrivalPattern ArrivalPattern::anl() noexcept {
  // Diurnal weights loosely following the ANL trace's hourly arrival
  // histogram: quiet 0h-7h, morning ramp, sustained working-hours peak,
  // evening tail. Mean-normalized below.
  ArrivalPattern p{{0.35, 0.30, 0.28, 0.25, 0.25, 0.30, 0.40, 0.60,
                    1.00, 1.45, 1.75, 1.85, 1.80, 1.70, 1.80, 1.85,
                    1.75, 1.55, 1.30, 1.05, 0.85, 0.70, 0.55, 0.45}};
  double sum = 0.0;
  for (const double w : p.hourly_weights) sum += w;
  for (double& w : p.hourly_weights) w *= 24.0 / sum;
  return p;
}

ArrivalPattern ArrivalPattern::uniform() noexcept {
  ArrivalPattern p{};
  p.hourly_weights.fill(1.0);
  return p;
}

std::vector<SimTime> generate_arrivals(int n_jobs, SimTime span, const ArrivalPattern& pattern,
                                       Rng& rng) {
  std::vector<SimTime> arrivals;
  arrivals.reserve(n_jobs);
  if (n_jobs <= 0) return arrivals;
  span = std::max<SimTime>(span, kHour);
  // Expected arrivals per hour bucket = base * weight(hour-of-day); draw a
  // Poisson count per bucket (via exponential gaps) until n_jobs placed.
  const double base_per_hour = static_cast<double>(n_jobs) / (static_cast<double>(span) / kHour);
  SimTime hour_start = 0;
  while (static_cast<int>(arrivals.size()) < n_jobs) {
    const auto hour_of_day = static_cast<std::size_t>((hour_start / kHour) % 24);
    const double rate = base_per_hour * pattern.hourly_weights[hour_of_day] / kHour;
    if (rate > 0.0) {
      double t = static_cast<double>(hour_start) + rng.exponential(rate);
      while (t < static_cast<double>(hour_start + kHour) &&
             static_cast<int>(arrivals.size()) < n_jobs) {
        arrivals.push_back(static_cast<SimTime>(t));
        t += rng.exponential(rate);
      }
    }
    hour_start += kHour;
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

namespace {

/// Round a requested time up to scheduler-friendly buckets, as users do.
SimTime round_request(SimTime req) noexcept {
  constexpr SimTime buckets[] = {10 * kMinute, 30 * kMinute, kHour,     2 * kHour,
                                 4 * kHour,    8 * kHour,    12 * kHour, kDay,
                                 2 * kDay,     3 * kDay,     4 * kDay};
  for (const SimTime b : buckets) {
    if (req <= b) return b;
  }
  return req;
}

int draw_nodes(const CirneConfig& c, Rng& rng) {
  if (rng.chance(c.p_serial)) return 1;
  const double max_log2 = std::log2(static_cast<double>(c.max_job_nodes));
  double l = rng.normal(c.log2_nodes_mean, c.log2_nodes_sigma);
  l = std::clamp(l, 0.0, max_log2);
  if (rng.chance(c.p_power2)) {
    return 1 << static_cast<int>(std::lround(l));
  }
  const int nodes = static_cast<int>(std::lround(std::exp2(l)));
  return std::clamp(nodes, 1, c.max_job_nodes);
}

}  // namespace

Workload generate_cirne(const CirneConfig& config) {
  Rng rng(config.seed);
  Rng size_rng = rng.fork();
  Rng runtime_rng = rng.fork();
  Rng estimate_rng = rng.fork();
  Rng arrival_rng = rng.fork();
  Rng class_rng = rng.fork();

  std::vector<JobSpec> jobs;
  jobs.reserve(config.n_jobs);
  double total_work = 0.0;
  for (int i = 0; i < config.n_jobs; ++i) {
    JobSpec spec;
    const int nodes = draw_nodes(config, size_rng);
    spec.req_cpus = nodes * config.cores_per_node;
    const double mu =
        config.log_runtime_mu + config.size_runtime_coupling * std::log2(std::max(1, nodes));
    auto runtime =
        static_cast<SimTime>(runtime_rng.lognormal(mu, config.log_runtime_sigma));
    spec.base_runtime = std::clamp<SimTime>(runtime, 1, config.max_runtime);
    if (config.ideal_estimates) {
      spec.req_time = spec.base_runtime;
    } else {
      const double overshoot =
          estimate_rng.lognormal(config.overshoot_mu, config.overshoot_sigma);
      const auto req = static_cast<SimTime>(
          static_cast<double>(spec.base_runtime) * (1.0 + overshoot));
      spec.req_time = std::min(round_request(std::max(req, spec.base_runtime)),
                               config.max_req_time);
      spec.req_time = std::max(spec.req_time, spec.base_runtime);
    }
    spec.malleability = class_rng.chance(config.pct_malleable)
                            ? MalleabilityClass::Malleable
                            : MalleabilityClass::Rigid;
    spec.user_id = static_cast<int>(class_rng.uniform_int(0, 199));
    jobs.push_back(spec);
    total_work += static_cast<double>(spec.base_runtime) * spec.req_cpus;
  }

  const double capacity =
      static_cast<double>(config.system_nodes) * config.cores_per_node;
  const auto span =
      static_cast<SimTime>(total_work / (capacity * std::max(0.01, config.target_load)));
  const auto arrivals =
      generate_arrivals(config.n_jobs, span, config.arrivals, arrival_rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].submit = arrivals[i];
  }

  Workload workload(WorkloadInfo{"cirne", config.system_nodes, config.cores_per_node},
                    std::move(jobs));
  workload.prepare_for(config.system_nodes, config.cores_per_node);
  log_info("cirne", "generated ", workload.size(), " jobs over ",
           format_duration(span), ", offered load ",
           workload.offered_load(config.system_nodes * config.cores_per_node));
  return workload;
}

}  // namespace sdsched
