#include "workload/synthetic_logs.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "workload/cirne.h"

namespace sdsched {

namespace {

/// Common skeleton: draw (nodes, runtime, request) per job from
/// log-scale mixtures, then lay arrivals over a span derived from the
/// target load, exactly as generate_cirne does.
struct LogShape {
  // size mixture: P(1 node), P(tiny 2-4), remainder log-uniform to max.
  double p_one_node;
  double p_tiny;
  // runtime lognormal mixture: short jobs vs long tail.
  double p_short;
  double short_mu, short_sigma;
  double long_mu, long_sigma;
  SimTime max_runtime;
  // request overshoot lognormal.
  double overshoot_mu, overshoot_sigma;
  SimTime max_req;
};

Workload generate_from_shape(const char* name, int n_jobs, int nodes, int cores_per_node,
                             int max_job_nodes, double target_load, double pct_malleable,
                             std::uint64_t seed, const LogShape& shape) {
  Rng rng(seed);
  Rng size_rng = rng.fork();
  Rng runtime_rng = rng.fork();
  Rng estimate_rng = rng.fork();
  Rng arrival_rng = rng.fork();
  Rng class_rng = rng.fork();

  std::vector<JobSpec> jobs;
  jobs.reserve(n_jobs);
  double total_work = 0.0;
  const double max_log2 = std::log2(static_cast<double>(std::max(2, max_job_nodes)));
  for (int i = 0; i < n_jobs; ++i) {
    JobSpec spec;
    int job_nodes = 1;
    const double u = size_rng.next_double();
    if (u < shape.p_one_node) {
      job_nodes = 1;
    } else if (u < shape.p_one_node + shape.p_tiny) {
      job_nodes = static_cast<int>(size_rng.uniform_int(2, 4));
    } else {
      const double l = size_rng.uniform(1.0, max_log2);
      job_nodes = std::clamp(static_cast<int>(std::lround(std::exp2(l))), 2, max_job_nodes);
    }
    spec.req_cpus = job_nodes * cores_per_node;

    const bool is_short = runtime_rng.chance(shape.p_short);
    const double mu = is_short ? shape.short_mu : shape.long_mu;
    const double sigma = is_short ? shape.short_sigma : shape.long_sigma;
    spec.base_runtime = std::clamp<SimTime>(
        static_cast<SimTime>(runtime_rng.lognormal(mu, sigma)), 1, shape.max_runtime);

    const double overshoot =
        estimate_rng.lognormal(shape.overshoot_mu, shape.overshoot_sigma);
    spec.req_time = std::min<SimTime>(
        static_cast<SimTime>(static_cast<double>(spec.base_runtime) * (1.0 + overshoot)),
        shape.max_req);
    spec.req_time = std::max(spec.req_time, spec.base_runtime);

    spec.malleability = class_rng.chance(pct_malleable) ? MalleabilityClass::Malleable
                                                        : MalleabilityClass::Rigid;
    spec.user_id = static_cast<int>(class_rng.uniform_int(0, 499));
    jobs.push_back(spec);
    total_work += static_cast<double>(spec.base_runtime) * spec.req_cpus;
  }

  const double capacity = static_cast<double>(nodes) * cores_per_node;
  const auto span =
      static_cast<SimTime>(total_work / (capacity * std::max(0.01, target_load)));
  const auto pattern = ArrivalPattern::anl();
  const auto arrivals = generate_arrivals(n_jobs, span, pattern, arrival_rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].submit = arrivals[i];

  Workload workload(WorkloadInfo{name, nodes, cores_per_node}, std::move(jobs));
  workload.prepare_for(nodes, cores_per_node);
  log_info(name, "generated ", workload.size(), " jobs over ", format_duration(span));
  return workload;
}

}  // namespace

Workload generate_ricc_like(const RiccConfig& config) {
  const int nodes = std::max(8, static_cast<int>(config.base_nodes * config.scale));
  const int n_jobs = std::max(50, static_cast<int>(config.base_jobs * config.scale));
  const int max_job =
      std::clamp(static_cast<int>(config.max_job_nodes * config.scale), 2, nodes);
  // RICC: dominated by 1-node jobs, short-to-long runtimes up to 4 days.
  const LogShape shape{
      /*p_one_node=*/0.62, /*p_tiny=*/0.18,
      /*p_short=*/0.55, /*short_mu=*/5.2, /*short_sigma=*/1.6,
      /*long_mu=*/9.3, /*long_sigma=*/1.3, /*max_runtime=*/4 * kDay,
      /*overshoot_mu=*/1.2, /*overshoot_sigma=*/1.0, /*max_req=*/4 * kDay};
  return generate_from_shape("ricc-like", n_jobs, nodes, config.cores_per_node, max_job,
                             config.target_load, config.pct_malleable, config.seed, shape);
}

Workload generate_curie_like(const CurieConfig& config) {
  const int nodes = std::max(16, static_cast<int>(config.base_nodes * config.scale));
  const int n_jobs = std::max(100, static_cast<int>(config.base_jobs * config.scale));
  const int max_job =
      std::clamp(static_cast<int>(config.max_job_nodes * config.scale), 2, nodes);
  // Curie primary partition: an enormous mass of very short small jobs with
  // a wide tail, and one near-machine-size outlier class.
  const LogShape shape{
      /*p_one_node=*/0.70, /*p_tiny=*/0.14,
      /*p_short=*/0.60, /*short_mu=*/4.6, /*short_sigma=*/1.8,
      /*long_mu=*/8.8, /*long_sigma=*/1.5, /*max_runtime=*/3 * kDay,
      /*overshoot_mu=*/1.4, /*overshoot_sigma=*/1.1, /*max_req=*/3 * kDay};
  return generate_from_shape("curie-like", n_jobs, nodes, config.cores_per_node, max_job,
                             config.target_load, config.pct_malleable, config.seed, shape);
}

}  // namespace sdsched
