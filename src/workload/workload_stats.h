// Workload characterization: the trace-side columns of Table 1 plus the
// distribution summaries used to sanity-check generated traces.
#pragma once

#include <string>

#include "workload/workload.h"

namespace sdsched {

struct WorkloadStats {
  std::string name;
  std::size_t n_jobs = 0;
  int system_nodes = 0;
  int system_cores = 0;
  int max_job_nodes = 0;
  int max_job_cpus = 0;
  SimTime submit_span = 0;
  double mean_runtime = 0.0;
  double median_runtime = 0.0;
  double mean_req_time = 0.0;
  double mean_nodes = 0.0;
  double offered_load = 0.0;
  double request_accuracy = 0.0;  ///< mean(base_runtime / req_time), 1 = exact
  double pct_malleable = 0.0;

  // Submit-burst structure. Real logs (scripted submissions, array jobs)
  // carry heavy same-second submit bursts that synthetic Poisson arrivals
  // lack; these drive the kernel's burst coalescing, so trace validation
  // checks them explicitly.
  std::size_t distinct_submit_times = 0;
  std::size_t same_time_submits = 0;  ///< jobs sharing a submit second with another job
  std::size_t max_submit_burst = 0;   ///< largest same-second submit group
};

[[nodiscard]] WorkloadStats characterize(const Workload& workload);

/// Multi-line human-readable rendering.
[[nodiscard]] std::string to_string(const WorkloadStats& stats);

}  // namespace sdsched
