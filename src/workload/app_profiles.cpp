#include "workload/app_profiles.h"

#include "util/rng.h"

namespace sdsched {

const std::vector<ApplicationProfile>& table2_profiles() {
  // Magic-static init is thread-safe (C++11) and the vector is immutable
  // afterwards, so concurrent sweep workers may read it freely.
  // Shares from Table 2; behavioural constants chosen per the paper's
  // descriptions: PILS compute-bound/low-memory, STREAM memory-bound with
  // poor core scaling, the simulators compute-heavy with moderate bandwidth
  // needs, Alya a long-running multiphysics solver.
  static const std::vector<ApplicationProfile> profiles = {
      {"PILS", 0.305, /*cpu=*/0.95, /*mem=*/0.10, /*alpha=*/1.00, /*bw=*/0.005},
      {"STREAM", 0.308, /*cpu=*/0.30, /*mem=*/0.95, /*alpha=*/0.30, /*bw=*/0.090},
      {"CoreNeuron", 0.355, /*cpu=*/0.90, /*mem=*/0.55, /*alpha=*/0.85, /*bw=*/0.030},
      {"NEST", 0.026, /*cpu=*/0.90, /*mem=*/0.55, /*alpha=*/0.80, /*bw=*/0.030},
      {"Alya", 0.006, /*cpu=*/0.92, /*mem=*/0.60, /*alpha=*/0.88, /*bw=*/0.035},
  };
  return profiles;
}

int profile_index(std::string_view name) {
  const auto& profiles = table2_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void assign_applications(Workload& workload, std::uint64_t seed) {
  Rng rng(seed);
  const auto& profiles = table2_profiles();
  std::vector<double> weights;
  weights.reserve(profiles.size());
  for (const auto& p : profiles) weights.push_back(p.workload_share);
  for (auto& spec : workload.mutable_jobs()) {
    spec.app_profile = static_cast<int>(rng.weighted_index(weights));
  }
}

}  // namespace sdsched
