// Workload container: an ordered list of JobSpecs plus the system the trace
// targets. Produced by the SWF reader or the statistical generators.
#pragma once

#include <string>
#include <vector>

#include "job/job.h"

namespace sdsched {

struct WorkloadInfo {
  std::string name = "workload";
  int system_nodes = 0;     ///< nodes of the target machine (0 = unknown)
  int cores_per_node = 0;   ///< 0 = unknown
};

class Workload {
 public:
  Workload() = default;
  Workload(WorkloadInfo info, std::vector<JobSpec> jobs)
      : info_(std::move(info)), jobs_(std::move(jobs)) {}

  [[nodiscard]] const WorkloadInfo& info() const noexcept { return info_; }
  [[nodiscard]] WorkloadInfo& info() noexcept { return info_; }
  [[nodiscard]] const std::vector<JobSpec>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::vector<JobSpec>& jobs() noexcept { return jobs_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }

  void add(JobSpec spec) { jobs_.push_back(spec); }

  /// Sort by (submit, id) and renumber ids densely from 0 — the registry
  /// requires dense in-order ids.
  void normalize();

  /// Clamp requests to the machine, derive req_nodes from req_cpus, drop
  /// unrunnable jobs (zero runtime/cpus). Returns dropped count.
  std::size_t prepare_for(int system_nodes, int cores_per_node);

  /// Sum over jobs of base_runtime * req_cpus (core-seconds of real work).
  [[nodiscard]] double total_work_core_seconds() const noexcept;

  /// Offered load: total work / (capacity * submit-span).
  [[nodiscard]] double offered_load(int total_cores) const noexcept;

 private:
  WorkloadInfo info_;
  std::vector<JobSpec> jobs_;
};

}  // namespace sdsched
