// Workload container: an ordered list of JobSpecs plus the system the trace
// targets. Produced by the SWF reader or the statistical generators.
//
// Job storage is immutable and shared: copying a Workload copies a
// shared_ptr, not the job list, so a parameter sweep that runs the same
// trace under N configurations holds one copy of the (potentially hundreds
// of thousands of) JobSpecs instead of N. Mutating operations (add,
// normalize, prepare_for, mutable_jobs) detach — they clone the storage
// first if any other Workload still shares it — so a copy can never observe
// another copy's edits, and concurrent Simulations can safely share one
// prepared workload.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "job/job.h"

namespace sdsched {

struct WorkloadInfo {
  std::string name = "workload";
  int system_nodes = 0;     ///< nodes of the target machine (0 = unknown)
  int cores_per_node = 0;   ///< 0 = unknown
};

class Workload {
 public:
  Workload() = default;
  Workload(WorkloadInfo info, std::vector<JobSpec> jobs)
      : info_(std::move(info)),
        jobs_(std::make_shared<std::vector<JobSpec>>(std::move(jobs))) {}

  [[nodiscard]] const WorkloadInfo& info() const noexcept { return info_; }
  [[nodiscard]] WorkloadInfo& info() noexcept { return info_; }
  [[nodiscard]] const std::vector<JobSpec>& jobs() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return jobs_ ? jobs_->size() : 0; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  void add(JobSpec spec) { detach().push_back(spec); }

  /// Pre-size the job storage for a known (or estimated) job count so bulk
  /// readers append without reallocation churn. A hint, not a limit —
  /// detaches like every mutation.
  void reserve(std::size_t capacity) { detach().reserve(capacity); }

  /// Mutable view of the job list. Detaches from sharing copies and
  /// invalidates preparation — call prepare_for() again before simulating.
  [[nodiscard]] std::vector<JobSpec>& mutable_jobs() { return detach(); }

  /// Sort by (submit, id) and renumber ids densely from 0 — the registry
  /// requires dense in-order ids.
  void normalize();

  /// Clamp requests to the machine, derive req_nodes from req_cpus, drop
  /// unrunnable jobs (zero runtime/cpus). Returns dropped count. Idempotent:
  /// a workload already prepared for the same machine is left shared,
  /// untouched.
  std::size_t prepare_for(int system_nodes, int cores_per_node);

  /// True when prepare_for(system_nodes, cores_per_node) has run and no
  /// mutation happened since — i.e. the jobs can be fed to a Simulation of
  /// that machine without another preparation pass.
  [[nodiscard]] bool prepared_for(int system_nodes, int cores_per_node) const noexcept {
    return prepared_ && info_.system_nodes == system_nodes &&
           info_.cores_per_node == cores_per_node;
  }

  /// True when both workloads point at the same job storage (sharing
  /// diagnostics for tests and sweep plumbing).
  [[nodiscard]] bool shares_jobs_with(const Workload& other) const noexcept {
    return jobs_ != nullptr && jobs_ == other.jobs_;
  }

  /// Sum over jobs of base_runtime * req_cpus (core-seconds of real work).
  [[nodiscard]] double total_work_core_seconds() const noexcept;

  /// Offered load: total work / (capacity * submit-span).
  [[nodiscard]] double offered_load(int total_cores) const noexcept;

 private:
  /// Exclusive, mutable storage: clones when shared, allocates when empty.
  std::vector<JobSpec>& detach();

  WorkloadInfo info_;
  std::shared_ptr<const std::vector<JobSpec>> jobs_;
  bool prepared_ = false;
};

}  // namespace sdsched
