#include "model/progress.h"

#include <cassert>
#include <cmath>

namespace sdsched {

void ProgressTracker::settle(Job& job, SimTime now) const noexcept {
  assert(now >= job.last_progress_update);
  const auto elapsed = static_cast<double>(now - job.last_progress_update);
  job.work_done += elapsed * job.rate;
  job.last_progress_update = now;
}

void ProgressTracker::set_rate_from_shares(Job& job, double contention_multiplier) const noexcept {
  job.rate = progress_rate(kind_, job.shares, job.spec.req_cpus, clamp_superlinear_) *
             contention_multiplier;
}

SimTime ProgressTracker::remaining_wallclock(const Job& job) const noexcept {
  const double remaining_work = static_cast<double>(job.spec.base_runtime) - job.work_done;
  if (remaining_work <= 0.0) return 0;
  assert(job.rate > 0.0);
  return static_cast<SimTime>(std::ceil(remaining_work / job.rate));
}

SimTime ProgressTracker::reconfigure(Job& job, SimTime now,
                                     double contention_multiplier) const noexcept {
  settle(job, now);
  set_rate_from_shares(job, contention_multiplier);
  return now + remaining_wallclock(job);
}

}  // namespace sdsched
