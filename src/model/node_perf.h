// Node-sharing performance model — the simulated stand-in for the paper's
// real-machine run (DESIGN.md §3.2).
//
// Two effects, both called out in §4.4 as the source of the real-run gains:
//  1. Imperfect scalability: an application at a fraction f of its cpus
//     progresses at f^alpha, not f. Memory-bound codes (STREAM, alpha≈0.3)
//     barely notice losing cores, so shrinking them is nearly free.
//  2. Memory-bandwidth contention: co-runners whose combined bandwidth
//     demand exceeds the node's capacity slow each other down in proportion
//     to their memory sensitivity. Crucially the penalty is measured against
//     the job *alone* with the same cpus, so a saturating app (STREAM on a
//     full node) is not double-charged for its own baseline saturation,
//     which is already folded into base_runtime.
//
// The multiplier composes with the Eq. 5/6 rate: rate' = rate * multiplier.
#pragma once

#include <vector>

#include "cluster/machine.h"
#include "job/job_registry.h"
#include "workload/app_profiles.h"

namespace sdsched {

class NodePerfModel {
 public:
  explicit NodePerfModel(std::vector<ApplicationProfile> profiles,
                         double bw_capacity_per_socket = 1.0)
      : profiles_(std::move(profiles)), bw_capacity_per_socket_(bw_capacity_per_socket) {}

  /// Multiplier applied to `job`'s progress rate given its current shares
  /// and the co-occupants of its nodes. Returns 1.0 for jobs without a
  /// profile (pure Eq. 5/6 behaviour).
  [[nodiscard]] double multiplier(const Job& job, const Machine& machine,
                                  const JobRegistry& jobs) const;

  [[nodiscard]] const std::vector<ApplicationProfile>& profiles() const noexcept {
    return profiles_;
  }

 private:
  [[nodiscard]] const ApplicationProfile* profile_of(const Job& job) const noexcept;

  std::vector<ApplicationProfile> profiles_;
  double bw_capacity_per_socket_;
};

}  // namespace sdsched
