#include "model/runtime_model.h"

#include <algorithm>
#include <cmath>

namespace sdsched {

double progress_rate(RuntimeModelKind kind, std::span<const NodeShare> shares, int req_cpus,
                     bool clamp_superlinear) noexcept {
  if (shares.empty() || req_cpus <= 0) return 0.0;
  double rate = 0.0;
  if (kind == RuntimeModelKind::Ideal) {
    int total = 0;
    for (const auto& share : shares) total += share.cpus;
    rate = static_cast<double>(total) / static_cast<double>(req_cpus);
  } else {
    rate = 1e300;
    for (const auto& share : shares) {
      const int reference = std::max(1, share.static_cpus);
      rate = std::min(rate, static_cast<double>(share.cpus) / reference);
    }
  }
  if (clamp_superlinear) rate = std::min(rate, 1.0);
  return std::max(rate, 0.0);
}

SimTime increase_for_rate(SimTime duration, double rate) noexcept {
  if (duration <= 0 || rate >= 1.0) return 0;
  if (rate <= 0.0) return duration;  // degenerate; callers reject zero-rate plans
  const double increase = static_cast<double>(duration) * (1.0 / rate - 1.0);
  return static_cast<SimTime>(std::ceil(increase));
}

SimTime lost_progress_increase(SimTime shared_duration, double shrunk_rate) noexcept {
  if (shared_duration <= 0) return 0;
  const double rate = std::clamp(shrunk_rate, 0.0, 1.0);
  return static_cast<SimTime>(std::ceil((1.0 - rate) * static_cast<double>(shared_duration)));
}

}  // namespace sdsched
