// Progress integration: turns rate changes into completion times.
//
// Each running Job carries (work_done, rate, last_progress_update). Every
// reconfiguration must first settle the elapsed slot at the *old* rate, then
// install the new rate; the remaining wallclock follows. ProgressTracker
// centralizes that arithmetic so shrink/expand paths cannot diverge.
#pragma once

#include "job/job.h"
#include "model/runtime_model.h"

namespace sdsched {

class NodePerfModel;  // fwd; optional contention multiplier

class ProgressTracker {
 public:
  explicit ProgressTracker(RuntimeModelKind kind, bool clamp_superlinear = false) noexcept
      : kind_(kind), clamp_superlinear_(clamp_superlinear) {}

  [[nodiscard]] RuntimeModelKind kind() const noexcept { return kind_; }

  /// Accumulate progress for the slot [job.last_progress_update, now] at the
  /// job's current rate.
  void settle(Job& job, SimTime now) const noexcept;

  /// Recompute the job's rate from its current shares (times an optional
  /// external multiplier from the contention model). Call settle() first.
  void set_rate_from_shares(Job& job, double contention_multiplier = 1.0) const noexcept;

  /// Wallclock remaining until the job's work completes at its current rate.
  /// Requires rate > 0. Rounded up to whole seconds, minimum 0.
  [[nodiscard]] SimTime remaining_wallclock(const Job& job) const noexcept;

  /// Convenience: settle, re-rate, and return the new predicted finish time.
  [[nodiscard]] SimTime reconfigure(Job& job, SimTime now,
                                    double contention_multiplier = 1.0) const noexcept;

 private:
  RuntimeModelKind kind_;
  bool clamp_superlinear_;
};

}  // namespace sdsched
