// Runtime models for malleable jobs (paper §3.4).
//
// A job's duration under changing allocations is integrated over "time
// slots", each slot being one resource configuration. Both models reduce to
// an instantaneous *progress rate* relative to the job's static allocation
// (NodeShare::static_cpus, the balanced split of req_cpus):
//
//   ideal      (Eq. 5): rate = sum_n cpus_n / req_cpus
//                        — the application rebalances its load dynamically,
//                          so performance is linear in total assigned cpus.
//   worst case (Eq. 6): rate = min_n (cpus_n / static_cpus_n)
//                        — a statically balanced application is held back by
//                          its least-provisioned node. For the uniform
//                          splits of whole-node jobs this is exactly the
//                          paper's N * min_n(cpus_per_node) / req_cpus.
//
// A job finishes when integrated progress reaches base_runtime; the paper's
// "increase" is the extra wallclock this integration produces. The SD-Policy
// always *estimates* with the worst-case model (to guarantee completion
// inside mates' allocations, §3.4); the simulated execution uses either,
// which is what Fig. 8 compares.
#pragma once

#include <span>

#include "job/job.h"

namespace sdsched {

enum class RuntimeModelKind : int { Ideal = 0, WorstCase = 1 };

[[nodiscard]] constexpr const char* to_string(RuntimeModelKind kind) noexcept {
  return kind == RuntimeModelKind::Ideal ? "ideal" : "worst-case";
}

/// Progress rate (fraction of static speed) for a job holding `shares`
/// against a request of `req_cpus`. A full static allocation yields exactly
/// 1.0 under both models. `clamp_superlinear` caps the rate at 1 for jobs
/// that inherit more cores than they requested.
[[nodiscard]] double progress_rate(RuntimeModelKind kind, std::span<const NodeShare> shares,
                                   int req_cpus, bool clamp_superlinear = false) noexcept;

/// Extra wallclock to complete `duration` seconds of static-rate work when
/// running at `rate`: duration * (1/rate - 1). Zero when rate >= 1.
[[nodiscard]] SimTime increase_for_rate(SimTime duration, double rate) noexcept;

/// Extra wallclock a job accrues by spending `shared_duration` of wallclock
/// at `shrunk_rate` (< 1) and catching up at full speed afterwards:
/// (1 - rate) * shared_duration. This is the mate-side increase of Eq. 4.
[[nodiscard]] SimTime lost_progress_increase(SimTime shared_duration,
                                             double shrunk_rate) noexcept;

}  // namespace sdsched
