#include "model/node_perf.h"

#include <algorithm>
#include <cmath>

namespace sdsched {

const ApplicationProfile* NodePerfModel::profile_of(const Job& job) const noexcept {
  const int idx = job.spec.app_profile;
  if (idx < 0 || idx >= static_cast<int>(profiles_.size())) return nullptr;
  return &profiles_[static_cast<std::size_t>(idx)];
}

double NodePerfModel::multiplier(const Job& job, const Machine& machine,
                                 const JobRegistry& jobs) const {
  const ApplicationProfile* profile = profile_of(job);
  if (profile == nullptr || job.shares.empty()) return 1.0;

  // (1) scalability correction: Eq. 5/6 charge a linear f; the app actually
  // progresses at f^alpha, so correct by f^(alpha-1).
  const double frac = static_cast<double>(job.allocated_cpus()) /
                      static_cast<double>(std::max(1, job.spec.req_cpus));
  double result = 1.0;
  if (frac > 0.0) {
    result *= std::pow(frac, profile->scalability_alpha - 1.0);
  }

  // (2) bandwidth contention, averaged over the job's nodes.
  double contention_sum = 0.0;
  for (const auto& share : job.shares) {
    const Node& node = machine.node(share.node);
    const double capacity = bw_capacity_per_socket_ * node.sockets();
    double own_demand = 0.0;
    double total_demand = 0.0;
    for (const auto& occ : node.occupants()) {
      const Job& occupant = jobs.at(occ.job);
      const ApplicationProfile* p = profile_of(occupant);
      const double per_core = (p != nullptr) ? p->mem_bw_per_core : 0.0;
      const double demand = per_core * occ.cpus;
      total_demand += demand;
      if (occ.job == job.spec.id) own_demand = demand;
    }
    // Excess pressure beyond what the job would see running alone (its own
    // saturation is part of base_runtime already).
    const double baseline = std::max(capacity, own_demand);
    const double excess = std::max(0.0, total_demand - baseline) / capacity;
    contention_sum += 1.0 / (1.0 + profile->mem_utilization * excess);
  }
  result *= contention_sum / static_cast<double>(job.shares.size());
  return result;
}

}  // namespace sdsched
