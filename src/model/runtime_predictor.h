// Online runtime prediction (paper §4.1 / future work #2).
//
// The paper observes that SD-Policy gets more precise — and DynAVGSD gets
// better — when requested times approach real durations (workload 2), and
// proposes replacing user estimates with a predictive method. This is the
// classic online estimator from the literature the paper gestures at: a
// per-user exponential moving average of the actual/requested ratio, with a
// global fallback until a user accumulates history.
//
// Predictions never exceed the user's request (the limit still kills jobs)
// and never drop below one second. Consumers treat the prediction as the
// scheduler's working estimate everywhere a requested time is used:
// reservation durations, predicted ends and the SD decision inputs.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "job/job.h"

namespace sdsched {

class RuntimePredictor {
 public:
  /// `smoothing` is the EMA weight of the newest observation; `min_history`
  /// observations are required before a user's model is trusted.
  explicit RuntimePredictor(double smoothing = 0.3, std::size_t min_history = 3) noexcept
      : smoothing_(smoothing), min_history_(min_history) {}

  /// Record a completion (actual wallclock vs the request).
  void observe(const JobSpec& spec, SimTime actual_runtime);

  /// Predicted wallclock for a job about to be scheduled.
  [[nodiscard]] SimTime predict(const JobSpec& spec) const;

  /// Mean |predicted - actual| / actual over all observations that had a
  /// trusted model at observation time (for reporting).
  [[nodiscard]] double mean_relative_error() const noexcept;
  [[nodiscard]] std::uint64_t observations() const noexcept { return observations_; }

 private:
  struct UserModel {
    double ema_ratio = 1.0;  ///< actual / requested
    std::size_t count = 0;
  };

  [[nodiscard]] const UserModel* trusted_model(int user_id) const;

  double smoothing_;
  std::size_t min_history_;
  // Determinism audit (detlint D1): keyed lookup only (find in
  // trusted_model, operator[] on observe) — never iterated, so per-user
  // prediction is a pure function of that user's observation sequence.
  std::unordered_map<int, UserModel> users_;
  UserModel global_;
  std::uint64_t observations_ = 0;
  double error_sum_ = 0.0;
  std::uint64_t error_count_ = 0;
};

}  // namespace sdsched
