#include "model/runtime_predictor.h"

#include <algorithm>
#include <cmath>

namespace sdsched {

void RuntimePredictor::observe(const JobSpec& spec, SimTime actual_runtime) {
  const auto req = static_cast<double>(std::max<SimTime>(spec.req_time, 1));
  const double actual = static_cast<double>(std::max<SimTime>(actual_runtime, 1));
  const double ratio = std::min(actual / req, 1.0);

  // Score the prediction we would have made *before* this observation.
  const SimTime predicted = predict(spec);
  error_sum_ += std::abs(static_cast<double>(predicted) - actual) / actual;
  ++error_count_;

  const auto fold = [this, ratio](UserModel& model) {
    model.ema_ratio =
        model.count == 0 ? ratio : (1.0 - smoothing_) * model.ema_ratio + smoothing_ * ratio;
    ++model.count;
  };
  fold(users_[spec.user_id]);
  fold(global_);
  ++observations_;
}

const RuntimePredictor::UserModel* RuntimePredictor::trusted_model(int user_id) const {
  if (const auto it = users_.find(user_id);
      it != users_.end() && it->second.count >= min_history_) {
    return &it->second;
  }
  if (global_.count >= min_history_) return &global_;
  return nullptr;
}

SimTime RuntimePredictor::predict(const JobSpec& spec) const {
  const UserModel* model = trusted_model(spec.user_id);
  if (model == nullptr) return spec.req_time;  // no history: trust the user
  const auto predicted =
      static_cast<SimTime>(std::ceil(model->ema_ratio * static_cast<double>(spec.req_time)));
  return std::clamp<SimTime>(predicted, 1, spec.req_time);
}

double RuntimePredictor::mean_relative_error() const noexcept {
  return error_count_ > 0 ? error_sum_ / static_cast<double>(error_count_) : 0.0;
}

}  // namespace sdsched
