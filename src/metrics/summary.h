// Human-readable and machine-readable rendering of MetricsSummary and
// normalized comparisons.
#pragma once

#include <string>

#include "metrics/collector.h"
#include "util/json.h"

namespace sdsched {

[[nodiscard]] std::string to_string(const MetricsSummary& summary);

/// Serialize as a JSON object at the writer's current value position.
void to_json(JsonWriter& json, const MetricsSummary& summary);

/// Normalized view of `policy` against `baseline` (the paper reports most
/// results "normalized to static backfill"). Values are policy/baseline;
/// < 1 means the policy improved the metric.
struct NormalizedMetrics {
  double makespan = 1.0;
  double avg_response = 1.0;
  double avg_slowdown = 1.0;
  double avg_wait = 1.0;
  double energy = 1.0;
};

[[nodiscard]] NormalizedMetrics normalize(const MetricsSummary& policy,
                                          const MetricsSummary& baseline) noexcept;

/// Serialize as a JSON object at the writer's current value position.
void to_json(JsonWriter& json, const NormalizedMetrics& normalized);

}  // namespace sdsched
