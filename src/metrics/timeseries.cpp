#include "metrics/timeseries.h"

#include <algorithm>
#include <sstream>

#include "util/time_utils.h"

namespace sdsched {

DailySeries DailySeries::from_records(const std::vector<JobRecord>& records) {
  DailySeries series;
  if (records.empty()) return series;

  SimTime origin = records.front().submit;
  SimTime last_end = records.front().end;
  for (const auto& record : records) {
    origin = std::min(origin, record.submit);
    last_end = std::max(last_end, record.end);
  }
  const auto days = static_cast<std::size_t>(day_of(last_end - origin)) + 1;
  series.points_.resize(days);
  for (std::size_t d = 0; d < days; ++d) {
    series.points_[d].day = static_cast<std::int64_t>(d);
  }
  std::vector<double> sums(days, 0.0);
  for (const auto& record : records) {
    const auto end_day = static_cast<std::size_t>(day_of(record.end - origin));
    sums[end_day] += record.slowdown();
    ++series.points_[end_day].jobs_completed;
    if (record.was_guest) {
      const auto start_day = static_cast<std::size_t>(day_of(record.start - origin));
      ++series.points_[start_day].malleable_scheduled;
    }
  }
  for (std::size_t d = 0; d < days; ++d) {
    if (series.points_[d].jobs_completed > 0) {
      series.points_[d].avg_slowdown =
          sums[d] / static_cast<double>(series.points_[d].jobs_completed);
    }
  }
  return series;
}

std::string DailySeries::render(const DailySeries* baseline) const {
  std::ostringstream oss;
  oss << "day, avg_slowdown";
  if (baseline != nullptr) oss << ", baseline_avg_slowdown";
  oss << ", jobs_completed, malleable_scheduled\n";
  for (std::size_t d = 0; d < points_.size(); ++d) {
    const auto& p = points_[d];
    oss << p.day << ", " << p.avg_slowdown;
    if (baseline != nullptr) {
      const double base = d < baseline->points_.size() ? baseline->points_[d].avg_slowdown : 0.0;
      oss << ", " << base;
    }
    oss << ", " << p.jobs_completed << ", " << p.malleable_scheduled << '\n';
  }
  return oss.str();
}

}  // namespace sdsched
