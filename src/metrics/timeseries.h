// Per-day time series for Figure 7: average slowdown of the jobs finishing
// each day, plus how many jobs were scheduled with malleability that day.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace sdsched {

struct DailyPoint {
  std::int64_t day = 0;
  double avg_slowdown = 0.0;
  std::size_t jobs_completed = 0;
  std::size_t malleable_scheduled = 0;  ///< guests whose *start* fell on this day
};

class DailySeries {
 public:
  /// Build from completion records. Days are indexed from the first submit.
  [[nodiscard]] static DailySeries from_records(const std::vector<JobRecord>& records);

  [[nodiscard]] const std::vector<DailyPoint>& points() const noexcept { return points_; }
  [[nodiscard]] std::size_t days() const noexcept { return points_.size(); }

  /// CSV-ish rendering: day, avg slowdown, completions, malleable starts.
  [[nodiscard]] std::string render(const DailySeries* baseline = nullptr) const;

 private:
  std::vector<DailyPoint> points_;
};

}  // namespace sdsched
