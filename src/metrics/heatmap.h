// Category heatmaps for Figures 4-6: jobs bucketed by (requested nodes x
// runtime), cells holding the mean of a metric; two heatmaps divide
// cell-wise to give the paper's static/SD ratio view.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace sdsched {

class CategoryHeatmap {
 public:
  /// Default buckets: nodes {1, 2-4, 5-16, 17-64, 65-256, 257-1024, >1024},
  /// runtime {<=5m, <=30m, <=2h, <=4h, <=12h, <=1d, >1d} — covering the
  /// paper's "up to 4 hours / up to 512 nodes" talking points.
  CategoryHeatmap();
  CategoryHeatmap(std::vector<int> node_edges, std::vector<SimTime> time_edges);

  using Extractor = std::function<double(const JobRecord&)>;

  /// Accumulate `value(record)` into the record's category.
  void add(const JobRecord& record, double value);

  /// Fill from records with a metric extractor.
  void fill(const std::vector<JobRecord>& records, const Extractor& value);

  [[nodiscard]] std::size_t rows() const noexcept { return node_edges_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return time_edges_.size(); }
  [[nodiscard]] double mean(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::size_t count(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::string row_label(std::size_t row) const;
  [[nodiscard]] std::string col_label(std::size_t col) const;

  /// Cell-wise this/other mean ratio (0 where either side is empty) — the
  /// paper's "ratio between static backfill and SD-Policy" view.
  [[nodiscard]] std::vector<std::vector<double>> ratio(const CategoryHeatmap& other) const;

  /// ASCII rendering of cell means (or of a precomputed ratio grid).
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string render_grid(const std::vector<std::vector<double>>& grid) const;
  /// ASCII rendering of per-cell job counts.
  [[nodiscard]] std::string render_counts() const;

 private:
  [[nodiscard]] std::size_t node_bucket(int nodes) const noexcept;
  [[nodiscard]] std::size_t time_bucket(SimTime runtime) const noexcept;

  std::vector<int> node_edges_;      ///< upper bound per row (last = +inf)
  std::vector<SimTime> time_edges_;  ///< upper bound per col (last = +inf)
  std::vector<std::vector<double>> sums_;
  std::vector<std::vector<std::size_t>> counts_;
};

}  // namespace sdsched
