#include "metrics/collector.h"

#include <algorithm>

namespace sdsched {

void MetricsCollector::on_complete(const Job& job) {
  JobRecord record;
  record.id = job.spec.id;
  record.submit = job.spec.submit;
  record.start = job.start_time;
  record.end = job.end_time;
  record.req_time = job.spec.req_time;
  record.base_runtime = job.spec.base_runtime;
  record.req_cpus = job.spec.req_cpus;
  record.req_nodes = job.spec.req_nodes;
  record.was_guest = job.started_as_guest;
  record.was_mate = job.ever_mate;
  record.reconfigurations = job.shrink_count;
  records_.push_back(record);
}

MetricsSummary MetricsCollector::summarize(int total_cores, double core_seconds,
                                           double energy_kwh) const {
  MetricsSummary summary;
  summary.jobs = records_.size();
  summary.energy_kwh = energy_kwh;
  if (records_.empty()) return summary;

  summary.first_submit = records_.front().submit;
  summary.last_end = records_.front().end;
  double response_sum = 0.0;
  double wait_sum = 0.0;
  double slowdown_sum = 0.0;
  double bounded_sum = 0.0;
  for (const auto& record : records_) {
    summary.first_submit = std::min(summary.first_submit, record.submit);
    summary.last_end = std::max(summary.last_end, record.end);
    response_sum += static_cast<double>(record.response());
    wait_sum += static_cast<double>(record.wait());
    slowdown_sum += record.slowdown();
    bounded_sum += record.bounded_slowdown();
    if (record.was_guest) ++summary.guests;
    if (record.was_mate) ++summary.mates;
  }
  const auto n = static_cast<double>(records_.size());
  summary.makespan = summary.last_end - summary.first_submit;
  summary.avg_response = response_sum / n;
  summary.avg_wait = wait_sum / n;
  summary.avg_slowdown = slowdown_sum / n;
  summary.avg_bounded_slowdown = bounded_sum / n;
  if (total_cores > 0 && summary.makespan > 0) {
    summary.utilization =
        core_seconds / (static_cast<double>(total_cores) *
                        static_cast<double>(summary.makespan));
  }
  return summary;
}

}  // namespace sdsched
