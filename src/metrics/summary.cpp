#include "metrics/summary.h"

#include <sstream>

#include "util/time_utils.h"

namespace sdsched {

std::string to_string(const MetricsSummary& summary) {
  std::ostringstream oss;
  oss << summary.jobs << " jobs, makespan " << format_duration(summary.makespan)
      << ", avg response " << format_duration(static_cast<SimTime>(summary.avg_response))
      << ", avg wait " << format_duration(static_cast<SimTime>(summary.avg_wait))
      << ", avg slowdown " << summary.avg_slowdown << ", utilization "
      << summary.utilization * 100.0 << "%, energy " << summary.energy_kwh << " kWh, guests "
      << summary.guests << ", mates " << summary.mates;
  return oss.str();
}

void to_json(JsonWriter& json, const MetricsSummary& summary) {
  json.begin_object();
  json.field("jobs", summary.jobs);
  json.field("first_submit", summary.first_submit);
  json.field("last_end", summary.last_end);
  json.field("makespan", summary.makespan);
  json.field("avg_response", summary.avg_response);
  json.field("avg_wait", summary.avg_wait);
  json.field("avg_slowdown", summary.avg_slowdown);
  json.field("avg_bounded_slowdown", summary.avg_bounded_slowdown);
  json.field("energy_kwh", summary.energy_kwh);
  json.field("utilization", summary.utilization);
  json.field("guests", summary.guests);
  json.field("mates", summary.mates);
  json.end_object();
}

namespace {
double safe_ratio(double a, double b) noexcept { return b > 0.0 ? a / b : 1.0; }
}  // namespace

NormalizedMetrics normalize(const MetricsSummary& policy,
                            const MetricsSummary& baseline) noexcept {
  NormalizedMetrics norm;
  norm.makespan = safe_ratio(static_cast<double>(policy.makespan),
                             static_cast<double>(baseline.makespan));
  norm.avg_response = safe_ratio(policy.avg_response, baseline.avg_response);
  norm.avg_slowdown = safe_ratio(policy.avg_slowdown, baseline.avg_slowdown);
  norm.avg_wait = safe_ratio(policy.avg_wait, baseline.avg_wait);
  norm.energy = safe_ratio(policy.energy_kwh, baseline.energy_kwh);
  return norm;
}

void to_json(JsonWriter& json, const NormalizedMetrics& normalized) {
  json.begin_object();
  json.field("makespan", normalized.makespan);
  json.field("avg_response", normalized.avg_response);
  json.field("avg_slowdown", normalized.avg_slowdown);
  json.field("avg_wait", normalized.avg_wait);
  json.field("energy", normalized.energy);
  json.end_object();
}

}  // namespace sdsched
