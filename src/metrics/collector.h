// Per-job completion records and the aggregate metrics of §4:
// makespan, average response time, average slowdown, energy.
#pragma once

#include <cstdint>
#include <vector>

#include "job/job.h"

namespace sdsched {

/// Everything the evaluation needs about one completed job.
struct JobRecord {
  JobId id = kInvalidJob;
  SimTime submit = 0;
  SimTime start = 0;
  SimTime end = 0;
  SimTime req_time = 0;
  SimTime base_runtime = 0;
  int req_cpus = 0;
  int req_nodes = 0;
  bool was_guest = false;  ///< scheduled with malleability (shrunk start)
  bool was_mate = false;   ///< shrunk at least once to host a guest
  int reconfigurations = 0;

  [[nodiscard]] SimTime wait() const noexcept { return start - submit; }
  [[nodiscard]] SimTime response() const noexcept { return end - submit; }
  [[nodiscard]] SimTime runtime() const noexcept { return end - start; }
  /// Paper metric: response / static execution time (floored at 1s).
  [[nodiscard]] double slowdown() const noexcept {
    return static_cast<double>(response()) /
           static_cast<double>(std::max<SimTime>(base_runtime, 1));
  }
  /// Bounded slowdown with the conventional 10s threshold.
  [[nodiscard]] double bounded_slowdown(SimTime threshold = 10) const noexcept {
    const auto denom = static_cast<double>(std::max(base_runtime, threshold));
    return std::max(1.0, static_cast<double>(response()) / denom);
  }

  /// Field-wise equality (sweep determinism checks compare whole record
  /// vectors, not just aggregate summaries).
  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

struct MetricsSummary {
  std::size_t jobs = 0;
  SimTime first_submit = 0;
  SimTime last_end = 0;
  SimTime makespan = 0;
  double avg_response = 0.0;
  double avg_wait = 0.0;
  double avg_slowdown = 0.0;
  double avg_bounded_slowdown = 0.0;
  double energy_kwh = 0.0;
  double utilization = 0.0;  ///< busy core-seconds / (cores * makespan)
  std::uint64_t guests = 0;  ///< jobs scheduled with malleability
  std::uint64_t mates = 0;   ///< jobs shrunk at least once
};

class MetricsCollector {
 public:
  void on_complete(const Job& job);

  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept { return records_; }

  /// Aggregate. `total_cores` and `core_seconds`/`energy_kwh` come from the
  /// machine; pass zeros when unknown.
  [[nodiscard]] MetricsSummary summarize(int total_cores, double core_seconds,
                                         double energy_kwh) const;

 private:
  std::vector<JobRecord> records_;
};

}  // namespace sdsched
