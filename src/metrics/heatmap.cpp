#include "metrics/heatmap.h"

#include <limits>
#include <sstream>

#include "util/time_utils.h"

namespace sdsched {

namespace {
constexpr int kIntMax = std::numeric_limits<int>::max();
constexpr SimTime kTimeMax = INT64_MAX / 4;
}  // namespace

CategoryHeatmap::CategoryHeatmap()
    : CategoryHeatmap({1, 4, 16, 64, 256, 1024, kIntMax},
                      {5 * kMinute, 30 * kMinute, 2 * kHour, 4 * kHour, 12 * kHour, kDay,
                       kTimeMax}) {}

CategoryHeatmap::CategoryHeatmap(std::vector<int> node_edges, std::vector<SimTime> time_edges)
    : node_edges_(std::move(node_edges)), time_edges_(std::move(time_edges)) {
  sums_.assign(node_edges_.size(), std::vector<double>(time_edges_.size(), 0.0));
  counts_.assign(node_edges_.size(), std::vector<std::size_t>(time_edges_.size(), 0));
}

std::size_t CategoryHeatmap::node_bucket(int nodes) const noexcept {
  for (std::size_t i = 0; i < node_edges_.size(); ++i) {
    if (nodes <= node_edges_[i]) return i;
  }
  return node_edges_.size() - 1;
}

std::size_t CategoryHeatmap::time_bucket(SimTime runtime) const noexcept {
  for (std::size_t i = 0; i < time_edges_.size(); ++i) {
    if (runtime <= time_edges_[i]) return i;
  }
  return time_edges_.size() - 1;
}

void CategoryHeatmap::add(const JobRecord& record, double value) {
  const auto row = node_bucket(record.req_nodes);
  const auto col = time_bucket(record.base_runtime);
  sums_[row][col] += value;
  ++counts_[row][col];
}

void CategoryHeatmap::fill(const std::vector<JobRecord>& records, const Extractor& value) {
  for (const auto& record : records) add(record, value(record));
}

double CategoryHeatmap::mean(std::size_t row, std::size_t col) const {
  const auto count = counts_.at(row).at(col);
  return count == 0 ? 0.0 : sums_[row][col] / static_cast<double>(count);
}

std::size_t CategoryHeatmap::count(std::size_t row, std::size_t col) const {
  return counts_.at(row).at(col);
}

std::string CategoryHeatmap::row_label(std::size_t row) const {
  std::ostringstream oss;
  const int lo = row == 0 ? 1 : node_edges_[row - 1] + 1;
  if (node_edges_[row] == kIntMax) {
    oss << "> " << node_edges_[row - 1] << " nodes";
  } else if (lo == node_edges_[row]) {
    oss << lo << " node" << (lo > 1 ? "s" : "");
  } else {
    oss << lo << "-" << node_edges_[row] << " nodes";
  }
  return oss.str();
}

std::string CategoryHeatmap::col_label(std::size_t col) const {
  if (col + 1 == time_edges_.size()) {
    return "> " + format_duration(time_edges_[col - 1]);
  }
  return "<= " + format_duration(time_edges_[col]);
}

std::vector<std::vector<double>> CategoryHeatmap::ratio(const CategoryHeatmap& other) const {
  std::vector<std::vector<double>> grid(rows(), std::vector<double>(cols(), 0.0));
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      const double ours = mean(r, c);
      const double theirs = other.mean(r, c);
      if (counts_[r][c] > 0 && other.counts_[r][c] > 0 && theirs > 0.0) {
        grid[r][c] = ours / theirs;
      }
    }
  }
  return grid;
}

std::string CategoryHeatmap::render() const {
  std::vector<std::vector<double>> grid(rows(), std::vector<double>(cols(), 0.0));
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) grid[r][c] = mean(r, c);
  }
  return render_grid(grid);
}

std::string CategoryHeatmap::render_counts() const {
  std::ostringstream oss;
  oss << std::string(18, ' ');
  for (std::size_t c = 0; c < cols(); ++c) {
    std::string label = col_label(c);
    label.resize(12, ' ');
    oss << label;
  }
  oss << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    std::string label = row_label(r);
    label.resize(18, ' ');
    oss << label;
    for (std::size_t c = 0; c < cols(); ++c) {
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%-12zu", counts_[r][c]);
      oss << cell;
    }
    oss << '\n';
  }
  return oss.str();
}

std::string CategoryHeatmap::render_grid(const std::vector<std::vector<double>>& grid) const {
  std::ostringstream oss;
  oss << std::string(18, ' ');
  for (std::size_t c = 0; c < cols(); ++c) {
    std::string label = col_label(c);
    label.resize(12, ' ');
    oss << label;
  }
  oss << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    std::string label = row_label(r);
    label.resize(18, ' ');
    oss << label;
    for (std::size_t c = 0; c < cols(); ++c) {
      char cell[32];
      if (counts_[r][c] == 0 && grid[r][c] == 0.0) {
        std::snprintf(cell, sizeof(cell), "%-12s", "-");
      } else {
        std::snprintf(cell, sizeof(cell), "%-12.2f", grid[r][c]);
      }
      oss << cell;
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace sdsched
