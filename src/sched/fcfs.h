// Strict first-come-first-served scheduler (no backfill). The simplest
// baseline: the head job blocks the queue until it fits.
#pragma once

#include "sched/scheduler.h"

namespace sdsched {

class FcfsScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;

  void schedule_pass(SimTime now) override;
  [[nodiscard]] const char* name() const noexcept override { return "fcfs"; }
};

}  // namespace sdsched
