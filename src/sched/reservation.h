// Node-availability profile ("map of jobs reservations in time", §3.1).
//
// A piecewise-constant step function of free whole nodes over time, split
// into two layers so scheduling passes stop rebuilding the world:
//
//  * a **base snapshot** — flat, sorted, cumulative free-count breakpoints
//    describing the running jobs' predicted releases. Installed via
//    set_base() from the ClusterStateIndex (or a full scan) and *reused*
//    across passes while the cluster is unchanged;
//  * a **pass overlay** — a small sorted delta vector holding only the
//    reservations the current pass itself places (reserve()/release()).
//    clear_overlay() is the per-pass undo log: O(overlay), not O(world).
//
// Queries merge-walk both layers. Both the backfill baseline and the
// SD-Policy's static_end estimate (Listing 1) read this profile.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/time_utils.h"

namespace sdsched {

class ReservationProfile {
 public:
  ReservationProfile() = default;

  /// Profile with `capacity` nodes free everywhere (before carving).
  explicit ReservationProfile(int capacity) noexcept : capacity_(capacity) {}

  [[nodiscard]] int capacity() const noexcept { return capacity_; }

  /// Install the base snapshot: `busy_groups` is an ascending (free_at,
  /// nodes) sequence meaning `nodes` nodes stay busy over [origin, free_at).
  /// Every free_at must be > origin. Clears the overlay.
  void set_base(int capacity, SimTime origin,
                const std::vector<std::pair<SimTime, int>>& busy_groups);

  /// Drop the pass's own reservations, keeping the base snapshot.
  void clear_overlay() noexcept { overlay_.clear(); }

  /// Remove `nodes` of availability over [start, end). end may be kForever.
  /// Callers reserve only what earliest_start() said was free.
  void reserve(SimTime start, SimTime end, int nodes);

  /// Add `nodes` of availability over [start, end) — used when a running
  /// job's predicted end moves later (mates stretched by malleability).
  void release(SimTime start, SimTime end, int nodes);

  /// Free nodes at time t.
  [[nodiscard]] int available_at(SimTime t) const;

  /// Minimum free-node count over the whole window [start, start + duration)
  /// (duration clamped to 1) — the largest request that could run there.
  [[nodiscard]] int min_available(SimTime start, SimTime duration) const;

  /// Earliest t >= not_before with `nodes` free during the whole window
  /// [t, t + duration). Always exists (profiles drain back to capacity)
  /// unless nodes > capacity, which returns kNever.
  [[nodiscard]] SimTime earliest_start(int nodes, SimTime duration, SimTime not_before) const;

  /// Breakpoints currently held (base + overlay) — observability for the
  /// scheduler microbench.
  [[nodiscard]] std::size_t breakpoint_count() const noexcept {
    return base_.size() + overlay_.size();
  }

  /// Earliest base release (kForever when the base is flat). A snapshot
  /// built at pass time t0 stays valid at a later pass time t1 only while
  /// t1 < first_release_time(): the first release crossing `now` re-clamps
  /// overdue occupants, so the scheduler must refresh its base then.
  [[nodiscard]] SimTime first_release_time() const noexcept {
    return base_.size() > 1 ? base_[1].time : kForever;
  }

  static constexpr SimTime kForever = INT64_MAX / 4;
  static constexpr SimTime kNever = -1;

 private:
  struct Step {
    SimTime time;  ///< free count holds from this time until the next step
    int free;      ///< base free nodes (before overlay deltas)
  };

  /// Base free count at time t (capacity before the first step).
  [[nodiscard]] int base_free_at(SimTime t, std::size_t* step_index = nullptr) const;

  /// One sweep over the merged (base, overlay) step function. All three
  /// queries share it: seed with sweep_at(t), then repeatedly take
  /// next_breakpoint() (kForever when exhausted) and advance_to() it.
  struct Sweep {
    std::size_t bi = 0;   ///< next base step
    std::size_t oi = 0;   ///< next overlay delta
    int base_free = 0;
    int overlay_sum = 0;
    [[nodiscard]] int free() const noexcept { return base_free + overlay_sum; }
  };
  [[nodiscard]] Sweep sweep_at(SimTime t) const;
  [[nodiscard]] SimTime next_breakpoint(const Sweep& sweep) const noexcept;
  void advance_to(Sweep& sweep, SimTime t) const noexcept;

  void add_overlay_delta(SimTime start, SimTime end, int delta);

  int capacity_ = 0;
  std::vector<Step> base_;                            ///< sorted, cumulative
  std::vector<std::pair<SimTime, int>> overlay_;      ///< sorted (time, delta)
};

}  // namespace sdsched
