// Node-availability profile ("map of jobs reservations in time", §3.1).
//
// A piecewise-constant step function of free whole nodes over time. Built
// fresh at the start of every scheduling pass from running jobs' predicted
// end times, then consumed/extended as the pass starts jobs and places
// reservations. Both the backfill baseline and the SD-Policy's static_end
// estimate (Listing 1) read it.
#pragma once

#include <map>

#include "util/time_utils.h"

namespace sdsched {

class ReservationProfile {
 public:
  /// Profile with `capacity` nodes free everywhere (before carving).
  explicit ReservationProfile(int capacity) noexcept : capacity_(capacity) {}

  [[nodiscard]] int capacity() const noexcept { return capacity_; }

  /// Remove `nodes` of availability over [start, end). end may be kForever.
  /// Asserts availability never drops below zero (callers reserve only what
  /// earliest_start said was free).
  void reserve(SimTime start, SimTime end, int nodes);

  /// Add `nodes` of availability over [start, end) — used when a running
  /// job's predicted end moves later (mates stretched by malleability).
  void release(SimTime start, SimTime end, int nodes);

  /// Free nodes at time t.
  [[nodiscard]] int available_at(SimTime t) const;

  /// Earliest t >= not_before with `nodes` free during the whole window
  /// [t, t + duration). Always exists (profiles drain back to capacity)
  /// unless nodes > capacity, which returns kNever.
  [[nodiscard]] SimTime earliest_start(int nodes, SimTime duration, SimTime not_before) const;

  static constexpr SimTime kForever = INT64_MAX / 4;
  static constexpr SimTime kNever = -1;

 private:
  void add_delta(SimTime start, SimTime end, int delta);

  int capacity_;
  // delta(t): change in free-node count at time t; free(t) = capacity +
  // sum of deltas at times <= t.
  std::map<SimTime, int> deltas_;
};

}  // namespace sdsched
