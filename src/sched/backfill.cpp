#include "sched/backfill.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "api/report.h"
#include "cluster/cluster_state_index.h"
#include "cluster/sharded_cluster_index.h"
#include "util/logging.h"

namespace sdsched {

bool BackfillScheduler::try_malleable(SimTime /*now*/, Job& /*job*/, SimTime /*est_start*/,
                                      ReservationProfile& /*profile*/) {
  return false;  // static baseline: no malleability
}

void BackfillScheduler::annotate(SimulationReport& report) const {
  report.cancelled_jobs = cancelled_;
}

int BackfillScheduler::eligible_nodes(const JobConstraints& constraints) const {
  return cluster_index_ != nullptr ? cluster_index_->eligible_node_count(constraints)
                                   : machine_.eligible_node_count(constraints);
}

ReservationProfile& BackfillScheduler::pass_profile(SimTime now) {
  // A new pass invalidates the per-class layers and the reservation log
  // they replay; the shared base below survives when nothing changed.
  class_layers_.clear();
  pass_reserves_.clear();

  if (cluster_index_ != nullptr) {
#ifdef SDSCHED_INDEX_CROSSCHECK
    std::string diagnosis;
    const bool consistent = sharded_index_ != nullptr
                                ? sharded_index_->check_consistent(&diagnosis)
                                : cluster_index_->check_consistent(&diagnosis);
    if (!consistent) log_error("backfill", "cluster index inconsistent: ", diagnosis);
    assert(consistent && "ClusterStateIndex diverged from the machine scan");
#endif
    if (profile_valid_ && profile_version_ == cluster_index_->version() &&
        profile_.first_release_time() > now) {
      // Nothing changed since the last pass and no release crossed `now`:
      // the base snapshot is still exact. Drop only the pass overlay.
      profile_.clear_overlay();
      ++profile_reuses_;
      return profile_;
    }
    if (sharded_index_ != nullptr && sharded_index_->shard_count() > 1) {
      // Assemble the base from the shards' release maps (ordered merge,
      // byte-identical groups — crosschecked internally).
      sharded_index_->busy_groups_sharded(now, scratch_groups_);
    } else {
      cluster_index_->busy_groups(now, scratch_groups_);
    }
    profile_.set_base(machine_.node_count(), now, scratch_groups_);
    profile_version_ = cluster_index_->version();
    profile_valid_ = true;
    ++profile_rebuilds_;
    return profile_;
  }

  // No index attached (standalone scheduler): full scan, exactly the
  // historical build. A shared node frees when its *last* occupant's
  // predicted end passes; overdue jobs are assumed imminent (now + 1).
  std::map<SimTime, int> frees;
  for (int id = 0; id < machine_.node_count(); ++id) {
    const Node& node = machine_.node(id);
    if (node.empty()) continue;
    SimTime free_at = now + 1;
    for (const auto& occ : node.occupants()) {
      free_at = std::max(free_at, jobs_.at(occ.job).predicted_end);
    }
    ++frees[free_at];
  }
  scratch_groups_.assign(frees.begin(), frees.end());
  profile_.set_base(machine_.node_count(), now, scratch_groups_);
  profile_valid_ = false;
  ++profile_rebuilds_;
  return profile_;
}

ReservationProfile* BackfillScheduler::class_profile(SimTime now,
                                                     const JobConstraints& constraints) {
  if (cluster_index_ == nullptr || constraints.unconstrained()) return nullptr;
  const int classes = cluster_index_->class_count();
  if (classes <= 1 || classes > 64) return nullptr;  // class-blind profile is exact / no mask
  const std::uint64_t mask = cluster_index_->eligible_class_mask(constraints);
  const std::uint64_t all =
      classes == 64 ? ~0ull : ((1ull << static_cast<unsigned>(classes)) - 1);
  if (mask == all) return nullptr;  // attribute filters do not bite (e.g. contiguous-only)
  for (ClassLayer& layer : class_layers_) {
    if (layer.mask == mask) return &layer.profile;
  }
  ClassLayer layer;
  layer.mask = mask;
  if (sharded_index_ != nullptr && sharded_index_->shard_count() > 1) {
    sharded_index_->busy_groups_for_mask_sharded(mask, now, scratch_groups_);
  } else {
    cluster_index_->busy_groups_for_mask(mask, now, scratch_groups_);
  }
  layer.profile.set_base(cluster_index_->node_count_for_mask(mask), now, scratch_groups_);
  // Replay what this pass reserved with no machine-state backing (the base
  // snapshot above already contains every start the pass applied — see
  // reserve_window). Reservations are class-blind node counts, so the
  // layer conservatively assumes they consume eligible nodes (estimates
  // may come out later than necessary, never too early — actual starts are
  // still gated by find_free_nodes).
  for (const WindowReserve& r : pass_reserves_) {
    layer.profile.reserve(r.start, r.end, r.nodes);
  }
  class_layers_.push_back(std::move(layer));
  ++class_layer_builds_;
  return &class_layers_.back().profile;
}

void BackfillScheduler::reserve_window(SimTime start, SimTime end, int nodes,
                                       bool occupancy_backed) {
  profile_.reserve(start, end, nodes);
  if (!occupancy_backed) pass_reserves_.push_back(WindowReserve{start, end, nodes});
  // Layers already built predate this step either way: mirror into them.
  for (ClassLayer& layer : class_layers_) {
    layer.profile.reserve(start, end, nodes);
  }
}

void BackfillScheduler::schedule_pass(SimTime now) {
  if (queue_.empty()) return;
  ReservationProfile& profile = pass_profile(now);
  int reservations = 0;
  int examined = 0;
  for (const JobId id : scheduling_order(now)) {
    if (examined++ >= config_.bf_max_jobs) break;
    Job& job = jobs_.at(id);
    const int req_nodes = job.spec.req_nodes;
    if (req_nodes > eligible_nodes(job.spec.constraints)) {
      // No set of nodes can ever satisfy the request (§3.2.4 filtering).
      log_warn("backfill", "job ", id, " can never fit its constraints; cancelling");
      job.state = JobState::Cancelled;
      queue_.remove(id);
      ++cancelled_;
      continue;
    }
    const SimTime planned = effective_req_time(job.spec);
    SimTime est = profile.earliest_start(req_nodes, planned, now);
    if (est == ReservationProfile::kNever) {
      // Larger than the machine (cannot happen for prepared workloads).
      log_warn("backfill", "job ", id, " can never fit; cancelling");
      job.state = JobState::Cancelled;
      queue_.remove(id);
      ++cancelled_;
      continue;
    }
    if (!job.spec.constraints.unconstrained()) {
      // The shared profile is class-blind; the class layer knows how many
      // *eligible* nodes are free over the window. Take the later of the
      // two answers — exact where the counts model applies.
      if (ReservationProfile* layer = class_profile(now, job.spec.constraints)) {
        const SimTime class_est = layer->earliest_start(req_nodes, planned, now);
        assert(class_est != ReservationProfile::kNever &&
               "eligible-node cancel check bounds the class-layer capacity");
        est = std::max(est, class_est);
      }
    }
    if (est == now) {
      const auto nodes = find_free_nodes(req_nodes, job.spec.constraints);
      if (nodes) {
        queue_.remove(id);
        reserve_window(now, now + std::max<SimTime>(planned, 1), req_nodes,
                       /*occupancy_backed=*/true);
        executor_.start_static(id, *nodes);
        on_job_started(id);
        continue;
      }
      if (job.spec.constraints.unconstrained()) {
        // The profile's availability at `now` mirrors the machine exactly
        // for unconstrained jobs; divergence means kernel bookkeeping broke.
        log_error("backfill", "profile/machine divergence for job ", id);
        continue;
      }
      // Constrained job the counts model could not protect: with a class
      // layer this is only reachable for contiguous requests (fragmentation
      // is invisible to per-class counts); without an index the class-blind
      // profile overestimated availability. Hold the nodes conservatively
      // and retry next pass.
      if (reservations < config_.reservation_depth) {
        reserve_window(now, now + std::max<SimTime>(planned, 1), req_nodes,
                       /*occupancy_backed=*/false);
        ++reservations;
      }
      continue;
    }
    if (try_malleable(now, job, est, profile)) {
      queue_.remove(id);
      continue;
    }
    if (reservations < config_.reservation_depth) {
      reserve_window(est, est + std::max<SimTime>(planned, 1), req_nodes,
                     /*occupancy_backed=*/false);
      ++reservations;
    }
  }
}

}  // namespace sdsched
