#include "sched/backfill.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "api/report.h"
#include "cluster/cluster_state_index.h"
#include "util/logging.h"

namespace sdsched {

bool BackfillScheduler::try_malleable(SimTime /*now*/, Job& /*job*/, SimTime /*est_start*/,
                                      ReservationProfile& /*profile*/) {
  return false;  // static baseline: no malleability
}

void BackfillScheduler::annotate(SimulationReport& report) const {
  report.cancelled_jobs = cancelled_;
}

int BackfillScheduler::eligible_nodes(const JobConstraints& constraints) const {
  return cluster_index_ != nullptr ? cluster_index_->eligible_node_count(constraints)
                                   : machine_.eligible_node_count(constraints);
}

ReservationProfile& BackfillScheduler::pass_profile(SimTime now) {
  if (cluster_index_ != nullptr) {
#ifdef SDSCHED_INDEX_CROSSCHECK
    std::string diagnosis;
    const bool consistent = cluster_index_->check_consistent(&diagnosis);
    if (!consistent) log_error("backfill", "cluster index inconsistent: ", diagnosis);
    assert(consistent && "ClusterStateIndex diverged from the machine scan");
#endif
    if (profile_valid_ && profile_version_ == cluster_index_->version() &&
        profile_.first_release_time() > now) {
      // Nothing changed since the last pass and no release crossed `now`:
      // the base snapshot is still exact. Drop only the pass overlay.
      profile_.clear_overlay();
      ++profile_reuses_;
      return profile_;
    }
    cluster_index_->busy_groups(now, scratch_groups_);
    profile_.set_base(machine_.node_count(), now, scratch_groups_);
    profile_version_ = cluster_index_->version();
    profile_valid_ = true;
    ++profile_rebuilds_;
    return profile_;
  }

  // No index attached (standalone scheduler): full scan, exactly the
  // historical build. A shared node frees when its *last* occupant's
  // predicted end passes; overdue jobs are assumed imminent (now + 1).
  std::map<SimTime, int> frees;
  for (int id = 0; id < machine_.node_count(); ++id) {
    const Node& node = machine_.node(id);
    if (node.empty()) continue;
    SimTime free_at = now + 1;
    for (const auto& occ : node.occupants()) {
      free_at = std::max(free_at, jobs_.at(occ.job).predicted_end);
    }
    ++frees[free_at];
  }
  scratch_groups_.assign(frees.begin(), frees.end());
  profile_.set_base(machine_.node_count(), now, scratch_groups_);
  profile_valid_ = false;
  ++profile_rebuilds_;
  return profile_;
}

void BackfillScheduler::schedule_pass(SimTime now) {
  if (queue_.empty()) return;
  ReservationProfile& profile = pass_profile(now);
  int reservations = 0;
  int examined = 0;
  for (const JobId id : scheduling_order(now)) {
    if (examined++ >= config_.bf_max_jobs) break;
    Job& job = jobs_.at(id);
    const int req_nodes = job.spec.req_nodes;
    if (req_nodes > eligible_nodes(job.spec.constraints)) {
      // No set of nodes can ever satisfy the request (§3.2.4 filtering).
      log_warn("backfill", "job ", id, " can never fit its constraints; cancelling");
      job.state = JobState::Cancelled;
      queue_.remove(id);
      ++cancelled_;
      continue;
    }
    const SimTime planned = effective_req_time(job.spec);
    const SimTime est = profile.earliest_start(req_nodes, planned, now);
    if (est == ReservationProfile::kNever) {
      // Larger than the machine (cannot happen for prepared workloads).
      log_warn("backfill", "job ", id, " can never fit; cancelling");
      job.state = JobState::Cancelled;
      queue_.remove(id);
      ++cancelled_;
      continue;
    }
    if (est == now) {
      const auto nodes = machine_.find_free_nodes(req_nodes, &job.spec.constraints);
      if (nodes) {
        queue_.remove(id);
        profile.reserve(now, now + std::max<SimTime>(planned, 1), req_nodes);
        executor_.start_static(id, *nodes);
        continue;
      }
      if (job.spec.constraints.unconstrained()) {
        // The profile's availability at `now` mirrors the machine exactly
        // for unconstrained jobs; divergence means kernel bookkeeping broke.
        log_error("backfill", "profile/machine divergence for job ", id);
        continue;
      }
      // Constrained job: the shared (class-blind) profile overestimated its
      // availability. Hold the nodes conservatively and retry next pass.
      if (reservations < config_.reservation_depth) {
        profile.reserve(now, now + std::max<SimTime>(planned, 1), req_nodes);
        ++reservations;
      }
      continue;
    }
    if (try_malleable(now, job, est, profile)) {
      queue_.remove(id);
      continue;
    }
    if (reservations < config_.reservation_depth) {
      profile.reserve(est, est + std::max<SimTime>(planned, 1), req_nodes);
      ++reservations;
    }
  }
}

}  // namespace sdsched
