#include "sched/backfill.h"

#include <algorithm>
#include <map>

#include "api/report.h"
#include "util/logging.h"

namespace sdsched {

bool BackfillScheduler::try_malleable(SimTime /*now*/, Job& /*job*/, SimTime /*est_start*/,
                                      ReservationProfile& /*profile*/) {
  return false;  // static baseline: no malleability
}

void BackfillScheduler::annotate(SimulationReport& report) const {
  report.cancelled_jobs = cancelled_;
}

ReservationProfile BackfillScheduler::build_profile(SimTime now) const {
  ReservationProfile profile(machine_.node_count());
  // A shared node frees when its *last* occupant's predicted end passes.
  // Group nodes by free time to keep profile edits small.
  std::map<SimTime, int> frees;
  for (int id = 0; id < machine_.node_count(); ++id) {
    const Node& node = machine_.node(id);
    if (node.empty()) continue;
    SimTime free_at = now + 1;  // overdue jobs: assume imminent completion
    for (const auto& occ : node.occupants()) {
      free_at = std::max(free_at, jobs_.at(occ.job).predicted_end);
    }
    ++frees[free_at];
  }
  for (const auto& [free_at, count] : frees) {
    profile.reserve(now, free_at, count);
  }
  return profile;
}

void BackfillScheduler::schedule_pass(SimTime now) {
  if (queue_.empty()) return;
  ReservationProfile profile = build_profile(now);
  int reservations = 0;
  int examined = 0;
  for (const JobId id : scheduling_order(now)) {
    if (examined++ >= config_.bf_max_jobs) break;
    Job& job = jobs_.at(id);
    const int req_nodes = job.spec.req_nodes;
    if (req_nodes > machine_.eligible_node_count(job.spec.constraints)) {
      // No set of nodes can ever satisfy the request (§3.2.4 filtering).
      log_warn("backfill", "job ", id, " can never fit its constraints; cancelling");
      job.state = JobState::Cancelled;
      queue_.remove(id);
      ++cancelled_;
      continue;
    }
    const SimTime planned = effective_req_time(job.spec);
    const SimTime est = profile.earliest_start(req_nodes, planned, now);
    if (est == ReservationProfile::kNever) {
      // Larger than the machine (cannot happen for prepared workloads).
      log_warn("backfill", "job ", id, " can never fit; cancelling");
      job.state = JobState::Cancelled;
      queue_.remove(id);
      ++cancelled_;
      continue;
    }
    if (est == now) {
      const auto nodes = machine_.find_free_nodes(req_nodes, &job.spec.constraints);
      if (nodes) {
        queue_.remove(id);
        profile.reserve(now, now + std::max<SimTime>(planned, 1), req_nodes);
        executor_.start_static(id, *nodes);
        continue;
      }
      if (job.spec.constraints.unconstrained()) {
        // The profile's availability at `now` mirrors the machine exactly
        // for unconstrained jobs; divergence means kernel bookkeeping broke.
        log_error("backfill", "profile/machine divergence for job ", id);
        continue;
      }
      // Constrained job: the shared (class-blind) profile overestimated its
      // availability. Hold the nodes conservatively and retry next pass.
      if (reservations < config_.reservation_depth) {
        profile.reserve(now, now + std::max<SimTime>(planned, 1), req_nodes);
        ++reservations;
      }
      continue;
    }
    if (try_malleable(now, job, est, profile)) {
      queue_.remove(id);
      continue;
    }
    if (reservations < config_.reservation_depth) {
      profile.reserve(est, est + std::max<SimTime>(planned, 1), req_nodes);
      ++reservations;
    }
  }
}

}  // namespace sdsched
