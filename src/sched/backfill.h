// Static backfill scheduler (the paper's baseline, and the base class of
// SD-Policy).
//
// Every pass rebuilds the reservation profile from running jobs' predicted
// end times (start + requested time + accrued malleability increases), then
// walks the wait queue in priority order:
//   * a job whose earliest feasible start is *now* starts immediately;
//   * otherwise the policy hook try_malleable() may co-schedule it
//     (SD-Policy overrides this; the static baseline declines);
//   * otherwise the job receives a reservation (up to reservation_depth,
//     i.e. EASY with depth 1, conservative-ish with more), which later jobs
//     in the same pass must not delay.
// Rebuilding per pass matches SLURM's backfill cycle semantics.
#pragma once

#include "sched/reservation.h"
#include "sched/scheduler.h"

namespace sdsched {

class BackfillScheduler : public Scheduler {
 public:
  using Scheduler::Scheduler;

  void schedule_pass(SimTime now) override;
  [[nodiscard]] const char* name() const noexcept override { return "backfill"; }
  void annotate(SimulationReport& report) const override;

  /// Jobs dropped because they can never fit the machine.
  [[nodiscard]] std::uint64_t cancelled_jobs() const noexcept { return cancelled_; }

 protected:
  /// Policy hook: attempt a malleable start for `job`, whose statically
  /// estimated start is `est_start` (> now). Implementations must apply the
  /// start through the executor, keep `profile` consistent (extend mates'
  /// occupancy, reserve free nodes they consume) and return true.
  virtual bool try_malleable(SimTime now, Job& job, SimTime est_start,
                             ReservationProfile& profile);

  /// Availability profile from current machine + predicted ends.
  [[nodiscard]] ReservationProfile build_profile(SimTime now) const;

 private:
  std::uint64_t cancelled_ = 0;
};

}  // namespace sdsched
