// Static backfill scheduler (the paper's baseline, and the base class of
// SD-Policy).
//
// Every pass refreshes the reservation profile — the base snapshot comes
// from the ClusterStateIndex and is *reused* across passes while the
// cluster is unchanged (O(1)); only the pass's own reservations (a small
// overlay) are dropped and re-derived. The pass then walks the wait queue
// in priority order:
//   * a job whose earliest feasible start is *now* starts immediately;
//   * otherwise the policy hook try_malleable() may co-schedule it
//     (SD-Policy overrides this; the static baseline declines);
//   * otherwise the job receives a reservation (up to reservation_depth,
//     i.e. EASY with depth 1, conservative-ish with more), which later jobs
//     in the same pass must not delay.
// The resulting decisions are identical to the historical rebuild-per-pass
// scheme (SLURM backfill-cycle semantics); only the cost changed.
#pragma once

#include <utility>
#include <vector>

#include "sched/reservation.h"
#include "sched/scheduler.h"

namespace sdsched {

class BackfillScheduler : public Scheduler {
 public:
  using Scheduler::Scheduler;

  void schedule_pass(SimTime now) override;
  [[nodiscard]] const char* name() const noexcept override { return "backfill"; }
  void annotate(SimulationReport& report) const override;

  /// Jobs dropped because they can never fit the machine.
  [[nodiscard]] std::uint64_t cancelled_jobs() const noexcept { return cancelled_; }

  /// Base-snapshot refreshes skipped because the cluster was unchanged
  /// since the previous pass (observability for the microbench).
  [[nodiscard]] std::uint64_t profile_reuses() const noexcept { return profile_reuses_; }
  [[nodiscard]] std::uint64_t profile_rebuilds() const noexcept { return profile_rebuilds_; }

  /// Breakpoints currently held by the pass profile (bench observability).
  [[nodiscard]] std::size_t profile_breakpoints() const noexcept {
    return profile_.breakpoint_count();
  }

 protected:
  /// Policy hook: attempt a malleable start for `job`, whose statically
  /// estimated start is `est_start` (> now). Implementations must apply the
  /// start through the executor, keep `profile` consistent (extend mates'
  /// occupancy, reserve free nodes they consume) and return true.
  virtual bool try_malleable(SimTime now, Job& job, SimTime est_start,
                             ReservationProfile& profile);

  /// The pass profile: base snapshot refreshed only when the cluster index
  /// reports a change (or a release breakpoint crossed `now`), overlay
  /// cleared. Without an index, falls back to the full machine scan.
  [[nodiscard]] ReservationProfile& pass_profile(SimTime now);

  /// Eligible-node count for constraint filtering: O(attribute classes)
  /// through the index, O(nodes) through the machine without one.
  [[nodiscard]] int eligible_nodes(const JobConstraints& constraints) const;

 private:
  std::uint64_t cancelled_ = 0;
  std::uint64_t profile_reuses_ = 0;
  std::uint64_t profile_rebuilds_ = 0;

  ReservationProfile profile_;
  std::uint64_t profile_version_ = 0;  ///< index version the base reflects
  bool profile_valid_ = false;
  std::vector<std::pair<SimTime, int>> scratch_groups_;  ///< reused allocation
};

}  // namespace sdsched
