// Static backfill scheduler (the paper's baseline, and the base class of
// SD-Policy).
//
// Every pass refreshes the reservation profile — the base snapshot comes
// from the ClusterStateIndex and is *reused* across passes while the
// cluster is unchanged (O(1)); only the pass's own reservations (a small
// overlay) are dropped and re-derived. The pass then walks the wait queue
// in priority order:
//   * a job whose earliest feasible start is *now* starts immediately;
//   * otherwise the policy hook try_malleable() may co-schedule it
//     (SD-Policy overrides this; the static baseline declines);
//   * otherwise the job receives a reservation (up to reservation_depth,
//     i.e. EASY with depth 1, conservative-ish with more), which later jobs
//     in the same pass must not delay.
// The resulting decisions are identical to the historical rebuild-per-pass
// scheme (SLURM backfill-cycle semantics); only the cost changed.
//
// Constrained jobs additionally read a per-attribute-class profile layer:
// the shared profile is class-blind, so a job whose constraints exclude
// part of the machine used to see over-optimistic earliest starts and fall
// back to a conservative hold-and-retry when the promised nodes turned out
// ineligible. With a cluster index attached, class_profile() assembles (per
// pass, lazily, cached per eligible-class mask) a profile over just the
// eligible classes from the index's per-class release groups; constrained
// estimates take the max of the shared and class-restricted answers, which
// eliminates the hold-and-retry for attribute-constrained jobs (contiguity
// is not modelled by counts, so contiguous requests keep the fallback).
// Pass reservations are mirrored into every built layer (conservatively
// class-blind: a reservation may consume eligible nodes, so layers assume
// it does). Unconstrained workloads never build a layer and behave — and
// decide — exactly as before.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sched/reservation.h"
#include "sched/scheduler.h"

namespace sdsched {

class BackfillScheduler : public Scheduler {
 public:
  using Scheduler::Scheduler;

  void schedule_pass(SimTime now) override;
  [[nodiscard]] const char* name() const noexcept override { return "backfill"; }
  void annotate(SimulationReport& report) const override;

  /// Jobs dropped because they can never fit the machine.
  [[nodiscard]] std::uint64_t cancelled_jobs() const noexcept { return cancelled_; }

  /// Base-snapshot refreshes skipped because the cluster was unchanged
  /// since the previous pass (observability for the microbench).
  [[nodiscard]] std::uint64_t profile_reuses() const noexcept { return profile_reuses_; }
  [[nodiscard]] std::uint64_t profile_rebuilds() const noexcept { return profile_rebuilds_; }

  /// Per-class profile layers assembled for constrained jobs (observability).
  [[nodiscard]] std::uint64_t class_layer_builds() const noexcept {
    return class_layer_builds_;
  }

  /// Breakpoints currently held by the pass profile (bench observability).
  [[nodiscard]] std::size_t profile_breakpoints() const noexcept {
    return profile_.breakpoint_count();
  }

 protected:
  /// Policy hook: attempt a malleable start for `job`, whose statically
  /// estimated start is `est_start` (> now). Implementations must apply the
  /// start through the executor, keep `profile` consistent (extend mates'
  /// occupancy, reserve free nodes they consume — via reserve_window so the
  /// class layers stay in sync) and return true.
  virtual bool try_malleable(SimTime now, Job& job, SimTime est_start,
                             ReservationProfile& profile);

  /// The pass profile: base snapshot refreshed only when the cluster index
  /// reports a change (or a release breakpoint crossed `now`), overlay
  /// cleared. Without an index, falls back to the full machine scan.
  [[nodiscard]] ReservationProfile& pass_profile(SimTime now);

  /// Eligible-node count for constraint filtering: O(attribute classes)
  /// through the index, O(nodes) through the machine without one.
  [[nodiscard]] int eligible_nodes(const JobConstraints& constraints) const;

  /// The per-pass profile layer restricted to `constraints`' eligible
  /// attribute classes, or nullptr when the class-blind profile is already
  /// exact (unconstrained request, single-class machine, attribute filters
  /// matching every class) or no index is attached. Built lazily once per
  /// (pass, eligible-class mask) with this pass's reservations replayed.
  /// The pointer is invalidated by the next class_profile() call.
  [[nodiscard]] ReservationProfile* class_profile(SimTime now,
                                                  const JobConstraints& constraints);

  /// Reserve on the shared pass profile AND mirror into every class layer
  /// already built this pass. All pass reservations must go through here.
  ///
  /// `occupancy_backed` says the reserved window corresponds to a start the
  /// executor applies in this very step (static start, mate stretch, free
  /// nodes a guest borrows): the cluster index reflects it from the moment
  /// the start lands, so a class layer built *later* in the pass already
  /// sees it in its base snapshot and must NOT replay it — only windows
  /// with no machine-state backing (reservations for future starts, the
  /// contiguous hold-and-retry) go into the replay log.
  void reserve_window(SimTime start, SimTime end, int nodes, bool occupancy_backed);

 private:
  std::uint64_t cancelled_ = 0;
  std::uint64_t profile_reuses_ = 0;
  std::uint64_t profile_rebuilds_ = 0;
  std::uint64_t class_layer_builds_ = 0;

  ReservationProfile profile_;
  std::uint64_t profile_version_ = 0;  ///< index version the base reflects
  bool profile_valid_ = false;
  std::vector<std::pair<SimTime, int>> scratch_groups_;  ///< reused allocation

  struct ClassLayer {
    std::uint64_t mask = 0;  ///< eligible-class bit set this layer covers
    ReservationProfile profile;
  };
  struct WindowReserve {
    SimTime start;
    SimTime end;
    int nodes;
  };
  std::vector<ClassLayer> class_layers_;     ///< this pass's layers (lazily built)
  std::vector<WindowReserve> pass_reserves_; ///< this pass's reservations, in order
};

}  // namespace sdsched
