// Scheduler interface and wiring.
//
// Schedulers decide; the simulation kernel executes. A scheduler receives
// submit/finish notifications and runs scheduling passes; every job start
// goes through the StartExecutor (implemented by api/Simulation), which owns
// progress integration, finish events and metrics. This mirrors the paper's
// split between slurmctld plug-ins (policy) and slurmd/DROM (mechanism).
#pragma once

#include <memory>
#include <vector>

#include "cluster/machine.h"
#include "drom/node_manager.h"
#include "job/job_registry.h"
#include "job/priority.h"
#include "job/wait_queue.h"
#include "model/runtime_predictor.h"
#include "util/time_utils.h"

namespace sdsched {

class ClusterStateIndex;
class ShardedClusterIndex;
struct SimulationReport;

/// A fully costed malleable co-scheduling decision (MateSelector output).
struct MatePlan {
  std::vector<SharePlan> nodes;         ///< per-node placement actions
  std::vector<JobId> mates;             ///< distinct mates, deterministic order
  std::vector<SimTime> mate_increases;  ///< predicted increase per mate (Eq. 6)
  SimTime guest_increase = 0;           ///< predicted guest increase (Eq. 6)
  SimTime guest_duration = 0;           ///< predicted guest wallclock (req/rate)
  double performance_impact = 0.0;      ///< Eq. 1: sum of mate penalties
};

/// Execution callbacks the kernel provides to schedulers.
class StartExecutor {
 public:
  virtual ~StartExecutor() = default;

  /// Start `job` exclusively on `nodes` (whole-node static placement).
  virtual void start_static(JobId job, const std::vector<int>& nodes) = 0;

  /// Start `job` as a malleable guest per `plan` (shrinks the plan's mates).
  virtual void start_guest(JobId job, const MatePlan& plan) = 0;
};

struct SchedConfig {
  /// Queued jobs that receive reservations per pass: 1 = EASY backfill,
  /// larger = conservative-ish (SLURM bf_max_job_test).
  int reservation_depth = 100;
  /// Queued jobs examined per pass (bounds pass cost on deep queues).
  int bf_max_jobs = 1000;
  /// Periodic pass cadence (SLURM bf_interval). 0 disables periodic passes
  /// (passes still run on every submit/finish).
  SimTime bf_interval = 30;
  /// Queue ordering (FCFS = the paper's setting).
  PriorityConfig priority;
};

class Scheduler {
 public:
  explicit Scheduler(Machine& machine, JobRegistry& jobs, StartExecutor& executor,
                     SchedConfig config) noexcept
      : machine_(machine), jobs_(jobs), executor_(executor), config_(config) {
    queue_.configure(config_.priority, &jobs_);
  }
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual void on_submit(JobId job) { queue_.push(job, jobs_.at(job).spec.submit); }
  virtual void on_finish(JobId /*job*/) {}

  /// Run one scheduling pass at time `now` (start everything startable,
  /// honouring policy-specific reservations/malleability).
  virtual void schedule_pass(SimTime now) = 0;

  [[nodiscard]] const WaitQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] const SchedConfig& config() const noexcept { return config_; }
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Contribute policy-specific statistics to the final report (e.g.
  /// backfill's cancelled-job count). Called once by Simulation::run() so
  /// the kernel needs no RTTI on concrete scheduler types.
  virtual void annotate(SimulationReport& /*report*/) const {}

  /// Install an online runtime predictor (paper future work #2); the
  /// scheduler then plans with predictions instead of raw user requests.
  void set_runtime_predictor(const RuntimePredictor* predictor) noexcept {
    predictor_ = predictor;
  }

  /// Install the event-driven cluster index. With it, profile bases are
  /// incremental snapshots, constraint filtering is O(attribute classes)
  /// and free-node picks go through the class-partitioned free-run index;
  /// without it (standalone schedulers in unit tests), passes fall back to
  /// the full machine scan. Virtual so policies can forward the index to
  /// the components they own (SD-Policy hands it to its MateSelector).
  virtual void set_cluster_index(const ClusterStateIndex* index) noexcept {
    cluster_index_ = index;
  }

  /// Install the sharded coordinator (api/Simulation with a ShardConfig).
  /// Also installs its flat parity surface as the cluster index, so every
  /// flat-index fast path keeps working; free-node picks and profile bases
  /// additionally route through the deterministic ordered shard merge when
  /// more than one shard exists. Virtual for the same forwarding reason as
  /// set_cluster_index (SD-Policy hands the shard context to its
  /// MateSelector). Defined in scheduler.cpp (needs the complete type).
  virtual void set_sharded_index(const ShardedClusterIndex* sharded) noexcept;

  /// The scheduler's working estimate of a job's duration: the user request,
  /// or the predictor's refinement when one is installed.
  [[nodiscard]] SimTime effective_req_time(const JobSpec& spec) const {
    return predictor_ != nullptr ? predictor_->predict(spec) : spec.req_time;
  }

 protected:
  /// Lifecycle hook fired by the concrete schedulers right after a start is
  /// applied through the executor (static or guest). Policies that maintain
  /// incremental job sets (SD-Policy's mate registry) override it; paired
  /// with on_finish(), it sees every running-set transition.
  virtual void on_job_started(JobId /*job*/) {}

  /// Free-node picking: popcount/ctz word scans through the class-
  /// partitioned bitmap index when one is attached, the ordered machine
  /// scan otherwise. Identical node ids either way (cross-checked per call
  /// under SDSCHED_INDEX_CROSSCHECK).
  [[nodiscard]] std::optional<std::vector<int>> find_free_nodes(
      int count, const JobConstraints& constraints) const;

  /// Queue view in scheduling order under the configured priority. Cached
  /// inside the WaitQueue: rebuilt only after a push/remove (or, for
  /// time-dependent priorities, when `now` moves), so a pass over an
  /// unchanged queue costs nothing here. The view stays valid while the
  /// pass removes the jobs it starts.
  [[nodiscard]] const std::vector<JobId>& scheduling_order(SimTime now) const {
    return queue_.scheduling_order(now);
  }

  const RuntimePredictor* predictor_ = nullptr;
  const ClusterStateIndex* cluster_index_ = nullptr;
  const ShardedClusterIndex* sharded_index_ = nullptr;
  Machine& machine_;
  JobRegistry& jobs_;
  StartExecutor& executor_;
  SchedConfig config_;
  WaitQueue queue_;
};

}  // namespace sdsched
