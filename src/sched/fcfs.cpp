#include "sched/fcfs.h"

namespace sdsched {

void FcfsScheduler::schedule_pass(SimTime now) {
  while (!queue_.empty()) {
    const JobId head = scheduling_order(now).front();
    const Job& job = jobs_.at(head);
    const auto nodes = machine_.find_free_nodes(job.spec.req_nodes, &job.spec.constraints);
    if (!nodes) return;  // head blocks
    queue_.remove(head);
    executor_.start_static(head, *nodes);
  }
}

}  // namespace sdsched
