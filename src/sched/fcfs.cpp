#include "sched/fcfs.h"

namespace sdsched {

void FcfsScheduler::schedule_pass(SimTime now) {
  if (queue_.empty()) return;
  // One ordered view for the whole pass (priorities are fixed at a given
  // `now`, and removal does not reorder the rest): strict FCFS — the first
  // job that cannot be placed blocks everything behind it.
  for (const JobId id : scheduling_order(now)) {
    const Job& job = jobs_.at(id);
    const auto nodes = find_free_nodes(job.spec.req_nodes, job.spec.constraints);
    if (!nodes) return;  // head blocks
    queue_.remove(id);
    executor_.start_static(id, *nodes);
    on_job_started(id);
  }
}

}  // namespace sdsched
