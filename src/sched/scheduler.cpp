#include "sched/scheduler.h"

// Interface-only translation unit: keeps the vtable anchored here.
