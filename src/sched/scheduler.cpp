#include "sched/scheduler.h"

#include "cluster/cluster_state_index.h"

namespace sdsched {

std::optional<std::vector<int>> Scheduler::find_free_nodes(
    int count, const JobConstraints& constraints) const {
  return pick_free_nodes(machine_, cluster_index_, count, &constraints);
}

}  // namespace sdsched
