#include "sched/scheduler.h"

#include "cluster/cluster_state_index.h"
#include "cluster/sharded_cluster_index.h"

namespace sdsched {

void Scheduler::set_sharded_index(const ShardedClusterIndex* sharded) noexcept {
  sharded_index_ = sharded;
  set_cluster_index(sharded != nullptr ? &sharded->flat() : nullptr);
}

std::optional<std::vector<int>> Scheduler::find_free_nodes(
    int count, const JobConstraints& constraints) const {
  if (sharded_index_ != nullptr && sharded_index_->shard_count() > 1) {
    // Ordered shard merge — byte-identical to the flat pick (crosschecked
    // internally under SDSCHED_INDEX_CROSSCHECK).
    return sharded_index_->find_free_nodes(count, &constraints);
  }
  return pick_free_nodes(machine_, cluster_index_, count, &constraints);
}

}  // namespace sdsched
