#include "sched/reservation.h"

#include <cassert>

namespace sdsched {

void ReservationProfile::add_delta(SimTime start, SimTime end, int delta) {
  if (start >= end || delta == 0) return;
  deltas_[start] += delta;
  if (deltas_[start] == 0) deltas_.erase(start);
  if (end < kForever) {
    deltas_[end] -= delta;
    if (deltas_[end] == 0) deltas_.erase(end);
  }
}

void ReservationProfile::reserve(SimTime start, SimTime end, int nodes) {
  assert(nodes >= 0);
  add_delta(start, end, -nodes);
}

void ReservationProfile::release(SimTime start, SimTime end, int nodes) {
  assert(nodes >= 0);
  add_delta(start, end, nodes);
}

int ReservationProfile::available_at(SimTime t) const {
  int free = capacity_;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    free += delta;
  }
  return free;
}

SimTime ReservationProfile::earliest_start(int nodes, SimTime duration,
                                           SimTime not_before) const {
  if (nodes > capacity_) return kNever;
  if (nodes <= 0) return not_before;
  duration = std::max<SimTime>(duration, 1);

  // Sweep the step function once, tracking the earliest candidate start
  // whose window [candidate, candidate + duration) stays feasible.
  int free = capacity_;
  SimTime candidate = not_before;
  bool feasible = true;  // free >= nodes since `candidate`
  for (const auto& [time, delta] : deltas_) {
    if (feasible && time >= candidate + duration) {
      return candidate;  // window closed before this breakpoint
    }
    free += delta;
    if (time <= not_before) {
      feasible = free >= nodes;  // establishes state at not_before
      candidate = not_before;
      continue;
    }
    if (free >= nodes) {
      if (!feasible) {
        candidate = time;
        feasible = true;
      }
    } else {
      feasible = false;
    }
  }
  // After the last breakpoint the profile stays constant; if feasible the
  // current candidate works, otherwise it never becomes feasible — but the
  // invariant "profiles drain back to capacity" makes that impossible for
  // nodes <= capacity unless permanent reservations exist.
  return feasible ? candidate : kNever;
}

}  // namespace sdsched
