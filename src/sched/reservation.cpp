#include "sched/reservation.h"

#include <algorithm>
#include <cassert>

namespace sdsched {

void ReservationProfile::set_base(int capacity, SimTime origin,
                                  const std::vector<std::pair<SimTime, int>>& busy_groups) {
  capacity_ = capacity;
  overlay_.clear();
  base_.clear();
  if (busy_groups.empty()) return;

  int busy = 0;
  for (const auto& [free_at, nodes] : busy_groups) {
    assert(free_at > origin && "busy group must release after the pass origin");
    assert(nodes > 0);
    (void)free_at;
    busy += nodes;
  }
  base_.reserve(busy_groups.size() + 1);
  int free = capacity - busy;
  base_.push_back(Step{origin, free});
  for (const auto& [free_at, nodes] : busy_groups) {
    assert(base_.back().time < free_at && "busy groups must be strictly ascending");
    free += nodes;
    base_.push_back(Step{free_at, free});
  }
  assert(free == capacity && "base snapshot must drain back to capacity");
}

int ReservationProfile::base_free_at(SimTime t, std::size_t* step_index) const {
  const auto it = std::upper_bound(
      base_.begin(), base_.end(), t,
      [](SimTime value, const Step& step) { return value < step.time; });
  if (step_index != nullptr) *step_index = static_cast<std::size_t>(it - base_.begin());
  return it == base_.begin() ? capacity_ : std::prev(it)->free;
}

void ReservationProfile::add_overlay_delta(SimTime start, SimTime end, int delta) {
  if (start >= end || delta == 0) return;
  const auto apply = [this](SimTime time, int d) {
    const auto it = std::lower_bound(
        overlay_.begin(), overlay_.end(), time,
        [](const std::pair<SimTime, int>& e, SimTime value) { return e.first < value; });
    if (it != overlay_.end() && it->first == time) {
      it->second += d;
      if (it->second == 0) overlay_.erase(it);
    } else {
      overlay_.insert(it, {time, d});
    }
  };
  apply(start, delta);
  if (end < kForever) apply(end, -delta);
}

void ReservationProfile::reserve(SimTime start, SimTime end, int nodes) {
  assert(nodes >= 0);
  add_overlay_delta(start, end, -nodes);
}

void ReservationProfile::release(SimTime start, SimTime end, int nodes) {
  assert(nodes >= 0);
  add_overlay_delta(start, end, nodes);
}

ReservationProfile::Sweep ReservationProfile::sweep_at(SimTime t) const {
  // Binary search into the base, linear prefix over the small overlay.
  Sweep sweep;
  sweep.base_free = base_free_at(t, &sweep.bi);
  while (sweep.oi < overlay_.size() && overlay_[sweep.oi].first <= t) {
    sweep.overlay_sum += overlay_[sweep.oi].second;
    ++sweep.oi;
  }
  return sweep;
}

SimTime ReservationProfile::next_breakpoint(const Sweep& sweep) const noexcept {
  SimTime next = kForever;
  if (sweep.bi < base_.size()) next = base_[sweep.bi].time;
  if (sweep.oi < overlay_.size()) next = std::min(next, overlay_[sweep.oi].first);
  return next;
}

void ReservationProfile::advance_to(Sweep& sweep, SimTime t) const noexcept {
  while (sweep.bi < base_.size() && base_[sweep.bi].time == t) {
    sweep.base_free = base_[sweep.bi++].free;
  }
  while (sweep.oi < overlay_.size() && overlay_[sweep.oi].first == t) {
    sweep.overlay_sum += overlay_[sweep.oi++].second;
  }
}

int ReservationProfile::available_at(SimTime t) const { return sweep_at(t).free(); }

int ReservationProfile::min_available(SimTime start, SimTime duration) const {
  duration = std::max<SimTime>(duration, 1);
  const SimTime end = start + duration;

  Sweep sweep = sweep_at(start);
  int min_free = sweep.free();
  for (SimTime t = next_breakpoint(sweep); t < end; t = next_breakpoint(sweep)) {
    advance_to(sweep, t);
    min_free = std::min(min_free, sweep.free());
  }
  return min_free;
}

SimTime ReservationProfile::earliest_start(int nodes, SimTime duration,
                                           SimTime not_before) const {
  if (nodes > capacity_) return kNever;
  if (nodes <= 0) return not_before;
  duration = std::max<SimTime>(duration, 1);

  // Sweep the merged step function from not_before, tracking the earliest
  // candidate start whose window [candidate, candidate + duration) stays
  // feasible.
  Sweep sweep = sweep_at(not_before);
  SimTime candidate = not_before;
  bool feasible = sweep.free() >= nodes;

  for (SimTime t = next_breakpoint(sweep); t < kForever; t = next_breakpoint(sweep)) {
    if (feasible && t >= candidate + duration) {
      return candidate;  // window closed before this breakpoint
    }
    advance_to(sweep, t);
    if (sweep.free() >= nodes) {
      if (!feasible) {
        candidate = t;
        feasible = true;
      }
    } else {
      feasible = false;
    }
  }
  // After the last breakpoint the profile stays constant; if feasible the
  // current candidate works, otherwise it never becomes feasible — but the
  // invariant "profiles drain back to capacity" makes that impossible for
  // nodes <= capacity unless permanent reservations exist.
  return feasible ? candidate : kNever;
}

}  // namespace sdsched
