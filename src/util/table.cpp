#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sdsched {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "| " : " | ");
      oss << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    oss << " |\n";
  };
  emit(header_);
  oss << '|';
  for (const std::size_t w : widths) oss << std::string(w + 2, '-') << '|';
  oss << '\n';
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void AsciiTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace sdsched
