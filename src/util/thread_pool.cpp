#include "util/thread_pool.h"

#include <algorithm>

namespace sdsched {

std::size_t ThreadPool::default_concurrency() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_concurrency();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

ThreadPool& shard_worker_pool() {
  // Meyers singleton: constructed on first sharded-parallel pass, torn
  // down (draining) at process exit. Sized to the hardware regardless of
  // how many sweeps or simulations are in flight.
  static ThreadPool pool(ThreadPool::default_concurrency());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace sdsched
