#include "util/rss.h"

#ifdef __linux__
#include <cstdio>
#include <cstring>
#endif

namespace sdsched {

namespace {

#ifdef __linux__
/// Scan /proc/self/status for a "Field:   123456 kB" line and return the
/// value in bytes; 0 when the file or field is unavailable.
std::uint64_t status_field_bytes(const char* field, std::size_t field_len) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
}
#endif

}  // namespace

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  // "VmHWM:     123456 kB" — the high-water mark of the resident set.
  return status_field_bytes("VmHWM:", 6);
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#ifdef __linux__
  // "VmRSS:     123456 kB" — the resident set right now.
  return status_field_bytes("VmRSS:", 6);
#else
  return 0;
#endif
}

}  // namespace sdsched
