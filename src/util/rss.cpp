#include "util/rss.h"

#ifdef __linux__
#include <cstdio>
#include <cstring>
#endif

namespace sdsched {

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    // "VmHWM:     123456 kB" — the high-water mark of the resident set.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace sdsched
