#include "util/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sdsched {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent(std::size_t depth) {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(depth * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::prepare_for_value() {
  assert(!done_ && "JsonWriter: document already complete");
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": <here>
  }
  if (stack_.empty()) return;  // bare top-level value
  Frame& frame = stack_.back();
  assert(frame.closer == ']' && "JsonWriter: object member without key()");
  if (!frame.empty) out_ += ',';
  frame.empty = false;
  newline_indent(stack_.size());
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back().closer == '}' &&
         "JsonWriter: key() outside an object");
  assert(!pending_key_ && "JsonWriter: key() after key()");
  Frame& frame = stack_.back();
  if (!frame.empty) out_ += ',';
  frame.empty = false;
  newline_indent(stack_.size());
  out_ += '"';
  out_ += escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
}

void JsonWriter::open(char opener, char closer) {
  prepare_for_value();
  out_ += opener;
  stack_.push_back(Frame{closer, true});
  maybe_flush();
}

void JsonWriter::close(char closer) {
  assert(!stack_.empty() && stack_.back().closer == closer &&
         "JsonWriter: mismatched close");
  assert(!pending_key_ && "JsonWriter: dangling key()");
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent(stack_.size());
  out_ += closer;
  if (stack_.empty()) done_ = true;
  (void)closer;
  maybe_flush();
}

void JsonWriter::write_scalar(std::string_view text) {
  prepare_for_value();
  out_ += text;
  if (stack_.empty()) done_ = true;
  maybe_flush();
}

void JsonWriter::maybe_flush() {
  // Only drain between appends — never mid-token — so the sink receives the
  // exact byte stream buffered mode would have produced.
  if (sink_ == nullptr || out_.size() < kFlushBytes) return;
  sink_->write(out_.data(), static_cast<std::streamsize>(out_.size()));
  out_.clear();
}

void JsonWriter::finish() {
  assert(sink_ != nullptr && "JsonWriter: finish() is for sink mode");
  assert(stack_.empty() && done_ && "JsonWriter: document incomplete");
  sink_->write(out_.data(), static_cast<std::streamsize>(out_.size()));
  out_.clear();
  if (!*sink_) throw std::runtime_error("JsonWriter: sink write failed");
}

void JsonWriter::value(std::string_view v) {
  std::string quoted;
  quoted.reserve(v.size() + 2);
  quoted += '"';
  quoted += escape(v);
  quoted += '"';
  write_scalar(quoted);
}

void JsonWriter::value(bool v) { write_scalar(v ? "true" : "false"); }

void JsonWriter::value(double v) {
  if (!std::isfinite(v)) {
    value_null();
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  (void)ec;
  write_scalar(std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

const std::string& JsonWriter::str() const {
  assert(sink_ == nullptr && "JsonWriter: str() is for buffered mode (use finish())");
  assert(stack_.empty() && done_ && "JsonWriter: document incomplete");
  return out_;
}

void write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.put('\n');
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace sdsched
