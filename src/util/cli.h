// Tiny flag parser for bench and example binaries.
//
// Syntax: --name=value or --name value; bare --name sets "1" (boolean).
// Values fall back to environment variables (upper-cased, SDSCHED_ prefix,
// dashes -> underscores) so `SDSCHED_FULL=1 ./bench` works fleet-wide.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace sdsched {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace sdsched
