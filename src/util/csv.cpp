#include "util/csv.h"

namespace sdsched {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace sdsched
