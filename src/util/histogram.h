// Fixed-edge and logarithmic histograms for workload characterization and
// the per-category heatmaps of Figures 4-6.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdsched {

/// Histogram over explicit bucket edges. A value v lands in bucket i when
/// edges[i] <= v < edges[i+1]; values below the first edge go to bucket 0,
/// values at or above the last edge go to the last bucket.
class Histogram {
 public:
  /// Requires at least two strictly increasing edges.
  explicit Histogram(std::vector<double> edges);

  /// Power-of-two edges: lo, 2lo, 4lo, ... covering [lo, hi].
  [[nodiscard]] static Histogram log2_buckets(double lo, double hi);

  void add(double value, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double count(std::size_t bucket) const noexcept { return counts_.at(bucket); }
  [[nodiscard]] double total() const noexcept;
  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }

  /// Human-readable label for a bucket, e.g. "[64, 128)".
  [[nodiscard]] std::string bucket_label(std::size_t bucket) const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
};

}  // namespace sdsched
