// Fixed-size thread pool for running independent simulations concurrently.
//
// Deliberately minimal: a locked deque of type-erased tasks, submit()
// returning a std::future that carries the task's result or exception, and a
// draining destructor — every submitted task runs before the pool is torn
// down, so futures are never broken. No work stealing, no priorities; sweep
// cells are coarse (whole simulations), so a single queue is never the
// bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace sdsched {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means default_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue (every submitted task runs), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  [[nodiscard]] static std::size_t default_concurrency() noexcept;

  /// Enqueue `fn` and return a future for its result. The future rethrows
  /// any exception the task threw. Throws std::runtime_error if the pool is
  /// already shutting down.
  template <typename F>
  [[nodiscard]] auto submit(F fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    ready_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

/// The process-wide shared pool for *intra-pass* shard fan-out (sharded
/// candidate scans, ShardConfig::parallel). One pool, sized to the
/// hardware, shared by every Simulation in the process — the
/// oversubscription clamp: a SweepRunner at --jobs=N runs its cells on its
/// own pool, and however many of those cells shard in parallel, their
/// per-shard tasks all drain through these hardware_concurrency() workers
/// instead of spawning N nested pools (docs/bench-format.md "Nested
/// parallelism"). No deadlock by construction: shard tasks are leaves —
/// they never submit to any pool — so the cell thread blocking on their
/// futures always makes progress. Lives until process exit.
[[nodiscard]] ThreadPool& shard_worker_pool();

}  // namespace sdsched
