#include "util/time_utils.h"

#include <cstdio>

namespace sdsched {

std::string format_duration(SimTime seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  const SimTime days = seconds / kDay;
  const SimTime hours = (seconds % kDay) / kHour;
  const SimTime minutes = (seconds % kHour) / kMinute;
  const SimTime secs = seconds % kMinute;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%lldd %lldh %02lldm", static_cast<long long>(days),
                  static_cast<long long>(hours), static_cast<long long>(minutes));
  } else if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%lldh %02lldm %02llds", static_cast<long long>(hours),
                  static_cast<long long>(minutes), static_cast<long long>(secs));
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%lldm %02llds", static_cast<long long>(minutes),
                  static_cast<long long>(secs));
  } else {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(secs));
  }
  return buf;
}

}  // namespace sdsched
