// Streaming and batch statistics used by the metrics layer and the
// workload characterization reports.
#pragma once

#include <cstddef>
#include <vector>

namespace sdsched {

/// Welford's online mean/variance. Numerically stable; O(1) per sample.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers. `percentile` uses linear interpolation between order
/// statistics (the common "type 7" definition); it copies and sorts.
[[nodiscard]] double mean_of(const std::vector<double>& values) noexcept;
[[nodiscard]] double percentile_of(std::vector<double> values, double p) noexcept;
[[nodiscard]] double median_of(std::vector<double> values) noexcept;

}  // namespace sdsched
