#include "util/logging.h"

#include <cstdio>

namespace sdsched {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  const std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sdsched
