// ASCII table renderer: the bench binaries print paper-style tables with
// a `paper` column next to `measured` so runs are self-describing.
#pragma once

#include <string>
#include <vector>

namespace sdsched {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Numeric convenience with fixed precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  /// Percentage with sign, e.g. "-70.4%".
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string str() const;
  void print() const;  ///< to stdout

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdsched
