#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace sdsched {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double percentile_of(std::vector<double> values, double p) noexcept {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median_of(std::vector<double> values) noexcept {
  return percentile_of(std::move(values), 0.5);
}

}  // namespace sdsched
