// Small CSV writer used by benches to dump figure data for plotting.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace sdsched {

/// RFC-4180-ish CSV writer: quotes fields containing commas, quotes or
/// newlines. Rows are flushed on write; the file closes on destruction.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: stringify arithmetic values.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(stringify(fields)), ...);
    write_row(cells);
  }

 private:
  template <typename T>
  static std::string stringify(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }
  static std::string escape(std::string_view field);

  std::ofstream out_;
};

}  // namespace sdsched
