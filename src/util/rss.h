// RSS probes for bench artifacts: the memory-flat accounting every
// `sdsched-bench-v1` header carries (docs/bench-format.md) so archive-scale
// replays can show their footprint trajectory alongside wall-clock.
#pragma once

#include <cstdint>

namespace sdsched {

/// Peak resident set size of this process, in bytes — VmHWM from
/// /proc/self/status on Linux; 0 on platforms without the probe (callers
/// emit the value as-is, consumers treat 0 as "unavailable").
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size, in bytes — VmRSS from /proc/self/status on
/// Linux; 0 on platforms without the probe. Unlike the high-water mark this
/// can fall, so before/after deltas around a phase bound that phase's
/// resident growth — the swf_ingest bench gates on exactly that.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace sdsched
