// Simulation time helpers. Simulation time is integral seconds since the
// start of the trace (SWF convention).
#pragma once

#include <cstdint>
#include <string>

namespace sdsched {

using SimTime = std::int64_t;  ///< seconds since trace start

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 86400;

/// "1d 2h 03m 04s"-style rendering, dropping leading zero units.
[[nodiscard]] std::string format_duration(SimTime seconds);

/// Day index for per-day series (floor(t / 86400)).
[[nodiscard]] constexpr std::int64_t day_of(SimTime t) noexcept { return t / kDay; }

/// Second-of-day, for arrival-pattern modelling.
[[nodiscard]] constexpr SimTime second_of_day(SimTime t) noexcept { return t % kDay; }

}  // namespace sdsched
