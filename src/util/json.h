// Minimal JSON writer for machine-readable bench/report output.
//
// Streaming, stack-based: begin_object()/key()/value()/end_object() appends
// to an internal buffer; str() returns the finished document. Strings are
// escaped per RFC 8259; doubles are printed with the shortest round-trip
// representation (std::to_chars) so that re-parsing yields the exact bits,
// which also makes serialized reports byte-comparable — the sweep
// determinism test relies on that. Non-finite doubles become null (JSON has
// no NaN/Inf).
//
// Two emission modes share the same byte output:
//  * buffered (default): the whole document accumulates; str() returns it.
//  * sink: construct with an std::ostream and the buffer drains to it every
//    ~64 KiB, so emitting a document is O(1) in memory regardless of its
//    size — archive-scale bench artifacts (448K per-job record rows) are
//    written without ever being held. Call finish() after the last close to
//    flush the tail; str() is unavailable in this mode.
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.field("policy", "backfill");
//   json.field("makespan", 899888.0);
//   json.key("cells");
//   json.begin_array();
//   ...
//   json.end_array();
//   json.end_object();
//   write_text_file(path, json.str());
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace sdsched {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  /// Sink mode: drain to `sink` as the document grows (flat memory). The
  /// stream must outlive the writer; end with finish().
  explicit JsonWriter(std::ostream& sink, int indent = 2)
      : sink_(&sink), indent_(indent) {}

  void begin_object() { open('{', '}'); }
  void end_object() { close('}'); }
  void begin_array() { open('[', ']'); }
  void end_array() { close(']'); }

  /// Member name inside an object; must be followed by exactly one value or
  /// begin_object/begin_array.
  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(const std::string& v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  void value(T v) {
    if constexpr (std::is_signed_v<T>) {
      write_scalar(std::to_string(static_cast<std::int64_t>(v)));
    } else {
      write_scalar(std::to_string(static_cast<std::uint64_t>(v)));
    }
  }
  void value_null() { write_scalar("null"); }

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  /// The finished document (buffered mode only). All scopes must be closed.
  [[nodiscard]] const std::string& str() const;

  /// Sink mode: flush the buffered tail of the completed document to the
  /// sink. Throws std::runtime_error if the sink stream failed.
  void finish();

  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  struct Frame {
    char closer;            ///< '}' or ']'
    bool empty = true;      ///< no members/elements written yet
  };

  void open(char opener, char closer);
  void close(char closer);
  /// Emit separator/indentation for the next value position, honouring a
  /// pending key.
  void prepare_for_value();
  void write_scalar(std::string_view text);
  void newline_indent(std::size_t depth);
  /// Sink mode: drain the buffer once it exceeds the flush threshold.
  void maybe_flush();

  static constexpr std::size_t kFlushBytes = 64 * 1024;

  std::string out_;
  std::vector<Frame> stack_;
  std::ostream* sink_ = nullptr;  ///< nullptr = buffered mode
  int indent_;
  bool pending_key_ = false;
  bool done_ = false;  ///< a complete top-level value has been written
};

/// Write `text` to `path`, throwing std::runtime_error on I/O failure.
void write_text_file(const std::string& path, std::string_view text);

}  // namespace sdsched
