#include "util/cli.h"

#include <cstdlib>

namespace sdsched {

namespace {

std::string env_name(const std::string& flag) {
  std::string name = "SDSCHED_";
  for (const char c : flag) {
    name += (c == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return name;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  // Single-threaded CLI startup; no setenv anywhere in the tree.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv(env_name(name).c_str()); env != nullptr) {
    return std::string(env);
  }
  return std::nullopt;
}

std::string CliArgs::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  try {
    return std::stoll(*value);
  } catch (...) {
    return fallback;
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (...) {
    return fallback;
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" || *value == "on";
}

}  // namespace sdsched
