#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace sdsched {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

bool Rng::chance(double probability) noexcept { return next_double() < probability; }

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

double Rng::gamma(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape >= 1 then correct (Marsaglia-Tsang trick).
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

double Rng::weibull(double shape, double scale) noexcept {
  assert(shape > 0.0 && scale > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (const double w : weights) total += w;
  assert(total > 0.0);
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace sdsched
