#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sdsched {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  assert(edges_.size() >= 2);
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  counts_.assign(edges_.size() - 1, 0.0);
}

Histogram Histogram::log2_buckets(double lo, double hi) {
  assert(lo > 0.0 && hi > lo);
  std::vector<double> edges;
  for (double e = lo; e < hi * 2.0; e *= 2.0) edges.push_back(e);
  if (edges.size() < 2) edges.push_back(lo * 2.0);
  return Histogram(std::move(edges));
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  if (value < edges_.front()) return 0;
  if (value >= edges_.back()) return counts_.size() - 1;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  return idx == 0 ? 0 : idx - 1;
}

void Histogram::add(double value, double weight) noexcept {
  counts_[bucket_index(value)] += weight;
}

double Histogram::total() const noexcept {
  double sum = 0.0;
  for (const double c : counts_) sum += c;
  return sum;
}

std::string Histogram::bucket_label(std::size_t bucket) const {
  std::ostringstream oss;
  oss << '[' << edges_.at(bucket) << ", " << edges_.at(bucket + 1) << ')';
  return oss.str();
}

}  // namespace sdsched
