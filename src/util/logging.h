// Minimal leveled logger for the sdsched library.
//
// The simulator is deterministic and single-threaded per Simulation, but
// multiple Simulations may run concurrently (e.g. parameter sweeps), so the
// sink is guarded by a mutex. Logging defaults to Warn so that library users
// are not spammed; benches and examples raise the level explicitly.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace sdsched {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global logger. Writes to stderr; level-filtered. The level is atomic and
/// the sink is mutex-guarded so concurrent Simulations (sweep workers) can
/// log — and a driver can adjust verbosity — without data races.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::Warn};
  std::mutex mutex_;
};

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

namespace detail {
template <typename... Args>
void log_impl(LogLevel level, std::string_view component, Args&&... args) {
  if (!Logger::instance().enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << args);
  Logger::instance().write(level, component, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_trace(std::string_view component, Args&&... args) {
  detail::log_impl(LogLevel::Trace, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  detail::log_impl(LogLevel::Debug, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  detail::log_impl(LogLevel::Info, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  detail::log_impl(LogLevel::Warn, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view component, Args&&... args) {
  detail::log_impl(LogLevel::Error, component, std::forward<Args>(args)...);
}

}  // namespace sdsched
