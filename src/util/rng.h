// Deterministic random number generation for workload synthesis.
//
// All stochastic behaviour in sdsched flows through Rng so that a (model,
// seed) pair reproduces bit-identical workloads and therefore bit-identical
// simulation results on any platform. We deliberately avoid <random>'s
// distributions, whose outputs are implementation-defined, and implement the
// few distributions the workload models need on top of xoshiro256**.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sdsched {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) noexcept;

  /// Standard normal via Box-Muller (deterministic; caches the spare value).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)). Parameters are of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  [[nodiscard]] double gamma(double shape, double scale) noexcept;

  /// Weibull(shape k > 0, scale lambda > 0).
  [[nodiscard]] double weibull(double shape, double scale) noexcept;

  /// Index into `weights` with probability proportional to each weight.
  /// Requires a non-empty span with a positive sum.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per workload component).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace sdsched
