// Node-level resource management (paper §3.3, Listing 3) — the simulator's
// slurmd/slurmstepd + task/affinity logic.
//
// The NodeManager executes placement plans decided by the scheduler:
//  * static exclusive starts,
//  * co-scheduled guest starts (shrink mates, place guest, re-derive every
//    occupant's socket mask via distribute_cpu),
//  * job completions (return cores to the owner when a guest leaves;
//    redistribute to the remaining malleable occupants when an owner leaves
//    early — the §4.3 unbalance case).
//
// Expansion never exceeds a job's static per-node share (static_cpus): the
// application has req_cpus worth of parallelism in total, so extra cores
// beyond the static split cannot be put to work.
//
// Every mutation keeps three views consistent: Machine occupancy, Job.shares
// and the DROM masks. Methods return the set of jobs whose core counts
// changed so the simulation kernel can re-integrate their progress.
#pragma once

#include <vector>

#include "cluster/machine.h"
#include "drom/cpu_distribution.h"
#include "drom/drom.h"
#include "job/job_registry.h"

namespace sdsched {

/// One node of a malleable co-scheduling plan (produced by MateSelector).
struct SharePlan {
  int node = -1;
  JobId mate = kInvalidJob;   ///< owner to shrink; kInvalidJob = free node
  int guest_cpus = 0;         ///< cores the guest receives on this node
  int mate_kept_cpus = 0;     ///< cores the mate keeps (ignored for free nodes)
  int guest_static_cpus = 0;  ///< guest's balanced static need on this node
};

class NodeManager {
 public:
  NodeManager(Machine& machine, JobRegistry& jobs, DromRegistry& drom) noexcept
      : machine_(machine), jobs_(jobs), drom_(drom) {}

  /// Exclusive start on empty nodes; shares get the balanced static split.
  void start_static(SimTime now, JobId job, const std::vector<int>& nodes);

  /// Malleable co-scheduled start. Returns the mates that were shrunk.
  std::vector<JobId> start_guest(SimTime now, JobId guest,
                                 const std::vector<SharePlan>& plan);

  /// Completion: release everywhere, expand survivors. Returns jobs whose
  /// allocation changed (excluding the finished job itself).
  std::vector<JobId> finish_job(SimTime now, JobId job);

  [[nodiscard]] const DromRegistry& drom() const noexcept { return drom_; }

 private:
  /// Recompute socket masks for every occupant of `node_id` (Listing 3
  /// step 1) and push them through the DROM registry.
  void refresh_masks(int node_id);

  /// Grow `job`'s share on `node_id` up to min(static share, available).
  /// Returns true if the share changed.
  bool expand_on_node(SimTime now, Job& job, int node_id, int available);

  Machine& machine_;
  JobRegistry& jobs_;
  DromRegistry& drom_;
};

}  // namespace sdsched
