#include "drom/drom.h"

#include <algorithm>

namespace sdsched {

void DromRegistry::attach(JobId job, int node, CpuMask mask) {
  masks_[{job, node}] = std::move(mask);
}

void DromRegistry::detach(JobId job, int node) { masks_.erase({job, node}); }

void DromRegistry::detach_all(JobId job) {
  for (auto it = masks_.begin(); it != masks_.end();) {
    if (it->first.first == job) {
      it = masks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool DromRegistry::set_mask(JobId job, int node, CpuMask mask) {
  const auto it = masks_.find({job, node});
  if (it == masks_.end()) return false;
  const int before = it->second.total();
  const int after = mask.total();
  if (after < before) ++shrink_ops_;
  if (after > before) ++expand_ops_;
  it->second = std::move(mask);
  return true;
}

std::optional<CpuMask> DromRegistry::mask(JobId job, int node) const {
  const auto it = masks_.find({job, node});
  if (it == masks_.end()) return std::nullopt;
  return it->second;
}

bool DromRegistry::attached(JobId job, int node) const {
  return masks_.count({job, node}) > 0;
}

std::vector<JobId> DromRegistry::jobs_on_node(int node) const {
  std::vector<JobId> jobs;
  for (const auto& [key, mask] : masks_) {
    if (key.second == node) jobs.push_back(key.first);
  }
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

}  // namespace sdsched
