#include "drom/node_manager.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace sdsched {

namespace {

NodeShare* find_share(Job& job, int node_id) {
  for (auto& share : job.shares) {
    if (share.node == node_id) return &share;
  }
  return nullptr;
}

void erase_id(std::vector<JobId>& ids, JobId id) {
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
}

}  // namespace

void NodeManager::refresh_masks(int node_id) {
  const Node& node = machine_.node(node_id);
  std::vector<CpuDemand> demands;
  demands.reserve(node.occupant_count());
  for (const auto& occ : node.occupants()) {
    demands.push_back(CpuDemand{occ.job, occ.cpus});
  }
  const NodeConfig config{node.sockets(), node.cores_per_socket()};
  const auto placements = distribute_cpu(config, demands);
  for (const auto& placement : placements) {
    if (!drom_.set_mask(placement.job, node_id, placement.mask)) {
      drom_.attach(placement.job, node_id, placement.mask);
    }
  }
}

void NodeManager::start_static(SimTime now, JobId job_id, const std::vector<int>& nodes) {
  Job& job = jobs_.at(job_id);
  assert(job.shares.empty());
  const auto split = balanced_split(job.spec.req_cpus, static_cast<int>(nodes.size()));
  const bool ok = machine_.allocate_exclusive(now, job_id, nodes, split);
  assert(ok && "static start on non-empty nodes");
  (void)ok;
  job.shares.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int held = std::max(1, split[i]);
    job.shares.push_back(NodeShare{nodes[i], held, held});
    refresh_masks(nodes[i]);
  }
}

std::vector<JobId> NodeManager::start_guest(SimTime now, JobId guest_id,
                                            const std::vector<SharePlan>& plan) {
  Job& guest = jobs_.at(guest_id);
  assert(guest.shares.empty());
  std::vector<JobId> affected;
  for (const auto& entry : plan) {
    if (entry.mate != kInvalidJob) {
      Job& mate = jobs_.at(entry.mate);
      NodeShare* mate_share = find_share(mate, entry.node);
      assert(mate_share != nullptr && "plan references a node the mate does not hold");
      assert(entry.mate_kept_cpus >= 1);
      const bool resized = machine_.resize_share(now, entry.mate, entry.node,
                                                 entry.mate_kept_cpus);
      assert(resized && "mate shrink failed");
      (void)resized;
      mate_share->cpus = entry.mate_kept_cpus;
      ++mate.pending_reconfig_ops;
      if (std::find(affected.begin(), affected.end(), entry.mate) == affected.end()) {
        affected.push_back(entry.mate);
      }
    }
    const bool placed = machine_.add_share(now, guest_id, entry.node, entry.guest_cpus,
                                           /*is_owner=*/entry.mate == kInvalidJob);
    assert(placed && "guest placement failed");
    (void)placed;
    guest.shares.push_back(
        NodeShare{entry.node, entry.guest_cpus, std::max(1, entry.guest_static_cpus)});
    refresh_masks(entry.node);
  }

  guest.started_as_guest = true;
  for (const JobId mate_id : affected) {
    Job& mate = jobs_.at(mate_id);
    mate.ever_mate = true;
    ++mate.shrink_count;
    mate.guests.push_back(guest_id);
    guest.mates.push_back(mate_id);
  }
  log_debug("node_mgr", "guest ", guest_id, " co-scheduled on ", plan.size(), " nodes with ",
            affected.size(), " mates");
  return affected;
}

bool NodeManager::expand_on_node(SimTime now, Job& job, int node_id, int available) {
  NodeShare* share = find_share(job, node_id);
  if (share == nullptr) return false;
  const int target = std::min(share->static_cpus, share->cpus + available);
  if (target <= share->cpus) return false;
  const bool resized = machine_.resize_share(now, job.spec.id, node_id, target);
  assert(resized);
  (void)resized;
  share->cpus = target;
  ++job.pending_reconfig_ops;
  return true;
}

std::vector<JobId> NodeManager::finish_job(SimTime now, JobId job_id) {
  Job& job = jobs_.at(job_id);
  std::vector<JobId> affected;
  for (const auto& share : job.shares) {
    const int node_id = share.node;
    const int freed = machine_.remove_share(now, job_id, node_id);
    assert(freed == share.cpus);
    (void)freed;
    drom_.detach(job_id, node_id);

    // Redistribute to survivors (Listing 3): owners reclaim what a guest
    // releases; when an owner leaves early its cores go to the remaining
    // malleable occupants. Deterministic order: node occupant list. Every
    // survivor is reported as affected — even if its cpus did not change,
    // its contention environment did.
    const Node& node = machine_.node(node_id);
    if (!node.empty()) {
      int available = node.free_cores();
      for (const auto& occ : node.occupants()) {
        Job& survivor = jobs_.at(occ.job);
        // Moldable guests keep their shape; malleable survivors expand.
        if (survivor.malleable() && available > 0) {
          const int before = occ.cpus;
          if (expand_on_node(now, survivor, node_id, available)) {
            const auto grown = machine_.node(node_id).occupant(occ.job);
            available -= grown->cpus - before;
            ++survivor.shrink_count;
          }
        }
        if (std::find(affected.begin(), affected.end(), occ.job) == affected.end()) {
          affected.push_back(occ.job);
        }
      }
      refresh_masks(node_id);
    }
  }
  job.shares.clear();

  // Reciprocal bookkeeping so mate eligibility recovers once guests leave.
  for (const JobId mate_id : job.mates) {
    erase_id(jobs_.at(mate_id).guests, job_id);
  }
  for (const JobId guest_id : job.guests) {
    erase_id(jobs_.at(guest_id).mates, job_id);
  }
  return affected;
}

}  // namespace sdsched
