#include "drom/cpu_distribution.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sdsched {

std::vector<CpuPlacement> distribute_cpu(const NodeConfig& node,
                                         std::span<const CpuDemand> demands) {
  const int capacity = node.sockets * node.cores_per_socket;
  int total = 0;
  for (const auto& d : demands) total += d.cpus;
  assert(total <= capacity && "cpu distribution overcommits the node");
  (void)capacity;

  // Largest job first so big holdings grab whole sockets and small ones
  // fill the gaps; ties broken by job id for determinism.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (demands[a].cpus != demands[b].cpus) return demands[a].cpus > demands[b].cpus;
    return demands[a].job < demands[b].job;
  });

  std::vector<int> socket_free(node.sockets, node.cores_per_socket);
  std::vector<CpuPlacement> placements(demands.size());
  for (const std::size_t idx : order) {
    CpuPlacement placement;
    placement.job = demands[idx].job;
    placement.mask.cores_per_socket.assign(node.sockets, 0);
    int remaining = demands[idx].cpus;
    // Pass 1: a socket that fits the job entirely (emptiest such socket —
    // prefer isolation).
    int chosen = -1;
    for (int s = 0; s < node.sockets; ++s) {
      if (socket_free[s] >= remaining &&
          (chosen == -1 || socket_free[s] > socket_free[chosen])) {
        chosen = s;
      }
    }
    if (chosen >= 0) {
      placement.mask.cores_per_socket[chosen] = remaining;
      socket_free[chosen] -= remaining;
      remaining = 0;
    } else {
      // Pass 2: spill over sockets, fullest-fit first to keep fragments low.
      for (int s = 0; s < node.sockets && remaining > 0; ++s) {
        const int take = std::min(socket_free[s], remaining);
        placement.mask.cores_per_socket[s] = take;
        socket_free[s] -= take;
        remaining -= take;
      }
    }
    assert(remaining == 0);
    placements[idx] = std::move(placement);
  }
  return placements;
}

bool socket_isolated(const NodeConfig& node, std::span<const CpuPlacement> placements) {
  for (int s = 0; s < node.sockets; ++s) {
    int users = 0;
    for (const auto& p : placements) {
      if (s < static_cast<int>(p.mask.cores_per_socket.size()) &&
          p.mask.cores_per_socket[s] > 0) {
        ++users;
      }
    }
    if (users > 1) return false;
  }
  return true;
}

}  // namespace sdsched
