// DROM (Dynamic Resource Ownership Management) registry — the simulator's
// analogue of the DROM API the paper integrates into slurmd/slurmstepd
// (§2.1, §3.3).
//
// Real DROM tracks attached processes and their CPU masks and lets the node
// manager change them at malleability points. Here a mask is modelled as a
// per-socket core count; the registry records every (job, node) attachment,
// its current mask, and counts shrink/expand transitions so tests and the
// overhead model can observe them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/event.h"

namespace sdsched {

/// A CPU mask abstracted as cores held per socket.
struct CpuMask {
  std::vector<int> cores_per_socket;

  [[nodiscard]] int total() const noexcept {
    int sum = 0;
    for (const int c : cores_per_socket) sum += c;
    return sum;
  }
};

class DromRegistry {
 public:
  /// Attach a process of `job` on `node` with an initial mask (DROM_run).
  void attach(JobId job, int node, CpuMask mask);

  /// Detach on job end (DROM_clean). No-op if absent.
  void detach(JobId job, int node);
  void detach_all(JobId job);

  /// Update the mask; the process adapts at its next malleability point.
  /// Returns false if the process is not attached.
  bool set_mask(JobId job, int node, CpuMask mask);

  [[nodiscard]] std::optional<CpuMask> mask(JobId job, int node) const;
  [[nodiscard]] bool attached(JobId job, int node) const;
  [[nodiscard]] std::size_t process_count() const noexcept { return masks_.size(); }

  /// Jobs attached on a node (deterministic order).
  [[nodiscard]] std::vector<JobId> jobs_on_node(int node) const;

  // Transition counters (for the overhead model and tests).
  [[nodiscard]] std::uint64_t shrink_ops() const noexcept { return shrink_ops_; }
  [[nodiscard]] std::uint64_t expand_ops() const noexcept { return expand_ops_; }

 private:
  std::map<std::pair<JobId, int>, CpuMask> masks_;
  std::uint64_t shrink_ops_ = 0;
  std::uint64_t expand_ops_ = 0;
};

}  // namespace sdsched
