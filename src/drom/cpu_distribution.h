// Socket-aware core distribution (paper §3.3, Listing 3 step 1).
//
// Given the jobs on a node and the core count each should hold, assign
// cores to sockets so that jobs land in separate sockets whenever they fit
// ("best overall performance is obtained when the applications run isolated
// in separate sockets"), spilling over only when they must.
#pragma once

#include <span>
#include <vector>

#include "cluster/node.h"
#include "drom/drom.h"

namespace sdsched {

struct CpuDemand {
  JobId job = kInvalidJob;
  int cpus = 0;
};

struct CpuPlacement {
  JobId job = kInvalidJob;
  CpuMask mask;
};

/// Distribute the demanded cores over the node's sockets. Total demand must
/// not exceed the node's capacity. Jobs are placed largest-first; each
/// prefers the emptiest socket and spills to the next when a socket fills.
/// Deterministic; returns one placement per input demand.
[[nodiscard]] std::vector<CpuPlacement> distribute_cpu(const NodeConfig& node,
                                                       std::span<const CpuDemand> demands);

/// True when no socket hosts more than one job (perfect isolation).
[[nodiscard]] bool socket_isolated(const NodeConfig& node,
                                   std::span<const CpuPlacement> placements);

}  // namespace sdsched
