#include "core/mate_registry.h"

#include <algorithm>
#include <sstream>

namespace sdsched {

namespace {

/// Membership in mates(): everything of eligible_mate() that does not
/// depend on the guest or on `now`.
bool static_mate_eligible(const Job& job) noexcept {
  return job.running() && job.can_be_mate() && !job.started_as_guest;
}

void insert_sorted(std::vector<JobId>& ids, JobId id) {
  // Ids arrive mostly in ascending order (the registry assigns them
  // densely), so the push_back fast path dominates.
  if (ids.empty() || ids.back() < id) {
    ids.push_back(id);
    return;
  }
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) return;
  ids.insert(it, id);
}

void erase_sorted(std::vector<JobId>& ids, JobId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) ids.erase(it);
}

}  // namespace

void MateRegistry::seed(const JobRegistry& jobs) {
  ++epoch_;
  running_.clear();
  mates_.clear();
  for (const Job& job : jobs) {
    if (!job.running()) continue;
    running_.push_back(job.spec.id);
    if (static_mate_eligible(job)) mates_.push_back(job.spec.id);
  }
}

void MateRegistry::on_start(const Job& job) {
  ++epoch_;
  insert_sorted(running_, job.spec.id);
  if (static_mate_eligible(job)) insert_sorted(mates_, job.spec.id);
}

void MateRegistry::on_finish(JobId id) {
  ++epoch_;
  erase_sorted(running_, id);
  erase_sorted(mates_, id);
}

bool MateRegistry::check_consistent(const JobRegistry& jobs,
                                    std::string* diagnosis) const {
  std::vector<JobId> expect_running;
  std::vector<JobId> expect_mates;
  for (const Job& job : jobs) {
    if (!job.running()) continue;
    expect_running.push_back(job.spec.id);
    if (static_mate_eligible(job)) expect_mates.push_back(job.spec.id);
  }
  const auto fail = [diagnosis](const char* which, std::size_t have, std::size_t want) {
    if (diagnosis != nullptr) {
      std::ostringstream oss;
      oss << "mate registry " << which << " set diverged from the job scan (indexed "
          << have << " ids, scanned " << want << ")";
      *diagnosis = oss.str();
    }
    return false;
  };
  if (running_ != expect_running) {
    return fail("running", running_.size(), expect_running.size());
  }
  if (mates_ != expect_mates) return fail("mate", mates_.size(), expect_mates.size());
  return true;
}

}  // namespace sdsched
