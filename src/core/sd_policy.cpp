#include "core/sd_policy.h"

#include <algorithm>
#include <cassert>

#include "core/estimator.h"
#include "util/logging.h"

namespace sdsched {

void SdPolicyScheduler::schedule_pass(SimTime now) {
#ifdef SDSCHED_INDEX_CROSSCHECK
  std::string diagnosis;
  const bool consistent = mate_registry_.check_consistent(jobs_, &diagnosis);
  if (!consistent) log_error("sd", "mate registry inconsistent: ", diagnosis);
  assert(consistent && "MateRegistry diverged from the job scan");
#endif
  BackfillScheduler::schedule_pass(now);
}

bool SdPolicyScheduler::try_malleable(SimTime now, Job& job, SimTime est_start,
                                      ReservationProfile& profile) {
  if (!job.can_start_shrunk()) return false;

  // Listing 1: pre-selection estimate. Malleability must beat the static
  // wait before we even search for mates. All estimates use the scheduler's
  // working duration (the prediction when future-work #2 is enabled).
  const SimTime planned = effective_req_time(job.spec);
  const SimTime static_end = static_end_for(est_start, planned);
  const SimTime mall_end_quick = quick_mall_end(now, planned, sd_config_.sharing_factor);
  if (static_end <= mall_end_quick) {
    ++estimate_rejections_;
    return false;
  }

  const double cutoff =
      compute_cutoff(sd_config_.cutoff, jobs_, mate_registry_.running(), now);

  // Free nodes a plan may borrow without displacing this pass's
  // reservations: whatever stays free for the quick-estimate duration.
  // One sweep over the window (min availability == the largest request
  // that starts now), instead of one earliest_start probe per count.
  int max_free_nodes = 0;
  if (sd_config_.include_free_nodes) {
    const SimTime d0 = mall_end_quick - now;
    const int cap = std::min(machine_.free_node_count(), job.spec.req_nodes - 1);
    if (cap >= 1) {
      max_free_nodes = std::clamp(profile.min_available(now, d0), 0, cap);
      if (max_free_nodes > 0 && !job.spec.constraints.unconstrained()) {
        // The shared profile counts ineligible nodes as available; the
        // class layer keeps a constrained guest from over-capping its
        // free-node budget with nodes its plan could never take.
        if (ReservationProfile* layer = class_profile(now, job.spec.constraints)) {
          max_free_nodes = std::clamp(layer->min_available(now, d0), 0, max_free_nodes);
        }
      }
    }
  }

  const auto plan = selector_.select(job, now, cutoff, max_free_nodes, planned);
  if (!plan) {
    ++selection_failures_;
    return false;
  }

  // Re-check the decision with the plan's exact increase (the quick
  // estimate assumed a uniform SharingFactor split).
  const SimTime mall_end = now + planned + plan->guest_increase;
  if (static_end <= mall_end) {
    ++estimate_rejections_;
    return false;
  }

  // Keep the pass profile truthful: mates now hold their nodes longer, and
  // any free nodes the guest borrowed are occupied until mall_end.
  // These windows are occupancy-backed: start_guest below stretches the
  // mates' predicted ends and occupies the borrowed free nodes, so the
  // index (and any class layer built later this pass) sees them directly.
  for (std::size_t i = 0; i < plan->mates.size(); ++i) {
    const Job& mate = jobs_.at(plan->mates[i]);
    if (plan->mate_increases[i] > 0) {
      reserve_window(mate.predicted_end, mate.predicted_end + plan->mate_increases[i],
                     mate.spec.req_nodes, /*occupancy_backed=*/true);
    }
  }
  int free_borrowed = 0;
  for (const auto& entry : plan->nodes) {
    if (entry.mate == kInvalidJob) ++free_borrowed;
  }
  if (free_borrowed > 0) {
    reserve_window(now, mall_end, free_borrowed, /*occupancy_backed=*/true);
  }

  log_debug("sd", "job ", job.spec.id, " -> malleable start, ", plan->mates.size(),
            " mates, PI=", plan->performance_impact, ", saves ",
            static_end - mall_end, "s");
  executor_.start_guest(job.spec.id, *plan);
  on_job_started(job.spec.id);
  ++malleable_starts_;
  return true;
}

}  // namespace sdsched
