#include "core/sd_policy.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "api/report.h"
#include "cluster/cluster_state_index.h"
#include "cluster/sharded_cluster_index.h"
#include "core/estimator.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace sdsched {

namespace {

/// SDSCHED_SD_CROSSCHECK: re-run every ledger-skipped mate search in full
/// and throw on divergence. Read once; all schedulers (and sweep workers)
/// share the value, like the other SDSCHED_* mode switches.
bool sd_crosscheck_env() noexcept {
  static const bool enabled = []() noexcept {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — one-time read under static init
    const char* value = std::getenv("SDSCHED_SD_CROSSCHECK");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
  }();
  return enabled;
}

}  // namespace

SdPolicyScheduler::SdPolicyScheduler(Machine& machine, JobRegistry& jobs,
                                     StartExecutor& executor, SchedConfig sched_config,
                                     SdConfig sd_config) noexcept
    : BackfillScheduler(machine, jobs, executor, sched_config),
      sd_config_(sd_config),
      selector_(machine, jobs, sd_config_),
      crosscheck_(sd_config.scan.crosscheck || sd_crosscheck_env()) {
  // Warm-start scenarios construct the scheduler against running jobs.
  mate_registry_.seed(jobs_);
  selector_.set_mate_registry(&mate_registry_);
}

void SdPolicyScheduler::set_sharded_index(const ShardedClusterIndex* sharded) noexcept {
  // The base forwards the flat parity surface through set_cluster_index
  // (virtual — lands in our override above, so the selector gets it too).
  BackfillScheduler::set_sharded_index(sharded);
  const bool parallel = sharded != nullptr && sharded->parallel() &&
                        sharded->shard_count() > 1;
  selector_.set_shard_context(sharded, parallel ? &shard_worker_pool() : nullptr);
}

void SdPolicyScheduler::schedule_pass(SimTime now) {
#ifdef SDSCHED_INDEX_CROSSCHECK
  std::string diagnosis;
  const bool consistent = mate_registry_.check_consistent(jobs_, &diagnosis);
  if (!consistent) log_error("sd", "mate registry inconsistent: ", diagnosis);
  assert(consistent && "MateRegistry diverged from the job scan");
#endif
  guests_considered_ = 0;
  pass_guests_seen_ = 0;
  rotate_skip_ = 0;
  const bool rotating = sd_config_.scan.slice == SliceKind::kRotate &&
                        sd_config_.scan.guest_budget > 0;
  if (rotating) {
    // Wrap once the window would start past the guests the previous pass
    // saw — every waiting guest falls inside some window of the cycle.
    if (slice_offset_ >= last_pass_seen_) slice_offset_ = 0;
    rotate_skip_ = slice_offset_;
  }
  BackfillScheduler::schedule_pass(now);
  if (rotating) {
    last_pass_seen_ = pass_guests_seen_;
    slice_offset_ += sd_config_.scan.guest_budget;
  }
}

void SdPolicyScheduler::annotate(SimulationReport& report) const {
  BackfillScheduler::annotate(report);
  report.sd_estimate_rejections = estimate_rejections_;
  report.sd_selection_failures = selection_failures_;
  report.sd_rescans_avoided = rescans_avoided_;
  report.sd_budget_deferrals = budget_deferrals_;
}

double SdPolicyScheduler::pass_cutoff(SimTime now) {
  if (cluster_index_ == nullptr) {
    return compute_cutoff(sd_config_.cutoff, jobs_, mate_registry_.running(), now);
  }
  const std::uint64_t serial = cluster_index_->mutation_serial();
  const std::uint64_t epoch = mate_registry_.epoch();
  if (!cutoff_cache_valid_ || cutoff_serial_ != serial || cutoff_epoch_ != epoch) {
    // At a fixed (serial, epoch) the cut-off is now-independent: the
    // running set is fixed, a running job's wait froze at its start, and
    // predicted increases only move with machine mutations.
    cutoff_value_ = compute_cutoff(sd_config_.cutoff, jobs_, mate_registry_.running(), now);
    cutoff_serial_ = serial;
    cutoff_epoch_ = epoch;
    cutoff_cache_valid_ = true;
  } else if (crosscheck_) {
    const double fresh =
        compute_cutoff(sd_config_.cutoff, jobs_, mate_registry_.running(), now);
    if (fresh != cutoff_value_) {
      log_error("sd", "cutoff cache diverged: cached ", cutoff_value_, ", fresh ",
                fresh, " at t=", now);
      throw std::logic_error("SD cutoff cache diverged from a fresh computation");
    }
  }
  return cutoff_value_;
}

bool SdPolicyScheduler::try_malleable(SimTime now, Job& job, SimTime est_start,
                                      ReservationProfile& profile) {
  if (!job.can_start_shrunk()) return false;

  // Top-K slice: the budget counts guests *considered* — estimate
  // rejections, ledger skips and real mate searches all take a slot — so a
  // bounded pass sees a contiguous window of the priority order (a pure
  // prefix under SliceKind::kPrefix; kRotate starts the window where the
  // previous pass's ended) and the ledger can never change which guests
  // reach this point.
  if (sd_config_.scan.guest_budget > 0) {
    ++pass_guests_seen_;
    if (rotate_skip_ > 0) {
      // Before this pass's rotating window: deferred, no slot consumed.
      --rotate_skip_;
      ++budget_deferrals_;
      return false;
    }
    if (guests_considered_ >= sd_config_.scan.guest_budget) {
      ++budget_deferrals_;
      return false;
    }
    ++guests_considered_;
  }

  // Listing 1: pre-selection estimate. Malleability must beat the static
  // wait before we even search for mates. All estimates use the scheduler's
  // working duration (the prediction when future-work #2 is enabled).
  const SimTime planned = effective_req_time(job.spec);
  const SimTime static_end = static_end_for(est_start, planned);
  const SimTime mall_end_quick = quick_mall_end(now, planned, sd_config_.sharing_factor);
  if (static_end <= mall_end_quick) {
    ++estimate_rejections_;
    return false;
  }

  const double cutoff = pass_cutoff(now);

  // Free nodes a plan may borrow without displacing this pass's
  // reservations: whatever stays free for the quick-estimate duration.
  // One sweep over the window (min availability == the largest request
  // that starts now), instead of one earliest_start probe per count.
  int max_free_nodes = 0;
  if (sd_config_.include_free_nodes) {
    const SimTime d0 = mall_end_quick - now;
    const int cap = std::min(machine_.free_node_count(), job.spec.req_nodes - 1);
    if (cap >= 1) {
      max_free_nodes = std::clamp(profile.min_available(now, d0), 0, cap);
      if (max_free_nodes > 0 && !job.spec.constraints.unconstrained()) {
        // The shared profile counts ineligible nodes as available; the
        // class layer keeps a constrained guest from over-capping its
        // free-node budget with nodes its plan could never take.
        if (ReservationProfile* layer = class_profile(now, job.spec.constraints)) {
          max_free_nodes = std::clamp(layer->min_available(now, d0), 0, max_free_nodes);
        }
      }
    }
  }

  // Failed-select ledger: skip the search when this guest's last failure
  // provably still stands (docs/determinism.md "Scan-ledger skip safety").
  // The ledger needs the serial/epoch key, so it is inert without an
  // attached cluster index (standalone schedulers re-scan every time).
  const bool ledger_usable = sd_config_.scan.ledger && cluster_index_ != nullptr;
  if (ledger_usable &&
      scan_ledger_.can_skip(job.spec.id, cluster_index_->mutation_serial(),
                            mate_registry_.epoch(), planned, max_free_nodes, now)) {
    if (crosscheck_) {
      const auto verify = selector_.select(job, now, cutoff, max_free_nodes, planned);
      if (verify) {
        log_error("sd", "scan ledger claimed a safe skip for job ", job.spec.id,
                  " at t=", now, " but the full search found a plan");
        throw std::logic_error("GuestScanLedger skip diverged from the full mate search");
      }
    }
    ++selection_failures_;  // decision parity: the full search would fail too
    ++rescans_avoided_;
    return false;
  }

  const auto plan = selector_.select(job, now, cutoff, max_free_nodes, planned);
  if (!plan) {
    ++selection_failures_;
    if (ledger_usable) {
      GuestScanLedger::Entry entry;
      entry.serial = cluster_index_->mutation_serial();
      entry.epoch = mate_registry_.epoch();
      entry.planned = planned;
      entry.max_free = max_free_nodes;
      const MateSelector::ScanSummary& scan = selector_.last_scan();
      entry.valid_until =
          scan.truncated ? scan.kept_min_end : std::numeric_limits<SimTime>::max();
      scan_ledger_.record(job.spec.id, entry);
    }
    return false;
  }

  // Re-check the decision with the plan's exact increase (the quick
  // estimate assumed a uniform SharingFactor split).
  const SimTime mall_end = now + planned + plan->guest_increase;
  if (static_end <= mall_end) {
    ++estimate_rejections_;
    return false;
  }

  // Keep the pass profile truthful: mates now hold their nodes longer, and
  // any free nodes the guest borrowed are occupied until mall_end.
  // These windows are occupancy-backed: start_guest below stretches the
  // mates' predicted ends and occupies the borrowed free nodes, so the
  // index (and any class layer built later this pass) sees them directly.
  for (std::size_t i = 0; i < plan->mates.size(); ++i) {
    const Job& mate = jobs_.at(plan->mates[i]);
    if (plan->mate_increases[i] > 0) {
      reserve_window(mate.predicted_end, mate.predicted_end + plan->mate_increases[i],
                     mate.spec.req_nodes, /*occupancy_backed=*/true);
    }
  }
  int free_borrowed = 0;
  for (const auto& entry : plan->nodes) {
    if (entry.mate == kInvalidJob) ++free_borrowed;
  }
  if (free_borrowed > 0) {
    reserve_window(now, mall_end, free_borrowed, /*occupancy_backed=*/true);
  }

  log_debug("sd", "job ", job.spec.id, " -> malleable start, ", plan->mates.size(),
            " mates, PI=", plan->performance_impact, ", saves ",
            static_end - mall_end, "s");
  executor_.start_guest(job.spec.id, *plan);
  on_job_started(job.spec.id);
  ++malleable_starts_;
  return true;
}

}  // namespace sdsched
