// Adaptive SharingFactor (paper §3.3 / future work #1).
//
// The paper fixes SharingFactor at 0.5 (socket isolation on MN4) and notes
// that "online performance analysis of running jobs would feed a tuning
// algorithm for selecting optimal values of SharingFactor, further
// increasing nodes efficiency". This implements that tuning from the
// application profiles the contention model already carries:
//
//  * a mate with poor core-scalability (memory-bound, low alpha) loses
//    little by ceding cores, so the guest may take more than the socket
//    split;
//  * a guest with poor scalability gains little from extra cores, so there
//    is no point stressing the mate beyond the base factor;
//  * without profile information the base factor is returned unchanged.
//
// The result is clamped to [min_factor, max_factor] so a mate always keeps
// a meaningful share (the rank floor is enforced separately by the
// selector's per-node budgets).
#pragma once

#include "workload/app_profiles.h"

namespace sdsched {

struct AdaptiveSharingConfig {
  double min_factor = 0.25;
  double max_factor = 0.75;
  /// How aggressively profile mismatch moves the factor (0 = never).
  double gain = 0.5;
};

/// SharingFactor for one (mate, guest) pairing. Either profile may be null.
[[nodiscard]] double adaptive_sharing_factor(double base_factor,
                                             const ApplicationProfile* mate_profile,
                                             const ApplicationProfile* guest_profile,
                                             const AdaptiveSharingConfig& config = {}) noexcept;

}  // namespace sdsched
