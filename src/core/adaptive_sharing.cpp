#include "core/adaptive_sharing.h"

#include <algorithm>

namespace sdsched {

double adaptive_sharing_factor(double base_factor, const ApplicationProfile* mate_profile,
                               const ApplicationProfile* guest_profile,
                               const AdaptiveSharingConfig& config) noexcept {
  if (mate_profile == nullptr || guest_profile == nullptr) return base_factor;
  // How cheaply the mate cedes cores (1 - alpha: STREAM ~ 0.7, PILS ~ 0)
  // times how much the guest can exploit them (its alpha).
  const double mate_flexibility = 1.0 - mate_profile->scalability_alpha;
  const double guest_hunger = guest_profile->scalability_alpha;
  const double shift = config.gain * mate_flexibility * guest_hunger;
  return std::clamp(base_factor * (1.0 + shift), config.min_factor, config.max_factor);
}

}  // namespace sdsched
