#include "core/cutoff.h"

#include <algorithm>
#include <limits>

namespace sdsched {

double estimated_running_slowdown(const Job& job, SimTime now) noexcept {
  const auto req = static_cast<double>(std::max<SimTime>(job.spec.req_time, 1));
  const auto wait = static_cast<double>(job.wait_time(now));
  const auto increase = static_cast<double>(job.predicted_increase);
  return (wait + increase + req) / req;
}

double compute_cutoff(const CutoffConfig& config, const JobRegistry& jobs, SimTime now) {
  switch (config.kind) {
    case CutoffKind::Static:
      return config.value;
    case CutoffKind::Infinite:
      return std::numeric_limits<double>::infinity();
    case CutoffKind::DynamicAverage: {
      double sum = 0.0;
      std::size_t count = 0;
      for (const auto& job : jobs) {
        if (!job.running()) continue;
        sum += estimated_running_slowdown(job, now);
        ++count;
      }
      if (count == 0) return std::numeric_limits<double>::infinity();
      return sum / static_cast<double>(count);
    }
  }
  return config.value;
}

double compute_cutoff(const CutoffConfig& config, const JobRegistry& jobs,
                      const std::vector<JobId>& running, SimTime now) {
  if (config.kind != CutoffKind::DynamicAverage) return compute_cutoff(config, jobs, now);
  double sum = 0.0;
  std::size_t count = 0;
  for (const JobId id : running) {
    const Job& job = jobs.at(id);
    if (!job.running()) continue;  // tolerate a stale entry
    sum += estimated_running_slowdown(job, now);
    ++count;
  }
  if (count == 0) return std::numeric_limits<double>::infinity();
  return sum / static_cast<double>(count);
}

}  // namespace sdsched
