#include "core/mate_selector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <future>

#include "cluster/cluster_state_index.h"
#include "cluster/sharded_cluster_index.h"
#include "core/adaptive_sharing.h"
#include "core/cutoff.h"
#include "core/mate_registry.h"
#include "model/runtime_model.h"
#include "util/thread_pool.h"
#include "workload/app_profiles.h"

namespace sdsched {

namespace {

/// Table-2 profile of a job, or null when it carries none.
const ApplicationProfile* profile_of(const Job& job) noexcept {
  const int idx = job.spec.app_profile;
  const auto& profiles = table2_profiles();
  if (idx < 0 || idx >= static_cast<int>(profiles.size())) return nullptr;
  return &profiles[static_cast<std::size_t>(idx)];
}

/// Quick (pre-plan) duration estimate: the guest would run at roughly the
/// SharingFactor rate (Listing 1's runtime_increase input).
SimTime quick_duration(SimTime planned_runtime, double sharing_factor) noexcept {
  return planned_runtime + increase_for_rate(planned_runtime, sharing_factor);
}

double penalty_for(const Job& mate, SimTime now, SimTime increase) noexcept {
  const auto req = static_cast<double>(std::max<SimTime>(mate.spec.req_time, 1));
  return (static_cast<double>(mate.wait_time(now)) + static_cast<double>(increase) + req) /
         req;
}

/// Below this many eligible mates a sharded scan runs inline even with a
/// pool attached: task dispatch would cost more than the scan. Purely a
/// wall-clock knob — the merge is byte-identical either way.
constexpr std::size_t kParallelScanMin = 64;

}  // namespace

void MateSelector::release_budgets(JobId job) noexcept {
  const auto idx = static_cast<std::size_t>(job);
  if (idx >= budget_cache_.size()) return;
  CachedBudgets& slot = budget_cache_[idx];
  slot.valid = false;
  slot.nodes = {};  // actually release the heap block, not just clear()
}

bool MateSelector::eligible_mate(const Job& candidate, const Job& guest,
                                 SimTime now) const noexcept {
  if (!candidate.running() || !candidate.can_be_mate()) return false;
  if (candidate.spec.id == guest.spec.id) return false;
  if (candidate.started_as_guest) return false;
  if (static_cast<int>(candidate.guests.size()) >= config_.max_jobs_per_node - 1) {
    return false;
  }
  if (candidate.spec.req_nodes > guest.spec.req_nodes) return false;  // w_i <= W
  if (candidate.predicted_end <= now) return false;  // no remaining allocation
  return true;
}

MateSelector::CachedBudgets& MateSelector::budgets_for(const Job& job,
                                                       const Job& guest) const {
  CachedBudgets& slot = budget_cache_[static_cast<std::size_t>(job.spec.id)];
  // Budgets read mate shares and node free cores — state BELOW the index's
  // own resolution (a share resize can leave a node's free_at untouched),
  // so the cache keys on mutation_serial(), which bumps on every machine
  // notification, not on version(), which only bumps when indexed state
  // changed. Adaptive sharing makes the SharingFactor a function of the
  // (mate, guest) pairing, and standalone selectors have no serial source:
  // both refill every time (the historical cost).
  if (index_ != nullptr && !config_.adaptive_sharing && slot.valid &&
      slot.version == index_->mutation_serial()) {
    return slot;
  }

  // Future work #1: SharingFactor tuned per (mate, guest) pairing when
  // application profiles are known; the fixed socket split otherwise.
  const double sharing_factor =
      config_.adaptive_sharing
          ? adaptive_sharing_factor(config_.sharing_factor, profile_of(job),
                                    profile_of(guest))
          : config_.sharing_factor;

  slot.nodes.clear();
  slot.feasible = true;
  slot.memo_u_max = -1;
  for (const auto& share : job.shares) {
    const Node& node = machine_.node(share.node);
    NodeBudget budget;
    budget.node = share.node;
    budget.mate_current = share.cpus;
    budget.mate_static = std::max(1, share.static_cpus);
    budget.mate_min = std::max(1, job.spec.ranks_per_node);
    budget.idle = node.free_cores();
    const int take_cap =
        static_cast<int>(std::floor(sharing_factor * node.total_cores()));
    const int already_taken = budget.mate_static - budget.mate_current;
    const int max_take = std::clamp(
        std::min(take_cap - already_taken, budget.mate_current - budget.mate_min), 0,
        budget.mate_current);
    budget.guest_max = budget.idle + max_take;
    if (budget.guest_max < 1) {
      slot.feasible = false;
      break;
    }
    slot.nodes.push_back(budget);
  }
  slot.valid = true;
  slot.version = index_ != nullptr ? index_->mutation_serial() : 0;
  return slot;
}

void MateSelector::examine_candidate(const Job& job, const Job& guest, SimTime now,
                                     double max_slowdown, SimTime quick_d0, int u_max,
                                     std::vector<Candidate>& out) const {
  if (!eligible_mate(job, guest, now)) return;

  CachedBudgets& budgets = budgets_for(job, guest);
  if (!budgets.feasible) return;
  // §3.2.4: the guest's constraints filter the mates' nodes too. (The
  // budgets themselves are guest-independent; this filter is not.)
  if (!guest.spec.constraints.unconstrained()) {
    for (const NodeBudget& budget : budgets.nodes) {
      if (!node_satisfies(machine_.node(budget.node).attributes(),
                          guest.spec.constraints)) {
        return;
      }
    }
  }

  // Quick penalty ingredient: what the mate would keep if the guest needed
  // u_max cpus on each of its nodes. Memoized per (budgets, u_max) — a pure
  // function of both.
  if (budgets.memo_u_max != u_max) {
    double worst_kept_ratio = 1.0;
    for (const NodeBudget& budget : budgets.nodes) {
      const int g = std::min(u_max, budget.guest_max);
      const int kept = budget.mate_current - std::max(0, g - budget.idle);
      worst_kept_ratio = std::min(
          worst_kept_ratio, static_cast<double>(kept) / budget.mate_static);
    }
    budgets.memo_u_max = u_max;
    budgets.memo_ratio = worst_kept_ratio;
  }
  const double worst_kept_ratio = budgets.memo_ratio;

  const SimTime quick_increase = lost_progress_increase(quick_d0, worst_kept_ratio);
  const double sort_penalty = penalty_for(job, now, quick_increase);
  if (sort_penalty >= max_slowdown) return;  // Eq. 2 filter
  out.push_back(Candidate{job.spec.id, static_cast<int>(job.shares.size()), sort_penalty,
                          &budgets.nodes});
}

std::vector<MateSelector::Candidate> MateSelector::collect_candidates(
    const Job& guest, SimTime now, double max_slowdown, SimTime guest_runtime) const {
  const SimTime d0 = quick_duration(guest_runtime, config_.sharing_factor);
  const auto u_max = static_cast<int>(
      (guest.spec.req_cpus + guest.spec.req_nodes - 1) / guest.spec.req_nodes);

  // Candidates point into budget_cache_; size it up-front so slots never
  // move during the select (the registry does not grow mid-select).
  if (budget_cache_.size() < jobs_.size()) budget_cache_.resize(jobs_.size());

  std::vector<Candidate> candidates;
  candidates.reserve(registry_ != nullptr ? registry_->mates().size() : 16);
  if (registry_ != nullptr && sharded_ != nullptr && sharded_->shard_count() > 1) {
    // Sharded path: per-shard examination, merged in fixed shard order.
    // Sorting below by the strict (penalty, id) total order makes the
    // result independent of the examination order, so this is
    // byte-identical to the flat ascending-id walk.
    collect_sharded(guest, now, max_slowdown, d0, u_max, candidates);
  } else if (registry_ != nullptr) {
    // Incremental path: only the statically eligible mates, in ascending id
    // order — the same order (and therefore the same sorted result) the
    // full registry scan produces.
    for (const JobId id : registry_->mates()) {
      ++stats_.candidates_scanned;
      examine_candidate(jobs_.at(id), guest, now, max_slowdown, d0, u_max, candidates);
    }
  } else {
    for (const auto& job : jobs_) {
      ++stats_.candidates_scanned;
      examine_candidate(job, guest, now, max_slowdown, d0, u_max, candidates);
    }
  }

  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.sort_penalty != b.sort_penalty) return a.sort_penalty < b.sort_penalty;
    return a.id < b.id;
  });
  last_scan_ = ScanSummary{};
  if (config_.max_candidates > 0 &&
      static_cast<int>(candidates.size()) > config_.max_candidates) {
    candidates.resize(static_cast<std::size_t>(config_.max_candidates));
    // The truncated tail was never examined, so a failure proof from this
    // scan lapses as soon as any *kept* candidate can have expired out of
    // the window (eligible_mate's predicted_end <= now filter).
    last_scan_.truncated = true;
    for (const Candidate& cand : candidates) {
      last_scan_.kept_min_end =
          std::min(last_scan_.kept_min_end, jobs_.at(cand.id).predicted_end);
    }
  }
  return candidates;
}

void MateSelector::collect_sharded(const Job& guest, SimTime now, double max_slowdown,
                                   SimTime quick_d0, int u_max,
                                   std::vector<Candidate>& candidates) const {
  const ShardLayout& layout = sharded_->layout();
  const auto shards = static_cast<std::size_t>(sharded_->shard_count());

  // Partition the eligible-mate ids by the shard owning each mate's anchor
  // node (its first share — any deterministic assignment works: the merge
  // below re-establishes the flat order). Within a shard, ids stay in the
  // registry's ascending order.
  if (shard_mates_.size() < shards) shard_mates_.resize(shards);
  for (auto& ids : shard_mates_) ids.clear();
  const std::vector<JobId>& mates = registry_->mates();
  for (const JobId id : mates) {
    const Job& job = jobs_.at(id);
    const int anchor = job.shares.empty() ? 0 : job.shares.front().node;
    shard_mates_[static_cast<std::size_t>(layout.shard_of(anchor))].push_back(id);
  }

  // Examine each shard's slice independently. Concurrency safety rests on
  // the partition: a job is examined by exactly one task, and
  // examine_candidate writes only that job's budget-cache slot (pre-sized
  // by the caller, so slots never move) and the task-local output vector.
  struct ShardScan {
    std::vector<Candidate> found;
    std::uint64_t scanned = 0;
  };
  const auto scan_shard = [&](std::size_t s) {
    ShardScan result;
    for (const JobId id : shard_mates_[s]) {
      ++result.scanned;
      examine_candidate(jobs_.at(id), guest, now, max_slowdown, quick_d0, u_max,
                        result.found);
    }
    return result;
  };
  std::vector<ShardScan> results(shards);
  if (shard_pool_ != nullptr && mates.size() >= kParallelScanMin) {
    std::vector<std::future<ShardScan>> futures;
    futures.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      futures.push_back(shard_pool_->submit([&scan_shard, s] { return scan_shard(s); }));
    }
    for (std::size_t s = 0; s < shards; ++s) results[s] = futures[s].get();
  } else {
    for (std::size_t s = 0; s < shards; ++s) results[s] = scan_shard(s);
  }

  // Deterministic ordered merge: fixed shard order, counters summed in the
  // same order, candidates concatenated shard by shard (the caller's
  // (penalty, id) sort erases the partition boundary).
  if (stats_.shard_scanned.size() < shards) stats_.shard_scanned.resize(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    stats_.candidates_scanned += results[s].scanned;
    stats_.shard_scanned[s] += results[s].scanned;
    candidates.insert(candidates.end(),
                      std::make_move_iterator(results[s].found.begin()),
                      std::make_move_iterator(results[s].found.end()));
  }
  ++stats_.sharded_selects;
}

bool MateSelector::resolve_free_prefix(const Job& guest, int free_used,
                                       const std::vector<int>& needs,
                                       FreePrefix& out) const {
  const auto free_ids =
      sharded_ != nullptr && sharded_->shard_count() > 1
          ? sharded_->find_free_nodes(free_used, &guest.spec.constraints)
          : pick_free_nodes(machine_, index_, free_used, &guest.spec.constraints);
  if (!free_ids) return false;
  out.nodes.clear();
  out.nodes.reserve(static_cast<std::size_t>(free_used));
  out.guest_rate = 1e300;
  std::size_t need_idx = 0;
  for (const int node_id : *free_ids) {
    const int u = needs[need_idx++];
    const int cap = machine_.node(node_id).total_cores();
    const int g = std::min(u, cap);
    if (g < 1) return false;
    out.nodes.push_back(SharePlan{node_id, kInvalidJob, g, 0, u});
    out.guest_rate = std::min(out.guest_rate, static_cast<double>(g) / u);
  }
  return true;
}

std::optional<MatePlan> MateSelector::evaluate_combination(
    const Job& guest, SimTime now, double max_slowdown,
    const std::vector<const Candidate*>& combo, const std::vector<int>& needs,
    const FreePrefix& free_prefix, SimTime guest_runtime) const {
  ++stats_.combinations_evaluated;
  MatePlan plan;
  plan.nodes = free_prefix.nodes;
  plan.nodes.reserve(needs.size());
  std::size_t need_idx = free_prefix.nodes.size();
  double guest_rate = free_prefix.guest_rate;

  struct MateKept {
    const Candidate* cand;
    double rate;  ///< min over nodes kept/static
  };
  std::vector<MateKept> kept_rates;
  kept_rates.reserve(combo.size());
  for (const Candidate* cand : combo) {
    double mate_rate = 1.0;
    for (const auto& budget : *cand->nodes) {
      const int u = needs[need_idx++];
      const int g = std::min(u, budget.guest_max);
      if (g < 1) return std::nullopt;
      const int taken = std::max(0, g - budget.idle);
      const int kept = budget.mate_current - taken;
      assert(kept >= budget.mate_min);
      plan.nodes.push_back(SharePlan{budget.node, cand->id, g, kept, u});
      guest_rate = std::min(guest_rate, static_cast<double>(g) / u);
      mate_rate = std::min(mate_rate, static_cast<double>(kept) / budget.mate_static);
    }
    kept_rates.push_back(MateKept{cand, mate_rate});
  }
  assert(need_idx == needs.size());

  if (guest_rate <= 0.0) return std::nullopt;

  // Contiguous allocations (§3.2.4): the combined plan must form one run of
  // consecutive node ids.
  if (guest.spec.constraints.contiguous) {
    std::vector<int> ids;
    ids.reserve(plan.nodes.size());
    for (const auto& entry : plan.nodes) ids.push_back(entry.node);
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 1; i < ids.size(); ++i) {
      if (ids[i] != ids[i - 1] + 1) return std::nullopt;
    }
  }

  plan.guest_increase = increase_for_rate(guest_runtime, guest_rate);
  plan.guest_duration = guest_runtime + plan.guest_increase;
  const SimTime mall_end = now + plan.guest_duration;

  // §3.2.4: the guest must finish inside every mate's allocation.
  for (const MateKept& mk : kept_rates) {
    if (mall_end > jobs_.at(mk.cand->id).predicted_end) return std::nullopt;
  }

  // Exact penalties for this combination (Eq. 4 with the plan's duration).
  plan.performance_impact = 0.0;
  for (const MateKept& mk : kept_rates) {
    const Job& mate = jobs_.at(mk.cand->id);
    const SimTime increase = lost_progress_increase(plan.guest_duration, mk.rate);
    const double penalty = penalty_for(mate, now, increase);
    if (penalty >= max_slowdown) return std::nullopt;  // Eq. 2 on exact values
    plan.mates.push_back(mk.cand->id);
    plan.mate_increases.push_back(increase);
    plan.performance_impact += penalty;
  }
  return plan;
}

std::optional<MatePlan> MateSelector::select(const Job& guest, SimTime now,
                                             double max_slowdown, int max_free_nodes,
                                             SimTime guest_runtime) const {
  ++stats_.selects;
  last_scan_ = ScanSummary{};  // a degenerate guest never scans: proof holds forever
  const int total_nodes = guest.spec.req_nodes;
  if (total_nodes <= 0) return std::nullopt;
  if (guest_runtime <= 0) guest_runtime = guest.spec.req_time;
  const auto candidates = collect_candidates(guest, now, max_slowdown, guest_runtime);
  if (candidates.empty()) return std::nullopt;  // plans always involve >=1 mate

  // Guest's balanced static need per node, largest chunks first so free
  // nodes (which can host the most) absorb them. Invariant across the whole
  // DFS — computed at most once per select, and lazily: most selects never
  // complete a combination, and for big guests the split and its sort are
  // machine-size-proportional.
  std::vector<int> needs;
  const auto ensure_needs = [&]() -> const std::vector<int>& {
    if (needs.empty()) {
      needs = balanced_split(guest.spec.req_cpus, total_nodes);
      std::sort(needs.begin(), needs.end(), std::greater<int>());
    }
    return needs;
  };

  std::optional<MatePlan> best;
  double best_impact = 1e300;

  // Candidate positions sorted by (weight, position). The last mate of a
  // combination must carry *exactly* the remaining weight (Eq. 3 is an
  // equality): walking only that weight's positions at the final DFS level
  // visits the exact same evaluations, in the same order, that the full
  // scan reached after skipping every mismatched candidate.
  std::vector<std::pair<int, std::size_t>> weight_index;
  weight_index.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    weight_index.emplace_back(candidates[i].weight, i);
  }
  std::sort(weight_index.begin(), weight_index.end());

  // Prefer plans that lean on free nodes (zero penalty); then fill the
  // remaining weight with mate combinations, best-penalty-first DFS with
  // branch-and-bound on the (sorted) penalty lower bound.
  const int max_free =
      config_.include_free_nodes ? std::min(max_free_nodes, total_nodes - 1) : 0;
  FreePrefix prefix;
  for (int free_used = max_free; free_used >= 0; --free_used) {
    const int target = total_nodes - free_used;
    if (target == 0) continue;  // would be a static start, not SD's business

    // The free-node pick is the same for every combination at this
    // free_used (the machine does not change during a select): resolve it
    // once. An infeasible pick fails every combination, so skip the DFS.
    prefix.nodes.clear();
    prefix.guest_rate = 1e300;
    if (free_used > 0 && !resolve_free_prefix(guest, free_used, ensure_needs(), prefix)) {
      continue;
    }

    std::vector<const Candidate*> combo;
    const auto evaluate_leaf = [&](double /*bound*/) {
      auto plan = evaluate_combination(guest, now, max_slowdown, combo, ensure_needs(),
                                       prefix, guest_runtime);
      if (plan && plan->performance_impact < best_impact) {
        best_impact = plan->performance_impact;
        best = std::move(plan);
      }
    };
    const auto dfs = [&](auto&& self, std::size_t start, int remaining_weight,
                         int remaining_mates, double penalty_bound) -> void {
      if (remaining_weight == 0) {
        evaluate_leaf(penalty_bound);
        return;
      }
      if (remaining_mates == 0) return;
      if (remaining_mates == 1) {
        // Only an exact-weight candidate can complete the plan; smaller
        // weights dead-end at remaining_mates == 0 and larger ones are
        // skipped — walk just the matching positions. Penalties ascend
        // with position, so the branch-and-bound break is unchanged.
        for (auto it = std::lower_bound(weight_index.begin(), weight_index.end(),
                                        std::make_pair(remaining_weight, start));
             it != weight_index.end() && it->first == remaining_weight; ++it) {
          const Candidate& cand = candidates[it->second];
          const double bound = penalty_bound + cand.sort_penalty;
          if (bound >= best_impact) break;  // sorted: all later are >= this
          combo.push_back(&cand);
          evaluate_leaf(bound);
          combo.pop_back();
        }
        return;
      }
      for (std::size_t i = start; i < candidates.size(); ++i) {
        const Candidate& cand = candidates[i];
        if (cand.weight > remaining_weight) continue;
        const double bound = penalty_bound + cand.sort_penalty;
        if (bound >= best_impact) break;  // sorted: all later are >= this
        combo.push_back(&cand);
        self(self, i + 1, remaining_weight - cand.weight, remaining_mates - 1, bound);
        combo.pop_back();
      }
    };
    dfs(dfs, 0, target, config_.max_mates, 0.0);
  }
  if (best) ++stats_.plans_found;
  return best;
}

}  // namespace sdsched
