// Malleable resource selection (paper §3.2, Listing 2) — the simulator's
// analogue of the modified SLURM select/linear plug-in.
//
// Given a guest job that cannot start statically, find the set of running
// "mates" to shrink, minimizing the Performance Impact
//
//   PI = min Σ x_i · p_i                         (Eq. 1)
//   p_i = (wait_i + increase_i + req_i) / req_i  (Eq. 4)
//
// subject to p_i < MAX_SLOWDOWN (Eq. 2) and Σ x_i · w_i = W (Eq. 3), where
// w_i is mate i's node count and W the guest's. Additional constraints from
// §3.2.4/§3.3: at most `m` mates per plan, at most `max_jobs_per_node`
// occupants per node, a mate keeps at least one cpu per MPI rank, a guest
// takes at most SharingFactor of a node's cores from its owner, and the
// guest's predicted end must fall inside every mate's allocation.
//
// Heuristic: candidates are filtered by the cut-off, sorted by penalty, and
// truncated to `nm`; combinations of up to `m` mates are enumerated
// depth-first with branch-and-bound pruning on the penalty lower bound.
#pragma once

#include <optional>

#include "cluster/machine.h"
#include "core/sd_config.h"
#include "job/job_registry.h"
#include "sched/scheduler.h"

namespace sdsched {

class MateSelector {
 public:
  MateSelector(const Machine& machine, const JobRegistry& jobs, const SdConfig& config) noexcept
      : machine_(machine), jobs_(jobs), config_(config) {}

  /// Best mate plan for `guest` at `now` under cut-off `max_slowdown`
  /// (Eq. 2's P), or nullopt when no feasible combination exists.
  /// `max_free_nodes` bounds how many entirely free nodes a plan may use
  /// (0 unless the include_free_nodes option is active; the caller derives
  /// it from the reservation profile so guests never displace reservations).
  /// `guest_runtime` overrides the guest's planning duration (the runtime
  /// predictor's estimate); <= 0 uses the user request.
  [[nodiscard]] std::optional<MatePlan> select(const Job& guest, SimTime now,
                                               double max_slowdown, int max_free_nodes = 0,
                                               SimTime guest_runtime = 0) const;

  /// Eligibility test for the mate role (exposed for tests).
  [[nodiscard]] bool eligible_mate(const Job& candidate, const Job& guest,
                                   SimTime now) const noexcept;

 private:
  struct NodeBudget {
    int node = -1;
    int mate_current = 0;    ///< mate's current cpus there
    int mate_static = 0;     ///< mate's static split there
    int mate_min = 1;        ///< rank floor
    int idle = 0;            ///< free cores on the node
    int guest_max = 0;       ///< most the guest could get on this node
  };
  struct Candidate {
    JobId id = kInvalidJob;
    int weight = 0;            ///< node count (Eq. 3's w_i)
    double sort_penalty = 0.0; ///< Eq. 4 with the quick duration estimate
    std::vector<NodeBudget> nodes;
  };

  [[nodiscard]] std::vector<Candidate> collect_candidates(const Job& guest, SimTime now,
                                                          double max_slowdown,
                                                          SimTime guest_runtime) const;
  [[nodiscard]] std::optional<MatePlan> evaluate_combination(
      const Job& guest, SimTime now, double max_slowdown,
      const std::vector<const Candidate*>& combo, int free_nodes,
      SimTime guest_runtime) const;

  const Machine& machine_;
  const JobRegistry& jobs_;
  const SdConfig& config_;
};

}  // namespace sdsched
