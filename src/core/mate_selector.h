// Malleable resource selection (paper §3.2, Listing 2) — the simulator's
// analogue of the modified SLURM select/linear plug-in.
//
// Given a guest job that cannot start statically, find the set of running
// "mates" to shrink, minimizing the Performance Impact
//
//   PI = min Σ x_i · p_i                         (Eq. 1)
//   p_i = (wait_i + increase_i + req_i) / req_i  (Eq. 4)
//
// subject to p_i < MAX_SLOWDOWN (Eq. 2) and Σ x_i · w_i = W (Eq. 3), where
// w_i is mate i's node count and W the guest's. Additional constraints from
// §3.2.4/§3.3: at most `m` mates per plan, at most `max_jobs_per_node`
// occupants per node, a mate keeps at least one cpu per MPI rank, a guest
// takes at most SharingFactor of a node's cores from its owner, and the
// guest's predicted end must fall inside every mate's allocation.
//
// Heuristic: candidates are filtered by the cut-off, sorted by penalty, and
// truncated to `nm`; combinations of up to `m` mates are enumerated
// depth-first with branch-and-bound pruning on the penalty lower bound.
//
// Cost model: with a MateRegistry attached (set_mate_registry — the
// SdPolicyScheduler wires its own), candidate collection walks only the
// eligible-mate ids instead of the whole job registry; with a
// ClusterStateIndex attached (set_cluster_index), free-node picks go
// through the class-partitioned free-run index. Loop invariants of the DFS
// (the guest's balanced split and the free-node prefix of a plan) are
// resolved once per select() / per free_used value, never per evaluated
// combination. Decisions are identical either way — the fallbacks scan.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "cluster/machine.h"
#include "core/sd_config.h"
#include "job/job_registry.h"
#include "sched/scheduler.h"

namespace sdsched {

class ClusterStateIndex;
class MateRegistry;
class ShardedClusterIndex;
class ThreadPool;

class MateSelector {
 public:
  MateSelector(const Machine& machine, const JobRegistry& jobs, const SdConfig& config) noexcept
      : machine_(machine), jobs_(jobs), config_(config) {}

  /// Walk this registry's eligible-mate ids instead of scanning every job.
  void set_mate_registry(const MateRegistry* registry) noexcept { registry_ = registry; }

  /// Resolve free-node picks through the index instead of the machine scan.
  void set_cluster_index(const ClusterStateIndex* index) noexcept { index_ = index; }

  /// Shard the candidate scan: with a registry attached and more than one
  /// shard, collect_candidates partitions the eligible-mate ids by the
  /// shard owning each mate's anchor node and examines the shards
  /// independently — on `pool` when given (per-shard tasks are leaves,
  /// never submitting further work), inline in shard order otherwise.
  /// The per-shard results are concatenated in fixed shard order and
  /// sorted by the same strict (penalty, id) total order as the flat
  /// walk, so the candidate list — and therefore every plan — is
  /// byte-identical at every shard count, with or without the pool.
  /// Free-node picks inside select() route through the sharded ordered
  /// merge as well.
  void set_shard_context(const ShardedClusterIndex* sharded, ThreadPool* pool) noexcept {
    sharded_ = sharded;
    shard_pool_ = pool;
  }

  /// `job` finished: free its cached budget storage. Keeps the cache's heap
  /// footprint proportional to the *running* population instead of every
  /// job ever examined (archive-scale traces submit hundreds of thousands).
  void release_budgets(JobId job) noexcept;

  /// Best mate plan for `guest` at `now` under cut-off `max_slowdown`
  /// (Eq. 2's P), or nullopt when no feasible combination exists.
  /// `max_free_nodes` bounds how many entirely free nodes a plan may use
  /// (0 unless the include_free_nodes option is active; the caller derives
  /// it from the reservation profile so guests never displace reservations).
  /// `guest_runtime` overrides the guest's planning duration (the runtime
  /// predictor's estimate); <= 0 uses the user request.
  [[nodiscard]] std::optional<MatePlan> select(const Job& guest, SimTime now,
                                               double max_slowdown, int max_free_nodes = 0,
                                               SimTime guest_runtime = 0) const;

  /// Eligibility test for the mate role (exposed for tests).
  [[nodiscard]] bool eligible_mate(const Job& candidate, const Job& guest,
                                   SimTime now) const noexcept;

  /// Work counters (observability for `micro_scheduler --sd-pass`).
  struct SelectStats {
    std::uint64_t selects = 0;                 ///< select() calls
    std::uint64_t candidates_scanned = 0;      ///< jobs examined for the mate role
    std::uint64_t combinations_evaluated = 0;  ///< DFS leaf evaluations
    std::uint64_t plans_found = 0;             ///< selects that produced a plan
    std::uint64_t sharded_selects = 0;         ///< selects that used the shard path
    /// Candidates examined per shard (cumulative; sums to the sharded
    /// selects' share of candidates_scanned) — the work-split evidence
    /// `micro_scheduler --sd-pass --shards=` reports.
    std::vector<std::uint64_t> shard_scanned;
  };
  [[nodiscard]] const SelectStats& stats() const noexcept { return stats_; }

  /// Shape of the last select()'s candidate walk — what the failed-select
  /// ledger (GuestScanLedger) needs to bound how long a failure provably
  /// stands. An untruncated scan's failure holds until the serial/epoch
  /// move; a truncated one only until the earliest kept predicted end,
  /// because a kept top-nm candidate expiring can pull a previously
  /// truncated candidate into the explored window.
  struct ScanSummary {
    bool truncated = false;
    SimTime kept_min_end = std::numeric_limits<SimTime>::max();
  };
  [[nodiscard]] const ScanSummary& last_scan() const noexcept { return last_scan_; }

 private:
  struct NodeBudget {
    int node = -1;
    int mate_current = 0;    ///< mate's current cpus there
    int mate_static = 0;     ///< mate's static split there
    int mate_min = 1;        ///< rank floor
    int idle = 0;            ///< free cores on the node
    int guest_max = 0;       ///< most the guest could get on this node
  };
  /// A candidate's per-share budgets are guest-independent (unless
  /// adaptive sharing ties the SharingFactor to the pairing), so they are
  /// cached per job and recomputed only when the cluster index reports a
  /// machine notification (mutation_serial — budgets read per-share core
  /// counts below the resolution of the index's change-only version) —
  /// the share walk (which sums node occupants per share) went from once
  /// per select() to once per cluster mutation.
  struct CachedBudgets {
    std::uint64_t version = 0;  ///< index mutation serial the budgets reflect
    bool valid = false;         ///< version/contents are meaningful
    bool feasible = false;      ///< every share can host >= 1 guest cpu
    std::vector<NodeBudget> nodes;
    /// Quick-penalty memo: worst kept/static ratio for the last per-node
    /// guest need (u_max) asked about — guests overwhelmingly share one
    /// u_max (whole nodes), so the per-share minimum collapses to a hit.
    int memo_u_max = -1;
    double memo_ratio = 1.0;
  };
  struct Candidate {
    JobId id = kInvalidJob;
    int weight = 0;            ///< node count (Eq. 3's w_i)
    double sort_penalty = 0.0; ///< Eq. 4 with the quick duration estimate
    /// Budgets live in budget_cache_ (stable for the duration of a select).
    const std::vector<NodeBudget>* nodes = nullptr;
  };
  /// The free-node part of a plan — constant for a given free_used value,
  /// resolved once before the DFS instead of once per combination.
  struct FreePrefix {
    std::vector<SharePlan> nodes;
    double guest_rate = 1e300;  ///< min over free nodes of granted/needed
  };

  [[nodiscard]] std::vector<Candidate> collect_candidates(const Job& guest, SimTime now,
                                                          double max_slowdown,
                                                          SimTime guest_runtime) const;
  /// The sharded scan behind collect_candidates: partition the registry's
  /// eligible-mate ids by shard, examine per shard (on the pool when one
  /// is attached), merge in fixed shard order.
  void collect_sharded(const Job& guest, SimTime now, double max_slowdown,
                       SimTime quick_d0, int u_max,
                       std::vector<Candidate>& candidates) const;
  /// Examine one candidate (thread-safe across *distinct* jobs: writes
  /// only the job's own budget-cache slot and `out` — counters are the
  /// caller's responsibility, so shard tasks can run concurrently).
  void examine_candidate(const Job& job, const Job& guest, SimTime now,
                         double max_slowdown, SimTime quick_d0, int u_max,
                         std::vector<Candidate>& out) const;
  [[nodiscard]] CachedBudgets& budgets_for(const Job& job, const Job& guest) const;
  [[nodiscard]] bool resolve_free_prefix(const Job& guest, int free_used,
                                         const std::vector<int>& needs,
                                         FreePrefix& out) const;
  [[nodiscard]] std::optional<MatePlan> evaluate_combination(
      const Job& guest, SimTime now, double max_slowdown,
      const std::vector<const Candidate*>& combo, const std::vector<int>& needs,
      const FreePrefix& free_prefix, SimTime guest_runtime) const;

  const Machine& machine_;
  const JobRegistry& jobs_;
  const SdConfig& config_;
  const MateRegistry* registry_ = nullptr;
  const ClusterStateIndex* index_ = nullptr;
  const ShardedClusterIndex* sharded_ = nullptr;
  ThreadPool* shard_pool_ = nullptr;
  mutable SelectStats stats_;
  mutable ScanSummary last_scan_;
  /// Per-shard id partitions, reused across selects (allocation reuse).
  mutable std::vector<std::vector<JobId>> shard_mates_;
  /// Indexed by JobId; sized to the job registry at the start of a collect,
  /// so entries (and the pointers Candidates take into them) stay put for
  /// the whole select. Budgets are reused across selects and passes while
  /// the index version is unchanged; without an index (or with adaptive
  /// sharing, whose SharingFactor depends on the guest) every examine
  /// refills its slot — the historical cost, bit-identical results.
  mutable std::vector<CachedBudgets> budget_cache_;
};

}  // namespace sdsched
