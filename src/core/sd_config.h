// SD-Policy configuration knobs (paper §3.2-3.3).
#pragma once

#include <limits>

#include "core/guest_scan_policy.h"

namespace sdsched {

/// MAX_SLOWDOWN cut-off flavour (§3.2.2).
enum class CutoffKind : int {
  Static = 0,          ///< administrator-chosen constant (MAXSD 5/10/50)
  Infinite = 1,        ///< no cut-off (MAXSD infinite)
  DynamicAverage = 2,  ///< DynAVGSD: mean estimated slowdown of running jobs
};

struct CutoffConfig {
  CutoffKind kind = CutoffKind::DynamicAverage;
  double value = 10.0;  ///< used when kind == Static

  [[nodiscard]] static CutoffConfig max_sd(double v) noexcept {
    return {CutoffKind::Static, v};
  }
  [[nodiscard]] static CutoffConfig infinite() noexcept {
    return {CutoffKind::Infinite, std::numeric_limits<double>::infinity()};
  }
  [[nodiscard]] static CutoffConfig dynamic_avg() noexcept {
    return {CutoffKind::DynamicAverage, 0.0};
  }
};

struct SdConfig {
  /// Fraction of a node's cores a guest may take from a mate (§3.3).
  /// 0.5 = socket isolation on a two-socket node (the MN4 setting).
  double sharing_factor = 0.5;

  /// Maximum mates per guest, the heuristic's `m` (§3.2.4; 2 was optimal).
  int max_mates = 2;

  /// Candidate-list truncation `nm`: only the best-penalty candidates are
  /// combined. 0 = unlimited.
  int max_candidates = 128;

  /// Allow plans mixing shrunk mates with entirely free nodes (§3.2.4
  /// "including free nodes to reduce fragmentation").
  bool include_free_nodes = false;

  /// Occupancy cap per node including the owner (§3.2.4 "more than two
  /// mates per node are supported"). 2 = one owner + one guest.
  int max_jobs_per_node = 2;

  /// Future work #1: tune SharingFactor per (mate, guest) pairing from
  /// application profiles instead of the fixed socket split (§3.3).
  bool adaptive_sharing = false;

  CutoffConfig cutoff = CutoffConfig::dynamic_avg();

  /// Per-pass guest-consideration bounds for saturated queues (guest
  /// budget + failed-select ledger). Defaults are byte-identical to the
  /// historical unbounded pass.
  GuestScanPolicy scan;
};

}  // namespace sdsched
