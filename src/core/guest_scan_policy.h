// Queue-depth-sublinear SD passes: the per-pass guest budget and the
// failed-select ledger (ROADMAP "SD at archive scale").
//
// Under a saturated workload (offered load > 1, e.g. RICC's 1.35) the wait
// queue grows without bound and the SD pass — which attempts a mate search
// for every queued malleability-capable guest — scales with queue depth.
// Two independent bounds restore sublinearity:
//
//  * GuestScanPolicy::guest_budget — a top-K head-of-queue slice: at most
//    K guests are *considered* per pass, in the active WaitQueue priority
//    order. A slot is consumed whether the consideration ends in a quick-
//    estimate rejection, a ledger skip or a real mate search, so the slice
//    is a pure prefix of the priority order and the ledger below never
//    changes which guests reach it. K = 0 (the default) is unbounded and
//    byte-identical to the historical pass.
//
//  * GuestScanLedger — skip the mate search for a guest whose previous
//    search failed in a provably unchanged state. The proof (spelled out
//    in docs/determinism.md "Scan-ledger skip safety"): at a fixed
//    ClusterStateIndex mutation_serial and MateRegistry epoch, every
//    ingredient of a select() is constant or monotonically *harder* in
//    `now` — candidate penalties and the DynAVGSD cut-off are now-
//    independent (running jobs' waits froze at their starts), the eligible
//    candidate set can only shrink (predicted-end expiry), and a later
//    `now` only tightens the guest-must-finish-inside-every-mate
//    constraint. The single exception is candidate-list truncation: a
//    kept top-nm candidate expiring can pull a previously-truncated one
//    into the explored window, so a truncated scan's failure is proven
//    only until the earliest kept predicted end (Entry::valid_until,
//    fed by MateSelector::last_scan()).
//
// Skips are decision-invisible by construction; SDSCHED_SD_CROSSCHECK (or
// GuestScanPolicy::crosscheck) re-runs the full search on every claimed
// skip and throws on divergence — the runtime analogue of the proof.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.h"
#include "util/time_utils.h"

namespace sdsched {

/// How the per-pass guest budget slices the priority order.
enum class SliceKind : int {
  /// Strict FIFO prefix: the first guest_budget malleability-capable
  /// guests in priority order. The historical (byte-identical) default.
  kPrefix = 0,
  /// Wait-time-rotating window: each pass starts its budget window where
  /// the previous pass's window ended (wrapping when the window runs past
  /// the guests seen last pass), so guests stuck behind a head-of-queue
  /// clump that always fails to start still get considered within
  /// ceil(seen / budget) passes — long-waiting tail guests are reached
  /// instead of starved. Deterministic: the offset advances by exactly
  /// guest_budget per pass. Inert when guest_budget == 0.
  kRotate = 1,
};

/// SD guest-consideration policy knobs (SdConfig::scan).
struct GuestScanPolicy {
  /// Top-K head-of-queue slice: malleability-capable guests considered per
  /// pass. 0 = unbounded (byte-identical to the pre-ledger pass).
  int guest_budget = 0;

  /// Which slice of the priority order the budget admits (kPrefix keeps
  /// the historical decisions byte-identical).
  SliceKind slice = SliceKind::kPrefix;

  /// Consult the failed-select ledger before re-running a mate search.
  /// Decision-invisible (see the proof above), so it defaults on; turning
  /// it off only changes how much work runs, never which plans start.
  bool ledger = true;

  /// Re-run the full mate search on every claimed-safe skip and throw
  /// std::logic_error on divergence. The SDSCHED_SD_CROSSCHECK environment
  /// variable enables the same mode process-wide.
  bool crosscheck = false;
};

/// Per-guest record of the state in which the last mate search failed.
/// Indexed by JobId (the budget-cache pattern); entries are invalidated
/// when their guest starts or finishes, and go stale automatically when
/// the serial or epoch moves on.
class GuestScanLedger {
 public:
  struct Entry {
    std::uint64_t serial = 0;  ///< ClusterStateIndex::mutation_serial at failure
    std::uint64_t epoch = 0;   ///< MateRegistry::epoch at failure
    SimTime planned = 0;       ///< planning duration the failed search used
    SimTime valid_until = 0;   ///< first instant the failure proof lapses
    int max_free = 0;          ///< free-node allowance the failed search saw
    bool valid = false;
  };

  void record(JobId guest, const Entry& entry) {
    const auto idx = static_cast<std::size_t>(guest);
    if (idx >= entries_.size()) entries_.resize(idx + 1);
    entries_[idx] = entry;
    entries_[idx].valid = true;
  }

  /// True when `guest`'s recorded failure provably still stands: identical
  /// serial/epoch/planned, a free-node allowance no larger than the failed
  /// search saw, and `now` still inside the truncation-proof window.
  [[nodiscard]] bool can_skip(JobId guest, std::uint64_t serial, std::uint64_t epoch,
                              SimTime planned, int max_free, SimTime now) const noexcept {
    const auto idx = static_cast<std::size_t>(guest);
    if (idx >= entries_.size()) return false;
    const Entry& entry = entries_[idx];
    return entry.valid && entry.serial == serial && entry.epoch == epoch &&
           entry.planned == planned && max_free <= entry.max_free &&
           now < entry.valid_until;
  }

  void invalidate(JobId guest) noexcept {
    const auto idx = static_cast<std::size_t>(guest);
    if (idx < entries_.size()) entries_[idx].valid = false;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace sdsched
