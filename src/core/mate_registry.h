// Incrementally maintained candidate sets for the SD policy's hot path.
//
// MateSelector::collect_candidates and the DynAVGSD cut-off used to scan
// the *entire* job registry (pending, running and completed jobs alike) on
// every malleable-start attempt — trace-scale registries made each attempt
// O(total jobs). This registry listens to the job lifecycle notifications
// the kernel already emits to the scheduler (start and finish) and keeps
// two sorted id vectors current instead:
//
//  * running() — every running job, in ascending id order (the exact order
//    a registry scan visits them, so DynAVGSD's floating-point average sums
//    in the identical order);
//  * mates()   — the statically eligible subset of the mate role: running,
//    malleable, and not started as a guest. The per-query conditions of
//    eligible_mate (weight, remaining allocation, hosted-guest count) stay
//    at query time because they depend on the guest or on `now`.
//
// Decision parity with the full scan is the contract; check_consistent()
// re-derives both sets by brute force (SdPolicyScheduler runs it on every
// pass under SDSCHED_INDEX_CROSSCHECK, as the asan preset does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "job/job_registry.h"

namespace sdsched {

class MateRegistry {
 public:
  MateRegistry() = default;

  /// Index an already-populated registry (warm-start scenarios construct
  /// the scheduler against running jobs).
  void seed(const JobRegistry& jobs);

  /// `job` began running (static or guest start). Guests are recorded as
  /// running but never as mates (started_as_guest must be set by the time
  /// this fires — the NodeManager sets it during placement).
  void on_start(const Job& job);

  /// `job` completed: drop it from both sets.
  void on_finish(JobId id);

  /// Ascending ids of running jobs.
  [[nodiscard]] const std::vector<JobId>& running() const noexcept { return running_; }

  /// Ascending ids of running jobs statically eligible for the mate role.
  [[nodiscard]] const std::vector<JobId>& mates() const noexcept { return mates_; }

  /// Population epoch: bumped by every seed/start/finish notification.
  /// Together with ClusterStateIndex::mutation_serial it keys the SD scan
  /// ledger — an unchanged (serial, epoch) pair means neither the machine
  /// nor the running population moved since a guest's last mate search.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Re-derive both sets from `jobs` and compare. On mismatch returns false
  /// and, if given, fills `diagnosis`.
  [[nodiscard]] bool check_consistent(const JobRegistry& jobs,
                                      std::string* diagnosis = nullptr) const;

 private:
  std::vector<JobId> running_;
  std::vector<JobId> mates_;
  std::uint64_t epoch_ = 0;
};

}  // namespace sdsched
