#include "core/estimator.h"

// Header-only helpers; translation unit kept so the module has an anchor.
