// SD-Policy: slowdown-driven malleable backfill (paper §3.1, Listing 1).
//
// A variant of backfill: each waiting job first gets the static trial (the
// base class); when that cannot start it *now* and the job can start shrunk,
// the policy estimates whether malleability would beat the static wait —
//
//   static_end = estimated_start + req_time      (reservation profile)
//   mall_end   = now + req_time + increase       (worst-case model, §3.4)
//
// — and only when static_end > mall_end asks the MateSelector for the
// minimum-Performance-Impact mate set. A successful plan starts the job
// immediately on the mates' shrunk shares, extends the mates' predicted
// ends, and keeps the pass's reservation profile consistent.
#pragma once

#include "core/cutoff.h"
#include "core/mate_selector.h"
#include "core/sd_config.h"
#include "sched/backfill.h"

namespace sdsched {

class SdPolicyScheduler final : public BackfillScheduler {
 public:
  SdPolicyScheduler(Machine& machine, JobRegistry& jobs, StartExecutor& executor,
                    SchedConfig sched_config, SdConfig sd_config) noexcept
      : BackfillScheduler(machine, jobs, executor, sched_config),
        sd_config_(sd_config),
        selector_(machine, jobs, sd_config_) {}

  [[nodiscard]] const char* name() const noexcept override { return "sd-policy"; }
  [[nodiscard]] const SdConfig& sd_config() const noexcept { return sd_config_; }

  // Decision counters (observability; Fig. 7 uses kernel-side records).
  [[nodiscard]] std::uint64_t malleable_starts() const noexcept { return malleable_starts_; }
  [[nodiscard]] std::uint64_t estimate_rejections() const noexcept {
    return estimate_rejections_;
  }
  [[nodiscard]] std::uint64_t selection_failures() const noexcept {
    return selection_failures_;
  }

 protected:
  bool try_malleable(SimTime now, Job& job, SimTime est_start,
                     ReservationProfile& profile) override;

 private:
  SdConfig sd_config_;
  MateSelector selector_;
  std::uint64_t malleable_starts_ = 0;
  std::uint64_t estimate_rejections_ = 0;
  std::uint64_t selection_failures_ = 0;
};

}  // namespace sdsched
