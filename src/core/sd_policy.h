// SD-Policy: slowdown-driven malleable backfill (paper §3.1, Listing 1).
//
// A variant of backfill: each waiting job first gets the static trial (the
// base class); when that cannot start it *now* and the job can start shrunk,
// the policy estimates whether malleability would beat the static wait —
//
//   static_end = estimated_start + req_time      (reservation profile)
//   mall_end   = now + req_time + increase       (worst-case model, §3.4)
//
// — and only when static_end > mall_end asks the MateSelector for the
// minimum-Performance-Impact mate set. A successful plan starts the job
// immediately on the mates' shrunk shares, extends the mates' predicted
// ends, and keeps the pass's reservation profile consistent.
//
// The policy owns a MateRegistry — the incrementally maintained running /
// eligible-mate id sets fed by the start and finish notifications the
// schedulers emit — so neither the DynAVGSD cut-off nor candidate
// collection rescans the whole job registry per malleable-start attempt.
// Under SDSCHED_INDEX_CROSSCHECK every pass re-derives the registry by
// brute force and asserts agreement.
#pragma once

#include "core/cutoff.h"
#include "core/mate_registry.h"
#include "core/mate_selector.h"
#include "core/sd_config.h"
#include "sched/backfill.h"

namespace sdsched {

class SdPolicyScheduler final : public BackfillScheduler {
 public:
  SdPolicyScheduler(Machine& machine, JobRegistry& jobs, StartExecutor& executor,
                    SchedConfig sched_config, SdConfig sd_config) noexcept
      : BackfillScheduler(machine, jobs, executor, sched_config),
        sd_config_(sd_config),
        selector_(machine, jobs, sd_config_) {
    // Warm-start scenarios construct the scheduler against running jobs.
    mate_registry_.seed(jobs_);
    selector_.set_mate_registry(&mate_registry_);
  }

  [[nodiscard]] const char* name() const noexcept override { return "sd-policy"; }
  [[nodiscard]] const SdConfig& sd_config() const noexcept { return sd_config_; }

  void schedule_pass(SimTime now) override;

  void set_cluster_index(const ClusterStateIndex* index) noexcept override {
    BackfillScheduler::set_cluster_index(index);
    selector_.set_cluster_index(index);
  }

  void on_finish(JobId job) override {
    mate_registry_.on_finish(job);
    selector_.release_budgets(job);
    BackfillScheduler::on_finish(job);
  }

  // Decision counters (observability; Fig. 7 uses kernel-side records).
  [[nodiscard]] std::uint64_t malleable_starts() const noexcept { return malleable_starts_; }
  [[nodiscard]] std::uint64_t estimate_rejections() const noexcept {
    return estimate_rejections_;
  }
  [[nodiscard]] std::uint64_t selection_failures() const noexcept {
    return selection_failures_;
  }

  /// Mate-selection work counters (micro_scheduler --sd-pass).
  [[nodiscard]] const MateSelector::SelectStats& selector_stats() const noexcept {
    return selector_.stats();
  }

 protected:
  bool try_malleable(SimTime now, Job& job, SimTime est_start,
                     ReservationProfile& profile) override;

  void on_job_started(JobId job) override { mate_registry_.on_start(jobs_.at(job)); }

 private:
  SdConfig sd_config_;
  MateSelector selector_;
  MateRegistry mate_registry_;
  std::uint64_t malleable_starts_ = 0;
  std::uint64_t estimate_rejections_ = 0;
  std::uint64_t selection_failures_ = 0;
};

}  // namespace sdsched
