// SD-Policy: slowdown-driven malleable backfill (paper §3.1, Listing 1).
//
// A variant of backfill: each waiting job first gets the static trial (the
// base class); when that cannot start it *now* and the job can start shrunk,
// the policy estimates whether malleability would beat the static wait —
//
//   static_end = estimated_start + req_time      (reservation profile)
//   mall_end   = now + req_time + increase       (worst-case model, §3.4)
//
// — and only when static_end > mall_end asks the MateSelector for the
// minimum-Performance-Impact mate set. A successful plan starts the job
// immediately on the mates' shrunk shares, extends the mates' predicted
// ends, and keeps the pass's reservation profile consistent.
//
// The policy owns a MateRegistry — the incrementally maintained running /
// eligible-mate id sets fed by the start and finish notifications the
// schedulers emit — so neither the DynAVGSD cut-off nor candidate
// collection rescans the whole job registry per malleable-start attempt.
// Under SDSCHED_INDEX_CROSSCHECK every pass re-derives the registry by
// brute force and asserts agreement.
//
// Saturated-queue bounds (SdConfig::scan, see core/guest_scan_policy.h):
// an optional top-K guest budget slices each pass to the head of the
// priority order, and the failed-select ledger skips mate searches whose
// previous failure provably still stands — keyed on the cluster index's
// mutation_serial and the MateRegistry epoch, invalidated by the start /
// finish hooks below (reconfigurations land as machine mutations, so the
// serial key covers them). The DynAVGSD cut-off rides the same key in a
// one-slot cache: at a fixed (serial, epoch) it is now-independent, since
// running jobs' waits froze at their starts. SDSCHED_SD_CROSSCHECK (env)
// or scan.crosscheck re-runs every skipped search in full and throws
// std::logic_error on divergence.
#pragma once

#include "core/cutoff.h"
#include "core/guest_scan_policy.h"
#include "core/mate_registry.h"
#include "core/mate_selector.h"
#include "core/sd_config.h"
#include "sched/backfill.h"

namespace sdsched {

class SdPolicyScheduler final : public BackfillScheduler {
 public:
  SdPolicyScheduler(Machine& machine, JobRegistry& jobs, StartExecutor& executor,
                    SchedConfig sched_config, SdConfig sd_config) noexcept;

  [[nodiscard]] const char* name() const noexcept override { return "sd-policy"; }
  [[nodiscard]] const SdConfig& sd_config() const noexcept { return sd_config_; }

  void schedule_pass(SimTime now) override;

  void annotate(SimulationReport& report) const override;

  void set_cluster_index(const ClusterStateIndex* index) noexcept override {
    BackfillScheduler::set_cluster_index(index);
    selector_.set_cluster_index(index);
  }

  /// Forward the shard context to the MateSelector: candidate scans
  /// partition by shard (on the shared worker pool when the config asks
  /// for parallelism) and free-node probes ride the ordered shard merge.
  /// Defined in sd_policy.cpp (needs the complete ShardedClusterIndex).
  void set_sharded_index(const ShardedClusterIndex* sharded) noexcept override;

  void on_finish(JobId job) override {
    mate_registry_.on_finish(job);
    selector_.release_budgets(job);
    scan_ledger_.invalidate(job);
    BackfillScheduler::on_finish(job);
  }

  // Decision counters (observability; Fig. 7 uses kernel-side records).
  [[nodiscard]] std::uint64_t malleable_starts() const noexcept { return malleable_starts_; }
  [[nodiscard]] std::uint64_t estimate_rejections() const noexcept {
    return estimate_rejections_;
  }
  [[nodiscard]] std::uint64_t selection_failures() const noexcept {
    return selection_failures_;
  }
  /// Mate searches the failed-select ledger skipped (each also counts as a
  /// selection failure, so the failure totals match the unbounded pass).
  [[nodiscard]] std::uint64_t rescans_avoided() const noexcept { return rescans_avoided_; }
  /// Guests turned away by an exhausted per-pass budget.
  [[nodiscard]] std::uint64_t budget_deferrals() const noexcept { return budget_deferrals_; }

  /// Mate-selection work counters (micro_scheduler --sd-pass).
  [[nodiscard]] const MateSelector::SelectStats& selector_stats() const noexcept {
    return selector_.stats();
  }

 protected:
  bool try_malleable(SimTime now, Job& job, SimTime est_start,
                     ReservationProfile& profile) override;

  void on_job_started(JobId job) override {
    mate_registry_.on_start(jobs_.at(job));
    scan_ledger_.invalidate(job);
  }

 private:
  /// This pass's MAX_SLOWDOWN cut-off, through the one-slot (serial,
  /// epoch) cache when a cluster index is attached.
  [[nodiscard]] double pass_cutoff(SimTime now);

  SdConfig sd_config_;
  MateSelector selector_;
  MateRegistry mate_registry_;
  GuestScanLedger scan_ledger_;
  bool crosscheck_ = false;     ///< scan.crosscheck OR SDSCHED_SD_CROSSCHECK
  int guests_considered_ = 0;   ///< this pass, against scan.guest_budget
  // Rotating-slice state (scan.slice == kRotate; all zero under kPrefix,
  // keeping the prefix path byte-identical).
  int rotate_skip_ = 0;         ///< guests still to skip before this pass's window
  int pass_guests_seen_ = 0;    ///< malleability-capable guests reaching the slice
  int last_pass_seen_ = 0;      ///< previous pass's pass_guests_seen_ (wrap bound)
  int slice_offset_ = 0;        ///< where the next pass's window starts
  bool cutoff_cache_valid_ = false;
  std::uint64_t cutoff_serial_ = 0;
  std::uint64_t cutoff_epoch_ = 0;
  double cutoff_value_ = 0.0;
  std::uint64_t malleable_starts_ = 0;
  std::uint64_t estimate_rejections_ = 0;
  std::uint64_t selection_failures_ = 0;
  std::uint64_t rescans_avoided_ = 0;
  std::uint64_t budget_deferrals_ = 0;
};

}  // namespace sdsched
