// End-time estimation for the Listing 1 decision: static_end vs mall_end.
//
// static_end comes from the backfill reservation profile (the caller already
// has it). mall_end needs a *pre-selection* estimate of the malleable
// runtime increase — before mates are known — which the paper derives from
// the worst-case model under the uniform SharingFactor split: the guest
// would run at rate ~ sharing_factor, so
//   mall_end = now + planned_runtime + increase(planned_runtime, sf).
//
// `planned_runtime` is the scheduler's working estimate of the job's
// duration: the user request, or the RuntimePredictor's refinement when
// prediction is enabled (future work #2).
#pragma once

#include "model/runtime_model.h"

namespace sdsched {

/// Pre-selection malleable end estimate (Listing 1's `mall_end`).
[[nodiscard]] inline SimTime quick_mall_end(SimTime now, SimTime planned_runtime,
                                            double sharing_factor) noexcept {
  return now + planned_runtime + increase_for_rate(planned_runtime, sharing_factor);
}

/// Static end estimate from a backfill start estimate.
[[nodiscard]] inline SimTime static_end_for(SimTime est_start,
                                            SimTime planned_runtime) noexcept {
  return est_start + planned_runtime;
}

}  // namespace sdsched
