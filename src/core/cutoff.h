// MAX_SLOWDOWN cut-off computation (paper §3.2.2).
//
// The cut-off bounds the penalty a single mate may absorb. The static
// flavour is an operator constant; DynAVGSD tracks the mean *estimated*
// slowdown of running jobs — estimated from requested times, because those
// are all a real scheduler knows — and is refreshed every scheduling pass
// (the simulator's "whenever the controller is not busy").
#pragma once

#include "core/sd_config.h"
#include "job/job_registry.h"

namespace sdsched {

/// Estimated slowdown of a running job at `now`:
/// (wait + req_time + accrued predicted increase) / req_time.
[[nodiscard]] double estimated_running_slowdown(const Job& job, SimTime now) noexcept;

/// The cut-off value P for this pass (scans the whole registry for the
/// running set — the standalone fallback).
[[nodiscard]] double compute_cutoff(const CutoffConfig& config, const JobRegistry& jobs,
                                    SimTime now);

/// Same cut-off from a maintained running-id list (ascending ids — the
/// order the registry scan visits, so DynAVGSD's average sums identically).
[[nodiscard]] double compute_cutoff(const CutoffConfig& config, const JobRegistry& jobs,
                                    const std::vector<JobId>& running, SimTime now);

}  // namespace sdsched
