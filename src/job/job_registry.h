// Dense job storage indexed by JobId.
#pragma once

#include <cassert>
#include <vector>

#include "job/job.h"

namespace sdsched {

class JobRegistry {
 public:
  /// Add a job; its spec.id must equal its index (enforced, or assigned if
  /// the spec carries kInvalidJob).
  JobId add(JobSpec spec);

  [[nodiscard]] Job& at(JobId id) {
    assert(id < jobs_.size());
    return jobs_[id];
  }
  [[nodiscard]] const Job& at(JobId id) const {
    assert(id < jobs_.size());
    return jobs_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] auto begin() noexcept { return jobs_.begin(); }
  [[nodiscard]] auto end() noexcept { return jobs_.end(); }
  [[nodiscard]] auto begin() const noexcept { return jobs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return jobs_.end(); }

  /// Ids of jobs currently in Running state (fresh scan; for cutoff feedback).
  [[nodiscard]] std::vector<JobId> running_ids() const;

 private:
  std::vector<Job> jobs_;
};

}  // namespace sdsched
