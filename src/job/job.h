// Job model: the immutable submission record (JobSpec, one SWF line) and the
// mutable simulation state (Job).
//
// Two views of time coexist deliberately:
//  * execution truth — work_done/rate integration against base_runtime;
//    only the simulator kernel sees it (the real machine's analogue).
//  * scheduler belief — requested-time-based predictions (predicted_end,
//    accrued increase); everything the policy decides on uses these, because
//    a real scheduler never knows actual durations in advance (paper §3.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "job/job_types.h"
#include "sim/event.h"
#include "util/time_utils.h"

namespace sdsched {

/// Placement constraints (paper §3.2.4: the selection algorithm "supports
/// contiguous allocations, node filtering by name, architecture, memory and
/// network constraints"). Empty string / zero means unconstrained.
struct JobConstraints {
  std::string required_arch;
  int min_memory_gb = 0;
  std::string required_network;
  bool contiguous = false;  ///< consecutive node ids

  [[nodiscard]] bool unconstrained() const noexcept {
    return required_arch.empty() && min_memory_gb == 0 && required_network.empty() &&
           !contiguous;
  }
};

/// Immutable submission record (mirrors the SWF fields the policy uses).
struct JobSpec {
  JobId id = kInvalidJob;
  SimTime submit = 0;
  SimTime base_runtime = 0;  ///< duration at full static allocation (trace "run time")
  SimTime req_time = 0;      ///< user-requested wallclock limit
  int req_cpus = 1;          ///< requested processors
  int req_nodes = 0;         ///< whole nodes; 0 = derive from req_cpus at load time
  int ranks_per_node = 1;    ///< MPI ranks per node: floor for shrinking (>=1 cpu/rank)
  MalleabilityClass malleability = MalleabilityClass::Malleable;
  int app_profile = -1;  ///< index into the ApplicationProfile table, -1 = none
  int user_id = -1;
  JobConstraints constraints;
};

/// One node's worth of a job's allocation.
///
/// `cpus` is what the job currently holds (its DROM mask width);
/// `static_cpus` is the balanced per-node split of req_cpus the job would
/// hold in a static run — the reference point of the Eq. 5/6 models, so a
/// statically placed job always runs at rate exactly 1.
struct NodeShare {
  int node = -1;
  int cpus = 0;
  int static_cpus = 0;
};

/// Balanced split of `req_cpus` across `nodes` nodes: the first
/// (req_cpus % nodes) nodes carry one extra cpu. This is the "statically
/// load balanced" assumption of paper §3.2.3.
[[nodiscard]] std::vector<int> balanced_split(int req_cpus, int nodes);

/// Mutable per-job simulation state. Owned by JobRegistry; everything is a
/// plain value so simulations are copyable and independent.
struct Job {
  JobSpec spec;

  JobState state = JobState::Pending;
  SimTime start_time = -1;
  SimTime end_time = -1;

  // --- execution truth (simulator kernel only) ---
  std::vector<NodeShare> shares;   ///< current allocation
  double work_done = 0.0;          ///< seconds of full-rate-equivalent progress
  double rate = 1.0;               ///< current progress per wallclock second
  SimTime last_progress_update = 0;
  EventHandle finish_event = kInvalidEvent;

  // --- scheduler belief ---
  SimTime predicted_end = -1;      ///< start + req_time + accrued predicted increase
  SimTime predicted_increase = 0;  ///< accrued worst-case increase from sharing

  // --- malleability bookkeeping ---
  bool started_as_guest = false;    ///< scheduled via SD-Policy with reduced resources
  bool ever_mate = false;           ///< was shrunk at least once to host a guest
  std::vector<JobId> mates;         ///< (guest only) jobs we took cores from
  std::vector<JobId> guests;        ///< (mate only) jobs currently on our nodes
  int shrink_count = 0;             ///< reconfigurations applied to this job
  /// DROM mask changes (per node) applied since the kernel last integrated
  /// progress — the unit the reconfiguration-overhead model charges for.
  int pending_reconfig_ops = 0;

  [[nodiscard]] bool running() const noexcept { return state == JobState::Running; }
  [[nodiscard]] bool pending() const noexcept { return state == JobState::Pending; }
  [[nodiscard]] bool malleable() const noexcept {
    return spec.malleability == MalleabilityClass::Malleable;
  }
  /// Can this job *start* with fewer cpus than requested (guest role)?
  [[nodiscard]] bool can_start_shrunk() const noexcept {
    return spec.malleability != MalleabilityClass::Rigid;
  }
  /// Can this running job be shrunk (mate role)? Only truly malleable jobs.
  [[nodiscard]] bool can_be_mate() const noexcept { return malleable(); }

  [[nodiscard]] int allocated_cpus() const noexcept;
  [[nodiscard]] int min_cpus_per_node() const noexcept;  ///< min share over nodes
  [[nodiscard]] bool is_sharing() const noexcept {
    return !mates.empty() || !guests.empty();
  }

  /// Wait time experienced so far (running/completed) or up to `now`.
  [[nodiscard]] SimTime wait_time(SimTime now) const noexcept {
    return (start_time >= 0 ? start_time : now) - spec.submit;
  }
  /// Response = end - submit. Requires completion.
  [[nodiscard]] SimTime response_time() const noexcept { return end_time - spec.submit; }
  /// Paper metric: response / static execution time, floored at 1s runtime.
  [[nodiscard]] double slowdown() const noexcept;
};

/// Derive whole-node request from cpus (SLURM select/linear semantics).
[[nodiscard]] int nodes_for(int req_cpus, int cores_per_node) noexcept;

}  // namespace sdsched
