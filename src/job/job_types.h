// Shared enums for job classification (Feitelson's taxonomy, paper §2.1).
#pragma once

#include <cstdint>
#include <string_view>

namespace sdsched {

/// How a job can adapt its resources.
enum class MalleabilityClass : std::uint8_t {
  Rigid = 0,     ///< fixed allocation chosen at submit time ("static")
  Moldable = 1,  ///< can *start* with a different allocation, then fixed
  Malleable = 2  ///< can shrink/expand at runtime (DROM-enabled)
};

enum class JobState : std::uint8_t {
  Pending = 0,
  Running = 1,
  Completed = 2,
  Cancelled = 3  ///< never ran (e.g. impossible request); excluded from metrics
};

[[nodiscard]] constexpr std::string_view to_string(MalleabilityClass c) noexcept {
  switch (c) {
    case MalleabilityClass::Rigid: return "rigid";
    case MalleabilityClass::Moldable: return "moldable";
    case MalleabilityClass::Malleable: return "malleable";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(JobState s) noexcept {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

}  // namespace sdsched
