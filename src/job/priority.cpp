#include "job/priority.h"

#include <algorithm>

#include "job/wait_queue.h"

namespace sdsched {

double job_priority(const PriorityConfig& config, const JobSpec& spec, SimTime now) noexcept {
  switch (config.kind) {
    case PriorityKind::Fcfs:
      // Smaller submit == higher priority; expressed as a negated timestamp
      // so "higher is better" holds uniformly.
      return -static_cast<double>(spec.submit);
    case PriorityKind::SmallestFirst:
      return -static_cast<double>(spec.req_nodes);
    case PriorityKind::Multifactor: {
      const auto waited = static_cast<double>(std::max<SimTime>(now - spec.submit, 0));
      const double age_factor =
          std::min(waited / static_cast<double>(std::max<SimTime>(config.age_saturation, 1)),
                   1.0);
      const double size_factor =
          static_cast<double>(spec.req_nodes) / std::max(1, config.machine_nodes);
      return config.age_weight * age_factor + config.size_weight * size_factor;
    }
  }
  return 0.0;
}

void sort_by_priority(const PriorityConfig& config, const JobRegistry& jobs, SimTime now,
                      std::vector<JobId>& ids) {
  if (config.kind == PriorityKind::Fcfs) return;  // FCFS order is the input order
  std::stable_sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
    return job_priority(config, jobs.at(a).spec, now) >
           job_priority(config, jobs.at(b).spec, now);
  });
}

std::vector<JobId> priority_order(const PriorityConfig& config, const WaitQueue& queue,
                                  const JobRegistry& jobs, SimTime now) {
  std::vector<JobId> ids = queue.ordered_ids();  // FCFS order = tie-break order
  sort_by_priority(config, jobs, now, ids);
  return ids;
}

}  // namespace sdsched
