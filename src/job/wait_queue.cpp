#include "job/wait_queue.h"

#include <algorithm>
#include <cassert>

#include "job/job_registry.h"

namespace sdsched {

void WaitQueue::push(JobId id, SimTime submit) {
  const Entry entry{submit, id};
  cache_dirty_ = true;
  if (entries_.empty() || entries_.back().submit < submit ||
      (entries_.back().submit == submit && entries_.back().id < id)) {
    entries_.push_back(entry);
    return;
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry, [](const Entry& a, const Entry& b) {
        return a.submit != b.submit ? a.submit < b.submit : a.id < b.id;
      });
  entries_.insert(pos, entry);
}

bool WaitQueue::remove(JobId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  cache_dirty_ = true;
  return true;
}

bool WaitQueue::contains(JobId id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const Entry& e) { return e.id == id; });
}

std::vector<JobId> WaitQueue::ordered_ids() const {
  std::vector<JobId> ids;
  ids.reserve(entries_.size());
  for (const auto& entry : entries_) ids.push_back(entry.id);
  return ids;
}

const std::vector<JobId>& WaitQueue::scheduling_order(SimTime now) const {
  const bool time_dependent = config_.kind == PriorityKind::Multifactor;
  if (!cache_dirty_ && (!time_dependent || cache_now_ == now)) return cache_;

  cache_.clear();
  cache_.reserve(entries_.size());
  for (const auto& entry : entries_) cache_.push_back(entry.id);
  if (config_.kind != PriorityKind::Fcfs) {
    assert(jobs_ != nullptr && "non-FCFS priority needs configure(..., &registry)");
    sort_by_priority(config_, *jobs_, now, cache_);
  }
  cache_dirty_ = false;
  cache_now_ = now;
  return cache_;
}

}  // namespace sdsched
