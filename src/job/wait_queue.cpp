#include "job/wait_queue.h"

#include <algorithm>

namespace sdsched {

void WaitQueue::push(JobId id, SimTime submit) {
  const Entry entry{submit, id};
  if (entries_.empty() || entries_.back().submit < submit ||
      (entries_.back().submit == submit && entries_.back().id < id)) {
    entries_.push_back(entry);
    return;
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry, [](const Entry& a, const Entry& b) {
        return a.submit != b.submit ? a.submit < b.submit : a.id < b.id;
      });
  entries_.insert(pos, entry);
}

bool WaitQueue::remove(JobId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool WaitQueue::contains(JobId id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const Entry& e) { return e.id == id; });
}

std::vector<JobId> WaitQueue::ordered_ids() const {
  std::vector<JobId> ids;
  ids.reserve(entries_.size());
  for (const auto& entry : entries_) ids.push_back(entry.id);
  return ids;
}

}  // namespace sdsched
