// Wait queue in scheduling order (SLURM priority queue).
//
// Jobs are kept in (submit, id) arrival order incrementally — O(log n)
// ordered insert, O(1) amortized for the common in-order arrival — and the
// queue additionally maintains a cached *scheduling-order* view for the
// configured priority policy, so a scheduling pass no longer sorts (or even
// copies) the queue when nothing changed since the last pass:
//  * Fcfs: the cache is the arrival order itself;
//  * SmallestFirst (and any other time-independent priority): the cache is
//    re-sorted only after a push/remove invalidates it;
//  * Multifactor: priorities depend on `now` (the age factor saturates), so
//    the cache is additionally keyed by the time it was computed at —
//    same-timestamp passes still reuse it.
//
// remove() only marks the cache dirty, it never mutates the cached vector:
// a pass may keep iterating the view returned by scheduling_order() while
// removing the jobs it starts (the snapshot-per-pass semantics schedulers
// have always relied on).
#pragma once

#include <vector>

#include "job/priority.h"
#include "sim/event.h"
#include "util/time_utils.h"

namespace sdsched {

class JobRegistry;

class WaitQueue {
 public:
  /// Install the priority policy the scheduling-order cache follows. The
  /// registry is needed for priorities that read job specs (size, age);
  /// an unconfigured queue behaves as plain FCFS.
  void configure(const PriorityConfig& config, const JobRegistry* jobs) noexcept {
    config_ = config;
    jobs_ = jobs;
    cache_dirty_ = true;
  }

  /// Insert keeping (submit, id) order. O(n) worst case, O(1) for the common
  /// in-order arrival.
  void push(JobId id, SimTime submit);

  /// Remove a job wherever it sits. Returns false if absent. Invalidates the
  /// scheduling-order cache lazily (see header comment).
  bool remove(JobId id);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool contains(JobId id) const noexcept;

  /// Oldest job in arrival order. Requires !empty().
  [[nodiscard]] JobId front() const { return entries_.front().id; }

  /// Snapshot of ids in (submit, id) arrival order.
  [[nodiscard]] std::vector<JobId> ordered_ids() const;

  /// Ids in scheduling order under the configured priority at `now`. The
  /// returned view stays valid (and fixed) across remove() calls; it is
  /// refreshed only on the next scheduling_order() call after a change.
  [[nodiscard]] const std::vector<JobId>& scheduling_order(SimTime now) const;

 private:
  struct Entry {
    SimTime submit;
    JobId id;
  };
  std::vector<Entry> entries_;  ///< always in (submit, id) order

  PriorityConfig config_;
  const JobRegistry* jobs_ = nullptr;

  mutable std::vector<JobId> cache_;   ///< scheduling-order view
  mutable bool cache_dirty_ = true;
  mutable SimTime cache_now_ = -1;     ///< Multifactor: time the cache is valid for
};

}  // namespace sdsched
