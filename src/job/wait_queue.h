// FCFS wait queue (SLURM priority queue with priority == arrival order).
//
// Jobs are kept in (submit, id) order; backfill walks the queue in priority
// order and may remove from the middle when a later job starts early.
#pragma once

#include <vector>

#include "sim/event.h"
#include "util/time_utils.h"

namespace sdsched {

class WaitQueue {
 public:
  /// Insert keeping (submit, id) order. O(n) worst case, O(1) for the common
  /// in-order arrival.
  void push(JobId id, SimTime submit);

  /// Remove a job wherever it sits. Returns false if absent.
  bool remove(JobId id);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool contains(JobId id) const noexcept;

  /// Highest-priority (oldest) job. Requires !empty().
  [[nodiscard]] JobId front() const { return entries_.front().id; }

  /// Snapshot of ids in priority order (stable view for a scheduling pass).
  [[nodiscard]] std::vector<JobId> ordered_ids() const;

 private:
  struct Entry {
    SimTime submit;
    JobId id;
  };
  std::vector<Entry> entries_;
};

}  // namespace sdsched
