#include "job/job_registry.h"

namespace sdsched {

JobId JobRegistry::add(JobSpec spec) {
  const auto id = static_cast<JobId>(jobs_.size());
  if (spec.id == kInvalidJob) {
    spec.id = id;
  }
  assert(spec.id == id && "JobRegistry requires dense, in-order ids");
  Job job;
  job.spec = spec;
  jobs_.push_back(std::move(job));
  return id;
}

std::vector<JobId> JobRegistry::running_ids() const {
  std::vector<JobId> ids;
  for (const auto& job : jobs_) {
    if (job.running()) ids.push_back(job.spec.id);
  }
  return ids;
}

}  // namespace sdsched
