// Queue priority policies.
//
// The paper evaluates SD-Policy on SLURM's default FIFO priority ("favors
// the scheduling of jobs in order of priority", §3.1); production SLURM
// sites run the multifactor plug-in. Both are provided so the policy can be
// studied under realistic priority mixes. Higher priority schedules first;
// ties fall back to (submit, id) FCFS order.
#pragma once

#include <vector>

#include "job/job.h"
#include "job/job_registry.h"

namespace sdsched {

class WaitQueue;

enum class PriorityKind : int {
  Fcfs = 0,           ///< arrival order (the paper's setting)
  SmallestFirst = 1,  ///< fewest requested nodes first (SJF-ish, starvation-prone)
  Multifactor = 2,    ///< SLURM-style weighted sum of age and size factors
};

struct PriorityConfig {
  PriorityKind kind = PriorityKind::Fcfs;
  /// Multifactor weights. The age factor saturates at `age_saturation`
  /// (SLURM's PriorityMaxAge); the size factor is the job's fraction of the
  /// machine (favour-small sites use a negative weight).
  double age_weight = 1000.0;
  double size_weight = 0.0;
  SimTime age_saturation = 7 * kDay;
  int machine_nodes = 1;  ///< normalizes the size factor
};

/// Priority of one job at `now` (higher runs first).
[[nodiscard]] double job_priority(const PriorityConfig& config, const JobSpec& spec,
                                  SimTime now) noexcept;

/// Stable-sort `ids` (given in FCFS order, which therefore breaks ties) by
/// descending priority at `now`. The one comparator both priority_order()
/// and the WaitQueue's cached scheduling-order view go through.
void sort_by_priority(const PriorityConfig& config, const JobRegistry& jobs, SimTime now,
                      std::vector<JobId>& ids);

/// Queue ids ordered by descending priority, FCFS tie-break. For
/// PriorityKind::Fcfs this is exactly the queue's native order.
[[nodiscard]] std::vector<JobId> priority_order(const PriorityConfig& config,
                                                const WaitQueue& queue,
                                                const JobRegistry& jobs, SimTime now);

}  // namespace sdsched
