#include "job/job.h"

#include <algorithm>

namespace sdsched {

int Job::allocated_cpus() const noexcept {
  int total = 0;
  for (const auto& share : shares) total += share.cpus;
  return total;
}

int Job::min_cpus_per_node() const noexcept {
  int lowest = 0;
  for (const auto& share : shares) {
    lowest = (lowest == 0) ? share.cpus : std::min(lowest, share.cpus);
  }
  return lowest;
}

double Job::slowdown() const noexcept {
  const auto runtime = std::max<SimTime>(spec.base_runtime, 1);
  return static_cast<double>(response_time()) / static_cast<double>(runtime);
}

int nodes_for(int req_cpus, int cores_per_node) noexcept {
  if (req_cpus <= 0) return 1;
  return (req_cpus + cores_per_node - 1) / cores_per_node;
}

std::vector<int> balanced_split(int req_cpus, int nodes) {
  std::vector<int> split(static_cast<std::size_t>(std::max(1, nodes)), 0);
  if (nodes <= 0) return split;
  const int base = req_cpus / nodes;
  const int extra = req_cpus % nodes;
  for (int i = 0; i < nodes; ++i) {
    split[i] = base + (i < extra ? 1 : 0);
  }
  return split;
}

}  // namespace sdsched
