#include "sim/engine.h"

namespace sdsched {

bool Engine::step() {
  if (queue_.empty()) return false;
  const auto fired = queue_.pop();
  assert(fired.time >= now_);
  now_ = fired.time;
  if (handler_) handler_(fired);
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

}  // namespace sdsched
