// Binary-heap event queue with O(log n) insertion and lazy cancellation.
//
// Malleability makes job completion times volatile: every shrink/expand
// reschedules the affected jobs' finish events. Cancellation is lazy — a
// cancelled handle stays in the heap and is skipped on pop — which keeps
// cancel O(1) amortized and avoids heap surgery.
#pragma once

#include <cstddef>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.h"
#include "util/time_utils.h"

namespace sdsched {

class EventQueue {
 public:
  /// Schedule `event` at `time`; returns a handle usable with cancel().
  EventHandle schedule(SimTime time, Event event);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled handle is a harmless no-op (returns false).
  bool cancel(EventHandle handle);

  [[nodiscard]] bool empty() const noexcept;

  /// Time of the next live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// The next live event without popping it. Requires !empty(). Lets the
  /// simulation kernel coalesce same-timestamp bursts (e.g. run one
  /// scheduling pass after the last submit of a burst, not one per submit).
  [[nodiscard]] Event next_event() const;

  struct Fired {
    SimTime time = 0;
    Event event;
    EventHandle handle = kInvalidEvent;
  };

  /// Pop the next live event. Requires !empty().
  Fired pop();

  [[nodiscard]] std::size_t live_count() const noexcept { return live_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  ///< kind-major, insertion-minor tiebreak key
    EventHandle handle;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Determinism audit (detlint D1): membership-only — handles are tested
  // with find/contains and erased individually; the set is never iterated,
  // so hash order cannot reach the event schedule.
  mutable std::unordered_set<EventHandle> cancelled_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace sdsched
