#include "sim/event_queue.h"

#include <cassert>

namespace sdsched {

EventHandle EventQueue::schedule(SimTime time, Event event) {
  const EventHandle handle = next_handle_++;
  // Kind-major sequence: within a timestamp, all JobFinish events come
  // before JobSubmit, before SchedulerTick; insertion order breaks the rest.
  const std::uint64_t seq =
      (static_cast<std::uint64_t>(event.kind) << 56) | (next_seq_++ & 0x00ffffffffffffffULL);
  heap_.push(Entry{time, seq, handle, event});
  ++live_;
  return handle;
}

bool EventQueue::cancel(EventHandle handle) {
  if (handle == kInvalidEvent) return false;
  if (handle >= next_handle_) return false;
  const bool inserted = cancelled_.insert(handle).second;
  if (inserted && live_ > 0) --live_;
  return inserted;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().handle);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_dead();
  assert(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::next_event() const {
  drop_dead();
  assert(!heap_.empty());
  return heap_.top().event;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  assert(live_ > 0);
  --live_;
  return Fired{top.time, top.event, top.handle};
}

}  // namespace sdsched
