// Simulation events.
//
// The simulator drives four event kinds. Ties at the same timestamp are
// broken by kind order first (ends before arrivals, so resources freed at t
// are visible to jobs arriving at t, matching SLURM's behaviour of
// processing completions before scheduling), then by insertion sequence for
// determinism.
#pragma once

#include <cstdint>

#include "util/time_utils.h"

namespace sdsched {

using JobId = std::uint32_t;
inline constexpr JobId kInvalidJob = UINT32_MAX;

enum class EventKind : std::uint8_t {
  JobFinish = 0,     ///< a running job completes (payload: job)
  JobSubmit = 1,     ///< a job arrives in the wait queue (payload: job)
  SchedulerTick = 2  ///< periodic backfill pass (no payload)
};

struct Event {
  EventKind kind = EventKind::SchedulerTick;
  JobId job = kInvalidJob;
};

/// Stable identity for a scheduled event, used to cancel/reschedule job
/// finish events when malleability changes a job's completion time.
using EventHandle = std::uint64_t;
inline constexpr EventHandle kInvalidEvent = 0;

}  // namespace sdsched
