// Discrete-event engine: a clock plus the event queue plus a dispatch loop.
//
// The engine is policy-free; the Simulation facade (src/api) registers a
// handler and owns all domain state. Time never moves backwards; scheduling
// an event in the past is a programming error and asserts.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/event.h"
#include "sim/event_queue.h"

namespace sdsched {

class Engine {
 public:
  using Handler = std::function<void(const EventQueue::Fired&)>;

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  EventHandle schedule_at(SimTime time, Event event) {
    assert(time >= now_ && "cannot schedule events in the past");
    return queue_.schedule(time, event);
  }
  EventHandle schedule_after(SimTime delay, Event event) {
    return schedule_at(now_ + delay, event);
  }
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.live_count(); }

  /// Time / payload of the next live event. Require !idle().
  [[nodiscard]] SimTime next_time() const { return queue_.next_time(); }
  [[nodiscard]] Event next_event() const { return queue_.next_event(); }

  /// Run until the queue drains (or `max_events` fire). Returns events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Fire exactly one event if any is pending. Returns true if one fired.
  bool step();

 private:
  EventQueue queue_;
  Handler handler_;
  SimTime now_ = 0;
};

}  // namespace sdsched
