#include "api/sweep.h"

#include <chrono>
#include <exception>
#include <future>
#include <stdexcept>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace sdsched {

namespace {

SweepResult run_cell(const SweepCell& cell) {
  const auto start = std::chrono::steady_clock::now();
  SweepResult result;
  result.name = cell.name;
  result.report = Simulation(cell.config, cell.workload).run();
  result.wall_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace

std::size_t SweepRunner::effective_jobs(std::size_t cells) const noexcept {
  const std::size_t requested =
      jobs_ == 0 ? ThreadPool::default_concurrency() : static_cast<std::size_t>(jobs_);
  return cells < requested ? (cells == 0 ? 1 : cells) : requested;
}

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepCell>& cells) const {
  // Determinism audit (detlint D1): insert-only duplicate detector — never
  // iterated, and cell order (the visible order of results) comes from the
  // caller's vector, so hash order cannot leak into output.
  std::unordered_set<std::string> names;
  for (const auto& cell : cells) {
    if (cell.name.empty()) {
      throw std::invalid_argument("SweepRunner: cell with empty name");
    }
    if (!names.insert(cell.name).second) {
      throw std::invalid_argument("SweepRunner: duplicate cell name '" + cell.name + "'");
    }
  }

  std::vector<SweepResult> results(cells.size());
  const std::size_t workers = effective_jobs(cells.size());
  log_debug("sweep", cells.size(), " cells on ", workers, " worker(s)");

  // Both paths honour the documented contract: every cell runs, then the
  // first failure (in input order for the serial path) is rethrown.
  std::exception_ptr first_error;
  if (workers <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      try {
        results[i] = run_cell(cells[i]);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
  } else {
    ThreadPool pool(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      pending.push_back(pool.submit([&cells, &results, i] {
        results[i] = run_cell(cells[i]);
      }));
    }
    // Wait for *every* cell before propagating the first failure, so no task
    // still references cells/results when we unwind.
    for (auto& future : pending) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::uint64_t SweepRunner::cell_seed(std::uint64_t base, std::size_t index) noexcept {
  // SplitMix64 finalizer over the (base, index) pair.
  std::uint64_t x = base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 0x9e3779b97f4a7c15ULL : x;
}

}  // namespace sdsched
