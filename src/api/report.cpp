#include "api/report.h"

#include <sstream>

#include "metrics/summary.h"

namespace sdsched {

std::string SimulationReport::brief() const {
  std::ostringstream oss;
  oss << "[" << policy << " @ " << workload << "] " << to_string(summary);
  return oss.str();
}

void SimulationReport::to_json(JsonWriter& json) const {
  json.begin_object();
  json.field("policy", policy);
  json.field("workload", workload);
  json.key("summary");
  sdsched::to_json(json, summary);
  json.key("counters");
  json.begin_object();
  json.field("events_fired", events_fired);
  json.field("scheduling_passes", scheduling_passes);
  json.field("submits_coalesced", submits_coalesced);
  json.field("ticks_cancelled", ticks_cancelled);
  json.field("malleable_starts", malleable_starts);
  json.field("drom_shrink_ops", drom_shrink_ops);
  json.field("drom_expand_ops", drom_expand_ops);
  json.field("cancelled_jobs", cancelled_jobs);
  json.field("sd_estimate_rejections", sd_estimate_rejections);
  json.field("sd_selection_failures", sd_selection_failures);
  json.field("sd_rescans_avoided", sd_rescans_avoided);
  json.field("sd_budget_deferrals", sd_budget_deferrals);
  json.end_object();
  json.end_object();
}

void SimulationReport::records_to_json(JsonWriter& json) const {
  json.begin_array();
  for (const JobRecord& r : records) {
    json.begin_array();
    json.value(r.id);
    json.value(r.submit);
    json.value(r.start);
    json.value(r.end);
    json.value(r.req_time);
    json.value(r.base_runtime);
    json.value(r.req_cpus);
    json.value(r.req_nodes);
    json.value(r.was_guest ? 1 : 0);
    json.value(r.was_mate ? 1 : 0);
    json.value(r.reconfigurations);
    json.end_array();
  }
  json.end_array();
}

std::string SimulationReport::json() const {
  JsonWriter writer;
  to_json(writer);
  return writer.str();
}

}  // namespace sdsched
