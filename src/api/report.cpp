#include "api/report.h"

#include <sstream>

#include "metrics/summary.h"

namespace sdsched {

std::string SimulationReport::brief() const {
  std::ostringstream oss;
  oss << "[" << policy << " @ " << workload << "] " << to_string(summary);
  return oss.str();
}

}  // namespace sdsched
