// Simulation facade — the public entry point of the library.
//
//   Workload w = generate_cirne({...});
//   SimulationConfig cfg;
//   cfg.machine.nodes = 1024;
//   cfg.policy = PolicyKind::SdPolicy;
//   SimulationReport report = Simulation(cfg, w).run();
//
// The Simulation owns the discrete-event kernel: it feeds submissions to the
// scheduler, executes the scheduler's start decisions (implementing
// StartExecutor), integrates job progress under the configured runtime
// model (optionally refined by the application contention model), manages
// finish events through every malleability reconfiguration, and collects
// metrics.
#pragma once

#include <memory>
#include <optional>

#include "api/report.h"
#include "cluster/cluster_state_index.h"
#include "cluster/machine.h"
#include "cluster/shard_layout.h"
#include "cluster/sharded_cluster_index.h"
#include "core/sd_config.h"
#include "core/sd_policy.h"
#include "drom/node_manager.h"
#include "job/job_registry.h"
#include "metrics/collector.h"
#include "model/node_perf.h"
#include "model/progress.h"
#include "model/runtime_predictor.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "workload/workload.h"

namespace sdsched {

enum class PolicyKind : int { Fcfs = 0, Backfill = 1, SdPolicy = 2 };

[[nodiscard]] constexpr const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::Fcfs: return "fcfs";
    case PolicyKind::Backfill: return "backfill";
    case PolicyKind::SdPolicy: return "sd-policy";
  }
  return "?";
}

struct SimulationConfig {
  MachineConfig machine;
  SchedConfig sched;
  PolicyKind policy = PolicyKind::Backfill;
  SdConfig sd;  ///< used when policy == SdPolicy

  /// How simulated applications respond to resource changes (Fig. 8
  /// compares Ideal vs WorstCase); the scheduler always estimates with the
  /// worst-case model regardless.
  RuntimeModelKind execution_model = RuntimeModelKind::Ideal;

  /// Enable the Table-2 application contention model (real-run reproduction).
  bool use_app_model = false;
  double bw_capacity_per_socket = 1.0;

  /// Replace user estimates with the online runtime predictor (paper §4.1 /
  /// future work #2) for all scheduler planning.
  bool use_runtime_prediction = false;
  double predictor_smoothing = 0.3;

  /// Wallclock lost per DROM mask change per node (shrink/expand). The
  /// paper measured this as negligible for DROM (§2.1) — the default —
  /// but checkpoint/restart-based malleability (§5: FLEX-MPI et al.) costs
  /// minutes; the ablation bench sweeps this to show why low overhead is
  /// what makes high-frequency malleability viable.
  SimTime reconfig_overhead = 0;

  /// Node-contiguous scheduler-state shards (cluster/shard_layout.h).
  /// Decisions are byte-identical at every count (deterministic ordered
  /// shard merge); count > 1 splits pass work per shard, and parallel
  /// additionally fans candidate scans onto the shared worker pool.
  ShardConfig shards;

  /// Safety valve for runaway simulations (0 = unlimited).
  std::uint64_t max_events = 0;
};

class Simulation final : public StartExecutor {
 public:
  /// The workload is prepared (clamped/sorted) against the machine.
  Simulation(SimulationConfig config, Workload workload);

  /// Run to completion and return the report. One-shot.
  [[nodiscard]] SimulationReport run();

  // StartExecutor (called by schedulers; not for direct use).
  void start_static(JobId job, const std::vector<int>& nodes) override;
  void start_guest(JobId job, const MatePlan& plan) override;

  // Introspection for tests.
  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] const JobRegistry& jobs() const noexcept { return jobs_; }
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return *scheduler_; }

 private:
  void handle_event(const EventQueue::Fired& fired);
  void on_submit(JobId id);
  void on_finish(JobId id, EventHandle handle);
  void run_pass();
  void arm_tick();

  /// Settle progress, refresh rate (model x contention) and reschedule the
  /// finish event of a running job whose allocation or neighbours changed.
  void reconfigure_job(JobId id);
  [[nodiscard]] double contention_multiplier(const Job& job) const;
  [[nodiscard]] SimTime planned_runtime(const JobSpec& spec) const;
  void schedule_finish(Job& job);

  SimulationConfig config_;
  Workload workload_;
  Engine engine_;
  Machine machine_;
  JobRegistry jobs_;
  ShardedClusterIndex cluster_index_;
  DromRegistry drom_;
  NodeManager node_mgr_;
  ProgressTracker tracker_;
  std::optional<NodePerfModel> app_model_;
  std::optional<RuntimePredictor> predictor_;
  std::unique_ptr<Scheduler> scheduler_;
  MetricsCollector metrics_;

  std::uint64_t passes_ = 0;
  std::uint64_t malleable_starts_ = 0;
  std::uint64_t submits_coalesced_ = 0;
  std::uint64_t ticks_cancelled_ = 0;
  /// The periodic-pass chain: `next_tick_` is the time the next tick fires
  /// (or would fire — it survives a queue drain so the chain's phase, and
  /// therefore every pass time, matches the historical always-armed
  /// behaviour exactly); `tick_event_` is the armed event, if any.
  SimTime next_tick_ = -1;
  EventHandle tick_event_ = kInvalidEvent;
  std::size_t completed_ = 0;
  bool ran_ = false;
};

}  // namespace sdsched
