// Experiment helpers shared by the bench harness: the paper's five
// workloads (Table 1) at an arbitrary scale factor, standard policy
// configurations, and A/B comparison against the static-backfill baseline.
//
// Scaling shrinks nodes and job counts together so queueing pressure (the
// determinant of backfill/SD behaviour) is preserved; scale=1 reproduces the
// paper's sizes (W4 = 198,509 jobs on 5040 nodes — minutes of CPU time).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/simulation.h"
#include "metrics/summary.h"
#include "workload/trace_catalog.h"
#include "workload/workload.h"

namespace sdsched {

struct PaperWorkload {
  std::string label;     ///< "W1".."W5"
  Workload workload;
  MachineConfig machine;
};

/// Table 1 workloads. `which` in 1..5:
///  1 Cirne 5000 jobs / 1024 nodes x 48
///  2 Cirne_ideal (requested time == real duration)
///  3 RICC-like 10000 jobs / 1024 nodes x 8
///  4 CEA-Curie-like 198509 jobs / 5040 nodes x 16
///  5 Cirne_real_run 2000 jobs / 49 nodes x 48, Table-2 applications
[[nodiscard]] PaperWorkload paper_workload(int which, double scale = 1.0,
                                           std::uint64_t seed = 0);

/// A registered real-system trace (workload/trace_catalog.h) as a
/// PaperWorkload: the bundled downsampled fixture when present (scale < 1
/// keeps the earliest fraction), else synthesize_like() at `scale`. The
/// machine is the trace's documented shape — full size for fixtures, scaled
/// with the workload for synthesized traces.
[[nodiscard]] PaperWorkload trace_workload(const std::string& name, double scale = 1.0,
                                           std::uint64_t seed = 0,
                                           bool prefer_fixture = true);

/// The machine a loaded trace targets: the workload's (possibly scaled)
/// node count with the trace's documented socket split. The single source
/// of this derivation — trace_workload and the trace benches share it.
[[nodiscard]] MachineConfig trace_machine(const LoadedTrace& loaded);

/// Static-backfill baseline configuration for a machine.
[[nodiscard]] SimulationConfig baseline_config(const MachineConfig& machine);

/// SD-Policy configuration (SharingFactor 0.5, m=2) with the given cut-off
/// and execution model.
[[nodiscard]] SimulationConfig sd_config(const MachineConfig& machine, CutoffConfig cutoff,
                                         RuntimeModelKind exec = RuntimeModelKind::Ideal);

struct ExperimentResult {
  SimulationReport baseline;
  SimulationReport policy;
  NormalizedMetrics normalized;
};

/// Run `policy_cfg` and the static baseline on the same workload.
[[nodiscard]] ExperimentResult compare(const PaperWorkload& pw,
                                       const SimulationConfig& policy_cfg);

/// Run a single configuration.
[[nodiscard]] SimulationReport run_single(const PaperWorkload& pw,
                                          const SimulationConfig& cfg);

/// The Fig. 1-3 sweep axis: MAXSD 5 / 10 / 50 / infinite / DynAVGSD.
struct CutoffVariant {
  std::string label;
  CutoffConfig cutoff;
};
[[nodiscard]] const std::vector<CutoffVariant>& maxsd_sweep();

/// Default bench scale: reads --scale / SDSCHED_SCALE, with SDSCHED_FULL=1
/// forcing paper scale. Keeps the whole bench suite minutes-fast by default.
[[nodiscard]] double bench_scale(int argc, const char* const* argv, double fallback);

}  // namespace sdsched
