// Simulation results: aggregate summary plus the per-job records that the
// figure benches turn into heatmaps and daily series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/collector.h"
#include "util/json.h"

namespace sdsched {

struct SimulationReport {
  std::string policy;            ///< scheduler name ("backfill", "sd-policy", ...)
  std::string workload;          ///< workload name
  MetricsSummary summary;
  std::vector<JobRecord> records;

  // Kernel/scheduler counters.
  std::uint64_t events_fired = 0;
  std::uint64_t scheduling_passes = 0;
  std::uint64_t malleable_starts = 0;
  std::uint64_t drom_shrink_ops = 0;
  std::uint64_t drom_expand_ops = 0;
  std::uint64_t cancelled_jobs = 0;

  [[nodiscard]] std::string brief() const;

  /// Serialize as a JSON object (summary and counters; per-job records are
  /// deliberately omitted — they can be hundreds of thousands of entries).
  void to_json(JsonWriter& json) const;

  /// The to_json document as a standalone string — the canonical
  /// machine-readable form, also used to byte-compare reports in the sweep
  /// determinism test.
  [[nodiscard]] std::string json() const;
};

}  // namespace sdsched
