// Simulation results: aggregate summary plus the per-job records that the
// figure benches turn into heatmaps and daily series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/collector.h"
#include "util/json.h"

namespace sdsched {

struct SimulationReport {
  std::string policy;            ///< scheduler name ("backfill", "sd-policy", ...)
  std::string workload;          ///< workload name
  MetricsSummary summary;
  std::vector<JobRecord> records;

  // Kernel/scheduler counters. The incremental-state kernel legitimately
  // fires fewer events and runs fewer passes than the historical
  // rebuild-per-pass one while making identical decisions; the two fields
  // after each counter pair say how much work coalescing/cancellation
  // saved so the drop is attributable.
  std::uint64_t events_fired = 0;
  std::uint64_t scheduling_passes = 0;
  std::uint64_t submits_coalesced = 0;  ///< same-time submits folded into one pass
  std::uint64_t ticks_cancelled = 0;    ///< idle ticks cancelled when the queue drained
  std::uint64_t malleable_starts = 0;
  std::uint64_t drom_shrink_ops = 0;
  std::uint64_t drom_expand_ops = 0;
  std::uint64_t cancelled_jobs = 0;

  // SD-Policy scan counters (zero for other schedulers). The rescans /
  // deferrals pair attributes the saturated-queue savings: every avoided
  // re-scan is also counted as a selection failure, so the failure totals
  // stay comparable to an unbounded run's.
  std::uint64_t sd_estimate_rejections = 0;  ///< quick-estimate rejections (Listing 1)
  std::uint64_t sd_selection_failures = 0;   ///< mate searches without a plan
  std::uint64_t sd_rescans_avoided = 0;      ///< searches the scan ledger skipped
  std::uint64_t sd_budget_deferrals = 0;     ///< guests past the per-pass budget

  [[nodiscard]] std::string brief() const;

  /// Serialize as a JSON object (summary and counters; per-job records are
  /// deliberately omitted — they can be hundreds of thousands of entries).
  void to_json(JsonWriter& json) const;

  /// Column names of the compact per-job record rows, in emission order.
  static constexpr const char* kRecordColumns =
      "id,submit,start,end,req_time,base_runtime,req_cpus,req_nodes,"
      "was_guest,was_mate,reconfigurations";

  /// Emit `records` as a JSON array of 11-element arrays (columns per
  /// kRecordColumns; booleans as 0/1). Row-of-arrays instead of
  /// row-of-objects keeps an archive-scale dump (448K rows) from repeating
  /// every key 448K times; pair with a sink-mode JsonWriter and the emission
  /// is O(1) in memory too.
  void records_to_json(JsonWriter& json) const;

  /// The to_json document as a standalone string — the canonical
  /// machine-readable form, also used to byte-compare reports in the sweep
  /// determinism test.
  [[nodiscard]] std::string json() const;
};

}  // namespace sdsched
