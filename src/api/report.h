// Simulation results: aggregate summary plus the per-job records that the
// figure benches turn into heatmaps and daily series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace sdsched {

struct SimulationReport {
  std::string policy;            ///< scheduler name ("backfill", "sd-policy", ...)
  std::string workload;          ///< workload name
  MetricsSummary summary;
  std::vector<JobRecord> records;

  // Kernel/scheduler counters.
  std::uint64_t events_fired = 0;
  std::uint64_t scheduling_passes = 0;
  std::uint64_t malleable_starts = 0;
  std::uint64_t drom_shrink_ops = 0;
  std::uint64_t drom_expand_ops = 0;
  std::uint64_t cancelled_jobs = 0;

  [[nodiscard]] std::string brief() const;
};

}  // namespace sdsched
