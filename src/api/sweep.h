// SweepRunner — parallel execution of independent simulations.
//
// The paper's whole evaluation is a grid: workloads x cut-off variants x
// execution models, every cell an independent Simulation. A sweep declares
// that grid as data (a vector of named SweepCells), and the runner executes
// it on a fixed-size thread pool:
//
//   std::vector<SweepCell> cells;
//   cells.push_back({"W1/baseline", pw.workload, baseline_config(pw.machine)});
//   for (const auto& v : maxsd_sweep())
//     cells.push_back({"W1/" + v.label, pw.workload, sd_config(pw.machine, v.cutoff)});
//   const auto results = SweepRunner(/*jobs=*/4).run(cells);
//
// Guarantees:
//   * results come back in input order, regardless of completion order;
//   * each cell is a deterministic function of (workload, config) — cells
//     share the workload's immutable job storage, and any stochastic cell
//     identity (replicated seeds) is derived with cell_seed(), never from
//     thread scheduling — so a sweep at --jobs=N is byte-identical to the
//     serial run;
//   * the first cell failure is rethrown after every cell has finished
//     (no detached simulations keep running).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/report.h"
#include "api/simulation.h"
#include "workload/workload.h"

namespace sdsched {

/// One independent simulation of a sweep grid.
struct SweepCell {
  std::string name;    ///< unique label, e.g. "W1/MAXSD 10"
  Workload workload;   ///< cheap shared copy; prepared storage stays shared
  SimulationConfig config;
};

struct SweepResult {
  std::string name;
  SimulationReport report;
  double wall_seconds = 0.0;  ///< this cell's simulation wall-clock
};

class SweepRunner {
 public:
  /// `jobs`: worker threads for the sweep. 0 = one per hardware thread;
  /// 1 = run serially inline on the calling thread (no pool).
  explicit SweepRunner(int jobs = 0) noexcept : jobs_(jobs < 0 ? 0 : jobs) {}

  /// Requested concurrency (0 = auto).
  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Concurrency actually used for a grid of `cells` cells.
  [[nodiscard]] std::size_t effective_jobs(std::size_t cells) const noexcept;

  /// Run every cell and return results in input order. Cell names must be
  /// non-empty and unique (std::invalid_argument otherwise). If a cell
  /// throws, the first exception is rethrown once all cells have finished.
  [[nodiscard]] std::vector<SweepResult> run(const std::vector<SweepCell>& cells) const;

  /// Deterministic per-cell seed derivation (SplitMix64 finalizer over base
  /// and index; never returns 0, which generators treat as "use default").
  /// Grid builders replicating cells across seeds use this so a cell's seed
  /// depends only on its position, never on execution order.
  [[nodiscard]] static std::uint64_t cell_seed(std::uint64_t base, std::size_t index) noexcept;

 private:
  int jobs_;
};

}  // namespace sdsched
