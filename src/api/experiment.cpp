#include "api/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "api/sweep.h"
#include "metrics/summary.h"
#include "util/cli.h"
#include "workload/app_profiles.h"
#include "workload/cirne.h"
#include "workload/synthetic_logs.h"
#include "workload/trace_catalog.h"

namespace sdsched {

namespace {

MachineConfig machine_of(int nodes, int sockets, int cores_per_socket) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.node.sockets = sockets;
  machine.node.cores_per_socket = cores_per_socket;
  return machine;
}

}  // namespace

PaperWorkload paper_workload(int which, double scale, std::uint64_t seed) {
  scale = std::clamp(scale, 0.001, 1.0);
  switch (which) {
    case 1:
    case 2: {
      CirneConfig config;
      config.n_jobs = std::max(100, static_cast<int>(5000 * scale));
      config.system_nodes = std::max(16, static_cast<int>(1024 * scale));
      config.cores_per_node = 48;
      config.max_job_nodes = std::max(2, static_cast<int>(128 * scale));
      // W2 is the SAME trace as W1 with exact user estimates (the paper
      // compares them job-for-job), so it must share W1's seed.
      config.ideal_estimates = (which == 2);
      config.seed = seed != 0 ? seed : 1;
      PaperWorkload pw;
      pw.label = which == 2 ? "W2" : "W1";
      pw.workload = generate_cirne(config);
      pw.workload.info().name = which == 2 ? "cirne-ideal" : "cirne";
      pw.machine = machine_of(config.system_nodes, 2, 24);
      return pw;
    }
    case 3: {
      RiccConfig config;
      config.scale = scale;
      if (seed != 0) config.seed = seed;
      PaperWorkload pw;
      pw.label = "W3";
      pw.workload = generate_ricc_like(config);
      pw.machine = machine_of(pw.workload.info().system_nodes, 2, 4);
      return pw;
    }
    case 4: {
      CurieConfig config;
      config.scale = scale;
      if (seed != 0) config.seed = seed;
      PaperWorkload pw;
      pw.label = "W4";
      pw.workload = generate_curie_like(config);
      pw.machine = machine_of(pw.workload.info().system_nodes, 2, 8);
      return pw;
    }
    case 5: {
      CirneConfig config;
      config.n_jobs = std::max(100, static_cast<int>(2000 * scale));
      config.system_nodes = std::max(8, static_cast<int>(49 * scale));
      config.cores_per_node = 48;
      config.max_job_nodes = std::max(2, static_cast<int>(16 * scale));
      config.target_load = 1.05;
      // The paper adapted the Cirne model to MN4's 48h queue limit: the
      // whole run spans ~2 days, so jobs are shorter and smaller than the
      // W1 defaults (Table 1: makespan 159313s for 2000 jobs on 49 nodes).
      config.log2_nodes_mean = 1.2;
      config.log2_nodes_sigma = 1.3;
      config.log_runtime_mu = 6.1;
      config.log_runtime_sigma = 1.3;
      config.max_runtime = 8 * kHour;
      config.max_req_time = kDay;
      config.seed = seed != 0 ? seed : 5;
      PaperWorkload pw;
      pw.label = "W5";
      pw.workload = generate_cirne(config);
      pw.workload.info().name = "cirne-real-run";
      assign_applications(pw.workload, config.seed + 100);
      pw.machine = machine_of(config.system_nodes, 2, 24);
      // assign_applications mutated the job list; re-prepare here (cheap,
      // idempotent) so every downstream Simulation shares the storage.
      pw.workload.prepare_for(pw.machine.nodes,
                              pw.machine.node.sockets * pw.machine.node.cores_per_socket);
      return pw;
    }
    default:
      throw std::invalid_argument("paper_workload: which must be 1..5");
  }
}

MachineConfig trace_machine(const LoadedTrace& loaded) {
  // Fixture loads keep the documented machine; synthesized traces scale the
  // machine with the workload (workload.info carries the generated size).
  const int sockets = std::max(1, loaded.info.sockets);
  return machine_of(loaded.workload.info().system_nodes, sockets,
                    std::max(1, loaded.workload.info().cores_per_node / sockets));
}

PaperWorkload trace_workload(const std::string& name, double scale, std::uint64_t seed,
                             bool prefer_fixture) {
  TraceLoadOptions options;
  options.scale = std::clamp(scale, 0.001, 1.0);
  options.seed = seed;
  options.allow_fixture = prefer_fixture;
  const LoadedTrace loaded = load_trace(name, options);
  PaperWorkload pw;
  pw.label = loaded.info.label;
  pw.workload = loaded.workload;
  pw.machine = trace_machine(loaded);
  return pw;
}

SimulationConfig baseline_config(const MachineConfig& machine) {
  SimulationConfig config;
  config.machine = machine;
  config.policy = PolicyKind::Backfill;
  return config;
}

SimulationConfig sd_config(const MachineConfig& machine, CutoffConfig cutoff,
                           RuntimeModelKind exec) {
  SimulationConfig config;
  config.machine = machine;
  config.policy = PolicyKind::SdPolicy;
  config.sd.cutoff = cutoff;
  config.execution_model = exec;
  return config;
}

SimulationReport run_single(const PaperWorkload& pw, const SimulationConfig& cfg) {
  // A one-cell sweep run inline on the calling thread. Move the report out —
  // its records vector can hold hundreds of thousands of entries.
  auto results = SweepRunner(1).run({SweepCell{pw.label, pw.workload, cfg}});
  return std::move(results.front().report);
}

ExperimentResult compare(const PaperWorkload& pw, const SimulationConfig& policy_cfg) {
  SimulationConfig base = baseline_config(policy_cfg.machine);
  base.execution_model = policy_cfg.execution_model;
  base.use_app_model = policy_cfg.use_app_model;
  base.bw_capacity_per_socket = policy_cfg.bw_capacity_per_socket;
  base.sched = policy_cfg.sched;
  // Both cells share pw.workload's job storage and run concurrently (two
  // independent simulations; one worker each).
  auto results = SweepRunner(2).run({SweepCell{pw.label + "/baseline", pw.workload, base},
                                     SweepCell{pw.label + "/policy", pw.workload, policy_cfg}});
  ExperimentResult result;
  result.baseline = std::move(results[0].report);
  result.policy = std::move(results[1].report);
  result.normalized = normalize(result.policy.summary, result.baseline.summary);
  return result;
}

const std::vector<CutoffVariant>& maxsd_sweep() {
  // Magic-static init is thread-safe (C++11) and the vector is immutable
  // afterwards, so concurrent sweep workers may read it freely.
  static const std::vector<CutoffVariant> sweep = {
      {"MAXSD 5", CutoffConfig::max_sd(5.0)},
      {"MAXSD 10", CutoffConfig::max_sd(10.0)},
      {"MAXSD 50", CutoffConfig::max_sd(50.0)},
      {"MAXSD inf", CutoffConfig::infinite()},
      {"DynAVGSD", CutoffConfig::dynamic_avg()},
  };
  return sweep;
}

double bench_scale(int argc, const char* const* argv, double fallback) {
  const CliArgs args(argc, argv);
  if (args.get_bool("full")) return 1.0;
  return args.get_double("scale", fallback);
}

}  // namespace sdsched
