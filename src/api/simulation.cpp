#include "api/simulation.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sched/backfill.h"
#include "sched/fcfs.h"
#include "util/logging.h"
#include "workload/app_profiles.h"

namespace sdsched {

Simulation::Simulation(SimulationConfig config, Workload workload)
    : config_(config),
      workload_(std::move(workload)),
      machine_(config.machine),
      cluster_index_(machine_, jobs_, config.shards),
      node_mgr_(machine_, jobs_, drom_),
      tracker_(config.execution_model) {
  // Already-prepared workloads (the generators and SweepRunner prepare once)
  // stay shared — no per-simulation deep copy; anything else gets a private
  // prepared copy, exactly as before.
  workload_.prepare_for(config_.machine.nodes, machine_.cores_per_node());
  for (const auto& spec : workload_.jobs()) {
    jobs_.add(spec);
  }
  if (config_.use_app_model) {
    app_model_.emplace(table2_profiles(), config_.bw_capacity_per_socket);
  }
  if (config_.use_runtime_prediction) {
    predictor_.emplace(config_.predictor_smoothing);
  }
  switch (config_.policy) {
    case PolicyKind::Fcfs:
      scheduler_ = std::make_unique<FcfsScheduler>(machine_, jobs_, *this, config_.sched);
      break;
    case PolicyKind::Backfill:
      scheduler_ =
          std::make_unique<BackfillScheduler>(machine_, jobs_, *this, config_.sched);
      break;
    case PolicyKind::SdPolicy:
      scheduler_ = std::make_unique<SdPolicyScheduler>(machine_, jobs_, *this,
                                                       config_.sched, config_.sd);
      break;
  }
  if (!scheduler_) {
    throw std::invalid_argument("Simulation: unknown PolicyKind " +
                                std::to_string(static_cast<int>(config_.policy)));
  }
  if (predictor_) {
    scheduler_->set_runtime_predictor(&*predictor_);
  }
  scheduler_->set_sharded_index(&cluster_index_);
  engine_.set_handler([this](const EventQueue::Fired& fired) { handle_event(fired); });
}

SimTime Simulation::planned_runtime(const JobSpec& spec) const {
  return predictor_ ? predictor_->predict(spec) : spec.req_time;
}

double Simulation::contention_multiplier(const Job& job) const {
  return app_model_ ? app_model_->multiplier(job, machine_, jobs_) : 1.0;
}

void Simulation::schedule_finish(Job& job) {
  if (job.finish_event != kInvalidEvent) {
    engine_.cancel(job.finish_event);
  }
  assert(job.rate > 0.0 && "running job with zero progress rate");
  const SimTime finish_at = engine_.now() + tracker_.remaining_wallclock(job);
  job.finish_event =
      engine_.schedule_at(finish_at, Event{EventKind::JobFinish, job.spec.id});
}

void Simulation::reconfigure_job(JobId id) {
  Job& job = jobs_.at(id);
  if (!job.running()) return;
  tracker_.settle(job, engine_.now());
  tracker_.set_rate_from_shares(job, contention_multiplier(job));
  // Charge the reconfiguration overhead: a transition stalls the whole
  // (synchronized) application for reconfig_overhead seconds of wallclock —
  // per-node mask changes overlap, so one stall per transition regardless
  // of node count. Expressed as work debt at the post-transition rate;
  // work_done may go negative (debt repaid at the current rate).
  if (config_.reconfig_overhead > 0 && job.pending_reconfig_ops > 0) {
    job.work_done -= static_cast<double>(config_.reconfig_overhead) * job.rate;
  }
  job.pending_reconfig_ops = 0;
  schedule_finish(job);
}

void Simulation::start_static(JobId id, const std::vector<int>& nodes) {
  Job& job = jobs_.at(id);
  assert(job.pending());
  const SimTime now = engine_.now();
  job.state = JobState::Running;
  job.start_time = now;
  job.last_progress_update = now;
  job.work_done = 0.0;
  job.predicted_increase = 0;
  job.predicted_end = now + planned_runtime(job.spec);
  node_mgr_.start_static(now, id, nodes);
  tracker_.set_rate_from_shares(job, contention_multiplier(job));
  schedule_finish(job);
}

void Simulation::start_guest(JobId id, const MatePlan& plan) {
  Job& job = jobs_.at(id);
  assert(job.pending());
  const SimTime now = engine_.now();
  job.state = JobState::Running;
  job.start_time = now;
  job.last_progress_update = now;
  job.work_done = 0.0;
  job.predicted_increase = plan.guest_increase;
  job.predicted_end = now + planned_runtime(job.spec) + plan.guest_increase;

  // update_stats (Listing 1): stretch the mates' scheduler-visible ends
  // before the node-level shrink so backfill's next profile sees them. The
  // cluster index must hear about every stretch explicitly — a mate may
  // hold nodes the placement plan never touches.
  for (std::size_t i = 0; i < plan.mates.size(); ++i) {
    Job& mate = jobs_.at(plan.mates[i]);
    mate.predicted_increase += plan.mate_increases[i];
    mate.predicted_end += plan.mate_increases[i];
    cluster_index_.on_predicted_end_changed(plan.mates[i]);
  }

  const auto affected = node_mgr_.start_guest(now, id, plan.nodes);
  for (const JobId mate_id : affected) {
    reconfigure_job(mate_id);
  }
  tracker_.set_rate_from_shares(job, contention_multiplier(job));
  schedule_finish(job);
  ++malleable_starts_;
}

void Simulation::on_submit(JobId id) {
  scheduler_->on_submit(id);
  // Coalesce same-timestamp submit bursts into one pass. Kind-major event
  // ordering keeps a burst contiguous (all finishes at t fire before the
  // first submit at t), and under FCFS priority the coalesced pass walks
  // the burst in arrival order, so it makes the exact decisions the
  // per-submit passes would have made — minus the rework. Two cases must
  // keep a pass per submit to stay decision-identical: non-FCFS
  // priorities (a coalesced pass could schedule a later same-timestamp
  // arrival before an earlier one) and SD-Policy (a malleable start's
  // within-pass profile edits leave a mate-shared node free at the
  // stretched mate end even when the guest outlives it, whereas the next
  // per-submit pass would rebuild the exact profile).
  if (config_.policy != PolicyKind::SdPolicy &&
      config_.sched.priority.kind == PriorityKind::Fcfs && !engine_.idle() &&
      engine_.next_time() == engine_.now() &&
      engine_.next_event().kind == EventKind::JobSubmit) {
    ++submits_coalesced_;
    return;
  }
  run_pass();
}

void Simulation::on_finish(JobId id, EventHandle handle) {
  Job& job = jobs_.at(id);
  if (handle != job.finish_event) {
    // A cancelled handle can never fire (lazy deletion filters it), so a
    // mismatch means kernel bookkeeping broke.
    log_error("sim", "stale finish event for job ", id);
    return;
  }
  const SimTime now = engine_.now();
  tracker_.settle(job, now);
  assert(job.work_done + 1e-6 >= static_cast<double>(job.spec.base_runtime));
  job.state = JobState::Completed;
  job.end_time = now;
  job.finish_event = kInvalidEvent;

  const auto affected = node_mgr_.finish_job(now, id);
  for (const JobId other : affected) {
    reconfigure_job(other);
  }
  if (predictor_) {
    predictor_->observe(job.spec, job.end_time - job.start_time);
  }
  metrics_.on_complete(job);
  ++completed_;
  scheduler_->on_finish(id);
  run_pass();
}

void Simulation::run_pass() {
  ++passes_;
  scheduler_->schedule_pass(engine_.now());
  arm_tick();
}

void Simulation::arm_tick() {
  if (config_.sched.bf_interval <= 0) return;
  if (scheduler_->queue().empty()) {
    // Queue drained: an armed tick would fire into an idle scheduler and
    // do nothing. Cancel the event but keep `next_tick_` — if work arrives
    // before that time, the chain resumes in phase, so pass times (and
    // decisions) are identical to the always-armed scheme; only the idle
    // events disappear.
    if (tick_event_ != kInvalidEvent) {
      engine_.cancel(tick_event_);
      tick_event_ = kInvalidEvent;
      ++ticks_cancelled_;
    }
    return;
  }
  if (tick_event_ != kInvalidEvent) return;  // one outstanding tick at a time
  if (next_tick_ < engine_.now()) {
    // No live chain (or it lapsed while idle — a tick firing into an empty
    // queue would not have re-armed): start a fresh one from now.
    next_tick_ = engine_.now() + config_.sched.bf_interval;
  }
  tick_event_ = engine_.schedule_at(next_tick_, Event{EventKind::SchedulerTick, kInvalidJob});
}

void Simulation::handle_event(const EventQueue::Fired& fired) {
  switch (fired.event.kind) {
    case EventKind::JobSubmit:
      on_submit(fired.event.job);
      break;
    case EventKind::JobFinish:
      on_finish(fired.event.job, fired.handle);
      break;
    case EventKind::SchedulerTick:
      next_tick_ = -1;
      tick_event_ = kInvalidEvent;
      if (!scheduler_->queue().empty()) {
        run_pass();
      }
      break;
  }
}

SimulationReport Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run() is one-shot");
  ran_ = true;

  for (const auto& spec : workload_.jobs()) {
    engine_.schedule_at(spec.submit, Event{EventKind::JobSubmit, spec.id});
  }
  const std::uint64_t budget = config_.max_events == 0 ? UINT64_MAX : config_.max_events;
  const std::uint64_t fired = engine_.run(budget);
  if (!engine_.idle()) {
    log_warn("sim", "event budget exhausted with ", engine_.pending_events(),
             " events pending");
  }
  machine_.finalize_energy(engine_.now());

  SimulationReport report;
  report.policy = scheduler_->name();
  report.workload = workload_.info().name;
  report.records = metrics_.records();
  report.summary = metrics_.summarize(machine_.total_cores(), machine_.core_seconds(),
                                      machine_.energy().kwh());
  report.events_fired = fired;
  report.scheduling_passes = passes_;
  report.submits_coalesced = submits_coalesced_;
  report.ticks_cancelled = ticks_cancelled_;
  report.malleable_starts = malleable_starts_;
  report.drom_shrink_ops = drom_.shrink_ops();
  report.drom_expand_ops = drom_.expand_ops();
  scheduler_->annotate(report);
  log_info("sim", report.brief());
  return report;
}

}  // namespace sdsched
