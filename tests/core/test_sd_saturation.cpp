// Saturation parity suite for the queue-depth-sublinear SD pass
// (core/guest_scan_policy.h): under over-subscribed workloads (offered load
// > 1, the regime where the wait queue grows without bound) the guest
// budget and the failed-select scan ledger must be *decision-invisible* —
// they bound how much work a pass runs, never which plans start.
//
// Three contracts, each checked over full end-to-end Simulations on
// randomized Cirne churn (several seeds, load > 1):
//
//  (a) ledger ON is byte-identical to ledger OFF (the pre-ledger pass) at
//      every budget, while actually skipping re-scans;
//  (b) a budget at least the queue depth is byte-identical to unbounded,
//      and a tight budget still drains the workload (deferred guests are
//      reconsidered on later passes);
//  (c) crosscheck mode — which brute-force re-runs the full unbounded mate
//      search on every claimed-safe skip and throws std::logic_error if the
//      "provably unchanged" state found a plan after all — passes clean.
//      This is the "ledger never skips a guest whose mate set changed"
//      recheck, executed inside the production pass itself.
//
// Identity is asserted on a decision document: the full metrics summary,
// the FNV-1a digest of every per-job record, and the decision-relevant
// counters. sd_rescans_avoided is deliberately excluded — it is the one
// counter that *should* differ between ledger ON and OFF.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "../integration/golden_common.h"
#include "api/experiment.h"
#include "api/simulation.h"
#include "core/guest_scan_policy.h"
#include "core/mate_registry.h"
#include "job/job_registry.h"
#include "metrics/summary.h"
#include "util/json.h"
#include "workload/cirne.h"

namespace sdsched {
namespace {

/// A small machine under offered load > 1: the queue saturates within the
/// first simulated hours, so every pass exercises the budget slice and the
/// ledger sees plenty of repeated failed selects.
Workload saturated_workload(std::uint64_t seed, int n_jobs = 400) {
  CirneConfig wl;
  wl.n_jobs = n_jobs;
  wl.system_nodes = 64;
  wl.cores_per_node = 8;
  wl.max_job_nodes = 16;
  wl.target_load = 1.6;
  wl.seed = seed;
  return generate_cirne(wl);
}

MachineConfig saturated_machine() {
  MachineConfig machine;
  machine.nodes = 64;
  machine.node = NodeConfig{2, 4};
  return machine;
}

SimulationConfig saturated_config(const GuestScanPolicy& scan) {
  SimulationConfig cfg = sd_config(saturated_machine(), CutoffConfig::dynamic_avg());
  cfg.sd.scan = scan;
  return cfg;
}

/// Everything a scheduling decision can influence, in one byte-comparable
/// string. sd_selection_failures is included on purpose: ledger skips are
/// counted as selection failures too, so the totals must match an
/// unbounded run's — a drift here means a skip replaced a *successful*
/// search, the exact bug class the ledger proof rules out.
std::string decision_document(const SimulationReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("summary");
  to_json(json, report.summary);
  json.field("records", static_cast<std::uint64_t>(report.records.size()));
  json.field("records_fnv1a", golden::records_digest(report.records));
  json.field("malleable_starts", report.malleable_starts);
  json.field("cancelled_jobs", report.cancelled_jobs);
  json.field("sd_estimate_rejections", report.sd_estimate_rejections);
  json.field("sd_selection_failures", report.sd_selection_failures);
  json.field("sd_budget_deferrals", report.sd_budget_deferrals);
  json.end_object();
  return json.str();
}

SimulationReport run_cell(std::uint64_t seed, const GuestScanPolicy& scan) {
  return Simulation(saturated_config(scan), saturated_workload(seed)).run();
}

// (a) The ledger changes how much work runs, never which plans start:
// byte-identical decisions at every (seed, budget) pair, with real skips.
TEST(SdSaturation, LedgerIsDecisionInvisible) {
  std::uint64_t total_rescans_avoided = 0;
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    for (const int budget : {0, 6}) {
      GuestScanPolicy off;
      off.guest_budget = budget;
      off.ledger = false;
      GuestScanPolicy on;
      on.guest_budget = budget;
      on.ledger = true;

      const SimulationReport without = run_cell(seed, off);
      const SimulationReport with = run_cell(seed, on);
      EXPECT_EQ(without.sd_rescans_avoided, 0u);
      total_rescans_avoided += with.sd_rescans_avoided;
      EXPECT_EQ(decision_document(without), decision_document(with))
          << "scan ledger changed decisions at seed " << seed << " budget " << budget;
    }
  }
  // The parity above is vacuous unless the ledger actually fired.
  EXPECT_GT(total_rescans_avoided, 0u)
      << "saturated churn never produced a provably-unchanged re-scan";
}

// (b) A budget >= the deepest possible queue is the unbounded pass; a
// tight budget defers guests but still drains the whole workload.
TEST(SdSaturation, BudgetCoveringQueueMatchesUnbounded) {
  constexpr int kJobs = 400;
  for (const std::uint64_t seed : {5u, 31u}) {
    GuestScanPolicy unbounded;  // guest_budget = 0
    GuestScanPolicy covering;
    covering.guest_budget = kJobs;  // queue depth can never exceed the job count

    const SimulationReport base = run_cell(seed, unbounded);
    const SimulationReport capped = run_cell(seed, covering);
    EXPECT_EQ(base.sd_budget_deferrals, 0u);
    EXPECT_EQ(capped.sd_budget_deferrals, 0u)
        << "a budget covering the whole workload still deferred guests";
    EXPECT_EQ(decision_document(base), decision_document(capped))
        << "covering budget diverged from unbounded at seed " << seed;
  }
}

TEST(SdSaturation, TightBudgetDefersButDrains) {
  GuestScanPolicy tight;
  tight.guest_budget = 2;
  const SimulationReport report = run_cell(7u, tight);
  EXPECT_GT(report.sd_budget_deferrals, 0u)
      << "a 2-guest budget under load 1.6 never hit the cap";
  // Deferral is per-pass, not starvation: every job still runs to the end.
  EXPECT_EQ(report.records.size(), 400u);
  for (const JobRecord& record : report.records) {
    EXPECT_GE(record.start, 0) << "job " << record.id << " never started";
    EXPECT_GE(record.end, record.start) << "job " << record.id << " never finished";
  }
}

// (c) Brute-force recheck: crosscheck mode re-runs the full mate search on
// every claimed-safe skip inside the pass and throws std::logic_error when
// a skip would have hidden a plan. A clean saturated run with skips firing
// IS the exhaustive "no guest with a changed mate set was skipped" check.
TEST(SdSaturation, CrosscheckValidatesEverySkip) {
  for (const std::uint64_t seed : {11u, 47u}) {
    GuestScanPolicy scan;
    scan.ledger = true;
    scan.crosscheck = true;
    SimulationReport report;
    ASSERT_NO_THROW(report = run_cell(seed, scan))
        << "crosscheck refuted a ledger skip at seed " << seed;
    EXPECT_GT(report.sd_rescans_avoided, 0u)
        << "crosscheck run exercised no skips — the recheck was vacuous";
  }
}

// Unit-level ledger semantics: the skip predicate is exactly (same serial,
// same epoch, same planned duration, free allowance no larger, still inside
// the truncation-proof window), and invalidation clears it.
TEST(SdSaturation, LedgerSkipPredicate) {
  GuestScanLedger ledger;
  GuestScanLedger::Entry entry;
  entry.serial = 9;
  entry.epoch = 3;
  entry.planned = 500;
  entry.valid_until = 1000;
  entry.max_free = 4;
  ledger.record(17, entry);

  EXPECT_TRUE(ledger.can_skip(17, 9, 3, 500, 4, 100));
  EXPECT_TRUE(ledger.can_skip(17, 9, 3, 500, 2, 999));   // fewer free nodes: harder
  EXPECT_FALSE(ledger.can_skip(17, 10, 3, 500, 4, 100)); // machine mutated
  EXPECT_FALSE(ledger.can_skip(17, 9, 4, 500, 4, 100));  // mate population changed
  EXPECT_FALSE(ledger.can_skip(17, 9, 3, 501, 4, 100));  // different planned duration
  EXPECT_FALSE(ledger.can_skip(17, 9, 3, 500, 5, 100));  // more free nodes than proven
  EXPECT_FALSE(ledger.can_skip(17, 9, 3, 500, 4, 1000)); // truncation proof lapsed
  EXPECT_FALSE(ledger.can_skip(3, 9, 3, 500, 4, 100));   // never recorded
  EXPECT_FALSE(ledger.can_skip(99, 9, 3, 500, 4, 100));  // past the table

  ledger.invalidate(17);
  EXPECT_FALSE(ledger.can_skip(17, 9, 3, 500, 4, 100));
  ledger.invalidate(99);  // past the table: harmless
}

// The registry epoch is one half of the ledger key: every membership
// notification (seed, start, finish) must move it, or stale failures would
// survive a mate-set change.
TEST(SdSaturation, MateRegistryEpochTracksMembership) {
  MateRegistry registry;
  const std::uint64_t initial = registry.epoch();

  JobRegistry jobs;
  JobSpec spec;
  spec.req_cpus = 4;
  spec.base_runtime = 100;
  spec.req_time = 200;
  const JobId id = jobs.add(spec);

  registry.seed(jobs);
  EXPECT_EQ(registry.epoch(), initial + 1);

  registry.on_start(jobs.at(id));
  EXPECT_EQ(registry.epoch(), initial + 2);

  registry.on_finish(id);
  EXPECT_EQ(registry.epoch(), initial + 3);
}

}  // namespace
}  // namespace sdsched
