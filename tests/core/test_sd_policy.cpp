#include "core/sd_policy.h"

#include <gtest/gtest.h>

#include "../sched/scheduler_test_harness.h"

namespace sdsched {
namespace {

using testing_support::RecordingExecutor;
using testing_support::finish;
using testing_support::spec_of;

class SdPolicyTest : public ::testing::Test {
 protected:
  SdPolicyTest()
      : machine_(make_config()),
        mgr_(machine_, jobs_, drom_),
        executor_(machine_, jobs_, mgr_),
        sched_(machine_, jobs_, executor_, SchedConfig{}, permissive()) {}

  // Unit tests exercise the mechanics with an unbounded cut-off; DynAVGSD's
  // filtering (which needs a populated machine to admit anyone) has its own
  // dedicated test below.
  static SdConfig permissive() {
    SdConfig config;
    config.cutoff = CutoffConfig::infinite();
    return config;
  }

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 4;
    config.node = NodeConfig{2, 24};
    return config;
  }

  JobId submit(int cpus, SimTime runtime, SimTime req_time, SimTime submit_time = 0,
               MalleabilityClass cls = MalleabilityClass::Malleable) {
    const JobId id = jobs_.add(spec_of(submit_time, runtime, req_time, cpus, 48, cls));
    sched_.on_submit(id);
    return id;
  }

  Machine machine_;
  JobRegistry jobs_;
  DromRegistry drom_;
  NodeManager mgr_;
  RecordingExecutor executor_;
  SdPolicyScheduler sched_;
};

TEST_F(SdPolicyTest, StaticPlacementPreferredWhenRoomExists) {
  const JobId a = submit(96, 100, 100);
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a}));
  EXPECT_TRUE(executor_.guest_starts.empty());
}

TEST_F(SdPolicyTest, MalleableStartWhenWaitExceedsIncrease) {
  // Machine saturated by two long 2-node jobs; a short 2-node malleable job
  // would wait ~10000s statically but only pay ~60s of increase -> SD must
  // co-schedule it on one mate of matching weight (Eq. 3).
  const JobId a1 = submit(96, 10000, 10000);
  const JobId a2 = submit(96, 10000, 10000);
  sched_.schedule_pass(0);
  ASSERT_EQ(executor_.static_starts, (std::vector<JobId>{a1, a2}));

  const JobId b = submit(96, 60, 60, 10);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_EQ(executor_.guest_starts, (std::vector<JobId>{b}));
  EXPECT_EQ(sched_.malleable_starts(), 1u);
  const Job& guest = jobs_.at(b);
  EXPECT_TRUE(guest.started_as_guest);
  ASSERT_EQ(guest.mates.size(), 1u);
  EXPECT_EQ(guest.mates[0], a1);  // equal penalties: lowest id wins
  // update_stats: mate's predicted end stretched by its increase.
  EXPECT_GT(jobs_.at(a1).predicted_increase, 0);
}

TEST_F(SdPolicyTest, OversizedMatesAreIneligible) {
  // Eq. 3 is an exact match: a 4-node mate cannot host a 2-node guest.
  submit(192, 10000, 10000);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 60, 60, 10);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_TRUE(executor_.guest_starts.empty());
  EXPECT_TRUE(sched_.queue().contains(b));
}

TEST_F(SdPolicyTest, RejectsWhenStaticWaitIsShort) {
  // Blocking job ends soon: waiting is cheaper than doubling the runtime.
  const JobId a = submit(192, 100, 100);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 90, 90, 10);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_TRUE(executor_.guest_starts.empty());
  EXPECT_TRUE(sched_.queue().contains(b));
  EXPECT_GT(sched_.estimate_rejections(), 0u);
  (void)a;
}

TEST_F(SdPolicyTest, RigidJobsNeverGoMalleable) {
  submit(96, 10000, 10000);
  submit(96, 10000, 10000);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 60, 60, 10, MalleabilityClass::Rigid);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_TRUE(executor_.guest_starts.empty());
  EXPECT_TRUE(sched_.queue().contains(b));
}

TEST_F(SdPolicyTest, MoldableJobsCanBeGuests) {
  submit(96, 10000, 10000);
  submit(96, 10000, 10000);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 60, 60, 10, MalleabilityClass::Moldable);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_EQ(executor_.guest_starts, (std::vector<JobId>{b}));
}

TEST_F(SdPolicyTest, GuestTooLongForMateAllocationStaysQueued) {
  submit(96, 500, 500);
  submit(96, 500, 500);
  sched_.schedule_pass(0);
  // Shrunk duration ~2x600 = 1200 > mate's remaining 490: selection fails.
  const JobId b = submit(96, 600, 600, 10);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_TRUE(executor_.guest_starts.empty());
  EXPECT_TRUE(sched_.queue().contains(b));
  EXPECT_GT(sched_.estimate_rejections() + sched_.selection_failures(), 0u);
}

TEST_F(SdPolicyTest, SecondGuestCannotStackOnSameMate) {
  // Fill the machine with ONE eligible 2-node mate and one rigid filler so
  // the second guest has nowhere to go.
  const JobId mate = submit(96, 100000, 100000);
  submit(96, 100000, 100000, 0, MalleabilityClass::Rigid);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 60, 60, 10);
  executor_.now = 10;
  sched_.schedule_pass(10);
  ASSERT_EQ(executor_.guest_starts, (std::vector<JobId>{b}));
  EXPECT_EQ(jobs_.at(b).mates, (std::vector<JobId>{mate}));
  // A second short job: the only eligible mate already hosts a guest
  // (default max_jobs_per_node = 2), and the guest itself is ineligible.
  const JobId c = submit(96, 60, 60, 20);
  executor_.now = 20;
  sched_.schedule_pass(20);
  EXPECT_EQ(executor_.guest_starts.size(), 1u);
  EXPECT_TRUE(sched_.queue().contains(c));
}

TEST_F(SdPolicyTest, MalleabilityTriedInPriorityOrder) {
  // One eligible mate, two malleable candidates; the earlier-submitted one
  // gets it.
  submit(96, 100000, 100000);
  submit(96, 100000, 100000, 0, MalleabilityClass::Rigid);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 60, 60, 10);
  const JobId c = submit(96, 60, 60, 11);
  executor_.now = 11;
  sched_.schedule_pass(11);
  EXPECT_EQ(executor_.guest_starts, (std::vector<JobId>{b}));
  EXPECT_TRUE(sched_.queue().contains(c));
}

TEST_F(SdPolicyTest, StaticCutoffBlocksHighPenaltyPlans) {
  SdConfig strict;
  strict.cutoff = CutoffConfig::max_sd(1.05);  // mates must be near-unharmed
  SdPolicyScheduler tight(machine_, jobs_, executor_, SchedConfig{}, strict);
  const JobId a = jobs_.add(spec_of(0, 100000, 100000, 96, 48));
  tight.on_submit(a);
  const JobId a2 = jobs_.add(spec_of(0, 100000, 100000, 96, 48));
  tight.on_submit(a2);
  tight.schedule_pass(0);
  const JobId b = jobs_.add(spec_of(10, 5000, 5000, 96, 48));
  tight.on_submit(b);
  executor_.now = 10;
  tight.schedule_pass(10);
  // Penalty for the mate (increase 5000+ on a 100000 request) exceeds 1.05?
  // increase/req = 0.05 -> penalty ~1.05+: blocked by the tight cut-off.
  EXPECT_TRUE(executor_.guest_starts.empty());
  EXPECT_TRUE(tight.queue().contains(b));
}

TEST_F(SdPolicyTest, NameAndConfigExposed) {
  EXPECT_STREQ(sched_.name(), "sd-policy");
  EXPECT_DOUBLE_EQ(sched_.sd_config().sharing_factor, 0.5);
  EXPECT_EQ(sched_.sd_config().max_mates, 2);
}

TEST_F(SdPolicyTest, DynAvgSdIsConservativeOnLoneMate) {
  // With a single running job, the dynamic cut-off equals that job's own
  // current slowdown, and Eq. 2's penalty (which adds the increase) always
  // exceeds it: DynAVGSD refuses — the §3.2.2 "spread the slowdown" rule.
  SdConfig dynamic;
  dynamic.cutoff = CutoffConfig::dynamic_avg();
  SdPolicyScheduler dyn(machine_, jobs_, executor_, SchedConfig{}, dynamic);
  const JobId a = jobs_.add(spec_of(0, 10000, 10000, 192, 48));
  dyn.on_submit(a);
  dyn.schedule_pass(0);
  const JobId b = jobs_.add(spec_of(10, 60, 60, 96, 48));
  dyn.on_submit(b);
  executor_.now = 10;
  dyn.schedule_pass(10);
  EXPECT_TRUE(executor_.guest_starts.empty());
  EXPECT_TRUE(dyn.queue().contains(b));
}

}  // namespace
}  // namespace sdsched
