// Whole-simulation shard parity (ISSUE 10): the sharded scheduler state
// must be a pure work-splitting transform — every shard count, parallel
// fan-out included, makes byte-identical decisions to the serial flat
// index (docs/determinism.md "Ordered shard merge"). Plus the rotating
// guest-budget slice (SdConfig::scan.slice): kPrefix stays the historical
// byte-identical default, kRotate walks the window across passes so a
// head guest that perpetually burns the budget cannot starve the tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "../integration/golden_common.h"
#include "api/experiment.h"
#include "api/simulation.h"
#include "core/guest_scan_policy.h"
#include "core/sd_policy.h"
#include "metrics/summary.h"
#include "util/json.h"
#include "workload/cirne.h"

namespace sdsched {
namespace {

/// Everything a scheduling decision can influence, in one byte-comparable
/// string (the test_sd_saturation idiom).
std::string decision_document(const SimulationReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("summary");
  to_json(json, report.summary);
  json.field("records", static_cast<std::uint64_t>(report.records.size()));
  json.field("records_fnv1a", golden::records_digest(report.records));
  json.field("malleable_starts", report.malleable_starts);
  json.field("cancelled_jobs", report.cancelled_jobs);
  json.field("sd_estimate_rejections", report.sd_estimate_rejections);
  json.field("sd_selection_failures", report.sd_selection_failures);
  json.field("sd_budget_deferrals", report.sd_budget_deferrals);
  json.end_object();
  return json.str();
}

/// Saturated churn on a 64-node machine: queue depth > 1 keeps every pass
/// exercising profiles, candidate scans and free-node picks.
Workload saturated_workload(std::uint64_t seed) {
  CirneConfig wl;
  wl.n_jobs = 250;
  wl.system_nodes = 64;
  wl.cores_per_node = 8;
  wl.max_job_nodes = 16;
  wl.target_load = 1.5;
  wl.seed = seed;
  return generate_cirne(wl);
}

/// Wide machine fully tiled by 1-node mates, then a stream of 2-node
/// guests facing a 10000s static wait: every guest runs a full mate
/// selection over 256 running candidates — past the parallel fan-out
/// threshold, spread evenly across the shards.
Workload wide_workload() {
  std::vector<JobSpec> specs;
  for (int i = 0; i < 256; ++i) {
    JobSpec mate;
    mate.submit = 0;
    mate.req_cpus = 8;
    mate.req_nodes = 1;
    mate.base_runtime = 10000;
    mate.req_time = 10000;
    specs.push_back(mate);
  }
  for (int g = 0; g < 8; ++g) {
    JobSpec guest;
    guest.submit = 10 + g;
    guest.req_cpus = 16;
    guest.req_nodes = 2;  // coverable by max_mates=2 one-node mates
    guest.base_runtime = 500;
    guest.req_time = 500;
    specs.push_back(guest);
  }
  return Workload(WorkloadInfo{"wide-pool"}, std::move(specs));
}

MachineConfig machine_of(int nodes) {
  MachineConfig machine;
  machine.nodes = nodes;
  machine.node = NodeConfig{2, 4};
  return machine;
}

SimulationReport run_sd(const Workload& workload, int nodes, ShardConfig shards,
                        PolicyKind policy = PolicyKind::SdPolicy) {
  SimulationConfig cfg = sd_config(machine_of(nodes), CutoffConfig::dynamic_avg());
  cfg.policy = policy;
  cfg.shards = shards;
  return Simulation(cfg, workload).run();
}

// The tentpole contract: every shard count — parallel candidate fan-out
// included — reproduces the serial flat run byte-for-byte.
TEST(ShardParity, SdDecisionsIdenticalAtEveryShardCount) {
  for (const std::uint64_t seed : {3u, 29u}) {
    const Workload workload = saturated_workload(seed);
    const std::string flat = decision_document(run_sd(workload, 64, ShardConfig{1, false}));
    for (const int shards : {2, 7, 64}) {
      for (const bool parallel : {false, true}) {
        const std::string doc =
            decision_document(run_sd(workload, 64, ShardConfig{shards, parallel}));
        EXPECT_EQ(flat, doc) << "seed " << seed << ", " << shards << " shards, parallel "
                             << parallel;
      }
    }
  }
}

TEST(ShardParity, WideMachineParallelScanIdentical) {
  const Workload workload = wide_workload();
  const std::string flat = decision_document(run_sd(workload, 256, ShardConfig{1, false}));
  for (const int shards : {4, 64}) {
    const std::string doc =
        decision_document(run_sd(workload, 256, ShardConfig{shards, true}));
    EXPECT_EQ(flat, doc) << shards << " shards";
  }
}

TEST(ShardParity, BackfillDecisionsIdenticalSharded) {
  const Workload workload = saturated_workload(7u);
  const std::string flat = decision_document(
      run_sd(workload, 64, ShardConfig{1, false}, PolicyKind::Backfill));
  const std::string sharded = decision_document(
      run_sd(workload, 64, ShardConfig{4, false}, PolicyKind::Backfill));
  EXPECT_EQ(flat, sharded);
}

// Work-split evidence: the per-shard scan counters partition the flat scan
// count exactly — the merge re-examines nothing and drops nothing.
TEST(ShardParity, ShardScanCountersPartitionFlatWork) {
  SimulationConfig cfg = sd_config(machine_of(256), CutoffConfig::dynamic_avg());
  cfg.shards = ShardConfig{4, true};
  Simulation sim(cfg, wide_workload());
  (void)sim.run();

  const auto* sd = dynamic_cast<const SdPolicyScheduler*>(&sim.scheduler());
  ASSERT_NE(sd, nullptr);
  const MateSelector::SelectStats& stats = sd->selector_stats();
  EXPECT_GT(stats.sharded_selects, 0u);
  EXPECT_EQ(stats.sharded_selects, stats.selects);  // every select took the shard path
  ASSERT_EQ(stats.shard_scanned.size(), 4u);
  std::uint64_t sum = 0;
  int active_shards = 0;
  for (const std::uint64_t scanned : stats.shard_scanned) {
    sum += scanned;
    if (scanned > 0) ++active_shards;
    EXPECT_LT(scanned, stats.candidates_scanned) << "one shard carried the whole scan";
  }
  EXPECT_EQ(sum, stats.candidates_scanned);
  EXPECT_GE(active_shards, 2) << "the shard split never spread candidates";
}

// --- SdConfig::scan.slice (satellite) -------------------------------------

/// Two-node stage for the starvation scenario: two long 1-node mates
/// holding the whole machine, a big guest A that burns the single budget
/// slot on an estimate rejection every pass, and a tiny 1-node guest B
/// behind it whose only eligible mates (w_i <= W) are the 1-node runners —
/// it could start malleably at once, if the slice ever reaches it.
Workload starvation_workload() {
  std::vector<JobSpec> specs;
  for (int i = 0; i < 2; ++i) {
    JobSpec mate;
    mate.submit = 0;
    mate.req_cpus = 8;
    mate.req_nodes = 1;
    mate.base_runtime = 400;
    mate.req_time = 400;
    specs.push_back(mate);
  }
  JobSpec big;  // static_end 2400 always beats quick_mall_end (~2x req_time)
  big.submit = 1;
  big.req_cpus = 16;
  big.req_nodes = 2;
  big.base_runtime = 2000;
  big.req_time = 2000;
  specs.push_back(big);
  JobSpec tiny;
  tiny.submit = 2;
  tiny.req_cpus = 8;
  tiny.req_nodes = 1;
  tiny.base_runtime = 20;
  tiny.req_time = 20;
  specs.push_back(tiny);
  return Workload(WorkloadInfo{"starvation"}, std::move(specs));
}

SimulationReport run_slice(SliceKind slice) {
  SimulationConfig cfg = sd_config(machine_of(2), CutoffConfig::infinite());
  cfg.sd.scan.guest_budget = 1;
  cfg.sd.scan.slice = slice;
  return Simulation(cfg, starvation_workload()).run();
}

TEST(ShardSlice, RotateDrainsStarvedTail) {
  const SimulationReport prefix = run_slice(SliceKind::kPrefix);
  const SimulationReport rotate = run_slice(SliceKind::kRotate);

  ASSERT_EQ(prefix.records.size(), 4u);
  ASSERT_EQ(rotate.records.size(), 4u);
  const auto tiny_of = [](const SimulationReport& report) -> const JobRecord& {
    for (const JobRecord& record : report.records) {
      if (record.id == 3) return record;
    }
    ADD_FAILURE() << "tiny guest record missing";
    return report.records.front();
  };
  const JobRecord& tiny_prefix = tiny_of(prefix);
  const JobRecord& tiny_rotate = tiny_of(rotate);

  // Prefix: the head guest burns the slot every pass; the tiny guest only
  // moves once the mate finishes at t=400.
  EXPECT_GE(tiny_prefix.start, 400);
  // Rotate: the window shifts past the head guest on the next pass and the
  // tiny guest starts malleably while the mate is still running.
  EXPECT_TRUE(tiny_rotate.was_guest);
  EXPECT_LT(tiny_rotate.start, 400);
  EXPECT_GT(rotate.malleable_starts, 0u);
  // Rotation defers, never starves: both runs drain the whole workload.
  for (const SimulationReport* report : {&prefix, &rotate}) {
    for (const JobRecord& record : report->records) {
      EXPECT_GE(record.end, record.start) << "job " << record.id << " never finished";
    }
  }
}

// A rotating window at least the queue depth wraps to offset 0 every pass —
// the unbounded prefix pass, byte for byte.
TEST(ShardSlice, CoveringRotateMatchesUnboundedPrefix) {
  const Workload workload = saturated_workload(11u);
  SimulationConfig unbounded = sd_config(machine_of(64), CutoffConfig::dynamic_avg());
  const std::string base =
      decision_document(Simulation(unbounded, workload).run());

  SimulationConfig covering = sd_config(machine_of(64), CutoffConfig::dynamic_avg());
  covering.sd.scan.guest_budget = 250;  // queue depth can never exceed the job count
  covering.sd.scan.slice = SliceKind::kRotate;
  const std::string rotated =
      decision_document(Simulation(covering, workload).run());
  EXPECT_EQ(base, rotated);
}

}  // namespace
}  // namespace sdsched
