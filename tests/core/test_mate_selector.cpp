#include "core/mate_selector.h"

#include <gtest/gtest.h>

#include <limits>

#include "drom/node_manager.h"

namespace sdsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class MateSelectorTest : public ::testing::Test {
 protected:
  MateSelectorTest()
      : machine_(make_config()), mgr_(machine_, jobs_, drom_), selector_(machine_, jobs_, sd_) {}

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 8;
    config.node = NodeConfig{2, 24};
    return config;
  }

  /// A running mate started at `start`, holding `nodes` full nodes.
  JobId run_mate(int nodes, SimTime start, SimTime req_time, SimTime submit = 0) {
    JobSpec spec;
    spec.submit = submit;
    spec.req_time = req_time;
    spec.base_runtime = req_time;
    spec.req_cpus = nodes * 48;
    spec.req_nodes = nodes;
    const JobId id = jobs_.add(spec);
    Job& job = jobs_.at(id);
    job.state = JobState::Running;
    job.start_time = start;
    job.predicted_end = start + req_time;
    const auto free = machine_.find_free_nodes(nodes);
    mgr_.start_static(start, id, *free);
    return id;
  }

  /// A pending guest requesting `nodes` full nodes.
  Job& pending_guest(int nodes, SimTime req_time, SimTime submit = 0) {
    JobSpec spec;
    spec.submit = submit;
    spec.req_time = req_time;
    spec.base_runtime = req_time;
    spec.req_cpus = nodes * 48;
    spec.req_nodes = nodes;
    const JobId id = jobs_.add(spec);
    return jobs_.at(id);
  }

  Machine machine_;
  JobRegistry jobs_;
  DromRegistry drom_;
  NodeManager mgr_;
  SdConfig sd_;
  MateSelector selector_;
};

TEST_F(MateSelectorTest, SelectsSingleMatchingMate) {
  const JobId mate = run_mate(2, 0, 10000);
  Job& guest = pending_guest(2, 1000);
  const auto plan = selector_.select(guest, 100, kInf);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->mates, (std::vector<JobId>{mate}));
  ASSERT_EQ(plan->nodes.size(), 2u);
  // SharingFactor 0.5 on 48-core nodes: guest gets 24, mate keeps 24.
  for (const auto& entry : plan->nodes) {
    EXPECT_EQ(entry.guest_cpus, 24);
    EXPECT_EQ(entry.mate_kept_cpus, 24);
    EXPECT_EQ(entry.guest_static_cpus, 48);
  }
  // Guest at rate 0.5 -> increase == req_time (doubling).
  EXPECT_EQ(plan->guest_increase, 1000);
  EXPECT_EQ(plan->guest_duration, 2000);
}

TEST_F(MateSelectorTest, WeightConstraintIsExact) {
  run_mate(3, 0, 10000);  // w=3 cannot serve W=2
  Job& guest = pending_guest(2, 100);
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());
}

TEST_F(MateSelectorTest, TwoMatesCombineToMatchWeight) {
  const JobId m1 = run_mate(1, 0, 10000);
  const JobId m2 = run_mate(2, 0, 10000);
  Job& guest = pending_guest(3, 500);
  const auto plan = selector_.select(guest, 0, kInf);
  ASSERT_TRUE(plan.has_value());
  std::vector<JobId> mates = plan->mates;
  std::sort(mates.begin(), mates.end());
  EXPECT_EQ(mates, (std::vector<JobId>{m1, m2}));
  EXPECT_EQ(plan->nodes.size(), 3u);
}

TEST_F(MateSelectorTest, MaxMatesLimitsCombination) {
  run_mate(1, 0, 10000);
  run_mate(1, 0, 10000);
  run_mate(1, 0, 10000);
  Job& guest = pending_guest(3, 100);
  // m=2 (default): cannot assemble 3 nodes from three 1-node mates.
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());

  SdConfig wide = sd_;
  wide.max_mates = 3;
  MateSelector wide_selector(machine_, jobs_, wide);
  EXPECT_TRUE(wide_selector.select(guest, 0, kInf).has_value());
}

TEST_F(MateSelectorTest, PrefersLowerPenaltyMate) {
  // Two eligible 2-node mates; the one that waited less has lower penalty
  // (Eq. 4) and must be chosen.
  const JobId waited_long = run_mate(2, 1000, 10000, /*submit=*/0);
  const JobId waited_short = run_mate(2, 1000, 10000, /*submit=*/990);
  Job& guest = pending_guest(2, 500);
  const auto plan = selector_.select(guest, 1500, kInf);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->mates, (std::vector<JobId>{waited_short}));
  (void)waited_long;
}

TEST_F(MateSelectorTest, CutoffFiltersPenalizedMates) {
  // Mate that already waited 9x its requested time: penalty ~ >10.
  run_mate(2, 9000, 1000, /*submit=*/0);
  Job& guest = pending_guest(2, 100);
  EXPECT_FALSE(selector_.select(guest, 9000, 5.0).has_value());
  EXPECT_TRUE(selector_.select(guest, 9000, kInf).has_value());
}

TEST_F(MateSelectorTest, GuestMustFinishInsideMateAllocation) {
  // Mate has only 500s left; guest needs ~2000s shrunk -> infeasible.
  run_mate(2, 0, 500);
  Job& guest = pending_guest(2, 1000);
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());
}

TEST_F(MateSelectorTest, RigidJobsAreNotMates) {
  JobSpec spec;
  spec.req_time = 10000;
  spec.base_runtime = 10000;
  spec.req_cpus = 96;
  spec.req_nodes = 2;
  spec.malleability = MalleabilityClass::Rigid;
  const JobId id = jobs_.add(spec);
  Job& job = jobs_.at(id);
  job.state = JobState::Running;
  job.predicted_end = 10000;
  mgr_.start_static(0, id, *machine_.find_free_nodes(2));

  Job& guest = pending_guest(2, 100);
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());
}

TEST_F(MateSelectorTest, BusyMatesWithGuestsAreIneligible) {
  const JobId mate = run_mate(2, 0, 10000);
  jobs_.at(mate).guests.push_back(999);  // already hosting
  Job& guest = pending_guest(2, 100);
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());
}

TEST_F(MateSelectorTest, ExGuestsAreIneligible) {
  const JobId mate = run_mate(2, 0, 10000);
  jobs_.at(mate).started_as_guest = true;
  Job& guest = pending_guest(2, 100);
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());
}

TEST_F(MateSelectorTest, RankFloorBlocksOverShrink) {
  // Mate runs pure-MPI-ish: 30 ranks per node. SharingFactor would take 24,
  // leaving 24 < 30 -> only 18 can go to the guest; still feasible.
  JobSpec spec;
  spec.req_time = 10000;
  spec.base_runtime = 10000;
  spec.req_cpus = 96;
  spec.req_nodes = 2;
  spec.ranks_per_node = 30;
  const JobId id = jobs_.add(spec);
  Job& mate = jobs_.at(id);
  mate.state = JobState::Running;
  mate.predicted_end = 10000;
  mgr_.start_static(0, id, *machine_.find_free_nodes(2));

  Job& guest = pending_guest(2, 100);
  const auto plan = selector_.select(guest, 0, kInf);
  ASSERT_TRUE(plan.has_value());
  for (const auto& entry : plan->nodes) {
    EXPECT_EQ(entry.mate_kept_cpus, 30);
    EXPECT_EQ(entry.guest_cpus, 18);
  }
}

TEST_F(MateSelectorTest, MinimizesPerformanceImpactAcrossCombinations) {
  // W=2 can be served by one 2-node mate (penalty p) or two 1-node mates
  // (penalty ~2p): the single mate must win.
  const JobId two_node = run_mate(2, 100, 10000, 0);
  run_mate(1, 100, 10000, 0);
  run_mate(1, 100, 10000, 0);
  Job& guest = pending_guest(2, 500);
  const auto plan = selector_.select(guest, 200, kInf);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->mates, (std::vector<JobId>{two_node}));
}

TEST_F(MateSelectorTest, FreeNodesReduceMateCount) {
  SdConfig with_free = sd_;
  with_free.include_free_nodes = true;
  MateSelector free_selector(machine_, jobs_, with_free);

  run_mate(2, 0, 10000);  // leaves 6 nodes free
  Job& guest = pending_guest(3, 500);
  // Without free nodes: no combination sums to 3.
  EXPECT_FALSE(selector_.select(guest, 0, kInf, 0).has_value());
  // With free nodes: 2 free + ... no; 1 mate (w=2) + 1 free = 3. Feasible.
  const auto plan = free_selector.select(guest, 0, kInf, 6);
  ASSERT_TRUE(plan.has_value());
  int free_entries = 0;
  for (const auto& entry : plan->nodes) {
    if (entry.mate == kInvalidJob) {
      ++free_entries;
      EXPECT_EQ(entry.guest_cpus, 48);  // full node for the guest
    }
  }
  EXPECT_EQ(free_entries, 1);
}

TEST_F(MateSelectorTest, GuestIncreaseUsesWorstCaseRate) {
  // Guest on 1 node, SharingFactor 0.5: rate 0.5 -> duration doubles.
  run_mate(1, 0, 100000);
  Job& guest = pending_guest(1, 700);
  const auto plan = selector_.select(guest, 0, kInf);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->guest_increase, 700);
  // Mate increase: (1 - 0.5) * guest_duration = 700.
  ASSERT_EQ(plan->mate_increases.size(), 1u);
  EXPECT_EQ(plan->mate_increases[0], 700);
}

TEST_F(MateSelectorTest, PendingJobsNeverSelected) {
  Job& other = pending_guest(2, 1000);  // pending, same size
  (void)other;
  Job& guest = pending_guest(2, 100);
  EXPECT_FALSE(selector_.select(guest, 0, kInf).has_value());
}

}  // namespace
}  // namespace sdsched
