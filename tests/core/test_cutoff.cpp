#include "core/cutoff.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdsched {
namespace {

Job& add_running(JobRegistry& jobs, SimTime submit, SimTime start, SimTime req_time,
                 SimTime increase = 0) {
  JobSpec spec;
  spec.submit = submit;
  spec.req_time = req_time;
  const JobId id = jobs.add(spec);
  Job& job = jobs.at(id);
  job.state = JobState::Running;
  job.start_time = start;
  job.predicted_increase = increase;
  return job;
}

TEST(Cutoff, StaticReturnsConfiguredValue) {
  JobRegistry jobs;
  EXPECT_DOUBLE_EQ(compute_cutoff(CutoffConfig::max_sd(10.0), jobs, 0), 10.0);
  EXPECT_DOUBLE_EQ(compute_cutoff(CutoffConfig::max_sd(5.0), jobs, 999), 5.0);
}

TEST(Cutoff, InfiniteIsUnbounded) {
  JobRegistry jobs;
  EXPECT_TRUE(std::isinf(compute_cutoff(CutoffConfig::infinite(), jobs, 0)));
}

TEST(Cutoff, EstimatedRunningSlowdownFormula) {
  JobRegistry jobs;
  // waited 100s, requested 100s, no increase -> (100+100)/100 = 2.
  const Job& job = add_running(jobs, 0, 100, 100);
  EXPECT_DOUBLE_EQ(estimated_running_slowdown(job, 100), 2.0);
}

TEST(Cutoff, EstimatedSlowdownIncludesIncrease) {
  JobRegistry jobs;
  const Job& job = add_running(jobs, 0, 50, 100, 30);
  // (wait 50 + increase 30 + req 100)/100 = 1.8
  EXPECT_DOUBLE_EQ(estimated_running_slowdown(job, 60), 1.8);
}

TEST(Cutoff, DynamicAverageOfRunningJobs) {
  JobRegistry jobs;
  add_running(jobs, 0, 100, 100);  // slowdown 2
  add_running(jobs, 0, 300, 100);  // slowdown 4
  const double cutoff = compute_cutoff(CutoffConfig::dynamic_avg(), jobs, 300);
  EXPECT_DOUBLE_EQ(cutoff, 3.0);
}

TEST(Cutoff, DynamicIgnoresNonRunningJobs) {
  JobRegistry jobs;
  add_running(jobs, 0, 100, 100);  // slowdown 2
  JobSpec pending;
  pending.submit = 0;
  pending.req_time = 1;
  jobs.add(pending);  // stays Pending: huge would-be slowdown, must not count
  EXPECT_DOUBLE_EQ(compute_cutoff(CutoffConfig::dynamic_avg(), jobs, 100), 2.0);
}

TEST(Cutoff, DynamicWithNoRunningJobsIsInfinite) {
  JobRegistry jobs;
  EXPECT_TRUE(std::isinf(compute_cutoff(CutoffConfig::dynamic_avg(), jobs, 0)));
}

TEST(Cutoff, ZeroWaitGivesSlowdownOne) {
  JobRegistry jobs;
  const Job& job = add_running(jobs, 100, 100, 200);
  EXPECT_DOUBLE_EQ(estimated_running_slowdown(job, 100), 1.0);
}

}  // namespace
}  // namespace sdsched
