// The MateRegistry must mirror a brute-force job-table scan through the
// whole lifecycle (starts, guest starts, finishes), and a registry-backed
// MateSelector must make the *identical* decisions the full-scan selector
// makes — the parity contract behind the SD hot-path speedup.
#include "core/mate_registry.h"

#include <gtest/gtest.h>

#include <limits>
#include <optional>

#include "cluster/cluster_state_index.h"
#include "core/mate_selector.h"
#include "drom/node_manager.h"

namespace sdsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

JobSpec spec_of(SimTime submit, SimTime req_time, int req_nodes, int cores_per_node,
                MalleabilityClass cls = MalleabilityClass::Malleable) {
  JobSpec spec;
  spec.submit = submit;
  spec.req_time = req_time;
  spec.base_runtime = req_time;
  spec.req_cpus = req_nodes * cores_per_node;
  spec.req_nodes = req_nodes;
  spec.malleability = cls;
  return spec;
}

TEST(MateRegistry, TracksLifecycleTransitions) {
  JobRegistry jobs;
  MateRegistry registry;

  const JobId malleable = jobs.add(spec_of(0, 100, 1, 48));
  const JobId rigid = jobs.add(spec_of(0, 100, 1, 48, MalleabilityClass::Rigid));
  const JobId guest = jobs.add(spec_of(0, 100, 1, 48));

  jobs.at(malleable).state = JobState::Running;
  registry.on_start(jobs.at(malleable));
  jobs.at(rigid).state = JobState::Running;
  registry.on_start(jobs.at(rigid));
  jobs.at(guest).state = JobState::Running;
  jobs.at(guest).started_as_guest = true;
  registry.on_start(jobs.at(guest));

  // All three run; only the plain malleable job is mate-eligible.
  EXPECT_EQ(registry.running(), (std::vector<JobId>{malleable, rigid, guest}));
  EXPECT_EQ(registry.mates(), (std::vector<JobId>{malleable}));
  std::string diag;
  EXPECT_TRUE(registry.check_consistent(jobs, &diag)) << diag;

  jobs.at(malleable).state = JobState::Completed;
  registry.on_finish(malleable);
  EXPECT_EQ(registry.running(), (std::vector<JobId>{rigid, guest}));
  EXPECT_TRUE(registry.mates().empty());
  EXPECT_TRUE(registry.check_consistent(jobs, &diag)) << diag;
}

TEST(MateRegistry, SeedIndexesAPopulatedRegistry) {
  JobRegistry jobs;
  const JobId a = jobs.add(spec_of(0, 100, 1, 48));
  const JobId b = jobs.add(spec_of(0, 100, 1, 48));
  jobs.at(a).state = JobState::Running;
  jobs.at(b).state = JobState::Running;
  jobs.at(b).started_as_guest = true;

  MateRegistry registry;
  registry.seed(jobs);
  EXPECT_EQ(registry.running(), (std::vector<JobId>{a, b}));
  EXPECT_EQ(registry.mates(), (std::vector<JobId>{a}));
}

TEST(MateRegistry, CheckConsistentCatchesAMissedStart) {
  JobRegistry jobs;
  const JobId a = jobs.add(spec_of(0, 100, 1, 48));
  jobs.at(a).state = JobState::Running;

  MateRegistry registry;  // never told about `a`
  std::string diag;
  EXPECT_FALSE(registry.check_consistent(jobs, &diag));
  EXPECT_FALSE(diag.empty());
}

// ---------------------------------------------------------------------------
// Parity: registry-backed selection == full-scan selection over a recorded
// random lifecycle.
// ---------------------------------------------------------------------------

bool plans_equal(const std::optional<MatePlan>& a, const std::optional<MatePlan>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  if (a->mates != b->mates || a->mate_increases != b->mate_increases) return false;
  if (a->guest_increase != b->guest_increase || a->guest_duration != b->guest_duration) {
    return false;
  }
  if (a->performance_impact != b->performance_impact) return false;
  if (a->nodes.size() != b->nodes.size()) return false;
  for (std::size_t i = 0; i < a->nodes.size(); ++i) {
    const SharePlan& x = a->nodes[i];
    const SharePlan& y = b->nodes[i];
    if (x.node != y.node || x.mate != y.mate || x.guest_cpus != y.guest_cpus ||
        x.mate_kept_cpus != y.mate_kept_cpus ||
        x.guest_static_cpus != y.guest_static_cpus) {
      return false;
    }
  }
  return true;
}

TEST(MateRegistry, BudgetCacheSeesOccupancyChangesBelowTheIndexVersion) {
  // A guest finishing on a node whose mate's predicted end dominates
  // changes the node's core split but NOT its free_at — the index version
  // does not move (profile reuse depends on that), yet the selector's
  // cached budgets must refresh or it diverges from the machine truth.
  MachineConfig mc;
  mc.nodes = 2;
  mc.node = NodeConfig{2, 24};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);
  MateRegistry registry;

  SdConfig sd;
  sd.max_jobs_per_node = 3;  // keep M mate-eligible while it hosts G
  MateSelector full_scan(machine, jobs, sd);
  MateSelector indexed(machine, jobs, sd);
  indexed.set_mate_registry(&registry);
  indexed.set_cluster_index(&index);

  // Mate M on node 0, predicted end 10000.
  const JobId m = jobs.add(spec_of(0, 10000, 1, 48));
  jobs.at(m).state = JobState::Running;
  jobs.at(m).predicted_end = 10000;
  mgr.start_static(0, m, {0});
  registry.on_start(jobs.at(m));

  // Guest G takes 24 of M's cores; M's end still dominates the node.
  const JobId g = jobs.add(spec_of(0, 100, 1, 48));
  jobs.at(g).state = JobState::Running;
  jobs.at(g).predicted_end = 200;
  mgr.start_guest(0, g, {SharePlan{0, m, 24, 24, 48}});
  registry.on_start(jobs.at(g));

  // Populate the cache while M is shrunk: no plan fits (M cannot shed more).
  const JobId probe1 = jobs.add(spec_of(10, 50, 1, 48));
  const std::uint64_t version_before = index.version();
  EXPECT_FALSE(indexed.select(jobs.at(probe1), 10, kInf).has_value());
  EXPECT_FALSE(full_scan.select(jobs.at(probe1), 10, kInf).has_value());

  // G finishes: node 0's free_at stays at M's end (no version bump), but
  // M expands back to its full static split. (Re-fetch G: the adds above
  // may have reallocated the registry.)
  jobs.at(g).state = JobState::Completed;
  jobs.at(g).end_time = 200;
  mgr.finish_job(200, g);
  registry.on_finish(g);
  EXPECT_EQ(index.version(), version_before);  // below the version's resolution

  // Both selectors must now see the expanded mate and agree on the plan.
  const JobId probe2 = jobs.add(spec_of(200, 50, 1, 48));
  const auto scan_plan = full_scan.select(jobs.at(probe2), 200, kInf);
  const auto indexed_plan = indexed.select(jobs.at(probe2), 200, kInf);
  ASSERT_TRUE(scan_plan.has_value());
  ASSERT_TRUE(plans_equal(scan_plan, indexed_plan));
}

TEST(MateRegistry, SelectionParityOverRecordedLifecycle) {
  MachineConfig mc;
  mc.nodes = 12;
  mc.node = NodeConfig{2, 4};
  Machine machine(mc);
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr(machine, jobs, drom);
  ClusterStateIndex index(machine, jobs);
  MateRegistry registry;

  SdConfig sd;
  MateSelector full_scan(machine, jobs, sd);  // historical path: no registry/index
  MateSelector indexed(machine, jobs, sd);
  indexed.set_mate_registry(&registry);
  indexed.set_cluster_index(&index);

  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  const auto rnd = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };
  const auto add_pending = [&](SimTime now, int req_nodes, SimTime req_time) {
    return jobs.add(spec_of(now, req_time, req_nodes, machine.cores_per_node()));
  };

  std::vector<JobId> running;
  SimTime now = 0;
  std::string diag;
  int compared = 0;
  for (int step = 0; step < 300; ++step) {
    now += static_cast<SimTime>(rnd(15));
    const std::uint64_t op = rnd(10);
    if (op < 5) {
      const int want = 1 + static_cast<int>(rnd(3));
      const auto nodes = machine.find_free_nodes(want);
      if (nodes) {
        const auto cls = rnd(4) == 0 ? MalleabilityClass::Rigid : MalleabilityClass::Malleable;
        const JobId id = jobs.add(
            spec_of(now, 50 + static_cast<SimTime>(rnd(500)), want,
                    machine.cores_per_node(), cls));
        Job& job = jobs.at(id);
        job.state = JobState::Running;
        job.start_time = now;
        job.predicted_end = now + job.spec.req_time;
        mgr.start_static(now, id, *nodes);
        registry.on_start(job);
        running.push_back(id);
      }
    } else if (op < 7 && !running.empty()) {
      const std::size_t pick = rnd(running.size());
      const JobId id = running[pick];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(pick));
      jobs.at(id).state = JobState::Completed;
      jobs.at(id).end_time = now;
      mgr.finish_job(now, id);
      registry.on_finish(id);
    } else if (!running.empty()) {
      // Guest start through the selector itself: take the full-scan plan
      // (parity with the indexed one is asserted below) and apply it.
      const JobId guest_id =
          add_pending(now, 1 + static_cast<int>(rnd(2)), 20 + static_cast<SimTime>(rnd(60)));
      Job& guest = jobs.at(guest_id);
      const auto plan = full_scan.select(guest, now, kInf);
      if (plan) {
        guest.state = JobState::Running;
        guest.start_time = now;
        guest.predicted_increase = plan->guest_increase;
        guest.predicted_end = now + guest.spec.req_time + plan->guest_increase;
        for (std::size_t i = 0; i < plan->mates.size(); ++i) {
          Job& mate = jobs.at(plan->mates[i]);
          mate.predicted_increase += plan->mate_increases[i];
          mate.predicted_end += plan->mate_increases[i];
          index.on_predicted_end_changed(plan->mates[i]);
        }
        mgr.start_guest(now, guest_id, plan->nodes);
        registry.on_start(guest);
        running.push_back(guest_id);
      }
    }

    ASSERT_TRUE(registry.check_consistent(jobs, &diag)) << "step " << step << ": " << diag;

    // Probe guests of several shapes: both selectors must agree exactly.
    for (const int req_nodes : {1, 2, 3}) {
      const JobId probe = add_pending(now, req_nodes, 30);
      const Job& guest = jobs.at(probe);
      for (const double cutoff : {kInf, 5.0}) {
        const auto a = full_scan.select(guest, now, cutoff);
        const auto b = indexed.select(guest, now, cutoff);
        ASSERT_TRUE(plans_equal(a, b))
            << "step " << step << " req_nodes " << req_nodes << " cutoff " << cutoff;
        if (a) ++compared;
      }
    }
  }
  EXPECT_GT(compared, 0);  // the walk actually produced plans to compare
}

}  // namespace
}  // namespace sdsched
