#include "core/adaptive_sharing.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

const ApplicationProfile* profile(const char* name) {
  return &table2_profiles()[profile_index(name)];
}

TEST(AdaptiveSharing, NullProfilesReturnBase) {
  EXPECT_DOUBLE_EQ(adaptive_sharing_factor(0.5, nullptr, nullptr), 0.5);
  EXPECT_DOUBLE_EQ(adaptive_sharing_factor(0.5, profile("PILS"), nullptr), 0.5);
  EXPECT_DOUBLE_EQ(adaptive_sharing_factor(0.5, nullptr, profile("PILS")), 0.5);
}

TEST(AdaptiveSharing, MemoryBoundMateCedesMore) {
  // STREAM mate + PILS guest: the canonical §4.4 pairing — the guest should
  // get more than the socket split.
  const double sf = adaptive_sharing_factor(0.5, profile("STREAM"), profile("PILS"));
  EXPECT_GT(sf, 0.6);
  EXPECT_LE(sf, 0.75);
}

TEST(AdaptiveSharing, ComputeBoundMateKeepsSocketSplit) {
  // PILS scales perfectly: ceding beyond the base split costs real work.
  const double sf = adaptive_sharing_factor(0.5, profile("PILS"), profile("PILS"));
  EXPECT_NEAR(sf, 0.5, 1e-9);
}

TEST(AdaptiveSharing, MemoryBoundGuestGainsLittle) {
  // STREAM guest can't exploit extra cores: stay near the base.
  const double sf = adaptive_sharing_factor(0.5, profile("STREAM"), profile("STREAM"));
  EXPECT_LT(sf, 0.58);
}

TEST(AdaptiveSharing, ClampedToConfiguredRange) {
  AdaptiveSharingConfig config;
  config.gain = 10.0;  // absurd gain must still clamp
  const double sf =
      adaptive_sharing_factor(0.5, profile("STREAM"), profile("PILS"), config);
  EXPECT_DOUBLE_EQ(sf, config.max_factor);

  config.gain = 0.0;
  EXPECT_DOUBLE_EQ(
      adaptive_sharing_factor(0.5, profile("STREAM"), profile("PILS"), config), 0.5);
}

TEST(AdaptiveSharing, MonotoneInMateFlexibility) {
  // The less scalable the mate, the more it cedes.
  const double vs_stream = adaptive_sharing_factor(0.5, profile("STREAM"), profile("PILS"));
  const double vs_coreneuron =
      adaptive_sharing_factor(0.5, profile("CoreNeuron"), profile("PILS"));
  const double vs_pils = adaptive_sharing_factor(0.5, profile("PILS"), profile("PILS"));
  EXPECT_GT(vs_stream, vs_coreneuron);
  EXPECT_GT(vs_coreneuron, vs_pils);
}

}  // namespace
}  // namespace sdsched
