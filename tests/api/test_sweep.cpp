#include "api/sweep.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "api/experiment.h"

namespace sdsched {
namespace {

/// W1 at a small scale: baseline + the five Fig. 1-3 cut-off variants.
std::vector<SweepCell> w1_grid(double scale) {
  const PaperWorkload pw = paper_workload(1, scale);
  std::vector<SweepCell> cells;
  cells.push_back({"W1/baseline", pw.workload, baseline_config(pw.machine)});
  for (const auto& variant : maxsd_sweep()) {
    cells.push_back({"W1/" + variant.label, pw.workload,
                     sd_config(pw.machine, variant.cutoff)});
  }
  return cells;
}

TEST(SweepRunner, CellsShareOneWorkloadStorage) {
  const auto cells = w1_grid(0.02);
  for (std::size_t i = 1; i < cells.size(); ++i) {
    EXPECT_TRUE(cells[0].workload.shares_jobs_with(cells[i].workload));
  }
}

TEST(SweepRunner, ParallelRunIsByteIdenticalToSerial) {
  // The acceptance check of the sweep subsystem: the same (workload, seed,
  // config) grid must produce byte-identical reports whether run inline
  // (jobs=1) or on an 8-worker pool.
  const auto cells = w1_grid(0.02);
  const auto serial = SweepRunner(1).run(cells);
  const auto parallel = SweepRunner(8).run(cells);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(serial[i].name, cells[i].name);      // input order preserved
    EXPECT_EQ(parallel[i].name, cells[i].name);
    EXPECT_EQ(serial[i].report.json(), parallel[i].report.json()) << cells[i].name;
    EXPECT_TRUE(serial[i].report.records == parallel[i].report.records) << cells[i].name;
  }
  // The grid is a real experiment: the baseline is backfill, the rest SD.
  EXPECT_EQ(serial[0].report.policy, "backfill");
  EXPECT_EQ(serial[1].report.policy, "sd-policy");
  EXPECT_GT(serial[0].report.summary.jobs, 0u);
}

TEST(SweepRunner, RepeatedParallelRunsAreDeterministic) {
  const auto cells = w1_grid(0.01);
  const auto first = SweepRunner(4).run(cells);
  const auto second = SweepRunner(4).run(cells);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(first[i].report.json(), second[i].report.json());
  }
}

TEST(SweepRunner, ValidatesCellNames) {
  const PaperWorkload pw = paper_workload(1, 0.01);
  const SweepCell cell{"dup", pw.workload, baseline_config(pw.machine)};
  SweepCell unnamed = cell;
  unnamed.name.clear();
  EXPECT_THROW((void)SweepRunner(1).run({cell, cell}), std::invalid_argument);
  EXPECT_THROW((void)SweepRunner(1).run({unnamed}), std::invalid_argument);
}

TEST(SweepRunner, PropagatesCellExceptions) {
  const PaperWorkload pw = paper_workload(1, 0.01);
  std::vector<SweepCell> cells;
  cells.push_back({"ok", pw.workload, baseline_config(pw.machine)});
  SweepCell bad{"bad-policy", pw.workload, baseline_config(pw.machine)};
  bad.config.policy = static_cast<PolicyKind>(99);  // Simulation ctor throws
  cells.push_back(bad);
  EXPECT_THROW((void)SweepRunner(1).run(cells), std::invalid_argument);
  EXPECT_THROW((void)SweepRunner(4).run(cells), std::invalid_argument);
}

TEST(SweepRunner, EffectiveJobsClampsToGridAndHardware) {
  EXPECT_EQ(SweepRunner(4).effective_jobs(2), 2u);
  EXPECT_EQ(SweepRunner(4).effective_jobs(100), 4u);
  EXPECT_EQ(SweepRunner(1).effective_jobs(10), 1u);
  EXPECT_GE(SweepRunner(0).effective_jobs(100), 1u);
  EXPECT_EQ(SweepRunner(3).effective_jobs(0), 1u);
}

TEST(SweepRunner, CellSeedIsDeterministicDistinctAndNonZero) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL}) {
    for (std::size_t index = 0; index < 64; ++index) {
      const std::uint64_t seed = SweepRunner::cell_seed(base, index);
      EXPECT_NE(seed, 0u);
      EXPECT_EQ(seed, SweepRunner::cell_seed(base, index));  // stable
      seen.insert(seed);
    }
  }
  EXPECT_EQ(seen.size(), 3u * 64u);  // no collisions across bases/indices
}

TEST(SweepRunner, ShardedCellsNestInsideSweepWorkers) {
  // Nested parallelism (docs/bench-format.md "Nested parallelism"): sweep
  // workers running sharded-parallel simulations all lean on the ONE
  // process-wide shard_worker_pool(), so total threads stay clamped at
  // sweep jobs + hardware_concurrency regardless of cell count. Shard
  // tasks are leaves (they never submit), so no deadlock — and the
  // decisions must stay byte-identical to flat serial cells. This test is
  // part of the TSan preset's thread battery.
  auto cells = w1_grid(0.02);
  auto sharded_cells = cells;
  for (auto& cell : sharded_cells) {
    cell.config.shards = ShardConfig{4, true};
  }
  const auto flat = SweepRunner(1).run(cells);
  const auto nested = SweepRunner(8).run(sharded_cells);
  ASSERT_EQ(nested.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].report.json(), nested[i].report.json()) << cells[i].name;
    EXPECT_TRUE(flat[i].report.records == nested[i].report.records) << cells[i].name;
  }
}

TEST(SweepRunner, RunSingleAndCompareStillAgree) {
  // compare() now runs both cells through the runner; its normalized view
  // must match hand-normalizing two run_single() calls.
  const PaperWorkload pw = paper_workload(1, 0.02);
  const SimulationConfig sd = sd_config(pw.machine, CutoffConfig::max_sd(10.0));
  const ExperimentResult result = compare(pw, sd);
  const SimulationReport base = run_single(pw, baseline_config(pw.machine));
  const SimulationReport policy = run_single(pw, sd);
  EXPECT_EQ(result.baseline.json(), base.json());
  EXPECT_EQ(result.policy.json(), policy.json());
}

}  // namespace
}  // namespace sdsched
