#include "api/experiment.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(Experiment, PaperWorkloadGeometry) {
  // Machine shapes from Table 1 (scaled): W1/W2/W5 are 48-core MN4-like
  // nodes, W3 is RICC's 8-core nodes, W4 Curie's 16-core nodes.
  const struct {
    int which;
    int cores_per_node;
    const char* label;
  } expected[] = {
      {1, 48, "W1"}, {2, 48, "W2"}, {3, 8, "W3"}, {4, 16, "W4"}, {5, 48, "W5"},
  };
  for (const auto& e : expected) {
    const PaperWorkload pw = paper_workload(e.which, 0.05);
    EXPECT_EQ(pw.label, e.label);
    EXPECT_EQ(pw.machine.node.sockets * pw.machine.node.cores_per_socket, e.cores_per_node);
    EXPECT_EQ(pw.workload.info().cores_per_node, e.cores_per_node);
    EXPECT_GT(pw.workload.size(), 0u);
    EXPECT_EQ(pw.workload.info().system_nodes, pw.machine.nodes);
  }
}

TEST(Experiment, InvalidWorkloadIdThrows) {
  EXPECT_THROW((void)paper_workload(0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)paper_workload(6, 0.1), std::invalid_argument);
}

TEST(Experiment, W2IsW1WithExactEstimates) {
  // The paper compares W1 and W2 job-for-job: same trace, ideal estimates.
  const PaperWorkload w1 = paper_workload(1, 0.05);
  const PaperWorkload w2 = paper_workload(2, 0.05);
  ASSERT_EQ(w1.workload.size(), w2.workload.size());
  for (std::size_t i = 0; i < w1.workload.size(); ++i) {
    const JobSpec& a = w1.workload.jobs()[i];
    const JobSpec& b = w2.workload.jobs()[i];
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.base_runtime, b.base_runtime);
    EXPECT_EQ(a.req_cpus, b.req_cpus);
    EXPECT_EQ(b.req_time, b.base_runtime);  // ideal estimates
    EXPECT_GE(a.req_time, a.base_runtime);
  }
}

TEST(Experiment, W5CarriesApplicationProfiles) {
  const PaperWorkload w5 = paper_workload(5, 0.1);
  for (const auto& spec : w5.workload.jobs()) {
    EXPECT_GE(spec.app_profile, 0);
  }
}

TEST(Experiment, ConfigsSelectPolicies) {
  MachineConfig machine;
  EXPECT_EQ(baseline_config(machine).policy, PolicyKind::Backfill);
  const SimulationConfig sd = sd_config(machine, CutoffConfig::max_sd(10.0));
  EXPECT_EQ(sd.policy, PolicyKind::SdPolicy);
  EXPECT_EQ(sd.sd.cutoff.kind, CutoffKind::Static);
  EXPECT_DOUBLE_EQ(sd.sd.cutoff.value, 10.0);
}

TEST(Experiment, MaxsdSweepMatchesPaperAxis) {
  const auto& sweep = maxsd_sweep();
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_EQ(sweep[0].label, "MAXSD 5");
  EXPECT_EQ(sweep[3].cutoff.kind, CutoffKind::Infinite);
  EXPECT_EQ(sweep[4].cutoff.kind, CutoffKind::DynamicAverage);
}

TEST(Experiment, CompareNormalizesAgainstBaseline) {
  const PaperWorkload pw = paper_workload(1, 0.02);
  const ExperimentResult result =
      compare(pw, sd_config(pw.machine, CutoffConfig::max_sd(10.0)));
  EXPECT_EQ(result.baseline.policy, "backfill");
  EXPECT_EQ(result.policy.policy, "sd-policy");
  EXPECT_GT(result.normalized.avg_slowdown, 0.0);
  EXPECT_NEAR(result.normalized.makespan,
              static_cast<double>(result.policy.summary.makespan) /
                  static_cast<double>(result.baseline.summary.makespan),
              1e-9);
}

TEST(Experiment, BenchScaleParsing) {
  const char* full[] = {"prog", "--full"};
  EXPECT_DOUBLE_EQ(bench_scale(2, full, 0.1), 1.0);
  const char* scaled[] = {"prog", "--scale=0.25"};
  EXPECT_DOUBLE_EQ(bench_scale(2, scaled, 0.1), 0.25);
  const char* none[] = {"prog"};
  EXPECT_DOUBLE_EQ(bench_scale(1, none, 0.1), 0.1);
}

TEST(Experiment, ScaleClampedToSaneRange) {
  const PaperWorkload tiny = paper_workload(1, 1e-9);  // clamped to 0.001
  EXPECT_GE(tiny.machine.nodes, 16);
  EXPECT_GE(tiny.workload.size(), 100u);
}

TEST(NormalizeMetrics, RatioAndDegenerateBaselines) {
  MetricsSummary policy;
  policy.makespan = 80;
  policy.avg_response = 50.0;
  policy.avg_slowdown = 2.0;
  policy.avg_wait = 10.0;
  policy.energy_kwh = 9.0;
  MetricsSummary baseline;
  baseline.makespan = 100;
  baseline.avg_response = 100.0;
  baseline.avg_slowdown = 4.0;
  baseline.avg_wait = 40.0;
  baseline.energy_kwh = 10.0;
  const NormalizedMetrics norm = normalize(policy, baseline);
  EXPECT_DOUBLE_EQ(norm.makespan, 0.8);
  EXPECT_DOUBLE_EQ(norm.avg_response, 0.5);
  EXPECT_DOUBLE_EQ(norm.avg_slowdown, 0.5);
  EXPECT_DOUBLE_EQ(norm.avg_wait, 0.25);
  EXPECT_DOUBLE_EQ(norm.energy, 0.9);
  // Zero baselines normalize to 1 (no signal), not infinity.
  const NormalizedMetrics degenerate = normalize(policy, MetricsSummary{});
  EXPECT_DOUBLE_EQ(degenerate.makespan, 1.0);
  EXPECT_DOUBLE_EQ(degenerate.energy, 1.0);
}

}  // namespace
}  // namespace sdsched
