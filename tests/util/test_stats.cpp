#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdsched {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  OnlineStats left;
  OnlineStats right;
  OnlineStats combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(x);
    combined.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats empty;
  OnlineStats filled;
  filled.add(1.0);
  filled.add(3.0);
  OnlineStats copy = filled;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 2.0);
  empty.merge(filled);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(BatchStats, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(BatchStats, PercentileInterpolates) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_of(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 0.5), 25.0);
  EXPECT_NEAR(percentile_of(values, 0.25), 17.5, 1e-9);
}

TEST(BatchStats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile_of({40.0, 10.0, 30.0, 20.0}, 0.5), 25.0);
}

TEST(BatchStats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 9.0}), 5.0);
}

TEST(BatchStats, PercentileClampsP) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_of(values, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(values, 1.5), 2.0);
}

}  // namespace
}  // namespace sdsched
