#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace sdsched {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "2"});
  const std::string out = table.str();
  // Every rendered line has identical width.
  std::istringstream iss(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NE(table.str().find("| 1 |"), std::string::npos);
}

TEST(AsciiTable, NumFormatsPrecision) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

TEST(AsciiTable, PctFormatsSign) {
  EXPECT_EQ(AsciiTable::pct(-0.704), "-70.4%");
  EXPECT_EQ(AsciiTable::pct(0.07), "+7.0%");
}

TEST(CsvWriter, QuotesSpecialFields) {
  const std::string path = testing::TempDir() + "/sdsched_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.write_row({"plain", "with,comma", "with\"quote"});
    csv.row("x", 1, 2.5);
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2.substr(0, 4), "x,1,");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdsched
