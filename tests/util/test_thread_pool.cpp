#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <semaphore>
#include <stdexcept>
#include <vector>

namespace sdsched {
namespace {

TEST(ThreadPool, RunsEveryTaskAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int total = 0;
  for (auto& f : futures) total += f.get();
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("cell failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW((void)bad.get(), std::runtime_error);
}

TEST(ThreadPool, RunsTasksConcurrently) {
  // Two tasks that each wait for the other to start can only finish if the
  // pool really has two workers (preemption makes this safe on any core
  // count).
  ThreadPool pool(2);
  std::binary_semaphore a_started{0};
  std::binary_semaphore b_started{0};
  auto a = pool.submit([&] {
    a_started.release();
    b_started.acquire();
    return 1;
  });
  auto b = pool.submit([&] {
    b_started.release();
    a_started.acquire();
    return 2;
  });
  ASSERT_EQ(a.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::future<void> last;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      last = pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(last.wait_for(std::chrono::seconds(0)), std::future_status::ready);
}

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
  ThreadPool pool;  // 0 = default
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace sdsched
