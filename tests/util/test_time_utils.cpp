#include "util/time_utils.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(TimeUtils, FormatSeconds) { EXPECT_EQ(format_duration(42), "42s"); }

TEST(TimeUtils, FormatMinutes) { EXPECT_EQ(format_duration(125), "2m 05s"); }

TEST(TimeUtils, FormatHours) { EXPECT_EQ(format_duration(2 * kHour + 3 * kMinute + 4), "2h 03m 04s"); }

TEST(TimeUtils, FormatDays) {
  EXPECT_EQ(format_duration(kDay + 2 * kHour + 30 * kMinute), "1d 2h 30m");
}

TEST(TimeUtils, FormatNegative) { EXPECT_EQ(format_duration(-90), "-1m 30s"); }

TEST(TimeUtils, DayOf) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(kDay - 1), 0);
  EXPECT_EQ(day_of(kDay), 1);
  EXPECT_EQ(day_of(10 * kDay + 5), 10);
}

TEST(TimeUtils, SecondOfDay) {
  EXPECT_EQ(second_of_day(5), 5);
  EXPECT_EQ(second_of_day(kDay + 7), 7);
}

}  // namespace
}  // namespace sdsched
