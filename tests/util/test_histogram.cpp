#include "util/histogram.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(Histogram, BucketIndexRespectsEdges) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  EXPECT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(9.99), 0u);
  EXPECT_EQ(h.bucket_index(10.0), 1u);
  EXPECT_EQ(h.bucket_index(29.0), 2u);
}

TEST(Histogram, OutOfRangeClampsToEndBuckets) {
  Histogram h({0.0, 1.0, 2.0});
  EXPECT_EQ(h.bucket_index(-5.0), 0u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(100.0), 1u);
}

TEST(Histogram, AddAccumulatesWeights) {
  Histogram h({0.0, 10.0, 20.0});
  h.add(5.0);
  h.add(5.0, 2.5);
  h.add(15.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.5);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.5);
}

TEST(Histogram, Log2BucketsCoverRange) {
  const Histogram h = Histogram::log2_buckets(1.0, 64.0);
  // Edges 1,2,4,...,128 -> 7 buckets, covering 64 inside the last-but-one.
  EXPECT_GE(h.bucket_count(), 6u);
  EXPECT_EQ(h.edges().front(), 1.0);
  EXPECT_GE(h.edges().back(), 64.0);
}

TEST(Histogram, BucketLabelFormat) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.bucket_label(0), "[1, 2)");
  EXPECT_EQ(h.bucket_label(1), "[2, 4)");
}

}  // namespace
}  // namespace sdsched
