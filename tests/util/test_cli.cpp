#include "util/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sdsched {
namespace {

CliArgs make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> args{"prog"};
  args.insert(args.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliArgs, EqualsSyntax) {
  const auto args = make_args({"--jobs=500"});
  EXPECT_EQ(args.get_int("jobs", 0), 500);
}

TEST(CliArgs, SpaceSyntax) {
  const auto args = make_args({"--nodes", "64"});
  EXPECT_EQ(args.get_int("nodes", 0), 64);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make_args({"--full"});
  EXPECT_TRUE(args.get_bool("full"));
}

TEST(CliArgs, MissingUsesFallback) {
  const auto args = make_args({});
  EXPECT_EQ(args.get_int("jobs", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.25), 0.25);
  EXPECT_EQ(args.get_or("name", "x"), "x");
  EXPECT_FALSE(args.get_bool("verbose", false));
}

TEST(CliArgs, MalformedNumberFallsBack) {
  const auto args = make_args({"--jobs=abc"});
  EXPECT_EQ(args.get_int("jobs", 3), 3);
}

TEST(CliArgs, BoolSpellings) {
  EXPECT_TRUE(make_args({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(make_args({"--x=yes"}).get_bool("x"));
  EXPECT_TRUE(make_args({"--x=on"}).get_bool("x"));
  EXPECT_FALSE(make_args({"--x=0"}).get_bool("x", true));
}

TEST(CliArgs, EnvFallback) {
  ::setenv("SDSCHED_FROM_ENV", "99", 1);
  const auto args = make_args({});
  EXPECT_EQ(args.get_int("from-env", 0), 99);
  ::unsetenv("SDSCHED_FROM_ENV");
}

TEST(CliArgs, CommandLineBeatsEnv) {
  ::setenv("SDSCHED_PRIO", "1", 1);
  const auto args = make_args({"--prio=2"});
  EXPECT_EQ(args.get_int("prio", 0), 2);
  ::unsetenv("SDSCHED_PRIO");
}

}  // namespace
}  // namespace sdsched
