#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sdsched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++seen[static_cast<std::size_t>(v - 2)];
  }
  for (const int count : seen) {
    EXPECT_GT(count, 700);  // ~1000 expected per value
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(19);
  std::vector<double> samples;
  constexpr int n = 20001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal(3.0, 1.0));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], std::exp(3.0), std::exp(3.0) * 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, GammaMeanIsShapeTimesScale) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(2.5, 3.0);
  EXPECT_NEAR(sum / n, 7.5, 0.2);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.5, 2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(41);
  const double weights[] = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.03);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.fork();
  // The child must not replay the parent's sequence.
  Rng parent2(53);
  (void)parent2.next_u64();  // same consumption as fork()
  EXPECT_NE(child.next_u64(), parent2.next_u64());
}

}  // namespace
}  // namespace sdsched
