#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace sdsched {
namespace {

TEST(JsonWriter, CompactObjectAndArray) {
  JsonWriter json(0);
  json.begin_object();
  json.field("name", "W1/baseline");
  json.field("jobs", 150);
  json.field("ok", true);
  json.key("ratios");
  json.begin_array();
  json.value(0.5);
  json.value(1.0);
  json.end_array();
  json.key("empty");
  json.begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"W1/baseline","jobs":150,"ok":true,"ratios":[0.5,1],"empty":{}})");
}

TEST(JsonWriter, PrettyPrintsWithIndent) {
  JsonWriter json(2);
  json.begin_object();
  json.field("a", 1);
  json.key("b");
  json.begin_array();
  json.value(2);
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteBecomeNull) {
  JsonWriter json(0);
  json.begin_array();
  json.value(0.1);
  json.value(1.0 / 3.0);
  json.value(std::nan(""));
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::int64_t{-42});
  json.value(std::uint64_t{18446744073709551615ULL});
  json.end_array();
  const std::string out = json.str();
  // Shortest round-trip formatting: re-parsing must give the exact value.
  EXPECT_NE(out.find("0.1,"), std::string::npos);
  EXPECT_NE(out.find("0.3333333333333333"), std::string::npos);
  EXPECT_NE(out.find("null,null"), std::string::npos);
  EXPECT_NE(out.find("-42"), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(out.substr(1)), 0.1);
}

TEST(JsonWriter, TopLevelScalar) {
  JsonWriter json;
  json.value("just a string");
  EXPECT_EQ(json.str(), "\"just a string\"");
}

// Sink mode must produce the exact byte stream buffered mode does, even
// when the document is large enough to cross the internal flush threshold
// several times mid-structure.
TEST(JsonWriter, SinkModeByteIdenticalToBuffered) {
  const auto build = [](JsonWriter& json) {
    json.begin_object();
    json.field("schema", "sdsched-bench-v1");
    json.key("records");
    json.begin_array();
    for (int i = 0; i < 20000; ++i) {  // ~300 KB: several 64 KiB flushes
      json.begin_array();
      json.value(i);
      json.value(static_cast<double>(i) / 3.0);
      json.value(i % 2 == 0);
      json.value("row with a \"quoted\" tail");
      json.end_array();
    }
    json.end_array();
    json.field("count", 20000);
    json.end_object();
  };

  JsonWriter buffered;
  build(buffered);

  std::ostringstream sink;
  JsonWriter streamed(sink);
  build(streamed);
  streamed.finish();

  EXPECT_EQ(sink.str(), buffered.str());
}

TEST(JsonWriter, SinkModeCompactIndentParity) {
  const auto build = [](JsonWriter& json) {
    json.begin_object();
    json.key("xs");
    json.begin_array();
    for (int i = 0; i < 100; ++i) json.value(i);
    json.end_array();
    json.end_object();
  };
  JsonWriter buffered(0);
  build(buffered);
  std::ostringstream sink;
  JsonWriter streamed(sink, 0);
  build(streamed);
  streamed.finish();
  EXPECT_EQ(sink.str(), buffered.str());
}

TEST(JsonWriter, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "sdsched_json_test.json";
  write_text_file(path, "{\"x\": 1}");
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"x\": 1}\n");
  EXPECT_THROW(write_text_file("/nonexistent-dir/impossible.json", "x"), std::runtime_error);
}

}  // namespace
}  // namespace sdsched
