// Property-based suites: invariants that must hold for any workload, seed,
// policy and runtime model. Parameterized over (seed, policy, model) to
// sweep the space.
#include <gtest/gtest.h>

#include <set>

#include "api/simulation.h"
#include "workload/cirne.h"

namespace sdsched {
namespace {

MachineConfig machine_of(int nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.node = NodeConfig{2, 24};
  return config;
}

Workload random_workload(std::uint64_t seed, int jobs, int nodes) {
  CirneConfig config;
  config.n_jobs = jobs;
  config.system_nodes = nodes;
  config.cores_per_node = 48;
  config.max_job_nodes = std::max(2, nodes / 2);
  config.seed = seed;
  config.target_load = 1.3;  // congested: plenty of SD opportunities
  config.pct_malleable = 0.8;
  return generate_cirne(config);
}

struct PropertyCase {
  std::uint64_t seed;
  PolicyKind policy;
  RuntimeModelKind model;
};

class SimulationProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SimulationProperties, ConservationAndSanity) {
  const auto& param = GetParam();
  const int nodes = 8;
  Workload w = random_workload(param.seed, 120, nodes);

  SimulationConfig config;
  config.machine = machine_of(nodes);
  config.policy = param.policy;
  config.execution_model = param.model;
  SimulationReport report = Simulation(config, w).run();

  // P1: every prepared job completes exactly once.
  std::set<JobId> ids;
  for (const auto& record : report.records) {
    EXPECT_TRUE(ids.insert(record.id).second);
  }
  EXPECT_EQ(report.records.size() + report.cancelled_jobs, w.size());

  const double capacity = static_cast<double>(nodes) * 48.0;
  double total_work = 0.0;
  for (const auto& record : report.records) {
    // P2: causality.
    EXPECT_GE(record.start, record.submit);
    EXPECT_GT(record.end, record.start);
    // P3: slowdown >= 1 (a job can never beat its own static runtime by
    // more than rounding).
    EXPECT_GE(record.slowdown(), 0.99);
    // P4: a job's real runtime is never shorter than its static runtime
    // under the clamp-free models (it can only be stretched).
    EXPECT_GE(record.runtime() + 1, record.base_runtime);
    total_work += static_cast<double>(record.base_runtime) * record.req_cpus;
  }
  // P5: machine capacity is never exceeded over the makespan.
  EXPECT_LE(total_work,
            capacity * static_cast<double>(report.summary.makespan) + 1e-6);
  // P6: utilization is a fraction.
  EXPECT_GE(report.summary.utilization, 0.0);
  EXPECT_LE(report.summary.utilization, 1.0 + 1e-9);
  // P7: only SD produces guests.
  if (param.policy != PolicyKind::SdPolicy) {
    EXPECT_EQ(report.summary.guests, 0u);
    EXPECT_EQ(report.summary.mates, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulationProperties,
    ::testing::Values(
        PropertyCase{11, PolicyKind::Fcfs, RuntimeModelKind::Ideal},
        PropertyCase{11, PolicyKind::Backfill, RuntimeModelKind::Ideal},
        PropertyCase{11, PolicyKind::SdPolicy, RuntimeModelKind::Ideal},
        PropertyCase{11, PolicyKind::SdPolicy, RuntimeModelKind::WorstCase},
        PropertyCase{23, PolicyKind::Backfill, RuntimeModelKind::WorstCase},
        PropertyCase{23, PolicyKind::SdPolicy, RuntimeModelKind::Ideal},
        PropertyCase{37, PolicyKind::SdPolicy, RuntimeModelKind::WorstCase},
        PropertyCase{59, PolicyKind::SdPolicy, RuntimeModelKind::Ideal}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = "seed" + std::to_string(info.param.seed) + "_" +
                         to_string(info.param.policy) +
                         (info.param.model == RuntimeModelKind::Ideal ? "_ideal" : "_worst");
      // gtest parameter names must be alphanumeric.
      std::erase_if(name, [](char c) { return c == '-'; });
      return name;
    });

class SdComparisonProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SdComparisonProperties, SdNeverLosesBadlyOnCongestedWorkloads) {
  const int nodes = 8;
  Workload w = random_workload(GetParam(), 150, nodes);

  SimulationConfig base;
  base.machine = machine_of(nodes);
  base.policy = PolicyKind::Backfill;
  SimulationConfig sd = base;
  sd.policy = PolicyKind::SdPolicy;

  SimulationReport rb = Simulation(base, w).run();
  SimulationReport rs = Simulation(sd, w).run();

  // The decision rule only fires when the estimate improves the new job's
  // slowdown; on congested traces the aggregate should not regress much
  // (allow 10% noise) and usually improves substantially.
  EXPECT_LE(rs.summary.avg_slowdown, rb.summary.avg_slowdown * 1.10);
  // Makespan stays in the same ballpark (paper: "keeping makespan constant").
  EXPECT_LE(static_cast<double>(rs.summary.makespan),
            static_cast<double>(rb.summary.makespan) * 1.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdComparisonProperties,
                         ::testing::Values(101, 202, 303, 404, 505));

class WorstVsIdealProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorstVsIdealProperties, WorstCaseModelNeverBeatsIdeal) {
  // Fig. 8's premise: the worst-case execution model can only slow jobs
  // down relative to ideal, for the same SD schedule decisions.
  const int nodes = 8;
  Workload w = random_workload(GetParam(), 120, nodes);
  SimulationConfig ideal;
  ideal.machine = machine_of(nodes);
  ideal.policy = PolicyKind::SdPolicy;
  ideal.execution_model = RuntimeModelKind::Ideal;
  SimulationConfig worst = ideal;
  worst.execution_model = RuntimeModelKind::WorstCase;

  SimulationReport ri = Simulation(ideal, w).run();
  SimulationReport rw = Simulation(worst, w).run();
  // Schedules diverge once durations differ, so compare aggregates with a
  // small tolerance rather than per-job.
  EXPECT_GE(rw.summary.avg_response, ri.summary.avg_response * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorstVsIdealProperties, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace sdsched
