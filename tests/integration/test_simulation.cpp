// Whole-simulation tests with hand-computed schedules for the static
// policies (FCFS and backfill) plus kernel bookkeeping invariants.
#include "api/simulation.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

MachineConfig small_machine(int nodes = 4) {
  MachineConfig config;
  config.nodes = nodes;
  config.node = NodeConfig{2, 24};
  return config;
}

JobSpec job_of(SimTime submit, SimTime runtime, SimTime req, int nodes_requested,
               MalleabilityClass cls = MalleabilityClass::Malleable) {
  JobSpec spec;
  spec.submit = submit;
  spec.base_runtime = runtime;
  spec.req_time = req;
  spec.req_cpus = nodes_requested * 48;
  spec.malleability = cls;
  return spec;
}

SimulationConfig config_for(PolicyKind policy, int nodes = 4) {
  SimulationConfig config;
  config.machine = small_machine(nodes);
  config.policy = policy;
  return config;
}

TEST(Simulation, SingleJobRunsToCompletion) {
  Workload w;
  w.add(job_of(0, 100, 100, 2));
  SimulationReport report = Simulation(config_for(PolicyKind::Backfill), w).run();
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].start, 0);
  EXPECT_EQ(report.records[0].end, 100);
  EXPECT_EQ(report.summary.makespan, 100);
  EXPECT_DOUBLE_EQ(report.summary.avg_slowdown, 1.0);
}

TEST(Simulation, EveryJobCompletesExactlyOnce) {
  Workload w;
  for (int i = 0; i < 50; ++i) {
    w.add(job_of(i * 10, 100 + i, 200 + i, 1 + i % 4));
  }
  for (const PolicyKind policy :
       {PolicyKind::Fcfs, PolicyKind::Backfill, PolicyKind::SdPolicy}) {
    SimulationReport report = Simulation(config_for(policy), w).run();
    ASSERT_EQ(report.records.size(), 50u) << to_string(policy);
    std::vector<bool> seen(50, false);
    for (const auto& record : report.records) {
      EXPECT_FALSE(seen[record.id]) << "job completed twice";
      seen[record.id] = true;
      EXPECT_GE(record.start, record.submit);
      EXPECT_GT(record.end, record.start);
    }
  }
}

TEST(Simulation, FcfsHeadOfLineBlocking) {
  // A (2n,100s), B (4n) blocks, C (1n, 50s) must wait behind B under FCFS.
  Workload w;
  w.add(job_of(0, 100, 100, 2));
  w.add(job_of(1, 100, 100, 4));
  w.add(job_of(2, 50, 50, 1));
  SimulationReport report = Simulation(config_for(PolicyKind::Fcfs), w).run();
  EXPECT_EQ(report.records[1].start, 100);  // B after A
  EXPECT_EQ(report.records[2].start, 200);  // C after B
}

TEST(Simulation, BackfillLetsShortJobJumpAhead) {
  // Same workload: backfill starts C at t=2 on the free nodes.
  Workload w;
  w.add(job_of(0, 100, 100, 2));
  w.add(job_of(1, 100, 100, 4));
  w.add(job_of(2, 50, 50, 1));
  SimulationReport report = Simulation(config_for(PolicyKind::Backfill), w).run();
  // Records are in completion order; look jobs up by id.
  SimTime start_b = -1;
  SimTime start_c = -1;
  for (const auto& record : report.records) {
    if (record.id == 1) start_b = record.start;
    if (record.id == 2) start_c = record.start;
  }
  EXPECT_EQ(start_c, 2);    // C backfills immediately
  EXPECT_EQ(start_b, 100);  // B waits for A
}

TEST(Simulation, RequestedTimesGovernReservationsNotReality) {
  // A runs 50s but requested 1000s. B (4 nodes) reserves at predicted end
  // 1000 — but A's real completion at 50 triggers a pass that starts B.
  Workload w;
  w.add(job_of(0, 50, 1000, 2));
  w.add(job_of(1, 100, 100, 4));
  SimulationReport report = Simulation(config_for(PolicyKind::Backfill), w).run();
  EXPECT_EQ(report.records[0].end, 50);
  EXPECT_EQ(report.records[1].start, 50);
}

TEST(Simulation, UtilizationAndEnergyAccounted) {
  Workload w;
  w.add(job_of(0, 100, 100, 4));
  SimulationReport report = Simulation(config_for(PolicyKind::Backfill), w).run();
  EXPECT_GT(report.summary.energy_kwh, 0.0);
  EXPECT_NEAR(report.summary.utilization, 1.0, 1e-9);
}

TEST(Simulation, RunIsOneShot) {
  Workload w;
  w.add(job_of(0, 10, 10, 1));
  Simulation sim(config_for(PolicyKind::Backfill), w);
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}

TEST(Simulation, EventBudgetStopsRunawaySimulations) {
  Workload w;
  for (int i = 0; i < 20; ++i) w.add(job_of(i, 100, 100, 1));
  SimulationConfig config = config_for(PolicyKind::Backfill);
  config.max_events = 5;
  SimulationReport report = Simulation(config, w).run();
  EXPECT_LE(report.events_fired, 5u);
  EXPECT_LT(report.records.size(), 20u);
}

TEST(Simulation, OversizedJobIsCancelledNotLooped) {
  Workload w;
  w.add(job_of(0, 100, 100, 4));
  JobSpec too_big = job_of(1, 100, 100, 99);
  w.add(too_big);  // clamped by prepare_for to machine size, so runnable
  SimulationReport report = Simulation(config_for(PolicyKind::Backfill), w).run();
  EXPECT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.cancelled_jobs, 0u);
}

TEST(Simulation, PeriodicTicksDoNotChangeStaticSchedule) {
  Workload w;
  w.add(job_of(0, 100, 100, 2));
  w.add(job_of(1, 100, 100, 4));
  w.add(job_of(2, 50, 50, 1));
  SimulationConfig no_tick = config_for(PolicyKind::Backfill);
  no_tick.sched.bf_interval = 0;
  SimulationConfig ticked = config_for(PolicyKind::Backfill);
  ticked.sched.bf_interval = 10;
  SimulationReport a = Simulation(no_tick, w).run();
  SimulationReport b = Simulation(ticked, w).run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].end, b.records[i].end);
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  Workload w;
  for (int i = 0; i < 30; ++i) w.add(job_of(i * 7, 50 + i * 3, 100 + i * 3, 1 + i % 3));
  SimulationReport a = Simulation(config_for(PolicyKind::SdPolicy), w).run();
  SimulationReport b = Simulation(config_for(PolicyKind::SdPolicy), w).run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].id, b.records[i].id);
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].end, b.records[i].end);
  }
  EXPECT_EQ(a.summary.makespan, b.summary.makespan);
}

}  // namespace
}  // namespace sdsched
