// Curie-scale golden-parity slice (real-trace safety net).
//
// The W1 golden (test_golden_parity.cpp) pins the steady synthetic-arrival
// path; this test pins the *burst* path the real traces exercise: the
// earliest half of the bundled Curie fixture — same-second submit bursts on
// the full 5040-node machine, including the sanitizer-clamped failed rows —
// replayed under static backfill and SD-Policy MAXSD 10. Per-job records
// and summaries must stay byte-identical across refactors; burst coalescing
// itself must keep firing (a regression that stops coalescing, or one that
// lets coalescing change decisions, both fail here).
//
// Regenerate intentionally with SDSCHED_UPDATE_GOLDEN=1 (see
// golden_common.h) and commit the refreshed
// tests/golden/curie_trace.golden.json with a justification.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/experiment.h"
#include "golden_common.h"
#include "metrics/summary.h"
#include "util/json.h"
#include "workload/workload_stats.h"

namespace sdsched {
namespace {

constexpr const char* kGoldenRelPath = "/golden/curie_trace.golden.json";

TEST(GoldenTrace, CurieFixtureSliceMatchesGolden) {
  const PaperWorkload pw = trace_workload("curie", /*scale=*/0.5);
  ASSERT_GT(pw.workload.size(), 0u);
  ASSERT_EQ(pw.machine.nodes, 5040) << "Curie fixture must keep the full machine";

  // The real-trace regime this slice exists for: same-second submit bursts.
  const WorkloadStats stats = characterize(pw.workload);
  ASSERT_GT(stats.same_time_submits, 0u)
      << "Curie fixture lost its submit bursts — regenerate data/traces";

  JsonWriter json;
  json.begin_object();
  json.field("schema", "sdsched-golden-v1");
  json.field("grid", "curie fixture 50% slice: backfill + MAXSD 10");
  json.field("jobs", static_cast<std::uint64_t>(pw.workload.size()));
  json.key("cells");
  json.begin_array();

  std::uint64_t backfill_coalesced = 0;
  std::uint64_t sd_guests = 0;
  const auto emit_cell = [&](const std::string& name, const SimulationConfig& cfg) {
    const SimulationReport report = Simulation(cfg, pw.workload).run();
    if (cfg.policy == PolicyKind::Backfill) backfill_coalesced = report.submits_coalesced;
    if (cfg.policy == PolicyKind::SdPolicy) sd_guests = report.summary.guests;
    json.begin_object();
    json.field("name", name);
    json.key("summary");
    to_json(json, report.summary);
    json.field("records", static_cast<std::uint64_t>(report.records.size()));
    json.field("records_fnv1a", golden::records_digest(report.records));
    json.end_object();
  };

  emit_cell("curie/backfill", baseline_config(pw.machine));
  emit_cell("curie/MAXSD 10", sd_config(pw.machine, CutoffConfig::max_sd(10.0)));

  json.end_array();
  json.end_object();

  // Coalescing must actually fire on the non-SD cell — that is the behaviour
  // this slice pins. (Counters are excluded from the golden document itself,
  // like the W1 grid, so legitimate pass-count refactors only have to keep
  // decisions identical.)
  EXPECT_GT(backfill_coalesced, 0u)
      << "no same-timestamp submits were coalesced on the backfill cell";
  EXPECT_GT(sd_guests, 0u) << "the SD cell no longer schedules any malleable guests";

  golden::expect_matches_golden(
      json.str(), kGoldenRelPath,
      "Curie trace slice diverged from the committed golden. Per-job records "
      "and summaries must stay byte-identical across refactors; if this PR "
      "intends to change scheduling decisions, regenerate with "
      "SDSCHED_UPDATE_GOLDEN=1 and justify the diff.");
}

}  // namespace
}  // namespace sdsched
