// Curie-scale golden-parity slice (real-trace safety net).
//
// The W1 golden (test_golden_parity.cpp) pins the steady synthetic-arrival
// path; this test pins the *burst* path the real traces exercise: the
// earliest half of the bundled Curie fixture — same-second submit bursts on
// the full 5040-node machine, including the sanitizer-clamped failed rows —
// replayed under static backfill and SD-Policy MAXSD 10. Per-job records
// and summaries must stay byte-identical across refactors; burst coalescing
// itself must keep firing (a regression that stops coalescing, or one that
// lets coalescing change decisions, both fail here).
//
// Regenerate intentionally with SDSCHED_UPDATE_GOLDEN=1 (see
// golden_common.h) and commit the refreshed
// tests/golden/curie_trace.golden.json with a justification.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/experiment.h"
#include "golden_common.h"
#include "metrics/summary.h"
#include "util/json.h"
#include "workload/workload_stats.h"

namespace sdsched {
namespace {

constexpr const char* kGoldenRelPath = "/golden/curie_trace.golden.json";
constexpr const char* kSaturatedGoldenRelPath = "/golden/curie_saturated.golden.json";

/// The bundled-fixture slice document, optionally on the sharded index —
/// the sharding contract pins the same golden at every shard count.
std::string curie_slice_document(ShardConfig shards, std::uint64_t* backfill_coalesced,
                                 std::uint64_t* sd_guests) {
  const PaperWorkload pw = trace_workload("curie", /*scale=*/0.5);
  EXPECT_GT(pw.workload.size(), 0u);
  EXPECT_EQ(pw.machine.nodes, 5040) << "Curie fixture must keep the full machine";

  JsonWriter json;
  json.begin_object();
  json.field("schema", "sdsched-golden-v1");
  json.field("grid", "curie fixture 50% slice: backfill + MAXSD 10");
  json.field("jobs", static_cast<std::uint64_t>(pw.workload.size()));
  json.key("cells");
  json.begin_array();

  const auto emit_cell = [&](const std::string& name, SimulationConfig cfg) {
    cfg.shards = shards;
    const SimulationReport report = Simulation(cfg, pw.workload).run();
    if (cfg.policy == PolicyKind::Backfill && backfill_coalesced != nullptr) {
      *backfill_coalesced = report.submits_coalesced;
    }
    if (cfg.policy == PolicyKind::SdPolicy && sd_guests != nullptr) {
      *sd_guests = report.summary.guests;
    }
    json.begin_object();
    json.field("name", name);
    json.key("summary");
    to_json(json, report.summary);
    json.field("records", static_cast<std::uint64_t>(report.records.size()));
    json.field("records_fnv1a", golden::records_digest(report.records));
    json.end_object();
  };

  emit_cell("curie/backfill", baseline_config(pw.machine));
  emit_cell("curie/MAXSD 10", sd_config(pw.machine, CutoffConfig::max_sd(10.0)));

  json.end_array();
  json.end_object();
  return json.str();
}

TEST(GoldenTrace, CurieFixtureSliceMatchesGolden) {
  const PaperWorkload pw = trace_workload("curie", /*scale=*/0.5);
  ASSERT_GT(pw.workload.size(), 0u);

  // The real-trace regime this slice exists for: same-second submit bursts.
  const WorkloadStats stats = characterize(pw.workload);
  ASSERT_GT(stats.same_time_submits, 0u)
      << "Curie fixture lost its submit bursts — regenerate data/traces";

  std::uint64_t backfill_coalesced = 0;
  std::uint64_t sd_guests = 0;
  const std::string document =
      curie_slice_document(ShardConfig{}, &backfill_coalesced, &sd_guests);

  // Coalescing must actually fire on the non-SD cell — that is the behaviour
  // this slice pins. (Counters are excluded from the golden document itself,
  // like the W1 grid, so legitimate pass-count refactors only have to keep
  // decisions identical.)
  EXPECT_GT(backfill_coalesced, 0u)
      << "no same-timestamp submits were coalesced on the backfill cell";
  EXPECT_GT(sd_guests, 0u) << "the SD cell no longer schedules any malleable guests";

  golden::expect_matches_golden(
      document, kGoldenRelPath,
      "Curie trace slice diverged from the committed golden. Per-job records "
      "and summaries must stay byte-identical across refactors; if this PR "
      "intends to change scheduling decisions, regenerate with "
      "SDSCHED_UPDATE_GOLDEN=1 and justify the diff.");
}

// 7 shards on 5040 nodes (79 bitmap words — uneven word split) with the
// parallel fan-out on: the full-machine burst path must reproduce the SAME
// golden byte for byte (docs/determinism.md "Ordered shard merge").
TEST(GoldenTrace, CurieFixtureSliceShardedMatchesSameGolden) {
  golden::expect_matches_golden(
      curie_slice_document(ShardConfig{7, /*parallel=*/true}, nullptr, nullptr),
      kGoldenRelPath,
      "sharded Curie slice diverged from the flat golden — the ordered shard "
      "merge changed a real-trace scheduling decision.");
}

// The over-subscribed variant: synthesize_soak() at offered load 1.4 on the
// full 5040-node machine — the saturated regime the guest budget and scan
// ledger exist for (the bundled fixture stays near load 1, so this slice is
// the only golden where the wait queue grows without bound). Unlike the
// other goldens this document pins the SD scan counters too: the ledger's
// skips are part of the contract here (a skip-condition change that alters
// how often the proof applies must show up as a reviewed golden diff), and
// the tight-budget cell pins the deferral schedule, which *is*
// decision-visible (budget 8 is deliberately below this slice's per-pass
// shrinkable-guest count; production-like budgets of 64+ are
// decision-identical to unbounded here, which the parity suite covers).
std::string curie_saturated_document(ShardConfig shards, std::uint64_t* unbounded_rescans_out,
                                     std::uint64_t* unbounded_deferrals_out,
                                     std::uint64_t* budgeted_deferrals_out) {
  const TraceInfo* info = find_trace("curie");
  EXPECT_NE(info, nullptr);
  const Workload workload =
      synthesize_soak(*info, /*n_jobs=*/800, /*seed=*/0, /*offered_load=*/1.4);
  EXPECT_EQ(workload.size(), 800u);

  MachineConfig machine;
  machine.nodes = info->nodes;
  machine.node = NodeConfig{info->sockets, info->cores_per_node / info->sockets};

  JsonWriter json;
  json.begin_object();
  json.field("schema", "sdsched-golden-v1");
  json.field("grid", "curie saturated synthesis (load 1.4): DynAVGSD unbounded + budget 8");
  json.field("jobs", static_cast<std::uint64_t>(workload.size()));
  json.key("cells");
  json.begin_array();

  std::uint64_t unbounded_rescans = 0;
  std::uint64_t unbounded_deferrals = 0;
  std::uint64_t budgeted_deferrals = 0;
  const auto emit_cell = [&](const std::string& name, int guest_budget) {
    SimulationConfig cfg = sd_config(machine, CutoffConfig::dynamic_avg());
    cfg.sd.scan.guest_budget = guest_budget;
    cfg.shards = shards;
    const SimulationReport report = Simulation(cfg, workload).run();
    if (guest_budget == 0) {
      unbounded_rescans = report.sd_rescans_avoided;
      unbounded_deferrals = report.sd_budget_deferrals;
    } else {
      budgeted_deferrals = report.sd_budget_deferrals;
    }
    json.begin_object();
    json.field("name", name);
    json.key("summary");
    to_json(json, report.summary);
    json.field("records", static_cast<std::uint64_t>(report.records.size()));
    json.field("records_fnv1a", golden::records_digest(report.records));
    json.field("sd_estimate_rejections", report.sd_estimate_rejections);
    json.field("sd_selection_failures", report.sd_selection_failures);
    json.field("sd_rescans_avoided", report.sd_rescans_avoided);
    json.field("sd_budget_deferrals", report.sd_budget_deferrals);
    json.end_object();
  };

  emit_cell("curie-sat/DynAVGSD", /*guest_budget=*/0);
  emit_cell("curie-sat/DynAVGSD budget8", /*guest_budget=*/8);

  json.end_array();
  json.end_object();

  if (unbounded_rescans_out != nullptr) *unbounded_rescans_out = unbounded_rescans;
  if (unbounded_deferrals_out != nullptr) *unbounded_deferrals_out = unbounded_deferrals;
  if (budgeted_deferrals_out != nullptr) *budgeted_deferrals_out = budgeted_deferrals;
  return json.str();
}

TEST(GoldenTrace, CurieSaturatedSliceMatchesGolden) {
  std::uint64_t unbounded_rescans = 0;
  std::uint64_t unbounded_deferrals = 0;
  std::uint64_t budgeted_deferrals = 0;
  const std::string document = curie_saturated_document(
      ShardConfig{}, &unbounded_rescans, &unbounded_deferrals, &budgeted_deferrals);

  // The slice must actually exercise the saturated machinery it pins.
  EXPECT_GT(unbounded_rescans, 0u)
      << "saturated slice produced no ledger skips — the regime it pins is gone";
  EXPECT_EQ(unbounded_deferrals, 0u) << "unbounded cell cannot defer guests";
  EXPECT_GT(budgeted_deferrals, 0u)
      << "tight-budget cell never hit the cap — the deferral schedule it pins is gone";

  golden::expect_matches_golden(
      document, kSaturatedGoldenRelPath,
      "Curie saturated slice diverged from the committed golden. This slice "
      "pins SD decisions AND scan counters under offered load > 1; if this PR "
      "intends to change the budget/ledger behaviour, regenerate with "
      "SDSCHED_UPDATE_GOLDEN=1 and justify the diff.");
}

// The saturated regime (budget + scan ledger + sharded scans all active at
// once) must pin the SAME golden — decisions AND skip counters — at a
// nontrivial shard count with the parallel fan-out on.
TEST(GoldenTrace, CurieSaturatedSliceShardedMatchesSameGolden) {
  golden::expect_matches_golden(
      curie_saturated_document(ShardConfig{7, /*parallel=*/true}, nullptr, nullptr,
                               nullptr),
      kSaturatedGoldenRelPath,
      "sharded saturated slice diverged from the flat golden — the ordered "
      "shard merge changed a decision or a scan counter under saturation.");
}

}  // namespace
}  // namespace sdsched
