// End-to-end SD-Policy behaviour: hand-computed malleable schedules,
// shrink/expand timing under both runtime models, and the mate-early-exit
// path of §4.3.
#include <gtest/gtest.h>

#include "api/simulation.h"

namespace sdsched {
namespace {

MachineConfig machine_of(int nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.node = NodeConfig{2, 24};
  return config;
}

JobSpec job_of(SimTime submit, SimTime runtime, SimTime req, int nodes_requested,
               MalleabilityClass cls = MalleabilityClass::Malleable) {
  JobSpec spec;
  spec.submit = submit;
  spec.base_runtime = runtime;
  spec.req_time = req;
  spec.req_cpus = nodes_requested * 48;
  spec.malleability = cls;
  return spec;
}

SimulationConfig sd(int nodes, RuntimeModelKind model = RuntimeModelKind::WorstCase) {
  SimulationConfig config;
  config.machine = machine_of(nodes);
  config.policy = PolicyKind::SdPolicy;
  config.execution_model = model;
  // Hand-computed scenarios run near-empty machines where the dynamic
  // cut-off would (correctly) refuse everything; pin it open.
  config.sd.cutoff = CutoffConfig::infinite();
  return config;
}

TEST(SdEndToEnd, GuestSchedulesImmediatelyAndDoubles) {
  // Mate: 2 nodes for 10000s. Guest: 2 nodes, 100s, arrives at 10.
  // Statically it would wait until 10000. SD starts it at 10 with half
  // cores; worst-case execution doubles it: end = 10 + 200.
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 2));
  SimulationReport report = Simulation(sd(2), w).run();
  ASSERT_EQ(report.records.size(), 2u);
  const JobRecord& guest = report.records[0];  // guest finishes first
  EXPECT_EQ(guest.id, 1u);
  EXPECT_TRUE(guest.was_guest);
  EXPECT_EQ(guest.start, 10);
  EXPECT_EQ(guest.end, 210);
  EXPECT_EQ(report.malleable_starts, 1u);
}

TEST(SdEndToEnd, MateStretchedByExactlyLostProgress) {
  // Mate (10000s) shares [10, 210): loses half rate for 200s -> +100s.
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 2));
  SimulationReport report = Simulation(sd(2), w).run();
  const JobRecord& mate = report.records[1];
  EXPECT_EQ(mate.id, 0u);
  EXPECT_TRUE(mate.was_mate);
  EXPECT_EQ(mate.end, 10100);
}

TEST(SdEndToEnd, IdealModelSameStoryHere) {
  // With a uniform split ideal == worst-case (both 0.5): same schedule.
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 2));
  SimulationReport report = Simulation(sd(2, RuntimeModelKind::Ideal), w).run();
  EXPECT_EQ(report.records[0].end, 210);
  EXPECT_EQ(report.records[1].end, 10100);
}

TEST(SdEndToEnd, MateEarlyExitExpandsGuest) {
  // Mate requested 10000 but really runs 300s. Guest (2n, 400s) shares from
  // t=10 at half speed. Mate ends at 310 (with stretch: lost 150 by then ->
  // ends ~460). After the mate leaves, the guest expands to full nodes.
  // Under the worst-case model the guest sees min over nodes; both nodes
  // freed together, so it genuinely accelerates.
  Workload w;
  w.add(job_of(0, 300, 10000, 2));
  w.add(job_of(10, 400, 400, 2));
  SimulationReport report = Simulation(sd(2), w).run();
  ASSERT_EQ(report.records.size(), 2u);
  const JobRecord& mate = report.records[0];
  const JobRecord& guest = report.records[1];
  EXPECT_EQ(mate.id, 0u);
  // Mate: 10s full + shrunk at 0.5 until work done: 300 = 10 + 0.5*t ->
  // t = 580 -> end at 590.
  EXPECT_EQ(mate.end, 590);
  // Guest: [10,590) at 0.5 -> 290 work done; 110 left at full -> 700.
  EXPECT_TRUE(guest.was_guest);
  EXPECT_EQ(guest.end, 700);
  EXPECT_GT(report.drom_expand_ops, 0u);
}

TEST(SdEndToEnd, SlowdownDecisionRespectsEstimates) {
  // Blocking job requested 400s: guest (100s) would wait ~390 statically
  // (static_end 500) but pay only +100 of increase (mall_end 210), and it
  // fits inside the mate's allocation -> malleable. With a 90s blocker,
  // waiting is cheaper (static_end 190 < mall_end 210) and SD must refuse.
  {
    Workload w;
    w.add(job_of(0, 150, 400, 2));
    w.add(job_of(10, 100, 100, 2));
    SimulationReport report = Simulation(sd(2), w).run();
    EXPECT_EQ(report.malleable_starts, 1u);
  }
  {
    Workload w;
    w.add(job_of(0, 90, 90, 2));  // static wait only ~80s
    w.add(job_of(10, 100, 100, 2));
    SimulationReport report = Simulation(sd(2), w).run();
    EXPECT_EQ(report.malleable_starts, 0u);
    EXPECT_EQ(report.records[1].start, 90);  // waited for the static slot
  }
}

TEST(SdEndToEnd, TwoMatesServeOneBigGuest) {
  // Two 1-node mates, guest needs 2 nodes: plan uses both (m=2).
  Workload w;
  w.add(job_of(0, 10000, 10000, 1));
  w.add(job_of(0, 10000, 10000, 1));
  w.add(job_of(10, 100, 100, 2));
  SimulationReport report = Simulation(sd(2), w).run();
  const JobRecord& guest = report.records[0];
  EXPECT_TRUE(guest.was_guest);
  EXPECT_EQ(guest.start, 10);
  std::size_t mates = 0;
  for (const auto& record : report.records) {
    if (record.was_mate) ++mates;
  }
  EXPECT_EQ(mates, 2u);
}

TEST(SdEndToEnd, RigidWorkloadDegeneratesToBackfill) {
  Workload w;
  for (int i = 0; i < 20; ++i) {
    w.add(job_of(i * 5, 100 + i, 150 + i, 1 + i % 3, MalleabilityClass::Rigid));
  }
  SimulationConfig sd_cfg = sd(4);
  SimulationConfig bf_cfg = sd_cfg;
  bf_cfg.policy = PolicyKind::Backfill;
  SimulationReport a = Simulation(sd_cfg, w).run();
  SimulationReport b = Simulation(bf_cfg, w).run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].end, b.records[i].end);
  }
  EXPECT_EQ(a.malleable_starts, 0u);
}

TEST(SdEndToEnd, GuestCompletionRestoresMateSpeed) {
  // After the guest ends at 210, the mate expands back: verify via DROM
  // expand ops and the exact mate end (10100, not later).
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 2));
  SimulationReport report = Simulation(sd(2), w).run();
  EXPECT_GE(report.drom_expand_ops, 2u);  // one per node
  EXPECT_EQ(report.records[1].end, 10100);
}

TEST(SdEndToEnd, ChainedGuestsOverLifetime) {
  // One long mate hosts a guest; when it completes, another can follow.
  Workload w;
  w.add(job_of(0, 100000, 100000, 2));
  w.add(job_of(10, 100, 100, 2));
  w.add(job_of(5000, 100, 100, 2));
  SimulationReport report = Simulation(sd(2), w).run();
  EXPECT_EQ(report.malleable_starts, 2u);
  std::size_t guests = 0;
  for (const auto& record : report.records) {
    if (record.was_guest) ++guests;
  }
  EXPECT_EQ(guests, 2u);
}

TEST(SdEndToEnd, AppModelRealRunImprovesEnergy) {
  // Table-2 style mix on a small machine: SD should not increase energy
  // (the Fig. 9 claim, driven by utilization).
  Workload w;
  int profile = 0;
  for (int i = 0; i < 60; ++i) {
    JobSpec spec = job_of(i * 50, 400 + (i % 5) * 100, 900 + (i % 5) * 100, 1 + i % 2);
    spec.app_profile = profile;
    profile = (profile + 1) % 5;
    w.add(spec);
  }
  SimulationConfig sd_cfg = sd(3);
  sd_cfg.use_app_model = true;
  SimulationConfig bf_cfg = sd_cfg;
  bf_cfg.policy = PolicyKind::Backfill;
  SimulationReport a = Simulation(sd_cfg, w).run();
  SimulationReport b = Simulation(bf_cfg, w).run();
  EXPECT_LE(a.summary.makespan, static_cast<SimTime>(b.summary.makespan * 1.05));
  EXPECT_LE(a.summary.avg_slowdown, b.summary.avg_slowdown * 1.05);
}

}  // namespace
}  // namespace sdsched
