// End-to-end tests for the paper's optional features and future-work
// extensions: constraints/contiguity (§3.2.4), runtime prediction (§4.1 /
// future work #2) and adaptive SharingFactor (§3.3 / future work #1).
#include <gtest/gtest.h>

#include "api/simulation.h"
#include "workload/app_profiles.h"
#include "workload/cirne.h"

namespace sdsched {
namespace {

MachineConfig machine_of(int nodes) {
  MachineConfig config;
  config.nodes = nodes;
  config.node = NodeConfig{2, 24};
  return config;
}

JobSpec job_of(SimTime submit, SimTime runtime, SimTime req, int nodes_requested) {
  JobSpec spec;
  spec.submit = submit;
  spec.base_runtime = runtime;
  spec.req_time = req;
  spec.req_cpus = nodes_requested * 48;
  spec.malleability = MalleabilityClass::Malleable;
  return spec;
}

TEST(Extensions, ConstrainedJobWaitsForItsNodes) {
  // 4 nodes; nodes 2-3 are high-memory. A high-mem job must wait for node
  // 2-3 even while 0-1 sit free.
  MachineConfig machine = machine_of(4);
  machine.attribute_overrides = {{2, NodeAttributes{"x86_64", 384, "opa"}},
                                 {3, NodeAttributes{"x86_64", 384, "opa"}}};
  Workload w;
  JobSpec filler = job_of(0, 500, 500, 2);
  w.add(filler);  // takes nodes 0-1? No: lowest free = 0,1
  JobSpec highmem = job_of(10, 100, 100, 2);
  highmem.constraints.min_memory_gb = 256;
  w.add(highmem);

  SimulationConfig config;
  config.machine = machine;
  config.policy = PolicyKind::Backfill;
  SimulationReport report = Simulation(config, w).run();
  ASSERT_EQ(report.records.size(), 2u);
  // High-mem job starts immediately on nodes 2-3 (they are free).
  EXPECT_EQ(report.records[0].id, 1u);
  EXPECT_EQ(report.records[0].start, 10);
}

TEST(Extensions, ConstrainedJobBlockedByOccupiedClass) {
  // Same machine, but the high-mem nodes are taken first: the constrained
  // job waits despite free standard nodes.
  MachineConfig machine = machine_of(4);
  machine.attribute_overrides = {{0, NodeAttributes{"x86_64", 384, "opa"}},
                                 {1, NodeAttributes{"x86_64", 384, "opa"}}};
  Workload w;
  w.add(job_of(0, 500, 500, 2));  // lands on nodes 0-1 (lowest free)
  JobSpec highmem = job_of(10, 100, 100, 1);
  highmem.constraints.min_memory_gb = 256;
  highmem.malleability = MalleabilityClass::Rigid;
  w.add(highmem);

  SimulationConfig config;
  config.machine = machine;
  config.policy = PolicyKind::Backfill;
  SimulationReport report = Simulation(config, w).run();
  SimTime start_highmem = -1;
  for (const auto& r : report.records) {
    if (r.id == 1) start_highmem = r.start;
  }
  EXPECT_EQ(start_highmem, 500);  // waited for the high-mem class
}

TEST(Extensions, ImpossibleConstraintIsCancelled) {
  MachineConfig machine = machine_of(2);
  Workload w;
  JobSpec impossible = job_of(0, 100, 100, 1);
  impossible.constraints.required_arch = "sparc";
  w.add(impossible);
  w.add(job_of(5, 100, 100, 1));

  SimulationConfig config;
  config.machine = machine;
  config.policy = PolicyKind::Backfill;
  SimulationReport report = Simulation(config, w).run();
  EXPECT_EQ(report.cancelled_jobs, 1u);
  EXPECT_EQ(report.records.size(), 1u);  // the possible job still runs
}

TEST(Extensions, SdRespectsGuestConstraints) {
  // Mate runs on standard nodes; a high-mem malleable job must NOT be
  // co-scheduled onto them.
  MachineConfig machine = machine_of(2);
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  JobSpec highmem = job_of(10, 100, 100, 2);
  highmem.constraints.min_memory_gb = 256;
  w.add(highmem);

  SimulationConfig config;
  config.machine = machine;
  config.policy = PolicyKind::SdPolicy;
  config.sd.cutoff = CutoffConfig::infinite();
  SimulationReport report = Simulation(config, w).run();
  EXPECT_EQ(report.malleable_starts, 0u);
  EXPECT_EQ(report.cancelled_jobs, 1u);  // no high-mem nodes exist at all
}

TEST(Extensions, RuntimePredictionTightensBackfill) {
  // Users overestimate 10x; with prediction, reservations shrink toward
  // real durations, so average wait cannot get (much) worse and usually
  // improves on a congested trace.
  CirneConfig wl;
  wl.n_jobs = 150;
  wl.system_nodes = 8;
  wl.cores_per_node = 48;
  wl.max_job_nodes = 4;
  wl.target_load = 1.4;
  wl.seed = 42;
  const Workload workload = generate_cirne(wl);

  SimulationConfig plain;
  plain.machine = machine_of(8);
  plain.policy = PolicyKind::Backfill;
  SimulationConfig predicted = plain;
  predicted.use_runtime_prediction = true;

  SimulationReport a = Simulation(plain, workload).run();
  SimulationReport b = Simulation(predicted, workload).run();
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_LE(b.summary.avg_wait, a.summary.avg_wait * 1.10);
}

TEST(Extensions, RuntimePredictionWorksUnderSd) {
  CirneConfig wl;
  wl.n_jobs = 120;
  wl.system_nodes = 8;
  wl.cores_per_node = 48;
  wl.max_job_nodes = 4;
  wl.target_load = 1.3;
  wl.seed = 43;
  const Workload workload = generate_cirne(wl);

  SimulationConfig config;
  config.machine = machine_of(8);
  config.policy = PolicyKind::SdPolicy;
  config.use_runtime_prediction = true;
  SimulationReport report = Simulation(config, workload).run();
  EXPECT_EQ(report.records.size(), workload.size());
  for (const auto& record : report.records) {
    EXPECT_GE(record.slowdown(), 0.99);
  }
}

TEST(Extensions, AdaptiveSharingGivesComputeGuestsMoreCores) {
  // STREAM mate + PILS guest: with adaptive sharing the guest's share
  // exceeds the socket split, so it finishes sooner than under fixed 0.5.
  Workload w;
  JobSpec mate = job_of(0, 10000, 10000, 2);
  mate.app_profile = profile_index("STREAM");
  w.add(mate);
  JobSpec guest = job_of(10, 100, 100, 2);
  guest.app_profile = profile_index("PILS");
  w.add(guest);

  SimulationConfig fixed;
  fixed.machine = machine_of(2);
  fixed.policy = PolicyKind::SdPolicy;
  fixed.sd.cutoff = CutoffConfig::infinite();
  SimulationConfig adaptive = fixed;
  adaptive.sd.adaptive_sharing = true;

  SimulationReport rf = Simulation(fixed, w).run();
  SimulationReport ra = Simulation(adaptive, w).run();
  ASSERT_EQ(rf.malleable_starts, 1u);
  ASSERT_EQ(ra.malleable_starts, 1u);
  const SimTime fixed_end = rf.records[0].end;
  const SimTime adaptive_end = ra.records[0].end;
  EXPECT_LT(adaptive_end, fixed_end);
}

TEST(Extensions, ReconfigOverheadStretchesMates) {
  // Mate (2 nodes, 10000s) hosts a guest for 200s of wallclock. With zero
  // overhead the mate ends at 10100 (the lost half-rate progress). With a
  // 50s stall per transition: the shrink stall costs 50s at rate 0.5
  // (25 work) and the expand stall 50s at rate 1.0 (50 work), all repaid at
  // full speed -> +75s.
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 2));

  SimulationConfig config;
  config.machine = machine_of(2);
  config.policy = PolicyKind::SdPolicy;
  config.sd.cutoff = CutoffConfig::infinite();
  config.execution_model = RuntimeModelKind::WorstCase;

  SimulationReport zero = Simulation(config, w).run();
  config.reconfig_overhead = 50;
  SimulationReport costly = Simulation(config, w).run();

  ASSERT_EQ(zero.malleable_starts, 1u);
  ASSERT_EQ(costly.malleable_starts, 1u);
  const SimTime mate_end_zero = zero.records[1].end;
  const SimTime mate_end_costly = costly.records[1].end;
  EXPECT_EQ(mate_end_zero, 10100);
  EXPECT_EQ(mate_end_costly, 10100 + 75);
}

TEST(Extensions, ReconfigOverheadNeverAffectsStaticRuns) {
  Workload w;
  w.add(job_of(0, 500, 500, 2));
  w.add(job_of(10, 100, 100, 1));
  SimulationConfig config;
  config.machine = machine_of(4);
  config.policy = PolicyKind::Backfill;
  config.reconfig_overhead = 300;
  SimulationReport report = Simulation(config, w).run();
  for (const auto& record : report.records) {
    EXPECT_EQ(record.runtime(), record.base_runtime);
  }
}

TEST(Extensions, FreeNodePlansReduceMateImpact) {
  // 3-node machine: a 2-node mate runs, 1 node free. A 3-node guest can
  // only start malleably when free-node plans are enabled (no mate
  // combination sums to 3).
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 3));

  SimulationConfig without;
  without.machine = machine_of(3);
  without.policy = PolicyKind::SdPolicy;
  without.sd.cutoff = CutoffConfig::infinite();
  SimulationConfig with = without;
  with.sd.include_free_nodes = true;

  SimulationReport off = Simulation(without, w).run();
  SimulationReport on = Simulation(with, w).run();
  EXPECT_EQ(off.malleable_starts, 0u);
  EXPECT_EQ(on.malleable_starts, 1u);
  // The free-node share runs at full speed; only the mate-node share is
  // halved, so the guest ends strictly earlier than a full-shrink start
  // (which would double the runtime to 210) — under the ideal model.
  SimulationConfig ideal = with;
  ideal.execution_model = RuntimeModelKind::Ideal;
  SimulationReport on_ideal = Simulation(ideal, w).run();
  const JobRecord& guest = on_ideal.records[0];
  ASSERT_TRUE(guest.was_guest);
  EXPECT_LT(guest.end, 10 + 200);
}

TEST(Extensions, AdaptiveSharingNoopWithoutProfiles) {
  Workload w;
  w.add(job_of(0, 10000, 10000, 2));
  w.add(job_of(10, 100, 100, 2));
  SimulationConfig fixed;
  fixed.machine = machine_of(2);
  fixed.policy = PolicyKind::SdPolicy;
  fixed.sd.cutoff = CutoffConfig::infinite();
  SimulationConfig adaptive = fixed;
  adaptive.sd.adaptive_sharing = true;

  SimulationReport rf = Simulation(fixed, w).run();
  SimulationReport ra = Simulation(adaptive, w).run();
  ASSERT_EQ(rf.records.size(), ra.records.size());
  for (std::size_t i = 0; i < rf.records.size(); ++i) {
    EXPECT_EQ(rf.records[i].end, ra.records[i].end);
  }
}

}  // namespace
}  // namespace sdsched
