// Golden-parity harness (refactor safety net).
//
// Runs the Fig. 1-3 W1 default-scale grid (static-backfill baseline plus
// every MAXSD cut-off variant, scale 0.1, seed 0) and compares a canonical
// document — per-cell metric summaries plus a digest over every per-job
// record — against a golden file generated *before* the incremental-state
// refactor. Scheduling-decision parity is the contract: event and pass
// counts may change across refactors (they are deliberately excluded here
// and reported separately in the bench JSON), but per-job records and
// summaries must stay byte-identical. The regenerate protocol
// (SDSCHED_UPDATE_GOLDEN=1) is documented in golden_common.h; the real-trace
// counterpart of this test lives in test_golden_trace.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "api/experiment.h"
#include "golden_common.h"
#include "metrics/summary.h"
#include "util/json.h"

namespace sdsched {
namespace {

constexpr const char* kGoldenRelPath = "/golden/w1_grid.golden.json";

/// The canonical parity document for the W1 default grid. `shards`
/// re-runs the identical grid on the sharded index — the document must
/// not change (the golden is pinned at every shard count).
std::string run_w1_grid_document(ShardConfig shards = {}) {
  const PaperWorkload pw = paper_workload(1, /*scale=*/0.1, /*seed=*/0);

  JsonWriter json;
  json.begin_object();
  json.field("schema", "sdsched-golden-v1");
  json.field("grid", "fig1-3 W1 default scale");
  json.key("cells");
  json.begin_array();

  const auto emit_cell = [&json, &pw, shards](const std::string& name,
                                              SimulationConfig cfg) {
    cfg.shards = shards;
    const SimulationReport report = Simulation(cfg, pw.workload).run();
    json.begin_object();
    json.field("name", name);
    json.key("summary");
    to_json(json, report.summary);
    json.field("records", static_cast<std::uint64_t>(report.records.size()));
    json.field("records_fnv1a", golden::records_digest(report.records));
    json.end_object();
  };

  emit_cell(pw.label + "/baseline", baseline_config(pw.machine));
  for (const auto& variant : maxsd_sweep()) {
    emit_cell(pw.label + "/" + variant.label, sd_config(pw.machine, variant.cutoff));
  }

  json.end_array();
  json.end_object();
  return json.str();
}

TEST(GoldenParity, W1DefaultGridMatchesPreRefactorGolden) {
  golden::expect_matches_golden(
      run_w1_grid_document(), kGoldenRelPath,
      "W1 grid diverged from the pre-refactor golden. Per-job records and "
      "metric summaries must stay byte-identical across scheduler-state "
      "refactors; if this PR intends to change scheduling decisions, "
      "regenerate with SDSCHED_UPDATE_GOLDEN=1 and justify the diff.");
}

// The sharded index is a pure work-splitting transform: the SAME golden
// file must hold at every shard count, parallel fan-out included
// (docs/determinism.md "Ordered shard merge").
TEST(GoldenParity, W1GridShardedMatchesSameGolden) {
  for (const int shards : {4, 64}) {
    golden::expect_matches_golden(
        run_w1_grid_document(ShardConfig{shards, /*parallel=*/true}), kGoldenRelPath,
        "sharded W1 grid diverged from the flat golden — the ordered shard "
        "merge changed a scheduling decision, which the sharding contract "
        "forbids at any shard count.");
  }
}

}  // namespace
}  // namespace sdsched
