// Golden-parity harness (refactor safety net).
//
// Runs the Fig. 1-3 W1 default-scale grid (static-backfill baseline plus
// every MAXSD cut-off variant, scale 0.1, seed 0) and compares a canonical
// document — per-cell metric summaries plus a digest over every per-job
// record — against a golden file generated *before* the incremental-state
// refactor. Scheduling-decision parity is the contract: event and pass
// counts may change across refactors (they are deliberately excluded here
// and reported separately in the bench JSON), but per-job records and
// summaries must stay byte-identical.
//
// The golden is never regenerated silently. To regenerate intentionally
// (only when a PR *means* to change scheduling decisions):
//
//   SDSCHED_UPDATE_GOLDEN=1 ./tests/integration/sdsched_test_integration
//       (optionally with --gtest_filter='GoldenParity.*')
//
// and commit the refreshed tests/golden/w1_grid.golden.json with an
// explanation of why decisions changed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "api/experiment.h"
#include "metrics/summary.h"
#include "util/json.h"

namespace sdsched {
namespace {

constexpr const char* kGoldenRelPath = "/golden/w1_grid.golden.json";

std::string golden_path() {
#ifdef SDSCHED_TESTS_DIR
  return std::string(SDSCHED_TESTS_DIR) + kGoldenRelPath;
#else
  return std::string("tests") + kGoldenRelPath;
#endif
}

/// FNV-1a 64 over a textual field-wise serialization of every job record;
/// any change to any field of any record changes the digest.
std::uint64_t records_digest(const std::vector<JobRecord>& records) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::int64_t v) {
    char buf[32];
    const int n = std::snprintf(buf, sizeof buf, "%lld|", static_cast<long long>(v));
    for (int i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buf[i]);
      hash *= 1099511628211ULL;
    }
  };
  for (const auto& r : records) {
    mix(r.id);
    mix(r.submit);
    mix(r.start);
    mix(r.end);
    mix(r.req_time);
    mix(r.base_runtime);
    mix(r.req_cpus);
    mix(r.req_nodes);
    mix(r.was_guest ? 1 : 0);
    mix(r.was_mate ? 1 : 0);
    mix(r.reconfigurations);
  }
  return hash;
}

/// The canonical parity document for the W1 default grid.
std::string run_w1_grid_document() {
  const PaperWorkload pw = paper_workload(1, /*scale=*/0.1, /*seed=*/0);

  JsonWriter json;
  json.begin_object();
  json.field("schema", "sdsched-golden-v1");
  json.field("grid", "fig1-3 W1 default scale");
  json.key("cells");
  json.begin_array();

  const auto emit_cell = [&json, &pw](const std::string& name,
                                      const SimulationConfig& cfg) {
    const SimulationReport report = Simulation(cfg, pw.workload).run();
    json.begin_object();
    json.field("name", name);
    json.key("summary");
    to_json(json, report.summary);
    json.field("records", static_cast<std::uint64_t>(report.records.size()));
    json.field("records_fnv1a", records_digest(report.records));
    json.end_object();
  };

  emit_cell(pw.label + "/baseline", baseline_config(pw.machine));
  for (const auto& variant : maxsd_sweep()) {
    emit_cell(pw.label + "/" + variant.label, sd_config(pw.machine, variant.cutoff));
  }

  json.end_array();
  json.end_object();
  return json.str();
}

TEST(GoldenParity, W1DefaultGridMatchesPreRefactorGolden) {
  const std::string document = run_w1_grid_document();
  const std::string path = golden_path();

  if (const char* update = std::getenv("SDSCHED_UPDATE_GOLDEN");
      update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << document;
    out.close();
    GTEST_SKIP() << "golden intentionally regenerated at " << path
                 << " — review and commit the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "golden file missing: " << path
      << "\nGenerate it intentionally with SDSCHED_UPDATE_GOLDEN=1 and commit it.";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(document, golden.str())
      << "W1 grid diverged from the pre-refactor golden. Per-job records and "
         "metric summaries must stay byte-identical across scheduler-state "
         "refactors; if this PR intends to change scheduling decisions, "
         "regenerate with SDSCHED_UPDATE_GOLDEN=1 and justify the diff.";
}

}  // namespace
}  // namespace sdsched
