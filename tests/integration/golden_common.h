// Shared plumbing for the golden-parity harnesses (W1 grid, Curie trace
// slice): the per-job-record digest and the compare-or-regenerate protocol.
//
// Goldens are reviewed artifacts committed under tests/golden/, never
// regenerated silently. To regenerate intentionally (only when a PR *means*
// to change scheduling decisions), run the test binary with
// SDSCHED_UPDATE_GOLDEN=1 and commit the refreshed file with an explanation.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace sdsched::golden {

/// Resolve a "/golden/<name>.golden.json" path against the source tree.
inline std::string golden_path(const char* rel_path) {
#ifdef SDSCHED_TESTS_DIR
  return std::string(SDSCHED_TESTS_DIR) + rel_path;
#else
  return std::string("tests") + rel_path;
#endif
}

/// FNV-1a 64 over a textual field-wise serialization of every job record;
/// any change to any field of any record changes the digest.
inline std::uint64_t records_digest(const std::vector<JobRecord>& records) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::int64_t v) {
    char buf[32];
    const int n = std::snprintf(buf, sizeof buf, "%lld|", static_cast<long long>(v));
    for (int i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buf[i]);
      hash *= 1099511628211ULL;
    }
  };
  for (const auto& r : records) {
    mix(r.id);
    mix(r.submit);
    mix(r.start);
    mix(r.end);
    mix(r.req_time);
    mix(r.base_runtime);
    mix(r.req_cpus);
    mix(r.req_nodes);
    mix(r.was_guest ? 1 : 0);
    mix(r.was_mate ? 1 : 0);
    mix(r.reconfigurations);
  }
  return hash;
}

/// The compare-or-regenerate protocol. With SDSCHED_UPDATE_GOLDEN set the
/// golden is rewritten and the test skipped (review and commit the diff);
/// otherwise `document` must match the committed golden byte-for-byte.
/// `diverged_hint` is appended to the mismatch message.
inline void expect_matches_golden(const std::string& document, const char* rel_path,
                                  const char* diverged_hint) {
  const std::string path = golden_path(rel_path);

  if (const char* update = std::getenv("SDSCHED_UPDATE_GOLDEN");
      update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << document;
    out.close();
    GTEST_SKIP() << "golden intentionally regenerated at " << path
                 << " — review and commit the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "golden file missing: " << path
      << "\nGenerate it intentionally with SDSCHED_UPDATE_GOLDEN=1 and commit it.";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(document, golden.str()) << diverged_hint;
}

}  // namespace sdsched::golden
