// Reference-model property tests: the optimized implementations are checked
// against brute-force oracles under randomized inputs.
//
//  * ReservationProfile vs a naive per-second availability array;
//  * MateSelector's branch-and-bound vs exhaustive combination search.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "core/mate_selector.h"
#include "drom/node_manager.h"
#include "sched/reservation.h"
#include "util/rng.h"

namespace sdsched {
namespace {

// ---------------------------------------------------------------------------
// ReservationProfile oracle
// ---------------------------------------------------------------------------

/// Naive availability model over a bounded horizon.
class NaiveProfile {
 public:
  NaiveProfile(int capacity, SimTime horizon)
      : capacity_(capacity), free_(static_cast<std::size_t>(horizon), capacity) {}

  void reserve(SimTime start, SimTime end, int nodes) {
    for (SimTime t = start; t < std::min<SimTime>(end, horizon()); ++t) free_[t] -= nodes;
  }
  void release(SimTime start, SimTime end, int nodes) {
    for (SimTime t = start; t < std::min<SimTime>(end, horizon()); ++t) free_[t] += nodes;
  }
  [[nodiscard]] int available_at(SimTime t) const {
    return t < horizon() ? free_[t] : capacity_;
  }
  [[nodiscard]] SimTime earliest_start(int nodes, SimTime duration, SimTime not_before) const {
    for (SimTime start = not_before; start < horizon(); ++start) {
      bool ok = true;
      for (SimTime t = start; t < start + duration && ok; ++t) {
        if (available_at(t) < nodes) ok = false;
      }
      if (ok) return start;
    }
    return horizon();
  }

 private:
  [[nodiscard]] SimTime horizon() const { return static_cast<SimTime>(free_.size()); }
  int capacity_;
  std::vector<int> free_;
};

class ReservationOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReservationOracle, MatchesNaiveModelUnderRandomOps) {
  constexpr int kCapacity = 12;
  constexpr SimTime kHorizon = 600;
  Rng rng(GetParam());
  ReservationProfile profile(kCapacity);
  NaiveProfile naive(kCapacity, kHorizon);

  // Random reservations that never drive availability negative: emulate the
  // real usage pattern (reserve within what earliest_start reported free).
  for (int op = 0; op < 60; ++op) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 4));
    const auto duration = static_cast<SimTime>(rng.uniform_int(5, 60));
    const auto not_before = static_cast<SimTime>(rng.uniform_int(0, 200));
    const SimTime start = profile.earliest_start(nodes, duration, not_before);
    ASSERT_NE(start, ReservationProfile::kNever);
    ASSERT_EQ(start, naive.earliest_start(nodes, duration, not_before))
        << "op " << op << " nodes " << nodes << " dur " << duration << " nb " << not_before;
    if (start + duration < kHorizon) {
      profile.reserve(start, start + duration, nodes);
      naive.reserve(start, start + duration, nodes);
    }
  }

  // Spot-check availability pointwise.
  for (SimTime t = 0; t < 300; t += 7) {
    ASSERT_EQ(profile.available_at(t), naive.available_at(t)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationOracle,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// MateSelector oracle
// ---------------------------------------------------------------------------

struct SelectorWorld {
  explicit SelectorWorld(int nodes)
      : machine(make_machine(nodes)), mgr(machine, jobs, drom) {}

  static MachineConfig make_machine(int nodes) {
    MachineConfig config;
    config.nodes = nodes;
    config.node = NodeConfig{2, 24};
    return config;
  }

  JobId run_job(int node_count, SimTime submit, SimTime start, SimTime req) {
    JobSpec spec;
    spec.submit = submit;
    spec.req_time = req;
    spec.base_runtime = req;
    spec.req_cpus = node_count * 48;
    spec.req_nodes = node_count;
    const JobId id = jobs.add(spec);
    Job& job = jobs.at(id);
    job.state = JobState::Running;
    job.start_time = start;
    job.predicted_end = start + req;
    mgr.start_static(start, id, *machine.find_free_nodes(node_count));
    return id;
  }

  Machine machine;
  JobRegistry jobs;
  DromRegistry drom;
  NodeManager mgr;
};

/// Exhaustive minimum-PI search (m <= 2) with the same penalty math: mate
/// penalty = (wait + (1-sf)*D + req)/req where D = req_guest / sf, for
/// full-node uniform mates (the world this test constructs).
double brute_force_best_pi(const SelectorWorld& world, const Job& guest, SimTime now,
                           double sharing_factor) {
  const auto d = static_cast<double>(guest.spec.req_time) / sharing_factor;
  const SimTime mall_end = now + static_cast<SimTime>(std::ceil(d));
  std::vector<const Job*> mates;
  for (const auto& job : world.jobs) {
    if (job.running() && !job.started_as_guest && job.guests.empty() &&
        job.spec.req_nodes <= guest.spec.req_nodes && job.predicted_end >= mall_end) {
      mates.push_back(&job);
    }
  }
  const auto penalty = [&](const Job& mate) {
    const auto req = static_cast<double>(mate.spec.req_time);
    const double increase = (1.0 - sharing_factor) * d;
    return (static_cast<double>(mate.wait_time(now)) + std::ceil(increase) + req) / req;
  };
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < mates.size(); ++i) {
    if (mates[i]->spec.req_nodes == guest.spec.req_nodes) {
      best = std::min(best, penalty(*mates[i]));
    }
    for (std::size_t j = i + 1; j < mates.size(); ++j) {
      if (mates[i]->spec.req_nodes + mates[j]->spec.req_nodes == guest.spec.req_nodes) {
        best = std::min(best, penalty(*mates[i]) + penalty(*mates[j]));
      }
    }
  }
  return best;
}

class SelectorOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectorOracle, BranchAndBoundMatchesBruteForce) {
  Rng rng(GetParam());
  SelectorWorld world(24);

  // Random running population: 6-10 jobs of 1-3 nodes with varied waits.
  const int population = static_cast<int>(rng.uniform_int(6, 10));
  for (int i = 0; i < population; ++i) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 3));
    const auto submit = static_cast<SimTime>(rng.uniform_int(0, 500));
    const auto start = submit + static_cast<SimTime>(rng.uniform_int(0, 2000));
    const auto req = static_cast<SimTime>(rng.uniform_int(50000, 200000));
    if (world.machine.free_node_count() >= nodes) {
      world.run_job(nodes, submit, start, req);
    }
  }

  JobSpec guest_spec;
  guest_spec.req_nodes = static_cast<int>(rng.uniform_int(1, 4));
  guest_spec.req_cpus = guest_spec.req_nodes * 48;
  guest_spec.req_time = static_cast<SimTime>(rng.uniform_int(100, 2000));
  guest_spec.base_runtime = guest_spec.req_time;
  guest_spec.submit = 2600;
  const JobId guest_id = world.jobs.add(guest_spec);
  const Job& guest = world.jobs.at(guest_id);

  SdConfig sd;
  sd.cutoff = CutoffConfig::infinite();
  MateSelector selector(world.machine, world.jobs, sd);
  const SimTime now = 2600;
  const auto plan =
      selector.select(guest, now, std::numeric_limits<double>::infinity());
  const double brute = brute_force_best_pi(world, guest, now, sd.sharing_factor);

  if (std::isinf(brute)) {
    EXPECT_FALSE(plan.has_value());
  } else {
    ASSERT_TRUE(plan.has_value());
    EXPECT_NEAR(plan->performance_impact, brute, brute * 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorOracle,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 43, 59, 71, 97));

// ---------------------------------------------------------------------------
// NodeManager conservation under random churn
// ---------------------------------------------------------------------------

TEST(NodeManagerChurn, NoCoreLeaksAcrossRandomStartsAndFinishes) {
  Rng rng(1234);
  SelectorWorld world(16);
  SdConfig sd;
  sd.cutoff = CutoffConfig::infinite();
  MateSelector selector(world.machine, world.jobs, sd);

  std::vector<JobId> running;
  SimTime now = 0;
  for (int step = 0; step < 200; ++step) {
    now += rng.uniform_int(1, 100);
    const int action = static_cast<int>(rng.uniform_int(0, 2));
    if (action <= 1) {
      // Try to start a job: statically if room, else as a guest.
      const int nodes = static_cast<int>(rng.uniform_int(1, 3));
      if (world.machine.free_node_count() >= nodes) {
        running.push_back(world.run_job(nodes, now, now, rng.uniform_int(5000, 50000)));
      } else {
        JobSpec spec;
        spec.req_nodes = nodes;
        spec.req_cpus = nodes * 48;
        spec.req_time = rng.uniform_int(100, 1000);
        spec.base_runtime = spec.req_time;
        spec.submit = now;
        const JobId id = world.jobs.add(spec);
        const auto plan = selector.select(world.jobs.at(id), now,
                                          std::numeric_limits<double>::infinity());
        if (plan) {
          Job& guest = world.jobs.at(id);
          guest.state = JobState::Running;
          guest.start_time = now;
          guest.predicted_end = now + plan->guest_duration;
          for (std::size_t i = 0; i < plan->mates.size(); ++i) {
            Job& mate = world.jobs.at(plan->mates[i]);
            mate.predicted_end += plan->mate_increases[i];
          }
          world.mgr.start_guest(now, id, plan->nodes);
          running.push_back(id);
        }
      }
    } else if (!running.empty()) {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(running.size()) - 1));
      const JobId id = running[victim];
      running.erase(running.begin() + victim);
      world.jobs.at(id).state = JobState::Completed;
      world.jobs.at(id).end_time = now;
      world.mgr.finish_job(now, id);
    }

    // Invariants after every step.
    int share_total = 0;
    for (const auto& job : world.jobs) {
      for (const auto& share : job.shares) {
        ASSERT_GE(share.cpus, 1);
        const auto occ = world.machine.node(share.node).occupant(job.spec.id);
        ASSERT_TRUE(occ.has_value()) << "job/machine share mismatch";
        ASSERT_EQ(occ->cpus, share.cpus);
        share_total += share.cpus;
      }
    }
    ASSERT_EQ(share_total, world.machine.busy_cores());
    for (int n = 0; n < world.machine.node_count(); ++n) {
      ASSERT_LE(world.machine.node(n).used_cores(), world.machine.node(n).total_cores());
    }
  }

  // Drain everything; the machine must come back empty.
  for (const JobId id : running) {
    world.jobs.at(id).state = JobState::Completed;
    world.mgr.finish_job(now + 1, id);
  }
  EXPECT_EQ(world.machine.busy_cores(), 0);
  EXPECT_EQ(world.machine.free_node_count(), 16);
}

}  // namespace
}  // namespace sdsched
