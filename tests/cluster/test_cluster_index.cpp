// Property test: the event-driven ClusterStateIndex must agree with a
// brute-force node scan after arbitrary start/guest/finish/reconfigure
// sequences driven through the same NodeManager the kernel uses.
#include "cluster/cluster_state_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "drom/node_manager.h"

namespace sdsched {
namespace {

struct Cluster {
  Cluster() {
    MachineConfig mc;
    mc.nodes = 12;
    mc.node = NodeConfig{2, 4};  // 8 cores per node keeps plans interesting
    NodeAttributes highmem;
    highmem.memory_gb = 384;
    for (int id = 8; id < 12; ++id) mc.attribute_overrides.emplace_back(id, highmem);
    machine.emplace(mc);
    index.emplace(*machine, jobs);
  }

  JobId add_running(SimTime now, int req_nodes, SimTime runtime) {
    JobSpec spec;
    spec.submit = now;
    spec.req_cpus = req_nodes * machine->cores_per_node();
    spec.req_nodes = req_nodes;
    spec.req_time = runtime;
    spec.base_runtime = runtime;
    const JobId id = jobs.add(spec);
    Job& job = jobs.at(id);
    job.state = JobState::Running;
    job.start_time = now;
    job.predicted_end = now + runtime;
    return id;
  }

  JobRegistry jobs;
  DromRegistry drom;
  std::optional<Machine> machine;
  std::optional<ClusterStateIndex> index;
  std::vector<JobId> running;
};

/// The historical full-scan profile groups, for busy_groups comparison.
std::map<SimTime, int> scan_groups(const Machine& machine, const JobRegistry& jobs,
                                   SimTime now) {
  std::map<SimTime, int> frees;
  for (int id = 0; id < machine.node_count(); ++id) {
    const Node& node = machine.node(id);
    if (node.empty()) continue;
    SimTime free_at = now + 1;
    for (const auto& occ : node.occupants()) {
      free_at = std::max(free_at, jobs.at(occ.job).predicted_end);
    }
    ++frees[free_at];
  }
  return frees;
}

TEST(ClusterStateIndex, EmptyMachineIsConsistent) {
  Cluster c;
  std::string diag;
  EXPECT_TRUE(c.index->check_consistent(&diag)) << diag;
  EXPECT_EQ(c.index->occupied_node_count(), 0);
  EXPECT_EQ(c.index->version(), 0u);

  std::vector<std::pair<SimTime, int>> groups;
  c.index->busy_groups(100, groups);
  EXPECT_TRUE(groups.empty());
}

TEST(ClusterStateIndex, EligibleCountsMatchMachinePartition) {
  Cluster c;
  JobConstraints highmem;
  highmem.min_memory_gb = 128;
  EXPECT_EQ(c.index->eligible_node_count(highmem), 4);
  EXPECT_EQ(c.index->eligible_node_count(highmem),
            c.machine->eligible_node_count(highmem));
  EXPECT_EQ(c.index->eligible_free_count(highmem), 4);

  NodeManager mgr(*c.machine, c.jobs, c.drom);
  const JobId id = c.add_running(0, 2, 100);
  mgr.start_static(0, id, {8, 9});
  EXPECT_EQ(c.index->eligible_free_count(highmem), 2);
  EXPECT_EQ(c.index->eligible_node_count(highmem), 4);  // eligibility is static
  std::string diag;
  EXPECT_TRUE(c.index->check_consistent(&diag)) << diag;
}

TEST(ClusterStateIndex, VersionBumpsOnlyOnRealChanges) {
  Cluster c;
  NodeManager mgr(*c.machine, c.jobs, c.drom);
  const JobId id = c.add_running(0, 1, 50);
  mgr.start_static(0, id, {0});
  const std::uint64_t v = c.index->version();
  EXPECT_GT(v, 0u);

  // A resize changes the node's core split but not its release time or
  // emptiness: the index must not pretend the world changed.
  ASSERT_TRUE(c.machine->resize_share(1, id, 0, 4));
  EXPECT_EQ(c.index->version(), v);

  // A predicted-end move is a real change.
  c.jobs.at(id).predicted_end += 25;
  c.index->on_predicted_end_changed(id);
  EXPECT_GT(c.index->version(), v);
  std::string diag;
  EXPECT_TRUE(c.index->check_consistent(&diag)) << diag;
}

TEST(ClusterStateIndex, BusyGroupsClampOverdueOccupants) {
  Cluster c;
  NodeManager mgr(*c.machine, c.jobs, c.drom);
  const JobId early = c.add_running(0, 1, 10);   // predicted end 10
  const JobId late = c.add_running(0, 1, 500);   // predicted end 500
  mgr.start_static(0, early, {0});
  mgr.start_static(0, late, {1});

  std::vector<std::pair<SimTime, int>> groups;
  c.index->busy_groups(50, groups);  // `early` is overdue at now=50
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::pair<SimTime, int>{51, 1}));
  EXPECT_EQ(groups[1], (std::pair<SimTime, int>{500, 1}));

  const auto expect = scan_groups(*c.machine, c.jobs, 50);
  const std::map<SimTime, int> got(groups.begin(), groups.end());
  EXPECT_EQ(got, expect);
}

TEST(ClusterStateIndex, RandomizedLifecycleMatchesBruteForce) {
  Cluster c;
  NodeManager mgr(*c.machine, c.jobs, c.drom);
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  const auto rnd = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };

  SimTime now = 0;
  std::string diag;
  for (int step = 0; step < 400; ++step) {
    now += static_cast<SimTime>(rnd(20));
    const std::uint64_t op = rnd(10);
    if (op < 4) {
      // Static start on random free nodes.
      const int want = 1 + static_cast<int>(rnd(3));
      const auto nodes = c.machine->find_free_nodes(want);
      if (nodes) {
        const JobId id = c.add_running(now, want, 10 + static_cast<SimTime>(rnd(300)));
        mgr.start_static(now, id, *nodes);
        c.running.push_back(id);
      }
    } else if (op < 6 && !c.running.empty()) {
      // Finish a random running job (owners leaving early expand survivors
      // through resize_share — the §4.3 unbalance path).
      const std::size_t pick = rnd(c.running.size());
      const JobId id = c.running[pick];
      c.running.erase(c.running.begin() + static_cast<std::ptrdiff_t>(pick));
      c.jobs.at(id).state = JobState::Completed;
      c.jobs.at(id).end_time = now;
      mgr.finish_job(now, id);
    } else if (op < 8 && !c.running.empty()) {
      // Malleable guest start: shrink one mate on one of its nodes.
      const JobId mate_id = c.running[rnd(c.running.size())];
      const Job& mate_view = c.jobs.at(mate_id);
      if (!mate_view.malleable() || mate_view.shares.empty()) continue;
      const NodeShare share = mate_view.shares[rnd(mate_view.shares.size())];
      if (share.cpus < 2) continue;
      const int give = 1 + static_cast<int>(rnd(static_cast<std::uint64_t>(share.cpus) - 1));
      // add_running may grow the registry: re-fetch the mate afterwards.
      const JobId guest_id =
          c.add_running(now, 1, 10 + static_cast<SimTime>(rnd(200)));
      SharePlan plan;
      plan.node = share.node;
      plan.mate = mate_id;
      plan.guest_cpus = give;
      plan.mate_kept_cpus = share.cpus - give;
      plan.guest_static_cpus = give;
      // Kernel order: stretch the mate's predicted end, notify, then the
      // node-level shrink + placement.
      c.jobs.at(mate_id).predicted_end += static_cast<SimTime>(rnd(100));
      c.index->on_predicted_end_changed(mate_id);
      mgr.start_guest(now, guest_id, {plan});
      c.running.push_back(guest_id);
    } else if (!c.running.empty()) {
      // Pure reconfigure: a mate stretch with no placement attached.
      const JobId id = c.running[rnd(c.running.size())];
      c.jobs.at(id).predicted_end += static_cast<SimTime>(rnd(50));
      c.index->on_predicted_end_changed(id);
    }

    ASSERT_TRUE(c.index->check_consistent(&diag)) << "step " << step << ": " << diag;

    // busy_groups must reproduce the historical full scan, clamp included.
    std::vector<std::pair<SimTime, int>> groups;
    c.index->busy_groups(now, groups);
    const std::map<SimTime, int> got(groups.begin(), groups.end());
    ASSERT_EQ(got, scan_groups(*c.machine, c.jobs, now)) << "step " << step;
    ASSERT_TRUE(std::is_sorted(groups.begin(), groups.end())) << "step " << step;

    JobConstraints highmem;
    highmem.min_memory_gb = 128;
    ASSERT_EQ(c.index->eligible_node_count(highmem),
              c.machine->eligible_node_count(highmem));
  }
  EXPECT_FALSE(c.running.empty());  // the walk actually exercised occupancy
}

}  // namespace
}  // namespace sdsched
