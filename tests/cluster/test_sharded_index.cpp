// Shard-merge parity suite: the ShardedClusterIndex must answer
// byte-identically to the flat ClusterStateIndex at every shard count —
// including counts that do not divide the node count evenly — through
// arbitrary start/guest/finish/stretch churn, with constraints and
// contiguous picks (ISSUE 10, docs/determinism.md "Ordered shard merge").
#include "cluster/sharded_cluster_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cluster/shard_layout.h"
#include "drom/node_manager.h"

namespace sdsched {
namespace {

constexpr int kShardCounts[] = {1, 2, 7, 64};

TEST(ShardLayout, WordAlignedContiguousPartition) {
  for (const int nodes : {5, 65, 5040, 50000}) {
    for (const int shards : kShardCounts) {
      const ShardLayout layout(nodes, shards);
      ASSERT_EQ(layout.shard_count(), shards);
      ASSERT_EQ(layout.node_count(), nodes);
      ASSERT_EQ(layout.node_begin(0), 0);
      ASSERT_EQ(layout.node_end(shards - 1), nodes);
      int widest = 0;
      for (int s = 0; s < shards; ++s) {
        // Shards tile the id space in order, word-aligned at both ends.
        // node_end clamps to the node count; node_begin is the raw word
        // boundary (empty trailing shards start past the last id).
        const int begin = std::min(layout.node_begin(s), nodes);
        ASSERT_LE(begin, layout.node_end(s));
        ASSERT_EQ(layout.node_begin(s) % 64, 0);
        if (s + 1 < shards) {
          ASSERT_EQ(layout.node_end(s), std::min(layout.node_begin(s + 1), nodes))
              << nodes << " nodes, " << shards << " shards, shard " << s;
        }
        ASSERT_EQ(layout.word_begin(s), static_cast<std::size_t>(layout.node_begin(s)) / 64);
        const int width = layout.node_end(s) - begin;
        widest = std::max(widest, width);
        for (int id = begin; id < layout.node_end(s); id += std::max(1, width / 7)) {
          ASSERT_EQ(layout.shard_of(id), s);
        }
      }
      // Balanced: the ceil word split keeps every shard at or under
      // ceil(words / shards) words.
      const int words = (nodes + 63) / 64;
      ASSERT_LE(widest, ((words + shards - 1) / shards) * 64);
    }
  }
}

std::uint64_t xorshift(std::uint64_t* state, std::uint64_t bound) {
  *state ^= *state << 13;
  *state ^= *state >> 7;
  *state ^= *state << 17;
  return *state % bound;
}

struct ShardedCluster {
  explicit ShardedCluster(int nodes, int shards) {
    MachineConfig mc;
    mc.nodes = nodes;
    mc.node = NodeConfig{2, 4};
    // Three attribute classes interleaved across the id space so every
    // shard sees a class mix and constrained picks cross shard boundaries.
    NodeAttributes highmem;
    highmem.memory_gb = 384;
    NodeAttributes fastnet;
    fastnet.network = "ib";
    for (int id = 0; id < nodes; ++id) {
      if (id % 5 == 1) mc.attribute_overrides.emplace_back(id, highmem);
      if (id % 5 == 3) mc.attribute_overrides.emplace_back(id, fastnet);
    }
    machine.emplace(mc);
    sharded.emplace(*machine, jobs, ShardConfig{shards, false});
  }

  JobId add_running(SimTime now, int req_nodes, SimTime runtime) {
    JobSpec spec;
    spec.submit = now;
    spec.req_cpus = req_nodes * machine->cores_per_node();
    spec.req_nodes = req_nodes;
    spec.req_time = runtime;
    spec.base_runtime = runtime;
    const JobId id = jobs.add(spec);
    Job& job = jobs.at(id);
    job.state = JobState::Running;
    job.start_time = now;
    job.predicted_end = now + runtime;
    return id;
  }

  JobRegistry jobs;
  DromRegistry drom;
  std::optional<Machine> machine;
  std::optional<ShardedClusterIndex> sharded;
  std::vector<JobId> running;
};

/// Every merge-based answer against its flat counterpart, plus the
/// aggregate identities a correct shard split must satisfy.
void expect_shard_flat_parity(ShardedCluster& c, SimTime now, std::uint64_t* state) {
  const ShardedClusterIndex& sharded = *c.sharded;
  const ClusterStateIndex& flat = sharded.flat();
  const int nodes = c.machine->node_count();

  JobConstraints highmem;
  highmem.min_memory_gb = 128;
  JobConstraints contiguous;
  contiguous.contiguous = true;

  const int probes[] = {1, 2, 1 + static_cast<int>(xorshift(state, 8)),
                        std::max(1, nodes / 3), nodes};
  for (const int count : probes) {
    ASSERT_EQ(sharded.find_free_nodes(count), flat.find_free_nodes(count))
        << "count " << count;
    ASSERT_EQ(sharded.find_free_nodes(count, &highmem),
              flat.find_free_nodes(count, &highmem))
        << "count " << count;
    ASSERT_EQ(sharded.find_free_nodes(count, &contiguous),
              flat.find_free_nodes(count, &contiguous))
        << "count " << count;
  }

  std::vector<std::pair<SimTime, int>> merged;
  std::vector<std::pair<SimTime, int>> flat_groups;
  sharded.busy_groups_sharded(now, merged);
  flat.busy_groups(now, flat_groups);
  ASSERT_EQ(merged, flat_groups);

  JobConstraints fastnet;
  fastnet.required_network = "ib";
  const std::uint64_t mask = flat.eligible_class_mask(fastnet);
  sharded.busy_groups_for_mask_sharded(mask, now, merged);
  flat.busy_groups_for_mask(mask, now, flat_groups);
  ASSERT_EQ(merged, flat_groups);

  // Aggregates: per-shard totals partition the flat counts, and the
  // earliest release across shards is the flat first release.
  int free_total = 0;
  int occupied_total = 0;
  int eligible_free = 0;
  SimTime earliest = ShardedClusterIndex::kNoRelease;
  for (int s = 0; s < sharded.shard_count(); ++s) {
    free_total += sharded.shard_free_count(s);
    occupied_total += sharded.shard_occupied_count(s);
    eligible_free += sharded.shard_eligible_free_count(s, mask);
    earliest = std::min(earliest, sharded.shard_earliest_release(s));
  }
  ASSERT_EQ(free_total, c.machine->free_node_count());
  ASSERT_EQ(occupied_total, flat.occupied_node_count());
  ASSERT_EQ(eligible_free, flat.eligible_free_count(fastnet));
  if (flat.occupied_node_count() == 0) {
    ASSERT_EQ(earliest, ShardedClusterIndex::kNoRelease);
  } else {
    std::vector<std::pair<SimTime, int>> all_groups;
    // busy_groups clamps; compare through an unclamped probe at a time
    // before every release instead.
    flat.busy_groups(INT64_MIN / 4, all_groups);
    ASSERT_FALSE(all_groups.empty());
    ASSERT_EQ(earliest, all_groups.front().first);
  }
}

/// Scattered free-node sample (lowest-first picks would leave tail shards
/// untouched and the parity trivial).
std::vector<int> random_free_nodes(const Machine& machine, std::uint64_t* state,
                                   int want) {
  std::vector<int> out;
  int tries = 0;
  while (static_cast<int>(out.size()) < want && tries++ < 400) {
    const int id =
        static_cast<int>(xorshift(state, static_cast<std::uint64_t>(machine.node_count())));
    if (!machine.node(id).empty()) continue;
    if (std::find(out.begin(), out.end(), id) != out.end()) continue;
    out.push_back(id);
  }
  if (static_cast<int>(out.size()) < want) out.clear();
  return out;
}

void churn_parity(int nodes, int steps) {
  for (const int shards : kShardCounts) {
    ShardedCluster c(nodes, shards);
    NodeManager mgr(*c.machine, c.jobs, c.drom);
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(nodes) << 8) ^
                          static_cast<std::uint64_t>(shards);
    SimTime now = 0;
    std::string diag;
    for (int step = 0; step < steps; ++step) {
      now += static_cast<SimTime>(xorshift(&state, 20));
      const std::uint64_t op = xorshift(&state, 10);
      if (op < 5) {
        const int want = 1 + static_cast<int>(xorshift(&state, 3));
        const auto picked = random_free_nodes(*c.machine, &state, want);
        if (!picked.empty()) {
          const JobId id =
              c.add_running(now, want, 10 + static_cast<SimTime>(xorshift(&state, 300)));
          mgr.start_static(now, id, picked);
          c.running.push_back(id);
        }
      } else if (op < 7 && !c.running.empty()) {
        const std::size_t pick = xorshift(&state, c.running.size());
        const JobId id = c.running[pick];
        c.running.erase(c.running.begin() + static_cast<std::ptrdiff_t>(pick));
        c.jobs.at(id).state = JobState::Completed;
        c.jobs.at(id).end_time = now;
        mgr.finish_job(now, id);
      } else if (op < 9 && !c.running.empty()) {
        // Malleable guest start: shrink one mate on one of its nodes (the
        // free_at-moves-without-emptiness-flip path).
        const JobId mate_id = c.running[xorshift(&state, c.running.size())];
        const Job& mate_view = c.jobs.at(mate_id);
        if (!mate_view.malleable() || mate_view.shares.empty()) continue;
        const NodeShare share = mate_view.shares[xorshift(&state, mate_view.shares.size())];
        if (share.cpus < 2) continue;
        const int give =
            1 + static_cast<int>(xorshift(&state, static_cast<std::uint64_t>(share.cpus) - 1));
        const JobId guest_id =
            c.add_running(now, 1, 10 + static_cast<SimTime>(xorshift(&state, 200)));
        SharePlan plan;
        plan.node = share.node;
        plan.mate = mate_id;
        plan.guest_cpus = give;
        plan.mate_kept_cpus = share.cpus - give;
        plan.guest_static_cpus = give;
        c.jobs.at(mate_id).predicted_end += static_cast<SimTime>(xorshift(&state, 100));
        c.sharded->on_predicted_end_changed(mate_id);
        mgr.start_guest(now, guest_id, {plan});
        c.running.push_back(guest_id);
      } else if (!c.running.empty()) {
        const JobId id = c.running[xorshift(&state, c.running.size())];
        c.jobs.at(id).predicted_end += static_cast<SimTime>(xorshift(&state, 50));
        c.sharded->on_predicted_end_changed(id);
      }

      expect_shard_flat_parity(c, now, &state);
      if (step % 8 == 0) {
        ASSERT_TRUE(c.sharded->check_consistent(&diag))
            << nodes << " nodes, " << shards << " shards, step " << step << ": " << diag;
      }
    }
    ASSERT_TRUE(c.sharded->check_consistent(&diag)) << diag;
    EXPECT_FALSE(c.running.empty());
  }
}

TEST(ShardedClusterIndex, ChurnParityTinyMachine) { churn_parity(5, 120); }

TEST(ShardedClusterIndex, ChurnParityOddMachine) { churn_parity(65, 120); }

TEST(ShardedClusterIndex, ChurnParityCurieMachine) { churn_parity(5040, 60); }

TEST(ShardedClusterIndex, ChurnParityFiftyKMachine) { churn_parity(50000, 10); }

TEST(ShardedClusterIndex, DrainAndRefillKeepsAggregatesExact) {
  ShardedCluster c(130, 7);
  NodeManager mgr(*c.machine, c.jobs, c.drom);
  std::uint64_t state = 0xdeadbeefcafef00dULL;

  // Fill the whole machine one node at a time, then drain it completely.
  std::vector<JobId> ids;
  for (int id = 0; id < 130; ++id) {
    const JobId job = c.add_running(0, 1, 100 + id);
    mgr.start_static(0, job, {id});
    ids.push_back(job);
  }
  ASSERT_EQ(c.machine->free_node_count(), 0);
  expect_shard_flat_parity(c, 0, &state);
  for (int s = 0; s < c.sharded->shard_count(); ++s) {
    ASSERT_EQ(c.sharded->shard_free_count(s), 0);
  }
  for (const JobId job : ids) {
    c.jobs.at(job).state = JobState::Completed;
    mgr.finish_job(50, job);
  }
  ASSERT_EQ(c.machine->free_node_count(), 130);
  expect_shard_flat_parity(c, 50, &state);
  std::string diag;
  ASSERT_TRUE(c.sharded->check_consistent(&diag)) << diag;
  for (int s = 0; s < c.sharded->shard_count(); ++s) {
    ASSERT_EQ(c.sharded->shard_occupied_count(s), 0);
    ASSERT_EQ(c.sharded->shard_earliest_release(s), ShardedClusterIndex::kNoRelease);
  }
}

}  // namespace
}  // namespace sdsched
