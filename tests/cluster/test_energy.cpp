#include "cluster/energy.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(Energy, ZeroWithoutTime) {
  EnergyAccountant acc(EnergyConfig{}, 4);
  acc.observe(0, 10, 1);
  EXPECT_DOUBLE_EQ(acc.joules(), 0.0);
}

TEST(Energy, IdleOnlyMachine) {
  EnergyAccountant acc(EnergyConfig{100.0, 5.0, false}, 3);
  acc.observe(0, 0, 0);
  acc.observe(10, 0, 0);
  EXPECT_DOUBLE_EQ(acc.joules(), 3 * 100.0 * 10);
}

TEST(Energy, BusyCoresAddIncrementalDraw) {
  EnergyAccountant acc(EnergyConfig{100.0, 5.0, false}, 1);
  acc.observe(0, 20, 1);
  acc.observe(10, 0, 0);
  EXPECT_DOUBLE_EQ(acc.joules(), (100.0 + 20 * 5.0) * 10);
}

TEST(Energy, PowerDownIdleNodesCountsOccupiedOnly) {
  EnergyAccountant acc(EnergyConfig{100.0, 0.0, true}, 10);
  acc.observe(0, 0, 2);
  acc.observe(5, 0, 0);
  EXPECT_DOUBLE_EQ(acc.joules(), 2 * 100.0 * 5);
}

TEST(Energy, PiecewiseIntegration) {
  EnergyAccountant acc(EnergyConfig{0.0, 1.0, false}, 1);
  acc.observe(0, 10, 1);
  acc.observe(10, 30, 1);   // 10s at 10 cores
  acc.observe(20, 0, 0);    // 10s at 30 cores
  EXPECT_DOUBLE_EQ(acc.joules(), 10.0 * 10 + 30.0 * 10);
}

TEST(Energy, KwhConversion) {
  EnergyAccountant acc(EnergyConfig{1000.0, 0.0, false}, 1);
  acc.observe(0, 0, 0);
  acc.observe(3600, 0, 0);
  EXPECT_DOUBLE_EQ(acc.kwh(), 1.0);
}

TEST(Energy, ObserveSameTimestampOnlyUpdatesLoad) {
  EnergyAccountant acc(EnergyConfig{0.0, 1.0, false}, 1);
  acc.observe(0, 5, 1);
  acc.observe(0, 50, 1);  // replaces the load with no elapsed time
  acc.observe(10, 0, 0);
  EXPECT_DOUBLE_EQ(acc.joules(), 500.0);
}

}  // namespace
}  // namespace sdsched
