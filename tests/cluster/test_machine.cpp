#include "cluster/machine.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace sdsched {
namespace {

Machine make_machine(int nodes = 4) {
  MachineConfig config;
  config.nodes = nodes;
  config.node = NodeConfig{2, 24};
  return Machine(config);
}

TEST(Machine, InitialGeometry) {
  const Machine machine = make_machine(4);
  EXPECT_EQ(machine.node_count(), 4);
  EXPECT_EQ(machine.cores_per_node(), 48);
  EXPECT_EQ(machine.total_cores(), 192);
  EXPECT_EQ(machine.free_node_count(), 4);
  EXPECT_EQ(machine.busy_cores(), 0);
  EXPECT_EQ(machine.occupied_nodes(), 0);
}

TEST(Machine, FindFreeNodesLowestFirst) {
  Machine machine = make_machine(4);
  const auto nodes = machine.find_free_nodes(2);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<int>{0, 1}));
  EXPECT_FALSE(machine.find_free_nodes(5).has_value());
}

TEST(Machine, AllocateExclusiveTracksLoad) {
  Machine machine = make_machine(4);
  EXPECT_TRUE(machine.allocate_exclusive(0, 1, {0, 1}, {48, 48}));
  EXPECT_EQ(machine.free_node_count(), 2);
  EXPECT_EQ(machine.busy_cores(), 96);
  EXPECT_EQ(machine.occupied_nodes(), 2);
  EXPECT_DOUBLE_EQ(machine.utilization(), 0.5);
}

TEST(Machine, AllocateExclusivePartialCpus) {
  Machine machine = make_machine(2);
  // A 50-cpu job on 2 nodes holds 25+25 but blocks both nodes.
  EXPECT_TRUE(machine.allocate_exclusive(0, 1, {0, 1}, {25, 25}));
  EXPECT_EQ(machine.busy_cores(), 50);
  EXPECT_EQ(machine.free_node_count(), 0);
}

TEST(Machine, AllocateExclusiveRefusesOccupied) {
  Machine machine = make_machine(2);
  ASSERT_TRUE(machine.allocate_exclusive(0, 1, {0}, {48}));
  EXPECT_FALSE(machine.allocate_exclusive(0, 2, {0, 1}, {48, 48}));
  // Failure must not leak occupancy onto node 1.
  EXPECT_EQ(machine.free_node_count(), 1);
  EXPECT_EQ(machine.busy_cores(), 48);
}

TEST(Machine, SharesAndRelease) {
  Machine machine = make_machine(2);
  machine.allocate_exclusive(0, 1, {0}, {48});
  EXPECT_TRUE(machine.resize_share(10, 1, 0, 24));
  EXPECT_EQ(machine.busy_cores(), 24);
  EXPECT_TRUE(machine.add_share(10, 2, 0, 24, false));
  EXPECT_EQ(machine.busy_cores(), 48);
  EXPECT_EQ(machine.free_node_count(), 1);

  EXPECT_EQ(machine.remove_share(20, 2, 0), 24);
  EXPECT_EQ(machine.busy_cores(), 24);
  EXPECT_EQ(machine.free_node_count(), 1);  // owner still there
  machine.release_all(30, 1, {0});
  EXPECT_EQ(machine.free_node_count(), 2);
  EXPECT_EQ(machine.busy_cores(), 0);
}

TEST(Machine, CoreSecondsIntegration) {
  Machine machine = make_machine(1);
  machine.allocate_exclusive(0, 1, {0}, {48});
  machine.release_all(100, 1, {0});
  machine.finalize_energy(100);
  EXPECT_DOUBLE_EQ(machine.core_seconds(), 4800.0);
}

TEST(Machine, EnergyAccumulatesIdleAndBusy) {
  MachineConfig config;
  config.nodes = 2;
  config.node = NodeConfig{2, 24};
  config.energy.idle_watts_per_node = 100.0;
  config.energy.watts_per_busy_core = 2.0;
  Machine machine(config);
  machine.allocate_exclusive(0, 1, {0}, {48});
  machine.release_all(50, 1, {0});
  machine.finalize_energy(100);
  // [0,50): 2 nodes idle draw + 48 busy cores; [50,100): idle only.
  const double expected = (2 * 100.0 + 48 * 2.0) * 50 + (2 * 100.0) * 50;
  EXPECT_DOUBLE_EQ(machine.energy().joules(), expected);
}

// Reference-model tests (and warm-started simulations) rebuild a running
// population by replaying allocations with *historical*, non-monotonic start
// times. The machine must not abort on a backdated call, and its cumulative
// core-second / energy totals must match the same calls replayed in
// chronological order.
struct AllocOp {
  enum class Kind { Allocate, Release, AddShare, ResizeShare, RemoveShare };
  Kind kind = Kind::Allocate;
  SimTime time = 0;
  JobId job = 0;
  std::vector<int> nodes;
  std::vector<int> cpus;
  bool owner = false;
};

void apply_ops(Machine& machine, const std::vector<AllocOp>& ops, SimTime end) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case AllocOp::Kind::Allocate:
        ASSERT_TRUE(machine.allocate_exclusive(op.time, op.job, op.nodes, op.cpus));
        break;
      case AllocOp::Kind::Release:
        machine.release_all(op.time, op.job, op.nodes);
        break;
      case AllocOp::Kind::AddShare:
        ASSERT_TRUE(machine.add_share(op.time, op.job, op.nodes[0], op.cpus[0], op.owner));
        break;
      case AllocOp::Kind::ResizeShare:
        ASSERT_TRUE(machine.resize_share(op.time, op.job, op.nodes[0], op.cpus[0]));
        break;
      case AllocOp::Kind::RemoveShare:
        ASSERT_GT(machine.remove_share(op.time, op.job, op.nodes[0]), 0);
        break;
    }
  }
  machine.finalize_energy(end);
}

void expect_matches_forward_replay(const MachineConfig& config,
                                   const std::vector<AllocOp>& ops, SimTime end) {
  Machine machine(config);
  apply_ops(machine, ops, end);

  std::vector<AllocOp> sorted = ops;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const AllocOp& a, const AllocOp& b) { return a.time < b.time; });
  Machine oracle(config);
  apply_ops(oracle, sorted, end);

  EXPECT_DOUBLE_EQ(machine.core_seconds(), oracle.core_seconds());
  EXPECT_DOUBLE_EQ(machine.energy().joules(), oracle.energy().joules());
  EXPECT_EQ(machine.busy_cores(), oracle.busy_cores());
  EXPECT_EQ(machine.occupied_nodes(), oracle.occupied_nodes());
}

TEST(Machine, BackdatedAllocationMatchesForwardReplay) {
  MachineConfig config;
  config.nodes = 4;
  config.node = NodeConfig{2, 24};
  config.energy.idle_watts_per_node = 100.0;
  config.energy.watts_per_busy_core = 4.5;
  // Allocate at t=2000, then a start backdated to t=500 (historical).
  const std::vector<AllocOp> ops = {
      {AllocOp::Kind::Allocate, 2000, 1, {0, 1}, {48, 48}},
      {AllocOp::Kind::Allocate, 500, 2, {2}, {48}},
  };
  expect_matches_forward_replay(config, ops, 3000);
}

TEST(Machine, BackdatedAllocationMatchesForwardReplayWithPoweredDownIdles) {
  MachineConfig config;
  config.nodes = 4;
  config.node = NodeConfig{2, 24};
  config.energy.idle_watts_per_node = 100.0;
  config.energy.watts_per_busy_core = 4.5;
  config.energy.power_down_idle_nodes = true;  // exercises the occupied-node credit
  const std::vector<AllocOp> ops = {
      {AllocOp::Kind::Allocate, 2000, 1, {0, 1}, {48, 48}},
      {AllocOp::Kind::Allocate, 500, 2, {2}, {24}},
      {AllocOp::Kind::Allocate, 1200, 3, {3}, {48}},
  };
  expect_matches_forward_replay(config, ops, 5000);
}

TEST(Machine, BackdatedHistoryWithReleaseMatchesForwardReplay) {
  MachineConfig config;
  config.nodes = 4;
  config.node = NodeConfig{2, 24};
  config.energy.idle_watts_per_node = 100.0;
  config.energy.watts_per_busy_core = 4.5;
  // A short historical job (started *and* finished behind the frontier) is
  // injected after a live allocation already advanced the clock to t=2000.
  const std::vector<AllocOp> ops = {
      {AllocOp::Kind::Allocate, 2000, 1, {0, 1}, {48, 48}},
      {AllocOp::Kind::Allocate, 500, 2, {2}, {48}},
      {AllocOp::Kind::Release, 800, 2, {2}, {}},
  };
  expect_matches_forward_replay(config, ops, 3000);
}

TEST(Machine, BackdatedSharedNodeChurnMatchesForwardReplay) {
  MachineConfig config;
  config.nodes = 4;
  config.node = NodeConfig{2, 24};
  config.energy.idle_watts_per_node = 100.0;
  config.energy.watts_per_busy_core = 4.5;
  // An entire co-scheduling episode on node 2 — owner placed, shrunk, guest
  // added and removed, owner removed — reconstructed behind a frontier already
  // advanced to t=2000 by a live allocation. Sorted by time the same calls
  // form a valid chronological history, so the oracle replay is well-defined.
  const std::vector<AllocOp> ops = {
      {AllocOp::Kind::Allocate, 2000, 1, {0, 1}, {48, 48}},
      {AllocOp::Kind::AddShare, 300, 2, {2}, {24}, /*owner=*/true},
      {AllocOp::Kind::ResizeShare, 700, 2, {2}, {12}},
      {AllocOp::Kind::AddShare, 900, 3, {2}, {12}, /*owner=*/false},
      {AllocOp::Kind::RemoveShare, 1100, 3, {2}, {}},
      {AllocOp::Kind::RemoveShare, 1500, 2, {2}, {}},
  };
  for (const bool power_down : {false, true}) {
    SCOPED_TRACE(power_down ? "power_down_idle_nodes" : "always_on");
    config.energy.power_down_idle_nodes = power_down;
    expect_matches_forward_replay(config, ops, 3000);
  }
}

TEST(Machine, FreedNodeIsReusable) {
  Machine machine = make_machine(1);
  machine.allocate_exclusive(0, 1, {0}, {48});
  machine.release_all(10, 1, {0});
  const auto nodes = machine.find_free_nodes(1);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_TRUE(machine.allocate_exclusive(10, 2, *nodes, {48}));
}

}  // namespace
}  // namespace sdsched
