#include "cluster/machine.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

Machine make_machine(int nodes = 4) {
  MachineConfig config;
  config.nodes = nodes;
  config.node = NodeConfig{2, 24};
  return Machine(config);
}

TEST(Machine, InitialGeometry) {
  const Machine machine = make_machine(4);
  EXPECT_EQ(machine.node_count(), 4);
  EXPECT_EQ(machine.cores_per_node(), 48);
  EXPECT_EQ(machine.total_cores(), 192);
  EXPECT_EQ(machine.free_node_count(), 4);
  EXPECT_EQ(machine.busy_cores(), 0);
  EXPECT_EQ(machine.occupied_nodes(), 0);
}

TEST(Machine, FindFreeNodesLowestFirst) {
  Machine machine = make_machine(4);
  const auto nodes = machine.find_free_nodes(2);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<int>{0, 1}));
  EXPECT_FALSE(machine.find_free_nodes(5).has_value());
}

TEST(Machine, AllocateExclusiveTracksLoad) {
  Machine machine = make_machine(4);
  EXPECT_TRUE(machine.allocate_exclusive(0, 1, {0, 1}, {48, 48}));
  EXPECT_EQ(machine.free_node_count(), 2);
  EXPECT_EQ(machine.busy_cores(), 96);
  EXPECT_EQ(machine.occupied_nodes(), 2);
  EXPECT_DOUBLE_EQ(machine.utilization(), 0.5);
}

TEST(Machine, AllocateExclusivePartialCpus) {
  Machine machine = make_machine(2);
  // A 50-cpu job on 2 nodes holds 25+25 but blocks both nodes.
  EXPECT_TRUE(machine.allocate_exclusive(0, 1, {0, 1}, {25, 25}));
  EXPECT_EQ(machine.busy_cores(), 50);
  EXPECT_EQ(machine.free_node_count(), 0);
}

TEST(Machine, AllocateExclusiveRefusesOccupied) {
  Machine machine = make_machine(2);
  ASSERT_TRUE(machine.allocate_exclusive(0, 1, {0}, {48}));
  EXPECT_FALSE(machine.allocate_exclusive(0, 2, {0, 1}, {48, 48}));
  // Failure must not leak occupancy onto node 1.
  EXPECT_EQ(machine.free_node_count(), 1);
  EXPECT_EQ(machine.busy_cores(), 48);
}

TEST(Machine, SharesAndRelease) {
  Machine machine = make_machine(2);
  machine.allocate_exclusive(0, 1, {0}, {48});
  EXPECT_TRUE(machine.resize_share(10, 1, 0, 24));
  EXPECT_EQ(machine.busy_cores(), 24);
  EXPECT_TRUE(machine.add_share(10, 2, 0, 24, false));
  EXPECT_EQ(machine.busy_cores(), 48);
  EXPECT_EQ(machine.free_node_count(), 1);

  EXPECT_EQ(machine.remove_share(20, 2, 0), 24);
  EXPECT_EQ(machine.busy_cores(), 24);
  EXPECT_EQ(machine.free_node_count(), 1);  // owner still there
  machine.release_all(30, 1, {0});
  EXPECT_EQ(machine.free_node_count(), 2);
  EXPECT_EQ(machine.busy_cores(), 0);
}

TEST(Machine, CoreSecondsIntegration) {
  Machine machine = make_machine(1);
  machine.allocate_exclusive(0, 1, {0}, {48});
  machine.release_all(100, 1, {0});
  machine.finalize_energy(100);
  EXPECT_DOUBLE_EQ(machine.core_seconds(), 4800.0);
}

TEST(Machine, EnergyAccumulatesIdleAndBusy) {
  MachineConfig config;
  config.nodes = 2;
  config.node = NodeConfig{2, 24};
  config.energy.idle_watts_per_node = 100.0;
  config.energy.watts_per_busy_core = 2.0;
  Machine machine(config);
  machine.allocate_exclusive(0, 1, {0}, {48});
  machine.release_all(50, 1, {0});
  machine.finalize_energy(100);
  // [0,50): 2 nodes idle draw + 48 busy cores; [50,100): idle only.
  const double expected = (2 * 100.0 + 48 * 2.0) * 50 + (2 * 100.0) * 50;
  EXPECT_DOUBLE_EQ(machine.energy().joules(), expected);
}

TEST(Machine, FreedNodeIsReusable) {
  Machine machine = make_machine(1);
  machine.allocate_exclusive(0, 1, {0}, {48});
  machine.release_all(10, 1, {0});
  const auto nodes = machine.find_free_nodes(1);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_TRUE(machine.allocate_exclusive(10, 2, *nodes, {48}));
}

}  // namespace
}  // namespace sdsched
