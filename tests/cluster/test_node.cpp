#include "cluster/node.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

Node make_node(int id = 0) { return Node(id, NodeConfig{2, 24}); }

TEST(Node, GeometryFromConfig) {
  const Node node = make_node(3);
  EXPECT_EQ(node.id(), 3);
  EXPECT_EQ(node.total_cores(), 48);
  EXPECT_EQ(node.sockets(), 2);
  EXPECT_EQ(node.cores_per_socket(), 24);
  EXPECT_TRUE(node.empty());
  EXPECT_EQ(node.free_cores(), 48);
}

TEST(Node, AddAndRemoveOccupant) {
  Node node = make_node();
  EXPECT_TRUE(node.add(1, 48, true));
  EXPECT_FALSE(node.empty());
  EXPECT_EQ(node.used_cores(), 48);
  EXPECT_EQ(node.free_cores(), 0);
  EXPECT_TRUE(node.holds(1));
  EXPECT_EQ(node.remove(1), 48);
  EXPECT_TRUE(node.empty());
  EXPECT_EQ(node.remove(1), 0);
}

TEST(Node, RejectsOvercommit) {
  Node node = make_node();
  EXPECT_TRUE(node.add(1, 40, true));
  EXPECT_FALSE(node.add(2, 9, false));
  EXPECT_TRUE(node.add(2, 8, false));
  EXPECT_EQ(node.used_cores(), 48);
}

TEST(Node, RejectsDuplicateJob) {
  Node node = make_node();
  EXPECT_TRUE(node.add(1, 10, true));
  EXPECT_FALSE(node.add(1, 10, false));
}

TEST(Node, RejectsZeroCpus) {
  Node node = make_node();
  EXPECT_FALSE(node.add(1, 0, true));
}

TEST(Node, SharedWhenTwoOccupants) {
  Node node = make_node();
  node.add(1, 24, true);
  EXPECT_FALSE(node.shared());
  node.add(2, 24, false);
  EXPECT_TRUE(node.shared());
  EXPECT_EQ(node.occupant_count(), 2u);
}

TEST(Node, OwnerLookup) {
  Node node = make_node();
  node.add(1, 24, true);
  node.add(2, 24, false);
  const auto owner = node.owner();
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->job, 1u);
  const auto occ = node.occupant(2);
  ASSERT_TRUE(occ.has_value());
  EXPECT_FALSE(occ->owner);
  EXPECT_FALSE(node.occupant(99).has_value());
}

TEST(Node, ResizeWithinCapacity) {
  Node node = make_node();
  node.add(1, 48, true);
  EXPECT_TRUE(node.resize(1, 24));
  EXPECT_EQ(node.free_cores(), 24);
  EXPECT_TRUE(node.add(2, 24, false));
  // Owner cannot grow back past the guest.
  EXPECT_FALSE(node.resize(1, 25));
  EXPECT_TRUE(node.resize(1, 24));
}

TEST(Node, ResizeRejectsInvalid) {
  Node node = make_node();
  node.add(1, 10, true);
  EXPECT_FALSE(node.resize(1, 0));
  EXPECT_FALSE(node.resize(2, 5));
  EXPECT_FALSE(node.resize(1, 49));
}

}  // namespace
}  // namespace sdsched
