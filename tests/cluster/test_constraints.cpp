#include <gtest/gtest.h>

#include "cluster/machine.h"

namespace sdsched {
namespace {

MachineConfig hetero_config() {
  MachineConfig config;
  config.nodes = 8;
  config.node = NodeConfig{2, 24};
  config.attributes = NodeAttributes{"x86_64", 96, "opa"};
  // Nodes 4-5: high-memory; nodes 6-7: different arch + fabric.
  config.attribute_overrides = {
      {4, NodeAttributes{"x86_64", 384, "opa"}},
      {5, NodeAttributes{"x86_64", 384, "opa"}},
      {6, NodeAttributes{"aarch64", 96, "ib"}},
      {7, NodeAttributes{"aarch64", 96, "ib"}},
  };
  return config;
}

TEST(Constraints, NodeSatisfiesMatchesEachAxis) {
  const NodeAttributes attrs{"x86_64", 96, "opa"};
  EXPECT_TRUE(node_satisfies(attrs, JobConstraints{}));
  EXPECT_TRUE(node_satisfies(attrs, (JobConstraints{"x86_64", 96, "opa", false})));
  EXPECT_FALSE(node_satisfies(attrs, (JobConstraints{"aarch64", 0, "", false})));
  EXPECT_FALSE(node_satisfies(attrs, (JobConstraints{"", 128, "", false})));
  EXPECT_FALSE(node_satisfies(attrs, (JobConstraints{"", 0, "ib", false})));
}

TEST(Constraints, UnconstrainedPredicate) {
  EXPECT_TRUE(JobConstraints{}.unconstrained());
  EXPECT_FALSE((JobConstraints{"x86_64", 0, "", false}).unconstrained());
  EXPECT_FALSE((JobConstraints{"", 1, "", false}).unconstrained());
  EXPECT_FALSE((JobConstraints{"", 0, "", true}).unconstrained());
}

TEST(Constraints, AttributeOverridesApplied) {
  const Machine machine(hetero_config());
  EXPECT_EQ(machine.node(0).attributes().memory_gb, 96);
  EXPECT_EQ(machine.node(4).attributes().memory_gb, 384);
  EXPECT_EQ(machine.node(6).attributes().arch, "aarch64");
}

TEST(Constraints, FindFreeNodesFiltersByMemory) {
  const Machine machine(hetero_config());
  JobConstraints highmem;
  highmem.min_memory_gb = 256;
  const auto nodes = machine.find_free_nodes(2, &highmem);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<int>{4, 5}));
  EXPECT_FALSE(machine.find_free_nodes(3, &highmem).has_value());
}

TEST(Constraints, FindFreeNodesFiltersByArch) {
  const Machine machine(hetero_config());
  JobConstraints arm;
  arm.required_arch = "aarch64";
  const auto nodes = machine.find_free_nodes(2, &arm);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, (std::vector<int>{6, 7}));
}

TEST(Constraints, EligibleNodeCount) {
  const Machine machine(hetero_config());
  JobConstraints highmem;
  highmem.min_memory_gb = 256;
  EXPECT_EQ(machine.eligible_node_count(highmem), 2);
  EXPECT_EQ(machine.eligible_node_count(JobConstraints{}), 8);
}

TEST(Constraints, ContiguousRequiresConsecutiveIds) {
  Machine machine(hetero_config());
  // Occupy node 1 to split the x86 range {0,1,2,3} into {0} and {2,3}.
  machine.allocate_exclusive(0, 1, {1}, {48});
  JobConstraints contig;
  contig.contiguous = true;
  const auto two = machine.find_free_nodes(2, &contig);
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(*two, (std::vector<int>{2, 3}));
  // An unfiltered contiguous request takes the earliest run: {2,3,4,5}.
  const auto four = machine.find_free_nodes(4, &contig);
  ASSERT_TRUE(four.has_value());
  EXPECT_EQ(*four, (std::vector<int>{2, 3, 4, 5}));
}

TEST(Constraints, ContiguousPlusFilterCombines) {
  Machine machine(hetero_config());
  machine.allocate_exclusive(0, 1, {5}, {48});  // split the high-mem pair
  JobConstraints c;
  c.contiguous = true;
  c.min_memory_gb = 256;
  EXPECT_FALSE(machine.find_free_nodes(2, &c).has_value());
  EXPECT_TRUE(machine.find_free_nodes(1, &c).has_value());
}

}  // namespace
}  // namespace sdsched
