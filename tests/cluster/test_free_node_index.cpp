// The class-partitioned free-run index must return exactly the node ids
// Machine::find_free_nodes returns — lowest-first picks, eligible-class
// filtering, earliest contiguous runs — through arbitrary allocate/release
// churn. Unit tests cover the run merge/split mechanics; the property test
// drives a heterogeneous cluster through a random lifecycle and probes
// every (constraints x contiguous x count) combination each step.
#include "cluster/free_node_index.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "cluster/cluster_state_index.h"
#include "drom/node_manager.h"

namespace sdsched {
namespace {

TEST(FreeNodeIndex, RunsMergeAndSplit) {
  // One class over ids 0..7.
  FreeNodeIndex index(std::vector<int>(8, 0), 1);
  EXPECT_EQ(index.free_count(), 8);
  EXPECT_EQ(index.runs_of_class(0), (std::map<int, int>{{0, 8}}));

  index.erase(3);  // split [0,8) -> [0,3) + [4,8)
  EXPECT_EQ(index.runs_of_class(0), (std::map<int, int>{{0, 3}, {4, 4}}));
  index.erase(0);  // trim the head
  EXPECT_EQ(index.runs_of_class(0), (std::map<int, int>{{1, 2}, {4, 4}}));
  index.erase(7);  // trim the tail
  EXPECT_EQ(index.runs_of_class(0), (std::map<int, int>{{1, 2}, {4, 3}}));

  index.insert(3);  // bridge [1,3) + {3} + [4,7) -> [1,7)
  EXPECT_EQ(index.runs_of_class(0), (std::map<int, int>{{1, 6}}));
  EXPECT_EQ(index.free_count(), 6);

  std::vector<bool> is_free{false, true, true, true, true, true, true, false};
  std::string diag;
  EXPECT_TRUE(index.check_consistent(is_free, &diag)) << diag;
}

TEST(FreeNodeIndex, RunsNeverBridgeAcrossClasses) {
  // Ids 0,1 class 0; id 2 class 1; ids 3,4 class 0: the class-0 runs stay
  // split by the foreign id even when everything is free.
  FreeNodeIndex index({0, 0, 1, 0, 0}, 2);
  EXPECT_EQ(index.runs_of_class(0), (std::map<int, int>{{0, 2}, {3, 2}}));
  EXPECT_EQ(index.runs_of_class(1), (std::map<int, int>{{2, 1}}));

  // But a multi-class pick walks the union in id order: contiguous spans
  // may cross class boundaries.
  const auto span = index.pick(5, {0, 1}, /*contiguous=*/true);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(*span, (std::vector<int>{0, 1, 2, 3, 4}));
  // Class 0 alone has no 3-run.
  EXPECT_FALSE(index.pick(3, {0}, /*contiguous=*/true).has_value());
  EXPECT_EQ(*index.pick(3, {0}, /*contiguous=*/false), (std::vector<int>{0, 1, 3}));
}

// ---------------------------------------------------------------------------
// Property: ClusterStateIndex::find_free_nodes == Machine::find_free_nodes.
// ---------------------------------------------------------------------------

struct Cluster {
  Cluster() {
    MachineConfig mc;
    mc.nodes = 16;
    mc.node = NodeConfig{2, 4};
    NodeAttributes highmem;
    highmem.memory_gb = 384;
    NodeAttributes arm;
    arm.arch = "aarch64";
    // Interleave the classes so per-class runs fragment interestingly.
    for (const int id : {4, 5, 10, 11, 14}) mc.attribute_overrides.emplace_back(id, highmem);
    for (const int id : {7, 8, 15}) mc.attribute_overrides.emplace_back(id, arm);
    machine.emplace(mc);
    index.emplace(*machine, jobs);
  }

  JobId add_running(SimTime now, int req_nodes, SimTime runtime) {
    JobSpec spec;
    spec.submit = now;
    spec.req_cpus = req_nodes * machine->cores_per_node();
    spec.req_nodes = req_nodes;
    spec.req_time = runtime;
    spec.base_runtime = runtime;
    const JobId id = jobs.add(spec);
    Job& job = jobs.at(id);
    job.state = JobState::Running;
    job.start_time = now;
    job.predicted_end = now + runtime;
    return id;
  }

  JobRegistry jobs;
  DromRegistry drom;
  std::optional<Machine> machine;
  std::optional<ClusterStateIndex> index;
  std::vector<JobId> running;
};

TEST(FreeNodeIndex, RandomizedChurnMatchesMachineScan) {
  Cluster c;
  NodeManager mgr(*c.machine, c.jobs, c.drom);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto rnd = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };

  JobConstraints highmem;
  highmem.min_memory_gb = 128;
  JobConstraints arm;
  arm.required_arch = "aarch64";
  JobConstraints broad;  // matches default + highmem classes
  broad.required_network = "opa";
  const std::vector<const JobConstraints*> attr_probes{nullptr, &highmem, &arm, &broad};

  SimTime now = 0;
  std::string diag;
  int starts = 0;
  for (int step = 0; step < 500; ++step) {
    now += static_cast<SimTime>(rnd(20));
    if (rnd(2) == 0) {
      // Allocate: random size on the machine's own pick (any eligible set).
      const int want = 1 + static_cast<int>(rnd(4));
      JobConstraints* probe = nullptr;  // unconstrained placement
      const auto nodes = c.machine->find_free_nodes(want, probe);
      if (nodes) {
        const JobId id = c.add_running(now, want, 10 + static_cast<SimTime>(rnd(300)));
        mgr.start_static(now, id, *nodes);
        c.running.push_back(id);
        ++starts;
      }
    } else if (!c.running.empty()) {
      const std::size_t pick = rnd(c.running.size());
      const JobId id = c.running[pick];
      c.running.erase(c.running.begin() + static_cast<std::ptrdiff_t>(pick));
      c.jobs.at(id).state = JobState::Completed;
      c.jobs.at(id).end_time = now;
      mgr.finish_job(now, id);
    }

    ASSERT_TRUE(c.index->check_consistent(&diag)) << "step " << step << ": " << diag;

    // Probe every (constraints x contiguous x count) cell against the scan.
    for (const JobConstraints* attrs : attr_probes) {
      for (const bool contiguous : {false, true}) {
        JobConstraints probe = attrs != nullptr ? *attrs : JobConstraints{};
        probe.contiguous = contiguous;
        const JobConstraints* arg =
            (attrs == nullptr && !contiguous) ? nullptr : &probe;
        for (const int count :
             {1, 2, 3, c.machine->free_node_count(), c.machine->node_count()}) {
          if (count < 1) continue;
          const auto indexed = c.index->find_free_nodes(count, arg);
          const auto scanned = c.machine->find_free_nodes(count, arg);
          ASSERT_EQ(indexed, scanned)
              << "step " << step << " count " << count << " contiguous " << contiguous
              << " attrs " << (attrs != nullptr);
        }
      }
    }
  }
  EXPECT_GT(starts, 50);  // the walk actually exercised occupancy churn
}

// ---------------------------------------------------------------------------
// Property: bitmap == brute-force reference through pure free/busy flip
// churn, at 64-aligned and non-aligned node counts (the dead bits of a
// partial last word must never surface), up to 50K nodes. The summary-level
// invariant — summary bit w set exactly when words[w] != 0 — is asserted
// after every single mutation.
// ---------------------------------------------------------------------------

/// Machine::find_free_nodes semantics over a plain free vector: the `count`
/// lowest eligible ids, or the first `count` ids of the earliest adequate
/// run of consecutive eligible ids.
std::optional<std::vector<int>> reference_pick(const std::vector<bool>& is_free,
                                               const std::vector<int>& node_class,
                                               int count, const std::vector<int>& classes,
                                               bool contiguous) {
  std::vector<int> ids;
  for (int id = 0; id < static_cast<int>(is_free.size()); ++id) {
    if (!is_free[static_cast<std::size_t>(id)]) continue;
    for (const int cls : classes) {
      if (node_class[static_cast<std::size_t>(id)] == cls) {
        ids.push_back(id);
        break;
      }
    }
  }
  if (!contiguous) {
    if (static_cast<int>(ids.size()) < count) return std::nullopt;
    ids.resize(static_cast<std::size_t>(count));
    return ids;
  }
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= ids.size(); ++i) {
    if (i == ids.size() || ids[i] != ids[i - 1] + 1) {
      if (i - run_start >= static_cast<std::size_t>(count)) {
        return std::vector<int>(ids.begin() + static_cast<std::ptrdiff_t>(run_start),
                                ids.begin() + static_cast<std::ptrdiff_t>(run_start) +
                                    count);
      }
      run_start = i;
    }
  }
  return std::nullopt;
}

void churn_parity(int node_count, int steps, int probe_every, std::uint64_t seed) {
  std::uint64_t state = seed;
  const auto rnd = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };
  constexpr int kClasses = 3;
  std::vector<int> node_class(static_cast<std::size_t>(node_count));
  for (auto& cls : node_class) cls = static_cast<int>(rnd(kClasses));

  FreeNodeIndex bitmap(node_class, kClasses);
  std::vector<bool> is_free(static_cast<std::size_t>(node_count), true);

  const std::vector<std::vector<int>> class_lists{{0}, {1}, {2}, {0, 2}, {0, 1, 2}};
  const std::vector<int> counts{1, 2, 7, 63, 64, 65};

  std::string diag;
  for (int step = 0; step < steps; ++step) {
    const int id = static_cast<int>(rnd(static_cast<std::uint64_t>(node_count)));
    if (is_free[static_cast<std::size_t>(id)]) {
      bitmap.erase(id);
      is_free[static_cast<std::size_t>(id)] = false;
    } else {
      bitmap.insert(id);
      is_free[static_cast<std::size_t>(id)] = true;
    }

    // Summary-level invariant on the class the flip touched, after every
    // mutation — the one structural fact every word scan relies on.
    const auto& words = bitmap.words_of_class(node_class[static_cast<std::size_t>(id)]);
    const auto& summary =
        bitmap.summary_of_class(node_class[static_cast<std::size_t>(id)]);
    for (std::size_t w = 0; w < words.size(); ++w) {
      const bool bit = ((summary[w >> 6] >> (w & 63)) & 1) != 0;
      ASSERT_EQ(bit, words[w] != 0)
          << "step " << step << ": summary bit " << w << " out of sync";
    }

    if (step % probe_every != 0) continue;
    ASSERT_TRUE(bitmap.check_consistent(is_free, &diag)) << "step " << step << ": " << diag;
    for (const auto& classes : class_lists) {
      for (const bool contiguous : {false, true}) {
        for (const int count : counts) {
          const auto got = bitmap.pick(count, classes, contiguous);
          const auto want =
              reference_pick(is_free, node_class, count, classes, contiguous);
          ASSERT_EQ(got, want) << "step " << step << " nodes " << node_count << " count "
                               << count << " contiguous " << contiguous;
        }
      }
    }
  }
}

TEST(FreeNodeIndexProperty, ChurnParityTinyNonAligned) {
  churn_parity(/*node_count=*/5, /*steps=*/400, /*probe_every=*/1, 0x1234567890abcdefULL);
}

TEST(FreeNodeIndexProperty, ChurnParityExactlyOneWord) {
  churn_parity(/*node_count=*/64, /*steps=*/400, /*probe_every=*/1, 0x2468ace013579bdfULL);
}

TEST(FreeNodeIndexProperty, ChurnParityWordBoundary) {
  churn_parity(/*node_count=*/65, /*steps=*/400, /*probe_every=*/1, 0xfedcba9876543210ULL);
}

TEST(FreeNodeIndexProperty, ChurnParityTwoWordsNonAligned) {
  churn_parity(/*node_count=*/130, /*steps=*/600, /*probe_every=*/2, 0x0f1e2d3c4b5a6978ULL);
}

TEST(FreeNodeIndexProperty, ChurnParityThousandNodes) {
  churn_parity(/*node_count=*/1000, /*steps=*/600, /*probe_every=*/10, 0x13579bdf02468aceULL);
}

TEST(FreeNodeIndexProperty, ChurnParityFiftyThousandNodes) {
  // The 50K scaling case (non-64-multiple, 782 words): fewer probes — the
  // brute-force reference is O(n) per probe — but every one of the 2000
  // flips still sweeps the summary invariant.
  churn_parity(/*node_count=*/50000, /*steps=*/2000, /*probe_every=*/250,
               0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace sdsched
