#include "metrics/heatmap.h"

#include <gtest/gtest.h>

#include "util/time_utils.h"

namespace sdsched {
namespace {

JobRecord record_of(int nodes, SimTime runtime, SimTime wait = 0) {
  JobRecord record;
  record.req_nodes = nodes;
  record.base_runtime = runtime;
  record.submit = 0;
  record.start = wait;
  record.end = wait + runtime;
  return record;
}

TEST(Heatmap, DefaultGridShape) {
  const CategoryHeatmap heatmap;
  EXPECT_EQ(heatmap.rows(), 7u);
  EXPECT_EQ(heatmap.cols(), 7u);
}

TEST(Heatmap, BucketsByNodesAndRuntime) {
  CategoryHeatmap heatmap;
  heatmap.add(record_of(1, kMinute), 10.0);
  heatmap.add(record_of(1, kMinute), 20.0);
  heatmap.add(record_of(512, 18 * kHour), 5.0);
  EXPECT_DOUBLE_EQ(heatmap.mean(0, 0), 15.0);
  EXPECT_EQ(heatmap.count(0, 0), 2u);
  // 512 nodes -> row 5 (257-1024); 18h -> col 5 (<=1d).
  EXPECT_DOUBLE_EQ(heatmap.mean(5, 5), 5.0);
}

TEST(Heatmap, EmptyCellMeanIsZero) {
  const CategoryHeatmap heatmap;
  EXPECT_DOUBLE_EQ(heatmap.mean(3, 3), 0.0);
  EXPECT_EQ(heatmap.count(3, 3), 0u);
}

TEST(Heatmap, FillWithExtractor) {
  CategoryHeatmap heatmap;
  std::vector<JobRecord> records{record_of(2, kHour, 100), record_of(3, kHour, 300)};
  heatmap.fill(records, [](const JobRecord& r) { return static_cast<double>(r.wait()); });
  EXPECT_DOUBLE_EQ(heatmap.mean(1, 2), 200.0);  // both land in 2-4 nodes, <=2h
}

TEST(Heatmap, RatioDividesCellwise) {
  CategoryHeatmap sd;
  CategoryHeatmap baseline;
  baseline.add(record_of(1, kMinute), 100.0);
  sd.add(record_of(1, kMinute), 20.0);
  const auto grid = baseline.ratio(sd);
  EXPECT_DOUBLE_EQ(grid[0][0], 5.0);  // static/SD = 5x improvement
}

TEST(Heatmap, RatioOfEmptyCellsIsZero) {
  CategoryHeatmap a;
  CategoryHeatmap b;
  a.add(record_of(1, kMinute), 10.0);
  const auto grid = a.ratio(b);
  EXPECT_DOUBLE_EQ(grid[0][0], 0.0);  // other side empty
  EXPECT_DOUBLE_EQ(grid[2][2], 0.0);  // both empty
}

TEST(Heatmap, LabelsAreHuman) {
  const CategoryHeatmap heatmap;
  EXPECT_EQ(heatmap.row_label(0), "1 node");
  EXPECT_EQ(heatmap.row_label(1), "2-4 nodes");
  EXPECT_EQ(heatmap.row_label(6), "> 1024 nodes");
  EXPECT_EQ(heatmap.col_label(0), "<= 5m 00s");
}

TEST(Heatmap, RenderContainsCells) {
  CategoryHeatmap heatmap;
  heatmap.add(record_of(1, kMinute), 42.0);
  const std::string out = heatmap.render();
  EXPECT_NE(out.find("42.00"), std::string::npos);
  EXPECT_NE(out.find("1 node"), std::string::npos);
}

}  // namespace
}  // namespace sdsched
