#include "metrics/collector.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

Job completed_job(JobId id, SimTime submit, SimTime start, SimTime end, SimTime runtime,
                  bool guest = false, bool mate = false) {
  Job job;
  job.spec.id = id;
  job.spec.submit = submit;
  job.spec.base_runtime = runtime;
  job.spec.req_time = runtime;
  job.spec.req_cpus = 48;
  job.spec.req_nodes = 1;
  job.state = JobState::Completed;
  job.start_time = start;
  job.end_time = end;
  job.started_as_guest = guest;
  job.ever_mate = mate;
  return job;
}

TEST(Collector, RecordCapturesJobFields) {
  MetricsCollector collector;
  collector.on_complete(completed_job(3, 10, 50, 150, 100));
  ASSERT_EQ(collector.records().size(), 1u);
  const JobRecord& record = collector.records().front();
  EXPECT_EQ(record.id, 3u);
  EXPECT_EQ(record.wait(), 40);
  EXPECT_EQ(record.response(), 140);
  EXPECT_EQ(record.runtime(), 100);
  EXPECT_DOUBLE_EQ(record.slowdown(), 1.4);
}

TEST(Collector, BoundedSlowdownThreshold) {
  JobRecord record;
  record.submit = 0;
  record.start = 90;
  record.end = 100;
  record.base_runtime = 2;  // 2s job waited 90s: raw slowdown 50
  EXPECT_DOUBLE_EQ(record.slowdown(), 50.0);
  // Bounded with 10s floor: 100/10 = 10.
  EXPECT_DOUBLE_EQ(record.bounded_slowdown(), 10.0);
}

TEST(Collector, SummaryAggregates) {
  MetricsCollector collector;
  collector.on_complete(completed_job(0, 0, 0, 100, 100));            // sld 1
  collector.on_complete(completed_job(1, 0, 100, 200, 100, true));    // sld 2
  collector.on_complete(completed_job(2, 50, 250, 350, 100, false, true));  // sld 3
  const MetricsSummary summary = collector.summarize(96, 3 * 100.0 * 48, 12.5);

  EXPECT_EQ(summary.jobs, 3u);
  EXPECT_EQ(summary.first_submit, 0);
  EXPECT_EQ(summary.last_end, 350);
  EXPECT_EQ(summary.makespan, 350);
  EXPECT_DOUBLE_EQ(summary.avg_slowdown, 2.0);
  EXPECT_DOUBLE_EQ(summary.avg_response, (100.0 + 200.0 + 300.0) / 3.0);
  EXPECT_DOUBLE_EQ(summary.avg_wait, (0.0 + 100.0 + 200.0) / 3.0);
  EXPECT_EQ(summary.guests, 1u);
  EXPECT_EQ(summary.mates, 1u);
  EXPECT_DOUBLE_EQ(summary.energy_kwh, 12.5);
  EXPECT_DOUBLE_EQ(summary.utilization, (3 * 100.0 * 48) / (96.0 * 350.0));
}

TEST(Collector, EmptySummaryIsZero) {
  MetricsCollector collector;
  const MetricsSummary summary = collector.summarize(0, 0, 0);
  EXPECT_EQ(summary.jobs, 0u);
  EXPECT_EQ(summary.makespan, 0);
  EXPECT_DOUBLE_EQ(summary.avg_slowdown, 0.0);
}

TEST(Collector, MakespanFromFirstSubmitToLastEnd) {
  MetricsCollector collector;
  collector.on_complete(completed_job(0, 500, 600, 700, 100));
  collector.on_complete(completed_job(1, 100, 900, 1000, 100));
  const MetricsSummary summary = collector.summarize(0, 0, 0);
  EXPECT_EQ(summary.first_submit, 100);
  EXPECT_EQ(summary.last_end, 1000);
  EXPECT_EQ(summary.makespan, 900);
}

}  // namespace
}  // namespace sdsched
