#include "metrics/timeseries.h"

#include <gtest/gtest.h>

#include "util/time_utils.h"

namespace sdsched {
namespace {

JobRecord record_of(SimTime submit, SimTime start, SimTime end, SimTime runtime,
                    bool guest = false) {
  JobRecord record;
  record.submit = submit;
  record.start = start;
  record.end = end;
  record.base_runtime = runtime;
  record.was_guest = guest;
  return record;
}

TEST(DailySeries, EmptyRecords) {
  const DailySeries series = DailySeries::from_records({});
  EXPECT_EQ(series.days(), 0u);
}

TEST(DailySeries, GroupsByEndDay) {
  std::vector<JobRecord> records{
      record_of(0, 0, kHour, kHour),                    // day 0, sld 1
      record_of(0, kHour, 3 * kHour, kHour),            // day 0, sld 3
      record_of(0, kDay, kDay + kHour, kHour),          // day 1, sld 25
  };
  const DailySeries series = DailySeries::from_records(records);
  ASSERT_EQ(series.days(), 2u);
  EXPECT_DOUBLE_EQ(series.points()[0].avg_slowdown, 2.0);
  EXPECT_EQ(series.points()[0].jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(series.points()[1].avg_slowdown, 25.0);
}

TEST(DailySeries, MalleableCountsByStartDay) {
  std::vector<JobRecord> records{
      record_of(0, kDay / 2, 2 * kDay, kDay, true),   // guest starts day 0, ends day 2
      record_of(0, kDay + 1, 2 * kDay, kDay, true),   // guest starts day 1
      record_of(0, 0, kHour, kHour, false),
  };
  const DailySeries series = DailySeries::from_records(records);
  ASSERT_EQ(series.days(), 3u);
  EXPECT_EQ(series.points()[0].malleable_scheduled, 1u);
  EXPECT_EQ(series.points()[1].malleable_scheduled, 1u);
  EXPECT_EQ(series.points()[2].malleable_scheduled, 0u);
}

TEST(DailySeries, OriginIsFirstSubmit) {
  // All activity shifted by 10 days: the series still starts at day 0.
  const SimTime off = 10 * kDay;
  std::vector<JobRecord> records{record_of(off, off, off + kHour, kHour)};
  const DailySeries series = DailySeries::from_records(records);
  EXPECT_EQ(series.days(), 1u);
  EXPECT_EQ(series.points()[0].jobs_completed, 1u);
}

TEST(DailySeries, RenderIncludesBaseline) {
  std::vector<JobRecord> a{record_of(0, 0, kHour, kHour)};
  std::vector<JobRecord> b{record_of(0, kHour, 2 * kHour, kHour)};
  const DailySeries sd = DailySeries::from_records(a);
  const DailySeries base = DailySeries::from_records(b);
  const std::string out = sd.render(&base);
  EXPECT_NE(out.find("baseline_avg_slowdown"), std::string::npos);
  EXPECT_NE(out.find("malleable_scheduled"), std::string::npos);
}

TEST(DailySeries, IdleDaysAreZeroFilled) {
  std::vector<JobRecord> records{
      record_of(0, 0, kHour, kHour),
      record_of(0, 5 * kDay, 5 * kDay + kHour, kHour),
  };
  const DailySeries series = DailySeries::from_records(records);
  ASSERT_EQ(series.days(), 6u);
  for (std::size_t d = 1; d <= 4; ++d) {
    EXPECT_EQ(series.points()[d].jobs_completed, 0u);
    EXPECT_DOUBLE_EQ(series.points()[d].avg_slowdown, 0.0);
  }
}

}  // namespace
}  // namespace sdsched
