#include "workload/cirne.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sdsched {
namespace {

CirneConfig small_config() {
  CirneConfig config;
  config.n_jobs = 500;
  config.system_nodes = 64;
  config.cores_per_node = 48;
  config.max_job_nodes = 16;
  config.seed = 99;
  return config;
}

TEST(Cirne, GeneratesRequestedJobCount) {
  const Workload w = generate_cirne(small_config());
  EXPECT_EQ(w.size(), 500u);
}

TEST(Cirne, DeterministicInSeed) {
  const Workload a = generate_cirne(small_config());
  const Workload b = generate_cirne(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_EQ(a.jobs()[i].base_runtime, b.jobs()[i].base_runtime);
    EXPECT_EQ(a.jobs()[i].req_cpus, b.jobs()[i].req_cpus);
  }
}

TEST(Cirne, DifferentSeedsDiffer) {
  auto config = small_config();
  const Workload a = generate_cirne(config);
  config.seed = 100;
  const Workload b = generate_cirne(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.jobs()[i].base_runtime != b.jobs()[i].base_runtime;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cirne, RespectsSizeBounds) {
  const auto config = small_config();
  const Workload w = generate_cirne(config);
  for (const auto& spec : w.jobs()) {
    EXPECT_GE(spec.req_nodes, 1);
    EXPECT_LE(spec.req_nodes, config.max_job_nodes);
    EXPECT_GE(spec.base_runtime, 1);
    EXPECT_LE(spec.base_runtime, config.max_runtime);
    EXPECT_GE(spec.req_time, spec.base_runtime);
  }
}

TEST(Cirne, IdealEstimatesMatchRuntime) {
  auto config = small_config();
  config.ideal_estimates = true;
  const Workload w = generate_cirne(config);
  for (const auto& spec : w.jobs()) {
    EXPECT_EQ(spec.req_time, spec.base_runtime);
  }
}

TEST(Cirne, NonIdealEstimatesOverestimate) {
  const Workload w = generate_cirne(small_config());
  std::size_t over = 0;
  for (const auto& spec : w.jobs()) {
    if (spec.req_time > spec.base_runtime) ++over;
  }
  // The Cirne user-estimate model overshoots for nearly all jobs.
  EXPECT_GT(over, w.size() * 8 / 10);
}

TEST(Cirne, OfferedLoadNearTarget) {
  auto config = small_config();
  config.target_load = 1.2;
  const Workload w = generate_cirne(config);
  const double load = w.offered_load(config.system_nodes * config.cores_per_node);
  EXPECT_GT(load, 0.8);
  EXPECT_LT(load, 1.8);
}

TEST(Cirne, MalleabilityFractionHonoured) {
  auto config = small_config();
  config.pct_malleable = 0.5;
  const Workload w = generate_cirne(config);
  std::size_t malleable = 0;
  for (const auto& spec : w.jobs()) {
    if (spec.malleability == MalleabilityClass::Malleable) ++malleable;
  }
  const double frac = static_cast<double>(malleable) / static_cast<double>(w.size());
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(Cirne, SubmitsAreSorted) {
  const Workload w = generate_cirne(small_config());
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LE(w.jobs()[i - 1].submit, w.jobs()[i].submit);
  }
}

TEST(ArrivalPattern, AnlIsMeanNormalized) {
  const auto pattern = ArrivalPattern::anl();
  double sum = 0.0;
  for (const double w : pattern.hourly_weights) sum += w;
  EXPECT_NEAR(sum, 24.0, 1e-9);
  // Working hours are busier than night.
  EXPECT_GT(pattern.hourly_weights[11], pattern.hourly_weights[3] * 3);
}

TEST(ArrivalPattern, GenerateArrivalsCountAndOrder) {
  Rng rng(5);
  const auto arrivals = generate_arrivals(200, 2 * kDay, ArrivalPattern::anl(), rng);
  ASSERT_EQ(arrivals.size(), 200u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1], arrivals[i]);
  }
  EXPECT_GE(arrivals.front(), 0);
}

TEST(ArrivalPattern, DiurnalConcentration) {
  Rng rng(6);
  const auto arrivals = generate_arrivals(5000, 10 * kDay, ArrivalPattern::anl(), rng);
  std::size_t work_hours = 0;
  for (const SimTime t : arrivals) {
    const SimTime hour = second_of_day(t) / kHour;
    if (hour >= 9 && hour < 18) ++work_hours;
  }
  // 9 of 24 hours carry well over half the arrivals under the ANL cycle.
  EXPECT_GT(work_hours, arrivals.size() / 2);
}

}  // namespace
}  // namespace sdsched
