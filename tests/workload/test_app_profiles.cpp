#include "workload/app_profiles.h"

#include <gtest/gtest.h>

#include "workload/cirne.h"

namespace sdsched {
namespace {

TEST(AppProfiles, Table2SharesSumToOne) {
  double total = 0.0;
  for (const auto& profile : table2_profiles()) {
    total += profile.workload_share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AppProfiles, Table2Membership) {
  EXPECT_EQ(table2_profiles().size(), 5u);
  EXPECT_GE(profile_index("PILS"), 0);
  EXPECT_GE(profile_index("STREAM"), 0);
  EXPECT_GE(profile_index("CoreNeuron"), 0);
  EXPECT_GE(profile_index("NEST"), 0);
  EXPECT_GE(profile_index("Alya"), 0);
  EXPECT_EQ(profile_index("nonexistent"), -1);
}

TEST(AppProfiles, BehaviouralContrasts) {
  const auto& profiles = table2_profiles();
  const auto& pils = profiles[profile_index("PILS")];
  const auto& stream = profiles[profile_index("STREAM")];
  // PILS is compute-bound and perfectly scalable; STREAM the opposite.
  EXPECT_GT(pils.cpu_utilization, stream.cpu_utilization);
  EXPECT_LT(pils.mem_utilization, stream.mem_utilization);
  EXPECT_GT(pils.scalability_alpha, stream.scalability_alpha);
  EXPECT_LT(pils.mem_bw_per_core, stream.mem_bw_per_core);
}

TEST(AppProfiles, AssignmentFollowsShares) {
  CirneConfig config;
  config.n_jobs = 5000;
  config.system_nodes = 32;
  config.seed = 7;
  Workload w = generate_cirne(config);
  assign_applications(w, 123);

  std::vector<std::size_t> counts(table2_profiles().size(), 0);
  for (const auto& spec : w.jobs()) {
    ASSERT_GE(spec.app_profile, 0);
    ASSERT_LT(spec.app_profile, static_cast<int>(counts.size()));
    ++counts[spec.app_profile];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expected = table2_profiles()[i].workload_share;
    const double actual = static_cast<double>(counts[i]) / static_cast<double>(w.size());
    EXPECT_NEAR(actual, expected, 0.03) << table2_profiles()[i].name;
  }
}

TEST(AppProfiles, AssignmentDeterministic) {
  CirneConfig config;
  config.n_jobs = 200;
  config.system_nodes = 16;
  Workload a = generate_cirne(config);
  Workload b = generate_cirne(config);
  assign_applications(a, 9);
  assign_applications(b, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].app_profile, b.jobs()[i].app_profile);
  }
}

}  // namespace
}  // namespace sdsched
