// Parity and property tests for the chunked streaming SWF reader
// (workload/swf_stream.h): the production `read_swf` must be byte-identical
// to `read_swf_reference` (the historical getline+istringstream path, kept
// as the parity oracle) for every chunk size — including 1 byte, where
// every line is carried across refill boundaries — and on the bundled
// trace fixtures.
#include "workload/swf_stream.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "workload/swf.h"
#include "workload/trace_catalog.h"

namespace sdsched {
namespace {

// Deliberately awkward input: headers, comments, a blank line, a CRLF row,
// a cancelled row (dropped by default), failed rows with the archives'
// -1/0 placeholders (kept + sanitized), a row with only the 12 leading
// fields, and rows long enough that small chunks split them mid-field.
constexpr const char* kAwkwardSwf =
    "; Synthetic parity sample\n"
    "; MaxNodes: 64\n"
    "; MaxProcs: 512\n"
    "\n"
    "1 0 10 100 8 -1 -1 8 200 -1 1 5 -1 -1 -1 -1 -1 -1\n"
    "2 50 -1 300 16 -1 -1 -1 600 -1 1 6 -1 -1 -1 -1 -1 -1\r\n"
    "3 60 -1 30 4 -1 -1 4 -1 -1 5 7 -1 -1 -1 -1 -1 -1\n"
    "4 70 -1 -1 4 -1 -1 4 -1 -1 0 8 -1 -1 -1 -1 -1 -1\n"
    "5 -5 -1 0 4 -1 -1 4 50 -1 0 8 -1 -1 -1 -1 -1 -1\n"
    "6 200 -1 40 2 -1 -1 2 80 -1 1 9\n"
    "7 200 -1 41 2 -1 -1 2 81 -1 1 9 -1 -1 -1 -1 -1 -1\n"
    "8 200 -1 42 2 -1 -1 2 82 -1 1 9 -1 -1 -1 -1 -1 -1\n"
    "9 1000000 -1 123456 128 -1 -1 128 654321 -1 1 10 -1 -1 -1 -1 -1 -1\n";

/// The canonical byte form both readers must agree on: the serialized
/// workload plus the header fields the serialization does not carry.
std::string canonical(const Workload& workload) {
  std::ostringstream out;
  out << workload.info().name << '|' << workload.info().system_nodes << '|'
      << workload.info().cores_per_node << '\n';
  write_swf(out, workload);
  return out.str();
}

// Every chunk size from 1 byte to past the whole sample: each boundary
// position splits some row (and at size 1, every row), so the carry path
// is exercised at every possible split point.
TEST(SwfStream, ChunkSizeParitySweep) {
  const std::string text = kAwkwardSwf;
  std::istringstream reference_in(text);
  const Workload reference = read_swf_reference(reference_in);
  const std::string want = canonical(reference);
  ASSERT_EQ(reference.size(), 8u);  // cancelled row dropped, failed rows kept

  for (std::size_t chunk = 1; chunk <= text.size() + 7; ++chunk) {
    std::istringstream in(text);
    const Workload chunked = read_swf(in, SwfReadOptions{}, chunk);
    ASSERT_EQ(canonical(chunked), want) << "chunk size " << chunk;
  }
}

TEST(SwfStream, ParityUnderNonDefaultOptions) {
  SwfReadOptions options;
  options.skip_failed = true;
  options.skip_cancelled = false;
  options.sanitize = false;
  options.default_malleability = MalleabilityClass::Rigid;
  const std::string text = kAwkwardSwf;
  std::istringstream reference_in(text);
  const Workload reference = read_swf_reference(reference_in, options);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    std::istringstream in(text);
    ASSERT_EQ(canonical(read_swf(in, options, chunk)), canonical(reference))
        << "chunk size " << chunk;
  }
}

// The acceptance pin: on both bundled trace fixtures the streaming reader
// and the reference reader produce byte-identical Workloads.
TEST(SwfStream, BundledFixturesParity) {
  for (const TraceInfo& info : trace_catalog()) {
    const std::string path = default_fixture_path(info);
    std::ifstream probe(path);
    ASSERT_TRUE(probe.good()) << "missing bundled fixture " << path;

    std::ifstream chunked_in(path, std::ios::binary);
    const Workload chunked = read_swf(chunked_in);
    std::ifstream reference_in(path, std::ios::binary);
    const Workload reference = read_swf_reference(reference_in);
    EXPECT_GT(chunked.size(), 2000u) << path;
    EXPECT_EQ(canonical(chunked), canonical(reference)) << path;
  }
}

TEST(SwfStream, StatsCountRowsFiltersAndBursts) {
  std::istringstream in(kAwkwardSwf);
  SwfJobStream stream(in, SwfReadOptions{});
  JobSpec spec;
  std::size_t delivered = 0;
  while (stream.next(spec)) ++delivered;
  const SwfStreamStats& stats = stream.stats();
  EXPECT_EQ(delivered, 8u);
  EXPECT_EQ(stats.rows, 8u);
  EXPECT_EQ(stats.rows_filtered, 1u);  // the cancelled row
  EXPECT_EQ(stats.lines, 13u);         // headers, blank and data lines alike
  EXPECT_EQ(stats.bytes_consumed, std::string(kAwkwardSwf).size());
  EXPECT_EQ(stats.first_submit, 0);
  EXPECT_EQ(stats.last_submit, 1000000);
  // Rows 6/7/8 share submit 200: one 3-row group = 2 same-second followers.
  EXPECT_EQ(stats.same_second_submits, 2u);
  EXPECT_EQ(stats.max_submit_burst, 3u);
}

// The sanitize warning fires once per stream no matter how many rows were
// clamped — and only after the scan ends, with the full count.
TEST(SwfStream, SanitizeWarnsOnceAfterDrain) {
  std::istringstream in(kAwkwardSwf);
  {
    SwfJobStream stream(in, SwfReadOptions{});
    JobSpec spec;
    std::size_t seen = 0;
    while (stream.next(spec)) {
      ++seen;
      // Mid-stream, clamps accumulate but the warning has not fired.
      EXPECT_EQ(stream.stats().sanitize_warnings, 0u) << "row " << seen;
    }
    EXPECT_EQ(stream.stats().sanitized, 2u);  // rows 4 and 5
    EXPECT_EQ(stream.stats().sanitize_warnings, 1u);
  }
}

// An abandoned scan (destructor without drain) still warns exactly once —
// the contract the whole-file reader's callers rely on.
TEST(SwfStream, SanitizeWarnsOnceOnAbandonedScan) {
  std::istringstream in(
      "1 -5 -1 100 8 -1 -1 8 30 -1 1 5 -1 -1 -1 -1 -1 -1\n"
      "2 0 -1 100 8 -1 -1 8 300 -1 1 5 -1 -1 -1 -1 -1 -1\n");
  SwfStreamStats stats;
  {
    SwfJobStream stream(in, SwfReadOptions{});
    JobSpec spec;
    ASSERT_TRUE(stream.next(spec));  // consume only the clamped row
    stats = stream.stats();
    EXPECT_EQ(stats.sanitized, 1u);
    EXPECT_EQ(stats.sanitize_warnings, 0u);
  }
  // The warning fired in the destructor; stats was captured before, so the
  // observable contract is simply that nothing fired early.
}

// A soak run opens one stream per (trace, tier) read and every one clamps
// the same archive rows: the per-stream warn-once counter still ticks on
// each stream (the stats contract above is unchanged), but the *emission*
// is deduped process-wide — the second and later clamping streams stay
// silent instead of repeating an identical message per tier.
TEST(SwfStream, SanitizeWarningEmissionDedupedAcrossStreams) {
  constexpr const char* kClampingRow = "1 -5 -1 100 8 -1 -1 8 30 -1 1 5\n";
  SwfJobStream::reset_sanitize_warning_guard();
  EXPECT_EQ(SwfJobStream::sanitize_warnings_emitted(), 0u);

  for (int pass = 0; pass < 3; ++pass) {
    std::istringstream in(kClampingRow);
    SwfJobStream stream(in, SwfReadOptions{});
    JobSpec spec;
    while (stream.next(spec)) {
    }
    EXPECT_EQ(stream.stats().sanitized, 1u);
    EXPECT_EQ(stream.stats().sanitize_warnings, 1u)
        << "per-stream warn-once contract broke on pass " << pass;
    EXPECT_EQ(SwfJobStream::sanitize_warnings_emitted(), 1u)
        << "process-wide dedupe broke on pass " << pass;
  }

  // The guard re-arms for the next soak run (or test).
  SwfJobStream::reset_sanitize_warning_guard();
  EXPECT_EQ(SwfJobStream::sanitize_warnings_emitted(), 0u);
}

// max_jobs stops the scan where it stands: with a small chunk, the bytes
// consumed stay near the cap — the remainder of the file (here: rows that
// would throw if parsed) is never read.
TEST(SwfStream, MaxJobsStopsWithoutReadingRemainder) {
  std::string text;
  for (int i = 0; i < 4; ++i) {
    text += std::to_string(i + 1) +
            " 0 -1 100 8 -1 -1 8 200 -1 1 5 -1 -1 -1 -1 -1 -1\n";
  }
  const std::size_t good_bytes = text.size();
  for (int i = 0; i < 200; ++i) {
    text += "this is not an swf row and parsing it would throw\n";
  }

  SwfReadOptions options;
  options.max_jobs = 4;
  std::istringstream in(text);
  constexpr std::size_t kChunk = 32;
  SwfJobStream stream(in, options, kChunk);
  JobSpec spec;
  std::size_t delivered = 0;
  while (stream.next(spec)) ++delivered;
  EXPECT_EQ(delivered, 4u);
  // At most one extra chunk past the last good row is buffered; the
  // malformed tail stays unread (and therefore never throws).
  EXPECT_LE(stream.stats().bytes_consumed, good_bytes + kChunk);
  EXPECT_LT(stream.stats().bytes_consumed, text.size());

  // The whole-file wrapper inherits the early stop.
  std::istringstream whole_in(text);
  EXPECT_EQ(read_swf(whole_in, options, kChunk).size(), 4u);
}

// A file that ends without a trailing newline must still deliver the last
// row, at every chunk size around the boundary.
TEST(SwfStream, FinalLineWithoutNewline) {
  const std::string text =
      "1 0 -1 100 8 -1 -1 8 200 -1 1 5 -1 -1 -1 -1 -1 -1\n"
      "2 9 -1 100 8 -1 -1 8 200 -1 1 5 -1 -1 -1 -1 -1 -1";
  std::istringstream reference_in(text);
  const Workload reference = read_swf_reference(reference_in);
  ASSERT_EQ(reference.size(), 2u);
  for (std::size_t chunk = 1; chunk <= text.size() + 2; ++chunk) {
    std::istringstream in(text);
    ASSERT_EQ(canonical(read_swf(in, SwfReadOptions{}, chunk)), canonical(reference))
        << "chunk size " << chunk;
  }
}

TEST(SwfStream, MalformedRowThrowsLikeReference) {
  const std::string text = "1 2 3\n";
  std::istringstream in(text);
  EXPECT_THROW(read_swf(in, SwfReadOptions{}, 4), std::runtime_error);
}

}  // namespace
}  // namespace sdsched
