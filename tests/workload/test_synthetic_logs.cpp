#include "workload/synthetic_logs.h"

#include <gtest/gtest.h>

#include "workload/workload_stats.h"

namespace sdsched {
namespace {

TEST(RiccLike, MatchesPaperShapeAtScale) {
  RiccConfig config;
  config.scale = 0.05;  // 512 jobs on 51 nodes
  const Workload w = generate_ricc_like(config);
  const WorkloadStats stats = characterize(w);
  EXPECT_EQ(stats.n_jobs, 500u);
  EXPECT_EQ(w.info().cores_per_node, 8);
  // Small jobs dominate (the paper calls RICC out for exactly this).
  std::size_t single_node = 0;
  for (const auto& spec : w.jobs()) {
    if (spec.req_nodes == 1) ++single_node;
    EXPECT_LE(spec.base_runtime, 4 * kDay);
  }
  EXPECT_GT(single_node, w.size() / 2);
}

TEST(RiccLike, FullScaleDimensions) {
  RiccConfig config;
  config.scale = 1.0;
  config.base_jobs = 1000;  // keep the test fast; nodes at paper scale
  const Workload w = generate_ricc_like(config);
  EXPECT_EQ(w.info().system_nodes, 1024);
  WorkloadStats stats = characterize(w);
  EXPECT_LE(stats.max_job_nodes, 72);
}

TEST(CurieLike, ScalesJobsAndNodesTogether) {
  CurieConfig config;
  config.scale = 0.01;
  const Workload w = generate_curie_like(config);
  EXPECT_NEAR(static_cast<double>(w.info().system_nodes), 50.4, 1.0);
  EXPECT_NEAR(static_cast<double>(w.size()), 1985.0, 25.0);
  EXPECT_EQ(w.info().cores_per_node, 16);
}

TEST(CurieLike, ShortSmallJobsDominate) {
  CurieConfig config;
  config.scale = 0.02;
  const Workload w = generate_curie_like(config);
  std::size_t short_jobs = 0;
  std::size_t one_node = 0;
  for (const auto& spec : w.jobs()) {
    if (spec.base_runtime <= kHour) ++short_jobs;
    if (spec.req_nodes == 1) ++one_node;
  }
  EXPECT_GT(short_jobs, w.size() / 2);
  EXPECT_GT(one_node, w.size() / 2);
}

TEST(CurieLike, Deterministic) {
  CurieConfig config;
  config.scale = 0.01;
  const Workload a = generate_curie_like(config);
  const Workload b = generate_curie_like(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a.jobs()[i].base_runtime, b.jobs()[i].base_runtime);
    EXPECT_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
  }
}

TEST(SyntheticLogs, RequestedTimesOverestimate) {
  RiccConfig config;
  config.scale = 0.05;
  const Workload w = generate_ricc_like(config);
  double accuracy_sum = 0.0;
  for (const auto& spec : w.jobs()) {
    EXPECT_GE(spec.req_time, spec.base_runtime);
    accuracy_sum += static_cast<double>(spec.base_runtime) /
                    static_cast<double>(spec.req_time);
  }
  // Mean accuracy well below 1: users overestimate, which backfill relies on.
  EXPECT_LT(accuracy_sum / static_cast<double>(w.size()), 0.7);
}

TEST(WorkloadStats, SubmitBurstStatsArePinned) {
  // Regression for the detlint D1 audit: submit_groups used to be an
  // unordered_map iterated for the burst aggregates. The sums are
  // order-independent, so this pins the exact values a hand-built trace
  // must produce — any container or iteration change that alters them is
  // a real behavior change, not an order artifact.
  std::vector<JobSpec> jobs;
  const SimTime submits[] = {100, 100, 100, 250, 400, 400, 500};
  JobId id = 0;
  for (const SimTime t : submits) {
    JobSpec spec;
    spec.id = id++;
    spec.submit = t;
    spec.base_runtime = 60;
    spec.req_time = 120;
    spec.req_cpus = 8;
    spec.req_nodes = 1;
    jobs.push_back(spec);
  }
  const Workload w{WorkloadInfo{"burst-pin", 4, 8}, std::move(jobs)};
  const WorkloadStats stats = characterize(w);
  EXPECT_EQ(stats.distinct_submit_times, 4u);  // {100, 250, 400, 500}
  EXPECT_EQ(stats.same_time_submits, 5u);      // 3 at t=100 + 2 at t=400
  EXPECT_EQ(stats.max_submit_burst, 3u);       // the t=100 group
  EXPECT_EQ(stats.submit_span, 400);           // 500 - 100
}

TEST(WorkloadStats, CharacterizeReportsExtremes) {
  CurieConfig config;
  config.scale = 0.01;
  const Workload w = generate_curie_like(config);
  const WorkloadStats stats = characterize(w);
  EXPECT_EQ(stats.n_jobs, w.size());
  EXPECT_GT(stats.max_job_nodes, 1);
  EXPECT_GT(stats.submit_span, 0);
  EXPECT_GT(stats.mean_runtime, stats.median_runtime);  // heavy tail
  EXPECT_DOUBLE_EQ(stats.pct_malleable, 1.0);
  EXPECT_FALSE(to_string(stats).empty());
}

}  // namespace
}  // namespace sdsched
