#include "workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sdsched {
namespace {

constexpr const char* kSampleSwf =
    "; Comment line\n"
    "; MaxNodes: 64\n"
    "; MaxProcs: 512\n"
    "1 0 10 100 8 -1 -1 8 200 -1 1 5 -1 -1 -1 -1 -1 -1\n"
    "2 50 -1 300 16 -1 -1 -1 600 -1 1 6 -1 -1 -1 -1 -1 -1\n"
    "3 60 -1 30 4 -1 -1 4 -1 -1 5 7 -1 -1 -1 -1 -1 -1\n"   // cancelled
    "4 70 -1 40 4 -1 -1 4 50 -1 0 8 -1 -1 -1 -1 -1 -1\n";  // failed

TEST(Swf, ParsesHeaderAndFields) {
  std::istringstream in(kSampleSwf);
  const Workload w = read_swf(in);
  EXPECT_EQ(w.info().system_nodes, 64);
  EXPECT_EQ(w.info().cores_per_node, 8);
  ASSERT_EQ(w.size(), 3u);  // cancelled dropped by default
  const JobSpec& first = w.jobs().front();
  EXPECT_EQ(first.submit, 0);
  EXPECT_EQ(first.base_runtime, 100);
  EXPECT_EQ(first.req_cpus, 8);
  EXPECT_EQ(first.req_time, 200);
  EXPECT_EQ(first.user_id, 5);
}

TEST(Swf, RequestedProcsFallsBackToAllocated) {
  std::istringstream in(kSampleSwf);
  const Workload w = read_swf(in);
  EXPECT_EQ(w.jobs()[1].req_cpus, 16);  // field 8 is -1, field 5 is 16
}

TEST(Swf, MissingRequestedTimeUsesRuntime) {
  std::istringstream in("5 0 -1 77 4 -1 -1 4 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.jobs().front().req_time, 77);
}

TEST(Swf, SkipOptions) {
  SwfReadOptions keep_all;
  keep_all.skip_cancelled = false;
  keep_all.skip_failed = false;
  std::istringstream in1(kSampleSwf);
  EXPECT_EQ(read_swf(in1, keep_all).size(), 4u);

  SwfReadOptions strict;
  strict.skip_cancelled = true;
  strict.skip_failed = true;
  std::istringstream in2(kSampleSwf);
  EXPECT_EQ(read_swf(in2, strict).size(), 2u);
}

// skip_failed is asymmetric by design: failed (status 0) jobs are *kept* by
// default, but the archives record them with -1/0 run times that used to
// produce degenerate JobSpecs which prepare_for() silently dropped. The
// default sanitize option clamps them (and warns once per read) instead.
TEST(Swf, KeptFailedJobWithDegenerateRuntimeIsClamped) {
  std::istringstream in(
      "1 0 -1 100 8 -1 -1 8 200 -1 1 5 -1 -1 -1 -1 -1 -1\n"
      "2 70 -1 -1 4 -1 -1 4 -1 -1 0 8 -1 -1 -1 -1 -1 -1\n"   // failed, runtime -1
      "3 80 -1 0 4 -1 -1 4 50 -1 0 8 -1 -1 -1 -1 -1 -1\n");  // failed, runtime 0
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 3u);  // failed jobs kept by default
  EXPECT_EQ(w.jobs()[1].base_runtime, 1);
  EXPECT_EQ(w.jobs()[1].req_time, 1);  // request fell back to the clamped runtime
  EXPECT_EQ(w.jobs()[2].base_runtime, 1);
  EXPECT_EQ(w.jobs()[2].req_time, 50);

  // The clamped specs survive preparation instead of being silently dropped.
  Workload prepared = w;
  EXPECT_EQ(prepared.prepare_for(64, 8), 0u);
  EXPECT_EQ(prepared.size(), 3u);
}

TEST(Swf, SanitizeClampsNegativeSubmitAndLowRequest) {
  std::istringstream in("1 -5 -1 100 8 -1 -1 8 30 -1 1 5 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.jobs().front().submit, 0);
  EXPECT_EQ(w.jobs().front().req_time, 100);  // raised to the run time
}

TEST(Swf, SanitizeDisabledKeepsRawValues) {
  SwfReadOptions raw;
  raw.sanitize = false;
  std::istringstream in("2 70 -1 -1 4 -1 -1 4 -1 -1 0 8 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in, raw);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.jobs().front().base_runtime, -1);
  EXPECT_EQ(w.jobs().front().req_time, -1);
}

TEST(Swf, MaxJobsTruncates) {
  SwfReadOptions options;
  options.max_jobs = 1;
  std::istringstream in(kSampleSwf);
  EXPECT_EQ(read_swf(in, options).size(), 1u);
}

TEST(Swf, MalformedLineThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(Swf, RoundTripPreservesJobs) {
  Workload original;
  original.info() = {"rt", 16, 8};
  for (int i = 0; i < 5; ++i) {
    JobSpec spec;
    spec.submit = i * 100;
    spec.base_runtime = 50 + i;
    spec.req_cpus = 8 * (i + 1);
    spec.req_time = 100 + i;
    spec.user_id = i;
    original.add(spec);
  }
  original.normalize();

  std::ostringstream out;
  write_swf(out, original);
  std::istringstream in(out.str());
  const Workload reread = read_swf(in);

  ASSERT_EQ(reread.size(), original.size());
  EXPECT_EQ(reread.info().system_nodes, 16);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread.jobs()[i].submit, original.jobs()[i].submit);
    EXPECT_EQ(reread.jobs()[i].base_runtime, original.jobs()[i].base_runtime);
    EXPECT_EQ(reread.jobs()[i].req_cpus, original.jobs()[i].req_cpus);
    EXPECT_EQ(reread.jobs()[i].req_time, original.jobs()[i].req_time);
  }
}

TEST(Swf, DefaultMalleabilityOption) {
  SwfReadOptions options;
  options.default_malleability = MalleabilityClass::Rigid;
  std::istringstream in("1 0 -1 10 4 -1 -1 4 20 -1 1 1 -1 -1 -1 -1 -1 -1\n");
  const Workload w = read_swf(in, options);
  EXPECT_EQ(w.jobs().front().malleability, MalleabilityClass::Rigid);
}

TEST(Workload, PrepareForClampsAndDerives) {
  Workload w;
  JobSpec spec;
  spec.submit = 10;
  spec.base_runtime = 100;
  spec.req_time = 50;   // below runtime: must be raised
  spec.req_cpus = 9999; // beyond machine: must be clamped
  w.add(spec);
  JobSpec bad;
  bad.base_runtime = 0;  // dropped
  w.add(bad);
  const auto dropped = w.prepare_for(4, 8);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.jobs().front().req_cpus, 32);
  EXPECT_EQ(w.jobs().front().req_nodes, 4);
  EXPECT_GE(w.jobs().front().req_time, 100);
}

TEST(Workload, NormalizeSortsAndRenumbers) {
  Workload w;
  JobSpec a;
  a.submit = 200;
  JobSpec b;
  b.submit = 100;
  w.add(a);
  w.add(b);
  w.normalize();
  EXPECT_EQ(w.jobs()[0].submit, 100);
  EXPECT_EQ(w.jobs()[0].id, 0u);
  EXPECT_EQ(w.jobs()[1].id, 1u);
}

TEST(Workload, OfferedLoadComputation) {
  Workload w;
  JobSpec spec;
  spec.base_runtime = 100;
  spec.req_cpus = 10;
  spec.submit = 0;
  w.add(spec);
  spec.submit = 100;
  w.add(spec);
  // work = 2 * 1000 core-s over a 100s span on 20 cores -> load 1.0
  EXPECT_DOUBLE_EQ(w.offered_load(20), 1.0);
}

}  // namespace
}  // namespace sdsched
