#include "workload/trace_catalog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "workload/swf.h"
#include "workload/workload_stats.h"

namespace sdsched {
namespace {

TEST(TraceCatalog, RegistersCurieAndRicc) {
  ASSERT_GE(trace_catalog().size(), 2u);
  const TraceInfo* curie = find_trace("curie");
  ASSERT_NE(curie, nullptr);
  EXPECT_EQ(curie->nodes, 5040);
  EXPECT_EQ(curie->cores_per_node, 16);
  EXPECT_GT(curie->burst_fraction, 0.0);
  const TraceInfo* ricc = find_trace("ricc");
  ASSERT_NE(ricc, nullptr);
  EXPECT_EQ(ricc->nodes, 1024);
  EXPECT_EQ(find_trace("nonexistent"), nullptr);
  EXPECT_THROW((void)load_trace("nonexistent"), std::invalid_argument);
}

TEST(TraceCatalog, SynthesizeLikeIsDeterministicAndBursty) {
  const TraceInfo& info = *find_trace("curie");
  const Workload a = synthesize_like(info, /*scale=*/0.002, /*seed=*/42);
  const Workload b = synthesize_like(info, /*scale=*/0.002, /*seed=*/42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_EQ(a.jobs()[i].base_runtime, b.jobs()[i].base_runtime);
    EXPECT_EQ(a.jobs()[i].req_cpus, b.jobs()[i].req_cpus);
  }
  const Workload c = synthesize_like(info, /*scale=*/0.002, /*seed=*/43);
  EXPECT_NE(c.jobs()[0].base_runtime * c.jobs()[1].base_runtime,
            a.jobs()[0].base_runtime * a.jobs()[1].base_runtime);

  // The burst layer is the point: same-second submit groups must exist.
  // (No upper bound is asserted: max_burst caps the *drawn* group, but
  // arrivals that naturally share the leader's second are absorbed into it,
  // so a pathological base draw could legally exceed it.)
  const WorkloadStats stats = characterize(a);
  EXPECT_GT(stats.same_time_submits, 0u);
  EXPECT_GT(stats.max_submit_burst, 1u);
  EXPECT_TRUE(validate_trace(a, info).ok);
}

TEST(TraceCatalog, LoadTraceFromFixtureKeepsFullMachineAndBursts) {
  for (const char* name : {"curie", "ricc"}) {
    const LoadedTrace loaded = load_trace(name);
    const TraceInfo& info = loaded.info;
    EXPECT_TRUE(loaded.from_fixture) << name << " fixture missing under data/traces";
    EXPECT_EQ(loaded.workload.info().system_nodes, info.nodes);
    EXPECT_EQ(loaded.workload.info().cores_per_node, info.cores_per_node);
    EXPECT_EQ(loaded.workload.info().name, info.name);
    EXPECT_TRUE(loaded.workload.prepared_for(info.nodes, info.cores_per_node));
    const TraceValidation validation = validate_trace(loaded.workload, info);
    EXPECT_TRUE(validation.ok) << (validation.issues.empty() ? std::string("?")
                                                             : validation.issues.front());
    EXPECT_GT(validation.stats.same_time_submits, 0u);
    // Sanitization: the fixtures deliberately carry failed rows with the
    // archives' "-1 runtime" quirk; every loaded spec must be runnable.
    for (const auto& spec : loaded.workload.jobs()) {
      EXPECT_GE(spec.base_runtime, 1);
      EXPECT_GE(spec.req_time, spec.base_runtime);
      EXPECT_GE(spec.submit, 0);
    }
  }
}

TEST(TraceCatalog, FixtureScaleKeepsEarliestFraction) {
  const LoadedTrace full = load_trace("ricc");
  TraceLoadOptions options;
  options.scale = 0.25;
  const LoadedTrace quarter = load_trace("ricc", options);
  ASSERT_LT(quarter.workload.size(), full.workload.size());
  ASSERT_GE(quarter.workload.size(), 50u);
  for (std::size_t i = 0; i < quarter.workload.size(); ++i) {
    EXPECT_EQ(quarter.workload.jobs()[i].submit, full.workload.jobs()[i].submit);
  }
  // Machine shape is unchanged — a fixture slice is still a full-size run.
  EXPECT_EQ(quarter.workload.info().system_nodes, full.workload.info().system_nodes);

  TraceLoadOptions capped;
  capped.max_jobs = 60;
  EXPECT_EQ(load_trace("ricc", capped).workload.size(), 60u);
}

TEST(TraceCatalog, LoadTraceFallsBackToSynthesis) {
  TraceLoadOptions options;
  options.allow_fixture = false;
  options.scale = 0.002;
  const LoadedTrace loaded = load_trace("curie", options);
  EXPECT_FALSE(loaded.from_fixture);
  EXPECT_EQ(loaded.source, "synthesize_like");
  EXPECT_GT(loaded.workload.size(), 0u);

  TraceLoadOptions neither;
  neither.fixture_dir = "/nonexistent/fixture/dir";
  neither.allow_synthesis = false;
  EXPECT_THROW((void)load_trace("curie", neither), std::runtime_error);
}

TEST(TraceCatalog, SharedStorageIsNotDeepCopiedPerSimulation) {
  const LoadedTrace loaded = load_trace("curie");
  // load_trace prepares for the trace's machine, so a Simulation (or a
  // SweepCell) constructed from any copy reuses the storage instead of
  // detaching for another preparation pass.
  ASSERT_TRUE(
      loaded.workload.prepared_for(loaded.info.nodes, loaded.info.cores_per_node));
  Workload copy1 = loaded.workload;
  Workload copy2 = loaded.workload;
  EXPECT_TRUE(copy1.shares_jobs_with(loaded.workload));
  EXPECT_TRUE(copy2.shares_jobs_with(copy1));
  // prepare_for on an already-prepared copy is a no-op that keeps sharing.
  copy1.prepare_for(loaded.info.nodes, loaded.info.cores_per_node);
  EXPECT_TRUE(copy1.shares_jobs_with(loaded.workload));
}

TEST(TraceCatalog, ValidateTraceFlagsMissingBursts) {
  const TraceInfo& info = *find_trace("curie");
  Workload no_bursts;
  no_bursts.info() = {"no-bursts", 100, 16};
  for (int i = 0; i < 4; ++i) {
    JobSpec spec;
    spec.submit = i * 50;
    spec.base_runtime = 100;
    spec.req_time = 100;
    spec.req_cpus = 16;
    no_bursts.add(spec);
  }
  no_bursts.prepare_for(100, 16);
  const TraceValidation validation = validate_trace(no_bursts, info);
  EXPECT_FALSE(validation.ok);
  bool found = false;
  for (const auto& issue : validation.issues) {
    if (issue.find("burst") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "burst issue not reported";

  EXPECT_FALSE(validate_trace(Workload{}, info).ok);
}

TEST(TraceCatalog, CommittedFixturesMatchTheGenerator) {
  // Fixtures are committed artifacts, but they must never drift from the
  // deterministic generator that documents them: regenerating with the
  // default size must reproduce the bundled files byte-for-byte.
  for (const auto& info : trace_catalog()) {
    const std::string committed_path = default_fixture_path(info);
    std::ifstream committed(committed_path, std::ios::binary);
    ASSERT_TRUE(committed.good()) << committed_path;
    std::ostringstream committed_text;
    committed_text << committed.rdbuf();

    const std::string regenerated_path =
        ::testing::TempDir() + "/" + info.name + "_regen.swf";
    write_trace_fixture(info, regenerated_path, 2500);
    std::ifstream regenerated(regenerated_path, std::ios::binary);
    ASSERT_TRUE(regenerated.good());
    std::ostringstream regenerated_text;
    regenerated_text << regenerated.rdbuf();
    std::remove(regenerated_path.c_str());

    EXPECT_EQ(committed_text.str(), regenerated_text.str())
        << info.name << " fixture drifted — regenerate data/traces with "
        << "trace_replay --write-fixtures and commit the diff";
  }
}

TEST(TraceCatalog, SwfRoundTripIsIdentityAtTraceScale) {
  // Property: write_swf → read_swf is the identity on every field the SWF
  // mapping preserves, headers included, for a Curie-like workload.
  const Workload original = synthesize_like(*find_trace("curie"), /*scale=*/0.004);
  ASSERT_GE(original.size(), 100u);

  std::ostringstream out;
  write_swf(out, original);

  // Layout property: every job line carries exactly 18 columns.
  {
    std::istringstream lines(out.str());
    std::string line;
    std::size_t job_lines = 0;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == ';') continue;
      std::istringstream fields(line);
      std::string token;
      int n = 0;
      while (fields >> token) ++n;
      EXPECT_EQ(n, 18) << line;
      ++job_lines;
    }
    EXPECT_EQ(job_lines, original.size());
  }

  std::istringstream in(out.str());
  const Workload reread = read_swf(in);
  ASSERT_EQ(reread.size(), original.size());  // writer emits completed statuses only
  EXPECT_EQ(reread.info().system_nodes, original.info().system_nodes);
  EXPECT_EQ(reread.info().cores_per_node, original.info().cores_per_node);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const JobSpec& want = original.jobs()[i];
    const JobSpec& got = reread.jobs()[i];
    ASSERT_EQ(got.submit, want.submit) << "job " << i;
    ASSERT_EQ(got.base_runtime, want.base_runtime) << "job " << i;
    ASSERT_EQ(got.req_cpus, want.req_cpus) << "job " << i;
    ASSERT_EQ(got.req_time, want.req_time) << "job " << i;
    ASSERT_EQ(got.user_id, want.user_id) << "job " << i;
  }
}

}  // namespace
}  // namespace sdsched
