#include "workload/workload.h"

#include <gtest/gtest.h>

#include "workload/cirne.h"

namespace sdsched {
namespace {

JobSpec spec_of(JobId id, SimTime submit, SimTime runtime, int cpus) {
  JobSpec spec;
  spec.id = id;
  spec.submit = submit;
  spec.base_runtime = runtime;
  spec.req_time = runtime;
  spec.req_cpus = cpus;
  return spec;
}

TEST(Workload, CopiesShareJobStorage) {
  Workload a;
  a.add(spec_of(0, 0, 100, 4));
  a.add(spec_of(1, 10, 50, 2));
  const Workload b = a;
  EXPECT_TRUE(a.shares_jobs_with(b));
  EXPECT_EQ(&a.jobs(), &b.jobs());
}

TEST(Workload, MutationDetachesFromSharingCopies) {
  Workload a;
  a.add(spec_of(0, 0, 100, 4));
  Workload b = a;
  b.add(spec_of(1, 5, 10, 1));
  EXPECT_FALSE(a.shares_jobs_with(b));
  EXPECT_EQ(a.size(), 1u);  // a never observes b's edit
  EXPECT_EQ(b.size(), 2u);

  Workload c = a;
  c.mutable_jobs()[0].req_cpus = 99;
  EXPECT_EQ(a.jobs()[0].req_cpus, 4);
  EXPECT_EQ(c.jobs()[0].req_cpus, 99);
}

TEST(Workload, PrepareForIsIdempotentAndPreservesSharing) {
  Workload a;
  a.add(spec_of(7, 20, 100, 4));
  a.add(spec_of(3, 0, 50, 200));   // clamped to the machine
  a.add(spec_of(4, 5, 0, 2));      // dropped: zero runtime
  EXPECT_FALSE(a.prepared_for(4, 8));
  EXPECT_EQ(a.prepare_for(4, 8), 1u);
  EXPECT_TRUE(a.prepared_for(4, 8));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.jobs()[0].id, 0);               // renumbered in submit order
  EXPECT_EQ(a.jobs()[0].req_cpus, 32);        // clamped to 4 nodes x 8 cores
  EXPECT_EQ(a.jobs()[1].submit, 20);

  // A prepared copy fed back through prepare_for stays shared: this is what
  // lets N sweep cells reuse one workload with zero deep copies.
  Workload b = a;
  EXPECT_EQ(b.prepare_for(4, 8), 0u);
  EXPECT_TRUE(a.shares_jobs_with(b));

  // Different machine geometry re-prepares a private copy.
  Workload c = a;
  (void)c.prepare_for(2, 8);
  EXPECT_FALSE(a.shares_jobs_with(c));
  EXPECT_TRUE(a.prepared_for(4, 8));  // a untouched
}

TEST(Workload, MutableAccessInvalidatesPreparation) {
  Workload a;
  a.add(spec_of(0, 0, 100, 4));
  (void)a.prepare_for(4, 8);
  EXPECT_TRUE(a.prepared_for(4, 8));
  a.mutable_jobs()[0].app_profile = 2;
  EXPECT_FALSE(a.prepared_for(4, 8));
  (void)a.prepare_for(4, 8);
  EXPECT_TRUE(a.prepared_for(4, 8));
  EXPECT_EQ(a.jobs()[0].app_profile, 2);
}

TEST(Workload, GeneratedWorkloadsComePrepared) {
  CirneConfig config;
  config.n_jobs = 120;
  config.system_nodes = 16;
  config.cores_per_node = 48;
  config.seed = 1;
  const Workload w = generate_cirne(config);
  EXPECT_TRUE(w.prepared_for(16, 48));
}

TEST(Workload, EmptyWorkloadBehaves) {
  const Workload w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.jobs().size(), 0u);
  EXPECT_DOUBLE_EQ(w.total_work_core_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(w.offered_load(100), 0.0);
  const Workload v;
  EXPECT_FALSE(w.shares_jobs_with(v));  // null storage never "shares"
}

}  // namespace
}  // namespace sdsched
