#include "drom/cpu_distribution.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

constexpr NodeConfig kMn4{2, 24};

TEST(CpuDistribution, TwoJobsGetSeparateSockets) {
  // The paper's headline case: SharingFactor 0.5 on a two-socket node puts
  // owner and guest in different sockets.
  const std::vector<CpuDemand> demands{{1, 24}, {2, 24}};
  const auto placements = distribute_cpu(kMn4, demands);
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_TRUE(socket_isolated(kMn4, placements));
  EXPECT_EQ(placements[0].mask.total(), 24);
  EXPECT_EQ(placements[1].mask.total(), 24);
}

TEST(CpuDistribution, SingleJobFitsOneSocketWhenPossible) {
  const std::vector<CpuDemand> demands{{1, 20}};
  const auto placements = distribute_cpu(kMn4, demands);
  int sockets_used = 0;
  for (const int c : placements[0].mask.cores_per_socket) {
    if (c > 0) ++sockets_used;
  }
  EXPECT_EQ(sockets_used, 1);
}

TEST(CpuDistribution, LargeJobSpillsOver) {
  const std::vector<CpuDemand> demands{{1, 30}};
  const auto placements = distribute_cpu(kMn4, demands);
  EXPECT_EQ(placements[0].mask.total(), 30);
  EXPECT_EQ(placements[0].mask.cores_per_socket[0], 24);
  EXPECT_EQ(placements[0].mask.cores_per_socket[1], 6);
}

TEST(CpuDistribution, UnevenPairIsolatesWhenFits) {
  const std::vector<CpuDemand> demands{{1, 20}, {2, 10}};
  const auto placements = distribute_cpu(kMn4, demands);
  EXPECT_TRUE(socket_isolated(kMn4, placements));
}

TEST(CpuDistribution, FullNodeSingleOwner) {
  const std::vector<CpuDemand> demands{{7, 48}};
  const auto placements = distribute_cpu(kMn4, demands);
  EXPECT_EQ(placements[0].mask.total(), 48);
}

TEST(CpuDistribution, ThreeJobsCannotAllIsolateButFit) {
  const std::vector<CpuDemand> demands{{1, 16}, {2, 16}, {3, 16}};
  const auto placements = distribute_cpu(kMn4, demands);
  int total = 0;
  for (const auto& p : placements) total += p.mask.total();
  EXPECT_EQ(total, 48);
  // Per-socket capacity respected.
  std::vector<int> socket_use(kMn4.sockets, 0);
  for (const auto& p : placements) {
    for (int s = 0; s < kMn4.sockets; ++s) socket_use[s] += p.mask.cores_per_socket[s];
  }
  for (const int used : socket_use) EXPECT_LE(used, kMn4.cores_per_socket);
}

TEST(CpuDistribution, DeterministicOrderIndependentOfInput) {
  const std::vector<CpuDemand> a{{1, 24}, {2, 24}};
  const std::vector<CpuDemand> b{{2, 24}, {1, 24}};
  const auto pa = distribute_cpu(kMn4, a);
  const auto pb = distribute_cpu(kMn4, b);
  // Same job gets the same mask regardless of input order.
  for (const auto& p : pa) {
    for (const auto& q : pb) {
      if (p.job == q.job) {
        EXPECT_EQ(p.mask.cores_per_socket, q.mask.cores_per_socket);
      }
    }
  }
}

TEST(CpuDistribution, ResultsAlignWithInputOrder) {
  const std::vector<CpuDemand> demands{{9, 8}, {4, 40}};
  const auto placements = distribute_cpu(kMn4, demands);
  EXPECT_EQ(placements[0].job, 9u);
  EXPECT_EQ(placements[1].job, 4u);
}

}  // namespace
}  // namespace sdsched
