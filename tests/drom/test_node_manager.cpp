#include "drom/node_manager.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

class NodeManagerTest : public ::testing::Test {
 protected:
  NodeManagerTest() : machine_(make_config()), mgr_(machine_, jobs_, drom_) {}

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 4;
    config.node = NodeConfig{2, 24};
    return config;
  }

  JobId add_job(int req_cpus, MalleabilityClass cls = MalleabilityClass::Malleable) {
    JobSpec spec;
    spec.req_cpus = req_cpus;
    spec.req_nodes = nodes_for(req_cpus, 48);
    spec.malleability = cls;
    const JobId id = jobs_.add(spec);
    jobs_.at(id).state = JobState::Running;
    return id;
  }

  Machine machine_;
  JobRegistry jobs_;
  DromRegistry drom_;
  NodeManager mgr_;
};

TEST_F(NodeManagerTest, StaticStartSetsSharesAndMasks) {
  const JobId id = add_job(96);
  mgr_.start_static(0, id, {0, 1});
  const Job& job = jobs_.at(id);
  ASSERT_EQ(job.shares.size(), 2u);
  EXPECT_EQ(job.shares[0].cpus, 48);
  EXPECT_EQ(job.shares[0].static_cpus, 48);
  EXPECT_EQ(machine_.busy_cores(), 96);
  EXPECT_TRUE(drom_.attached(id, 0));
  EXPECT_TRUE(drom_.attached(id, 1));
  EXPECT_EQ(drom_.mask(id, 0)->total(), 48);
}

TEST_F(NodeManagerTest, StaticStartBalancedSplit) {
  const JobId id = add_job(50);
  mgr_.start_static(0, id, {0, 1});
  const Job& job = jobs_.at(id);
  EXPECT_EQ(job.shares[0].cpus, 25);
  EXPECT_EQ(job.shares[1].cpus, 25);
  EXPECT_EQ(machine_.busy_cores(), 50);
  EXPECT_EQ(machine_.free_node_count(), 2);  // both nodes blocked regardless
}

TEST_F(NodeManagerTest, GuestStartShrinksMate) {
  const JobId mate = add_job(96);
  mgr_.start_static(0, mate, {0, 1});
  const JobId guest = add_job(96);

  const std::vector<SharePlan> plan{
      {0, mate, 24, 24, 48},
      {1, mate, 24, 24, 48},
  };
  const auto affected = mgr_.start_guest(10, guest, plan);
  EXPECT_EQ(affected, (std::vector<JobId>{mate}));

  const Job& m = jobs_.at(mate);
  const Job& g = jobs_.at(guest);
  EXPECT_EQ(m.shares[0].cpus, 24);
  EXPECT_EQ(m.shares[0].static_cpus, 48);
  EXPECT_EQ(g.shares[0].cpus, 24);
  EXPECT_EQ(g.shares[0].static_cpus, 48);
  EXPECT_TRUE(g.started_as_guest);
  EXPECT_TRUE(m.ever_mate);
  EXPECT_EQ(m.guests, (std::vector<JobId>{guest}));
  EXPECT_EQ(g.mates, (std::vector<JobId>{mate}));
  EXPECT_EQ(machine_.busy_cores(), 96);
  EXPECT_TRUE(machine_.node(0).shared());
  // DROM masks reflect the socket split.
  EXPECT_EQ(drom_.mask(mate, 0)->total(), 24);
  EXPECT_EQ(drom_.mask(guest, 0)->total(), 24);
  EXPECT_GE(drom_.shrink_ops(), 2u);
}

TEST_F(NodeManagerTest, GuestEndRestoresMate) {
  const JobId mate = add_job(96);
  mgr_.start_static(0, mate, {0, 1});
  const JobId guest = add_job(96);
  mgr_.start_guest(10, guest, {{0, mate, 24, 24, 48}, {1, mate, 24, 24, 48}});

  jobs_.at(guest).state = JobState::Completed;
  const auto affected = mgr_.finish_job(20, guest);
  EXPECT_EQ(affected, (std::vector<JobId>{mate}));
  const Job& m = jobs_.at(mate);
  EXPECT_EQ(m.shares[0].cpus, 48);  // expanded back to static
  EXPECT_EQ(m.shares[1].cpus, 48);
  EXPECT_TRUE(m.guests.empty());
  EXPECT_FALSE(machine_.node(0).shared());
  EXPECT_EQ(machine_.busy_cores(), 96);
  EXPECT_FALSE(drom_.attached(guest, 0));
}

TEST_F(NodeManagerTest, MateEndsEarlyGuestExpands) {
  const JobId mate = add_job(96);
  mgr_.start_static(0, mate, {0, 1});
  const JobId guest = add_job(96);
  mgr_.start_guest(10, guest, {{0, mate, 24, 24, 48}, {1, mate, 24, 24, 48}});

  jobs_.at(mate).state = JobState::Completed;
  const auto affected = mgr_.finish_job(20, mate);
  EXPECT_EQ(affected, (std::vector<JobId>{guest}));
  const Job& g = jobs_.at(guest);
  EXPECT_EQ(g.shares[0].cpus, 48);  // took the freed cores, up to static
  EXPECT_EQ(g.shares[1].cpus, 48);
  EXPECT_EQ(machine_.busy_cores(), 96);
  EXPECT_EQ(machine_.free_node_count(), 2);  // nodes still held by guest
  EXPECT_TRUE(g.mates.empty());
}

TEST_F(NodeManagerTest, MoldableGuestDoesNotExpand) {
  const JobId mate = add_job(48);
  mgr_.start_static(0, mate, {0});
  const JobId guest = add_job(48, MalleabilityClass::Moldable);
  mgr_.start_guest(10, guest, {{0, mate, 24, 24, 48}});

  jobs_.at(mate).state = JobState::Completed;
  mgr_.finish_job(20, mate);
  const Job& g = jobs_.at(guest);
  EXPECT_EQ(g.shares[0].cpus, 24);  // keeps its shape
  EXPECT_EQ(machine_.node(0).free_cores(), 24);
}

TEST_F(NodeManagerTest, ExpansionCappedAtStaticShare) {
  // Guest with a small static need never grows beyond it.
  const JobId mate = add_job(48);
  mgr_.start_static(0, mate, {0});
  const JobId guest = add_job(20);
  mgr_.start_guest(10, guest, {{0, mate, 20, 28, 20}});

  jobs_.at(mate).state = JobState::Completed;
  mgr_.finish_job(20, mate);
  EXPECT_EQ(jobs_.at(guest).shares[0].cpus, 20);
  EXPECT_EQ(machine_.node(0).free_cores(), 28);
}

TEST_F(NodeManagerTest, FinishLastOccupantFreesNode) {
  const JobId mate = add_job(48);
  mgr_.start_static(0, mate, {0});
  const JobId guest = add_job(48);
  mgr_.start_guest(10, guest, {{0, mate, 24, 24, 48}});

  jobs_.at(mate).state = JobState::Completed;
  mgr_.finish_job(20, mate);
  jobs_.at(guest).state = JobState::Completed;
  mgr_.finish_job(30, guest);
  EXPECT_EQ(machine_.free_node_count(), 4);
  EXPECT_EQ(machine_.busy_cores(), 0);
  EXPECT_EQ(drom_.process_count(), 0u);
}

TEST_F(NodeManagerTest, GuestOnFreeNodeIsOwner) {
  const JobId mate = add_job(48);
  mgr_.start_static(0, mate, {0});
  const JobId guest = add_job(96);
  // Plan mixing one mate node and one free node (include_free_nodes).
  mgr_.start_guest(10, guest, {{0, mate, 24, 24, 48}, {1, kInvalidJob, 48, 0, 48}});
  EXPECT_TRUE(machine_.node(1).occupant(guest)->owner);
  EXPECT_EQ(machine_.node(1).used_cores(), 48);
  EXPECT_EQ(jobs_.at(guest).mates, (std::vector<JobId>{mate}));
}

TEST_F(NodeManagerTest, CoreConservationThroughChurn) {
  // Run a start/shrink/finish cycle and verify no cores leak.
  const JobId a = add_job(96);
  mgr_.start_static(0, a, {0, 1});
  const JobId b = add_job(48);
  mgr_.start_static(0, b, {2});
  const JobId g = add_job(96);
  mgr_.start_guest(5, g, {{0, a, 24, 24, 48}, {1, a, 24, 24, 48}});
  EXPECT_EQ(machine_.busy_cores(), 96 + 48);

  jobs_.at(g).state = JobState::Completed;
  mgr_.finish_job(15, g);
  EXPECT_EQ(machine_.busy_cores(), 96 + 48);

  jobs_.at(a).state = JobState::Completed;
  mgr_.finish_job(25, a);
  jobs_.at(b).state = JobState::Completed;
  mgr_.finish_job(30, b);
  EXPECT_EQ(machine_.busy_cores(), 0);
  EXPECT_EQ(machine_.free_node_count(), 4);
}

}  // namespace
}  // namespace sdsched
