#include "drom/drom.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(Drom, AttachAndMaskLookup) {
  DromRegistry drom;
  drom.attach(1, 0, CpuMask{{24, 0}});
  EXPECT_TRUE(drom.attached(1, 0));
  EXPECT_FALSE(drom.attached(1, 1));
  const auto mask = drom.mask(1, 0);
  ASSERT_TRUE(mask.has_value());
  EXPECT_EQ(mask->total(), 24);
}

TEST(Drom, SetMaskCountsTransitions) {
  DromRegistry drom;
  drom.attach(1, 0, CpuMask{{48, 0}});
  EXPECT_EQ(drom.shrink_ops(), 0u);
  EXPECT_TRUE(drom.set_mask(1, 0, CpuMask{{24, 0}}));
  EXPECT_EQ(drom.shrink_ops(), 1u);
  EXPECT_EQ(drom.expand_ops(), 0u);
  EXPECT_TRUE(drom.set_mask(1, 0, CpuMask{{24, 24}}));
  EXPECT_EQ(drom.expand_ops(), 1u);
  // Same-width mask change (migration) counts as neither.
  EXPECT_TRUE(drom.set_mask(1, 0, CpuMask{{48, 0}}));
  EXPECT_EQ(drom.shrink_ops(), 1u);
  EXPECT_EQ(drom.expand_ops(), 1u);
}

TEST(Drom, SetMaskOnUnattachedFails) {
  DromRegistry drom;
  EXPECT_FALSE(drom.set_mask(9, 0, CpuMask{{1}}));
}

TEST(Drom, DetachRemovesProcess) {
  DromRegistry drom;
  drom.attach(1, 0, CpuMask{{8}});
  drom.attach(1, 1, CpuMask{{8}});
  drom.detach(1, 0);
  EXPECT_FALSE(drom.attached(1, 0));
  EXPECT_TRUE(drom.attached(1, 1));
  drom.detach_all(1);
  EXPECT_EQ(drom.process_count(), 0u);
}

TEST(Drom, JobsOnNodeSortedAndScoped) {
  DromRegistry drom;
  drom.attach(5, 0, CpuMask{{8}});
  drom.attach(2, 0, CpuMask{{8}});
  drom.attach(3, 1, CpuMask{{8}});
  EXPECT_EQ(drom.jobs_on_node(0), (std::vector<JobId>{2, 5}));
  EXPECT_EQ(drom.jobs_on_node(1), (std::vector<JobId>{3}));
  EXPECT_TRUE(drom.jobs_on_node(2).empty());
}

TEST(Drom, CpuMaskTotal) {
  EXPECT_EQ((CpuMask{{12, 24, 0}}).total(), 36);
  EXPECT_EQ((CpuMask{}).total(), 0);
}

}  // namespace
}  // namespace sdsched
