#include "sched/backfill.h"

#include <gtest/gtest.h>

#include "cluster/cluster_state_index.h"
#include "scheduler_test_harness.h"

namespace sdsched {
namespace {

using testing_support::RecordingExecutor;
using testing_support::finish;
using testing_support::spec_of;

class BackfillTest : public ::testing::Test {
 protected:
  explicit BackfillTest(SchedConfig config = {})
      : machine_(make_config()),
        mgr_(machine_, jobs_, drom_),
        executor_(machine_, jobs_, mgr_),
        sched_(machine_, jobs_, executor_, config) {}

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 4;
    config.node = NodeConfig{2, 24};
    return config;
  }

  JobId submit(int cpus, SimTime runtime, SimTime req_time, SimTime submit_time = 0) {
    const JobId id = jobs_.add(spec_of(submit_time, runtime, req_time, cpus, 48));
    sched_.on_submit(id);
    return id;
  }

  Machine machine_;
  JobRegistry jobs_;
  DromRegistry drom_;
  NodeManager mgr_;
  RecordingExecutor executor_;
  BackfillScheduler sched_;
};

TEST_F(BackfillTest, ShortJobBackfillsAroundBlockedHead) {
  // 4-node machine. A (2 nodes, 100s) runs; B (4 nodes) must wait for A;
  // C (2 nodes, 50s <= A's remaining) fits in B's shadow on the spare nodes.
  const JobId a = submit(96, 100, 100);
  sched_.schedule_pass(0);
  ASSERT_EQ(executor_.static_starts, (std::vector<JobId>{a}));

  const JobId b = submit(192, 100, 100);
  const JobId c = submit(96, 50, 50);
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, c}));
  EXPECT_TRUE(sched_.queue().contains(b));
}

TEST_F(BackfillTest, BackfillNeverDelaysReservation) {
  // C too long to fit in the shadow: would push B past its reservation.
  const JobId a = submit(96, 100, 100);
  sched_.schedule_pass(0);
  const JobId b = submit(192, 100, 100);
  const JobId c = submit(96, 150, 150);
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a}));
  EXPECT_TRUE(sched_.queue().contains(b));
  EXPECT_TRUE(sched_.queue().contains(c));
}

TEST_F(BackfillTest, ReservationHonoursPredictedEnds) {
  const JobId a = submit(192, 80, 100);  // requested 100, really 80
  sched_.schedule_pass(0);
  const JobId b = submit(192, 50, 50);
  sched_.schedule_pass(0);
  EXPECT_TRUE(sched_.queue().contains(b));
  // A finishes early; the pass at that moment starts B immediately.
  finish(jobs_, mgr_, a, 80);
  executor_.now = 80;
  sched_.schedule_pass(80);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, b}));
}

TEST_F(BackfillTest, PriorityOrderPreservedAmongEqualJobs) {
  const JobId a = submit(192, 100, 100);
  sched_.schedule_pass(0);
  const JobId b = submit(96, 60, 60, 1);
  const JobId c = submit(96, 60, 60, 2);
  sched_.schedule_pass(2);
  EXPECT_TRUE(sched_.queue().contains(b));
  EXPECT_TRUE(sched_.queue().contains(c));
  // Both fit once the big job ends; starts must follow submit order.
  finish(jobs_, mgr_, a, 100);
  executor_.now = 100;
  sched_.schedule_pass(100);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, b, c}));
}

TEST_F(BackfillTest, StaticPolicyNeverStartsGuests) {
  submit(192, 1000, 1000);
  sched_.schedule_pass(0);
  submit(96, 10, 10);
  sched_.schedule_pass(0);
  EXPECT_TRUE(executor_.guest_starts.empty());
}

TEST_F(BackfillTest, SharedNodeFreesAtLastOccupant) {
  // Simulate an SD-produced sharing situation and check the profile treats
  // the node as busy until the later predicted end.
  const JobId a = submit(96, 200, 200);
  sched_.schedule_pass(0);
  // Manually co-schedule a guest with a longer predicted end on node 0.
  const JobId g = jobs_.add(spec_of(0, 300, 300, 48, 48));
  Job& guest = jobs_.at(g);
  guest.state = JobState::Running;
  guest.start_time = 0;
  guest.predicted_end = 300;
  machine_.resize_share(0, a, 0, 24);
  jobs_.at(a).shares[0].cpus = 24;
  machine_.add_share(0, g, 0, 24, false);
  guest.shares.push_back({0, 24, 48});

  // A 4-node job can only be predicted to start when node 0 clears at 300.
  const JobId big = submit(192, 10, 10);
  sched_.schedule_pass(0);
  EXPECT_TRUE(sched_.queue().contains(big));
  finish(jobs_, mgr_, a, 200);
  executor_.now = 200;
  sched_.schedule_pass(200);
  EXPECT_TRUE(sched_.queue().contains(big));  // node 0 still held by guest
  finish(jobs_, mgr_, g, 300);
  executor_.now = 300;
  sched_.schedule_pass(300);
  EXPECT_FALSE(sched_.queue().contains(big));
}

class EasyBackfillTest : public BackfillTest {
 protected:
  EasyBackfillTest() : BackfillTest(easy_config()) {}
  static SchedConfig easy_config() {
    SchedConfig config;
    config.reservation_depth = 1;  // EASY: only the head gets a reservation
    return config;
  }
};

TEST_F(EasyBackfillTest, DepthOneOnlyProtectsHead) {
  // Machine: 4 nodes. A (3 nodes, 100s) runs. Queue: B (4 nodes, reserved
  // at 100), C (2 nodes, 200s) does not fit in the shadow, D (1 node,
  // 1000s). With depth 1, C gets no reservation, so D may start on the
  // spare node even though it delays *C* (but not B... D uses 1 node, B
  // needs all 4 at t=100 -> D would delay B; it must not start).
  const JobId a = submit(144, 100, 100);
  sched_.schedule_pass(0);
  ASSERT_EQ(executor_.static_starts, (std::vector<JobId>{a}));
  const JobId b = submit(192, 100, 100);
  const JobId c = submit(96, 200, 200);
  const JobId d = submit(48, 50, 50);
  sched_.schedule_pass(0);
  // D fits under B's shadow (50 <= 100) on the spare node; C does not.
  EXPECT_TRUE(sched_.queue().contains(b));
  EXPECT_TRUE(sched_.queue().contains(c));
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, d}));
}

// Constraint-class-aware estimates: with a cluster index attached, a
// constrained job whose eligible nodes are busy gets an exact earliest
// start from the per-class profile layer (a reservation at the eligible
// release) instead of the historical conservative hold-at-now — so
// unconstrained work is no longer blocked behind it.
class ConstrainedBackfillTest : public ::testing::Test {
 protected:
  ConstrainedBackfillTest()
      : machine_(make_config()),
        index_(machine_, jobs_),
        mgr_(machine_, jobs_, drom_),
        executor_(machine_, jobs_, mgr_),
        sched_(machine_, jobs_, executor_, SchedConfig{}) {
    sched_.set_cluster_index(&index_);
  }

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 4;
    config.node = NodeConfig{2, 24};
    NodeAttributes highmem;
    highmem.memory_gb = 384;
    config.attribute_overrides.emplace_back(2, highmem);
    config.attribute_overrides.emplace_back(3, highmem);
    return config;
  }

  JobId submit(int cpus, SimTime req_time, int min_memory_gb = 0, SimTime submit_time = 0) {
    JobSpec spec = spec_of(submit_time, req_time, req_time, cpus, 48);
    spec.constraints.min_memory_gb = min_memory_gb;
    const JobId id = jobs_.add(spec);
    sched_.on_submit(id);
    return id;
  }

  Machine machine_;
  JobRegistry jobs_;
  ClusterStateIndex index_;
  DromRegistry drom_;
  NodeManager mgr_;
  RecordingExecutor executor_;
  BackfillScheduler sched_;
};

TEST_F(ConstrainedBackfillTest, ClassLayerReplacesHoldAndRetry) {
  // A (highmem, 2 nodes, 100s) takes the two highmem nodes.
  const JobId a = submit(96, 100, /*min_memory_gb=*/128);
  sched_.schedule_pass(0);
  ASSERT_EQ(executor_.static_starts, (std::vector<JobId>{a}));
  EXPECT_EQ(jobs_.at(a).shares[0].node, 2);
  EXPECT_GT(sched_.class_layer_builds(), 0u);

  // B (highmem, 2 nodes): the class-blind profile sees 2 free nodes *now*,
  // but they are the wrong class. The class layer prices B at A's release
  // (t=100) — a plain reservation there, not a hold of [now, now+500).
  const JobId b = submit(96, 500, /*min_memory_gb=*/128, /*submit_time=*/10);
  // C (unconstrained, 2 nodes, 50s): fits on the default-class nodes now
  // and ends before B's reservation. Under the historical hold-and-retry
  // B's conservative hold would have blocked it.
  const JobId c = submit(96, 50, /*min_memory_gb=*/0, /*submit_time=*/10);
  executor_.now = 10;
  sched_.schedule_pass(10);
  EXPECT_TRUE(sched_.queue().contains(b));
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, c}));

  // A finishes: B starts on the released highmem nodes.
  finish(jobs_, mgr_, a, 100);
  sched_.on_finish(a);
  executor_.now = 100;
  sched_.schedule_pass(100);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, c, b}));
  EXPECT_EQ(jobs_.at(b).shares[0].node, 2);
}

TEST_F(ConstrainedBackfillTest, ClassLayerDoesNotDelayEligibleStarts) {
  // Highmem nodes free: a highmem job starts immediately through the same
  // path (the layer agrees with the shared profile at `now`).
  const JobId a = submit(96, 100, /*min_memory_gb=*/128);
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a}));
}

TEST_F(ConstrainedBackfillTest, SamePassStartsAreNotDoubleCountedByTheLayer) {
  // X (unconstrained, 2 nodes) starts on the default nodes earlier in the
  // SAME pass as B (highmem, 2 nodes). X's start is visible to the layer
  // twice over if mishandled: once through the index snapshot (its nodes
  // are busy by the time the layer is built) and once through a replay of
  // its start reservation. B's eligible nodes are entirely free — it must
  // start in the same pass, as it always did before the layer existed.
  const JobId x = submit(96, 100);
  const JobId b = submit(96, 100, /*min_memory_gb=*/128);
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{x, b}));
  EXPECT_EQ(jobs_.at(b).shares[0].node, 2);
}

TEST_F(BackfillTest, ExaminationBudgetBoundsPassWork) {
  SchedConfig tight;
  tight.bf_max_jobs = 1;
  BackfillScheduler limited(machine_, jobs_, executor_, tight);
  const JobId a = jobs_.add(spec_of(0, 100, 100, 192, 48));
  limited.on_submit(a);
  const JobId b = jobs_.add(spec_of(0, 10, 10, 48, 48));
  limited.on_submit(b);
  limited.schedule_pass(0);
  // Only the first queued job is examined; b stays even though it fits.
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a}));
  EXPECT_TRUE(limited.queue().contains(b));
}

}  // namespace
}  // namespace sdsched
