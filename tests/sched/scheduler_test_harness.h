// Shared harness for scheduler unit tests: a Machine + JobRegistry +
// NodeManager and a StartExecutor that applies starts the way the
// Simulation kernel would, minus event handling.
#pragma once

#include <vector>

#include "drom/node_manager.h"
#include "sched/scheduler.h"

namespace sdsched::testing_support {

class RecordingExecutor final : public StartExecutor {
 public:
  RecordingExecutor(Machine& machine, JobRegistry& jobs, NodeManager& mgr) noexcept
      : machine_(machine), jobs_(jobs), mgr_(mgr) {}

  SimTime now = 0;
  std::vector<JobId> static_starts;
  std::vector<JobId> guest_starts;

  void start_static(JobId id, const std::vector<int>& nodes) override {
    Job& job = jobs_.at(id);
    job.state = JobState::Running;
    job.start_time = now;
    job.predicted_end = now + job.spec.req_time;
    mgr_.start_static(now, id, nodes);
    static_starts.push_back(id);
  }

  void start_guest(JobId id, const MatePlan& plan) override {
    Job& job = jobs_.at(id);
    job.state = JobState::Running;
    job.start_time = now;
    job.predicted_increase = plan.guest_increase;
    job.predicted_end = now + job.spec.req_time + plan.guest_increase;
    for (std::size_t i = 0; i < plan.mates.size(); ++i) {
      Job& mate = jobs_.at(plan.mates[i]);
      mate.predicted_increase += plan.mate_increases[i];
      mate.predicted_end += plan.mate_increases[i];
    }
    mgr_.start_guest(now, id, plan.nodes);
    guest_starts.push_back(id);
  }

 private:
  Machine& machine_;
  JobRegistry& jobs_;
  NodeManager& mgr_;
};

/// Complete a running job: release resources and expand survivors.
inline void finish(JobRegistry& jobs, NodeManager& mgr, JobId id, SimTime now) {
  Job& job = jobs.at(id);
  job.state = JobState::Completed;
  job.end_time = now;
  mgr.finish_job(now, id);
}

/// Minimal malleable job spec.
inline JobSpec spec_of(SimTime submit, SimTime runtime, SimTime req_time, int cpus,
                       int cores_per_node,
                       MalleabilityClass cls = MalleabilityClass::Malleable) {
  JobSpec spec;
  spec.submit = submit;
  spec.base_runtime = runtime;
  spec.req_time = req_time;
  spec.req_cpus = cpus;
  spec.req_nodes = nodes_for(cpus, cores_per_node);
  spec.malleability = cls;
  return spec;
}

}  // namespace sdsched::testing_support
