#include "sched/reservation.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(Reservation, EmptyProfileIsAllFree) {
  const ReservationProfile profile(8);
  EXPECT_EQ(profile.available_at(0), 8);
  EXPECT_EQ(profile.available_at(1000), 8);
  EXPECT_EQ(profile.earliest_start(8, 100, 0), 0);
}

TEST(Reservation, RequestBeyondCapacityNever) {
  const ReservationProfile profile(4);
  EXPECT_EQ(profile.earliest_start(5, 10, 0), ReservationProfile::kNever);
}

TEST(Reservation, ReserveCarvesAvailability) {
  ReservationProfile profile(8);
  profile.reserve(10, 20, 3);
  EXPECT_EQ(profile.available_at(9), 8);
  EXPECT_EQ(profile.available_at(10), 5);
  EXPECT_EQ(profile.available_at(19), 5);
  EXPECT_EQ(profile.available_at(20), 8);
}

TEST(Reservation, EarliestStartWaitsForRelease) {
  ReservationProfile profile(8);
  profile.reserve(0, 100, 8);  // machine fully busy until t=100
  EXPECT_EQ(profile.earliest_start(1, 10, 0), 100);
  EXPECT_EQ(profile.earliest_start(8, 10, 0), 100);
}

TEST(Reservation, PartialAvailabilityAllowsSmallJobs) {
  ReservationProfile profile(8);
  profile.reserve(0, 100, 6);
  EXPECT_EQ(profile.earliest_start(2, 50, 0), 0);
  EXPECT_EQ(profile.earliest_start(3, 50, 0), 100);
}

TEST(Reservation, WindowMustStayFeasible) {
  // 4 nodes free now, but a reservation at t=30 dips below the request:
  // a 50s window cannot start before the dip clears.
  ReservationProfile profile(8);
  profile.reserve(30, 60, 6);
  EXPECT_EQ(profile.earliest_start(4, 50, 0), 60);
  // A shorter job fits before the dip.
  EXPECT_EQ(profile.earliest_start(4, 30, 0), 0);
}

TEST(Reservation, NotBeforeRespected) {
  ReservationProfile profile(8);
  EXPECT_EQ(profile.earliest_start(2, 10, 500), 500);
}

TEST(Reservation, BackToBackReservations) {
  ReservationProfile profile(4);
  profile.reserve(0, 10, 4);
  profile.reserve(10, 20, 4);
  EXPECT_EQ(profile.earliest_start(1, 5, 0), 20);
}

TEST(Reservation, ReleaseExtendsAvailability) {
  ReservationProfile profile(4);
  profile.reserve(0, 100, 4);
  profile.release(50, 100, 2);  // two nodes free earlier than predicted
  EXPECT_EQ(profile.available_at(49), 0);
  EXPECT_EQ(profile.available_at(50), 2);
  EXPECT_EQ(profile.earliest_start(2, 10, 0), 50);
}

TEST(Reservation, ForeverReservationBlocksPermanently) {
  ReservationProfile profile(4);
  profile.reserve(10, ReservationProfile::kForever, 4);
  EXPECT_EQ(profile.earliest_start(1, 5, 0), 0);   // fits before
  EXPECT_EQ(profile.earliest_start(1, 20, 0), ReservationProfile::kNever);
}

TEST(Reservation, ZeroNodeRequestStartsImmediately) {
  ReservationProfile profile(4);
  profile.reserve(0, 100, 4);
  EXPECT_EQ(profile.earliest_start(0, 10, 7), 7);
}

TEST(Reservation, ExactFitAtBoundary) {
  // Window ending exactly when a dip begins is feasible.
  ReservationProfile profile(4);
  profile.reserve(100, 200, 4);
  EXPECT_EQ(profile.earliest_start(4, 100, 0), 0);
  EXPECT_EQ(profile.earliest_start(4, 101, 0), 200);
}

TEST(Reservation, OverlappingReservationsStack) {
  ReservationProfile profile(10);
  profile.reserve(0, 50, 4);
  profile.reserve(25, 75, 4);
  EXPECT_EQ(profile.available_at(30), 2);
  EXPECT_EQ(profile.earliest_start(3, 10, 0), 0);    // 6 free before 25
  EXPECT_EQ(profile.earliest_start(3, 30, 0), 50);   // dip at 25 blocks
}

}  // namespace
}  // namespace sdsched
