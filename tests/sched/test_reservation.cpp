#include "sched/reservation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sdsched {
namespace {

TEST(Reservation, EmptyProfileIsAllFree) {
  const ReservationProfile profile(8);
  EXPECT_EQ(profile.available_at(0), 8);
  EXPECT_EQ(profile.available_at(1000), 8);
  EXPECT_EQ(profile.earliest_start(8, 100, 0), 0);
}

TEST(Reservation, RequestBeyondCapacityNever) {
  const ReservationProfile profile(4);
  EXPECT_EQ(profile.earliest_start(5, 10, 0), ReservationProfile::kNever);
}

TEST(Reservation, ReserveCarvesAvailability) {
  ReservationProfile profile(8);
  profile.reserve(10, 20, 3);
  EXPECT_EQ(profile.available_at(9), 8);
  EXPECT_EQ(profile.available_at(10), 5);
  EXPECT_EQ(profile.available_at(19), 5);
  EXPECT_EQ(profile.available_at(20), 8);
}

TEST(Reservation, EarliestStartWaitsForRelease) {
  ReservationProfile profile(8);
  profile.reserve(0, 100, 8);  // machine fully busy until t=100
  EXPECT_EQ(profile.earliest_start(1, 10, 0), 100);
  EXPECT_EQ(profile.earliest_start(8, 10, 0), 100);
}

TEST(Reservation, PartialAvailabilityAllowsSmallJobs) {
  ReservationProfile profile(8);
  profile.reserve(0, 100, 6);
  EXPECT_EQ(profile.earliest_start(2, 50, 0), 0);
  EXPECT_EQ(profile.earliest_start(3, 50, 0), 100);
}

TEST(Reservation, WindowMustStayFeasible) {
  // 4 nodes free now, but a reservation at t=30 dips below the request:
  // a 50s window cannot start before the dip clears.
  ReservationProfile profile(8);
  profile.reserve(30, 60, 6);
  EXPECT_EQ(profile.earliest_start(4, 50, 0), 60);
  // A shorter job fits before the dip.
  EXPECT_EQ(profile.earliest_start(4, 30, 0), 0);
}

TEST(Reservation, NotBeforeRespected) {
  ReservationProfile profile(8);
  EXPECT_EQ(profile.earliest_start(2, 10, 500), 500);
}

TEST(Reservation, BackToBackReservations) {
  ReservationProfile profile(4);
  profile.reserve(0, 10, 4);
  profile.reserve(10, 20, 4);
  EXPECT_EQ(profile.earliest_start(1, 5, 0), 20);
}

TEST(Reservation, ReleaseExtendsAvailability) {
  ReservationProfile profile(4);
  profile.reserve(0, 100, 4);
  profile.release(50, 100, 2);  // two nodes free earlier than predicted
  EXPECT_EQ(profile.available_at(49), 0);
  EXPECT_EQ(profile.available_at(50), 2);
  EXPECT_EQ(profile.earliest_start(2, 10, 0), 50);
}

TEST(Reservation, ForeverReservationBlocksPermanently) {
  ReservationProfile profile(4);
  profile.reserve(10, ReservationProfile::kForever, 4);
  EXPECT_EQ(profile.earliest_start(1, 5, 0), 0);   // fits before
  EXPECT_EQ(profile.earliest_start(1, 20, 0), ReservationProfile::kNever);
}

TEST(Reservation, ZeroNodeRequestStartsImmediately) {
  ReservationProfile profile(4);
  profile.reserve(0, 100, 4);
  EXPECT_EQ(profile.earliest_start(0, 10, 7), 7);
}

TEST(Reservation, ExactFitAtBoundary) {
  // Window ending exactly when a dip begins is feasible.
  ReservationProfile profile(4);
  profile.reserve(100, 200, 4);
  EXPECT_EQ(profile.earliest_start(4, 100, 0), 0);
  EXPECT_EQ(profile.earliest_start(4, 101, 0), 200);
}

TEST(Reservation, OverlappingReservationsStack) {
  ReservationProfile profile(10);
  profile.reserve(0, 50, 4);
  profile.reserve(25, 75, 4);
  EXPECT_EQ(profile.available_at(30), 2);
  EXPECT_EQ(profile.earliest_start(3, 10, 0), 0);    // 6 free before 25
  EXPECT_EQ(profile.earliest_start(3, 30, 0), 50);   // dip at 25 blocks
}

TEST(Reservation, NotBeforeBetweenBreakpoints) {
  // not_before falls strictly inside an infeasible segment: the earliest
  // start is the segment's release, not a breakpoint near not_before.
  ReservationProfile profile(8);
  profile.reserve(10, 20, 6);
  profile.reserve(30, 40, 6);
  EXPECT_EQ(profile.earliest_start(4, 5, 15), 20);
  // A longer window from the same not_before must clear the second dip too.
  EXPECT_EQ(profile.earliest_start(4, 15, 15), 40);
  // not_before inside a *feasible* gap starts right there.
  EXPECT_EQ(profile.earliest_start(4, 5, 22), 22);
}

TEST(Reservation, DurationClampsToOne) {
  ReservationProfile profile(4);
  profile.reserve(5, 10, 4);
  // Zero/negative durations behave as a 1-second window.
  EXPECT_EQ(profile.earliest_start(1, 0, 5), 10);
  EXPECT_EQ(profile.earliest_start(1, -7, 5), 10);
  // Window [0, 1) closes before the dip at 5 begins.
  EXPECT_EQ(profile.earliest_start(4, 0, 0), 0);
  EXPECT_EQ(profile.min_available(0, 0), profile.min_available(0, 1));
}

TEST(Reservation, PermanentReservationReturnsNever) {
  ReservationProfile profile(4);
  profile.reserve(0, ReservationProfile::kForever, 2);
  EXPECT_EQ(profile.earliest_start(3, 10, 0), ReservationProfile::kNever);
  EXPECT_EQ(profile.earliest_start(2, 10, 0), 0);  // what remains is enough
  EXPECT_EQ(profile.earliest_start(5, 1, 0), ReservationProfile::kNever);  // > capacity
}

TEST(Reservation, MinAvailableScansTheWholeWindow) {
  ReservationProfile profile(8);
  profile.reserve(10, 20, 3);
  EXPECT_EQ(profile.min_available(0, 10), 8);  // window ends as the dip starts
  EXPECT_EQ(profile.min_available(0, 11), 5);
  EXPECT_EQ(profile.min_available(5, 100), 5);
  EXPECT_EQ(profile.min_available(20, 5), 8);
  profile.reserve(12, 14, 5);
  EXPECT_EQ(profile.min_available(0, 100), 0);
}

TEST(Reservation, BaseSnapshotPlusOverlay) {
  // A base snapshot from the cluster index, then pass-local reservations on
  // top; clear_overlay() must restore exactly the base.
  ReservationProfile profile;
  profile.set_base(8, /*origin=*/100, {{150, 3}, {200, 2}});
  EXPECT_EQ(profile.capacity(), 8);
  EXPECT_EQ(profile.available_at(100), 3);
  EXPECT_EQ(profile.available_at(150), 6);
  EXPECT_EQ(profile.available_at(200), 8);
  EXPECT_EQ(profile.first_release_time(), 150);
  EXPECT_EQ(profile.earliest_start(8, 10, 100), 200);

  profile.reserve(100, 160, 3);  // the pass starts a job on the free nodes
  EXPECT_EQ(profile.available_at(100), 0);
  EXPECT_EQ(profile.available_at(150), 3);
  EXPECT_EQ(profile.earliest_start(4, 10, 100), 160);

  profile.clear_overlay();
  EXPECT_EQ(profile.available_at(100), 3);
  EXPECT_EQ(profile.earliest_start(8, 10, 100), 200);
  EXPECT_EQ(profile.first_release_time(), 150);
}

/// Brute-force reference: availability by summing raw intervals, earliest
/// start by trying every breakpoint candidate.
struct ReferenceProfile {
  int capacity;
  std::vector<std::tuple<SimTime, SimTime, int>> ops;  ///< (start, end, delta)

  int available_at(SimTime t) const {
    int free = capacity;
    for (const auto& [s, e, d] : ops) {
      if (s <= t && t < e) free += d;
    }
    return free;
  }
  bool window_ok(SimTime t, SimTime dur, int nodes,
                 const std::vector<SimTime>& breaks) const {
    if (available_at(t) < nodes) return false;
    for (const SimTime b : breaks) {
      if (b > t && b < t + dur && available_at(b) < nodes) return false;
    }
    return true;
  }
  SimTime earliest_start(int nodes, SimTime dur, SimTime not_before) const {
    if (nodes > capacity) return ReservationProfile::kNever;
    if (nodes <= 0) return not_before;
    dur = std::max<SimTime>(dur, 1);
    std::vector<SimTime> breaks;
    for (const auto& [s, e, d] : ops) {
      breaks.push_back(s);
      if (e < ReservationProfile::kForever) breaks.push_back(e);
    }
    std::sort(breaks.begin(), breaks.end());
    std::vector<SimTime> candidates{not_before};
    for (const SimTime b : breaks) {
      if (b > not_before) candidates.push_back(b);
    }
    for (const SimTime c : candidates) {
      if (window_ok(c, dur, nodes, breaks)) return c;
    }
    return ReservationProfile::kNever;
  }
};

TEST(Reservation, RandomizedAgainstBruteForce) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto rnd = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };
  for (int round = 0; round < 40; ++round) {
    const int capacity = 2 + static_cast<int>(rnd(14));
    ReservationProfile profile;
    ReferenceProfile ref{capacity, {}};
    // A base snapshot for half the rounds, pure overlay for the rest.
    if (round % 2 == 0) {
      std::vector<std::pair<SimTime, int>> groups;
      SimTime t = 1;
      int left = capacity;
      while (left > 0 && rnd(4) != 0) {
        t += 1 + static_cast<SimTime>(rnd(40));
        const int n = 1 + static_cast<int>(rnd(static_cast<std::uint64_t>(left)));
        groups.emplace_back(t, n);
        left -= n;
      }
      profile.set_base(capacity, 0, groups);
      for (const auto& [free_at, n] : groups) {
        ref.ops.emplace_back(0, free_at, -n);
      }
    } else {
      profile = ReservationProfile(capacity);
    }
    for (int op = 0; op < 12; ++op) {
      const SimTime start = static_cast<SimTime>(rnd(120));
      const SimTime end = rnd(8) == 0 ? ReservationProfile::kForever
                                      : start + 1 + static_cast<SimTime>(rnd(60));
      const int nodes = 1 + static_cast<int>(rnd(3));
      if (rnd(3) == 0) {
        profile.release(start, end, nodes);
        ref.ops.emplace_back(start, end, nodes);
      } else {
        profile.reserve(start, end, nodes);
        ref.ops.emplace_back(start, end, -nodes);
      }
    }
    for (SimTime t = 0; t < 200; t += 7) {
      ASSERT_EQ(profile.available_at(t), ref.available_at(t)) << "round " << round
                                                              << " t=" << t;
    }
    for (int q = 0; q < 20; ++q) {
      const int nodes = 1 + static_cast<int>(rnd(static_cast<std::uint64_t>(capacity) + 2));
      const SimTime dur = static_cast<SimTime>(rnd(70));
      const SimTime not_before = static_cast<SimTime>(rnd(150));
      ASSERT_EQ(profile.earliest_start(nodes, dur, not_before),
                ref.earliest_start(nodes, dur, not_before))
          << "round " << round << " nodes=" << nodes << " dur=" << dur
          << " not_before=" << not_before;
      const SimTime ws = static_cast<SimTime>(rnd(150));
      const SimTime wd = 1 + static_cast<SimTime>(rnd(60));
      int expect_min = ref.available_at(ws);
      for (SimTime t = ws; t < ws + wd; ++t) {
        expect_min = std::min(expect_min, ref.available_at(t));
      }
      ASSERT_EQ(profile.min_available(ws, wd), expect_min)
          << "round " << round << " ws=" << ws << " wd=" << wd;
    }
  }
}

}  // namespace
}  // namespace sdsched
