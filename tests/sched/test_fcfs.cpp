#include "sched/fcfs.h"

#include <gtest/gtest.h>

#include "scheduler_test_harness.h"

namespace sdsched {
namespace {

using testing_support::RecordingExecutor;
using testing_support::finish;
using testing_support::spec_of;

class FcfsTest : public ::testing::Test {
 protected:
  FcfsTest()
      : machine_(make_config()),
        mgr_(machine_, jobs_, drom_),
        executor_(machine_, jobs_, mgr_),
        sched_(machine_, jobs_, executor_, SchedConfig{}) {}

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 4;
    config.node = NodeConfig{2, 24};
    return config;
  }

  JobId submit(int cpus, SimTime submit_time = 0, SimTime runtime = 100) {
    const JobId id = jobs_.add(spec_of(submit_time, runtime, runtime, cpus, 48));
    sched_.on_submit(id);
    return id;
  }

  Machine machine_;
  JobRegistry jobs_;
  DromRegistry drom_;
  NodeManager mgr_;
  RecordingExecutor executor_;
  FcfsScheduler sched_;
};

TEST_F(FcfsTest, StartsJobsInOrderWhileTheyFit) {
  const JobId a = submit(96);   // 2 nodes
  const JobId b = submit(96);   // 2 nodes
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, b}));
  EXPECT_TRUE(sched_.queue().empty());
}

TEST_F(FcfsTest, HeadBlocksLaterJobs) {
  submit(96);
  const JobId big = submit(192);  // 4 nodes: cannot fit beside the first
  const JobId tiny = submit(48);  // would fit, but FCFS never skips the head
  sched_.schedule_pass(0);
  EXPECT_EQ(executor_.static_starts.size(), 1u);
  EXPECT_TRUE(sched_.queue().contains(big));
  EXPECT_TRUE(sched_.queue().contains(tiny));
}

TEST_F(FcfsTest, HeadStartsAfterRelease) {
  const JobId a = submit(192);
  sched_.schedule_pass(0);
  const JobId b = submit(192);
  sched_.schedule_pass(0);
  EXPECT_TRUE(sched_.queue().contains(b));
  finish(jobs_, mgr_, a, 100);
  executor_.now = 100;
  sched_.schedule_pass(100);
  EXPECT_EQ(executor_.static_starts, (std::vector<JobId>{a, b}));
}

TEST_F(FcfsTest, NameIsFcfs) { EXPECT_STREQ(sched_.name(), "fcfs"); }

}  // namespace
}  // namespace sdsched
