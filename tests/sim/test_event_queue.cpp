#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.live_count(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule(30, Event{EventKind::JobSubmit, 3});
  queue.schedule(10, Event{EventKind::JobSubmit, 1});
  queue.schedule(20, Event{EventKind::JobSubmit, 2});
  EXPECT_EQ(queue.pop().event.job, 1u);
  EXPECT_EQ(queue.pop().event.job, 2u);
  EXPECT_EQ(queue.pop().event.job, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, FinishBeforeSubmitAtSameTime) {
  EventQueue queue;
  queue.schedule(10, Event{EventKind::JobSubmit, 1});
  queue.schedule(10, Event{EventKind::SchedulerTick, kInvalidJob});
  queue.schedule(10, Event{EventKind::JobFinish, 2});
  EXPECT_EQ(queue.pop().event.kind, EventKind::JobFinish);
  EXPECT_EQ(queue.pop().event.kind, EventKind::JobSubmit);
  EXPECT_EQ(queue.pop().event.kind, EventKind::SchedulerTick);
}

TEST(EventQueue, SameKindSameTimeKeepsInsertionOrder) {
  EventQueue queue;
  for (JobId id = 0; id < 10; ++id) {
    queue.schedule(5, Event{EventKind::JobSubmit, id});
  }
  for (JobId id = 0; id < 10; ++id) {
    EXPECT_EQ(queue.pop().event.job, id);
  }
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue queue;
  const auto h1 = queue.schedule(10, Event{EventKind::JobFinish, 1});
  queue.schedule(20, Event{EventKind::JobFinish, 2});
  EXPECT_TRUE(queue.cancel(h1));
  EXPECT_EQ(queue.live_count(), 1u);
  EXPECT_EQ(queue.pop().event.job, 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue queue;
  const auto h = queue.schedule(10, Event{EventKind::JobFinish, 1});
  EXPECT_TRUE(queue.cancel(h));
  EXPECT_FALSE(queue.cancel(h));
}

TEST(EventQueue, CancelInvalidOrUnknownHandle) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(kInvalidEvent));
  EXPECT_FALSE(queue.cancel(9999));
}

TEST(EventQueue, CancelHeadExposesNext) {
  EventQueue queue;
  const auto h1 = queue.schedule(10, Event{EventKind::JobFinish, 1});
  queue.schedule(20, Event{EventKind::JobFinish, 2});
  queue.cancel(h1);
  EXPECT_EQ(queue.next_time(), 20);
}

TEST(EventQueue, RescheduleViaCancelAndSchedule) {
  EventQueue queue;
  const auto h1 = queue.schedule(100, Event{EventKind::JobFinish, 7});
  queue.cancel(h1);
  queue.schedule(50, Event{EventKind::JobFinish, 7});
  const auto fired = queue.pop();
  EXPECT_EQ(fired.time, 50);
  EXPECT_EQ(fired.event.job, 7u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ManyCancellationsKeepQueueConsistent) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(queue.schedule(i, Event{EventKind::JobFinish, static_cast<JobId>(i)}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    queue.cancel(handles[i]);
  }
  EXPECT_EQ(queue.live_count(), 500u);
  SimTime last = -1;
  int popped = 0;
  while (!queue.empty()) {
    const auto fired = queue.pop();
    EXPECT_GT(fired.time, last);
    EXPECT_EQ(fired.time % 2, 1);  // only odd times survive
    last = fired.time;
    ++popped;
  }
  EXPECT_EQ(popped, 500);
}

}  // namespace
}  // namespace sdsched
