#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace sdsched {
namespace {

TEST(Engine, ClockAdvancesWithEvents) {
  Engine engine;
  std::vector<SimTime> seen;
  engine.set_handler([&](const EventQueue::Fired& fired) { seen.push_back(fired.time); });
  engine.schedule_at(10, Event{EventKind::JobSubmit, 0});
  engine.schedule_at(5, Event{EventKind::JobSubmit, 1});
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(seen, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(engine.now(), 10);
}

TEST(Engine, HandlerCanScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  engine.set_handler([&](const EventQueue::Fired& f) {
    ++fired;
    if (f.time < 5) {
      engine.schedule_at(f.time + 1, Event{EventKind::SchedulerTick, kInvalidJob});
    }
  });
  engine.schedule_at(0, Event{EventKind::SchedulerTick, kInvalidJob});
  engine.run();
  EXPECT_EQ(fired, 6);  // t = 0..5
  EXPECT_EQ(engine.now(), 5);
}

TEST(Engine, MaxEventsBudget) {
  Engine engine;
  engine.set_handler([&](const EventQueue::Fired& f) {
    engine.schedule_at(f.time + 1, Event{EventKind::SchedulerTick, kInvalidJob});
  });
  engine.schedule_at(0, Event{EventKind::SchedulerTick, kInvalidJob});
  EXPECT_EQ(engine.run(100), 100u);
  EXPECT_FALSE(engine.idle());
}

TEST(Engine, ScheduleAfterUsesNow) {
  Engine engine;
  SimTime seen = -1;
  engine.set_handler([&](const EventQueue::Fired& f) {
    if (f.event.kind == EventKind::JobSubmit) {
      engine.schedule_after(7, Event{EventKind::SchedulerTick, kInvalidJob});
    } else {
      seen = f.time;
    }
  });
  engine.schedule_at(3, Event{EventKind::JobSubmit, 0});
  engine.run();
  EXPECT_EQ(seen, 10);
}

TEST(Engine, CancelPreventsDelivery) {
  Engine engine;
  int fired = 0;
  engine.set_handler([&](const EventQueue::Fired&) { ++fired; });
  const auto handle = engine.schedule_at(5, Event{EventKind::JobFinish, 1});
  engine.cancel(handle);
  engine.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.now(), 0);  // nothing fired, clock untouched
}

TEST(Engine, StepFiresExactlyOne) {
  Engine engine;
  int fired = 0;
  engine.set_handler([&](const EventQueue::Fired&) { ++fired; });
  engine.schedule_at(1, Event{EventKind::JobSubmit, 0});
  engine.schedule_at(2, Event{EventKind::JobSubmit, 1});
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace sdsched
