#include "model/runtime_predictor.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

JobSpec spec_of(int user, SimTime req) {
  JobSpec spec;
  spec.user_id = user;
  spec.req_time = req;
  return spec;
}

TEST(RuntimePredictor, NoHistoryTrustsUser) {
  const RuntimePredictor predictor;
  EXPECT_EQ(predictor.predict(spec_of(1, 1000)), 1000);
}

TEST(RuntimePredictor, LearnsUserOverestimation) {
  RuntimePredictor predictor(/*smoothing=*/0.5, /*min_history=*/3);
  // User 1 always runs at 25% of the request.
  for (int i = 0; i < 6; ++i) {
    predictor.observe(spec_of(1, 1000), 250);
  }
  const SimTime predicted = predictor.predict(spec_of(1, 2000));
  EXPECT_GT(predicted, 400);
  EXPECT_LT(predicted, 700);
}

TEST(RuntimePredictor, PredictionNeverExceedsRequest) {
  RuntimePredictor predictor(0.5, 1);
  predictor.observe(spec_of(1, 100), 100);
  predictor.observe(spec_of(1, 100), 100);
  EXPECT_LE(predictor.predict(spec_of(1, 100)), 100);
  // Even an over-running job (actual > request) must not push above req.
  predictor.observe(spec_of(1, 100), 500);
  EXPECT_LE(predictor.predict(spec_of(1, 100)), 100);
}

TEST(RuntimePredictor, GlobalFallbackForNewUsers) {
  RuntimePredictor predictor(0.5, 3);
  for (int i = 0; i < 5; ++i) {
    predictor.observe(spec_of(1, 1000), 100);  // everyone overestimates 10x
  }
  // User 99 has no history; the global model applies.
  const SimTime predicted = predictor.predict(spec_of(99, 1000));
  EXPECT_LT(predicted, 500);
}

TEST(RuntimePredictor, PerUserModelsAreIndependent) {
  RuntimePredictor predictor(0.9, 2);
  for (int i = 0; i < 4; ++i) {
    predictor.observe(spec_of(1, 1000), 100);   // user 1: 10% of request
    predictor.observe(spec_of(2, 1000), 1000);  // user 2: exact
  }
  EXPECT_LT(predictor.predict(spec_of(1, 1000)), 300);
  EXPECT_GT(predictor.predict(spec_of(2, 1000)), 700);
}

TEST(RuntimePredictor, ErrorTrackingAccumulates) {
  RuntimePredictor predictor(0.5, 1);
  predictor.observe(spec_of(1, 1000), 500);
  EXPECT_EQ(predictor.observations(), 1u);
  EXPECT_GT(predictor.mean_relative_error(), 0.0);  // first guess was 1000 vs 500
}

TEST(RuntimePredictor, MinimumOneSecond) {
  RuntimePredictor predictor(1.0, 1);
  predictor.observe(spec_of(1, 1000), 1);
  EXPECT_GE(predictor.predict(spec_of(1, 1000)), 1);
}

}  // namespace
}  // namespace sdsched
