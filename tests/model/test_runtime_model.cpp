#include "model/runtime_model.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

std::vector<NodeShare> full_static(int nodes, int cpn) {
  std::vector<NodeShare> shares;
  for (int i = 0; i < nodes; ++i) shares.push_back({i, cpn, cpn});
  return shares;
}

TEST(RuntimeModel, StaticAllocationRunsAtRateOne) {
  const auto shares = full_static(4, 48);
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, shares, 4 * 48), 1.0);
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::WorstCase, shares, 4 * 48), 1.0);
}

TEST(RuntimeModel, UnevenStaticSplitStillRateOne) {
  // A 50-cpu job on 2 nodes holds 25+25: both models must report rate 1.
  const std::vector<NodeShare> shares{{0, 25, 25}, {1, 25, 25}};
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, shares, 50), 1.0);
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::WorstCase, shares, 50), 1.0);
}

TEST(RuntimeModel, IdealIsLinearInTotalCpus) {
  // Eq. 5: half the cpus -> half the rate, regardless of distribution.
  const std::vector<NodeShare> shares{{0, 48, 48}, {1, 0 + 0, 48}};  // placeholder below
  std::vector<NodeShare> uneven{{0, 48, 48}, {1, 0, 48}};
  uneven[1].cpus = 0;  // degenerate: one node lost entirely
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, uneven, 96), 0.5);
  const std::vector<NodeShare> even{{0, 24, 48}, {1, 24, 48}};
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, even, 96), 0.5);
}

TEST(RuntimeModel, WorstCaseLimitedByMinNode) {
  // Eq. 6: one node shrunk to half holds the whole job to half speed.
  const std::vector<NodeShare> shares{{0, 48, 48}, {1, 24, 48}};
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::WorstCase, shares, 96), 0.5);
  // Ideal sees the same allocation as 75%.
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, shares, 96), 0.75);
}

TEST(RuntimeModel, WorstCaseNeverAboveIdeal) {
  const std::vector<NodeShare> configs[] = {
      {{0, 48, 48}, {1, 24, 48}},
      {{0, 12, 48}, {1, 36, 48}, {2, 48, 48}},
      {{0, 24, 24}, {1, 10, 24}},
  };
  for (const auto& shares : configs) {
    int req = 0;
    for (const auto& s : shares) req += s.static_cpus;
    EXPECT_LE(progress_rate(RuntimeModelKind::WorstCase, shares, req),
              progress_rate(RuntimeModelKind::Ideal, shares, req) + 1e-12);
  }
}

TEST(RuntimeModel, EmptySharesZeroRate) {
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, {}, 48), 0.0);
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::WorstCase, {}, 48), 0.0);
}

TEST(RuntimeModel, ClampSuperlinear) {
  const std::vector<NodeShare> shares{{0, 48, 24}};  // inherited extra cores
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, shares, 24, false), 2.0);
  EXPECT_DOUBLE_EQ(progress_rate(RuntimeModelKind::Ideal, shares, 24, true), 1.0);
}

TEST(RuntimeModel, IncreaseForRateClosedForm) {
  // Paper example: SharingFactor 0.5 doubles the runtime -> increase == req.
  EXPECT_EQ(increase_for_rate(1000, 0.5), 1000);
  EXPECT_EQ(increase_for_rate(1000, 1.0), 0);
  EXPECT_EQ(increase_for_rate(1000, 2.0), 0);
  EXPECT_EQ(increase_for_rate(900, 0.75), 300);
  EXPECT_EQ(increase_for_rate(0, 0.5), 0);
}

TEST(RuntimeModel, IncreaseRoundsUp) {
  // 100/0.3 - 100 = 233.33 -> 234.
  EXPECT_EQ(increase_for_rate(100, 0.3), 234);
}

TEST(RuntimeModel, LostProgressIncrease) {
  // Shrunk to rate 0.5 for 600s: 300s of work lost.
  EXPECT_EQ(lost_progress_increase(600, 0.5), 300);
  EXPECT_EQ(lost_progress_increase(600, 1.0), 0);
  EXPECT_EQ(lost_progress_increase(600, 0.0), 600);
  EXPECT_EQ(lost_progress_increase(0, 0.5), 0);
}

TEST(RuntimeModel, ZeroRateIncreaseDegenerate) {
  EXPECT_EQ(increase_for_rate(500, 0.0), 500);
}

}  // namespace
}  // namespace sdsched
