#include "model/progress.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

Job make_job(SimTime base_runtime, int req_cpus, std::vector<NodeShare> shares) {
  Job job;
  job.spec.base_runtime = base_runtime;
  job.spec.req_cpus = req_cpus;
  job.shares = std::move(shares);
  job.state = JobState::Running;
  job.last_progress_update = 0;
  return job;
}

TEST(Progress, FullRateCompletesInBaseRuntime) {
  ProgressTracker tracker(RuntimeModelKind::Ideal);
  Job job = make_job(1000, 48, {{0, 48, 48}});
  tracker.set_rate_from_shares(job);
  EXPECT_DOUBLE_EQ(job.rate, 1.0);
  EXPECT_EQ(tracker.remaining_wallclock(job), 1000);
}

TEST(Progress, SettleAccumulatesWork) {
  ProgressTracker tracker(RuntimeModelKind::Ideal);
  Job job = make_job(1000, 48, {{0, 48, 48}});
  tracker.set_rate_from_shares(job);
  tracker.settle(job, 400);
  EXPECT_DOUBLE_EQ(job.work_done, 400.0);
  EXPECT_EQ(job.last_progress_update, 400);
  EXPECT_EQ(tracker.remaining_wallclock(job), 600);
}

TEST(Progress, ShrinkHalvesRateAndStretchesRemaining) {
  // Paper §3.4 worked example: shrink at t=400 to half cores; the 600s of
  // remaining work now needs 1200s of wallclock (Eq. 6 with sf=0.5).
  ProgressTracker tracker(RuntimeModelKind::WorstCase);
  Job job = make_job(1000, 48, {{0, 48, 48}});
  tracker.set_rate_from_shares(job);
  tracker.settle(job, 400);
  job.shares[0].cpus = 24;
  tracker.set_rate_from_shares(job);
  EXPECT_DOUBLE_EQ(job.rate, 0.5);
  EXPECT_EQ(tracker.remaining_wallclock(job), 1200);
}

TEST(Progress, ExpandRestoresFullSpeed) {
  ProgressTracker tracker(RuntimeModelKind::WorstCase);
  Job job = make_job(1000, 48, {{0, 24, 48}});
  tracker.set_rate_from_shares(job);
  tracker.settle(job, 1000);  // 500s of work done at rate 0.5
  job.shares[0].cpus = 48;
  const SimTime finish = tracker.reconfigure(job, 1000);
  EXPECT_DOUBLE_EQ(job.rate, 1.0);
  EXPECT_EQ(finish, 1500);  // 500s of work left at full speed
}

TEST(Progress, MultiSlotIntegrationMatchesEq6) {
  // Slots: 300s full, 600s at half, rest full -> total work 1000.
  ProgressTracker tracker(RuntimeModelKind::WorstCase);
  Job job = make_job(1000, 96, {{0, 48, 48}, {1, 48, 48}});
  tracker.set_rate_from_shares(job);
  tracker.settle(job, 300);  // work 300
  job.shares[1].cpus = 24;
  tracker.set_rate_from_shares(job);
  EXPECT_DOUBLE_EQ(job.rate, 0.5);
  tracker.settle(job, 900);  // +300 -> 600
  job.shares[1].cpus = 48;
  const SimTime finish = tracker.reconfigure(job, 900);
  EXPECT_EQ(finish, 1300);  // 400 work left at rate 1
  // The paper's "increase": actual 1300 vs static 1000 = the 300s lost.
}

TEST(Progress, ReconfigureIsIdempotentAtSameInstant) {
  ProgressTracker tracker(RuntimeModelKind::Ideal);
  Job job = make_job(500, 48, {{0, 48, 48}});
  tracker.set_rate_from_shares(job);
  const SimTime f1 = tracker.reconfigure(job, 100);
  const SimTime f2 = tracker.reconfigure(job, 100);
  EXPECT_EQ(f1, f2);
}

TEST(Progress, RemainingWallclockRoundsUp) {
  ProgressTracker tracker(RuntimeModelKind::Ideal);
  Job job = make_job(100, 3, {{0, 2, 3}});  // rate 2/3
  tracker.set_rate_from_shares(job);
  // 100 / (2/3) = 150 exactly; needs no rounding.
  EXPECT_EQ(tracker.remaining_wallclock(job), 150);
  Job job2 = make_job(100, 7, {{0, 3, 7}});  // rate 3/7
  tracker.set_rate_from_shares(job2);
  EXPECT_EQ(tracker.remaining_wallclock(job2), 234);  // ceil(233.33)
}

TEST(Progress, CompletedWorkGivesZeroRemaining) {
  ProgressTracker tracker(RuntimeModelKind::Ideal);
  Job job = make_job(100, 48, {{0, 48, 48}});
  tracker.set_rate_from_shares(job);
  tracker.settle(job, 100);
  EXPECT_EQ(tracker.remaining_wallclock(job), 0);
  tracker.settle(job, 150);  // over-settling keeps remaining at 0
  EXPECT_EQ(tracker.remaining_wallclock(job), 0);
}

TEST(Progress, ContentionMultiplierScalesRate) {
  ProgressTracker tracker(RuntimeModelKind::Ideal);
  Job job = make_job(1000, 48, {{0, 48, 48}});
  tracker.set_rate_from_shares(job, 0.8);
  EXPECT_DOUBLE_EQ(job.rate, 0.8);
  EXPECT_EQ(tracker.remaining_wallclock(job), 1250);
}

}  // namespace
}  // namespace sdsched
