#include "model/node_perf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdsched {
namespace {

class NodePerfTest : public ::testing::Test {
 protected:
  NodePerfTest() : machine_(make_config()), model_(table2_profiles(), 1.0) {}

  static MachineConfig make_config() {
    MachineConfig config;
    config.nodes = 2;
    config.node = NodeConfig{2, 24};
    return config;
  }

  JobId add_job(const char* app, int cpus, int node, bool owner) {
    JobSpec spec;
    spec.id = kInvalidJob;
    spec.req_cpus = cpus;
    spec.app_profile = profile_index(app);
    const JobId id = jobs_.add(spec);
    Job& job = jobs_.at(id);
    job.state = JobState::Running;
    job.shares.push_back({node, cpus, cpus});
    machine_.add_share(0, id, node, cpus, owner);
    return id;
  }

  Machine machine_;
  JobRegistry jobs_;
  NodePerfModel model_;
};

TEST_F(NodePerfTest, NoProfileIsNeutral) {
  JobSpec spec;
  spec.req_cpus = 48;
  spec.app_profile = -1;
  const JobId id = jobs_.add(spec);
  Job& job = jobs_.at(id);
  job.shares.push_back({0, 24, 48});
  machine_.add_share(0, id, 0, 24, true);
  EXPECT_DOUBLE_EQ(model_.multiplier(job, machine_, jobs_), 1.0);
}

TEST_F(NodePerfTest, FullAllocationAloneIsNeutral) {
  const JobId id = add_job("PILS", 48, 0, true);
  EXPECT_DOUBLE_EQ(model_.multiplier(jobs_.at(id), machine_, jobs_), 1.0);
}

TEST_F(NodePerfTest, StreamBarelySlowsWhenShrunk) {
  // STREAM at half cores: rate correction f^(alpha-1) with alpha=0.3 makes
  // the multiplier large (the linear model overestimated the loss).
  const JobId id = add_job("STREAM", 48, 0, true);
  Job& job = jobs_.at(id);
  machine_.resize_share(0, id, 0, 24);
  job.shares[0].cpus = 24;
  const double mult = model_.multiplier(job, machine_, jobs_);
  // Effective rate = 0.5 * mult = 0.5^0.3 ~ 0.812.
  EXPECT_NEAR(0.5 * mult, std::pow(0.5, 0.3), 1e-9);
  EXPECT_GT(mult, 1.5);
}

TEST_F(NodePerfTest, PilsScalesLinearly) {
  const JobId id = add_job("PILS", 48, 0, true);
  Job& job = jobs_.at(id);
  machine_.resize_share(0, id, 0, 24);
  job.shares[0].cpus = 24;
  EXPECT_NEAR(model_.multiplier(job, machine_, jobs_), 1.0, 1e-9);
}

TEST_F(NodePerfTest, TwoStreamsContendOnBandwidth) {
  const JobId a = add_job("STREAM", 24, 0, true);
  const JobId b = add_job("STREAM", 24, 0, false);
  const double mult_shared = model_.multiplier(jobs_.at(a), machine_, jobs_);
  machine_.remove_share(0, b, 0);
  jobs_.at(b).shares.clear();
  const double mult_alone = model_.multiplier(jobs_.at(a), machine_, jobs_);
  EXPECT_LT(mult_shared, mult_alone);
}

TEST_F(NodePerfTest, PilsPlusStreamBarelyContend) {
  // The paper's real-run story: a compute-bound guest exploits cores a
  // memory-bound owner cannot use, with little mutual damage.
  const JobId stream = add_job("STREAM", 24, 0, true);
  const JobId pils = add_job("PILS", 24, 0, false);
  const double pils_mult = model_.multiplier(jobs_.at(pils), machine_, jobs_);
  EXPECT_GT(pils_mult, 0.93);  // compute job barely notices
  const double stream_mult = model_.multiplier(jobs_.at(stream), machine_, jobs_);
  EXPECT_GT(stream_mult, 0.9);  // below its solo baseline but mild
}

TEST_F(NodePerfTest, OwnSaturationNotDoubleCharged) {
  // STREAM saturates bandwidth alone on a full node; its baseline already
  // includes that, so the multiplier must not re-penalize it.
  const JobId id = add_job("STREAM", 48, 0, true);
  const double mult = model_.multiplier(jobs_.at(id), machine_, jobs_);
  EXPECT_DOUBLE_EQ(mult, 1.0);
}

TEST_F(NodePerfTest, MultiNodeAveragesContention) {
  // Guest on two nodes: one shared with STREAM, one with PILS.
  JobSpec spec;
  spec.req_cpus = 48;
  spec.app_profile = profile_index("CoreNeuron");
  const JobId guest = jobs_.add(spec);
  add_job("STREAM", 24, 0, true);
  add_job("PILS", 24, 1, true);
  // Re-fetch after the adds above: the registry may reallocate its storage.
  Job& job = jobs_.at(guest);
  job.state = JobState::Running;
  job.shares.push_back({0, 24, 24});
  job.shares.push_back({1, 24, 24});
  machine_.add_share(0, guest, 0, 24, false);
  machine_.add_share(0, guest, 1, 24, false);
  const double mult = model_.multiplier(job, machine_, jobs_);
  EXPECT_GT(mult, 0.7);
  EXPECT_LE(mult, 1.05);
}

}  // namespace
}  // namespace sdsched
