#include "job/priority.h"

#include <gtest/gtest.h>

#include "job/wait_queue.h"

namespace sdsched {
namespace {

JobId add_job(JobRegistry& jobs, WaitQueue& queue, SimTime submit, int nodes) {
  JobSpec spec;
  spec.submit = submit;
  spec.req_nodes = nodes;
  spec.req_cpus = nodes * 48;
  const JobId id = jobs.add(spec);
  queue.push(id, submit);
  return id;
}

TEST(Priority, FcfsIsQueueOrder) {
  JobRegistry jobs;
  WaitQueue queue;
  add_job(jobs, queue, 100, 4);
  add_job(jobs, queue, 50, 1);
  add_job(jobs, queue, 75, 2);
  const PriorityConfig config;  // Fcfs
  EXPECT_EQ(priority_order(config, queue, jobs, 200), (std::vector<JobId>{1, 2, 0}));
}

TEST(Priority, SmallestFirstOrdersByNodes) {
  JobRegistry jobs;
  WaitQueue queue;
  add_job(jobs, queue, 0, 4);
  add_job(jobs, queue, 1, 1);
  add_job(jobs, queue, 2, 2);
  PriorityConfig config;
  config.kind = PriorityKind::SmallestFirst;
  EXPECT_EQ(priority_order(config, queue, jobs, 10), (std::vector<JobId>{1, 2, 0}));
}

TEST(Priority, SmallestFirstTiesStayFcfs) {
  JobRegistry jobs;
  WaitQueue queue;
  add_job(jobs, queue, 0, 2);
  add_job(jobs, queue, 1, 2);
  add_job(jobs, queue, 2, 2);
  PriorityConfig config;
  config.kind = PriorityKind::SmallestFirst;
  EXPECT_EQ(priority_order(config, queue, jobs, 10), (std::vector<JobId>{0, 1, 2}));
}

TEST(Priority, MultifactorAgeGrowsAndSaturates) {
  PriorityConfig config;
  config.kind = PriorityKind::Multifactor;
  config.age_weight = 1000.0;
  config.age_saturation = 100;
  JobSpec spec;
  spec.submit = 0;
  spec.req_nodes = 1;
  EXPECT_LT(job_priority(config, spec, 10), job_priority(config, spec, 50));
  EXPECT_DOUBLE_EQ(job_priority(config, spec, 100), 1000.0);
  EXPECT_DOUBLE_EQ(job_priority(config, spec, 5000), 1000.0);  // saturated
}

TEST(Priority, MultifactorSizeWeightFavoursLargeWhenPositive) {
  PriorityConfig config;
  config.kind = PriorityKind::Multifactor;
  config.age_weight = 0.0;
  config.size_weight = 100.0;
  config.machine_nodes = 10;
  JobSpec small;
  small.req_nodes = 1;
  JobSpec large;
  large.req_nodes = 8;
  EXPECT_GT(job_priority(config, large, 0), job_priority(config, small, 0));
  config.size_weight = -100.0;  // favour-small site
  EXPECT_LT(job_priority(config, large, 0), job_priority(config, small, 0));
}

TEST(Priority, MultifactorAgeLeadWinsUntilSaturation) {
  // A much older small job outranks a fresh large one while its age lead
  // counts; once both saturate, only the size factor separates them.
  PriorityConfig config;
  config.kind = PriorityKind::Multifactor;
  config.age_weight = 1000.0;
  config.size_weight = 800.0;
  config.age_saturation = 1000;
  config.machine_nodes = 10;
  JobSpec old_small;
  old_small.submit = 0;
  old_small.req_nodes = 1;
  JobSpec new_large;
  new_large.submit = 900;
  new_large.req_nodes = 10;
  // t=1000: old is saturated (1000 + 80), large has age 100 (100 + 800).
  EXPECT_GT(job_priority(config, old_small, 1000), job_priority(config, new_large, 1000));
  // t=2000: both saturated; size decides (1080 vs 1800).
  EXPECT_LT(job_priority(config, old_small, 2000), job_priority(config, new_large, 2000));
}

}  // namespace
}  // namespace sdsched
