#include "job/wait_queue.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(WaitQueue, FcfsOrder) {
  WaitQueue queue;
  queue.push(1, 100);
  queue.push(2, 200);
  queue.push(3, 150);
  EXPECT_EQ(queue.ordered_ids(), (std::vector<JobId>{1, 3, 2}));
  EXPECT_EQ(queue.front(), 1u);
}

TEST(WaitQueue, TiesBreakById) {
  WaitQueue queue;
  queue.push(5, 100);
  queue.push(2, 100);
  queue.push(9, 100);
  EXPECT_EQ(queue.ordered_ids(), (std::vector<JobId>{2, 5, 9}));
}

TEST(WaitQueue, RemoveMiddle) {
  WaitQueue queue;
  queue.push(1, 1);
  queue.push(2, 2);
  queue.push(3, 3);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_FALSE(queue.remove(2));
  EXPECT_EQ(queue.ordered_ids(), (std::vector<JobId>{1, 3}));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(WaitQueue, ContainsAndEmpty) {
  WaitQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.push(7, 10);
  EXPECT_TRUE(queue.contains(7));
  EXPECT_FALSE(queue.contains(8));
  EXPECT_FALSE(queue.empty());
  queue.remove(7);
  EXPECT_TRUE(queue.empty());
}

TEST(WaitQueue, SchedulingOrderFcfsNeedsNoRegistry) {
  WaitQueue queue;
  queue.push(3, 30);
  queue.push(1, 10);
  queue.push(2, 20);
  EXPECT_EQ(queue.scheduling_order(0), (std::vector<JobId>{1, 2, 3}));
}

TEST(WaitQueue, SchedulingOrderSmallestFirstReordersOnChange) {
  JobRegistry jobs;
  WaitQueue queue;
  PriorityConfig config;
  config.kind = PriorityKind::SmallestFirst;
  queue.configure(config, &jobs);

  const auto add = [&](SimTime submit, int nodes) {
    JobSpec spec;
    spec.submit = submit;
    spec.req_nodes = nodes;
    const JobId id = jobs.add(spec);
    queue.push(id, submit);
    return id;
  };
  const JobId big = add(0, 8);
  const JobId small = add(1, 1);
  const JobId mid = add(2, 4);
  EXPECT_EQ(queue.scheduling_order(10), (std::vector<JobId>{small, mid, big}));

  // Removing mid-queue keeps the remaining order; the cached view is only
  // rebuilt on the next scheduling_order call.
  queue.remove(small);
  EXPECT_EQ(queue.scheduling_order(10), (std::vector<JobId>{mid, big}));
  const JobId tiny = add(3, 2);
  EXPECT_EQ(queue.scheduling_order(10), (std::vector<JobId>{tiny, mid, big}));
}

TEST(WaitQueue, SchedulingOrderViewSurvivesRemovalDuringIteration) {
  // Schedulers iterate one pass view while removing the jobs they start;
  // the returned vector must not change under them.
  WaitQueue queue;
  for (JobId id = 0; id < 6; ++id) queue.push(id, static_cast<SimTime>(id));
  const std::vector<JobId>& view = queue.scheduling_order(0);
  const std::vector<JobId> snapshot = view;
  queue.remove(0);
  queue.remove(3);
  EXPECT_EQ(view, snapshot);  // same object, untouched by remove()
  EXPECT_EQ(queue.scheduling_order(0), (std::vector<JobId>{1, 2, 4, 5}));
}

TEST(WaitQueue, SchedulingOrderMultifactorTracksNow) {
  JobRegistry jobs;
  WaitQueue queue;
  PriorityConfig config;
  config.kind = PriorityKind::Multifactor;
  config.age_weight = 1000.0;
  config.size_weight = 800.0;
  config.age_saturation = 1000;
  config.machine_nodes = 10;
  queue.configure(config, &jobs);

  JobSpec old_small;
  old_small.submit = 0;
  old_small.req_nodes = 1;
  const JobId a = jobs.add(old_small);
  JobSpec new_large;
  new_large.submit = 900;
  new_large.req_nodes = 10;
  const JobId b = jobs.add(new_large);
  queue.push(a, 0);
  queue.push(b, 900);

  // Same scenario as Priority.MultifactorAgeLeadWinsUntilSaturation: the
  // cached order must follow `now`, not just queue membership.
  EXPECT_EQ(queue.scheduling_order(1000), (std::vector<JobId>{a, b}));
  EXPECT_EQ(queue.scheduling_order(2000), (std::vector<JobId>{b, a}));
  EXPECT_EQ(queue.scheduling_order(2000), (std::vector<JobId>{b, a}));  // cached
}

TEST(WaitQueue, InOrderPushIsCommonCase) {
  WaitQueue queue;
  for (JobId id = 0; id < 100; ++id) {
    queue.push(id, static_cast<SimTime>(id * 10));
  }
  const auto ids = queue.ordered_ids();
  for (JobId id = 0; id < 100; ++id) {
    EXPECT_EQ(ids[id], id);
  }
}

}  // namespace
}  // namespace sdsched
