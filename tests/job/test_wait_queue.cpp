#include "job/wait_queue.h"

#include <gtest/gtest.h>

namespace sdsched {
namespace {

TEST(WaitQueue, FcfsOrder) {
  WaitQueue queue;
  queue.push(1, 100);
  queue.push(2, 200);
  queue.push(3, 150);
  EXPECT_EQ(queue.ordered_ids(), (std::vector<JobId>{1, 3, 2}));
  EXPECT_EQ(queue.front(), 1u);
}

TEST(WaitQueue, TiesBreakById) {
  WaitQueue queue;
  queue.push(5, 100);
  queue.push(2, 100);
  queue.push(9, 100);
  EXPECT_EQ(queue.ordered_ids(), (std::vector<JobId>{2, 5, 9}));
}

TEST(WaitQueue, RemoveMiddle) {
  WaitQueue queue;
  queue.push(1, 1);
  queue.push(2, 2);
  queue.push(3, 3);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_FALSE(queue.remove(2));
  EXPECT_EQ(queue.ordered_ids(), (std::vector<JobId>{1, 3}));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(WaitQueue, ContainsAndEmpty) {
  WaitQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.push(7, 10);
  EXPECT_TRUE(queue.contains(7));
  EXPECT_FALSE(queue.contains(8));
  EXPECT_FALSE(queue.empty());
  queue.remove(7);
  EXPECT_TRUE(queue.empty());
}

TEST(WaitQueue, InOrderPushIsCommonCase) {
  WaitQueue queue;
  for (JobId id = 0; id < 100; ++id) {
    queue.push(id, static_cast<SimTime>(id * 10));
  }
  const auto ids = queue.ordered_ids();
  for (JobId id = 0; id < 100; ++id) {
    EXPECT_EQ(ids[id], id);
  }
}

}  // namespace
}  // namespace sdsched
