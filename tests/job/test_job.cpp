#include "job/job.h"

#include <gtest/gtest.h>

#include "job/job_registry.h"

namespace sdsched {
namespace {

TEST(Job, NodesForRoundsUp) {
  EXPECT_EQ(nodes_for(1, 48), 1);
  EXPECT_EQ(nodes_for(48, 48), 1);
  EXPECT_EQ(nodes_for(49, 48), 2);
  EXPECT_EQ(nodes_for(96, 48), 2);
  EXPECT_EQ(nodes_for(0, 48), 1);
  EXPECT_EQ(nodes_for(-5, 48), 1);
}

TEST(Job, BalancedSplitEven) {
  EXPECT_EQ(balanced_split(96, 2), (std::vector<int>{48, 48}));
}

TEST(Job, BalancedSplitRemainderGoesFirst) {
  EXPECT_EQ(balanced_split(50, 3), (std::vector<int>{17, 17, 16}));
  EXPECT_EQ(balanced_split(7, 4), (std::vector<int>{2, 2, 2, 1}));
}

TEST(Job, BalancedSplitSingleNode) {
  EXPECT_EQ(balanced_split(13, 1), (std::vector<int>{13}));
}

TEST(Job, AllocatedAndMinCpus) {
  Job job;
  job.shares = {{0, 24, 48}, {1, 48, 48}, {2, 30, 48}};
  EXPECT_EQ(job.allocated_cpus(), 102);
  EXPECT_EQ(job.min_cpus_per_node(), 24);
}

TEST(Job, EmptySharesGiveZero) {
  Job job;
  EXPECT_EQ(job.allocated_cpus(), 0);
  EXPECT_EQ(job.min_cpus_per_node(), 0);
}

TEST(Job, MalleabilityPredicates) {
  Job job;
  job.spec.malleability = MalleabilityClass::Malleable;
  EXPECT_TRUE(job.malleable());
  EXPECT_TRUE(job.can_start_shrunk());
  EXPECT_TRUE(job.can_be_mate());

  job.spec.malleability = MalleabilityClass::Moldable;
  EXPECT_FALSE(job.malleable());
  EXPECT_TRUE(job.can_start_shrunk());  // moldable: guest yes, mate no
  EXPECT_FALSE(job.can_be_mate());

  job.spec.malleability = MalleabilityClass::Rigid;
  EXPECT_FALSE(job.can_start_shrunk());
  EXPECT_FALSE(job.can_be_mate());
}

TEST(Job, WaitResponseSlowdown) {
  Job job;
  job.spec.submit = 100;
  job.spec.base_runtime = 50;
  job.start_time = 160;
  job.end_time = 220;
  EXPECT_EQ(job.wait_time(0), 60);
  EXPECT_EQ(job.response_time(), 120);
  EXPECT_DOUBLE_EQ(job.slowdown(), 120.0 / 50.0);
}

TEST(Job, WaitTimeWhilePending) {
  Job job;
  job.spec.submit = 100;
  EXPECT_EQ(job.wait_time(150), 50);
}

TEST(Job, SlowdownFlooredRuntime) {
  Job job;
  job.spec.submit = 0;
  job.spec.base_runtime = 0;  // degenerate zero-second job
  job.start_time = 0;
  job.end_time = 30;
  EXPECT_DOUBLE_EQ(job.slowdown(), 30.0);
}

TEST(JobRegistry, AssignsDenseIds) {
  JobRegistry registry;
  JobSpec spec;
  spec.id = kInvalidJob;
  EXPECT_EQ(registry.add(spec), 0u);
  EXPECT_EQ(registry.add(spec), 1u);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.at(1).spec.id, 1u);
}

TEST(JobRegistry, RunningIdsFiltersStates) {
  JobRegistry registry;
  JobSpec spec;
  spec.id = kInvalidJob;
  registry.add(spec);
  registry.add(spec);
  registry.add(spec);
  registry.at(1).state = JobState::Running;
  EXPECT_EQ(registry.running_ids(), (std::vector<JobId>{1}));
}

}  // namespace
}  // namespace sdsched
