// maxsd_tuning: the workflow a system administrator would follow to pick
// MAX_SLOWDOWN for their site (paper §4.1): sweep static cut-offs and the
// dynamic DynAVGSD on a site-like workload, inspect the slowdown/response
// trade-off, and check the fairness impact on mates.
//
//   ./maxsd_tuning [--jobs=N] [--nodes=N] [--seed=N]
#include <cstdio>

#include "api/experiment.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/cirne.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  const CliArgs args(argc, argv);

  CirneConfig wl;
  wl.n_jobs = static_cast<int>(args.get_int("jobs", 600));
  wl.system_nodes = static_cast<int>(args.get_int("nodes", 64));
  wl.cores_per_node = 48;
  wl.max_job_nodes = wl.system_nodes / 8;
  wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const Workload workload = generate_cirne(wl);

  MachineConfig machine;
  machine.nodes = wl.system_nodes;
  machine.node = NodeConfig{2, 24};
  const PaperWorkload pw{"tuning", workload, machine};

  const SimulationReport base = run_single(pw, baseline_config(machine));
  std::printf("baseline (static backfill): avg slowdown %.1f, avg response %.0fs\n\n",
              base.summary.avg_slowdown, base.summary.avg_response);

  AsciiTable table({"cut-off", "avg slowdown", "avg response", "p95 mate slowdown",
                    "guests", "mates"});
  for (const auto& variant : maxsd_sweep()) {
    const SimulationReport report = run_single(pw, sd_config(machine, variant.cutoff));
    // The administrator's fairness check: how badly do the *mates* end up?
    std::vector<double> mate_slowdowns;
    for (const auto& record : report.records) {
      if (record.was_mate) mate_slowdowns.push_back(record.slowdown());
    }
    table.add_row({variant.label, AsciiTable::num(report.summary.avg_slowdown, 1),
                   AsciiTable::num(report.summary.avg_response, 0),
                   AsciiTable::num(percentile_of(std::move(mate_slowdowns), 0.95), 1),
                   std::to_string(report.summary.guests),
                   std::to_string(report.summary.mates)});
  }
  table.print();
  std::printf(
      "\nreading: low cut-offs protect mates (low p95) but start fewer guests;\n"
      "high cut-offs chase system averages at some mates' expense. The paper\n"
      "settled on MAXSD 10 for CEA-Curie and notes DynAVGSD adapts by itself.\n");
  return 0;
}
