// swf_replay: replay a Standard Workload Format trace (e.g. the real
// RICC-2010 or CEA-Curie logs from the Parallel Workloads Archive) through
// static backfill and SD-Policy and compare.
//
//   ./swf_replay --swf=/path/to/trace.swf [--nodes=N] [--cores=N]
//                [--max-jobs=N] [--maxsd=V]
//
// Without --swf, a demonstration trace is generated, written to a temp
// file, and replayed — so the example is runnable out of the box and also
// documents the SWF round-trip.
#include <cstdio>

#include "api/experiment.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/swf.h"
#include "workload/synthetic_logs.h"
#include "workload/workload_stats.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  const CliArgs args(argc, argv);

  std::string path = args.get_or("swf", "");
  if (path.empty()) {
    // Self-contained demo: synthesize a RICC-like trace and write it out.
    RiccConfig demo;
    demo.scale = 0.05;
    const Workload generated = generate_ricc_like(demo);
    path = "/tmp/sdsched_demo_trace.swf";
    write_swf_file(path, generated);
    std::printf("no --swf given; wrote a demo trace to %s\n\n", path.c_str());
  }

  SwfReadOptions options;
  options.max_jobs = static_cast<std::size_t>(args.get_int("max-jobs", 0));
  Workload workload = read_swf_file(path, options);

  // Machine: from the SWF header when present, overridable on the CLI.
  const int nodes = static_cast<int>(args.get_int(
      "nodes", workload.info().system_nodes > 0 ? workload.info().system_nodes : 64));
  const int cores = static_cast<int>(args.get_int(
      "cores", workload.info().cores_per_node > 0 ? workload.info().cores_per_node : 16));
  MachineConfig machine;
  machine.nodes = nodes;
  machine.node.sockets = 2;
  machine.node.cores_per_socket = std::max(1, cores / 2);
  workload.prepare_for(nodes, machine.node.sockets * machine.node.cores_per_socket);

  std::fputs(to_string(characterize(workload)).c_str(), stdout);

  PaperWorkload pw{"replay", workload, machine};
  const SimulationConfig sd_cfg =
      sd_config(machine, CutoffConfig::max_sd(args.get_double("maxsd", 10.0)));
  const ExperimentResult result = compare(pw, sd_cfg);

  AsciiTable table({"metric", "static backfill", "SD-Policy", "SD / static"});
  table.add_row({"makespan", format_duration(result.baseline.summary.makespan),
                 format_duration(result.policy.summary.makespan),
                 AsciiTable::num(result.normalized.makespan)});
  table.add_row({"avg response (s)",
                 AsciiTable::num(result.baseline.summary.avg_response, 0),
                 AsciiTable::num(result.policy.summary.avg_response, 0),
                 AsciiTable::num(result.normalized.avg_response)});
  table.add_row({"avg slowdown", AsciiTable::num(result.baseline.summary.avg_slowdown, 1),
                 AsciiTable::num(result.policy.summary.avg_slowdown, 1),
                 AsciiTable::num(result.normalized.avg_slowdown)});
  table.print();
  std::printf("\n%llu jobs scheduled with malleability, %llu mates shrunk\n",
              static_cast<unsigned long long>(result.policy.summary.guests),
              static_cast<unsigned long long>(result.policy.summary.mates));
  return 0;
}
