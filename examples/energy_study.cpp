// energy_study: explore the energy model behind Figure 9's -6% claim.
// Runs the Table-2 application mix with and without SD-Policy under three
// power models (always-on, power-down-idle, core-heavy) and reports where
// the savings come from (shorter makespan vs denser packing).
//
//   ./energy_study [--jobs=N] [--nodes=N]
#include <cstdio>

#include "api/experiment.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/app_profiles.h"
#include "workload/cirne.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  const CliArgs args(argc, argv);

  CirneConfig wl;
  wl.n_jobs = static_cast<int>(args.get_int("jobs", 800));
  wl.system_nodes = static_cast<int>(args.get_int("nodes", 49));
  wl.cores_per_node = 48;
  wl.max_job_nodes = 16;
  wl.log2_nodes_mean = 1.2;
  wl.log_runtime_mu = 6.1;
  wl.log_runtime_sigma = 1.3;
  wl.max_runtime = 8 * kHour;
  wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  Workload workload = generate_cirne(wl);
  assign_applications(workload, wl.seed + 100);

  struct PowerModel {
    const char* label;
    EnergyConfig energy;
  };
  const PowerModel models[] = {
      {"always-on (MN4-like)", {100.0, 4.5, false}},
      {"power-down idle nodes", {100.0, 4.5, true}},
      {"core-dominated draw", {30.0, 9.0, false}},
  };

  AsciiTable table({"power model", "static kWh", "SD kWh", "saving", "makespan ratio",
                    "utilization static/SD"});
  for (const auto& model : models) {
    MachineConfig machine;
    machine.nodes = wl.system_nodes;
    machine.node = NodeConfig{2, 24};
    machine.energy = model.energy;
    const PaperWorkload pw{"energy", workload, machine};

    SimulationConfig base_cfg = baseline_config(machine);
    base_cfg.use_app_model = true;
    SimulationConfig sd_cfg = sd_config(machine, CutoffConfig::dynamic_avg());
    sd_cfg.use_app_model = true;

    const SimulationReport base = run_single(pw, base_cfg);
    const SimulationReport sd = run_single(pw, sd_cfg);
    const double saving = base.summary.energy_kwh > 0
                              ? 1.0 - sd.summary.energy_kwh / base.summary.energy_kwh
                              : 0.0;
    table.add_row(
        {model.label, AsciiTable::num(base.summary.energy_kwh, 0),
         AsciiTable::num(sd.summary.energy_kwh, 0), AsciiTable::pct(saving),
         AsciiTable::num(static_cast<double>(sd.summary.makespan) /
                             static_cast<double>(base.summary.makespan),
                         3),
         AsciiTable::pct(base.summary.utilization) + " / " +
             AsciiTable::pct(sd.summary.utilization)});
  }
  table.print();
  std::printf(
      "\nreading: with always-on nodes the saving tracks the makespan ratio\n"
      "(idle draw dominates); powering down idle nodes shifts the saving to\n"
      "packing density, which SD-Policy improves via node sharing (Fig. 9's\n"
      "-6%% on MN4 came mostly from the shorter, denser schedule).\n");
  return 0;
}
