// Quickstart: generate a small Cirne workload, run static backfill and
// SD-Policy on the same 64-node machine, and print the side-by-side metrics
// the paper reports (makespan, response, slowdown, energy).
//
//   ./quickstart [--jobs=N] [--nodes=N] [--seed=N]
#include <cstdio>

#include "api/experiment.h"
#include "api/simulation.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/cirne.h"
#include "workload/workload_stats.h"

int main(int argc, char** argv) {
  using namespace sdsched;
  const CliArgs args(argc, argv);

  CirneConfig wl;
  wl.n_jobs = static_cast<int>(args.get_int("jobs", 800));
  wl.system_nodes = static_cast<int>(args.get_int("nodes", 64));
  wl.cores_per_node = 48;
  wl.max_job_nodes = wl.system_nodes / 8;
  wl.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  Workload workload = generate_cirne(wl);
  std::fputs(to_string(characterize(workload)).c_str(), stdout);

  MachineConfig machine;
  machine.nodes = wl.system_nodes;
  machine.node.sockets = 2;
  machine.node.cores_per_socket = 24;

  // Baseline: plain backfill. Policy: SD with the dynamic cut-off.
  SimulationReport base = Simulation(baseline_config(machine), workload).run();
  SimulationReport sd =
      Simulation(sd_config(machine, CutoffConfig::dynamic_avg()), workload).run();
  const NormalizedMetrics norm = normalize(sd.summary, base.summary);

  AsciiTable table({"metric", "static backfill", "SD-Policy", "SD / static"});
  table.add_row({"makespan", format_duration(base.summary.makespan),
                 format_duration(sd.summary.makespan), AsciiTable::num(norm.makespan)});
  table.add_row({"avg response (s)", AsciiTable::num(base.summary.avg_response, 0),
                 AsciiTable::num(sd.summary.avg_response, 0),
                 AsciiTable::num(norm.avg_response)});
  table.add_row({"avg slowdown", AsciiTable::num(base.summary.avg_slowdown, 1),
                 AsciiTable::num(sd.summary.avg_slowdown, 1),
                 AsciiTable::num(norm.avg_slowdown)});
  table.add_row({"avg wait (s)", AsciiTable::num(base.summary.avg_wait, 0),
                 AsciiTable::num(sd.summary.avg_wait, 0), AsciiTable::num(norm.avg_wait)});
  table.add_row({"energy (kWh)", AsciiTable::num(base.summary.energy_kwh, 1),
                 AsciiTable::num(sd.summary.energy_kwh, 1), AsciiTable::num(norm.energy)});
  table.add_row({"utilization", AsciiTable::pct(base.summary.utilization - 0.0),
                 AsciiTable::pct(sd.summary.utilization - 0.0), ""});
  table.print();

  std::printf("\nSD-Policy scheduled %llu jobs with malleability (%llu mates shrunk)\n",
              static_cast<unsigned long long>(sd.summary.guests),
              static_cast<unsigned long long>(sd.summary.mates));
  return 0;
}
