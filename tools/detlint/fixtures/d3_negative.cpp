// Fixture: D3 negatives — the virtual-dispatch seam that replaced RTTI
// (PR 2's `annotate()` pattern), plus static_cast, which the rule does not
// ban. Analyzed under the fake path "sched/d3_negative.cpp"; never compiled.
namespace fixture {

struct Report {
  int reserved_jobs = 0;
};

struct Scheduler {
  virtual ~Scheduler() = default;
  // The sanctioned seam: subclasses export their own stats; callers never
  // interrogate the concrete type.
  virtual void annotate(Report& report) const { (void)report; }
};

struct BackfillScheduler : Scheduler {
  int reserved = 0;
  void annotate(Report& report) const override { report.reserved_jobs = reserved; }
};

int sanctioned_dispatch(const Scheduler& s) {
  Report report;
  s.annotate(report);
  return report.reserved_jobs;
}

double arithmetic_cast(int x) {
  return static_cast<double>(x);  // static_cast: fine
}

}  // namespace fixture
