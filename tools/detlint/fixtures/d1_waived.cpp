// Fixture: D1 waivers — the same iteration shapes as d1_positive.cpp, each
// carrying an ordered-ok waiver: same-line, the line above a statement, and
// inside a statement spanning several lines. detlint must report every site
// as waived (exit 0). Analyzed under the fake path "core/d1_waived.cpp";
// never compiled. (Prose here must not spell the waiver marker verbatim —
// the scanner would parse it and flag it as stale.)
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int same_line_waiver() {
  std::unordered_map<int, int> weights;
  int sum = 0;
  for (const auto& [id, w] : weights) {  // detlint: ordered-ok(order-independent sum)
    sum += id + w;
  }
  return sum;
}

int line_above_waiver() {
  std::unordered_set<int> ids;
  int count = 0;
  // detlint: ordered-ok(counting only, order cannot leak into decisions)
  for (auto it = ids.begin(); it != ids.end(); ++it) {
    ++count;
  }
  return count;
}

int multi_line_statement_waiver(bool flag) {
  std::unordered_map<int, int> table;
  int sum = 0;
  for (const auto& [key,
                    value] :             // detlint: ordered-ok(multi-line header)
       table) {
    sum += flag ? key : value;
  }
  return sum;
}

}  // namespace fixture
