// Fixture: D4 waivers — mutators that legitimately cannot notify carry a
// mutator-ok waiver on the function header (or the line above it). Mirrors
// the real machine.cpp waivers (constructor and sync_free_state). Analyzed
// under the fake path "cluster/machine.cpp"; never compiled. (Prose must
// not spell the waiver marker verbatim — it would scan as a stale waiver.)
#include <set>

namespace fixture {

class Machine {
 public:
  // detlint: mutator-ok(construction precedes any observer attachment)
  explicit Machine(int nodes) {
    for (int i = 0; i < nodes; ++i) free_nodes_.insert(i);
  }

  void release(int node_id) {
    sync_free_state(node_id);
    notify(node_id);
  }

 private:
  void sync_free_state(int node_id) {  // detlint: mutator-ok(callers notify)
    free_nodes_.insert(node_id);
  }

  void notify(int node_id) { (void)node_id; }

  std::set<int> free_nodes_;
};

}  // namespace fixture
