// Fixture: D4 positives — occupancy mutators that never reference the
// MachineObserver notify path, so a subscribed ClusterStateIndex /
// FreeNodeIndex would silently go stale. Analyzed under the fake path
// "cluster/machine.cpp" (the rule's scope); never compiled.
#include <set>

namespace fixture {

class Machine {
 public:
  // finding: mutates free_nodes_ without notify
  void mark_busy(int node_id) {
    free_nodes_.erase(node_id);
  }

  // finding: writes busy_cores_ without notify
  bool grow(int node_id, int cpus) {
    if (cpus <= 0) return false;
    busy_cores_ += cpus;
    (void)node_id;
    return true;
  }

  // finding: calls the sync helper without notify
  void quiet_release(int node_id) {
    sync_free_state(node_id);
  }

 private:
  // finding: the helper itself mutates free_nodes_ and cannot notify
  void sync_free_state(int node_id) {
    free_nodes_.insert(node_id);
  }

  void notify(int node_id) { (void)node_id; }

  std::set<int> free_nodes_;
  int busy_cores_ = 0;
};

}  // namespace fixture
