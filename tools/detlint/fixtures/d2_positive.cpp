// Fixture: D2 positives — nondeterminism sources anywhere in src/ (the rule
// is not limited to decision-path directories). Analyzed under the fake path
// "util/d2_positive.cpp"; never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int c_library_rand() {
  std::srand(42);      // finding: srand call
  return std::rand();  // finding: rand call
}

unsigned hardware_entropy() {
  std::random_device rd;  // finding: random_device
  return rd();
}

long long wall_clock_read() {
  const auto now = std::chrono::system_clock::now();  // finding: system_clock
  return now.time_since_epoch().count();
}

double hi_res_clock() {
  // high_resolution_clock is an alias of system_clock on common platforms.
  const auto t = std::chrono::high_resolution_clock::now();  // finding
  return static_cast<double>(t.time_since_epoch().count());
}

char* locale_dependent(const std::time_t* t) {
  std::setlocale(LC_ALL, "");  // finding: setlocale call
  return std::ctime(t);        // finding: ctime call
}

}  // namespace fixture
