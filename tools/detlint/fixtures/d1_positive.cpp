// Fixture: D1 positives — iteration over unordered containers in
// decision-path code. Analyzed under the fake path "core/d1_positive.cpp";
// never compiled.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int range_for_over_member() {
  std::unordered_map<int, int> weights;
  int sum = 0;
  for (const auto& [id, w] : weights) {  // finding: range-for
    sum += id + w;
  }
  return sum;
}

int explicit_iterators() {
  std::unordered_set<int> ids;
  int sum = 0;
  for (auto it = ids.begin(); it != ids.end(); ++it) {  // finding: .begin()
    sum += *it;
  }
  return sum;
}

int free_begin() {
  std::unordered_map<int, int> table;
  auto it = std::begin(table);  // finding: free begin()
  return it == table.end() ? 0 : it->second;
}

using ScoreMap = std::unordered_map<int, double>;

double alias_iteration(const ScoreMap& scores) {
  double total = 0.0;
  for (const auto& [id, score] : scores) {  // finding: alias of unordered_map
    total += score * id;
  }
  return total;
}

}  // namespace fixture
