// Fixture: D4 negatives — every occupancy mutation references the notify
// path (directly or via on_node_occupancy_changed), reads don't count as
// mutations, and constructor init-lists with paren initializers parse.
// Analyzed under the fake path "cluster/machine.cpp"; never compiled.
#include <set>
#include <utility>

namespace fixture {

struct Config {
  int nodes = 4;
};

class Machine {
 public:
  explicit Machine(Config config)
      : config_(std::move(config)), spare_(config_.nodes) {
    // Mutation with notify in the same body: fine without a waiver.
    for (int i = 0; i < config_.nodes; ++i) {
      free_nodes_.insert(i);
      notify(i);
    }
  }

  bool allocate(int node_id, int cpus) {
    busy_cores_ += cpus;
    free_nodes_.erase(node_id);
    notify(node_id);
    return true;
  }

  // Reads are not mutations: no finding, no waiver needed.
  int free_count() const { return static_cast<int>(free_nodes_.size()); }
  int busy_cores() const { return busy_cores_; }
  bool is_free(int node_id) const { return free_nodes_.count(node_id) > 0; }

 private:
  void notify(int node_id) { (void)node_id; }

  Config config_;
  int spare_ = 0;
  std::set<int> free_nodes_;
  int busy_cores_ = 0;
};

}  // namespace fixture
