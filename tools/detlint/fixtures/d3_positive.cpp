// Fixture: D3 positives — RTTI in decision-path code (re-pinning the PR 2
// `annotate()` fix that removed the last scheduler dynamic_cast). Analyzed
// under the fake path "sched/d3_positive.cpp"; never compiled.
#include <typeinfo>

namespace fixture {

struct Scheduler {
  virtual ~Scheduler() = default;
};
struct BackfillScheduler : Scheduler {
  int reserved = 0;
};

int downcast_probe(Scheduler* s) {
  // finding: dynamic_cast in decision-path code
  if (auto* backfill = dynamic_cast<BackfillScheduler*>(s)) {
    return backfill->reserved;
  }
  return 0;
}

bool type_probe(const Scheduler& a, const Scheduler& b) {
  return typeid(a) == typeid(b);  // findings: typeid (twice)
}

}  // namespace fixture
