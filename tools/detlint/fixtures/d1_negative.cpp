// Fixture: D1 negatives — unordered containers used for lookup/membership
// only (no iteration), plus ordered-container iteration, in decision-path
// code. detlint must report nothing here. Analyzed under the fake path
// "core/d1_negative.cpp"; never compiled.
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

int lookup_only(int key) {
  std::unordered_map<int, int> cache;
  const auto it = cache.find(key);  // lookup: fine
  return it != cache.end() ? it->second : 0;
}

bool membership_only(int id) {
  std::unordered_set<int> seen;
  seen.insert(id);   // mutation without iteration: fine
  seen.erase(id + 1);
  return seen.count(id) > 0;
}

int ordered_iteration() {
  std::map<int, int> ordered;
  std::set<int> keys;
  std::vector<int> items;
  int sum = 0;
  for (const auto& [k, v] : ordered) sum += k + v;  // std::map: fine
  for (const int k : keys) sum += k;                // std::set: fine
  for (auto it = items.begin(); it != items.end(); ++it) sum += *it;
  return sum;
}

}  // namespace fixture
