// Fixture: D2 negatives — the deterministic counterparts the contract
// permits: seeded engines, monotonic steady_clock for wall-clock
// *measurement* (never decisions), and identifiers that merely contain a
// banned word. Analyzed under the fake path "util/d2_negative.cpp"; never
// compiled.
#include <chrono>
#include <cstdint>

namespace fixture {

// Seeded xoshiro-style engine: the contract's sanctioned randomness.
struct SeededRng {
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ULL + 1; }
};

std::uint64_t seeded_draw(std::uint64_t seed) {
  SeededRng rng{seed};
  return rng.next();
}

double measure_wall_seconds() {
  // steady_clock is monotonic and feeds measurement only — allowed.
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Identifiers containing banned words are not calls/types — no findings.
int operand_names() {
  int randomize_me = 3;     // not `rand`
  int system_clock_skew = 4;  // bare identifier, not followed by `(`
  return randomize_me + system_clock_skew;
}

}  // namespace fixture
