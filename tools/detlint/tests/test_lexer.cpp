#include "lexer.h"

#include <gtest/gtest.h>

namespace detlint {
namespace {

std::vector<Token> lex_no_comments(std::string_view src) {
  std::vector<Token> out;
  for (auto& tok : lex(src)) {
    if (tok.kind != TokKind::Comment) out.push_back(std::move(tok));
  }
  return out;
}

TEST(DetlintLexer, IdentifiersNumbersAndLines) {
  const auto toks = lex("int x = 42;\nfoo_bar baz2;\n");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_TRUE(is_ident(toks[0], "int"));
  EXPECT_TRUE(is_ident(toks[1], "x"));
  EXPECT_TRUE(is_punct(toks[2], "="));
  EXPECT_EQ(toks[3].kind, TokKind::Number);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_TRUE(is_ident(toks[5], "foo_bar"));
  EXPECT_EQ(toks[5].line, 2);
  EXPECT_TRUE(is_ident(toks[6], "baz2"));
}

TEST(DetlintLexer, MultiCharPunctuationKeptWhole) {
  const auto toks = lex("a->b; c::d; e += f; g <= h; i <=> j;");
  EXPECT_TRUE(is_punct(toks[1], "->"));
  EXPECT_TRUE(is_punct(toks[5], "::"));
  EXPECT_TRUE(is_punct(toks[9], "+="));
  EXPECT_TRUE(is_punct(toks[13], "<="));
  EXPECT_TRUE(is_punct(toks[17], "<=>"));
}

TEST(DetlintLexer, AngleBracketsAlwaysSingleForTemplateBalancing) {
  // `>>` must lex as two `>` so map<int, vector<int>> balances by counting.
  const auto toks = lex("map<int, vector<int>> m; a >> b;");
  int opens = 0;
  int closes = 0;
  for (const auto& tok : toks) {
    if (is_punct(tok, "<")) ++opens;
    if (is_punct(tok, ">")) ++closes;
  }
  EXPECT_EQ(opens, 2);
  EXPECT_EQ(closes, 4);  // two template closers + the two halves of >>
}

TEST(DetlintLexer, LineAndBlockComments) {
  const auto toks = lex("x; // trailing note\n/* block\nspanning */ y;\n");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[2].kind, TokKind::Comment);
  EXPECT_EQ(toks[2].text, " trailing note");
  EXPECT_FALSE(toks[2].block_comment);
  EXPECT_EQ(toks[3].kind, TokKind::Comment);
  EXPECT_TRUE(toks[3].block_comment);
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_TRUE(is_ident(toks[4], "y"));
  EXPECT_EQ(toks[4].line, 3);
}

TEST(DetlintLexer, StringAndCharLiteralsAreOpaque) {
  // Banned words inside literals must not surface as identifier tokens.
  const auto toks = lex_no_comments(
      "const char* s = \"rand() and unordered_map\"; char c = '\\n';");
  for (const auto& tok : toks) {
    if (tok.kind == TokKind::Identifier) {
      EXPECT_NE(tok.text, "rand");
      EXPECT_NE(tok.text, "unordered_map");
    }
  }
  EXPECT_EQ(toks[5].kind, TokKind::String);
  EXPECT_EQ(toks[5].text, "rand() and unordered_map");
}

TEST(DetlintLexer, RawStringsAreOpaque) {
  const auto toks =
      lex_no_comments("auto s = R\"x(dynamic_cast<int>(y) \" quote)x\"; z;");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[3].kind, TokKind::String);
  EXPECT_NE(toks[3].text.find("dynamic_cast"), std::string::npos);
  EXPECT_TRUE(is_ident(toks[5], "z"));
}

TEST(DetlintLexer, DirectiveTokensAreMarked) {
  const auto toks = lex("#include <unordered_map>\nint unordered_map_user;\n");
  bool saw_directive_token = false;
  for (const auto& tok : toks) {
    if (is_ident(tok, "unordered_map")) {
      EXPECT_TRUE(tok.in_directive);
      saw_directive_token = true;
    }
    if (is_ident(tok, "unordered_map_user")) {
      EXPECT_FALSE(tok.in_directive);
    }
  }
  EXPECT_TRUE(saw_directive_token);
}

TEST(DetlintLexer, UnterminatedConstructsDoNotLoopForever) {
  EXPECT_NO_FATAL_FAILURE({ (void)lex("/* never closed"); });
  EXPECT_NO_FATAL_FAILURE({ (void)lex("\"never closed"); });
  EXPECT_NO_FATAL_FAILURE({ (void)lex("R\"tag(never closed"); });
}

}  // namespace
}  // namespace detlint
