// Rule coverage over the seeded-violation fixture corpus: one positive and
// one negative fixture per rule (D1–D4), waiver parsing (well-formed,
// malformed, stale), multi-line statement handling, scope handling, and the
// cross-file declaration index.
#include "analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "detlint/ruleset.h"

namespace detlint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(DETLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> analyze_fixture(const std::string& name,
                                     const std::string& rel_path) {
  return analyze({SourceFile{name, rel_path, read_fixture(name)}});
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool any_message_contains(const std::vector<Finding>& findings,
                          std::string_view needle) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.message.find(needle) != std::string::npos;
  });
}

// --------------------------------------------------------------------- D1 --

TEST(DetlintD1, FlagsEveryIterationShapeInDecisionPath) {
  const auto findings =
      analyze_fixture("d1_positive.cpp", "core/d1_positive.cpp");
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_EQ(count_rule(findings, "D1"), 4u);
  EXPECT_TRUE(has_unwaived(findings));
  EXPECT_TRUE(any_message_contains(findings, "'weights'"));  // range-for
  EXPECT_TRUE(any_message_contains(findings, "'ids'"));      // .begin()
  EXPECT_TRUE(any_message_contains(findings, "'table'"));    // std::begin
  EXPECT_TRUE(any_message_contains(findings, "'scores'"));   // alias type
}

TEST(DetlintD1, LookupMembershipAndOrderedIterationAreClean) {
  const auto findings =
      analyze_fixture("d1_negative.cpp", "core/d1_negative.cpp");
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(DetlintD1, WaiversCoverSameLineLineAboveAndMultiLineStatements) {
  const auto findings = analyze_fixture("d1_waived.cpp", "core/d1_waived.cpp");
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_FALSE(has_unwaived(findings));
  for (const auto& f : findings) {
    EXPECT_TRUE(f.waived);
    EXPECT_FALSE(f.waiver_reason.empty());
  }
}

TEST(DetlintD1, OutOfScopeDirectoriesAreNotChecked) {
  // The identical violations under a non-decision-path prefix: clean.
  const auto findings =
      analyze_fixture("d1_positive.cpp", "workload/d1_positive.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(DetlintD1, MemberDeclaredInHeaderIsFlaggedWhenCppIterates) {
  // The two-phase index: the declaration lives in a header, the iteration in
  // the .cpp of the same class — per-file analysis would miss it.
  const SourceFile header{
      "cluster/thing.h", "cluster/thing.h",
      "#include <unordered_set>\n"
      "class Thing {\n"
      "  std::unordered_set<int> members_;\n"
      "};\n"};
  const SourceFile impl{
      "cluster/thing.cpp", "cluster/thing.cpp",
      "#include \"thing.h\"\n"
      "int Thing_total(Thing& t, int* members_sink) {\n"
      "  int sum = 0;\n"
      "  for (const int id : members_) sum += id;\n"
      "  (void)t; (void)members_sink;\n"
      "  return sum;\n"
      "}\n"};
  const auto findings = analyze({header, impl});
  EXPECT_EQ(count_rule(findings, "D1"), 1u);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().file, "cluster/thing.cpp");
}

// --------------------------------------------------------------------- D2 --

TEST(DetlintD2, FlagsEveryNondeterminismSourceEverywhere) {
  // Scope is all of src/ — "util/" is deliberately not a decision-path dir.
  const auto findings =
      analyze_fixture("d2_positive.cpp", "util/d2_positive.cpp");
  EXPECT_EQ(count_rule(findings, "D2"), 7u);
  EXPECT_TRUE(any_message_contains(findings, "'srand'"));
  EXPECT_TRUE(any_message_contains(findings, "'rand'"));
  EXPECT_TRUE(any_message_contains(findings, "'random_device'"));
  EXPECT_TRUE(any_message_contains(findings, "'system_clock'"));
  EXPECT_TRUE(any_message_contains(findings, "'high_resolution_clock'"));
  EXPECT_TRUE(any_message_contains(findings, "'setlocale'"));
  EXPECT_TRUE(any_message_contains(findings, "'ctime'"));
}

TEST(DetlintD2, SeededEnginesSteadyClockAndLookalikesAreClean) {
  const auto findings =
      analyze_fixture("d2_negative.cpp", "util/d2_negative.cpp");
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

// --------------------------------------------------------------------- D3 --

TEST(DetlintD3, FlagsRttiInDecisionPath) {
  const auto findings =
      analyze_fixture("d3_positive.cpp", "sched/d3_positive.cpp");
  EXPECT_EQ(count_rule(findings, "D3"), 3u);  // dynamic_cast + typeid x2
  EXPECT_TRUE(any_message_contains(findings, "'dynamic_cast'"));
  EXPECT_TRUE(any_message_contains(findings, "'typeid'"));
}

TEST(DetlintD3, VirtualDispatchAndStaticCastAreClean) {
  const auto findings =
      analyze_fixture("d3_negative.cpp", "sched/d3_negative.cpp");
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(DetlintD3, RttiOutsideDecisionPathIsNotChecked) {
  const auto findings =
      analyze_fixture("d3_positive.cpp", "api/d3_positive.cpp");
  EXPECT_TRUE(findings.empty());
}

// --------------------------------------------------------------------- D4 --

TEST(DetlintD4, FlagsMutatorsThatNeverNotify) {
  const auto findings =
      analyze_fixture("d4_positive.cpp", "cluster/machine.cpp");
  EXPECT_EQ(count_rule(findings, "D4"), 4u);
  EXPECT_TRUE(any_message_contains(findings, "'mark_busy'"));
  EXPECT_TRUE(any_message_contains(findings, "'grow'"));
  EXPECT_TRUE(any_message_contains(findings, "'quiet_release'"));
  EXPECT_TRUE(any_message_contains(findings, "'sync_free_state'"));
}

TEST(DetlintD4, NotifyingMutatorsAndReadsAreClean) {
  const auto findings =
      analyze_fixture("d4_negative.cpp", "cluster/machine.cpp");
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(DetlintD4, HeaderWaiversCoverUnnotifiableMutators) {
  const auto findings = analyze_fixture("d4_waived.cpp", "cluster/machine.cpp");
  EXPECT_EQ(count_rule(findings, "D4"), 2u);
  EXPECT_FALSE(has_unwaived(findings));
}

TEST(DetlintD4, ScopeIsMachineTranslationUnitsOnly) {
  // The same mutators in another cluster file (e.g. the index itself, whose
  // members legitimately change without re-notifying) are out of scope.
  const auto findings =
      analyze_fixture("d4_positive.cpp", "cluster/cluster_state_index.cpp");
  EXPECT_TRUE(findings.empty());
}

// ----------------------------------------------------------------- waivers --

TEST(DetlintWaivers, MalformedWaiversAreFindingsThemselves) {
  const SourceFile file{
      "core/w.cpp", "core/w.cpp",
      "// detlint: ordered-ok missing parens\n"
      "// detlint: not-a-rule(some reason)\n"
      "// detlint: ordered-ok()\n"
      "int f() { return 0; }\n"};
  const auto findings = analyze({file});
  EXPECT_EQ(count_rule(findings, "WAIVER"), 3u);
  EXPECT_TRUE(has_unwaived(findings));
  EXPECT_TRUE(any_message_contains(findings, "expected"));
  EXPECT_TRUE(any_message_contains(findings, "unknown waiver token"));
  EXPECT_TRUE(any_message_contains(findings, "empty reason"));
}

TEST(DetlintWaivers, StaleWaiversAreFindings) {
  // A well-formed waiver with no matching finding anywhere near it must not
  // silently rot in the tree.
  const SourceFile file{"core/w.cpp", "core/w.cpp",
                        "#include <vector>\n"
                        "int f(const std::vector<int>& v) {\n"
                        "  int sum = 0;\n"
                        "  // detlint: ordered-ok(vector iteration is ordered)\n"
                        "  for (const int x : v) sum += x;\n"
                        "  return sum;\n"
                        "}\n"};
  const auto findings = analyze({file});
  EXPECT_EQ(count_rule(findings, "WAIVER"), 1u);
  EXPECT_TRUE(any_message_contains(findings, "stale waiver"));
}

TEST(DetlintWaivers, WaiverTokenMustMatchTheRule) {
  // An rtti-ok waiver cannot excuse a D1 finding.
  const SourceFile file{
      "core/w.cpp", "core/w.cpp",
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int sum = 0;\n"
      "  for (const auto& [k, v] : m) sum += k + v;  // detlint: rtti-ok(wrong token)\n"
      "  return sum;\n"
      "}\n"};
  const auto findings = analyze({file});
  EXPECT_EQ(count_rule(findings, "D1"), 1u);
  EXPECT_TRUE(has_unwaived(findings));
  // The wrong-token waiver is also stale (it matched nothing).
  EXPECT_EQ(count_rule(findings, "WAIVER"), 1u);
}

// ------------------------------------------------------------------- misc --

TEST(DetlintScoping, RuleAppliesParsesCommaSeparatedPrefixes) {
  const RuleInfo rule{"DX", "test", "x-ok", "sched/,cluster/machine.cpp"};
  EXPECT_TRUE(rule_applies(rule, "sched/backfill.cpp"));
  EXPECT_TRUE(rule_applies(rule, "cluster/machine.cpp"));
  EXPECT_FALSE(rule_applies(rule, "cluster/energy.cpp"));
  EXPECT_FALSE(rule_applies(rule, "workload/swf.cpp"));
  const RuleInfo everywhere{"DY", "test", "y-ok", ""};
  EXPECT_TRUE(rule_applies(everywhere, "anything/at/all.cpp"));
}

TEST(DetlintRuleset, HashIsStableAndWellFormed) {
  const std::string hash = ruleset_hash();
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash, ruleset_hash());
  EXPECT_NE(hash, "0000000000000000");
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  // The hash is a compile-time constant of the rule tables.
  static_assert(ruleset_hash_value() != 0);
}

TEST(DetlintRuleset, CommentsStringsAndDirectivesNeverTrigger) {
  const SourceFile file{
      "core/w.cpp", "core/w.cpp",
      "#include <unordered_map>\n"
      "// mentioning rand() or dynamic_cast in prose is fine\n"
      "/* std::random_device in a block comment too */\n"
      "const char* kDoc = \"system_clock and typeid\";\n"};
  const auto findings = analyze({file});
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

}  // namespace
}  // namespace detlint
