// The meta-test: detlint's contract actually holds on the real tree. Runs
// the analyzer over `src/` and fails on any unwaived finding — this is what
// `ctest -L lint` carries into tier-1, so a PR that introduces an unordered
// iteration, a wall-clock read, RTTI in a scheduler, or an unnotified
// occupancy mutation fails the suite before any golden can drift.
#include "analyzer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace detlint {
namespace {

std::vector<Finding> analyze_src() {
  return analyze_tree(std::filesystem::path(SDSCHED_SOURCE_DIR) / "src",
                      "src/");
}

std::string pretty(const std::vector<Finding>& findings, bool waived) {
  std::ostringstream out;
  for (const auto& f : findings) {
    if (f.waived != waived) continue;
    out << "  " << f.file << ":" << f.line << ": [" << f.rule << "] "
        << f.message << "\n";
  }
  return out.str();
}

TEST(DetlintSrcMeta, NoUnwaivedFindingsInSrc) {
  const auto findings = analyze_src();
  EXPECT_FALSE(has_unwaived(findings))
      << "unwaived determinism-contract findings:\n" << pretty(findings, false)
      << "either fix the site or add a `// detlint: <waiver>(<reason>)` "
         "with justification (see docs/determinism.md)";
}

TEST(DetlintSrcMeta, KnownWaiversAreStillPresentAndUsed) {
  // The audited machine.cpp sites: construction seeds free_nodes_ before an
  // observer can exist, and sync_free_state is the notify path's own helper.
  // If these waivers disappear the analyzer must have flagged the functions
  // (caught above) or the code moved — either way this inventory is stale
  // and should be updated alongside docs/determinism.md.
  const auto findings = analyze_src();
  std::size_t machine_waived = 0;
  for (const auto& f : findings) {
    if (f.waived && f.rule == "D4" && f.file == "src/cluster/machine.cpp") {
      ++machine_waived;
    }
  }
  EXPECT_EQ(machine_waived, 2u)
      << "expected exactly the constructor and sync_free_state waivers in "
         "src/cluster/machine.cpp; found:\n" << pretty(findings, true);
}

TEST(DetlintSrcMeta, AnalyzerSeesTheWholeTree) {
  // Guard against the scan silently skipping directories (a rename, a glob
  // bug): the five audited unordered-container sites must all have been
  // indexed, which shows up as their declared names being known.
  const auto findings = analyze_src();
  // If analyze_tree returned nothing at all the two tests above would pass
  // vacuously with zero findings — require the machine.cpp waivers as proof
  // of life plus a sane file count via a direct scan.
  std::size_t sources = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           std::filesystem::path(SDSCHED_SOURCE_DIR) / "src")) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".h" || ext == ".cpp") ++sources;
  }
  EXPECT_GT(sources, 90u);  // 100 files at the time of writing
  EXPECT_FALSE(findings.empty());
}

}  // namespace
}  // namespace detlint
