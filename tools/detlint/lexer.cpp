#include "lexer.h"

#include <cctype>

namespace detlint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuation detlint must not split: `->` (member access —
// splitting it would leave a stray `>` that breaks template balancing),
// `::` (qualified names), compound assignment (D4 classifies `busy_cores_ +=`
// as a mutation), increment/decrement, and the comparisons that embed `<`/`>`
// so those never masquerade as template brackets. `<<` and `>>` are
// deliberately absent: lexing them as two tokens keeps
// `unordered_map<int, std::vector<int>>` balanced, and nothing detlint checks
// cares about shift operators.
constexpr const char* kPunct3[] = {"->*", "<=>", "..."};
constexpr const char* kPunct2[] = {"->", "::", "+=", "-=", "*=", "/=", "%=",
                                   "|=", "&=", "^=", "==", "!=", "<=", ">=",
                                   "&&", "||", "++", "--", ".*"};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  bool in_directive = false;

  auto push = [&](TokKind kind, std::string text, int at_line,
                  bool block = false) {
    out.push_back(Token{kind, std::move(text), at_line, in_directive, block});
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n') {
      // A directive ends at an unescaped newline.
      if (in_directive) {
        std::size_t back = i;
        bool continued = false;
        while (back > 0 && (src[back - 1] == '\r')) --back;
        if (back > 0 && src[back - 1] == '\\') continued = true;
        if (!continued) in_directive = false;
      }
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' first non-space on the line.
    if (c == '#' && !in_directive) {
      in_directive = true;
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = src.size();
      push(TokKind::Comment, std::string(src.substr(i + 2, end - i - 2)), line);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < src.size() && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      const std::size_t end = (j + 1 < src.size()) ? j : src.size();
      push(TokKind::Comment, std::string(src.substr(i + 2, end - i - 2)),
           start_line, /*block=*/true);
      i = (j + 1 < src.size()) ? j + 2 : src.size();
      continue;
    }

    // Raw string literal: R"tag( ... )tag".
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      std::size_t tag_end = src.find('(', i + 2);
      if (tag_end != std::string_view::npos) {
        const std::string tag(src.substr(i + 2, tag_end - i - 2));
        const std::string closer = ")" + tag + "\"";
        std::size_t end = src.find(closer, tag_end + 1);
        if (end == std::string_view::npos) end = src.size();
        const int start_line = line;
        for (std::size_t j = i; j < end && j < src.size(); ++j) {
          if (src[j] == '\n') ++line;
        }
        push(TokKind::String,
             std::string(src.substr(tag_end + 1, end - tag_end - 1)),
             start_line);
        i = (end == src.size()) ? end : end + closer.size();
        continue;
      }
    }

    // String / char literals with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < src.size()) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(quote == '"' ? TokKind::String : TokKind::CharLit,
           std::string(src.substr(i + 1, j - i - 1)), start_line);
      i = (j < src.size()) ? j + 1 : j;
      continue;
    }

    // Identifiers and keywords.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < src.size() && ident_char(src[j])) ++j;
      push(TokKind::Identifier, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }

    // Numbers (loose: consume digits, letters, dots, digit separators and
    // exponent signs — detlint never looks inside one).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < src.size() &&
             (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
              ((src[j] == '+' || src[j] == '-') &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                src[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::Number, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }

    // Punctuation: longest match from the fixed tables, else one char.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (src.substr(i, 3) == p) {
        push(TokKind::Punct, p, line);
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (src.substr(i, 2) == p) {
        push(TokKind::Punct, p, line);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::Punct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace detlint
